package jointree

import (
	"testing"

	"repro/internal/hypergraph"
)

// FuzzParse drives the join-expression parser with arbitrary input: it must
// never panic, and whenever it accepts an input, the resulting tree must
// validate and round-trip through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)",
		"((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA",
		"ABC * CDE * EFG * GHA",
		"ABC |><| CDE |><| EFG |><| GHA",
		"((((ABC",
		")))",
		"⋈⋈⋈",
		"ABC ⋈ ABC ⋈ ABC ⋈ ABC",
		"",
		"GHA#2",
	} {
		f.Add(seed)
	}
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(h, input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := tr.Validate(h); err != nil {
			t.Fatalf("accepted tree fails validation: %v (input %q)", err, input)
		}
		again, err := Parse(h, tr.String(h))
		if err != nil {
			t.Fatalf("printed tree does not reparse: %v (input %q)", err, input)
		}
		if !tr.Equal(again) {
			t.Fatalf("round trip changed tree for input %q", input)
		}
	})
}
