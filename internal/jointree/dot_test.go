package jointree

import (
	"strings"
	"testing"
)

func TestDOT(t *testing.T) {
	h := paperScheme(t)
	tr := MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	dot := tr.DOT(h, "fig1")
	for _, want := range []string{
		`digraph "fig1" {`,
		`label="{ABC, EFG}"`,
		`label="{GHA}"`,
		"n0 -> n1;",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// One node per tree node: 7 nodes for the 4-leaf tree.
	if got := strings.Count(dot, "label="); got != 7 {
		t.Errorf("DOT has %d labeled nodes, want 7", got)
	}
	if got := strings.Count(dot, "->"); got != 6 {
		t.Errorf("DOT has %d edges, want 6", got)
	}
}

func TestDOTDefaultName(t *testing.T) {
	h := paperScheme(t)
	if !strings.Contains(NewLeaf(0).DOT(h, ""), `digraph "jointree"`) {
		t.Error("default graph name missing")
	}
}
