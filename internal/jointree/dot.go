package jointree

import (
	"fmt"
	"strings"

	"repro/internal/hypergraph"
)

// DOT renders the tree in Graphviz dot syntax, one node per tree node,
// labeled like the paper's figures: leaves carry their relation scheme,
// internal nodes the database scheme below them. Pipe the output through
// `dot -Tsvg` to reproduce Figures 1, 2 and 4 graphically.
func (t *Tree) DOT(h *hypergraph.Hypergraph, graphName string) string {
	if graphName == "" {
		graphName = "jointree"
	}
	names := SchemeNames(h)
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", graphName)
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	id := 0
	var walk func(n *Tree) int
	walk = func(n *Tree) int {
		my := id
		id++
		fmt.Fprintf(&b, "  n%d [label=%q];\n", my, nodeLabel(n, h, names))
		if !n.IsLeaf() {
			l := walk(n.Left)
			r := walk(n.Right)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", my, l)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", my, r)
		}
		return my
	}
	walk(t)
	b.WriteString("}\n")
	return b.String()
}
