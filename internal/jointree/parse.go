package jointree

import (
	"fmt"
	"strings"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// String renders the tree in the paper's notation using the scheme names of
// h, e.g. "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)". Duplicate schemes are disambiguated
// with an occurrence suffix "#k".
func (t *Tree) String(h *hypergraph.Hypergraph) string {
	names := SchemeNames(h)
	var render func(*Tree, bool) string
	render = func(n *Tree, top bool) string {
		if n.IsLeaf() {
			return names[n.Leaf]
		}
		s := render(n.Left, false) + " ⋈ " + render(n.Right, false)
		if top {
			return s
		}
		return "(" + s + ")"
	}
	return render(t, true)
}

// SchemeNames returns a display name per edge: the edge's display name
// (declaration order for parsed schemes, sorted attributes otherwise),
// suffixed with "#k" when the same name occurs more than once.
func SchemeNames(h *hypergraph.Hypergraph) []string {
	counts := make(map[string]int, h.Len())
	names := make([]string, h.Len())
	for i := 0; i < h.Len(); i++ {
		base := h.DisplayName(i)
		counts[base]++
		if counts[base] == 1 {
			names[i] = base
		} else {
			names[i] = fmt.Sprintf("%s#%d", base, counts[base])
		}
	}
	// Retroactively suffix the first occurrence of any duplicated name.
	seen := make(map[string]bool, h.Len())
	for i := 0; i < h.Len(); i++ {
		base := h.DisplayName(i)
		if counts[base] > 1 && !seen[base] {
			names[i] = base + "#1"
		}
		seen[base] = true
	}
	return names
}

// Parse reads a join expression in the paper's notation over the scheme of
// h. Operands are scheme names as produced by SchemeNames (attribute
// characters in any order; "#k" suffix selects a duplicate occurrence); the
// join operator is "⋈", "|><|", or "*"; parentheses group. Every scheme
// occurrence must appear exactly once.
func Parse(h *hypergraph.Hypergraph, input string) (*Tree, error) {
	p := &parser{h: h, toks: tokenize(input), used: make([]bool, h.Len())}
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("jointree: trailing input %q", strings.Join(p.toks[p.pos:], " "))
	}
	for i, u := range p.used {
		if !u {
			return nil, fmt.Errorf("jointree: scheme occurrence %d (%s) missing from expression", i, h.Edge(i))
		}
	}
	return t, nil
}

// MustParse is Parse that panics on error; for literals in tests.
func MustParse(h *hypergraph.Hypergraph, input string) *Tree {
	t, err := Parse(h, input)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	h    *hypergraph.Hypergraph
	toks []string
	pos  int
	used []bool
}

func tokenize(s string) []string {
	s = strings.ReplaceAll(s, "|><|", " ⋈ ")
	s = strings.ReplaceAll(s, "*", " ⋈ ")
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	return strings.Fields(s)
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

// parseExpr parses a left-associative chain of joins.
func (p *parser) parseExpr() (*Tree, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	for p.peek() == "⋈" {
		p.next()
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		left = NewJoin(left, right)
	}
	return left, nil
}

func (p *parser) parseOperand() (*Tree, error) {
	switch tok := p.next(); tok {
	case "":
		return nil, fmt.Errorf("jointree: unexpected end of expression")
	case "(":
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if close := p.next(); close != ")" {
			return nil, fmt.Errorf("jointree: expected ')', got %q", close)
		}
		return t, nil
	case ")", "⋈":
		return nil, fmt.Errorf("jointree: unexpected token %q", tok)
	default:
		idx, err := p.resolve(tok)
		if err != nil {
			return nil, err
		}
		if p.used[idx] {
			return nil, fmt.Errorf("jointree: scheme occurrence %q used more than once", tok)
		}
		p.used[idx] = true
		return NewLeaf(idx), nil
	}
}

// resolve maps a scheme name token to an unused edge index. The attribute
// characters may appear in any order; "#k" picks the k-th occurrence of a
// duplicated scheme, and a bare name matches the first unused occurrence.
func (p *parser) resolve(tok string) (int, error) {
	name, occ := tok, 0
	if i := strings.IndexByte(tok, '#'); i >= 0 {
		name = tok[:i]
		if _, err := fmt.Sscanf(tok[i:], "#%d", &occ); err != nil || occ < 1 {
			return 0, fmt.Errorf("jointree: bad occurrence suffix in %q", tok)
		}
	}
	want := attrSetOfName(name)
	seen := 0
	firstUnused := -1
	for i := 0; i < p.h.Len(); i++ {
		if !p.h.Edge(i).Equal(want) {
			continue
		}
		seen++
		if occ > 0 && seen == occ {
			return i, nil
		}
		if occ == 0 && firstUnused < 0 && !p.used[i] {
			firstUnused = i
		}
	}
	if occ == 0 && firstUnused >= 0 {
		return firstUnused, nil
	}
	return 0, fmt.Errorf("jointree: no scheme occurrence matches %q in %s", tok, p.h)
}

func attrSetOfName(name string) relation.AttrSet {
	return relation.AttrSetOfRunes(name)
}
