package jointree

import (
	"testing"

	"repro/internal/hypergraph"
)

func TestParseRoundTrip(t *testing.T) {
	h := paperScheme(t)
	for _, expr := range []string{
		"(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)",
		"((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA",
		"ABC ⋈ CDE ⋈ EFG ⋈ GHA", // left-associative chain
	} {
		tr, err := Parse(h, expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		if err := tr.Validate(h); err != nil {
			t.Fatalf("Parse(%q) invalid: %v", expr, err)
		}
		// Round-trip: printing and reparsing yields an equal tree.
		again, err := Parse(h, tr.String(h))
		if err != nil {
			t.Fatalf("reparse of %q: %v", tr.String(h), err)
		}
		if !tr.Equal(again) {
			t.Errorf("round trip changed tree: %s vs %s", tr.String(h), again.String(h))
		}
	}
}

func TestParseOperatorSpellings(t *testing.T) {
	h := paperScheme(t)
	a := MustParse(h, "(ABC ⋈ CDE) ⋈ (EFG ⋈ GHA)")
	b := MustParse(h, "(ABC * CDE) * (EFG * GHA)")
	c := MustParse(h, "(ABC |><| CDE) |><| (EFG |><| GHA)")
	if !a.Equal(b) || !a.Equal(c) {
		t.Error("operator spellings parse differently")
	}
}

func TestParseAttrOrderInsensitive(t *testing.T) {
	h := paperScheme(t)
	a := MustParse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA")
	b := MustParse(h, "((CBA ⋈ DEC) ⋈ GFE) ⋈ AGH")
	if !a.Equal(b) {
		t.Error("scheme tokens should match by attribute set")
	}
}

func TestParseErrors(t *testing.T) {
	h := paperScheme(t)
	for _, expr := range []string{
		"",
		"ABC",                         // missing relations
		"(ABC ⋈ CDE",                  // unclosed paren
		"ABC ⋈ CDE ⋈ EFG ⋈ GHA ⋈ ABC", // duplicate occurrence
		"ABC ⋈ CDE ⋈ EFG ⋈ XYZ",       // unknown scheme
		"ABC ⋈ CDE ⋈ EFG ⋈ GHA)",      // trailing paren
		"(ABC ⋈ CDE) (EFG ⋈ GHA)",     // missing operator
		"((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA#2", // occurrence out of range
		"((ABC ⋈ ⋈ CDE) ⋈ EFG) ⋈ GHA", // stray operator
	} {
		if _, err := Parse(h, expr); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", expr)
		}
	}
}

func TestDuplicateSchemeNames(t *testing.T) {
	h, err := hypergraph.ParseScheme("AB AB BC")
	if err != nil {
		t.Fatal(err)
	}
	names := SchemeNames(h)
	if names[0] != "AB#1" || names[1] != "AB#2" || names[2] != "BC" {
		t.Errorf("SchemeNames = %v", names)
	}
	tr, err := Parse(h, "(AB#1 ⋈ AB#2) ⋈ BC")
	if err != nil {
		t.Fatalf("Parse with occurrence suffixes: %v", err)
	}
	if err := tr.Validate(h); err != nil {
		t.Fatal(err)
	}
	// Bare names resolve to the first unused occurrence.
	tr2, err := Parse(h, "(AB ⋈ AB) ⋈ BC")
	if err != nil {
		t.Fatalf("Parse with bare duplicate names: %v", err)
	}
	if err := tr2.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestStringDisplaysPaperOrder(t *testing.T) {
	h := paperScheme(t)
	tr := MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	if got := tr.String(h); got != "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)" {
		t.Errorf("String = %q", got)
	}
}
