package jointree

import (
	"fmt"
	"strings"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// Annotated is a join expression tree together with the per-node results of
// one evaluation: the relation computed at each node, its size, and whether
// the node's join was a Cartesian product. It backs EXPLAIN-style output.
type Annotated struct {
	// Tree is the evaluated node.
	Tree *Tree
	// Relation is the node's result (the base relation at a leaf).
	Relation *relation.Relation
	// Size is the node's cardinality.
	Size int
	// Product marks an internal node whose operands shared no attributes.
	Product bool
	// Left and Right are the annotated children (nil at leaves).
	Left, Right *Annotated
	// Cost is the paper's cost of the subtree (leaves + all results).
	Cost int
}

// EvalAnnotated evaluates the tree over db keeping every node's result and
// size; Cost at the root equals Eval's cost.
func (t *Tree) EvalAnnotated(db *relation.Database) *Annotated {
	if t.IsLeaf() {
		r := db.Relation(t.Leaf)
		return &Annotated{Tree: t, Relation: r, Size: r.Len(), Cost: r.Len()}
	}
	l := t.Left.EvalAnnotated(db)
	r := t.Right.EvalAnnotated(db)
	out := relation.Join(l.Relation, r.Relation)
	return &Annotated{
		Tree:     t,
		Relation: out,
		Size:     out.Len(),
		Product:  !l.Relation.Schema().AttrSet().Overlaps(r.Relation.Schema().AttrSet()),
		Left:     l,
		Right:    r,
		Cost:     out.Len() + l.Cost + r.Cost,
	}
}

// MaxIntermediate returns the largest internal-node size (0 for a leaf) —
// the quantity monotone expressions bound by the output size.
func (a *Annotated) MaxIntermediate() int {
	if a.Left == nil {
		return 0
	}
	m := a.Size
	if lm := a.Left.MaxIntermediate(); lm > m {
		m = lm
	}
	if rm := a.Right.MaxIntermediate(); rm > m {
		m = rm
	}
	return m
}

// Render draws the annotated tree like Tree.Render with sizes (and ×
// product markers) appended to every node.
func (a *Annotated) Render(h *hypergraph.Hypergraph) string {
	names := SchemeNames(h)
	var b strings.Builder
	var walk func(n *Annotated, prefix string, last, root bool)
	walk = func(n *Annotated, prefix string, last, root bool) {
		connector := "├── "
		childPrefix := prefix + "│   "
		if last {
			connector = "└── "
			childPrefix = prefix + "    "
		}
		if root {
			connector = ""
			childPrefix = ""
		}
		label := nodeLabel(n.Tree, h, names)
		marker := ""
		if n.Product {
			marker = "  ×product"
		}
		fmt.Fprintf(&b, "%s%s%s  [%d tuples]%s\n", prefix, connector, label, n.Size, marker)
		if n.Left != nil {
			walk(n.Left, childPrefix, false, false)
			walk(n.Right, childPrefix, true, false)
		}
	}
	walk(a, "", true, true)
	return strings.TrimRight(b.String(), "\n")
}
