package jointree

import (
	"math/big"
	"testing"

	"repro/internal/hypergraph"
)

func TestCountTrees(t *testing.T) {
	// (2n−2)!/(n−1)!: 1, 2, 12, 120, 1680 for n = 1..5.
	want := []int64{1, 2, 12, 120, 1680}
	for i, w := range want {
		n := i + 1
		if got := CountTrees(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("CountTrees(%d) = %v, want %d", n, got, w)
		}
	}
}

func TestAllTreesCountMatches(t *testing.T) {
	h := paperScheme(t)
	trees, err := AllTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(trees)) != CountTrees(4).Int64() {
		t.Errorf("AllTrees produced %d, CountTrees says %v", len(trees), CountTrees(4))
	}
	// All distinct and all exactly over the scheme.
	seen := make(map[string]bool, len(trees))
	for _, tr := range trees {
		k := tr.Canon()
		if seen[k] {
			t.Fatalf("duplicate tree %s", k)
		}
		seen[k] = true
		if err := tr.Validate(h); err != nil {
			t.Fatalf("invalid tree: %v", err)
		}
	}
}

func TestAllCPFTreesMatchFilter(t *testing.T) {
	h := paperScheme(t)
	all, err := AllTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 0
	for _, tr := range all {
		if tr.IsCPF(h) {
			wantCount++
		}
	}
	cpf, err := AllCPFTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpf) != wantCount {
		t.Errorf("AllCPFTrees = %d trees, filter says %d", len(cpf), wantCount)
	}
	for _, tr := range cpf {
		if !tr.IsCPF(h) {
			t.Errorf("non-CPF tree from AllCPFTrees: %s", tr.String(h))
		}
	}
	if got := CountCPFTrees(h); got.Cmp(big.NewInt(int64(wantCount))) != 0 {
		t.Errorf("CountCPFTrees = %v, want %d", got, wantCount)
	}
}

func TestAllLinearTrees(t *testing.T) {
	h := paperScheme(t)
	lin, err := AllLinearTrees(h, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 24 { // 4!
		t.Errorf("AllLinearTrees = %d, want 24", len(lin))
	}
	for _, tr := range lin {
		if !tr.IsLinear() {
			t.Errorf("non-linear tree: %s", tr.String(h))
		}
		if err := tr.Validate(h); err != nil {
			t.Fatal(err)
		}
	}
	linCPF, err := AllLinearTrees(h, true)
	if err != nil {
		t.Fatal(err)
	}
	// On the 4-cycle: first pick any of 4, then each next must touch the
	// prefix: 4 starts × 2 × 2 × 1 = 16.
	if len(linCPF) != 16 {
		t.Errorf("linear CPF trees = %d, want 16", len(linCPF))
	}
	for _, tr := range linCPF {
		if !tr.IsCPF(h) {
			t.Errorf("non-CPF linear tree: %s", tr.String(h))
		}
	}
	if got := CountLinearTrees(h, true); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("CountLinearTrees CPF = %v, want 16", got)
	}
	if got := CountLinearTrees(h, false); got.Cmp(big.NewInt(24)) != 0 {
		t.Errorf("CountLinearTrees = %v, want 24", got)
	}
}

func TestEnumerationGuards(t *testing.T) {
	// 12 relations: CountTrees(12) = 22!/11! ≈ 2.8e15 — must refuse.
	edges := "AB BC CD DE EF FG GH HI IJ JK KL LM"
	h, err := hypergraph.ParseScheme(edges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AllTrees(h); err != ErrTooMany {
		t.Errorf("AllTrees on 12 relations: err = %v, want ErrTooMany", err)
	}
	if _, err := AllLinearTrees(h, false); err != ErrTooMany {
		t.Errorf("AllLinearTrees on 12 relations: err = %v, want ErrTooMany", err)
	}
}

func TestSingleRelationEnumeration(t *testing.T) {
	h, err := hypergraph.ParseScheme("AB")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func() ([]*Tree, error){
		func() ([]*Tree, error) { return AllTrees(h) },
		func() ([]*Tree, error) { return AllCPFTrees(h) },
		func() ([]*Tree, error) { return AllLinearTrees(h, true) },
	} {
		trees, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if len(trees) != 1 || !trees[0].IsLeaf() {
			t.Errorf("single-relation enumeration = %v", trees)
		}
	}
}

func TestCPFTreesOnDisconnectedScheme(t *testing.T) {
	h, err := hypergraph.ParseScheme("AB CD")
	if err != nil {
		t.Fatal(err)
	}
	cpf, err := AllCPFTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpf) != 0 {
		t.Errorf("disconnected scheme has %d CPF trees, want 0", len(cpf))
	}
	if CountCPFTrees(h).Sign() != 0 {
		t.Error("CountCPFTrees nonzero on disconnected scheme")
	}
}
