package jointree

import (
	"strings"
	"testing"
)

func TestEvalAnnotated(t *testing.T) {
	h := paperScheme(t)
	db := cycleDB(t, 3, 2)
	tr := MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	a := tr.EvalAnnotated(db)

	// Cost agrees with plain evaluation.
	if want := tr.Cost(db); a.Cost != want {
		t.Errorf("annotated cost %d, Eval cost %d", a.Cost, want)
	}
	// Result agrees.
	if !a.Relation.Equal(db.Join()) {
		t.Error("annotated result wrong")
	}
	// Both inner joins are Cartesian products; the root is not.
	if !a.Left.Product || !a.Right.Product {
		t.Error("opposite-pair joins should be flagged as products")
	}
	if a.Product {
		t.Error("root join should not be a product")
	}
	// Leaf sizes are relation sizes.
	if a.Left.Left.Size != db.Relation(0).Len() {
		t.Errorf("leaf size %d", a.Left.Left.Size)
	}
	// MaxIntermediate is the largest internal node.
	maxI := a.MaxIntermediate()
	if maxI < a.Left.Size || maxI < a.Right.Size || maxI < a.Size {
		t.Errorf("MaxIntermediate %d below some internal node", maxI)
	}
	if leaf := a.Left.Left.MaxIntermediate(); leaf != 0 {
		t.Errorf("leaf MaxIntermediate = %d", leaf)
	}
}

func TestAnnotatedRender(t *testing.T) {
	h := paperScheme(t)
	db := cycleDB(t, 3, 2)
	tr := MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	out := tr.EvalAnnotated(db).Render(h)
	for _, want := range []string{"tuples]", "×product", "{ABC, EFG}", "└── {GHA}"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n") + 1; lines != 7 {
		t.Errorf("rendered %d lines, want 7", lines)
	}
}
