package jointree_test

import (
	"fmt"
	"log"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
)

// ExampleParse round-trips the paper's Figure 1 expression.
func ExampleParse() {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	t, err := jointree.Parse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CPF:", t.IsCPF(h))
	fmt.Println("linear:", t.IsLinear())
	fmt.Println("Cartesian products:", len(t.CartesianProducts(h)))
	// Output:
	// CPF: false
	// linear: false
	// Cartesian products: 2
}

// ExampleCountCPFTrees shows the §4 space-size counters.
func ExampleCountCPFTrees() {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all trees:   ", jointree.CountTrees(h.Len()))
	fmt.Println("CPF trees:   ", jointree.CountCPFTrees(h))
	fmt.Println("linear CPF:  ", jointree.CountLinearTrees(h, true))
	// Output:
	// all trees:    120
	// CPF trees:    80
	// linear CPF:   16
}

// ExampleTree_Render draws Figure 2 as ASCII art.
func ExampleTree_Render() {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	t := jointree.MustParse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA")
	fmt.Println(t.Render(h))
	// Output:
	// {ABC, CDE, EFG, GHA}
	// ├── {ABC, CDE, EFG}
	// │   ├── {ABC, CDE}
	// │   │   ├── {ABC}
	// │   │   └── {CDE}
	// │   └── {EFG}
	// └── {GHA}
}
