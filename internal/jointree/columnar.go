package jointree

import (
	"repro/internal/govern"
	"repro/internal/relation"
)

// EvalColumnarGoverned is EvalGoverned over the columnar kernels: each leaf
// is encoded once into a dictionary-compressed ColBlock and every join node
// runs the vectorized JoinBlocksGoverned kernel; only the root decodes back
// to a tuple-map Relation. Result, cost, governor charges, and budget-abort
// behavior are identical to EvalGoverned — the columnar differential
// gauntlet enforces this — so the two evaluators are interchangeable
// observationally and differ only in wall time and allocation profile.
func (t *Tree) EvalColumnarGoverned(db *relation.Database, g *govern.Governor) (*relation.Relation, int, error) {
	out, cost, err := t.evalColumnar(db, g)
	if err != nil {
		return nil, 0, err
	}
	return out.ToRelation(), cost, nil
}

func (t *Tree) evalColumnar(db *relation.Database, g *govern.Governor) (*relation.ColBlock, int, error) {
	if t.IsLeaf() {
		b := relation.FromRelation(db.Relation(t.Leaf))
		return b, b.Len(), nil
	}
	l, cl, err := t.Left.evalColumnar(db, g)
	if err != nil {
		return nil, 0, err
	}
	r, cr, err := t.Right.evalColumnar(db, g)
	if err != nil {
		return nil, 0, err
	}
	out, err := relation.JoinBlocksGoverned(g, l, r)
	if err != nil {
		return nil, 0, err
	}
	return out, out.Len() + cl + cr, nil
}
