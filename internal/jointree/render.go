package jointree

import (
	"strings"

	"repro/internal/hypergraph"
)

// Render draws the tree as ASCII art, one node per line, children indented
// under their parent — a textual analogue of the paper's Figures 1, 2 and 4.
// Internal nodes show the database scheme at the node (the set of relation
// schemes below it), leaves show their relation scheme.
func (t *Tree) Render(h *hypergraph.Hypergraph) string {
	names := SchemeNames(h)
	var b strings.Builder
	var walk func(n *Tree, prefix string, last bool, root bool)
	walk = func(n *Tree, prefix string, last, root bool) {
		connector := "├── "
		childPrefix := prefix + "│   "
		if last {
			connector = "└── "
			childPrefix = prefix + "    "
		}
		if root {
			connector = ""
			childPrefix = ""
		}
		b.WriteString(prefix + connector + nodeLabel(n, h, names) + "\n")
		if n.IsLeaf() {
			return
		}
		walk(n.Left, childPrefix, false, false)
		walk(n.Right, childPrefix, true, false)
	}
	walk(t, "", true, true)
	return strings.TrimRight(b.String(), "\n")
}

// nodeLabel renders a node: leaves by scheme name, internal nodes by the
// node's database scheme {S1, S2, …}.
func nodeLabel(n *Tree, h *hypergraph.Hypergraph, names []string) string {
	if n.IsLeaf() {
		return "{" + names[n.Leaf] + "}"
	}
	parts := make([]string, 0, n.Mask().Count())
	for _, i := range n.Mask().Indexes() {
		parts = append(parts, names[i])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
