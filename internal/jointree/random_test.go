package jointree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

func TestRandomTreeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	h, err := hypergraph.ParseScheme("AB BC CD DE EF")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		tr := RandomTree(rng, 5)
		if err := tr.Validate(h); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if RandomTree(rng, 0) != nil {
		t.Error("n=0 should yield nil")
	}
	if tr := RandomTree(rng, 1); !tr.IsLeaf() || tr.Leaf != 0 {
		t.Error("n=1 should yield the single leaf")
	}
}

// TestRandomTreeUniform checks Rémy's algorithm empirically: over n = 3
// relations there are exactly 12 ordered trees; a chi-squared-style bound
// on 12k samples should see every tree close to 1/12.
func TestRandomTreeUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	const samples = 24000
	counts := map[string]int{}
	for i := 0; i < samples; i++ {
		counts[RandomTree(rng, 3).Canon()]++
	}
	if len(counts) != 12 {
		t.Fatalf("saw %d distinct trees, want 12", len(counts))
	}
	expected := float64(samples) / 12
	for canon, c := range counts {
		if math.Abs(float64(c)-expected) > 0.15*expected {
			t.Errorf("tree %s drawn %d times, expected ≈ %.0f", canon, c, expected)
		}
	}
}

func TestRandomTreeCoversAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	// n = 4 has 120 ordered trees; 40k draws should hit every one.
	seen := map[string]bool{}
	for i := 0; i < 40000; i++ {
		seen[RandomTree(rng, 4).Canon()] = true
	}
	if len(seen) != 120 {
		t.Errorf("saw %d distinct trees, want 120", len(seen))
	}
}
