package jointree

import (
	"fmt"
	"math/big"

	"repro/internal/hypergraph"
)

// EnumerationLimit bounds how many trees the enumerators will produce before
// giving up, as a guard against accidental exponential blow-ups. The spaces
// are exponential by nature (that is the paper's point in §4); exhaustive
// enumeration is meant for small schemes.
const EnumerationLimit = 5_000_000

// ErrTooMany is returned when an enumeration would exceed EnumerationLimit.
var ErrTooMany = fmt.Errorf("jointree: enumeration exceeds %d trees", EnumerationLimit)

// AllTrees returns every join expression tree exactly over the scheme of h,
// treating join as noncommutative (both operand orders are distinct trees,
// as in the paper where Algorithm 2 is order-sensitive).
func AllTrees(h *hypergraph.Hypergraph) ([]*Tree, error) {
	if c := CountTrees(h.Len()); !c.IsInt64() || c.Int64() > EnumerationLimit {
		return nil, ErrTooMany
	}
	memo := make(map[hypergraph.Mask][]*Tree)
	return enumTrees(h.Full(), memo, nil), nil
}

// AllCPFTrees returns every Cartesian-product-free join expression tree
// exactly over the scheme of h (join noncommutative).
func AllCPFTrees(h *hypergraph.Hypergraph) ([]*Tree, error) {
	if c := CountCPFTrees(h); !c.IsInt64() || c.Int64() > EnumerationLimit {
		return nil, ErrTooMany
	}
	memo := make(map[hypergraph.Mask][]*Tree)
	return enumTrees(h.Full(), memo, func(l, r hypergraph.Mask) bool {
		return h.Overlapping(l, r)
	}), nil
}

// enumTrees enumerates trees over mask; admit, when non-nil, filters the
// (left, right) partitions at each node. Subtrees are shared across results,
// which is safe because trees are treated as immutable.
func enumTrees(mask hypergraph.Mask, memo map[hypergraph.Mask][]*Tree, admit func(l, r hypergraph.Mask) bool) []*Tree {
	if got, ok := memo[mask]; ok {
		return got
	}
	if mask.Count() == 1 {
		out := []*Tree{NewLeaf(mask.Indexes()[0])}
		memo[mask] = out
		return out
	}
	var out []*Tree
	// Iterate all nonempty proper submasks as the left operand; the
	// complement is the right operand. This visits each ordered pair once.
	for l := (mask - 1) & mask; l != 0; l = (l - 1) & mask {
		r := mask &^ l
		if admit != nil && !admit(l, r) {
			continue
		}
		ls := enumTrees(l, memo, admit)
		rs := enumTrees(r, memo, admit)
		for _, lt := range ls {
			for _, rt := range rs {
				out = append(out, NewJoin(lt, rt))
			}
		}
	}
	memo[mask] = out
	return out
}

// AllLinearTrees returns every linear join expression tree exactly over the
// scheme of h with the new relation always on the right:
// (...(Rσ(1) ⋈ Rσ(2)) ⋈ ...) ⋈ Rσ(n) for every permutation σ. When cpfOnly
// is set, only Cartesian-product-free orders are produced.
func AllLinearTrees(h *hypergraph.Hypergraph, cpfOnly bool) ([]*Tree, error) {
	n := h.Len()
	// n! trees; guard.
	total := big.NewInt(1)
	for i := 2; i <= n; i++ {
		total.Mul(total, big.NewInt(int64(i)))
	}
	if !total.IsInt64() || total.Int64() > EnumerationLimit {
		return nil, ErrTooMany
	}
	var out []*Tree
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var rec func(prefix *Tree, prefixMask hypergraph.Mask)
	rec = func(prefix *Tree, prefixMask hypergraph.Mask) {
		if len(perm) == n {
			out = append(out, prefix.Clone())
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if cpfOnly && prefix != nil && !h.Overlapping(prefixMask, hypergraph.MaskOf(i)) {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			next := NewLeaf(i)
			if prefix == nil {
				rec(next, hypergraph.MaskOf(i))
			} else {
				rec(NewJoin(prefix, next), prefixMask.With(i))
			}
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec(nil, 0)
	return out, nil
}

// CountTrees returns the number of join expression trees exactly over a
// scheme of n relations with join noncommutative: n! · Catalan(n−1), i.e.
// (2n−2)! / (n−1)!.
func CountTrees(n int) *big.Int {
	out := big.NewInt(1)
	for i := n; i <= 2*n-2; i++ {
		out.Mul(out, big.NewInt(int64(i)))
	}
	return out
}

// CountCPFTrees counts the Cartesian-product-free trees exactly over the
// scheme of h, by dynamic programming over edge subsets.
func CountCPFTrees(h *hypergraph.Hypergraph) *big.Int {
	memo := make(map[hypergraph.Mask]*big.Int)
	var count func(mask hypergraph.Mask) *big.Int
	count = func(mask hypergraph.Mask) *big.Int {
		if got, ok := memo[mask]; ok {
			return got
		}
		if mask.Count() == 1 {
			one := big.NewInt(1)
			memo[mask] = one
			return one
		}
		total := new(big.Int)
		for l := (mask - 1) & mask; l != 0; l = (l - 1) & mask {
			r := mask &^ l
			if !h.Overlapping(l, r) {
				continue
			}
			total.Add(total, new(big.Int).Mul(count(l), count(r)))
		}
		memo[mask] = total
		return total
	}
	return count(h.Full())
}

// CountLinearTrees counts linear trees (new relation on the right) over the
// scheme of h; with cpfOnly set, only Cartesian-product-free orders count.
func CountLinearTrees(h *hypergraph.Hypergraph, cpfOnly bool) *big.Int {
	n := h.Len()
	if !cpfOnly {
		out := big.NewInt(1)
		for i := 2; i <= n; i++ {
			out.Mul(out, big.NewInt(int64(i)))
		}
		return out
	}
	memo := make(map[hypergraph.Mask]*big.Int)
	var count func(mask hypergraph.Mask) *big.Int
	count = func(mask hypergraph.Mask) *big.Int {
		if got, ok := memo[mask]; ok {
			return got
		}
		if mask.Count() == 1 {
			one := big.NewInt(1)
			memo[mask] = one
			return one
		}
		total := new(big.Int)
		for _, i := range mask.Indexes() {
			rest := mask.Without(i)
			if !h.Overlapping(rest, hypergraph.MaskOf(i)) {
				continue
			}
			total.Add(total, count(rest))
		}
		memo[mask] = total
		return total
	}
	return count(h.Full())
}
