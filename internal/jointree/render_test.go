package jointree

import (
	"strings"
	"testing"
)

func TestRenderFigure1(t *testing.T) {
	h := paperScheme(t)
	tr := MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	got := tr.Render(h)
	want := strings.TrimSpace(`
{ABC, CDE, EFG, GHA}
├── {ABC, EFG}
│   ├── {ABC}
│   └── {EFG}
└── {CDE, GHA}
    ├── {CDE}
    └── {GHA}`)
	if got != want {
		t.Errorf("Render =\n%s\nwant\n%s", got, want)
	}
}

func TestRenderLeaf(t *testing.T) {
	h := paperScheme(t)
	got := NewLeaf(2).Render(h)
	if got != "{EFG}" {
		t.Errorf("Render(leaf) = %q", got)
	}
}

func TestRenderDeepSpine(t *testing.T) {
	h := paperScheme(t)
	tr := MustParse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA")
	got := tr.Render(h)
	if !strings.Contains(got, "{ABC, CDE, EFG}") {
		t.Errorf("internal node label missing:\n%s", got)
	}
	if lines := strings.Count(got, "\n") + 1; lines != 7 {
		t.Errorf("rendered %d lines, want 7 (one per node)", lines)
	}
}
