// Package jointree implements join expression trees (§2.4 of the paper):
// binary trees whose leaves are relation scheme occurrences and whose
// internal nodes are joins. It provides the Cartesian-product-free and
// linear predicates, evaluation under the paper's cost model, structural
// utilities, a parser/printer for the paper's notation, and exhaustive
// enumerators over the tree spaces whose sizes the paper discusses.
package jointree

import (
	"fmt"

	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// Tree is a join expression tree exactly over some database scheme: each
// relation scheme occurrence (edge index) appears at exactly one leaf.
// A node is a leaf when Leaf >= 0, in which case Left and Right are nil;
// otherwise it is a join of its two children.
type Tree struct {
	// Leaf is the relation scheme occurrence index, or -1 for a join node.
	Leaf int
	// Left and Right are the join operands of an internal node.
	Left, Right *Tree
}

// NewLeaf returns a leaf for relation index i.
func NewLeaf(i int) *Tree { return &Tree{Leaf: i} }

// NewJoin returns the join node l ⋈ r.
func NewJoin(l, r *Tree) *Tree { return &Tree{Leaf: -1, Left: l, Right: r} }

// IsLeaf reports whether t is a leaf.
func (t *Tree) IsLeaf() bool { return t.Leaf >= 0 }

// Mask returns the set of relation indexes at the leaves of t.
func (t *Tree) Mask() hypergraph.Mask {
	if t.IsLeaf() {
		return hypergraph.MaskOf(t.Leaf)
	}
	return t.Left.Mask() | t.Right.Mask()
}

// Leaves returns the leaf indexes in left-to-right order.
func (t *Tree) Leaves() []int {
	var out []int
	t.walkLeaves(&out)
	return out
}

func (t *Tree) walkLeaves(out *[]int) {
	if t.IsLeaf() {
		*out = append(*out, t.Leaf)
		return
	}
	t.Left.walkLeaves(out)
	t.Right.walkLeaves(out)
}

// Size returns the number of leaves.
func (t *Tree) Size() int {
	if t.IsLeaf() {
		return 1
	}
	return t.Left.Size() + t.Right.Size()
}

// Validate checks that t is exactly over the scheme of h: every edge index
// in [0, h.Len()) appears at exactly one leaf.
func (t *Tree) Validate(h *hypergraph.Hypergraph) error {
	seen := make([]int, h.Len())
	var walk func(*Tree) error
	walk = func(n *Tree) error {
		if n == nil {
			return fmt.Errorf("jointree: nil subtree")
		}
		if n.IsLeaf() {
			if n.Leaf >= h.Len() {
				return fmt.Errorf("jointree: leaf index %d out of range [0,%d)", n.Leaf, h.Len())
			}
			seen[n.Leaf]++
			return nil
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	if err := walk(t); err != nil {
		return err
	}
	for i, c := range seen {
		if c != 1 {
			return fmt.Errorf("jointree: relation %d occurs %d times (want exactly 1)", i, c)
		}
	}
	return nil
}

// IsCPF reports whether the tree is Cartesian-product-free over h: at every
// join node the operands' attribute sets overlap. Equivalently (paper §2.4),
// every node of the tree is a connected database scheme.
func (t *Tree) IsCPF(h *hypergraph.Hypergraph) bool {
	if t.IsLeaf() {
		return true
	}
	if !h.AttrsOf(t.Left.Mask()).Overlaps(h.AttrsOf(t.Right.Mask())) {
		return false
	}
	return t.Left.IsCPF(h) && t.Right.IsCPF(h)
}

// CartesianProducts returns the join nodes of t that are Cartesian products,
// in preorder. Empty result means the tree is CPF.
func (t *Tree) CartesianProducts(h *hypergraph.Hypergraph) []*Tree {
	var out []*Tree
	var walk func(*Tree)
	walk = func(n *Tree) {
		if n.IsLeaf() {
			return
		}
		if !h.AttrsOf(n.Left.Mask()).Overlaps(h.AttrsOf(n.Right.Mask())) {
			out = append(out, n)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t)
	return out
}

// IsLinear reports whether the tree is a linear join expression
// (...(R1 ⋈ R2) ⋈ ...) ⋈ Rn, up to swapping operands at each join: every
// internal node has at least one leaf child. The paper's cost model is
// symmetric in the operands, so mirrored spines are equivalent.
func (t *Tree) IsLinear() bool {
	if t.IsLeaf() {
		return true
	}
	if !t.Left.IsLeaf() && !t.Right.IsLeaf() {
		return false
	}
	return t.Left.IsLinear() && t.Right.IsLinear()
}

// Equal reports structural equality (same shape and leaf indexes).
func (t *Tree) Equal(u *Tree) bool {
	if t.IsLeaf() || u.IsLeaf() {
		return t.Leaf == u.Leaf
	}
	return t.Left.Equal(u.Left) && t.Right.Equal(u.Right)
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree {
	if t.IsLeaf() {
		return NewLeaf(t.Leaf)
	}
	return NewJoin(t.Left.Clone(), t.Right.Clone())
}

// Canon returns a canonical string key for the tree, treating join as
// noncommutative (the paper distinguishes E1 ⋈ E2 from E2 ⋈ E1 as
// expressions, and Algorithm 2 is sensitive to operand order).
func (t *Tree) Canon() string {
	if t.IsLeaf() {
		return fmt.Sprintf("%d", t.Leaf)
	}
	return "(" + t.Left.Canon() + " " + t.Right.Canon() + ")"
}

// CanonUnordered returns a canonical key treating join as commutative: trees
// that differ only by swapping operands map to the same key.
func (t *Tree) CanonUnordered() string {
	if t.IsLeaf() {
		return fmt.Sprintf("%d", t.Leaf)
	}
	l, r := t.Left.CanonUnordered(), t.Right.CanonUnordered()
	if l > r {
		l, r = r, l
	}
	return "(" + l + " " + r + ")"
}

// Eval evaluates the tree over the database (which must have one relation
// per edge of the scheme the tree is over) and returns the result together
// with the paper's cost: the sum of |R| over all leaves and all intermediate
// (and final) join results (§2.3).
func (t *Tree) Eval(db *relation.Database) (*relation.Relation, int) {
	out, cost, err := t.EvalGoverned(db, nil)
	if err != nil {
		panic(err) // unreachable: a nil governor never aborts
	}
	return out, cost
}

// EvalGoverned is Eval under a governor: every join charges its output
// tuples against the budgets, and cancellation/deadline aborts surface as
// the governor's typed error between (and inside) join steps. On abort the
// result is nil — never a partial join.
func (t *Tree) EvalGoverned(db *relation.Database, g *govern.Governor) (*relation.Relation, int, error) {
	if t.IsLeaf() {
		r := db.Relation(t.Leaf)
		return r, r.Len(), nil
	}
	l, cl, err := t.Left.EvalGoverned(db, g)
	if err != nil {
		return nil, 0, err
	}
	r, cr, err := t.Right.EvalGoverned(db, g)
	if err != nil {
		return nil, 0, err
	}
	out, err := relation.JoinGoverned(g, l, r)
	if err != nil {
		return nil, 0, err
	}
	return out, out.Len() + cl + cr, nil
}

// EvalParallelGoverned is EvalGoverned with intra-query parallelism: the
// two subtrees of every join node evaluate concurrently, and each join runs
// the partition-parallel operator with up to workers goroutines charging one
// shared governor scope. Result, cost, and budget-abort behavior match
// EvalGoverned; workers <= 1 falls back to it.
func (t *Tree) EvalParallelGoverned(db *relation.Database, g *govern.Governor, workers int) (*relation.Relation, int, error) {
	if workers <= 1 {
		return t.EvalGoverned(db, g)
	}
	if t.IsLeaf() {
		r := db.Relation(t.Leaf)
		return r, r.Len(), nil
	}
	var (
		r    *relation.Relation
		cr   int
		rErr error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		r, cr, rErr = t.Right.EvalParallelGoverned(db, g, workers)
	}()
	l, cl, lErr := t.Left.EvalParallelGoverned(db, g, workers)
	<-done
	if lErr != nil {
		return nil, 0, lErr
	}
	if rErr != nil {
		return nil, 0, rErr
	}
	out, err := relation.ParallelJoinGoverned(g, l, r, workers)
	if err != nil {
		return nil, 0, err
	}
	return out, out.Len() + cl + cr, nil
}

// Cost returns only the cost of Eval.
func (t *Tree) Cost(db *relation.Database) int {
	_, c := t.Eval(db)
	return c
}

// Depth returns the length of the longest root-to-leaf path in join steps:
// 0 for a leaf, n−1 for a linear tree over n relations, ⌈log₂ n⌉ for a
// balanced bushy tree.
func (t *Tree) Depth() int {
	if t.IsLeaf() {
		return 0
	}
	l, r := t.Left.Depth(), t.Right.Depth()
	if r > l {
		l = r
	}
	return l + 1
}
