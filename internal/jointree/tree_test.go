package jointree

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

func paperScheme(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTreeBasics(t *testing.T) {
	tr := NewJoin(NewJoin(NewLeaf(0), NewLeaf(2)), NewJoin(NewLeaf(1), NewLeaf(3)))
	if tr.IsLeaf() {
		t.Error("join node reported as leaf")
	}
	if tr.Size() != 4 {
		t.Errorf("Size = %d", tr.Size())
	}
	if tr.Mask() != hypergraph.MaskOf(0, 1, 2, 3) {
		t.Errorf("Mask = %v", tr.Mask())
	}
	leaves := tr.Leaves()
	if len(leaves) != 4 || leaves[0] != 0 || leaves[1] != 2 || leaves[2] != 1 || leaves[3] != 3 {
		t.Errorf("Leaves = %v", leaves)
	}
}

func TestValidateExactlyOver(t *testing.T) {
	h := paperScheme(t)
	good := NewJoin(NewJoin(NewLeaf(0), NewLeaf(1)), NewJoin(NewLeaf(2), NewLeaf(3)))
	if err := good.Validate(h); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	dup := NewJoin(NewLeaf(0), NewLeaf(0))
	if err := dup.Validate(h); err == nil {
		t.Error("duplicate leaf accepted")
	}
	missing := NewJoin(NewLeaf(0), NewLeaf(1))
	if err := missing.Validate(h); err == nil {
		t.Error("missing relations accepted")
	}
	oor := NewLeaf(9)
	if err := oor.Validate(h); err == nil {
		t.Error("out-of-range leaf accepted")
	}
}

func TestIsCPF(t *testing.T) {
	h := paperScheme(t)
	nonCPF := MustParse(h, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)")
	if nonCPF.IsCPF(h) {
		t.Error("Figure 1 tree reported CPF")
	}
	cpf := MustParse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA")
	if !cpf.IsCPF(h) {
		t.Error("Figure 2 tree reported non-CPF")
	}
	prods := nonCPF.CartesianProducts(h)
	if len(prods) != 2 {
		t.Errorf("Figure 1 has %d Cartesian products, want 2", len(prods))
	}
	if len(cpf.CartesianProducts(h)) != 0 {
		t.Error("CPF tree has Cartesian products")
	}
}

// TestCPFNodesConnected checks the paper's §2.4 equivalence: a tree is CPF
// iff every node is a connected database scheme.
func TestCPFNodesConnected(t *testing.T) {
	h := paperScheme(t)
	trees, err := AllTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		want := allNodesConnected(tr, h)
		if got := tr.IsCPF(h); got != want {
			t.Fatalf("IsCPF(%s) = %v, but nodes-connected = %v", tr.String(h), got, want)
		}
	}
}

func allNodesConnected(t *Tree, h *hypergraph.Hypergraph) bool {
	if !h.Connected(t.Mask()) {
		return false
	}
	if t.IsLeaf() {
		return true
	}
	return allNodesConnected(t.Left, h) && allNodesConnected(t.Right, h)
}

func TestIsLinear(t *testing.T) {
	lin := NewJoin(NewJoin(NewJoin(NewLeaf(0), NewLeaf(1)), NewLeaf(2)), NewLeaf(3))
	if !lin.IsLinear() {
		t.Error("left-deep tree not linear")
	}
	mirrored := NewJoin(NewLeaf(3), NewJoin(NewLeaf(2), NewJoin(NewLeaf(0), NewLeaf(1))))
	if !mirrored.IsLinear() {
		t.Error("right-deep tree not linear")
	}
	bushy := NewJoin(NewJoin(NewLeaf(0), NewLeaf(1)), NewJoin(NewLeaf(2), NewLeaf(3)))
	if bushy.IsLinear() {
		t.Error("bushy tree reported linear")
	}
	if !NewLeaf(0).IsLinear() {
		t.Error("leaf not linear")
	}
}

func TestEqualCloneCanon(t *testing.T) {
	a := NewJoin(NewLeaf(0), NewJoin(NewLeaf(1), NewLeaf(2)))
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Right.Left = NewLeaf(9)
	if a.Equal(b) {
		t.Error("mutated clone still equal (shallow clone?)")
	}
	c := NewJoin(NewJoin(NewLeaf(1), NewLeaf(2)), NewLeaf(0))
	if a.Equal(c) {
		t.Error("operand-swapped tree equal under ordered Equal")
	}
	if a.Canon() == c.Canon() {
		t.Error("ordered canon should distinguish operand order")
	}
	if a.CanonUnordered() != c.CanonUnordered() {
		t.Error("unordered canon should identify operand-swapped trees")
	}
}

// cycleDB builds the small Example-3-style database used across tests.
func cycleDB(t *testing.T, m, p int64) *relation.Database {
	t.Helper()
	mk := func(scheme string) *relation.Relation { return relation.New(relation.SchemaOfRunes(scheme)) }
	r1, r2, r3, r4 := mk("ABC"), mk("CDE"), mk("EFG"), mk("GHA")
	for link := int64(0); link < m; link++ {
		next := (link + 1) % m
		for pay := int64(0); pay < p; pay++ {
			for _, r := range []*relation.Relation{r1, r2, r3, r4} {
				r.MustInsert(relation.Ints(link, pay, next))
			}
		}
	}
	for _, r := range []*relation.Relation{r1, r2, r3, r4} {
		r.MustInsert(relation.Ints(-1, 0, -1))
	}
	return relation.MustDatabase(r1, r2, r3, r4)
}

func TestEvalCostModel(t *testing.T) {
	db := cycleDB(t, 3, 2)
	h := paperScheme(t)
	// Leaf cost is the relation size.
	leaf := NewLeaf(0)
	out, cost := leaf.Eval(db)
	if cost != db.Relation(0).Len() || out.Len() != cost {
		t.Errorf("leaf cost = %d", cost)
	}
	// Join cost per §2.3: |E(D)| + cost(E1) + cost(E2).
	tr := MustParse(h, "(ABC ⋈ CDE) ⋈ (EFG ⋈ GHA)")
	out, cost = tr.Eval(db)
	lOut, lCost := tr.Left.Eval(db)
	rOut, rCost := tr.Right.Eval(db)
	_ = lOut
	_ = rOut
	if cost != out.Len()+lCost+rCost {
		t.Errorf("cost = %d, want %d", cost, out.Len()+lCost+rCost)
	}
	if got := tr.Cost(db); got != cost {
		t.Errorf("Cost = %d, want %d", got, cost)
	}
	// Every tree over D evaluates to the same result.
	want := db.Join()
	if !out.Equal(want) {
		t.Error("tree evaluation != ⋈D")
	}
}

func TestEvalAllTreesSameResult(t *testing.T) {
	h := paperScheme(t)
	db := cycleDB(t, 3, 1)
	want := db.Join()
	trees, err := AllTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	// Check a sample of 50 trees (evaluating all 120 is fine too, but the
	// sample keeps the test fast while varying by seed).
	for i := 0; i < 50; i++ {
		tr := trees[rng.Intn(len(trees))]
		out, cost := tr.Eval(db)
		if !out.Equal(want) {
			t.Fatalf("tree %s evaluated wrong", tr.String(h))
		}
		if cost < db.TotalTuples()+want.Len() {
			t.Fatalf("cost %d below inputs+output lower bound", cost)
		}
	}
}

func TestDepth(t *testing.T) {
	if NewLeaf(0).Depth() != 0 {
		t.Error("leaf depth should be 0")
	}
	lin := NewJoin(NewJoin(NewJoin(NewLeaf(0), NewLeaf(1)), NewLeaf(2)), NewLeaf(3))
	if lin.Depth() != 3 {
		t.Errorf("linear depth = %d, want 3", lin.Depth())
	}
	bushy := NewJoin(NewJoin(NewLeaf(0), NewLeaf(1)), NewJoin(NewLeaf(2), NewLeaf(3)))
	if bushy.Depth() != 2 {
		t.Errorf("bushy depth = %d, want 2", bushy.Depth())
	}
}
