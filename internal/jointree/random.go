package jointree

import "math/rand"

// RandomTree draws a join expression tree exactly over n relations,
// uniformly at random among all (2n−2)!/(n−1)! ordered trees. The shape is
// sampled with Rémy's algorithm (uniform over binary tree shapes with
// labeled leaves, grown one leaf at a time by splitting a uniformly chosen
// node), which also assigns the leaf labels uniformly.
func RandomTree(rng *rand.Rand, n int) *Tree {
	if n <= 0 {
		return nil
	}
	// Rémy: maintain the list of all nodes; to add leaf k, pick any node u
	// uniformly, replace it with a new internal node whose children are u
	// and the new leaf, on a uniformly chosen side.
	root := NewLeaf(0)
	nodes := []*Tree{root}
	parent := map[*Tree]*Tree{}
	for k := 1; k < n; k++ {
		u := nodes[rng.Intn(len(nodes))]
		leaf := NewLeaf(k)
		var internal *Tree
		if rng.Intn(2) == 0 {
			internal = NewJoin(u, leaf)
		} else {
			internal = NewJoin(leaf, u)
		}
		if p, ok := parent[u]; ok {
			if p.Left == u {
				p.Left = internal
			} else {
				p.Right = internal
			}
			parent[internal] = p
		} else {
			root = internal
		}
		parent[u] = internal
		parent[leaf] = internal
		nodes = append(nodes, internal, leaf)
	}
	return root
}
