// Package govern bounds the resources a join execution may consume. The
// paper's whole argument is that bad plans blow up intermediate results;
// this package is the runtime counterpart of that observation: a Governor
// carries tuple budgets, a deadline, and a cancellation context, and every
// executing operator charges the tuples it materializes against it. When a
// limit is exceeded the operator aborts with a typed error (ErrTupleBudget,
// ErrCanceled, ErrDeadline — all matchable with errors.Is), so callers such
// as the engine facade can distinguish "this strategy blew its budget, try
// a safer one" from a genuine failure.
//
// The Governor is safe for concurrent use (counters are atomic), and a nil
// *Governor is a valid, zero-cost "no limits" governor, so operator
// implementations thread it unconditionally.
package govern

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Sentinel errors; match with errors.Is. Concrete errors returned by the
// Governor wrap these and carry the operator and the exhausted limit.
var (
	// ErrTupleBudget reports that MaxTuples or MaxIntermediateTuples was
	// exceeded.
	ErrTupleBudget = errors.New("govern: tuple budget exhausted")
	// ErrCanceled reports that the execution's context was canceled.
	ErrCanceled = errors.New("govern: execution canceled")
	// ErrDeadline reports that the deadline passed mid-execution.
	ErrDeadline = errors.New("govern: deadline exceeded")
	// ErrViewBudget reports that view maintenance (internal/ivm) exhausted
	// its budget. The serving layer marks the view stale and rebuilds it
	// instead of failing the ingest that triggered the maintenance; the
	// concrete error wraps both this sentinel and the underlying
	// ErrTupleBudget abort.
	ErrViewBudget = errors.New("govern: view maintenance budget exhausted")
)

// DefaultCheckEvery is the default number of operator loop iterations
// between cancellation/deadline polls.
const DefaultCheckEvery = 1024

// Limits configures a Governor. The zero value means "no limits".
//
// The budgets count tuples *produced* by operators (every join, semijoin,
// projection, or product output row) — the §2.3 "generated relations", not
// the inputs, and not the optimizer's search work (which Options.Budget in
// the engine bounds separately).
type Limits struct {
	// MaxTuples caps the total tuples produced across all operators of one
	// execution (0 = unlimited).
	MaxTuples int64
	// MaxIntermediateTuples caps the tuples produced by any single operator
	// — the size of any one intermediate relation (0 = unlimited).
	MaxIntermediateTuples int64
	// Deadline aborts execution after this instant (zero = none). If
	// Context also carries a deadline, the earlier one wins.
	Deadline time.Time
	// Context cancels execution when done (nil = context.Background()).
	Context context.Context
	// CheckEvery is the number of operator loop iterations between
	// cancellation/deadline polls (0 = DefaultCheckEvery). Budgets are
	// enforced on every produced tuple regardless.
	CheckEvery int
	// Pool, when set, is a tuple budget shared with other executions: every
	// produced tuple is charged against the pool in addition to this
	// execution's own MaxTuples. A scatter-gather coordinator gives each
	// shard the same Pool so the shards collectively observe exactly the
	// budget one sequential execution would — the abort fires on the same
	// global produced count regardless of how tuples split across shards.
	Pool *Pool
}

// Enabled reports whether any limit is set.
func (l Limits) Enabled() bool {
	return l.MaxTuples > 0 || l.MaxIntermediateTuples > 0 ||
		!l.Deadline.IsZero() || l.Context != nil || l.Pool != nil
}

// Pool is a tuple budget shared by several Governors. Charges are atomic,
// so concurrent executions (the per-shard governors of one scatter-gather
// query) collectively abort exactly when their total produced count first
// exceeds the budget — the same boundary a single Governor with
// MaxTuples = max enforces over one sequential execution.
type Pool struct {
	max  int64
	used atomic.Int64
}

// NewPool returns a pool holding max tuples. max <= 0 returns nil (no
// pooled limit), mirroring MaxTuples = 0.
func NewPool(max int64) *Pool {
	if max <= 0 {
		return nil
	}
	return &Pool{max: max}
}

// Max returns the pool's budget.
func (p *Pool) Max() int64 {
	if p == nil {
		return 0
	}
	return p.max
}

// Used returns the tuples charged so far across all sharing governors.
func (p *Pool) Used() int64 {
	if p == nil {
		return 0
	}
	return p.used.Load()
}

// WithTimeout returns a copy of l whose Deadline is now+d (taking the
// earlier deadline if one is already set). d <= 0 returns l unchanged.
func (l Limits) WithTimeout(d time.Duration) Limits {
	if d <= 0 {
		return l
	}
	dl := time.Now().Add(d)
	if l.Deadline.IsZero() || dl.Before(l.Deadline) {
		l.Deadline = dl
	}
	return l
}

// LimitError is the concrete error for an exhausted budget. It unwraps to
// ErrTupleBudget.
type LimitError struct {
	// Op names the operator that hit the limit ("relation.Join", ...).
	Op string
	// Limit names the exhausted field ("MaxTuples" or
	// "MaxIntermediateTuples").
	Limit string
	// Max is the configured budget; Produced is the count that exceeded it.
	Max, Produced int64
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("%v: %s produced %d tuples, %s is %d", ErrTupleBudget, e.Op, e.Produced, e.Limit, e.Max)
}

// Unwrap makes errors.Is(err, ErrTupleBudget) true.
func (e *LimitError) Unwrap() error { return ErrTupleBudget }

// AbortError is the concrete error for a cancellation or deadline abort. It
// unwraps to the matching sentinel (ErrCanceled or ErrDeadline) and, when
// the abort came from the context, to the context's error as well.
type AbortError struct {
	// Op names the operator that observed the abort.
	Op string
	// Sentinel is ErrCanceled or ErrDeadline.
	Sentinel error
	// Cause is the context's error when the context triggered the abort
	// (context.Canceled or context.DeadlineExceeded), else nil.
	Cause error
}

// Error implements error.
func (e *AbortError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("%v: at %s: %v", e.Sentinel, e.Op, e.Cause)
	}
	return fmt.Sprintf("%v: at %s", e.Sentinel, e.Op)
}

// Unwrap makes errors.Is match both the govern sentinel and the context
// cause.
func (e *AbortError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Sentinel, e.Cause}
	}
	return []error{e.Sentinel}
}

// Governor enforces Limits over one execution. Obtain one from New; the nil
// *Governor enforces nothing and costs nothing.
type Governor struct {
	lim         Limits
	active      bool // any budget/deadline/context set
	checkEvery  int
	deadline    time.Time // resolved earliest of Limits.Deadline and ctx deadline
	hasDeadline bool
	ctx         context.Context
	done        <-chan struct{}
	produced    atomic.Int64
	failpoint   func(op string) error
	span        *obs.Span
}

// New returns a Governor enforcing lim. It is valid (and cheap) to create
// one from zero Limits — only fault-injection hooks then apply.
func New(lim Limits) *Governor {
	g := &Governor{
		lim:        lim,
		active:     lim.Enabled(),
		checkEvery: lim.CheckEvery,
	}
	if g.checkEvery <= 0 {
		g.checkEvery = DefaultCheckEvery
	}
	g.deadline, g.hasDeadline = lim.Deadline, !lim.Deadline.IsZero()
	if lim.Context != nil {
		g.ctx = lim.Context
		g.done = lim.Context.Done()
		if dl, ok := lim.Context.Deadline(); ok && (!g.hasDeadline || dl.Before(g.deadline)) {
			g.deadline, g.hasDeadline = dl, true
		}
	}
	return g
}

// Limits returns the configured limits.
func (g *Governor) Limits() Limits {
	if g == nil {
		return Limits{}
	}
	return g.lim
}

// SetFailpoint installs a fault-injection hook consulted at every operator
// start (the engine wires the failpoint registry here). Must be set before
// execution starts; it is not synchronized against concurrent Begin calls.
func (g *Governor) SetFailpoint(fn func(op string) error) {
	if g != nil {
		g.failpoint = fn
	}
}

// SetSpan attaches the current tracing span, letting deep executors (the
// program schedulers, the wcoj enumerator) hang child spans off the
// governor they already receive instead of growing every signature. Like
// SetFailpoint it is installed by a single goroutine before the executor
// fans out, so no synchronization is needed; executors read it with Span.
func (g *Governor) SetSpan(s *obs.Span) {
	if g != nil {
		g.span = s
	}
}

// Span returns the span installed with SetSpan; nil when untraced (and on
// the nil Governor), which child-span call sites use to skip span-name
// formatting entirely.
func (g *Governor) Span() *obs.Span {
	if g == nil {
		return nil
	}
	return g.span
}

// Observe forces per-tuple accounting on even when no limit is set, so that
// Produced is meaningful for a traced but unlimited execution. The engine
// calls it when tracing is enabled.
func (g *Governor) Observe() {
	if g != nil {
		g.active = true
	}
}

// Produced returns the total tuples charged so far.
func (g *Governor) Produced() int64 {
	if g == nil {
		return 0
	}
	return g.produced.Load()
}

// Begin marks the start of one operator: the failpoint hook fires first,
// then cancellation/deadline are polled, so a cancellation is observed
// within one operator step even if no tuples flow. The returned scope
// charges the operator's output; both returns of a nil Governor are nil,
// and a nil *OpScope is valid.
//
// Begin itself is safe to call from concurrent operators (the parallel
// program executor begins several statements at once); the failpoint hook
// must have been installed before execution started.
func (g *Governor) Begin(op string) (*OpScope, error) {
	if g == nil {
		return nil, nil
	}
	if g.failpoint != nil {
		if err := g.failpoint(op); err != nil {
			return nil, err
		}
	}
	if err := g.poll(op); err != nil {
		return nil, err
	}
	if !g.active {
		// Only fault injection applies: skip per-tuple accounting entirely.
		return nil, nil
	}
	s := &OpScope{g: g, op: op}
	s.tick.Store(int64(g.checkEvery))
	return s, nil
}

// poll checks context cancellation and the deadline.
func (g *Governor) poll(op string) error {
	if g.done != nil {
		select {
		case <-g.done:
			cause := g.ctx.Err()
			sentinel := ErrCanceled
			if errors.Is(cause, context.DeadlineExceeded) {
				sentinel = ErrDeadline
			}
			return &AbortError{Op: op, Sentinel: sentinel, Cause: cause}
		default:
		}
	}
	if g.hasDeadline && time.Now().After(g.deadline) {
		return &AbortError{Op: op, Sentinel: ErrDeadline}
	}
	return nil
}

// OpScope tracks one operator's output against the governor. The nil scope
// (from a nil Governor) accepts everything.
//
// The counters are atomic, so one scope may be charged from many goroutines
// at once: a parallel operator begins a single scope and has every partition
// worker call Add with its deltas, which keeps MaxIntermediateTuples a
// property of the whole operator's output rather than of any one partition.
// Visit's cardinality-delta protocol is inherently single-writer; concurrent
// chargers must use Add.
type OpScope struct {
	g        *Governor
	op       string
	produced atomic.Int64
	tick     atomic.Int64
}

// Visit is called once per operator loop iteration with the operator's
// current output cardinality. It charges the delta since the last call
// against both budgets and periodically polls cancellation/deadline (every
// CheckEvery iterations, so a mid-operator cancellation is still observed
// promptly on iterations that produce nothing, e.g. a probe streak with no
// matches). Visit is for sequential operators — a single goroutine owns the
// cumulative count; concurrent partition workers charge with Add instead.
func (s *OpScope) Visit(produced int) error {
	if s == nil {
		return nil
	}
	delta := int64(produced) - s.produced.Load()
	if delta < 0 {
		delta = 0
	}
	return s.add(delta)
}

// Add charges delta newly produced tuples against both budgets and, like
// Visit, polls cancellation/deadline every CheckEvery calls — so workers
// should call it once per loop iteration even when the iteration produced
// nothing (delta 0), or a probe streak with no matches would never observe
// a cancellation. Add is safe for concurrent use: the per-operator and
// global counters are atomic, and the budget checks read the post-add
// totals, so across racing workers exactly the charges that fit the budget
// succeed and the first overshooting charge fails.
func (s *OpScope) Add(delta int) error {
	if s == nil {
		return nil
	}
	if delta < 0 {
		delta = 0
	}
	return s.add(int64(delta))
}

// add is the shared charging core of Visit and Add.
func (s *OpScope) add(delta int64) error {
	g := s.g
	if delta > 0 {
		opTotal := s.produced.Add(delta)
		total := g.produced.Add(delta)
		if g.lim.MaxIntermediateTuples > 0 && opTotal > g.lim.MaxIntermediateTuples {
			return &LimitError{Op: s.op, Limit: "MaxIntermediateTuples", Max: g.lim.MaxIntermediateTuples, Produced: opTotal}
		}
		if g.lim.MaxTuples > 0 && total > g.lim.MaxTuples {
			return &LimitError{Op: s.op, Limit: "MaxTuples", Max: g.lim.MaxTuples, Produced: total}
		}
		if p := g.lim.Pool; p != nil {
			if pooled := p.used.Add(delta); pooled > p.max {
				return &LimitError{Op: s.op, Limit: "MaxTuples", Max: p.max, Produced: pooled}
			}
		}
	}
	if s.tick.Add(-1) <= 0 {
		s.tick.Store(int64(g.checkEvery))
		return g.poll(s.op)
	}
	return nil
}
