package govern

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilGovernorIsUnlimited(t *testing.T) {
	var g *Governor
	scope, err := g.Begin("op")
	if err != nil {
		t.Fatalf("nil governor Begin: %v", err)
	}
	if scope != nil {
		t.Fatalf("nil governor returned non-nil scope")
	}
	for i := 0; i < 10_000; i++ {
		if err := scope.Visit(i); err != nil {
			t.Fatalf("nil scope Visit: %v", err)
		}
	}
	if g.Produced() != 0 {
		t.Fatalf("nil governor Produced = %d", g.Produced())
	}
}

func TestZeroLimitsSkipAccounting(t *testing.T) {
	g := New(Limits{})
	scope, err := g.Begin("op")
	if err != nil || scope != nil {
		t.Fatalf("zero-limit governor Begin = (%v, %v), want (nil, nil)", scope, err)
	}
}

func TestMaxTuplesAcrossOperators(t *testing.T) {
	g := New(Limits{MaxTuples: 100})
	for op := 0; ; op++ {
		scope, err := g.Begin(fmt.Sprintf("op%d", op))
		if err != nil {
			var le *LimitError
			if !errors.As(err, &le) || !errors.Is(err, ErrTupleBudget) {
				t.Fatalf("unexpected begin error: %v", err)
			}
			t.Fatalf("Begin should not enforce budgets, Visit does: %v", err)
		}
		var verr error
		for n := 1; n <= 60; n++ {
			if verr = scope.Visit(n); verr != nil {
				break
			}
		}
		if op == 0 {
			if verr != nil {
				t.Fatalf("first operator (60 tuples) should fit in 100: %v", verr)
			}
			continue
		}
		// Second operator pushes the total to 120 > 100.
		if verr == nil {
			t.Fatalf("second operator exceeded MaxTuples without error")
		}
		if !errors.Is(verr, ErrTupleBudget) {
			t.Fatalf("error %v does not match ErrTupleBudget", verr)
		}
		var le *LimitError
		if !errors.As(verr, &le) || le.Limit != "MaxTuples" {
			t.Fatalf("error %v is not a MaxTuples LimitError", verr)
		}
		return
	}
}

func TestMaxIntermediateTuples(t *testing.T) {
	g := New(Limits{MaxIntermediateTuples: 50})
	scope, err := g.Begin("big-op")
	if err != nil {
		t.Fatal(err)
	}
	var verr error
	for n := 1; n <= 60; n++ {
		if verr = scope.Visit(n); verr != nil {
			break
		}
	}
	if !errors.Is(verr, ErrTupleBudget) {
		t.Fatalf("got %v, want ErrTupleBudget", verr)
	}
	var le *LimitError
	if !errors.As(verr, &le) || le.Limit != "MaxIntermediateTuples" {
		t.Fatalf("error %v is not a MaxIntermediateTuples LimitError", verr)
	}
	// A fresh operator gets a fresh intermediate budget.
	scope2, err := g.Begin("next-op")
	if err != nil {
		t.Fatal(err)
	}
	if err := scope2.Visit(49); err != nil {
		t.Fatalf("fresh operator under the intermediate cap: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(Limits{Context: ctx})
	if _, err := g.Begin("op"); err != nil {
		t.Fatalf("pre-cancel Begin: %v", err)
	}
	cancel()
	_, err := g.Begin("op")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should also match context.Canceled", err)
	}
}

func TestCancellationMidOperator(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(Limits{Context: ctx, CheckEvery: 8})
	scope, err := g.Begin("op")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	var verr error
	for i := 0; i < 16; i++ { // poll fires within CheckEvery iterations
		if verr = scope.Visit(0); verr != nil {
			break
		}
	}
	if !errors.Is(verr, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled within CheckEvery iterations", verr)
	}
}

func TestDeadline(t *testing.T) {
	g := New(Limits{Deadline: time.Now().Add(-time.Millisecond)})
	_, err := g.Begin("op")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestContextDeadlineMapsToErrDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	g := New(Limits{Context: ctx})
	_, err := g.Begin("op")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v should also match context.DeadlineExceeded", err)
	}
}

func TestFailpointHookFiresAtBegin(t *testing.T) {
	boom := errors.New("boom")
	g := New(Limits{MaxTuples: 10})
	calls := 0
	g.SetFailpoint(func(op string) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if _, err := g.Begin("op1"); err != nil {
		t.Fatalf("first op: %v", err)
	}
	if _, err := g.Begin("op2"); !errors.Is(err, boom) {
		t.Fatalf("second op: got %v, want injected error", err)
	}
}

func TestConcurrentCharging(t *testing.T) {
	g := New(Limits{MaxTuples: 1_000_000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scope, err := g.Begin("op")
			if err != nil {
				t.Error(err)
				return
			}
			for n := 1; n <= 1000; n++ {
				if err := scope.Visit(n); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := g.Produced(); got != 8*1000 {
		t.Fatalf("Produced = %d, want %d", got, 8*1000)
	}
}

func TestWithTimeout(t *testing.T) {
	l := Limits{}.WithTimeout(time.Hour)
	if l.Deadline.IsZero() {
		t.Fatal("WithTimeout did not set a deadline")
	}
	earlier := time.Now().Add(time.Minute)
	l2 := Limits{Deadline: earlier}.WithTimeout(time.Hour)
	if !l2.Deadline.Equal(earlier) {
		t.Fatalf("WithTimeout overrode an earlier deadline: %v", l2.Deadline)
	}
	if got := (Limits{MaxTuples: 1}).WithTimeout(0); !got.Deadline.IsZero() {
		t.Fatal("WithTimeout(0) set a deadline")
	}
}

func TestEnabled(t *testing.T) {
	cases := []struct {
		lim  Limits
		want bool
	}{
		{Limits{}, false},
		{Limits{MaxTuples: 1}, true},
		{Limits{MaxIntermediateTuples: 1}, true},
		{Limits{Deadline: time.Now()}, true},
		{Limits{Context: context.Background()}, true},
	}
	for i, c := range cases {
		if got := c.lim.Enabled(); got != c.want {
			t.Errorf("case %d: Enabled = %v, want %v", i, got, c.want)
		}
	}
}

func TestSharedScopeConcurrentAdd(t *testing.T) {
	// One operator scope charged from many partition workers: the exact
	// total must land on both the scope and the governor.
	g := New(Limits{MaxTuples: 1_000_000})
	scope, err := g.Begin("relation.ParallelJoin")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				if err := scope.Add(1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := g.Produced(); got != 8*1000 {
		t.Fatalf("Produced = %d, want %d", got, 8*1000)
	}
}

func TestSharedScopeIntermediateBudgetIsPerOperator(t *testing.T) {
	// MaxIntermediateTuples bounds the whole operator's output, not any one
	// worker's share: 4 workers× 400 tuples must trip a 1000-tuple limit
	// even though every worker stays under it individually.
	g := New(Limits{MaxIntermediateTuples: 1000})
	scope, err := g.Begin("relation.ParallelJoin")
	if err != nil {
		t.Fatal(err)
	}
	var tripped atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 400; n++ {
				if err := scope.Add(1); err != nil {
					if !errors.Is(err, ErrTupleBudget) {
						t.Errorf("got %v, want ErrTupleBudget", err)
					}
					tripped.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tripped.Load() == 0 {
		t.Fatal("no worker observed the shared intermediate budget")
	}
}

func TestSharedScopeAddZeroPollsCancellation(t *testing.T) {
	// A probe streak with no matches still observes a cancellation: Add(0)
	// ticks the poll counter.
	ctx, cancel := context.WithCancel(context.Background())
	g := New(Limits{Context: ctx, CheckEvery: 16})
	scope, err := g.Begin("relation.ParallelJoin")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	var aborted error
	for i := 0; i < 64 && aborted == nil; i++ {
		aborted = scope.Add(0)
	}
	if !errors.Is(aborted, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", aborted)
	}
}

func TestSharedScopeExactBudgetNotExceeded(t *testing.T) {
	// Racing workers charging exactly the budget must all succeed; one more
	// charge must fail. The budget check reads post-add totals, so the
	// outcome is deterministic regardless of interleaving.
	g := New(Limits{MaxTuples: 800})
	scope, err := g.Begin("op")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 100; n++ {
				if err := scope.Add(1); err != nil {
					t.Errorf("charge within budget failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := scope.Add(1); !errors.Is(err, ErrTupleBudget) {
		t.Fatalf("charge beyond budget: got %v, want ErrTupleBudget", err)
	}
}
