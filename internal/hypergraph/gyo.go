package hypergraph

import "fmt"

// JoinTree is a join tree over the edges of a hypergraph, produced by the
// GYO reduction of an acyclic scheme. Nodes are edge indexes; Parent[Root]
// is -1. The defining property: for every attribute, the set of nodes whose
// edge contains it forms a connected subtree.
type JoinTree struct {
	// Parent[i] is the parent edge index of edge i, or -1 for the root.
	Parent []int
	// Root is the index of the root edge.
	Root int
	// RemovalOrder lists the non-root edges in the order the GYO reduction
	// removed them (leaves of the reduction first). Processing semijoins in
	// this order, then in reverse, yields a full reducer.
	RemovalOrder []int
}

// Children returns, for each node, its children in ascending index order.
func (t *JoinTree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// GYO runs the Graham / Yu–Özsoyoğlu reduction. It returns a join tree and
// true when the scheme is acyclic (a "tree scheme"); otherwise nil and
// false.
//
// An ear is an edge e for which some other remaining edge f covers every
// attribute of e that also occurs in a third remaining edge; equivalently,
// each attribute of e is either exclusive to e or contained in f. Removing
// ears until a single edge remains succeeds exactly on acyclic schemes.
func (h *Hypergraph) GYO() (*JoinTree, bool) {
	n := len(h.edges)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	remaining := h.Full()
	var order []int

	for remaining.Count() > 1 {
		ear, par := h.findEar(remaining)
		if ear < 0 {
			return nil, false
		}
		parent[ear] = par
		order = append(order, ear)
		remaining = remaining.Without(ear)
	}
	root := remaining.Indexes()[0]
	return &JoinTree{Parent: parent, Root: root, RemovalOrder: order}, true
}

// findEar locates an ear within the remaining edges, returning its index and
// the witness parent edge, or (-1, -1) when none exists.
func (h *Hypergraph) findEar(remaining Mask) (ear, parent int) {
	idx := remaining.Indexes()
	for _, e := range idx {
		// shared = attributes of e occurring in some other remaining edge.
		var shared = h.edges[e].Intersect(h.AttrsOf(remaining.Without(e)))
		if shared.IsEmpty() {
			// e is isolated among the remaining edges; any other edge can
			// adopt it (this arises only for disconnected schemes).
			for _, f := range idx {
				if f != e {
					return e, f
				}
			}
		}
		for _, f := range idx {
			if f == e {
				continue
			}
			if h.edges[f].ContainsAll(shared) {
				return e, f
			}
		}
	}
	return -1, -1
}

// Acyclic reports whether the scheme is acyclic (GYO-reducible).
func (h *Hypergraph) Acyclic() bool {
	_, ok := h.GYO()
	return ok
}

// Core returns the scheme's cyclic core: the edges that remain after
// removing ears until none is left. An acyclic scheme's core is empty (or
// the last single edge); a cyclic scheme's core is the irreducibly cyclic
// part — for a cycle with pendant chains attached, exactly the cycle. The
// core is what any reduction-based method is ultimately stuck with, and
// what the paper's program derivation handles head-on.
func (h *Hypergraph) Core() Mask {
	remaining := h.Full()
	for remaining.Count() > 1 {
		ear, _ := h.findEar(remaining)
		if ear < 0 {
			return remaining
		}
		remaining = remaining.Without(ear)
	}
	return 0
}

// Validate checks the join-tree invariant against the hypergraph: for every
// attribute, the nodes containing it induce a connected subtree. It returns
// nil when the invariant holds.
func (t *JoinTree) Validate(h *Hypergraph) error {
	if len(t.Parent) != h.Len() {
		return fmt.Errorf("hypergraph: join tree has %d nodes, scheme has %d", len(t.Parent), h.Len())
	}
	for _, a := range h.Attrs() {
		// Collect nodes containing a.
		var holders []int
		for i := 0; i < h.Len(); i++ {
			if h.Edge(i).Contains(a) {
				holders = append(holders, i)
			}
		}
		if len(holders) <= 1 {
			continue
		}
		// The subtree induced by holders is connected iff each holder other
		// than the "highest" one has an ancestor path to another holder
		// through nodes... simpler: check that for every holder pair, every
		// node on the tree path between them also contains a. Equivalent
		// check: count holders whose parent chain reaches another holder
		// without leaving the holder set, expecting exactly one "top".
		tops := 0
		inSet := make(map[int]bool, len(holders))
		for _, v := range holders {
			inSet[v] = true
		}
		for _, v := range holders {
			p := t.Parent[v]
			if p == -1 || !inSet[p] {
				tops++
			}
		}
		if tops != 1 {
			return fmt.Errorf("hypergraph: attribute %q induces %d subtrees in the join tree", a, tops)
		}
	}
	return nil
}
