package hypergraph_test

import (
	"fmt"
	"log"

	"repro/internal/hypergraph"
)

// ExampleHypergraph_GYO distinguishes acyclic from cyclic schemes.
func ExampleHypergraph_GYO() {
	chain, err := hypergraph.ParseScheme("AB BC CD")
	if err != nil {
		log.Fatal(err)
	}
	cycle, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chain acyclic:", chain.Acyclic())
	fmt.Println("paper's 4-cycle acyclic:", cycle.Acyclic())
	// Output:
	// chain acyclic: true
	// paper's 4-cycle acyclic: false
}

// ExampleHypergraph_Components shows the connectivity machinery Algorithm 1
// runs on: the opposite pair {ABC, EFG} splits into two components.
func ExampleHypergraph_Components() {
	h, err := hypergraph.ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		log.Fatal(err)
	}
	opposite := hypergraph.MaskOf(0, 2) // {ABC, EFG}
	fmt.Println("connected:", h.Connected(opposite))
	fmt.Println("components:", len(h.Components(opposite)))
	adjacent := hypergraph.MaskOf(0, 1) // {ABC, CDE} share C
	fmt.Println("adjacent connected:", h.Connected(adjacent))
	// Output:
	// connected: false
	// components: 2
	// adjacent connected: true
}

// ExampleHypergraph_Core extracts the irreducibly cyclic part of a scheme.
func ExampleHypergraph_Core() {
	h, err := hypergraph.ParseScheme("AB BC CA CX XY")
	if err != nil {
		log.Fatal(err)
	}
	core := h.Core()
	fmt.Println("core edges:", core.Count())
	for _, i := range core.Indexes() {
		fmt.Println(" ", h.DisplayName(i))
	}
	// Output:
	// core edges: 3
	//   AB
	//   BC
	//   CA
}
