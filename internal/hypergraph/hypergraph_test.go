package hypergraph

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func paperScheme(t *testing.T) *Hypergraph {
	t.Helper()
	h, err := ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		t.Fatalf("ParseScheme: %v", err)
	}
	return h
}

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 2, 5)
	if !m.Has(0) || !m.Has(2) || !m.Has(5) || m.Has(1) {
		t.Error("Has wrong")
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
	got := m.Indexes()
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("Indexes = %v", got)
	}
	if m.With(1) != MaskOf(0, 1, 2, 5) || m.Without(2) != MaskOf(0, 5) {
		t.Error("With/Without wrong")
	}
	if FullMask(3) != MaskOf(0, 1, 2) {
		t.Error("FullMask wrong")
	}
	if FullMask(64) != ^Mask(0) {
		t.Error("FullMask(64) wrong")
	}
	if m.String() != "{0,2,5}" {
		t.Errorf("String = %q", m.String())
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("no edges accepted")
	}
	if _, err := New([]relation.AttrSet{nil}); err == nil {
		t.Error("empty edge accepted")
	}
	edges := make([]relation.AttrSet, 65)
	for i := range edges {
		edges[i] = relation.NewAttrSet("A")
	}
	if _, err := New(edges); err == nil {
		t.Error("65 edges accepted")
	}
}

func TestParseSchemeDisplayNames(t *testing.T) {
	h := paperScheme(t)
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.DisplayName(3) != "GHA" {
		t.Errorf("DisplayName(3) = %q, want GHA (declaration order preserved)", h.DisplayName(3))
	}
	if !h.Edge(3).Equal(relation.AttrSetOfRunes("AGH")) {
		t.Errorf("Edge(3) = %v", h.Edge(3))
	}
	if !h.Attrs().Equal(relation.AttrSetOfRunes("ABCDEFGH")) {
		t.Errorf("Attrs = %v", h.Attrs())
	}
}

func TestAttrsOf(t *testing.T) {
	h := paperScheme(t)
	got := h.AttrsOf(MaskOf(0, 2))
	if !got.Equal(relation.AttrSetOfRunes("ABCEFG")) {
		t.Errorf("AttrsOf = %v", got)
	}
	if h.AttrsOf(0) != nil {
		t.Error("AttrsOf(∅) should be empty")
	}
}

func TestComponents(t *testing.T) {
	h := paperScheme(t)
	// ABC and EFG share no attributes: two components.
	comps := h.Components(MaskOf(0, 2))
	if len(comps) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	if comps[0] != MaskOf(0) || comps[1] != MaskOf(2) {
		t.Errorf("Components order = %v", comps)
	}
	// The full 4-cycle is connected.
	if comps := h.Components(h.Full()); len(comps) != 1 || comps[0] != h.Full() {
		t.Errorf("full scheme components = %v", comps)
	}
	// ABC and CDE share C.
	if comps := h.Components(MaskOf(0, 1)); len(comps) != 1 {
		t.Errorf("adjacent pair components = %v", comps)
	}
	if got := h.Components(0); got != nil {
		t.Errorf("Components(∅) = %v", got)
	}
}

func TestConnected(t *testing.T) {
	h := paperScheme(t)
	if !h.Connected(h.Full()) {
		t.Error("4-cycle should be connected")
	}
	if h.Connected(MaskOf(0, 2)) {
		t.Error("opposite pair should be disconnected")
	}
	if !h.Connected(MaskOf(1)) {
		t.Error("singleton should be connected")
	}
	if h.Connected(0) {
		t.Error("empty mask should not be connected")
	}
	// Removing one edge from the cycle keeps it connected (it is a path).
	for i := 0; i < 4; i++ {
		if !h.Connected(h.Full().Without(i)) {
			t.Errorf("cycle minus edge %d should be connected", i)
		}
	}
}

func TestNeighborsAndOverlapping(t *testing.T) {
	h := paperScheme(t)
	// Neighbors of ABC among all others: CDE (C) and GHA (A), not EFG.
	got := h.Neighbors(MaskOf(0), h.Full())
	if got != MaskOf(1, 3) {
		t.Errorf("Neighbors = %v", got)
	}
	if !h.Overlapping(MaskOf(0), MaskOf(1)) || h.Overlapping(MaskOf(0), MaskOf(2)) {
		t.Error("Overlapping wrong")
	}
	// Overlapping differs from Connected of the union for non-adjacent but
	// transitively connected sets: {ABC} and {EFG} do not overlap even
	// though the full scheme is connected.
	if h.Overlapping(MaskOf(0), MaskOf(2)) {
		t.Error("ABC and EFG must not overlap")
	}
}

func TestDuplicateSchemes(t *testing.T) {
	h, err := ParseScheme("AB AB BC")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Connected(h.Full()) {
		t.Error("duplicated scheme should be connected")
	}
	if got := h.Components(MaskOf(0, 1)); len(got) != 1 {
		t.Errorf("duplicate edges should connect to each other: %v", got)
	}
}

func TestConnectivityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		edges := make([]relation.AttrSet, n)
		for i := range edges {
			k := 1 + rng.Intn(3)
			attrs := make([]string, k)
			for j := range attrs {
				attrs[j] = string(rune('A' + rng.Intn(6)))
			}
			edges[i] = relation.NewAttrSet(attrs...)
		}
		h, err := New(edges)
		if err != nil {
			t.Fatal(err)
		}
		for mask := Mask(1); mask <= h.Full(); mask++ {
			want := bruteConnected(h, mask)
			if got := h.Connected(mask); got != want {
				t.Fatalf("trial %d: Connected(%v) = %v, want %v on %s", trial, mask, got, want, h)
			}
			// Components partition the mask and are each connected.
			var union Mask
			for _, c := range h.Components(mask) {
				if !bruteConnected(h, c) {
					t.Fatalf("component %v not connected", c)
				}
				if union&c != 0 {
					t.Fatalf("components overlap")
				}
				union |= c
			}
			if union != mask {
				t.Fatalf("components do not cover mask")
			}
		}
	}
}

// bruteConnected is an O(n³) reference connectivity check.
func bruteConnected(h *Hypergraph, mask Mask) bool {
	idx := mask.Indexes()
	if len(idx) == 0 {
		return false
	}
	reach := map[int]bool{idx[0]: true}
	for changed := true; changed; {
		changed = false
		for _, i := range idx {
			if reach[i] {
				continue
			}
			for _, j := range idx {
				if reach[j] && h.Edge(i).Overlaps(h.Edge(j)) {
					reach[i] = true
					changed = true
				}
			}
		}
	}
	for _, i := range idx {
		if !reach[i] {
			return false
		}
	}
	return true
}

func TestPath(t *testing.T) {
	h := paperScheme(t)
	full := h.Full()
	// ABC to EFG: shortest paths go through CDE or GHA (length 3).
	p := h.Path(0, 2, full)
	if len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Errorf("Path(ABC,EFG) = %v", p)
	}
	// Adjacent pair: length 2.
	if p := h.Path(0, 1, full); len(p) != 2 {
		t.Errorf("Path(ABC,CDE) = %v", p)
	}
	// Same edge: the one-edge path.
	if p := h.Path(3, 3, full); len(p) != 1 || p[0] != 3 {
		t.Errorf("Path(GHA,GHA) = %v", p)
	}
	// Restricting the mask can disconnect: ABC to EFG without CDE and GHA.
	if p := h.Path(0, 2, MaskOf(0, 2)); p != nil {
		t.Errorf("Path in disconnected restriction = %v", p)
	}
	// Endpoint outside the mask.
	if p := h.Path(0, 1, MaskOf(1, 2)); p != nil {
		t.Errorf("Path with endpoint outside mask = %v", p)
	}
	// Every consecutive pair on a path overlaps.
	p = h.Path(1, 3, full)
	for k := 1; k < len(p); k++ {
		if !h.Edge(p[k-1]).Overlaps(h.Edge(p[k])) {
			t.Errorf("path edges %d and %d do not overlap", p[k-1], p[k])
		}
	}
}

// TestAttrsOfUnion: AttrsOf distributes over mask union.
func TestAttrsOfUnion(t *testing.T) {
	h := paperScheme(t)
	for a := Mask(1); a <= h.Full(); a++ {
		for b := Mask(1); b <= h.Full(); b++ {
			want := h.AttrsOf(a).Union(h.AttrsOf(b))
			if got := h.AttrsOf(a | b); !got.Equal(want) {
				t.Fatalf("AttrsOf(%v|%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}
