package hypergraph

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func mustParse(t *testing.T, s string) *Hypergraph {
	t.Helper()
	h, err := ParseScheme(s)
	if err != nil {
		t.Fatalf("ParseScheme(%q): %v", s, err)
	}
	return h
}

func TestGYOAcyclicCases(t *testing.T) {
	cases := []struct {
		scheme string
		want   bool
	}{
		{"AB BC CD", true},           // chain
		{"AB AC AD", true},           // star
		{"ABC BCD CDE", true},        // overlapping chain
		{"ABC CDE EFG GHA", false},   // the paper's 4-cycle
		{"AB BC CA", false},          // triangle
		{"ABC ABD ACD BCD", false},   // 3-uniform cycle
		{"AB", true},                 // single edge
		{"AB AB", true},              // duplicate edges
		{"ABC AB BC", true},          // edges subsumed by a big edge
		{"AB BC CA ABC", true},       // triangle + covering edge is acyclic
		{"AB CD", true},              // disconnected but acyclic
		{"AB BC CA DE EF FD", false}, // two triangles
		{"ABCDE AB BC CD DE EA", true} /* covered cycle */}
	for _, c := range cases {
		h := mustParse(t, c.scheme)
		if got := h.Acyclic(); got != c.want {
			t.Errorf("Acyclic(%s) = %v, want %v", c.scheme, got, c.want)
		}
	}
}

func TestGYOJoinTreeValid(t *testing.T) {
	for _, scheme := range []string{"AB BC CD", "AB AC AD", "ABC BCD CDE", "ABC AB BC", "AB CD"} {
		h := mustParse(t, scheme)
		jt, ok := h.GYO()
		if !ok {
			t.Fatalf("GYO(%s) reported cyclic", scheme)
		}
		if err := jt.Validate(h); err != nil {
			t.Errorf("GYO(%s): %v", scheme, err)
		}
		// Exactly one root; every non-root has a parent; removal order
		// covers all non-roots.
		roots := 0
		for _, p := range jt.Parent {
			if p == -1 {
				roots++
			}
		}
		if roots != 1 {
			t.Errorf("GYO(%s): %d roots", scheme, roots)
		}
		if len(jt.RemovalOrder) != h.Len()-1 {
			t.Errorf("GYO(%s): removal order has %d entries, want %d", scheme, len(jt.RemovalOrder), h.Len()-1)
		}
	}
}

func TestGYOCyclicReturnsNil(t *testing.T) {
	h := mustParse(t, "AB BC CA")
	if jt, ok := h.GYO(); ok || jt != nil {
		t.Error("GYO accepted a triangle")
	}
}

func TestJoinTreeChildren(t *testing.T) {
	h := mustParse(t, "AB BC CD")
	jt, ok := h.GYO()
	if !ok {
		t.Fatal("chain reported cyclic")
	}
	ch := jt.Children()
	total := 0
	for _, c := range ch {
		total += len(c)
	}
	if total != h.Len()-1 {
		t.Errorf("children count = %d, want %d", total, h.Len()-1)
	}
}

// TestGYOAgreesWithEnumeration cross-checks GYO against a brute-force
// acyclicity oracle on random small schemes: a scheme is acyclic iff some
// join tree over the edges satisfies the running-intersection property.
func TestGYOAgreesWithEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(4)
		edges := make([]relation.AttrSet, n)
		for i := range edges {
			k := 1 + rng.Intn(3)
			attrs := make([]string, k)
			for j := range attrs {
				attrs[j] = string(rune('A' + rng.Intn(5)))
			}
			edges[i] = relation.NewAttrSet(attrs...)
		}
		h, err := New(edges)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAcyclic(h)
		if got := h.Acyclic(); got != want {
			t.Fatalf("trial %d: Acyclic(%s) = %v, want %v", trial, h, got, want)
		}
	}
}

// bruteAcyclic enumerates all parent functions (rooted spanning trees over
// the complete graph of edges) and checks the running-intersection property
// for each; only feasible for tiny n.
func bruteAcyclic(h *Hypergraph) bool {
	n := h.Len()
	if n == 1 {
		return true
	}
	parent := make([]int, n)
	var try func(root, i int) bool
	try = func(root, i int) bool {
		if i == n {
			jt := &JoinTree{Parent: parent, Root: root}
			return jt.Validate(h) == nil && isTree(parent, root)
		}
		if i == root {
			parent[i] = -1
			return try(root, i+1)
		}
		for p := 0; p < n; p++ {
			if p == i {
				continue
			}
			parent[i] = p
			if try(root, i+1) {
				return true
			}
		}
		return false
	}
	for root := 0; root < n; root++ {
		if try(root, 0) {
			return true
		}
	}
	return false
}

// isTree checks the parent function is acyclic (reaches the root).
func isTree(parent []int, root int) bool {
	for i := range parent {
		seen := map[int]bool{}
		for v := i; v != root; v = parent[v] {
			if v == -1 || seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	return true
}

func TestCore(t *testing.T) {
	// Acyclic schemes have empty cores.
	for _, s := range []string{"AB BC CD", "AB AC AD", "ABC AB BC"} {
		h := mustParse(t, s)
		if core := h.Core(); core != 0 {
			t.Errorf("Core(%s) = %v, want empty", s, core)
		}
	}
	// A pure cycle is its own core.
	cyc := mustParse(t, "ABC CDE EFG GHA")
	if core := cyc.Core(); core != cyc.Full() {
		t.Errorf("Core(4-cycle) = %v, want all edges", core)
	}
	// Cycle plus pendant chain: the chain strips away, the cycle remains.
	mixed := mustParse(t, "AB BC CA CX XY")
	core := mixed.Core()
	if core != MaskOf(0, 1, 2) {
		t.Errorf("Core(triangle+chain) = %v, want {0,1,2}", core)
	}
	// Two disjoint triangles: both remain.
	two := mustParse(t, "AB BC CA DE EF FD")
	if got := two.Core().Count(); got != 6 {
		t.Errorf("Core(two triangles) has %d edges, want 6", got)
	}
}
