// Package hypergraph represents a database scheme as a hypergraph whose
// nodes are attributes and whose hyperedges are relation schemes, and
// provides the connectivity machinery the paper's algorithms need:
// connected components of edge subsets, connectivity tests, and the GYO
// reduction used to recognize acyclic schemes and build join trees.
//
// Edge subsets are bitmasks (Mask), so a scheme may have at most 64 relation
// scheme occurrences — far beyond anything join-order search can enumerate.
package hypergraph

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/relation"
)

// Mask is a subset of hyperedges, one bit per edge index.
type Mask uint64

// MaskOf builds a mask with the given edge indexes set.
func MaskOf(idx ...int) Mask {
	var m Mask
	for _, i := range idx {
		m |= 1 << uint(i)
	}
	return m
}

// FullMask returns the mask with the n lowest bits set.
func FullMask(n int) Mask {
	if n >= 64 {
		return ^Mask(0)
	}
	return (1 << uint(n)) - 1
}

// Has reports whether edge i is in the mask.
func (m Mask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// With returns the mask with edge i added.
func (m Mask) With(i int) Mask { return m | 1<<uint(i) }

// Without returns the mask with edge i removed.
func (m Mask) Without(i int) Mask { return m &^ (1 << uint(i)) }

// Count returns the number of edges in the mask.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Indexes returns the edge indexes in the mask, ascending.
func (m Mask) Indexes() []int {
	out := make([]int, 0, m.Count())
	for x := m; x != 0; x &= x - 1 {
		out = append(out, bits.TrailingZeros64(uint64(x)))
	}
	return out
}

// String renders the mask as its index list.
func (m Mask) String() string {
	parts := make([]string, 0, m.Count())
	for _, i := range m.Indexes() {
		parts = append(parts, fmt.Sprint(i))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Hypergraph is a database scheme: an indexed multiset of hyperedges, each
// an attribute set. It is immutable after construction.
type Hypergraph struct {
	edges []relation.AttrSet
	attrs relation.AttrSet
	// display holds optional per-edge display names (e.g. "GHA" in the
	// paper's attribute order rather than the sorted "AGH"); empty strings
	// fall back to the sorted attribute-set rendering.
	display []string
	// adjacency[i] is the mask of edges sharing at least one attribute
	// with edge i (excluding i itself unless duplicated).
	adjacency []Mask
}

// New builds a hypergraph from the given edges. It returns an error when
// there are no edges, more than 64 edges, or an empty edge (an empty
// relation scheme cannot participate in connectivity).
func New(edges []relation.AttrSet) (*Hypergraph, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("hypergraph: no edges")
	}
	if len(edges) > 64 {
		return nil, fmt.Errorf("hypergraph: %d edges exceeds the 64-edge limit", len(edges))
	}
	h := &Hypergraph{edges: append([]relation.AttrSet(nil), edges...)}
	for i, e := range h.edges {
		if e.IsEmpty() {
			return nil, fmt.Errorf("hypergraph: edge %d is empty", i)
		}
		h.attrs = h.attrs.Union(e)
	}
	h.adjacency = make([]Mask, len(h.edges))
	for i := range h.edges {
		for j := range h.edges {
			if i != j && h.edges[i].Overlaps(h.edges[j]) {
				h.adjacency[i] |= 1 << uint(j)
			}
		}
	}
	return h, nil
}

// Must is New that panics on error.
func Must(edges []relation.AttrSet) *Hypergraph {
	h, err := New(edges)
	if err != nil {
		panic(err)
	}
	return h
}

// OfScheme builds the hypergraph of a database's scheme. Each edge's
// display name preserves the relation's column order (so a relation built
// over SchemaOfRunes("GHA") prints as GHA, not the sorted AGH).
func OfScheme(db *relation.Database) *Hypergraph {
	h := Must(db.Schemes())
	h.display = make([]string, db.Len())
	for i := 0; i < db.Len(); i++ {
		h.display[i] = db.Relation(i).Schema().String()
	}
	return h
}

// ParseScheme builds a hypergraph from the paper's compact notation: each
// word is a relation scheme of single-character attributes, e.g.
// "ABC CDE EFG GHA". The words are kept as display names, so printed trees
// and programs echo the paper's attribute order ("GHA" rather than "AGH").
func ParseScheme(s string) (*Hypergraph, error) {
	fields := strings.Fields(s)
	edges := make([]relation.AttrSet, len(fields))
	for i, f := range fields {
		edges[i] = relation.AttrSetOfRunes(f)
	}
	h, err := New(edges)
	if err != nil {
		return nil, err
	}
	h.display = append([]string(nil), fields...)
	return h, nil
}

// DisplayName returns the preferred rendering of edge i: the name it was
// declared with when available, otherwise the sorted attribute-set string.
func (h *Hypergraph) DisplayName(i int) string {
	if i < len(h.display) && h.display[i] != "" {
		return h.display[i]
	}
	return h.edges[i].String()
}

// Len returns the number of edges (relation scheme occurrences), r in
// Theorem 2.
func (h *Hypergraph) Len() int { return len(h.edges) }

// Edge returns the attribute set of edge i.
func (h *Hypergraph) Edge(i int) relation.AttrSet { return h.edges[i] }

// Edges returns all edges in index order; callers must not modify the slice.
func (h *Hypergraph) Edges() []relation.AttrSet { return h.edges }

// Attrs returns the set of all attributes, whose size is a in Theorem 2.
func (h *Hypergraph) Attrs() relation.AttrSet { return h.attrs }

// Full returns the mask of all edges.
func (h *Hypergraph) Full() Mask { return FullMask(len(h.edges)) }

// AttrsOf returns the union of the attribute sets of the edges in m —
// ∪𝒱 for a node 𝒱 of a join expression tree.
func (h *Hypergraph) AttrsOf(m Mask) relation.AttrSet {
	var out relation.AttrSet
	for _, i := range m.Indexes() {
		out = out.Union(h.edges[i])
	}
	return out
}

// Components returns the connected components of the sub-hypergraph induced
// by the edges in m, as masks, ordered by their lowest edge index. Two edges
// are connected when a path of pairwise-overlapping edges (within m) links
// them.
func (h *Hypergraph) Components(m Mask) []Mask {
	var comps []Mask
	remaining := m
	for remaining != 0 {
		seed := Mask(1) << uint(bits.TrailingZeros64(uint64(remaining)))
		comp := seed
		frontier := seed
		for frontier != 0 {
			var next Mask
			for _, i := range frontier.Indexes() {
				next |= h.adjacency[i] & remaining &^ comp
			}
			comp |= next
			frontier = next
		}
		comps = append(comps, comp)
		remaining &^= comp
	}
	return comps
}

// Connected reports whether the edges in m form a single connected
// component. The empty mask is not connected.
func (h *Hypergraph) Connected(m Mask) bool {
	if m == 0 {
		return false
	}
	seed := Mask(1) << uint(bits.TrailingZeros64(uint64(m)))
	comp := seed
	frontier := seed
	for frontier != 0 {
		var next Mask
		for _, i := range frontier.Indexes() {
			next |= h.adjacency[i] & m &^ comp
		}
		comp |= next
		frontier = next
	}
	return comp == m
}

// Neighbors returns the mask of edges in candidates that share at least one
// attribute with some edge in m.
func (h *Hypergraph) Neighbors(m, candidates Mask) Mask {
	var out Mask
	for _, i := range m.Indexes() {
		out |= h.adjacency[i] & candidates
	}
	return out &^ m
}

// Path returns a path from edge i to edge j within the edges of m, in the
// paper's §2.1 sense: a sequence of edges each sharing at least one
// attribute with the next, starting at i and ending at j. The path is
// shortest in edge count (BFS). It returns nil when no path exists or
// either endpoint is outside m; the one-edge path {i} is returned when
// i == j.
func (h *Hypergraph) Path(i, j int, m Mask) []int {
	if !m.Has(i) || !m.Has(j) {
		return nil
	}
	if i == j {
		return []int{i}
	}
	prev := make(map[int]int, m.Count())
	prev[i] = -1
	frontier := []int{i}
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, v := range (h.adjacency[u] & m).Indexes() {
				if _, seen := prev[v]; seen {
					continue
				}
				prev[v] = u
				if v == j {
					var path []int
					for at := j; at != -1; at = prev[at] {
						path = append(path, at)
					}
					for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
						path[a], path[b] = path[b], path[a]
					}
					return path
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// Overlapping reports whether the attribute sets of the two edge subsets
// share an attribute. Note this differs from Connected(a|b): two connected
// subsets whose unions overlap always form a connected union, which is the
// property Algorithm 1's Step 3 needs.
func (h *Hypergraph) Overlapping(a, b Mask) bool {
	return h.AttrsOf(a).Overlaps(h.AttrsOf(b))
}

// String renders the hypergraph as its edge list, using display names when
// the scheme was declared with them.
func (h *Hypergraph) String() string {
	parts := make([]string, len(h.edges))
	for i := range h.edges {
		parts[i] = h.DisplayName(i)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
