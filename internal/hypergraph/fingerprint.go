package hypergraph

import (
	"sort"
	"strconv"
	"strings"
)

// This file canonicalizes schemes for plan reuse. The paper derives an
// expression/program once per database *scheme* and proves it quasi-optimal
// for every instance over that scheme (Theorems 1–2), which makes derived
// plans ideal cache entries: two databases whose schemes differ only in the
// order their relations (edges) or attributes were declared should share one
// cached plan. Fingerprint is the cache key; CanonicalOrder is the edge
// permutation that aligns any database over the scheme with the order the
// cached plan was derived in.

// canonEdge renders one edge injectively: its attributes (already sorted —
// AttrSet is stored sorted) each strconv.Quote'd and joined with commas.
// Quoting makes the rendering collision-free for arbitrary attribute names
// (a scheme {"a,b"} must not collide with {"a","b"}).
func canonEdge(e []string) string {
	parts := make([]string, len(e))
	for i, a := range e {
		parts[i] = strconv.Quote(a)
	}
	return strings.Join(parts, ",")
}

// CanonicalOrder returns the permutation that sorts the edges into canonical
// order: perm[i] is the original index of the edge at canonical position i,
// with edges ordered by their canonical rendering and duplicate schemes
// (equal renderings) kept in original relative order. Restricting a database
// with this permutation (Database.Restrict) yields the canonical instance a
// cached plan executes against, so one plan serves every edge ordering of
// the same scheme.
func (h *Hypergraph) CanonicalOrder() []int {
	keys := make([]string, len(h.edges))
	for i, e := range h.edges {
		keys[i] = canonEdge(e)
	}
	perm := make([]int, len(h.edges))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
	return perm
}

// Fingerprint returns the canonical key of the scheme: the multiset of edge
// attribute sets, each rendered injectively and sorted, joined with "|".
// Equal fingerprints mean the schemes are equal as multisets of attribute
// sets — invariant under edge reordering and attribute declaration order,
// but deliberately NOT under attribute renaming: cached plans name real
// attributes in their projections and semijoins, so isomorphic-but-renamed
// schemes must not share a plan.
func (h *Hypergraph) Fingerprint() string {
	keys := make([]string, len(h.edges))
	for i, e := range h.edges {
		keys[i] = canonEdge(e)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}
