package hypergraph

import (
	"testing"

	"repro/internal/relation"
)

func TestFingerprintInvariantUnderEdgeOrder(t *testing.T) {
	a, err := ParseScheme("ABC CDE EFG GHA")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseScheme("GHA EFG ABC CDE")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ under edge reordering:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
}

func TestFingerprintInvariantUnderAttrOrder(t *testing.T) {
	// "GHA" and "AGH" are the same attribute set declared in different
	// orders (the paper writes GHA; sorted form is AGH).
	a, _ := ParseScheme("ABC GHA")
	b, _ := ParseScheme("AGH ABC")
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ under attribute declaration order:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
}

func TestFingerprintDistinguishesSchemes(t *testing.T) {
	cases := []string{"AB BC CA", "AB BC", "AB BC CA CA", "ABC BC CA", "AB AB BC CA"}
	seen := map[string]string{}
	for _, s := range cases {
		h, err := ParseScheme(s)
		if err != nil {
			t.Fatal(err)
		}
		fp := h.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("schemes %q and %q share fingerprint %q", prev, s, fp)
		}
		seen[fp] = s
	}
}

func TestFingerprintPathologicalAttrNames(t *testing.T) {
	// {"a,b"} vs {"a","b"}: a naive comma join would collide.
	a := Must([]relation.AttrSet{relation.NewAttrSet("a,b")})
	b := Must([]relation.AttrSet{relation.NewAttrSet("a", "b")})
	if a.Fingerprint() == b.Fingerprint() {
		t.Errorf("pathological attribute names collide: %q", a.Fingerprint())
	}
}

func TestCanonicalOrderIsSortingPermutation(t *testing.T) {
	h, err := ParseScheme("GHA EFG ABC CDE ABC")
	if err != nil {
		t.Fatal(err)
	}
	perm := h.CanonicalOrder()
	if len(perm) != h.Len() {
		t.Fatalf("perm length %d, want %d", len(perm), h.Len())
	}
	seen := make([]bool, h.Len())
	for _, p := range perm {
		if p < 0 || p >= h.Len() || seen[p] {
			t.Fatalf("perm %v is not a permutation", perm)
		}
		seen[p] = true
	}
	for i := 1; i < len(perm); i++ {
		prev, cur := canonEdge(h.Edge(perm[i-1])), canonEdge(h.Edge(perm[i]))
		if prev > cur {
			t.Fatalf("perm %v does not sort edges: %q > %q", perm, prev, cur)
		}
	}
	// Duplicate edges (the two ABCs, original indexes 2 and 4) keep their
	// relative order — the sort is stable.
	var dups []int
	for _, p := range perm {
		if p == 2 || p == 4 {
			dups = append(dups, p)
		}
	}
	if len(dups) != 2 || dups[0] != 2 || dups[1] != 4 {
		t.Errorf("duplicate edges reordered: %v", dups)
	}
}

func TestCanonicalOrderAlignsPermutedSchemes(t *testing.T) {
	a, _ := ParseScheme("ABC CDE EFG GHA")
	b, _ := ParseScheme("GHA EFG ABC CDE")
	pa, pb := a.CanonicalOrder(), b.CanonicalOrder()
	for i := range pa {
		if !a.Edge(pa[i]).Equal(b.Edge(pb[i])) {
			t.Fatalf("canonical position %d differs: %s vs %s", i, a.Edge(pa[i]), b.Edge(pb[i]))
		}
	}
}
