package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/relation"
)

// The size-limit contract: a batch whose encoded payload cannot be replayed
// (readRecord caps WAL records at MaxRecordSize) must be rejected before it
// is written, never acknowledged; snapshots are exempt from the WAL cap
// because the atomic-rename protocol makes their one record trusted.

func TestReadRecordLimits(t *testing.T) {
	frame := appendRecord(nil, make([]byte, MaxRecordSize+1))
	if _, _, err := readRecord(frame); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("readRecord above the WAL cap: got %v, want ErrTooLarge", err)
	}
	payload, n, err := readRecordLimit(frame, maxFramePayload)
	if err != nil || n != len(frame) || len(payload) != MaxRecordSize+1 {
		t.Fatalf("readRecordLimit at the frame cap: payload %d, consumed %d, err %v",
			len(payload), n, err)
	}
}

func TestWALAppendRejectsOversizedPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := createWAL(path, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("oversized append: got %v, want ErrBadBatch", err)
	}
	if !w.empty() {
		t.Fatalf("oversized append wrote bytes: size %d", w.size)
	}
	// The WAL stays usable, and a reopen replays exactly the good record —
	// nothing acknowledged is ever dropped as a "torn tail".
	if _, err := w.append([]byte("acknowledged")); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	_, payloads, torn, err := openWAL(path, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 || string(payloads[0]) != "acknowledged" || torn != 0 {
		t.Fatalf("reopen: %d payloads, %d torn bytes", len(payloads), torn)
	}
}

func TestApplyRejectsOversizedBatch(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Fsync: FsyncNever, CheckpointEvery: -1})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	acked, err := s.Apply("tri", Batch{{Relation: 0, Inserts: []relation.Tuple{relation.Ints(50, 60)}}})
	if err != nil {
		t.Fatal(err)
	}
	// One tuple whose string value alone exceeds the WAL record cap.
	huge := relation.Strs(strings.Repeat("x", MaxRecordSize+1), "y")
	if _, err := s.Apply("tri", Batch{{Relation: 0, Inserts: []relation.Tuple{huge}}}); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("oversized batch: got %v, want ErrBadBatch", err)
	}
	if cur, _ := s.Current("tri"); cur != acked.DB {
		t.Fatal("catalog swapped despite rejected batch")
	}
	// "Crash" (no Close) and reopen: the acknowledged batch is intact — the
	// rejected one left no record to mistake for a torn tail.
	s2 := open(t, dir, Options{})
	defer s2.Close()
	got, err := s2.Current("tri")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Relation(0).Contains(relation.Ints(50, 60)) {
		t.Fatal("acknowledged batch lost after reopen")
	}
	if got.Relation(0).Contains(huge) {
		t.Fatal("rejected batch reappeared after reopen")
	}
	if st := s2.Stats(); st.ReplayedRecords != 1 || st.TornTailBytes != 0 {
		t.Fatalf("replayed %d records, %d torn bytes; want 1 and 0",
			st.ReplayedRecords, st.TornTailBytes)
	}
}

func TestSnapshotLargerThanWALRecordLimit(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Fsync: FsyncNever})
	// Nine ~8 MiB string values push the encoded catalog past MaxRecordSize;
	// the snapshot must still write and, crucially, still load on reopen.
	r := relation.New(relation.MustSchema("A", "B"))
	for i := 0; i < 9; i++ {
		r.MustInsert(relation.Strs(strings.Repeat("x", 8<<20)+fmt.Sprint(i), "y"))
	}
	if err := s.Create("big", relation.MustDatabase(r)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SnapshotBytes <= MaxRecordSize {
		t.Fatalf("snapshot is only %d bytes; the test needs one above MaxRecordSize", st.SnapshotBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	got, err := s2.Current("big")
	if err != nil {
		t.Fatalf("recovering an above-WAL-cap snapshot: %v", err)
	}
	if got.Relation(0).Len() != 9 {
		t.Fatalf("recovered %d tuples, want 9", got.Relation(0).Len())
	}
}

func TestWALFsyncFailurePoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := createWAL(path, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	// A real fsync failure leaves the on-disk tail indeterminate (the kernel
	// may have dropped the dirty pages); the WAL must refuse to acknowledge
	// anything further on that fd.
	w.failed = errors.New("injected: device error")
	if _, err := w.append([]byte("x")); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append on poisoned WAL: got %v, want ErrWALFailed", err)
	}
	if err := w.sync(); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("sync on poisoned WAL: got %v, want ErrWALFailed", err)
	}
	// A successful checkpoint truncate (everything of unknown fate ends up
	// beyond EOF, durably) repairs the WAL.
	if err := w.truncate(); err != nil {
		t.Fatal(err)
	}
	if w.failed != nil {
		t.Fatalf("truncate did not clear the poison: %v", w.failed)
	}
	if _, err := w.append([]byte("back")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}
