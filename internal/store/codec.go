package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/relation"
)

// On-disk framing, shared by the WAL and the snapshot files:
//
//	file   = magic (8 bytes) record*
//	record = length (4 bytes BE) crc32c(payload) (4 bytes BE) payload
//
// The CRC is Castagnoli (CRC32C), computed over the payload only; the
// length is covered implicitly (a corrupted length either fails the size
// cap, overruns the file — a truncated record — or misframes the payload
// and fails the CRC). A WAL file holds one record per applied batch; a
// snapshot file holds exactly one record containing the whole catalog.
//
// Every decode failure wraps ErrCorrupt with a specific sentinel, so the
// fuzz target can assert "typed error, never a panic, never silent
// acceptance", and replay can distinguish a torn tail from real damage.

// Magic prefixes identifying the two file kinds (8 bytes each: name + format
// version). Bump the version when the record payload encoding changes.
const (
	walMagic  = "JDWAL\x00\x00\x01"
	snapMagic = "JDSNP\x00\x00\x01"
)

// MaxRecordSize caps a WAL record's payload length, enforced at both ends:
// wal.append rejects larger batches before writing (so an unreplayable
// record is never acknowledged), and readRecord treats a larger declared
// length as corruption rather than an allocation request. Snapshot records
// are exempt — the atomic temp-file + rename protocol means a snapshot
// record is trusted, so loadSnapshot reads with the frame's full 4 GiB
// limit (maxFramePayload) instead.
const MaxRecordSize = 64 << 20 // 64 MiB

// maxFramePayload is the hard ceiling the 4-byte length field imposes on
// any record's payload. writeSnapshot fails a checkpoint whose encoded
// catalog exceeds it (keeping the old snapshot + WAL intact) rather than
// writing a wrapped, unreadable length.
const maxFramePayload = 1<<32 - 1

// recordHeaderSize is the per-record framing overhead: 4-byte length +
// 4-byte CRC32C.
const recordHeaderSize = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Typed corruption errors; match with errors.Is. All wrap ErrCorrupt.
var (
	// ErrCorrupt is the sentinel wrapped by every decode failure.
	ErrCorrupt = errors.New("store: corrupt data")
	// ErrTruncated reports a record cut short — a torn final write, or a
	// file truncated mid-record.
	ErrTruncated = fmt.Errorf("%w: truncated record", ErrCorrupt)
	// ErrChecksum reports a payload whose CRC32C does not match its header.
	ErrChecksum = fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	// ErrTooLarge reports a record whose declared length exceeds
	// MaxRecordSize.
	ErrTooLarge = fmt.Errorf("%w: record length exceeds limit", ErrCorrupt)
	// ErrBadMagic reports a file whose magic prefix is not the expected
	// kind/version.
	ErrBadMagic = fmt.Errorf("%w: bad file magic", ErrCorrupt)
)

// appendRecord frames payload (length, CRC32C, bytes) onto dst.
func appendRecord(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// readRecord decodes one framed record from the front of b, returning the
// payload and the total bytes consumed (header + payload). The payload
// aliases b; callers that retain it must copy. The declared length is
// capped at MaxRecordSize (the WAL limit); snapshot loading uses
// readRecordLimit with the frame ceiling instead.
func readRecord(b []byte) ([]byte, int, error) {
	return readRecordLimit(b, MaxRecordSize)
}

// readRecordLimit is readRecord with an explicit payload-length cap.
func readRecordLimit(b []byte, max uint64) ([]byte, int, error) {
	if len(b) < recordHeaderSize {
		return nil, 0, fmt.Errorf("%w: %d of %d header bytes", ErrTruncated, len(b), recordHeaderSize)
	}
	n := binary.BigEndian.Uint32(b)
	if uint64(n) > max {
		return nil, 0, fmt.Errorf("%w: declared %d bytes (limit %d)", ErrTooLarge, n, max)
	}
	want := binary.BigEndian.Uint32(b[4:])
	end := recordHeaderSize + int(n)
	if len(b) < end {
		return nil, 0, fmt.Errorf("%w: %d of %d payload bytes", ErrTruncated, len(b)-recordHeaderSize, n)
	}
	payload := b[recordHeaderSize:end]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, 0, fmt.Errorf("%w: got %08x, header says %08x", ErrChecksum, got, want)
	}
	return payload, end, nil
}

// readRecords decodes a stream of framed records from b (the bytes after a
// file's magic). It returns the payloads of every intact record, the byte
// offset just past the last intact record, and the error that stopped the
// scan (nil when b was consumed exactly). WAL replay treats a stopping
// error at the tail as a torn final write — everything before it is intact
// by checksum — and truncates the file back to the returned offset.
func readRecords(b []byte) (payloads [][]byte, offset int, err error) {
	for offset < len(b) {
		payload, n, err := readRecord(b[offset:])
		if err != nil {
			return payloads, offset, err
		}
		payloads = append(payloads, payload)
		offset += n
	}
	return payloads, offset, nil
}

// Mutation is one relation's inserts and deletes within a batch. Deletes
// apply before inserts, so a tuple named in both ends up present.
type Mutation struct {
	// Relation indexes the database scheme (relation.Database index order).
	Relation int
	// Inserts and Deletes are tuples over that relation's schema.
	Inserts []relation.Tuple
	Deletes []relation.Tuple
}

// Batch is one atomic group of mutations: it is logged as a single WAL
// record and applied as a single copy-on-write catalog swap, so recovery
// always lands on a batch boundary and readers never observe part of one.
type Batch []Mutation

// Tuples returns the total tuple count named by the batch (inserts plus
// deletes); Store.Apply rejects batches naming zero tuples, and the HTTP
// layer bounds the encoded request body before a batch is ever built.
func (b Batch) Tuples() int {
	n := 0
	for _, m := range b {
		n += len(m.Inserts) + len(m.Deletes)
	}
	return n
}

// Route splits the batch into n per-shard batches, assigning every tuple
// to the shard the owner function names (or to all shards when it returns
// a negative index — the broadcast case). Within each output batch the
// mutations keep the input batch's order and each mutation's deletes and
// inserts keep their relative order, so applying the routed batches
// preserves WAL order per shard. Mutations that route no tuples to a shard
// are omitted; an output batch may therefore be empty.
func (b Batch) Route(n int, owner func(rel int, t relation.Tuple) int) []Batch {
	out := make([]Batch, n)
	for _, m := range b {
		parts := make([]Mutation, n)
		for i := range parts {
			parts[i].Relation = m.Relation
		}
		route := func(t relation.Tuple, add func(*Mutation, relation.Tuple)) {
			if s := owner(m.Relation, t); s >= 0 {
				add(&parts[s%n], t)
				return
			}
			for i := range parts {
				add(&parts[i], t)
			}
		}
		for _, t := range m.Deletes {
			route(t, func(p *Mutation, t relation.Tuple) { p.Deletes = append(p.Deletes, t) })
		}
		for _, t := range m.Inserts {
			route(t, func(p *Mutation, t relation.Tuple) { p.Inserts = append(p.Inserts, t) })
		}
		for i := range parts {
			if len(parts[i].Inserts) > 0 || len(parts[i].Deletes) > 0 {
				out[i] = append(out[i], parts[i])
			}
		}
	}
	return out
}

// appendBatch encodes b onto dst: a uvarint mutation count, then per
// mutation the relation index, the inserts, and the deletes (each a uvarint
// count of length-prefixed tuples in the relation binary codec).
func appendBatch(dst []byte, b Batch) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	for _, m := range b {
		dst = binary.AppendUvarint(dst, uint64(m.Relation))
		dst = binary.AppendUvarint(dst, uint64(len(m.Inserts)))
		for _, t := range m.Inserts {
			dst = relation.AppendTupleBinary(dst, t)
		}
		dst = binary.AppendUvarint(dst, uint64(len(m.Deletes)))
		for _, t := range m.Deletes {
			dst = relation.AppendTupleBinary(dst, t)
		}
	}
	return dst
}

// decodeBatch decodes a batch from payload, which must be consumed exactly
// (a WAL record holds one batch and nothing else). Errors wrap ErrCorrupt.
func decodeBatch(payload []byte) (Batch, error) {
	nmut, off, err := relation.DecodeUvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: batch header: %v", ErrCorrupt, err)
	}
	if nmut > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: mutation count %d overruns record", ErrCorrupt, nmut)
	}
	batch := make(Batch, 0, nmut)
	for i := uint64(0); i < nmut; i++ {
		var m Mutation
		rel, n, err := relation.DecodeUvarint(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: mutation %d relation index: %v", ErrCorrupt, i, err)
		}
		if rel > 1<<20 {
			return nil, fmt.Errorf("%w: mutation %d relation index %d out of any plausible range", ErrCorrupt, i, rel)
		}
		m.Relation = int(rel)
		off += n
		if m.Inserts, off, err = decodeTuples(payload, off); err != nil {
			return nil, fmt.Errorf("mutation %d inserts: %w", i, err)
		}
		if m.Deletes, off, err = decodeTuples(payload, off); err != nil {
			return nil, fmt.Errorf("mutation %d deletes: %w", i, err)
		}
		batch = append(batch, m)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(payload)-off)
	}
	return batch, nil
}

// decodeTuples decodes a uvarint-counted tuple list from payload at off.
func decodeTuples(payload []byte, off int) ([]relation.Tuple, int, error) {
	n, un, err := relation.DecodeUvarint(payload[off:])
	if err != nil {
		return nil, 0, fmt.Errorf("%w: tuple count: %v", ErrCorrupt, err)
	}
	off += un
	if n > uint64(len(payload)-off) {
		return nil, 0, fmt.Errorf("%w: tuple count %d overruns record", ErrCorrupt, n)
	}
	if n == 0 {
		return nil, off, nil
	}
	out := make([]relation.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		t, tn, err := relation.DecodeTupleBinary(payload[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("%w: tuple %d: %v", ErrCorrupt, i, err)
		}
		out = append(out, t)
		off += tn
	}
	return out, off, nil
}

// appendDatabase encodes the catalog for a snapshot payload: a uvarint
// relation count, then each relation in the relation binary codec.
func appendDatabase(dst []byte, db *relation.Database) []byte {
	dst = binary.AppendUvarint(dst, uint64(db.Len()))
	for _, r := range db.Relations() {
		dst = relation.AppendRelationBinary(dst, r)
	}
	return dst
}

// decodeDatabase decodes a snapshot payload, which must be consumed
// exactly.
func decodeDatabase(payload []byte) (*relation.Database, error) {
	nrels, off, err := relation.DecodeUvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, err)
	}
	if nrels == 0 || nrels > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: snapshot relation count %d", ErrCorrupt, nrels)
	}
	rels := make([]*relation.Relation, 0, nrels)
	for i := uint64(0); i < nrels; i++ {
		r, n, err := relation.DecodeRelationBinary(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("snapshot relation %d: %w", i, err)
		}
		rels = append(rels, r)
		off += n
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrCorrupt, len(payload)-off)
	}
	return relation.NewDatabase(rels...)
}
