package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/engine/failpoint"
	"repro/internal/relation"
)

// Snapshot files hold one framed record (same framing as the WAL) whose
// payload is the whole catalog, behind the snapshot magic. Writes are
// atomic: the bytes go to snapshot.tmp, are fsynced, and the file is
// renamed over snapshot.dat with a directory fsync — so snapshot.dat is
// always either the previous complete snapshot or the new complete
// snapshot, never a mixture. Recovery therefore trusts it: a snapshot that
// fails its checksum means real damage (a torn snapshot is impossible under
// this protocol), and the open fails loudly instead of guessing.

const (
	snapshotName = "snapshot.dat"
	snapshotTemp = "snapshot.tmp"
	walName      = "wal.log"
)

// Failpoint sites inside the checkpoint path, in execution order.
const (
	// FailpointSnapshotWrite fires mid-temp-file write: a crash leaves a
	// stale snapshot.tmp and an intact snapshot.dat + WAL (recovery
	// ignores the temp file).
	FailpointSnapshotWrite = "store.snapshot.write"
	// FailpointSnapshotRename fires after the temp file is durable, before
	// the rename: same recovery picture as FailpointSnapshotWrite.
	FailpointSnapshotRename = "store.snapshot.rename"
	// FailpointWALTruncate fires after the snapshot rename, before the WAL
	// truncate: recovery replays the (now-covered) WAL onto the new
	// snapshot, which is idempotent — see wal.truncate.
	FailpointWALTruncate = "store.wal.truncate"
)

// writeSnapshot atomically replaces dir's snapshot with db's contents and
// returns the bytes written. Snapshot records are not subject to the WAL's
// MaxRecordSize — loadSnapshot trusts them via the rename protocol — but a
// payload the 4-byte length field cannot express fails the checkpoint here,
// leaving the old snapshot and the WAL intact, instead of producing a file
// whose wrapped length no reader could ever accept.
func writeSnapshot(dir string, db *relation.Database) (int64, error) {
	payload := appendDatabase(nil, db)
	if uint64(len(payload)) > maxFramePayload {
		return 0, fmt.Errorf("store: snapshot of %s is %d bytes encoded, above the %d-byte frame limit",
			dir, len(payload), uint64(maxFramePayload))
	}
	frame := appendRecord(make([]byte, 0, len(snapMagic)+recordHeaderSize+len(payload)), payload)
	tmp := filepath.Join(dir, snapshotTemp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write([]byte(snapMagic)); err != nil {
		f.Close()
		return 0, err
	}
	if err := failpoint.Check(FailpointSnapshotWrite); err != nil {
		// Crash-point: leave a half-written temp file behind, exactly what
		// a power cut mid-checkpoint produces.
		_, _ = f.Write(frame[:len(frame)/2])
		_ = f.Sync()
		failpoint.ExitIf(err)
		f.Close()
		return 0, fmt.Errorf("store: snapshot write: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := failpoint.Check(FailpointSnapshotRename); err != nil {
		failpoint.ExitIf(err)
		return 0, fmt.Errorf("store: snapshot rename: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return int64(len(snapMagic) + len(frame)), nil
}

// loadSnapshot reads dir's snapshot. A missing file returns (nil, false,
// nil) — the database was never fully created. Any corruption is a hard
// error: the atomic write protocol means snapshot.dat cannot be torn, so
// damage here is not recoverable by truncation.
func loadSnapshot(dir string) (*relation.Database, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if len(raw) < len(snapMagic) || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, false, fmt.Errorf("%w: %s is not a snapshot (or is a different format version)", ErrBadMagic, dir)
	}
	// Snapshot records are trusted via the atomic-rename protocol, so they
	// read with the frame's full limit, not the WAL's MaxRecordSize: a
	// catalog legitimately larger than one ingest batch must keep loading.
	payload, n, err := readRecordLimit(raw[len(snapMagic):], maxFramePayload)
	if err != nil {
		return nil, false, fmt.Errorf("store: snapshot %s: %w", dir, err)
	}
	if len(snapMagic)+n != len(raw) {
		return nil, false, fmt.Errorf("%w: %d trailing bytes after snapshot record", ErrCorrupt, len(raw)-len(snapMagic)-n)
	}
	db, err := decodeDatabase(payload)
	if err != nil {
		return nil, false, fmt.Errorf("store: snapshot %s: %w", dir, err)
	}
	return db, true, nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
