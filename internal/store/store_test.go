package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/engine/failpoint"
	"repro/internal/relation"
)

// triangle builds the three-relation cyclic example used throughout the
// repo: R(A,B), S(B,C), T(C,A), each {(1,2),(2,3),(3,1)}.
func triangle(t *testing.T) *relation.Database {
	t.Helper()
	mk := func(a, b string) *relation.Relation {
		r := relation.New(relation.MustSchema(a, b))
		r.MustInsert(relation.Ints(1, 2))
		r.MustInsert(relation.Ints(2, 3))
		r.MustInsert(relation.Ints(3, 1))
		return r
	}
	return relation.MustDatabase(mk("A", "B"), mk("B", "C"), mk("C", "A"))
}

func open(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustEqualDB asserts two databases hold identical relations, index by
// index — the "full relation diff" the recovery tests rely on.
func mustEqualDB(t *testing.T, got, want *relation.Database, context string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d relations, want %d", context, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if !got.Relation(i).Equal(want.Relation(i)) {
			t.Fatalf("%s: relation %d differs:\n got %v\nwant %v",
				context, i, got.Relation(i), want.Relation(i))
		}
	}
}

func TestCreateApplyReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	// Insert one edge per relation, delete one existing edge.
	res, err := s.Apply("tri", Batch{
		{Relation: 0, Inserts: []relation.Tuple{relation.Ints(4, 5)}},
		{Relation: 1, Deletes: []relation.Tuple{relation.Ints(2, 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 1 {
		t.Fatalf("effective counts = +%d/-%d, want +1/-1", res.Inserted, res.Deleted)
	}
	if res.WALBytes <= 0 {
		t.Fatalf("WALBytes = %d", res.WALBytes)
	}
	want := res.DB
	cur, err := s.Current("tri")
	if err != nil || cur != want {
		t.Fatalf("Current = %p (%v), want the ApplyResult catalog %p", cur, err, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean shutdown wrote a final checkpoint: reopen must replay nothing.
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.ReplayedRecords != 0 || st.RecoveredDatabases != 1 {
		t.Fatalf("clean reopen: replayed %d records, recovered %d dbs", st.ReplayedRecords, st.RecoveredDatabases)
	}
	got, err := s2.Current("tri")
	if err != nil {
		t.Fatal(err)
	}
	mustEqualDB(t, got, want, "after clean reopen")
}

func TestReopenReplaysWALTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{CheckpointEvery: -1}) // no automatic checkpoints
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	var want *relation.Database
	for i := int64(10); i < 15; i++ {
		res, err := s.Apply("tri", Batch{{Relation: 0, Inserts: []relation.Tuple{relation.Ints(i, i+1)}}})
		if err != nil {
			t.Fatal(err)
		}
		want = res.DB
	}
	// Simulate a crash: no Close, just drop the store and reopen. The WAL
	// holds all five records (CheckpointEvery < 0, so no folding).
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.ReplayedRecords != 5 {
		t.Fatalf("replayed %d records, want 5", st.ReplayedRecords)
	}
	got, err := s2.Current("tri")
	if err != nil {
		t.Fatal(err)
	}
	mustEqualDB(t, got, want, "after replay")
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{CheckpointEvery: -1})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	var want *relation.Database
	for i := int64(0); i < 3; i++ {
		res, err := s.Apply("tri", Batch{{Relation: 2, Inserts: []relation.Tuple{relation.Ints(7+i, 7)}}})
		if err != nil {
			t.Fatal(err)
		}
		want = res.DB
	}
	if err := s.Checkpoint("tri"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", st.Checkpoints)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The WAL is now empty; the reopen replays nothing but sees the data.
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records after checkpoint, want 0", st.ReplayedRecords)
	}
	got, err := s2.Current("tri")
	if err != nil {
		t.Fatal(err)
	}
	mustEqualDB(t, got, want, "after checkpoint+reopen")
}

func TestAutomaticCheckpointer(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{CheckpointEvery: 2})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if _, err := s.Apply("tri", Batch{{Relation: 0, Inserts: []relation.Tuple{relation.Ints(100+i, i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	// The background checkpointer runs asynchronously; Close performs a
	// final checkpoint regardless, so after Close at least one automatic or
	// final checkpoint must have folded the WAL.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Checkpoints < 1 {
		t.Fatalf("checkpoints = %d, want >= 1", st.Checkpoints)
	}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records, want 0 (WAL folded)", st.ReplayedRecords)
	}
}

func TestCopyOnWriteIsolation(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Current("tri")
	wantJoin := before.Join()
	res, err := s.Apply("tri", Batch{
		{Relation: 0, Deletes: []relation.Tuple{relation.Ints(1, 2)}},
		{Relation: 1, Inserts: []relation.Tuple{relation.Ints(9, 9)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The old catalog is untouched: same join result, same relation sizes.
	if got := before.Join(); !got.Equal(wantJoin) {
		t.Fatal("pre-batch catalog changed under a reader")
	}
	if before.Relation(0).Len() != 3 || before.Relation(0).Contains(relation.Ints(1, 2)) != true {
		t.Fatal("pre-batch relation mutated in place")
	}
	// Untouched relations are shared, touched ones are fresh.
	if res.DB.Relation(2) != before.Relation(2) {
		t.Error("untouched relation was copied, want shared pointer")
	}
	if res.DB.Relation(0) == before.Relation(0) {
		t.Error("touched relation was shared, want copy")
	}
}

func TestApplyValidation(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	cases := map[string]Batch{
		"empty batch":        {},
		"no tuples":          {{Relation: 0}, {Relation: 1}},
		"bad relation index": {{Relation: 5, Inserts: []relation.Tuple{relation.Ints(1, 2)}}},
		"negative index":     {{Relation: -1}},
		"insert arity":       {{Relation: 0, Inserts: []relation.Tuple{relation.Ints(1, 2, 3)}}},
		"delete arity":       {{Relation: 0, Deletes: []relation.Tuple{relation.Ints(1)}}},
	}
	before, _ := s.Current("tri")
	for name, b := range cases {
		if _, err := s.Apply("tri", b); !errors.Is(err, ErrBadBatch) {
			t.Errorf("%s: got %v, want ErrBadBatch", name, err)
		}
	}
	after, _ := s.Current("tri")
	if before != after {
		t.Fatal("catalog swapped despite rejected batches")
	}
	if _, err := s.Apply("nope", Batch{{Relation: 0}}); !errors.Is(err, ErrUnknownDatabase) {
		t.Errorf("unknown db: got %v", err)
	}
}

func TestDeleteBeforeInsertWithinMutation(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	// A tuple named in both deletes and inserts ends up present.
	res, err := s.Apply("tri", Batch{{
		Relation: 0,
		Inserts:  []relation.Tuple{relation.Ints(1, 2)},
		Deletes:  []relation.Tuple{relation.Ints(1, 2)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DB.Relation(0).Contains(relation.Ints(1, 2)) {
		t.Fatal("delete+insert of the same tuple should leave it present")
	}
	if res.DB.Relation(0).Len() != 3 {
		t.Fatalf("relation size = %d, want 3", res.DB.Relation(0).Len())
	}
}

func TestCreateErrors(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	tri := triangle(t)
	if err := s.Create("ok-name_1.x", tri); err != nil {
		t.Fatalf("valid name rejected: %v", err)
	}
	if err := s.Create("ok-name_1.x", tri); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: got %v", err)
	}
	for _, bad := range []string{"", "../evil", "a/b", ".hidden", "-dash", "name with spaces"} {
		if err := s.Create(bad, tri); !errors.Is(err, ErrBadName) {
			t.Errorf("name %q: got %v, want ErrBadName", bad, err)
		}
	}
	if err := s.Create("empty", nil); !errors.Is(err, ErrBadBatch) {
		t.Errorf("nil db: got %v", err)
	}
}

func TestClosedStore(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second close: got %v", err)
	}
	if _, err := s.Apply("tri", Batch{{Relation: 0}}); !errors.Is(err, ErrClosed) {
		t.Errorf("apply after close: got %v", err)
	}
	if err := s.Create("x", triangle(t)); !errors.Is(err, ErrClosed) {
		t.Errorf("create after close: got %v", err)
	}
	if _, err := s.Current("tri"); !errors.Is(err, ErrClosed) {
		t.Errorf("current after close: got %v", err)
	}
}

func TestIncompleteCreateDirIgnoredOnOpen(t *testing.T) {
	dir := t.TempDir()
	// A directory without a snapshot is a create that never reached its
	// durability point; Open must skip it.
	if err := os.MkdirAll(filepath.Join(dir, "halfmade"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "halfmade", snapshotTemp), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	defer s.Close()
	if got := s.Names(); len(got) != 0 {
		t.Fatalf("recovered %v from a snapshot-less directory", got)
	}
}

func TestWALAppendFailpointLeavesStateClean(t *testing.T) {
	defer failpoint.Reset()
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Current("tri")
	failpoint.Enable(FailpointWALAppend, 1, nil)
	_, err := s.Apply("tri", Batch{{Relation: 0, Inserts: []relation.Tuple{relation.Ints(8, 8)}}})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("got %v, want injected", err)
	}
	after, _ := s.Current("tri")
	if before != after {
		t.Fatal("catalog swapped despite failed WAL append")
	}
	// The failed batch must not reappear after a restart.
	res, err := s.Apply("tri", Batch{{Relation: 1, Inserts: []relation.Tuple{relation.Ints(5, 5)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Relation(0).Contains(relation.Ints(8, 8)) {
		t.Fatal("failed batch leaked into the catalog")
	}
}

func TestApplyFailpointReplaysOnRestart(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	s := open(t, dir, Options{CheckpointEvery: -1})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	failpoint.Enable(FailpointApply, 1, nil)
	_, err := s.Apply("tri", Batch{{Relation: 0, Inserts: []relation.Tuple{relation.Ints(8, 8)}}})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("got %v, want injected", err)
	}
	// The record reached the WAL; the in-memory swap was refused. A
	// "crash" (no Close) and reopen must replay it — post-batch state.
	s2 := open(t, dir, Options{})
	defer s2.Close()
	got, err := s2.Current("tri")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Relation(0).Contains(relation.Ints(8, 8)) {
		t.Fatal("WAL-logged batch not replayed after restart")
	}
	if st := s2.Stats(); st.ReplayedRecords != 1 {
		t.Fatalf("replayed %d, want 1", st.ReplayedRecords)
	}
}

func TestConcurrentAppliesAndReaders(t *testing.T) {
	s := open(t, t.TempDir(), Options{CheckpointEvery: 4})
	defer s.Close()
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 25
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				_, err := s.Apply("tri", Batch{{
					Relation: w % 3,
					Inserts:  []relation.Tuple{relation.Ints(int64(1000+w*100+i), int64(w))},
				}})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Readers: a grabbed catalog pointer must stay internally consistent —
	// its join result is a pure function of its (immutable) relations.
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db, err := s.Current("tri")
				if err != nil {
					t.Error(err)
					return
				}
				n1 := db.Relation(0).Len() + db.Relation(1).Len() + db.Relation(2).Len()
				j := db.Join()
				n2 := db.Relation(0).Len() + db.Relation(1).Len() + db.Relation(2).Len()
				if n1 != n2 {
					t.Errorf("catalog mutated under reader: %d then %d tuples", n1, n2)
					return
				}
				_ = j
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	db, _ := s.Current("tri")
	total := db.Relation(0).Len() + db.Relation(1).Len() + db.Relation(2).Len()
	if total != 9+writers*perWriter {
		t.Fatalf("total tuples = %d, want %d", total, 9+writers*perWriter)
	}
}
