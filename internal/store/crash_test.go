package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/engine/failpoint"
	"repro/internal/relation"
)

// Crash-recovery harness. TestCrashRecovery re-executes this test binary as a
// child process (TestCrashChild below) that applies one deterministic batch
// with a crash failpoint armed via STORE_CRASH_FAILPOINTS, so the child dies
// with os.Exit at a precise point in the durability pipeline — mid-append,
// mid-torn-write, pre-fsync, pre-swap, mid-snapshot, pre-truncate. The parent
// then reopens the data directory in-process and asserts the recovered
// catalog equals exactly the pre-batch or the post-batch state (full
// relation-by-relation diff): never a torn half-batch, never silent loss of
// an already-durable one.

const crashExitCode = 7

// crashPoint describes one kill site and which recovered states are legal.
type crashPoint struct {
	spec string // failpoint spec for EnableFromEnv
	// pre/post say whether recovery to the pre-batch / post-batch state is
	// acceptable after a kill at this site.
	pre, post bool
}

var crashPoints = []crashPoint{
	// Before any bytes reach the WAL: the batch must vanish.
	{spec: FailpointWALAppend + "=exit:7", pre: true},
	// Mid-record torn write: the torn tail must be detected and dropped.
	{spec: FailpointWALTorn + "=exit:7", pre: true},
	// Record fully written, fsync pending. The kill is a process death, not
	// a power cut, so the OS may keep the pages — either state is legal.
	{spec: FailpointWALSync + "=exit:7", pre: true, post: true},
	// Record durable, in-memory swap pending: replay must resurrect it.
	{spec: FailpointApply + "=exit:7", post: true},
	// Checkpoint kills: the batch is durable in the WAL, so always post.
	{spec: FailpointSnapshotWrite + "=exit:7", post: true},
	{spec: FailpointSnapshotRename + "=exit:7", post: true},
	{spec: FailpointWALTruncate + "=exit:7", post: true},
}

// crashBatch is the deterministic batch the child applies at a given step:
// one fresh insert, plus a delete of the insert from two steps earlier (a
// no-op when that step's batch was lost — deletes of absent tuples are
// no-ops by design, which keeps every step's batch valid regardless of
// which way earlier recoveries landed).
func crashBatch(step int) Batch {
	b := Batch{{
		Relation: step % 3,
		Inserts:  []relation.Tuple{relation.Ints(int64(1000+step), int64(step))},
	}}
	if prev := step - 2; prev >= 0 {
		b = append(b, Mutation{
			Relation: prev % 3,
			Deletes:  []relation.Tuple{relation.Ints(int64(1000+prev), int64(prev))},
		})
	}
	return b
}

// TestCrashChild is the re-exec target; it only runs when the parent harness
// sets STORE_CRASH_CHILD. It arms failpoints from the environment, opens the
// store, applies the step's batch, and checkpoints — crashing wherever the
// armed site fires.
func TestCrashChild(t *testing.T) {
	if os.Getenv("STORE_CRASH_CHILD") != "1" {
		t.Skip("not a crash-harness child")
	}
	if err := failpoint.EnableFromEnv("STORE_CRASH_FAILPOINTS"); err != nil {
		fmt.Fprintln(os.Stderr, "child: bad failpoint spec:", err)
		os.Exit(3)
	}
	dir := os.Getenv("STORE_CRASH_DIR")
	var step int
	fmt.Sscanf(os.Getenv("STORE_CRASH_STEP"), "%d", &step)
	s, err := Open(dir, Options{Fsync: FsyncAlways, CheckpointEvery: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: open:", err)
		os.Exit(3)
	}
	if len(s.Names()) == 0 {
		// Setup run: create the seed catalog and exit cleanly.
		mk := func(a, b string) *relation.Relation {
			r := relation.New(relation.MustSchema(a, b))
			r.MustInsert(relation.Ints(1, 2))
			r.MustInsert(relation.Ints(2, 3))
			r.MustInsert(relation.Ints(3, 1))
			return r
		}
		if err := s.Create("crash", relation.MustDatabase(mk("A", "B"), mk("B", "C"), mk("C", "A"))); err != nil {
			fmt.Fprintln(os.Stderr, "child: create:", err)
			os.Exit(3)
		}
		if err := s.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "child: close:", err)
			os.Exit(3)
		}
		os.Exit(0)
	}
	if _, err := s.Apply("crash", crashBatch(step)); err != nil {
		fmt.Fprintln(os.Stderr, "child: apply:", err)
		os.Exit(3)
	}
	if err := s.Checkpoint("crash"); err != nil {
		fmt.Fprintln(os.Stderr, "child: checkpoint:", err)
		os.Exit(3)
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "child: close:", err)
		os.Exit(3)
	}
	os.Exit(0)
}

// runCrashChild re-execs the test binary as a crash child and returns its
// exit code.
func runCrashChild(t *testing.T, dir string, step int, failpoints string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"STORE_CRASH_CHILD=1",
		"STORE_CRASH_DIR="+dir,
		fmt.Sprintf("STORE_CRASH_STEP=%d", step),
		"STORE_CRASH_FAILPOINTS="+failpoints,
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if code := ee.ExitCode(); code == crashExitCode {
			return code
		}
		t.Fatalf("child (step %d, failpoints %q) exited %d:\n%s", step, failpoints, ee.ExitCode(), out)
	}
	t.Fatalf("child failed to run: %v\n%s", err, out)
	return -1
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec harness; skipped in -short mode")
	}
	dir := t.TempDir()
	// Setup run: child creates the seed catalog with no failpoints armed.
	if code := runCrashChild(t, dir, 0, ""); code != 0 {
		t.Fatalf("setup child exited %d", code)
	}

	// Track the authoritative pre-batch state by reopening after each kill.
	s := open(t, dir, Options{CheckpointEvery: -1})
	pre, err := s.Current("crash")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	const iterations = 21 // ≥ 20 randomized kill points, every site covered
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("crash harness seed %d, %d iterations", seed, iterations)

	for step := 1; step <= iterations; step++ {
		// First len(crashPoints) steps cover every site once; the rest are
		// randomized draws.
		var cp crashPoint
		if step <= len(crashPoints) {
			cp = crashPoints[step-1]
		} else {
			cp = crashPoints[rng.Intn(len(crashPoints))]
		}
		batch := crashBatch(step)
		post, _, _, err := applyBatch(pre, batch)
		if err != nil {
			t.Fatalf("step %d: reference apply: %v", step, err)
		}

		if code := runCrashChild(t, dir, step, cp.spec); code != crashExitCode {
			t.Fatalf("step %d (%s): child exited %d, want %d", step, cp.spec, code, crashExitCode)
		}

		// Recover in-process and diff the catalog against pre/post.
		s, err := Open(dir, Options{CheckpointEvery: -1})
		if err != nil {
			t.Fatalf("step %d (%s): recovery open: %v", step, cp.spec, err)
		}
		got, err := s.Current("crash")
		if err != nil {
			t.Fatalf("step %d (%s): %v", step, cp.spec, err)
		}
		switch {
		case cp.pre && equalDB(got, pre):
			// Batch lost before its durability point: legal.
		case cp.post && equalDB(got, post):
			pre = got // batch survived; it is the next step's baseline
		default:
			st := s.Stats()
			t.Fatalf("step %d (%s): recovered state is neither pre nor post batch\n got %v\n pre %v\npost %v\nstats %+v",
				step, cp.spec, got, pre, post, st)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("step %d: close: %v", step, err)
		}
	}
}

// equalDB is mustEqualDB without the Fatal: a full relation-by-relation diff.
func equalDB(a, b *relation.Database) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Relation(i).Equal(b.Relation(i)) {
			return false
		}
	}
	return true
}
