package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// View definitions are durable service state: a registered continuous query
// (see internal/ivm) must survive a restart, because its whole value is
// staying maintained across the catalog's lifetime. The definitions live in
// one views.dat file at the store root — a framed record (same framing as
// the WAL, its own magic) whose payload is the JSON definition list —
// written atomically with the snapshot protocol (temp file, fsync, rename,
// directory fsync). Definitions are tiny and change only on view
// registration/drop, so rewriting the whole file per change is the simple
// correct choice: views.dat is always either the previous complete list or
// the new complete list.
//
// The materialized view state itself is NOT persisted: it is derivable, and
// the serving layer rebuilds each view from the recovered catalog (snapshot
// + WAL replay) when it re-registers the definitions at startup.

const (
	viewsName  = "views.dat"
	viewsTemp  = "views.tmp"
	viewsMagic = "JDVWS\x00\x00\x01"
)

// ViewDef is one registered continuous query's durable definition. The
// maintained state is rebuilt from the catalog at recovery; only the
// registration itself persists.
type ViewDef struct {
	// ID is the view's unique name.
	ID string `json:"id"`
	// Database is the catalog name the view joins.
	Database string `json:"database"`
	// MaxTuples and MaxIntermediateTuples bound one batch's delta
	// maintenance work (0 = unlimited); exceeding them marks the view stale
	// and rebuilds it instead of failing the ingest.
	MaxTuples             int64 `json:"max_tuples,omitempty"`
	MaxIntermediateTuples int64 `json:"max_intermediate_tuples,omitempty"`
}

// SaveViews atomically replaces the durable view-definition list.
func (s *Store) SaveViews(defs []ViewDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	payload, err := json.Marshal(defs)
	if err != nil {
		return fmt.Errorf("store: encoding view definitions: %w", err)
	}
	frame := appendRecord(make([]byte, 0, len(viewsMagic)+recordHeaderSize+len(payload)), payload)
	tmp := filepath.Join(s.dir, viewsTemp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(viewsMagic)); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, viewsName)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.views = append([]ViewDef(nil), defs...)
	return nil
}

// Views returns the recovered (or last saved) view definitions.
func (s *Store) Views() []ViewDef {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ViewDef(nil), s.views...)
}

// loadViews reads dir's views.dat. A missing file means no views; any
// corruption is a hard error — the atomic write protocol means the file
// cannot be torn, so damage is real.
func loadViews(dir string) ([]ViewDef, error) {
	_ = os.Remove(filepath.Join(dir, viewsTemp)) // stale save attempt
	raw, err := os.ReadFile(filepath.Join(dir, viewsName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < len(viewsMagic) || string(raw[:len(viewsMagic)]) != viewsMagic {
		return nil, fmt.Errorf("%w: %s is not a view-definition file (or is a different format version)", ErrBadMagic, viewsName)
	}
	payload, n, err := readRecordLimit(raw[len(viewsMagic):], maxFramePayload)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", viewsName, err)
	}
	if len(viewsMagic)+n != len(raw) {
		return nil, fmt.Errorf("%w: %d trailing bytes after view-definition record", ErrCorrupt, len(raw)-len(viewsMagic)-n)
	}
	var defs []ViewDef
	if err := json.Unmarshal(payload, &defs); err != nil {
		return nil, fmt.Errorf("store: %s: %w", viewsName, err)
	}
	return defs, nil
}
