package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/relation"
)

// FuzzWALDecode drives the record codec and the batch decoder with arbitrary
// bytes — truncations, bit flips, hostile lengths — and asserts the
// crash-consistency contract of the decode path:
//
//  1. it never panics (the fuzz engine catches those itself);
//  2. every failure is a typed error under ErrCorrupt;
//  3. whatever decodes successfully re-encodes to the exact input bytes
//     (no silent acceptance of malformed framing).
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed frames so mutation starts near the format.
	tup := relation.Ints(1, 2)
	batch := Batch{{Relation: 0, Inserts: []relation.Tuple{tup}, Deletes: []relation.Tuple{relation.Ints(3, 1)}}}
	good := appendRecord(nil, appendBatch(nil, batch))
	f.Add(good)
	f.Add(appendRecord(nil, nil))                  // empty payload
	f.Add(good[:len(good)-1])                      // torn tail
	f.Add(good[:recordHeaderSize-2])               // torn header
	f.Add(append(append([]byte{}, good...), 0xFF)) // trailing garbage
	flipped := append([]byte{}, good...)
	flipped[recordHeaderSize] ^= 0x40 // corrupt first payload byte
	f.Add(flipped)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})  // huge declared length
	f.Add(appendRecord(good, appendBatch(nil, batch))) // two records back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, offset, err := readRecords(data)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped decode error: %v", err)
		}
		if offset > len(data) {
			t.Fatalf("offset %d past input length %d", offset, len(data))
		}
		if err == nil && offset != len(data) {
			t.Fatalf("nil error but %d of %d bytes consumed", offset, len(data))
		}
		// Round-trip: re-framing the accepted payloads must reproduce the
		// intact prefix byte for byte.
		reframed := make([]byte, 0, offset)
		for _, p := range payloads {
			reframed = appendRecord(reframed, p)
		}
		if !bytes.Equal(reframed, data[:offset]) {
			t.Fatalf("re-encoded records differ from accepted prefix")
		}
		// The batch layer must be equally tame on every accepted payload.
		for _, p := range payloads {
			b, err := decodeBatch(p)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("untyped batch error: %v", err)
				}
				continue
			}
			if !bytes.Equal(appendBatch(nil, b), p) {
				t.Fatalf("batch did not round-trip")
			}
		}
	})
}
