// Package store is joind's durable mutation path: a write-ahead-logged,
// snapshot-checkpointed catalog of named databases. Each database lives in
// its own directory under the data dir as an atomic snapshot file plus a
// WAL of batch records; an ingest batch is appended (length-prefixed,
// CRC32C-checksummed) to the WAL first, then applied to the in-memory
// catalog as a copy-on-write swap — in-flight queries keep the
// *relation.Database pointer they grabbed at admission and never observe a
// half-applied batch. A background checkpointer folds the WAL into a fresh
// snapshot (temp file + rename) and truncates it; on open, the store loads
// each snapshot and replays the WAL tail, tolerating a torn final record,
// which is exactly what a crash mid-append leaves behind.
//
// Crash-consistency contract (the recovery harness in crash_test.go
// enforces it at ≥20 randomized kill points): after a crash at any moment,
// reopening the store yields, for every database, the catalog as of some
// batch boundary — a batch is either fully present or fully absent, and a
// batch acknowledged under FsyncAlways is always present. See
// docs/STORAGE.md for the full format and the failpoint map.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine/failpoint"
	"repro/internal/relation"
)

// Typed store errors; match with errors.Is. (Corruption errors are in
// codec.go.)
var (
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrUnknownDatabase reports an operation on a name the store does not
	// hold.
	ErrUnknownDatabase = errors.New("store: unknown database")
	// ErrExists reports a Create with an already-taken name.
	ErrExists = errors.New("store: database already exists")
	// ErrBadBatch reports a batch that does not fit the database scheme
	// (relation index out of range, tuple arity mismatch, empty batch).
	ErrBadBatch = errors.New("store: invalid batch")
	// ErrBadName reports a database name unusable as a directory name.
	ErrBadName = errors.New("store: invalid database name")
	// ErrWALFailed reports a WAL whose fsync failed: the kernel may have
	// dropped the unflushed pages, so the on-disk tail is indeterminate and
	// the database refuses further mutations (reads keep working) until a
	// checkpoint rebuilds the log — or the process restarts and recovery
	// re-establishes a known-good state.
	ErrWALFailed = errors.New("store: wal fsync failed; database is read-only")
)

// FailpointApply fires after the WAL append succeeds and before the
// in-memory swap: a crash here leaves the batch only in the WAL, and
// recovery must replay it (post-batch state).
const FailpointApply = "store.apply"

// dbName constrains database names to filesystem-safe directory names.
var dbName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Options configures a Store. The zero value is usable: FsyncAlways,
// 100ms interval (unused under always), checkpoint every 1024 records.
type Options struct {
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background flush cadence under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery is the number of WAL records after which the
	// background checkpointer folds a database's WAL into a fresh snapshot
	// (default 1024; negative disables automatic checkpoints — Close and
	// explicit Checkpoint calls still write them).
	CheckpointEvery int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	o.FsyncInterval = syncInterval(o.FsyncInterval)
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 1024
	}
	return o
}

// Stats is a point-in-time snapshot of the store counters; the service
// exposes them as joind_wal_* / joind_snapshot_* / joind_recovery_* series.
type Stats struct {
	Databases int `json:"databases"`
	// WALAppends and WALBytes count appended records and their on-disk
	// bytes (framing included) since open.
	WALAppends int64 `json:"wal_appends"`
	WALBytes   int64 `json:"wal_bytes"`
	// SnapshotWrites and SnapshotBytes count snapshot files written
	// (creates, checkpoints, and the final checkpoint at Close).
	SnapshotWrites int64 `json:"snapshot_writes"`
	SnapshotBytes  int64 `json:"snapshot_bytes"`
	// Checkpoints counts WAL-folding checkpoints (a subset of
	// SnapshotWrites: creates are not checkpoints).
	Checkpoints int64 `json:"checkpoints"`
	// RecoveredDatabases and ReplayedRecords describe the last Open: how
	// many databases were loaded and how many WAL records were replayed
	// onto their snapshots.
	RecoveredDatabases int   `json:"recovered_databases"`
	ReplayedRecords    int64 `json:"replayed_records"`
	// TornTailBytes is the total bytes dropped from WAL tails at open —
	// evidence of interrupted final appends.
	TornTailBytes int64 `json:"torn_tail_bytes"`
}

// Store is the durable catalog. Construct with Open; all methods are safe
// for concurrent use. Mutations to one database are serialized; mutations
// to different databases proceed in parallel.
type Store struct {
	dir string
	opt Options

	mu     sync.Mutex
	dbs    map[string]*dbState
	views  []ViewDef
	closed bool
	// statsBases is each database's statistics version as of its last
	// checkpoint, mirrored in stats.dat (see statsfile.go). Guarded by mu.
	statsBases map[string]int64

	checkpointCh chan *dbState
	quit         chan struct{}
	wg           sync.WaitGroup

	walAppends, walBytes          atomic.Int64
	snapshotWrites, snapshotBytes atomic.Int64
	checkpoints                   atomic.Int64
	replayedRecords               atomic.Int64
	tornTailBytes                 atomic.Int64
	recoveredDatabases            int
}

// dbState is one database's durable state: its WAL, its current in-memory
// catalog (swapped copy-on-write), and its checkpoint bookkeeping.
type dbState struct {
	name string
	dir  string

	// mu serializes the mutation path (WAL append + apply + swap) and
	// checkpoints. Readers never take it: they Load current.
	mu              sync.Mutex
	wal             *wal
	sinceCheckpoint int
	// version counts batches ever applied (the statistics version): the
	// persisted base from the last checkpoint plus everything since,
	// incremented on every Apply and on every replayed WAL record. Guarded
	// by mu; monotone across restarts.
	version int64

	current          atomic.Pointer[relation.Database]
	checkpointQueued atomic.Bool
}

// Open loads (or initializes) a store rooted at dir: every subdirectory
// with a complete snapshot is recovered by loading the snapshot and
// replaying its WAL tail, in order, tolerating a torn final record.
// Subdirectories without a snapshot (a crash before the initial snapshot
// became durable) are ignored — a database exists once its first snapshot
// does. Stale snapshot temp files are removed.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:          dir,
		opt:          opt,
		dbs:          make(map[string]*dbState),
		checkpointCh: make(chan *dbState, 64),
		quit:         make(chan struct{}),
	}
	bases, err := loadStatsBases(dir)
	if err != nil {
		return nil, err
	}
	s.statsBases = bases
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		dbDir := filepath.Join(dir, name)
		st, err := s.recover(name, dbDir, bases[name])
		if err != nil {
			return nil, fmt.Errorf("store: recovering %q: %w", name, err)
		}
		if st != nil {
			s.dbs[name] = st
			s.recoveredDatabases++
		}
	}
	defs, err := loadViews(dir)
	if err != nil {
		return nil, err
	}
	s.views = defs
	s.wg.Add(1)
	go s.checkpointLoop()
	if opt.Fsync == FsyncInterval {
		s.wg.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// recover loads one database directory; nil state (no error) means the
// directory holds no complete database and was skipped. versionBase is the
// persisted statistics version as of the snapshot the WAL tail extends.
func (s *Store) recover(name, dbDir string, versionBase int64) (*dbState, error) {
	_ = os.Remove(filepath.Join(dbDir, snapshotTemp)) // stale checkpoint attempt
	db, ok, err := loadSnapshot(dbDir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	w, payloads, torn, err := openWAL(filepath.Join(dbDir, walName), s.opt.Fsync)
	if err != nil {
		return nil, err
	}
	s.tornTailBytes.Add(torn)
	for i, payload := range payloads {
		batch, err := decodeBatch(payload)
		if err != nil {
			// Framing was intact (checksummed) but the batch is
			// malformed: that is corruption, not a torn write.
			w.close()
			return nil, fmt.Errorf("wal record %d: %w", i, err)
		}
		next, _, _, err := applyBatch(db, batch)
		if err != nil {
			w.close()
			return nil, fmt.Errorf("wal record %d: %w", i, err)
		}
		db = next
		s.replayedRecords.Add(1)
	}
	w.appends, w.bytes = &s.walAppends, &s.walBytes
	st := &dbState{
		name: name, dir: dbDir, wal: w,
		sinceCheckpoint: len(payloads),
		version:         versionBase + int64(len(payloads)),
	}
	st.current.Store(db)
	return st, nil
}

// Create adds a new named database: its directory, its initial snapshot
// (the durability point — the database exists once the snapshot is on
// disk), and an empty WAL.
func (s *Store) Create(name string, db *relation.Database) error {
	if !dbName.MatchString(name) {
		return fmt.Errorf("%w: %q (want %s)", ErrBadName, name, dbName)
	}
	if db == nil || db.Len() == 0 {
		return fmt.Errorf("%w: database %q is empty", ErrBadBatch, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.dbs[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	dbDir := filepath.Join(s.dir, name)
	if err := os.Mkdir(dbDir, 0o755); err != nil {
		if errors.Is(err, os.ErrExist) {
			return fmt.Errorf("%w: directory for %q already exists", ErrExists, name)
		}
		return err
	}
	n, err := writeSnapshot(dbDir, db)
	if err != nil {
		_ = os.RemoveAll(dbDir)
		return err
	}
	s.snapshotWrites.Add(1)
	s.snapshotBytes.Add(n)
	w, err := createWAL(filepath.Join(dbDir, walName), s.opt.Fsync)
	if err != nil {
		_ = os.RemoveAll(dbDir)
		return err
	}
	w.appends, w.bytes = &s.walAppends, &s.walBytes
	st := &dbState{name: name, dir: dbDir, wal: w}
	st.current.Store(db)
	s.dbs[name] = st
	if s.statsBases == nil {
		s.statsBases = make(map[string]int64)
	}
	s.statsBases[name] = 0
	if err := s.saveStatsBasesLocked(); err != nil {
		// The database itself is durable; a failed base write just means
		// version 0 is implicit (missing entries read as zero).
		delete(s.statsBases, name)
	}
	return nil
}

// Current returns the named database's current catalog — an immutable
// snapshot that stays consistent for as long as the caller holds it.
func (s *Store) Current(name string) (*relation.Database, error) {
	st, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return st.current.Load(), nil
}

// Databases returns every recovered/created catalog by name.
func (s *Store) Databases() map[string]*relation.Database {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*relation.Database, len(s.dbs))
	for name, st := range s.dbs {
		out[name] = st.current.Load()
	}
	return out
}

// Names returns the database names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a name under the store lock.
func (s *Store) lookup(name string) (*dbState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	st, ok := s.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDatabase, name)
	}
	return st, nil
}

// ApplyResult describes one applied batch.
type ApplyResult struct {
	// DB is the post-batch catalog (the new current).
	DB *relation.Database
	// Inserted and Deleted are the effective tuple counts: tuples actually
	// added (absent before) and actually removed (present before).
	Inserted, Deleted int
	// WALBytes is the size of the batch's WAL record, framing included.
	WALBytes int64
	// Version is the database's statistics version after this batch: the
	// count of batches ever applied, monotone across restarts. The serving
	// layer folds it into statistics-dependent plan-cache keys.
	Version int64
}

// Apply durably applies one atomic batch to the named database: the batch
// is validated against the current scheme, appended to the WAL (fsynced per
// the policy), applied copy-on-write, and the new catalog swapped in.
// Concurrent Apply calls on one database serialize; readers holding the old
// catalog keep a consistent pre-batch view. On any error the catalog is
// unchanged and the WAL holds no acknowledged record of the batch.
func (s *Store) Apply(name string, batch Batch) (ApplyResult, error) {
	st, err := s.lookup(name)
	if err != nil {
		return ApplyResult{}, err
	}
	if len(batch) == 0 {
		return ApplyResult{}, fmt.Errorf("%w: empty batch", ErrBadBatch)
	}
	if batch.Tuples() == 0 {
		return ApplyResult{}, fmt.Errorf("%w: batch names no tuples", ErrBadBatch)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.current.Load()
	// Validate fully before logging: a batch that cannot apply must never
	// reach the WAL, or replay would fail where the client saw an error.
	next, ins, del, err := applyBatch(old, batch)
	if err != nil {
		return ApplyResult{}, err
	}
	// The append itself enforces MaxRecordSize: a batch whose encoded
	// payload could not be replayed is rejected (ErrBadBatch) before any
	// byte reaches the log.
	walBytes, err := st.wal.append(appendBatch(nil, batch))
	if err != nil {
		return ApplyResult{}, err
	}
	if err := failpoint.Check(FailpointApply); err != nil {
		failpoint.ExitIf(err)
		// In-process error injection: the record is logged but the swap is
		// refused; a restart will replay it. Report the divergence.
		return ApplyResult{}, fmt.Errorf("store: apply after wal append (batch is logged and will replay on restart): %w", err)
	}
	st.current.Store(next)
	st.sinceCheckpoint++
	st.version++
	if s.opt.CheckpointEvery > 0 && st.sinceCheckpoint >= s.opt.CheckpointEvery {
		s.queueCheckpoint(st)
	}
	return ApplyResult{DB: next, Inserted: ins, Deleted: del, WALBytes: walBytes, Version: st.version}, nil
}

// ApplyBatch applies one batch to a catalog copy-on-write, without any
// durability: the sharding layer uses it to keep per-shard partitions in
// step with the durable catalog by replaying routed batches. Semantics
// match Store.Apply's in-memory step exactly (deletes before inserts,
// absent deletes and duplicate inserts are no-ops).
func ApplyBatch(db *relation.Database, batch Batch) (*relation.Database, error) {
	next, _, _, err := applyBatch(db, batch)
	return next, err
}

// applyBatch builds the post-batch catalog copy-on-write: only relations a
// mutation touches are rebuilt; the rest are shared with the old catalog.
// Within one mutation deletes apply before inserts. It returns the new
// catalog and the effective inserted/deleted counts.
func applyBatch(db *relation.Database, batch Batch) (*relation.Database, int, int, error) {
	rels := append([]*relation.Relation(nil), db.Relations()...)
	inserted, deleted := 0, 0
	for i, m := range batch {
		if m.Relation < 0 || m.Relation >= len(rels) {
			return nil, 0, 0, fmt.Errorf("%w: mutation %d relation index %d out of range [0,%d)",
				ErrBadBatch, i, m.Relation, len(rels))
		}
		old := rels[m.Relation]
		schema := old.Schema()
		del := relation.New(schema)
		for _, t := range m.Deletes {
			if err := del.Insert(t); err != nil {
				return nil, 0, 0, fmt.Errorf("%w: mutation %d delete: %v", ErrBadBatch, i, err)
			}
		}
		next := relation.New(schema)
		for _, row := range old.Rows() {
			if del.Contains(row) {
				deleted++
				continue
			}
			next.MustInsert(row)
		}
		before := next.Len()
		for _, t := range m.Inserts {
			if err := next.Insert(t); err != nil {
				return nil, 0, 0, fmt.Errorf("%w: mutation %d insert: %v", ErrBadBatch, i, err)
			}
		}
		inserted += next.Len() - before
		rels[m.Relation] = next
	}
	out, err := relation.NewDatabase(rels...)
	if err != nil {
		return nil, 0, 0, err
	}
	return out, inserted, deleted, nil
}

// queueCheckpoint hands st to the background checkpointer, once.
func (s *Store) queueCheckpoint(st *dbState) {
	if st.checkpointQueued.Swap(true) {
		return
	}
	select {
	case s.checkpointCh <- st:
	default:
		// Channel full: drop the request; the next Apply re-queues.
		st.checkpointQueued.Store(false)
	}
}

// checkpointLoop is the background checkpointer.
func (s *Store) checkpointLoop() {
	defer s.wg.Done()
	for {
		select {
		case st := <-s.checkpointCh:
			st.checkpointQueued.Store(false)
			_ = s.checkpoint(st) // failure leaves the WAL intact; retried on the next trigger
		case <-s.quit:
			return
		}
	}
}

// syncLoop flushes dirty WALs on the configured interval (FsyncInterval
// policy only).
func (s *Store) syncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opt.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			states := make([]*dbState, 0, len(s.dbs))
			for _, st := range s.dbs {
				states = append(states, st)
			}
			s.mu.Unlock()
			for _, st := range states {
				st.mu.Lock()
				_ = st.wal.sync()
				st.mu.Unlock()
			}
		case <-s.quit:
			return
		}
	}
}

// Checkpoint folds the named database's WAL into a fresh snapshot now.
func (s *Store) Checkpoint(name string) error {
	st, err := s.lookup(name)
	if err != nil {
		return err
	}
	return s.checkpoint(st)
}

// checkpoint writes an atomic snapshot of st's current catalog, then
// truncates the WAL it covers. Ordering is load current → snapshot →
// truncate, all under st.mu, so the snapshot covers exactly the WAL records
// applied so far and the truncate only runs once the snapshot is durable.
func (s *Store) checkpoint(st *dbState) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.wal.empty() && st.sinceCheckpoint == 0 {
		return nil
	}
	n, err := writeSnapshot(st.dir, st.current.Load())
	if err != nil {
		return err
	}
	s.snapshotWrites.Add(1)
	s.snapshotBytes.Add(n)
	// Persist the version base BEFORE truncating: a crash in between
	// overcounts on replay (base already includes records still in the WAL),
	// which is safe — versions must never regress. If the base write fails,
	// leave the WAL so base+replay still reconstructs the true version.
	if err := s.setStatsBase(st.name, st.version); err != nil {
		return err
	}
	if err := st.wal.truncate(); err != nil {
		return err
	}
	st.sinceCheckpoint = 0
	s.checkpoints.Add(1)
	return nil
}

// Close shuts the store down cleanly: the background goroutines stop, every
// database gets a final checkpoint (so a clean shutdown restarts with an
// empty WAL and zero replay), and the WAL files are flushed and closed.
// Further calls on the store return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	states := make([]*dbState, 0, len(s.dbs))
	for _, st := range s.dbs {
		states = append(states, st)
	}
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
	var errs []error
	for _, st := range states {
		if err := s.checkpoint(st); err != nil {
			errs = append(errs, fmt.Errorf("%s: final checkpoint: %w", st.name, err))
		}
		st.mu.Lock()
		if err := st.wal.close(); err != nil {
			errs = append(errs, fmt.Errorf("%s: wal close: %w", st.name, err))
		}
		st.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Options returns the effective (defaulted) options.
func (s *Store) Options() Options { return s.opt }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.dbs)
	recovered := s.recoveredDatabases
	s.mu.Unlock()
	return Stats{
		Databases:          n,
		WALAppends:         s.walAppends.Load(),
		WALBytes:           s.walBytes.Load(),
		SnapshotWrites:     s.snapshotWrites.Load(),
		SnapshotBytes:      s.snapshotBytes.Load(),
		Checkpoints:        s.checkpoints.Load(),
		RecoveredDatabases: recovered,
		ReplayedRecords:    s.replayedRecords.Load(),
		TornTailBytes:      s.tornTailBytes.Load(),
	}
}
