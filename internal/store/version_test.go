package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
)

func applyOne(t *testing.T, s *Store, name string, a, b int64) ApplyResult {
	t.Helper()
	res, err := s.Apply(name, Batch{
		{Relation: 0, Inserts: []relation.Tuple{relation.Ints(a, b)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestVersionCountsBatches: every Apply advances the statistics version by
// one and reports it in the result.
func TestVersionCountsBatches(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	defer s.Close()
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Version("tri"); err != nil || v != 0 {
		t.Fatalf("fresh version = %d (%v), want 0", v, err)
	}
	for i := int64(1); i <= 5; i++ {
		res := applyOne(t, s, "tri", 100+i, 200+i)
		if res.Version != i {
			t.Fatalf("ApplyResult.Version = %d after batch %d", res.Version, i)
		}
	}
	if v, err := s.Version("tri"); err != nil || v != 5 {
		t.Fatalf("Version = %d (%v), want 5", v, err)
	}
	if _, err := s.Version("missing"); err == nil {
		t.Fatal("Version on an unknown database should fail")
	}
}

// TestVersionSurvivesReplay: without a checkpoint, a reopen reconstructs the
// version as persisted base + replayed WAL records; with a checkpoint, the
// base alone carries it. Either way the version never regresses.
func TestVersionSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{CheckpointEvery: -1})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		applyOne(t, s, "tri", 100+i, 200+i)
	}
	// Reopen WITHOUT Close: the WAL tail holds all three batches and the
	// persisted base is still 0, exactly the post-crash shape.
	s2 := open(t, dir, Options{CheckpointEvery: -1})
	if v, err := s2.Version("tri"); err != nil || v != 3 {
		t.Fatalf("replayed version = %d (%v), want base 0 + 3 replayed", v, err)
	}
	applyOne(t, s2, "tri", 300, 301)
	if err := s2.Checkpoint("tri"); err != nil {
		t.Fatal(err)
	}
	// After the checkpoint the base is 4 and the WAL is empty.
	s3 := open(t, dir, Options{CheckpointEvery: -1})
	if v, err := s3.Version("tri"); err != nil || v != 4 {
		t.Fatalf("checkpointed version = %d (%v), want 4", v, err)
	}
	_ = s3.Close()
}

// TestVersionSurvivesCleanClose: Close's final checkpoint persists the base,
// so a clean restart resumes the count with zero replay.
func TestVersionSurvivesCleanClose(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 7; i++ {
		applyOne(t, s, "tri", 100+i, 200+i)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if s2.Stats().ReplayedRecords != 0 {
		t.Fatalf("clean close left %d WAL records", s2.Stats().ReplayedRecords)
	}
	if v, err := s2.Version("tri"); err != nil || v != 7 {
		t.Fatalf("version after clean restart = %d (%v), want 7", v, err)
	}
	if res := applyOne(t, s2, "tri", 500, 501); res.Version != 8 {
		t.Fatalf("post-restart ApplyResult.Version = %d, want 8", res.Version)
	}
}

// TestVersionMissingStatsFile: stores written before stats.dat existed (or
// with the file deleted) upgrade transparently — versions restart from the
// replayed record count.
func TestVersionMissingStatsFile(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	applyOne(t, s, "tri", 100, 200)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, statsName)); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	if v, err := s2.Version("tri"); err != nil || v != 0 {
		t.Fatalf("version without stats.dat = %d (%v), want 0 (fresh count)", v, err)
	}
}

// TestStatsFileCorruptionDetected: a stats.dat with a bad magic fails Open
// loudly instead of silently resetting every version.
func TestStatsFileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Create("tri", triangle(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, statsName), []byte("garbage!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt stats.dat")
	}
}
