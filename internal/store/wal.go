package store

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine/failpoint"
)

// FsyncPolicy says when the WAL calls fsync after an append.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended record: a batch acknowledged
	// to the client survives a power cut, at one disk flush per ingest.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background ticker (Options.FsyncInterval):
	// a process crash loses nothing (the OS holds the pages), a power cut
	// may lose the last interval's acknowledged batches.
	FsyncInterval
	// FsyncNever leaves flushing entirely to the OS.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (valid: always, interval, never)", s)
}

// String renders the policy as its flag value.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Failpoint sites inside the WAL append path, in execution order. The crash
// harness arms them (via failpoint.EnableFromEnv) to kill a child process
// at each stage; in-process tests arm them with plain errors to walk the
// abort paths.
const (
	// FailpointWALAppend fires before any bytes are written: a crash here
	// loses the batch entirely (recovery = pre-batch state).
	FailpointWALAppend = "store.wal.append"
	// FailpointWALTorn fires mid-write: the WAL writes a strict prefix of
	// the framed record — a torn write — then crashes or errors. Recovery
	// must detect the torn tail by checksum and land on the pre-batch
	// state.
	FailpointWALTorn = "store.wal.torn"
	// FailpointWALSync fires after the record is fully written, before
	// fsync: a process crash here keeps the record (the OS has the pages),
	// so recovery lands on the post-batch state.
	FailpointWALSync = "store.wal.sync"
)

// wal is one database's write-ahead log: an append-only file of framed
// batch records after an 8-byte magic. Not safe for concurrent use; the
// owning dbState serializes access.
type wal struct {
	path   string
	f      *os.File
	size   int64 // current file size (next append offset)
	policy FsyncPolicy
	dirty  atomic.Bool // bytes appended since the last fsync

	// failed, once set, poisons the WAL: an fsync failed, so the kernel
	// may have dropped the unflushed pages and the on-disk tail is
	// indeterminate — further appends are refused with ErrWALFailed
	// instead of acknowledging batches whose durability is unknowable.
	// A successful checkpoint clears it: once the WAL is truncated back
	// to its magic and that truncation is fsynced, every page of unknown
	// fate lies beyond EOF. Guarded by the owning dbState's mutex.
	failed error

	// Shared store-level counters (may be nil in low-level tests).
	appends, bytes *atomic.Int64
}

// createWAL creates an empty WAL at path (magic only, synced).
func createWAL(path string, policy FsyncPolicy) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{path: path, f: f, size: int64(len(walMagic)), policy: policy}, nil
}

// openWAL opens an existing WAL, replaying its record payloads. A torn
// final record — truncated framing or a checksum mismatch at the tail,
// exactly what an interrupted append leaves behind — is tolerated: the file
// is truncated back to the last intact record and the tally of dropped
// bytes is reported. A missing or empty file (a crash between file creation
// and the magic write) is treated as a fresh WAL. A bad magic on a nonempty
// file is real corruption and fails the open.
func openWAL(path string, policy FsyncPolicy) (w *wal, payloads [][]byte, tornBytes int64, err error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		w, err := createWAL(path, policy)
		return w, nil, 0, err
	}
	if err != nil {
		return nil, nil, 0, err
	}
	if len(raw) < len(walMagic) {
		// Torn at creation: nothing was ever logged.
		if err := os.Remove(path); err != nil {
			return nil, nil, 0, err
		}
		w, err := createWAL(path, policy)
		return w, nil, int64(len(raw)), err
	}
	if string(raw[:len(walMagic)]) != walMagic {
		return nil, nil, 0, fmt.Errorf("%w: %s is not a WAL (or is a different format version)", ErrBadMagic, path)
	}
	body := raw[len(walMagic):]
	payloads, offset, derr := readRecords(body)
	goodSize := int64(len(walMagic) + offset)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	if derr != nil {
		// Torn tail: drop everything past the last intact record. Anything
		// after a bad checksum is untrustworthy, so replay stops here by
		// design; the append protocol (one fsynced record per acknowledged
		// batch) means only an unacknowledged batch can be lost.
		tornBytes = int64(len(raw)) - goodSize
		if err := f.Truncate(goodSize); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(goodSize, 0); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &wal{path: path, f: f, size: goodSize, policy: policy}, payloads, tornBytes, nil
}

// append frames and writes one batch payload, honoring the fsync policy and
// the WAL failpoint sites. Payloads above MaxRecordSize are rejected before
// any byte is written: readRecord refuses them on replay, so acknowledging
// one would guarantee its loss (plus everything logged after it) on the
// next open. On an injected torn write it leaves the partial record in
// place (that is the point: the next open must cope); on a failed write it
// truncates back to the pre-append offset so an errored ingest is not
// silently replayed after a restart; on a failed fsync it poisons the WAL
// (see wal.failed) rather than trusting the same fd any further.
func (w *wal) append(payload []byte) (int64, error) {
	if w.failed != nil {
		return 0, fmt.Errorf("%w: %v", ErrWALFailed, w.failed)
	}
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("%w: encoded batch is %d bytes, above the %d-byte WAL record limit",
			ErrBadBatch, len(payload), MaxRecordSize)
	}
	if err := failpoint.Check(FailpointWALAppend); err != nil {
		failpoint.ExitIf(err)
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	frame := appendRecord(make([]byte, 0, recordHeaderSize+len(payload)), payload)
	if err := failpoint.Check(FailpointWALTorn); err != nil {
		// Torn-write injection: a strict prefix of the frame reaches the
		// disk, then the process dies (crash harness) or the append errors
		// (in-process tests). Sync the partial bytes so a kill cannot hide
		// the tear.
		n := len(frame) / 2
		if n == 0 {
			n = 1
		}
		if _, werr := w.f.Write(frame[:n]); werr == nil {
			w.size += int64(n)
			_ = w.f.Sync()
		}
		failpoint.ExitIf(err)
		return 0, fmt.Errorf("store: wal torn write: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.rollbackTo(w.size)
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	written := int64(len(frame))
	if err := failpoint.Check(FailpointWALSync); err != nil {
		failpoint.ExitIf(err)
		w.rollbackTo(w.size)
		return 0, fmt.Errorf("store: wal sync: %w", err)
	}
	if w.policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			// A failed fsync may have dropped dirty pages (Linux clears
			// the error state), so neither the record nor a rollback
			// truncate can be made durable on this fd — do not touch the
			// file, just refuse all further appends.
			w.failed = err
			return 0, fmt.Errorf("%w: %v", ErrWALFailed, err)
		}
	} else {
		w.dirty.Store(true)
	}
	w.size += written
	if w.appends != nil {
		w.appends.Add(1)
	}
	if w.bytes != nil {
		w.bytes.Add(written)
	}
	return written, nil
}

// rollbackTo best-effort truncates the file back to size after a failed
// append, so a half-acknowledged record is not replayed on restart.
func (w *wal) rollbackTo(size int64) {
	if err := w.f.Truncate(size); err != nil {
		return
	}
	_, _ = w.f.Seek(size, 0)
}

// sync flushes pending appends if any; the interval syncer calls it. A
// failed flush poisons the WAL like a failed append-time fsync does.
func (w *wal) sync() error {
	if w.failed != nil {
		return fmt.Errorf("%w: %v", ErrWALFailed, w.failed)
	}
	if !w.dirty.Swap(false) {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.failed = err
		return fmt.Errorf("%w: %v", ErrWALFailed, err)
	}
	return nil
}

// truncate empties the WAL back to its magic header; the checkpointer calls
// it once a snapshot covering every logged record is durable. Crash-safe
// ordering note: if the process dies after the snapshot rename but before
// this truncate, recovery replays the WAL's records onto the new snapshot —
// which is idempotent, because within each record deletes precede inserts
// and across records the last record touching a tuple decides it, so a full
// ordered replay reproduces exactly the state the snapshot captured.
func (w *wal) truncate() error {
	if err := failpoint.Check(FailpointWALTruncate); err != nil {
		failpoint.ExitIf(err)
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = int64(len(walMagic))
	w.dirty.Store(false)
	// The truncation is durable and the file holds nothing but its magic:
	// any page a failed fsync may have dropped lies beyond EOF, so a
	// previously poisoned WAL is serviceable again.
	w.failed = nil
	return nil
}

// records returns the number of complete records currently in the file;
// used by tests and the checkpointer's "anything to do?" check. It is a
// size heuristic only when records vary — so instead the dbState tracks the
// count; this helper just reports whether the WAL is empty.
func (w *wal) empty() bool { return w.size == int64(len(walMagic)) }

// close flushes and closes the file.
func (w *wal) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// syncInterval normalizes the configured interval.
func syncInterval(d time.Duration) time.Duration {
	if d <= 0 {
		return 100 * time.Millisecond
	}
	return d
}
