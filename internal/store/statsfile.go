package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Statistics versions are durable mutation counters: every database carries
// a version equal to the number of batches ever applied to it, and the
// serving layer folds it into plan-cache keys (fingerprint#strategy#sN#vK)
// so statistics-dependent plans are invalidated by ingest instead of being
// re-served stale. The counter must survive restarts — otherwise a reopened
// store would hand out version numbers that collide with pre-crash cache
// state upstream — so the base value as of the last checkpoint lives in one
// stats.dat file at the store root (views.dat's atomic-write protocol, its
// own magic) and recovery adds the replayed WAL records on top. The write
// ordering in checkpoint (snapshot → stats base → WAL truncate) can only
// overcount after a crash, never regress: a monotone version is the one
// property cache keys rely on.
const (
	statsName  = "stats.dat"
	statsTemp  = "stats.tmp"
	statsMagic = "JDSTA\x00\x00\x01"
)

// saveStatsBases atomically replaces stats.dat with the given name→version
// bases. Caller must hold s.mu.
func (s *Store) saveStatsBasesLocked() error {
	payload, err := json.Marshal(s.statsBases)
	if err != nil {
		return fmt.Errorf("store: encoding stats bases: %w", err)
	}
	frame := appendRecord(make([]byte, 0, len(statsMagic)+recordHeaderSize+len(payload)), payload)
	tmp := filepath.Join(s.dir, statsTemp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(statsMagic)); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, statsName)); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// setStatsBase records name's checkpoint-time version base and persists the
// file. Safe to call while holding a dbState mutex (s.mu never nests inside
// another dbState's mu on any path).
func (s *Store) setStatsBase(name string, version int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.statsBases == nil {
		s.statsBases = make(map[string]int64)
	}
	s.statsBases[name] = version
	return s.saveStatsBasesLocked()
}

// loadStatsBases reads dir's stats.dat. A missing file means every base is
// zero (pre-stats stores upgrade transparently); corruption is a hard error
// because the atomic write protocol cannot tear the file.
func loadStatsBases(dir string) (map[string]int64, error) {
	_ = os.Remove(filepath.Join(dir, statsTemp)) // stale save attempt
	raw, err := os.ReadFile(filepath.Join(dir, statsName))
	if errors.Is(err, os.ErrNotExist) {
		return map[string]int64{}, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < len(statsMagic) || string(raw[:len(statsMagic)]) != statsMagic {
		return nil, fmt.Errorf("%w: %s is not a stats-base file (or is a different format version)", ErrBadMagic, statsName)
	}
	payload, n, err := readRecordLimit(raw[len(statsMagic):], maxFramePayload)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", statsName, err)
	}
	if len(statsMagic)+n != len(raw) {
		return nil, fmt.Errorf("%w: %d trailing bytes after stats-base record", ErrCorrupt, len(raw)-len(statsMagic)-n)
	}
	bases := map[string]int64{}
	if err := json.Unmarshal(payload, &bases); err != nil {
		return nil, fmt.Errorf("store: %s: %w", statsName, err)
	}
	return bases, nil
}

// Version returns the named database's statistics version: the number of
// batches ever applied to it, monotone across restarts (a crash between a
// checkpoint's stats write and its WAL truncate can overcount, never
// regress).
func (s *Store) Version(name string) (int64, error) {
	st, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.version, nil
}
