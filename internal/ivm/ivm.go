// Package ivm maintains materialized join views incrementally. A view is a
// registered query — ⋈D over one catalog database — whose derived program
// (internal/core, via engine.PlanFor) is differentiated into a delta
// program: for each base-relation delta batch (inserts and deletes), the
// change is propagated through the program's join/semijoin/project steps
// with the distributive rule
//
//	Δ(X ⋈ Y) = ΔX ⋈ Y' + X' ⋈ ΔY − ΔX ⋈ ΔY
//
// (primes are post-batch states; the subtraction removes the pair-delta
// counted twice), instead of re-running the program from scratch. Every
// intermediate step result is materialized with multiplicity counts —
// derivation counts, not set cardinalities — so that deletes retract
// exactly: a projected tuple with three derivations survives the loss of
// one, and a tuple whose count reaches zero disappears. The support of each
// counted state (rows with count > 0) equals the set-semantics value of the
// corresponding program step, because joins multiply positive counts,
// projections sum them, and semijoins scale by a 0/1 support indicator; the
// view's result is therefore always the support of the output node.
//
// Semijoin steps additionally apply the Safe-Subjoins condition (see
// PAPERS.md, "Safe Subjoins in Acyclic Joins"): a reducer delta ΔY can only
// change the step's output for join keys whose support in Y actually flips.
// When no key flips — the common case for small deltas against a large
// reducer — re-running the reducer over the whole left operand is provably
// unnecessary and the step touches only ΔX. These skips are counted
// (BatchStats.ReducerSkips) so the serving layer can expose them.
//
// A View is not safe for concurrent use; the serving layer (internal/
// service) guards each view with its own mutex and applies deltas in WAL
// order under the catalog entry's ingest lock.
package ivm

import (
	"fmt"

	"repro/internal/relation"
)

// rowKey is the injective byte encoding of a whole tuple, used as the map
// key of counted states and deltas. relation.AppendTupleBinary
// length-prefixes every value, so distinct tuples never collide.
func rowKey(t relation.Tuple) string {
	return string(relation.AppendTupleBinary(nil, t))
}

// groupKey encodes the tuple restricted to the given column positions, in
// the order given. Two tuples agree on the columns iff their group keys are
// equal; the empty position list maps every tuple to "" — the single bucket
// a Cartesian (no common attribute) join probes.
func groupKey(t relation.Tuple, pos []int) string {
	var buf []byte
	for _, p := range pos {
		buf = relation.AppendValueBinary(buf, t[p])
	}
	return string(buf)
}

// crow is one counted row: a tuple and its multiplicity (derivation count).
// Counts in a node's state are always positive; a count reaching zero
// removes the row.
type crow struct {
	t relation.Tuple
	n int64
}

// nodeIndex is a maintained hash index over one node's state, keyed by the
// group key of a fixed column position list. Buckets share *crow pointers
// with the node's row map, so count changes are visible without index
// writes; only row creation and removal touch the buckets. totals tracks
// Σcount per bucket — the semijoin support test is totals[k] > 0, and the
// pre-batch support is recovered as totals[k] minus the delta's key total.
type nodeIndex struct {
	pos     []int
	buckets map[string]map[string]*crow
	totals  map[string]int64
}

func newNodeIndex(pos []int) *nodeIndex {
	return &nodeIndex{
		pos:     pos,
		buckets: make(map[string]map[string]*crow),
		totals:  make(map[string]int64),
	}
}

// insert adds a newly created row to its bucket.
func (ix *nodeIndex) insert(key string, c *crow) {
	gk := groupKey(c.t, ix.pos)
	b := ix.buckets[gk]
	if b == nil {
		b = make(map[string]*crow)
		ix.buckets[gk] = b
	}
	b[key] = c
	ix.totals[gk] += c.n
}

// bump adjusts the bucket total for an existing row whose count changed.
func (ix *nodeIndex) bump(t relation.Tuple, dn int64) {
	ix.totals[groupKey(t, ix.pos)] += dn
}

// drop removes a row whose count reached zero.
func (ix *nodeIndex) drop(key string, t relation.Tuple) {
	gk := groupKey(t, ix.pos)
	b := ix.buckets[gk]
	delete(b, key)
	if len(b) == 0 {
		delete(ix.buckets, gk)
		delete(ix.totals, gk)
	}
}

// reset empties the index.
func (ix *nodeIndex) reset() {
	ix.buckets = make(map[string]map[string]*crow)
	ix.totals = make(map[string]int64)
}

// node is one SSA node of the delta program: an input relation or the
// result of one statement, with its materialized counted state and the
// indexes the steps touching it registered at compile time.
type node struct {
	id      int
	label   string
	schema  *relation.Schema
	rows    map[string]*crow
	indexes []*nodeIndex
}

// index returns the node's maintained index over pos, creating it if no
// step registered an equal position list yet. Compile-time only.
func (nd *node) index(pos []int) *nodeIndex {
	for _, ix := range nd.indexes {
		if equalInts(ix.pos, pos) {
			return ix
		}
	}
	ix := newNodeIndex(pos)
	nd.indexes = append(nd.indexes, ix)
	return ix
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// apply adjusts one row's multiplicity by dn, maintaining the indexes. A
// resulting negative count is an internal inconsistency (a retraction of a
// derivation that was never counted); the caller must rebuild the view.
func (nd *node) apply(key string, t relation.Tuple, dn int64) error {
	if dn == 0 {
		return nil
	}
	c := nd.rows[key]
	if c == nil {
		if dn < 0 {
			return fmt.Errorf("ivm: %s: retracting %d derivations of absent tuple %s", nd.label, -dn, t)
		}
		c = &crow{t: t, n: dn}
		nd.rows[key] = c
		for _, ix := range nd.indexes {
			ix.insert(key, c)
		}
		return nil
	}
	c.n += dn
	if c.n < 0 {
		return fmt.Errorf("ivm: %s: multiplicity of %s went negative (%d)", nd.label, t, c.n)
	}
	for _, ix := range nd.indexes {
		ix.bump(c.t, dn)
	}
	if c.n == 0 {
		delete(nd.rows, key)
		for _, ix := range nd.indexes {
			ix.drop(key, c.t)
		}
	}
	return nil
}

// reset empties the node's state and indexes (rebuild path).
func (nd *node) reset() {
	nd.rows = make(map[string]*crow)
	for _, ix := range nd.indexes {
		ix.reset()
	}
}

// delta is a signed multiset of tuples over one node's schema: the change
// of that node's counted state within one batch. Counts may be negative
// (retractions); rows whose count cancels to zero are removed eagerly so
// that downstream steps never process no-ops.
type delta struct {
	schema *relation.Schema
	rows   map[string]*drow
}

type drow struct {
	t relation.Tuple
	n int64
}

func newDelta(schema *relation.Schema) *delta {
	return &delta{schema: schema, rows: make(map[string]*drow)}
}

// addKeyed accumulates dn onto the row with a precomputed key.
func (d *delta) addKeyed(key string, t relation.Tuple, dn int64) {
	if dn == 0 {
		return
	}
	r := d.rows[key]
	if r == nil {
		d.rows[key] = &drow{t: t, n: dn}
		return
	}
	r.n += dn
	if r.n == 0 {
		delete(d.rows, key)
	}
}

// add accumulates dn onto the row for t.
func (d *delta) add(t relation.Tuple, dn int64) {
	d.addKeyed(rowKey(t), t, dn)
}

// isEmpty reports whether the delta carries no change (nil included).
func (d *delta) isEmpty() bool { return d == nil || len(d.rows) == 0 }
