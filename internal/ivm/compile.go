package ivm

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/program"
	"repro/internal/relation"
)

// step is one differentiated statement: the delta rule for a join,
// semijoin, or projection, bound to its SSA operand nodes and the indexes
// the rule probes. The program's destructive assignment is compiled away:
// every statement head becomes a fresh node, so "R(V) := R(V) ⋉ R(S)"
// reads the old V node and writes a new one.
type step struct {
	op    program.Op
	label string
	out   *node
	arg1  *node
	arg2  *node // nil for projections

	// projPos are the output columns' positions in arg1 (projections).
	projPos []int
	// pos1/pos2 are the common attributes' positions in arg1/arg2, in
	// sorted attribute order (joins and semijoins), and only2 the arg2
	// columns absent from arg1, in arg2 column order (joins).
	pos1, pos2 []int
	only2      []int
	// idx1 indexes arg1 on pos1; idx2 indexes arg2 on pos2.
	idx1, idx2 *nodeIndex
}

// View is one compiled, materialized continuous query: the delta program
// derived from engine.PlanFor's program (or its expression fallback for
// disconnected schemes), the counted state of every node, and the batch
// application machinery in apply.go. Construct with Compile; a View is not
// safe for concurrent use.
type View struct {
	fingerprint string
	notes       []string

	nodes  []*node
	inputs []*node // canonical edge order
	// inputOf maps an original relation index (the order the database was
	// registered with, which is what ingest batches address) to its
	// canonical input node.
	inputOf []int
	steps   []*step
	out     *node
}

// Compile derives the delta program for ⋈D over db's scheme. The program
// route is forced (engine.StrategyProgram): connected schemes get the
// paper's derived join/semijoin/project program, and disconnected schemes
// take PlanFor's expression fallback, which compiles here into join-only
// steps (the join delta rule handles the Cartesian, no-common-attribute
// case as a single-bucket probe). The instance steers optimizer search, but
// the compiled view is valid for every instance over the scheme — Theorem 1
// — which is what lets Rebuild reload it from any later catalog.
func Compile(db *relation.Database) (*View, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("ivm: empty database")
	}
	plan, err := engine.PlanFor(db, engine.Options{Strategy: engine.StrategyProgram})
	if err != nil {
		return nil, err
	}
	h := hypergraph.OfScheme(db)
	perm := h.CanonicalOrder()
	cdb, err := db.Restrict(perm)
	if err != nil {
		return nil, err
	}
	v := &View{fingerprint: plan.Fingerprint, notes: plan.Notes}
	v.inputs = make([]*node, cdb.Len())
	v.inputOf = make([]int, len(perm))
	for ci, orig := range perm {
		v.inputs[ci] = v.newNode(cdb.Relation(ci).Schema(), fmt.Sprintf("input %d", orig))
		v.inputOf[orig] = ci
	}
	switch {
	case plan.Derivation != nil:
		if err := v.compileProgram(plan.Derivation.Program); err != nil {
			return nil, err
		}
	case plan.Tree != nil:
		v.out = v.compileTree(plan.Tree)
	default:
		return nil, fmt.Errorf("ivm: plan for %s carries neither a program nor a tree", plan.Strategy)
	}
	return v, nil
}

func (v *View) newNode(schema *relation.Schema, label string) *node {
	nd := &node{
		id:     len(v.nodes),
		label:  label,
		schema: schema,
		rows:   make(map[string]*crow),
	}
	v.nodes = append(v.nodes, nd)
	return nd
}

// compileProgram walks the derived program in SSA form: an environment maps
// each live name to the node currently holding it, and every statement
// (re)binds its head to a fresh node.
func (v *View) compileProgram(p *program.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(p.Inputs) != len(v.inputs) {
		return fmt.Errorf("ivm: program has %d inputs, scheme has %d relations", len(p.Inputs), len(v.inputs))
	}
	env := make(map[string]*node, len(p.Inputs)+len(p.Stmts))
	for i, name := range p.Inputs {
		env[name] = v.inputs[i]
	}
	for i, st := range p.Stmts {
		a1 := env[st.Arg1]
		if a1 == nil {
			return fmt.Errorf("ivm: statement %d (%s): operand %q undefined", i+1, st, st.Arg1)
		}
		var out *node
		switch st.Op {
		case program.OpProject:
			pos, err := a1.schema.Positions(st.Proj)
			if err != nil {
				return fmt.Errorf("ivm: statement %d (%s): %w", i+1, st, err)
			}
			out = v.newNode(relation.MustSchema(st.Proj...), st.String())
			v.steps = append(v.steps, &step{
				op: program.OpProject, label: st.String(),
				out: out, arg1: a1, projPos: pos,
			})
		case program.OpJoin:
			a2 := env[st.Arg2]
			if a2 == nil {
				return fmt.Errorf("ivm: statement %d (%s): operand %q undefined", i+1, st, st.Arg2)
			}
			out = v.newNode(joinSchema(a1.schema, a2.schema), st.String())
			v.steps = append(v.steps, v.joinStep(st.String(), out, a1, a2))
		case program.OpSemijoin:
			a2 := env[st.Arg2]
			if a2 == nil {
				return fmt.Errorf("ivm: statement %d (%s): operand %q undefined", i+1, st, st.Arg2)
			}
			out = v.newNode(a1.schema, st.String())
			v.steps = append(v.steps, v.semijoinStep(st.String(), out, a1, a2))
		default:
			return fmt.Errorf("ivm: statement %d (%s): unknown operator", i+1, st)
		}
		env[st.Head] = out
	}
	v.out = env[p.Output]
	if v.out == nil {
		return fmt.Errorf("ivm: program output %q undefined", p.Output)
	}
	return nil
}

// compileTree converts an expression tree (the disconnected-scheme
// fallback) into join-only steps, bottom-up.
func (v *View) compileTree(t *jointree.Tree) *node {
	if t.IsLeaf() {
		return v.inputs[t.Leaf]
	}
	a1 := v.compileTree(t.Left)
	a2 := v.compileTree(t.Right)
	out := v.newNode(joinSchema(a1.schema, a2.schema), "")
	label := fmt.Sprintf("R(%s) := R(%s) ⋈ R(%s)", out.schema, a1.schema, a2.schema)
	out.label = label
	v.steps = append(v.steps, v.joinStep(label, out, a1, a2))
	return out
}

// joinStep builds a join step and registers its probe indexes: arg2 keyed
// by the common attributes for the ΔX side, arg1 likewise for the ΔY side.
func (v *View) joinStep(label string, out, a1, a2 *node) *step {
	common := a1.schema.AttrSet().Intersect(a2.schema.AttrSet())
	pos1, _ := a1.schema.Positions(common)
	pos2, _ := a2.schema.Positions(common)
	var only2 []int
	for i, a := range a2.schema.Attrs() {
		if !a1.schema.Has(a) {
			only2 = append(only2, i)
		}
	}
	return &step{
		op: program.OpJoin, label: label,
		out: out, arg1: a1, arg2: a2,
		pos1: pos1, pos2: pos2, only2: only2,
		idx1: a1.index(pos1), idx2: a2.index(pos2),
	}
}

// semijoinStep builds a semijoin step: arg2 indexed by the common
// attributes answers the support test, arg1 indexed likewise locates the
// tuples a flipped key affects.
func (v *View) semijoinStep(label string, out, a1, a2 *node) *step {
	common := a1.schema.AttrSet().Intersect(a2.schema.AttrSet())
	pos1, _ := a1.schema.Positions(common)
	pos2, _ := a2.schema.Positions(common)
	return &step{
		op: program.OpSemijoin, label: label,
		out: out, arg1: a1, arg2: a2,
		pos1: pos1, pos2: pos2,
		idx1: a1.index(pos1), idx2: a2.index(pos2),
	}
}

// joinSchema mirrors the relation package's natural-join column order: l's
// columns followed by r's columns not in l.
func joinSchema(l, r *relation.Schema) *relation.Schema {
	attrs := append([]string(nil), l.Attrs()...)
	for _, a := range r.Attrs() {
		if !l.Has(a) {
			attrs = append(attrs, a)
		}
	}
	return relation.MustSchema(attrs...)
}

// Fingerprint returns the canonical scheme fingerprint the view was
// compiled for.
func (v *View) Fingerprint() string { return v.fingerprint }

// PlanNotes returns how the underlying plan was obtained.
func (v *View) PlanNotes() []string { return v.notes }

// Steps returns the number of delta-program steps (0 for a single-relation
// view, whose output is the input itself).
func (v *View) Steps() int { return len(v.steps) }

// OpCounts returns the number of steps per operator, in the order
// (projections, joins, semijoins).
func (v *View) OpCounts() (projects, joins, semijoins int) {
	for _, s := range v.steps {
		switch s.op {
		case program.OpProject:
			projects++
		case program.OpJoin:
			joins++
		case program.OpSemijoin:
			semijoins++
		}
	}
	return projects, joins, semijoins
}

// OutputSchema returns the view result's schema.
func (v *View) OutputSchema() *relation.Schema { return v.out.schema }

// ResultCount returns the current result cardinality without
// materializing.
func (v *View) ResultCount() int { return len(v.out.rows) }

// Result materializes the current view result: the support of the output
// node's counted state, which equals ⋈D for the maintained catalog.
func (v *View) Result() *relation.Relation {
	out := relation.New(v.out.schema)
	for _, c := range v.out.rows {
		out.MustInsert(c.t)
	}
	return out
}
