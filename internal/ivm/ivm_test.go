package ivm

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/workload"
)

// shadowApply recomputes the post-batch catalog the way the store does:
// changes in order, deletes before inserts within one change.
func shadowApply(t *testing.T, db *relation.Database, changes []Change) *relation.Database {
	t.Helper()
	rels := append([]*relation.Relation(nil), db.Relations()...)
	for _, ch := range changes {
		old := rels[ch.Relation]
		del := relation.New(old.Schema())
		for _, tu := range ch.Deletes {
			del.MustInsert(tu)
		}
		next := relation.New(old.Schema())
		for _, row := range old.Rows() {
			if !del.Contains(row) {
				next.MustInsert(row)
			}
		}
		for _, tu := range ch.Inserts {
			next.MustInsert(tu)
		}
		rels[ch.Relation] = next
	}
	out, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatalf("shadow apply: %v", err)
	}
	return out
}

// randomTuple draws a tuple over the relation's arity from [0, domain).
func randomTuple(rng *rand.Rand, arity, domain int) relation.Tuple {
	vs := make([]int64, arity)
	for i := range vs {
		vs[i] = int64(rng.Intn(domain))
	}
	return relation.Ints(vs...)
}

// randomBatch draws 1–3 changes: deletes sampled from the current rows plus
// some misses, inserts drawn fresh (some of which duplicate existing rows —
// no-ops the effective-delta computation must drop).
func randomBatch(rng *rand.Rand, db *relation.Database, domain int) []Change {
	n := 1 + rng.Intn(3)
	changes := make([]Change, 0, n)
	for i := 0; i < n; i++ {
		ri := rng.Intn(db.Len())
		r := db.Relation(ri)
		arity := r.Schema().Len()
		ch := Change{Relation: ri}
		for k := rng.Intn(4); k > 0; k-- {
			if rows := r.Rows(); len(rows) > 0 && rng.Intn(3) > 0 {
				ch.Deletes = append(ch.Deletes, rows[rng.Intn(len(rows))])
			} else {
				ch.Deletes = append(ch.Deletes, randomTuple(rng, arity, domain))
			}
		}
		for k := rng.Intn(4); k > 0; k-- {
			ch.Inserts = append(ch.Inserts, randomTuple(rng, arity, domain))
		}
		if len(ch.Inserts)+len(ch.Deletes) == 0 {
			ch.Inserts = append(ch.Inserts, randomTuple(rng, arity, domain))
		}
		changes = append(changes, ch)
	}
	return changes
}

// TestDifferentialRandom is the tentpole invariant: over randomized schemes
// (acyclic, cyclic, and disconnected) and randomized insert/delete batch
// sequences, the delta-maintained view equals a from-scratch ⋈D recompute
// after every batch.
func TestDifferentialRandom(t *testing.T) {
	const trials = 72
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		var db *relation.Database
		var err error
		switch trial % 4 {
		case 1: // forced cyclic
			h, herr := workload.CliqueScheme(3 + trial%2)
			if herr != nil {
				t.Fatal(herr)
			}
			db, err = workload.RandomDatabase(rng, h, 8+rng.Intn(10), 3+rng.Intn(3))
		case 3: // possibly disconnected: exercises the expression fallback
			h, herr := workload.RandomScheme(rng, workload.RandomSchemeSpec{
				Relations: 2 + rng.Intn(3), Attrs: 6, MaxArity: 2,
			})
			if herr != nil {
				t.Fatal(herr)
			}
			db, err = workload.RandomDatabase(rng, h, 4+rng.Intn(5), 3)
		default:
			h, herr := workload.RandomScheme(rng, workload.RandomSchemeSpec{
				Relations: 2 + rng.Intn(4), Attrs: 4 + rng.Intn(3), MaxArity: 3, Connected: true,
			})
			if herr != nil {
				t.Fatal(herr)
			}
			db, err = workload.RandomDatabase(rng, h, 6+rng.Intn(12), 3+rng.Intn(3))
		}
		if err != nil {
			t.Fatal(err)
		}
		v, err := Compile(db)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, db, err)
		}
		if err := v.Rebuild(db); err != nil {
			t.Fatalf("trial %d: initial build: %v", trial, err)
		}
		if want := db.Join(); !v.Result().Equal(want) {
			t.Fatalf("trial %d: initial build of %s: view has %d tuples, ⋈D has %d",
				trial, db, v.ResultCount(), want.Len())
		}
		domain := 3 + rng.Intn(3)
		for batch := 0; batch < 5; batch++ {
			changes := randomBatch(rng, db, domain)
			db = shadowApply(t, db, changes)
			if _, err := v.Apply(changes, nil); err != nil {
				t.Fatalf("trial %d batch %d: apply: %v", trial, batch, err)
			}
			want := db.Join()
			if got := v.Result(); !got.Equal(want) {
				t.Fatalf("trial %d batch %d: view diverged on %s:\nview:      %s\nrecompute: %s",
					trial, batch, db, got, want)
			}
			if v.ResultCount() != want.Len() {
				t.Fatalf("trial %d batch %d: ResultCount %d, want %d", trial, batch, v.ResultCount(), want.Len())
			}
		}
	}
}

// TestDeletesRetractExactly drains one relation and expects an empty view:
// multiplicity counting must retract every derivation.
func TestDeletesRetractExactly(t *testing.T) {
	db, err := workload.ChainDatabase(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Rebuild(db); err != nil {
		t.Fatal(err)
	}
	if v.ResultCount() == 0 {
		t.Fatal("chain view empty before deletes")
	}
	changes := []Change{{Relation: 1, Deletes: db.Relation(1).Rows()}}
	stats, err := v.Apply(changes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.ResultCount() != 0 {
		t.Fatalf("view holds %d tuples after draining relation 1", v.ResultCount())
	}
	if stats.TuplesIn == 0 || stats.TuplesOut == 0 {
		t.Fatalf("stats did not register the drain: %+v", stats)
	}
	// Reinserting restores the original result through the same delta path.
	if _, err := v.Apply([]Change{{Relation: 1, Inserts: db.Relation(1).Rows()}}, nil); err != nil {
		t.Fatal(err)
	}
	if want := db.Join(); !v.Result().Equal(want) {
		t.Fatalf("view after drain+reinsert has %d tuples, want %d", v.ResultCount(), want.Len())
	}
}

// TestNoOpBatch asserts no-op mutations (re-inserting present tuples,
// deleting absent ones) propagate nothing.
func TestNoOpBatch(t *testing.T) {
	db, err := workload.ChainDatabase(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Rebuild(db); err != nil {
		t.Fatal(err)
	}
	stats, err := v.Apply([]Change{
		{Relation: 0, Inserts: db.Relation(0).Rows()},                    // all present
		{Relation: 1, Deletes: []relation.Tuple{relation.Ints(99, 100)}}, // absent
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TuplesIn != 0 || stats.StepRows != 0 {
		t.Fatalf("no-op batch propagated work: %+v", stats)
	}
}

// TestSafeSubjoinSkip feeds a semijoin-bearing view a reducer delta that
// cannot flip any key's support and expects the skip counter to move.
func TestSafeSubjoinSkip(t *testing.T) {
	db, err := workload.DanglingChainDatabase(3, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	_, _, semijoins := v.OpCounts()
	if semijoins == 0 {
		t.Skip("derived program has no semijoins; skip condition unexercised")
	}
	if err := v.Rebuild(db); err != nil {
		t.Fatal(err)
	}
	// Duplicate an existing middle-relation tuple's key: (v, v+1) exists for
	// v in [0,10); adding (0, 1) again is a no-op, so instead add a parallel
	// tuple (0, 2) — key attribute values already supported on both sides.
	stats, err := v.Apply([]Change{{Relation: 1, Inserts: []relation.Tuple{relation.Ints(0, 2)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReducerSkips == 0 {
		t.Fatalf("expected at least one safe-subjoin skip, got stats %+v", stats)
	}
	// And the differential invariant still holds.
	shadow := shadowApply(t, db, []Change{{Relation: 1, Inserts: []relation.Tuple{relation.Ints(0, 2)}}})
	if want := shadow.Join(); !v.Result().Equal(want) {
		t.Fatalf("view diverged after skip: %d tuples, want %d", v.ResultCount(), want.Len())
	}
}

// TestBudgetAbortThenRebuild drives maintenance into a tuple budget abort
// and asserts Rebuild restores the exact result — the serving layer's
// stale-and-rebuilding path.
func TestBudgetAbortThenRebuild(t *testing.T) {
	db, err := workload.TriangleSpec{Nodes: 12, Edges: 60}.TriangleDatabase(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Rebuild(db); err != nil {
		t.Fatal(err)
	}
	// Re-ingest the whole first relation after draining it, under a budget
	// far too small for the resulting delta work.
	changes := []Change{{Relation: 0, Deletes: db.Relation(0).Rows()}}
	g := govern.New(govern.Limits{MaxTuples: 1})
	_, err = v.Apply(changes, g)
	if !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("want ErrTupleBudget, got %v", err)
	}
	// State is now undefined; a rebuild from the true catalog recovers.
	shadow := shadowApply(t, db, changes)
	if err := v.Rebuild(shadow); err != nil {
		t.Fatal(err)
	}
	if want := shadow.Join(); !v.Result().Equal(want) {
		t.Fatalf("rebuild diverged: %d tuples, want %d", v.ResultCount(), want.Len())
	}
}

// TestChangeValidation covers the malformed-change errors.
func TestChangeValidation(t *testing.T) {
	db, err := workload.ChainDatabase(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Rebuild(db); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply([]Change{{Relation: 9, Inserts: []relation.Tuple{relation.Ints(1, 2)}}}, nil); err == nil {
		t.Fatal("out-of-range relation index accepted")
	}
	if _, err := v.Apply([]Change{{Relation: 0, Inserts: []relation.Tuple{relation.Ints(1)}}}, nil); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := v.Rebuild(nil); err == nil {
		t.Fatal("nil rebuild database accepted")
	}
}
