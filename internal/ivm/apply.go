package ivm

import (
	"fmt"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/relation"
)

// Change is one base relation's inserts and deletes within a batch, in the
// same shape as the store's mutations: Relation indexes the database in its
// registration order, and deletes apply before inserts.
type Change struct {
	Relation int
	Inserts  []relation.Tuple
	Deletes  []relation.Tuple
}

// BatchStats describes one applied delta batch.
type BatchStats struct {
	// TuplesIn is the effective input delta: tuples whose base-relation
	// membership actually changed (no-op re-inserts and absent deletes are
	// dropped before propagation).
	TuplesIn int64
	// TuplesOut is the size of the delta applied to the view's output —
	// how much the result itself changed.
	TuplesOut int64
	// StepRows is the total delta rows emitted across all steps (the work
	// the governor charged).
	StepRows int64
	// ReducerSkips counts semijoin steps that received a nonempty reducer
	// delta provably unable to flip any key's support — the Safe-Subjoins
	// condition — and therefore skipped re-reducing their left operand.
	ReducerSkips int64
}

// Apply propagates one batch of base-relation changes through the delta
// program, updating every node's counted state. Changes apply in order
// (later changes to the same relation see earlier ones), and the governor —
// which may be nil — charges every emitted delta row, with a per-step scope
// so MaxIntermediateTuples bounds a single step's delta. When the governor
// carries a span (govern.SetSpan), each executed step gets a child span.
//
// On any error the view's materialized state is undefined — part of the
// batch may be applied — and the caller must Rebuild before trusting
// Result again. The serving layer maps a budget abort onto its
// stale-and-rebuilding path rather than failing the ingest.
func (v *View) Apply(changes []Change, g *govern.Governor) (BatchStats, error) {
	var stats BatchStats
	deltas := make([]*delta, len(v.nodes))
	// Effective input deltas: membership against the current state with the
	// batch's earlier changes folded in. Input states are sets (every count
	// is 1), so each delta row is ±1.
	for _, ch := range changes {
		if ch.Relation < 0 || ch.Relation >= len(v.inputOf) {
			return stats, fmt.Errorf("ivm: change relation index %d out of range [0,%d)", ch.Relation, len(v.inputOf))
		}
		in := v.inputs[v.inputOf[ch.Relation]]
		d := deltas[in.id]
		if d == nil {
			d = newDelta(in.schema)
			deltas[in.id] = d
		}
		for _, t := range ch.Deletes {
			if len(t) != in.schema.Len() {
				return stats, fmt.Errorf("ivm: delete arity %d does not match schema %s", len(t), in.schema)
			}
			key := rowKey(t)
			if memberWithDelta(in, d, key) {
				d.addKeyed(key, t, -1)
			}
		}
		for _, t := range ch.Inserts {
			if len(t) != in.schema.Len() {
				return stats, fmt.Errorf("ivm: insert arity %d does not match schema %s", len(t), in.schema)
			}
			key := rowKey(t)
			if !memberWithDelta(in, d, key) {
				d.addKeyed(key, t, 1)
			}
		}
	}
	for _, in := range v.inputs {
		d := deltas[in.id]
		if d.isEmpty() {
			continue
		}
		stats.TuplesIn += int64(len(d.rows))
		if err := applyDelta(in, d); err != nil {
			return stats, err
		}
	}
	if stats.TuplesIn == 0 {
		return stats, nil
	}

	span := g.Span()
	for _, s := range v.steps {
		d1, d2 := deltas[s.arg1.id], (*delta)(nil)
		if s.arg2 != nil {
			d2 = deltas[s.arg2.id]
		}
		if d1.isEmpty() && d2.isEmpty() {
			continue
		}
		var stepSpan *obs.Span
		if span != nil {
			stepSpan = span.Child(obs.KindStmt, "Δ "+s.label)
		}
		dz, err := v.runStep(s, d1, d2, g, &stats, stepSpan)
		if err == nil {
			err = applyDelta(s.out, dz)
		}
		if err != nil {
			if stepSpan != nil {
				stepSpan.Note("failed: %v", err)
				stepSpan.End()
			}
			return stats, fmt.Errorf("ivm: step (%s): %w", s.label, err)
		}
		if stepSpan != nil {
			stepSpan.AddTuples(int64(len(dz.rows)))
			stepSpan.End()
		}
		deltas[s.out.id] = dz
	}
	if d := deltas[v.out.id]; !d.isEmpty() {
		stats.TuplesOut = int64(len(d.rows))
	}
	return stats, nil
}

// memberWithDelta reports the key's membership in the input node once the
// pending delta is folded in.
func memberWithDelta(in *node, d *delta, key string) bool {
	n := int64(0)
	if in.rows[key] != nil {
		n = 1
	}
	if r := d.rows[key]; r != nil {
		n += r.n
	}
	return n > 0
}

// applyDelta folds a step's output delta into its node.
func applyDelta(nd *node, d *delta) error {
	if d.isEmpty() {
		return nil
	}
	for key, r := range d.rows {
		if err := nd.apply(key, r.t, r.n); err != nil {
			return err
		}
	}
	return nil
}

// runStep dispatches one step's delta rule.
func (v *View) runStep(s *step, d1, d2 *delta, g *govern.Governor, stats *BatchStats, span *obs.Span) (*delta, error) {
	switch s.op {
	case program.OpProject:
		scope, err := g.Begin("ivm.Project")
		if err != nil {
			return nil, err
		}
		return projectDelta(s, d1, scope, stats)
	case program.OpJoin:
		scope, err := g.Begin("ivm.Join")
		if err != nil {
			return nil, err
		}
		return joinDelta(s, d1, d2, scope, stats)
	case program.OpSemijoin:
		scope, err := g.Begin("ivm.Semijoin")
		if err != nil {
			return nil, err
		}
		return semijoinDelta(s, d1, d2, scope, stats, span)
	default:
		return nil, fmt.Errorf("unknown operator %v", s.op)
	}
}

// projectDelta is Δπ(X) = π(ΔX): projection is linear, counts sum.
func projectDelta(s *step, d1 *delta, scope *govern.OpScope, stats *BatchStats) (*delta, error) {
	dz := newDelta(s.out.schema)
	if d1.isEmpty() {
		return dz, nil
	}
	for _, dx := range d1.rows {
		row := make(relation.Tuple, len(s.projPos))
		for i, p := range s.projPos {
			row[i] = dx.t[p]
		}
		dz.add(row, dx.n)
		stats.StepRows++
		if err := scope.Add(1); err != nil {
			return nil, err
		}
	}
	return dz, nil
}

// joinDelta is the distributive rule against post-batch operand states:
// ΔZ = ΔX ⋈ Y' + X' ⋈ ΔY − ΔX ⋈ ΔY. Both operands' states already
// include their deltas when the step runs (inputs are updated before
// propagation, earlier steps' outputs as they execute), which is why the
// pair term subtracts: it is counted once in each of the first two terms.
// Counts multiply, as joint derivation counts do.
func joinDelta(s *step, d1, d2 *delta, scope *govern.OpScope, stats *BatchStats) (*delta, error) {
	dz := newDelta(s.out.schema)
	emit := func(lt, rt relation.Tuple, n int64) error {
		row := make(relation.Tuple, 0, len(lt)+len(s.only2))
		row = append(row, lt...)
		for _, p := range s.only2 {
			row = append(row, rt[p])
		}
		dz.add(row, n)
		stats.StepRows++
		return scope.Add(1)
	}
	if !d1.isEmpty() {
		for _, dx := range d1.rows {
			for _, y := range s.idx2.buckets[groupKey(dx.t, s.pos1)] {
				if err := emit(dx.t, y.t, dx.n*y.n); err != nil {
					return nil, err
				}
			}
		}
	}
	if !d2.isEmpty() {
		for _, dy := range d2.rows {
			for _, x := range s.idx1.buckets[groupKey(dy.t, s.pos2)] {
				if err := emit(x.t, dy.t, x.n*dy.n); err != nil {
					return nil, err
				}
			}
		}
	}
	if !d1.isEmpty() && !d2.isEmpty() {
		// The pair correction, hashing the smaller delta.
		if len(d1.rows) <= len(d2.rows) {
			ht := make(map[string][]*drow, len(d1.rows))
			for _, dx := range d1.rows {
				gk := groupKey(dx.t, s.pos1)
				ht[gk] = append(ht[gk], dx)
			}
			for _, dy := range d2.rows {
				for _, dx := range ht[groupKey(dy.t, s.pos2)] {
					if err := emit(dx.t, dy.t, -dx.n*dy.n); err != nil {
						return nil, err
					}
				}
			}
		} else {
			ht := make(map[string][]*drow, len(d2.rows))
			for _, dy := range d2.rows {
				gk := groupKey(dy.t, s.pos2)
				ht[gk] = append(ht[gk], dy)
			}
			for _, dx := range d1.rows {
				for _, dy := range ht[groupKey(dx.t, s.pos1)] {
					if err := emit(dx.t, dy.t, -dx.n*dy.n); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return dz, nil
}

// semijoinDelta differentiates Z = X ⋉ Y with Z(t) = X(t)·s(k(t)), where s
// is the 0/1 support indicator of Y projected onto the common attributes.
// With X', Y' the post-batch states,
//
//	ΔZ(t) = X'(t)·(s'(k) − s(k)) + ΔX(t)·s(k)
//
// so only two groups of tuples can change: the ΔX tuples (scaled by the
// pre-batch support, recovered from the maintained bucket totals minus the
// reducer delta's key totals), and the X' tuples of keys whose support
// flipped. The flipped-key set derives from ΔY alone; when it is empty the
// reducer delta provably cannot unreduce (or newly reduce) any left tuple —
// the Safe-Subjoins condition — and the X' scan is skipped entirely.
func semijoinDelta(s *step, d1, d2 *delta, scope *govern.OpScope, stats *BatchStats, span *obs.Span) (*delta, error) {
	dz := newDelta(s.out.schema)
	var dyTot map[string]int64
	if !d2.isEmpty() {
		dyTot = make(map[string]int64, len(d2.rows))
		for _, dy := range d2.rows {
			dyTot[groupKey(dy.t, s.pos2)] += dy.n
		}
	}
	// Keys whose support flipped, with the flip direction s'(k) − s(k).
	var flipped map[string]int64
	for gk, dn := range dyTot {
		tot := s.idx2.totals[gk] // Y' total; 0 when the bucket vanished
		sNew, sOld := tot > 0, tot-dn > 0
		if sNew != sOld {
			if flipped == nil {
				flipped = make(map[string]int64)
			}
			if sNew {
				flipped[gk] = 1
			} else {
				flipped[gk] = -1
			}
		}
	}
	if len(dyTot) > 0 && len(flipped) == 0 {
		stats.ReducerSkips++
		if span != nil {
			span.Note("safe subjoin: reducer delta flips no key; left operand not re-reduced")
		}
	}
	if !d1.isEmpty() {
		for key, dx := range d1.rows {
			gk := groupKey(dx.t, s.pos1)
			if s.idx2.totals[gk]-dyTot[gk] > 0 { // pre-batch support
				dz.addKeyed(key, dx.t, dx.n)
				stats.StepRows++
				if err := scope.Add(1); err != nil {
					return nil, err
				}
			}
		}
	}
	for gk, sign := range flipped {
		for key, x := range s.idx1.buckets[gk] {
			dz.addKeyed(key, x.t, sign*x.n)
			stats.StepRows++
			if err := scope.Add(1); err != nil {
				return nil, err
			}
		}
	}
	return dz, nil
}

// Rebuild discards every node's state and reloads the view from db — the
// full current catalog, in the registration order the view was compiled
// for. It is the recovery path for budget aborts and inconsistencies, and
// the initial build at registration (applying the whole catalog as one
// all-inserts batch through the same delta rules that maintain it).
func (v *View) Rebuild(db *relation.Database) error {
	if db == nil {
		return fmt.Errorf("ivm: rebuild database is nil")
	}
	if db.Len() != len(v.inputOf) {
		return fmt.Errorf("ivm: rebuild database has %d relations, view has %d", db.Len(), len(v.inputOf))
	}
	for _, nd := range v.nodes {
		nd.reset()
	}
	changes := make([]Change, db.Len())
	for i := 0; i < db.Len(); i++ {
		changes[i] = Change{Relation: i, Inserts: db.Relation(i).Rows()}
	}
	_, err := v.Apply(changes, nil)
	if err != nil {
		return fmt.Errorf("ivm: rebuild: %w", err)
	}
	return nil
}
