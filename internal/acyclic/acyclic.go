// Package acyclic implements the classical machinery for acyclic database
// schemes that the paper builds on (§1): the Bernstein–Goodman full reducer
// (a semijoin program that makes the database globally consistent), monotone
// join expressions (no intermediate larger than the final join), and
// Yannakakis' polynomial algorithm for project-join queries.
//
// Example 3 of the paper uses this machinery negatively: its cyclic database
// is pairwise consistent, so a full reducer removes nothing, while the join
// has a single tuple.
package acyclic

import (
	"fmt"

	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/program"
	"repro/internal/relation"
)

// FullReducer builds the Bernstein–Goodman semijoin program for an acyclic
// scheme: an upward sweep of semijoins along a GYO join tree (each parent
// reduced by its child, children first), then a downward sweep (each child
// reduced by its parent). Applying it to any database over the scheme makes
// the database globally consistent. The returned program's statements all
// have the §2.2 in-place form "R(R) := R(R) ⋉ R(S)"; its output is the root
// relation.
//
// It returns an error when the scheme is cyclic.
func FullReducer(h *hypergraph.Hypergraph) (*program.Program, *hypergraph.JoinTree, error) {
	jt, ok := h.GYO()
	if !ok {
		return nil, nil, fmt.Errorf("acyclic: scheme %s is cyclic", h)
	}
	names := jointree.SchemeNames(h)
	p := &program.Program{Inputs: names, Output: names[jt.Root]}
	// Upward: ears were removed leaves-first, so reducing each removed
	// node's parent in removal order sees fully-reduced children.
	for _, e := range jt.RemovalOrder {
		f := jt.Parent[e]
		p.Stmts = append(p.Stmts, program.Stmt{
			Op: program.OpSemijoin, Head: names[f], Arg1: names[f], Arg2: names[e],
		})
	}
	// Downward: in reverse removal order, each removed node is reduced by
	// its (already consistent) parent.
	for i := len(jt.RemovalOrder) - 1; i >= 0; i-- {
		e := jt.RemovalOrder[i]
		f := jt.Parent[e]
		p.Stmts = append(p.Stmts, program.Stmt{
			Op: program.OpSemijoin, Head: names[e], Arg1: names[e], Arg2: names[f],
		})
	}
	return p, jt, nil
}

// Reduce applies the full reducer to db and returns the reduced database
// (same scheme, possibly smaller relations) plus the semijoin program's
// cost. The input database is not modified.
func Reduce(db *relation.Database) (*relation.Database, int, error) {
	return ReduceGoverned(db, nil)
}

// ReduceGoverned is Reduce under a governor: every semijoin head charges
// its tuples (site "acyclic.Reduce" fires per statement for fault
// injection) and cancellation aborts between semijoins with the governor's
// typed error.
func ReduceGoverned(db *relation.Database, g *govern.Governor) (*relation.Database, int, error) {
	h := hypergraph.OfScheme(db)
	p, _, err := FullReducer(h)
	if err != nil {
		return nil, 0, err
	}
	// Run the program manually so we can capture every reduced input.
	env := make([]*relation.Relation, db.Len())
	nameIdx := make(map[string]int, db.Len())
	for i, n := range p.Inputs {
		env[i] = db.Relation(i)
		nameIdx[n] = i
	}
	cost := db.TotalTuples()
	for _, s := range p.Stmts {
		if _, err := g.Begin("acyclic.Reduce"); err != nil {
			return nil, 0, err
		}
		head := nameIdx[s.Head]
		reduced, err := relation.SemijoinGoverned(g, env[nameIdx[s.Arg1]], env[nameIdx[s.Arg2]])
		if err != nil {
			return nil, 0, err
		}
		env[head] = reduced
		cost += reduced.Len()
	}
	out, err := relation.NewDatabase(env...)
	if err != nil {
		return nil, 0, err
	}
	return out, cost, nil
}

// MonotoneTree returns a monotone join expression for an acyclic scheme: a
// linear tree that joins the relations in reverse GYO-removal order
// (root first, then each ear under its already-included parent). On a
// globally consistent database, every intermediate result of this tree has
// no more tuples than the final join.
func MonotoneTree(jt *hypergraph.JoinTree) *jointree.Tree {
	t := jointree.NewLeaf(jt.Root)
	for i := len(jt.RemovalOrder) - 1; i >= 0; i-- {
		t = jointree.NewJoin(t, jointree.NewLeaf(jt.RemovalOrder[i]))
	}
	return t
}

// Join computes ⋈D for an acyclic scheme the classical way: full-reduce,
// then evaluate the monotone join expression. It returns the result and the
// total cost (semijoin program cost plus monotone join cost, counting the
// reduced relations once as the join's inputs).
func Join(db *relation.Database) (*relation.Relation, int, error) {
	return JoinGoverned(db, nil)
}

// JoinGoverned is Join under a governor: both phases (the semijoin
// reduction and the monotone join) charge their outputs and honor
// cancellation, aborting with the governor's typed error and no partial
// result.
func JoinGoverned(db *relation.Database, g *govern.Governor) (*relation.Relation, int, error) {
	reduced, reduceCost, err := ReduceGoverned(db, g)
	if err != nil {
		return nil, 0, err
	}
	h := hypergraph.OfScheme(db)
	jt, ok := h.GYO()
	if !ok {
		return nil, 0, fmt.Errorf("acyclic: scheme %s is cyclic", h)
	}
	t := MonotoneTree(jt)
	out, joinCost, err := t.EvalGoverned(reduced, g)
	if err != nil {
		return nil, 0, err
	}
	// The reduced relations were already counted by the reducer; subtract
	// their double-count as the tree's leaves.
	return out, reduceCost + joinCost - reduced.TotalTuples(), nil
}

// Yannakakis computes π_out(⋈D) for an acyclic scheme in time polynomial in
// the input and output sizes: full-reduce, then sweep the join tree
// bottom-up, joining each child into its parent and projecting onto the
// parent's attributes plus any output attributes collected in the child's
// subtree. The root is finally projected onto out.
//
// out must be a subset of the scheme's attributes.
func Yannakakis(db *relation.Database, out relation.AttrSet) (*relation.Relation, int, error) {
	return YannakakisGoverned(db, out, nil)
}

// YannakakisGoverned is Yannakakis under a governor: the reduction sweep,
// the bottom-up joins, and the projections all charge their outputs and
// honor cancellation, aborting with the governor's typed error.
func YannakakisGoverned(db *relation.Database, out relation.AttrSet, g *govern.Governor) (*relation.Relation, int, error) {
	h := hypergraph.OfScheme(db)
	if !h.Attrs().ContainsAll(out) {
		return nil, 0, fmt.Errorf("acyclic: output attributes %s not all in scheme %s", out, h)
	}
	reduced, cost, err := ReduceGoverned(db, g)
	if err != nil {
		return nil, 0, err
	}
	jt, ok := h.GYO()
	if !ok {
		return nil, 0, fmt.Errorf("acyclic: scheme %s is cyclic", h)
	}
	rels := make([]*relation.Relation, db.Len())
	for i := range rels {
		rels[i] = reduced.Relation(i)
	}
	// Each removed ear is joined into its parent in removal order (children
	// always precede parents), keeping only the parent's own attributes and
	// the output attributes gathered so far.
	for _, e := range jt.RemovalOrder {
		f := jt.Parent[e]
		joined, err := relation.JoinGoverned(g, rels[f], rels[e])
		if err != nil {
			return nil, 0, err
		}
		cost += joined.Len()
		keep := h.Edge(f).Union(out.Intersect(joined.Schema().AttrSet()))
		keep = keep.Intersect(joined.Schema().AttrSet())
		projected, err := relation.ProjectGoverned(g, joined, keep)
		if err != nil {
			return nil, 0, err
		}
		cost += projected.Len()
		rels[f] = projected
	}
	final, err := relation.ProjectGoverned(g, rels[jt.Root], out)
	if err != nil {
		return nil, 0, err
	}
	cost += final.Len()
	return final, cost, nil
}
