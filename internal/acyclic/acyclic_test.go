package acyclic

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
	"repro/internal/workload"
)

func TestFullReducerOnDanglingChain(t *testing.T) {
	db, err := workload.DanglingChainDatabase(4, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	reduced, cost, err := Reduce(db)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("reduction cost not accounted")
	}
	// After full reduction the database is globally consistent.
	if !reduced.GloballyConsistent() {
		t.Error("full reducer did not achieve global consistency")
	}
	// The dangling tuples are gone; the join is unchanged.
	if !reduced.Join().Equal(db.Join()) {
		t.Error("full reducer changed the join")
	}
	for i := 0; i < db.Len(); i++ {
		if reduced.Relation(i).Len() >= db.Relation(i).Len() {
			t.Errorf("relation %d not reduced (%d vs %d)", i,
				reduced.Relation(i).Len(), db.Relation(i).Len())
		}
	}
	// The original database is untouched.
	if db.Relation(0).Len() != 11+6 {
		t.Error("Reduce mutated its input")
	}
}

func TestFullReducerUselessOnPairwiseConsistentCycleProjection(t *testing.T) {
	// The paper's Example 3 remark: on a pairwise-consistent database a
	// full reducer removes nothing. The cycle scheme itself is cyclic (no
	// reducer exists), so check the remark on an acyclic sub-scheme: drop
	// one relation from the cycle, leaving a pairwise-consistent path.
	spec := workload.UniformCycle(4, 3, 3)
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := db.Restrict([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.PairwiseConsistent() {
		t.Fatal("path restriction should be pairwise consistent")
	}
	reduced, _, err := Reduce(sub)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sub.Len(); i++ {
		if reduced.Relation(i).Len() != sub.Relation(i).Len() {
			t.Errorf("full reducer removed tuples from a pairwise-consistent acyclic database (relation %d)", i)
		}
	}
}

func TestFullReducerRejectsCyclic(t *testing.T) {
	spec := workload.UniformCycle(4, 2, 2)
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Reduce(db); err == nil {
		t.Error("Reduce accepted a cyclic scheme")
	}
	h := hypergraph.OfScheme(db)
	if _, _, err := FullReducer(h); err == nil {
		t.Error("FullReducer accepted a cyclic scheme")
	}
}

func TestFullReducerProgramShape(t *testing.T) {
	h, err := workload.ChainScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	p, jt, err := FullReducer(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("reducer program invalid: %v", err)
	}
	// 2(n−1) semijoins for a chain of n relations.
	if p.Len() != 2*(h.Len()-1) {
		t.Errorf("reducer has %d statements, want %d", p.Len(), 2*(h.Len()-1))
	}
	if err := jt.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneTreeNoOvershoot(t *testing.T) {
	// On a fully reduced (globally consistent) database, the monotone join
	// expression's intermediates never exceed the final join size.
	db, err := workload.DanglingChainDatabase(4, 15, 8)
	if err != nil {
		t.Fatal(err)
	}
	reduced, _, err := Reduce(db)
	if err != nil {
		t.Fatal(err)
	}
	h := hypergraph.OfScheme(reduced)
	jt, ok := h.GYO()
	if !ok {
		t.Fatal("chain reported cyclic")
	}
	tree := MonotoneTree(jt)
	if err := tree.Validate(h); err != nil {
		t.Fatal(err)
	}
	final := reduced.Join()
	checkMonotone(t, tree, reduced, final.Len())
}

// checkMonotone asserts every internal node result of tree on db has at
// most bound tuples.
func checkMonotone(t *testing.T, tree *jointree.Tree, db *relation.Database, bound int) {
	t.Helper()
	var walk func(n *jointree.Tree) *relation.Relation
	walk = func(n *jointree.Tree) *relation.Relation {
		if n.IsLeaf() {
			return db.Relation(n.Leaf)
		}
		out := relation.Join(walk(n.Left), walk(n.Right))
		if out.Len() > bound {
			t.Errorf("monotone intermediate has %d tuples, final join has %d", out.Len(), bound)
		}
		return out
	}
	walk(tree)
}

func TestAcyclicJoin(t *testing.T) {
	db, err := workload.DanglingChainDatabase(5, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, cost, err := Join(db)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Join()
	if !got.Equal(want) {
		t.Error("acyclic Join wrong")
	}
	if cost <= 0 {
		t.Error("cost not accounted")
	}
	// The classical pipeline's cost is polynomial: on the reduced database
	// no intermediate exceeds the output, so the join phase costs at most
	// inputs + (n−1)·|output|.
	reduced, reduceCost, err := Reduce(db)
	if err != nil {
		t.Fatal(err)
	}
	maxJoinPhase := reduced.TotalTuples() + (db.Len()-1)*want.Len()
	if cost > reduceCost+maxJoinPhase {
		t.Errorf("cost %d exceeds the monotone bound %d", cost, reduceCost+maxJoinPhase)
	}
}

func TestYannakakis(t *testing.T) {
	db, err := workload.DanglingChainDatabase(4, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := relation.NewAttrSet("x0", "x4")
	got, cost, err := Yannakakis(db, out)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustProject(db.Join(), out)
	if !got.Equal(want) {
		t.Errorf("Yannakakis = %s, want %s", got, want)
	}
	if cost <= 0 {
		t.Error("cost not accounted")
	}
}

func TestYannakakisFullProjection(t *testing.T) {
	db, err := workload.ChainDatabase(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	all := db.Attrs()
	got, _, err := Yannakakis(db, all)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(db.Join()) {
		t.Error("Yannakakis with full projection != ⋈D")
	}
}

func TestYannakakisRejectsBadAttrs(t *testing.T) {
	db, err := workload.ChainDatabase(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Yannakakis(db, relation.NewAttrSet("nope")); err == nil {
		t.Error("unknown output attribute accepted")
	}
	if _, _, err := Yannakakis(db, nil); err != nil {
		t.Errorf("empty projection should be allowed: %v", err)
	}
}

func TestYannakakisOnStar(t *testing.T) {
	h, err := workload.StarScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	db, err := workload.RandomDatabase(rng, h, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := relation.NewAttrSet("x1", "x3")
	got, _, err := Yannakakis(db, out)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustProject(db.Join(), out)
	if !got.Equal(want) {
		t.Error("Yannakakis wrong on star scheme")
	}
}

func TestReduceRandomizedAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tested := 0
	for trial := 0; trial < 200 && tested < 30; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !h.Acyclic() {
			continue
		}
		tested++
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(15), 3)
		if err != nil {
			t.Fatal(err)
		}
		reduced, _, err := Reduce(db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reduced.Join().Equal(db.Join()) {
			t.Fatalf("trial %d: reduction changed the join on %s", trial, h)
		}
		if !reduced.GloballyConsistentWith(reduced.Join()) {
			t.Fatalf("trial %d: reduced database not globally consistent on %s", trial, h)
		}
		// Yannakakis agrees with project-of-join for a random projection.
		attrs := h.Attrs()
		var out relation.AttrSet
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				out = out.Union(relation.NewAttrSet(a))
			}
		}
		got, _, err := Yannakakis(db, out)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := relation.MustProject(db.Join(), out)
		if !got.Equal(want) {
			t.Fatalf("trial %d: Yannakakis wrong on %s over %s", trial, h, out)
		}
	}
	if tested < 10 {
		t.Fatalf("only %d acyclic trials", tested)
	}
}

func TestFullReducerSingleRelation(t *testing.T) {
	h, err := workload.ChainScheme(1)
	if err != nil {
		t.Fatal(err)
	}
	p, jt, err := FullReducer(h)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Errorf("single-relation reducer has %d statements", p.Len())
	}
	if jt.Root != 0 || len(jt.RemovalOrder) != 0 {
		t.Errorf("join tree = %+v", jt)
	}
	db, err := workload.ChainDatabase(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	reduced, _, err := Reduce(db)
	if err != nil {
		t.Fatal(err)
	}
	if !reduced.Relation(0).Equal(db.Relation(0)) {
		t.Error("single relation changed under reduction")
	}
}
