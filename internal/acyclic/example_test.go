package acyclic_test

import (
	"fmt"
	"log"

	"repro/internal/acyclic"
	"repro/internal/workload"
)

// ExampleFullReducer prints the Bernstein–Goodman semijoin program for a
// chain of three relations: an upward sweep then a downward sweep.
func ExampleFullReducer() {
	h, err := workload.ChainScheme(3)
	if err != nil {
		log.Fatal(err)
	}
	p, _, err := acyclic.FullReducer(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p)
	// Output:
	// R({x1,x2}) := R({x1,x2}) ⋉ R({x0,x1})
	// R({x2,x3}) := R({x2,x3}) ⋉ R({x1,x2})
	// R({x1,x2}) := R({x1,x2}) ⋉ R({x2,x3})
	// R({x0,x1}) := R({x0,x1}) ⋉ R({x1,x2})
}

// ExampleReduce shows a full reduction removing dangling tuples.
func ExampleReduce() {
	db, err := workload.DanglingChainDatabase(3, 8, 4)
	if err != nil {
		log.Fatal(err)
	}
	reduced, _, err := acyclic.Reduce(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before:", db.TotalTuples(), "tuples")
	fmt.Println("after: ", reduced.TotalTuples(), "tuples")
	fmt.Println("globally consistent:", reduced.GloballyConsistent())
	// Output:
	// before: 33 tuples
	// after:  15 tuples
	// globally consistent: true
}
