package wcoj

import (
	"sort"

	"repro/internal/relation"
)

// leapfrog is the k-way intersection at one variable: all iterators are
// open at the level keyed by that variable, and the leapfrog positions them
// on successive keys present in *every* iterator. The classic invariant:
// the iterators, read circularly from p, are at non-decreasing keys, and
// iters[p] holds the smallest; search repeatedly seeks the smallest up to
// the largest until all keys agree.
type leapfrog struct {
	iters []*trieIter
	p     int
	done  bool
}

// newLeapfrog positions the intersection at its first common key, if any.
// It reorders the given slice in place; callers pass a fresh slice.
func newLeapfrog(iters []*trieIter) *leapfrog {
	lf := &leapfrog{iters: iters}
	for _, it := range iters {
		if it.atEnd() {
			lf.done = true
			return lf
		}
	}
	sort.SliceStable(lf.iters, func(i, j int) bool {
		return lf.iters[i].key().Compare(lf.iters[j].key()) < 0
	})
	lf.search()
	return lf
}

// search restores the invariant: seek the smallest iterator to the largest
// key until every iterator agrees (a common key, not past it) or one runs
// out.
func (lf *leapfrog) search() {
	k := len(lf.iters)
	max := lf.iters[(lf.p+k-1)%k].key()
	for {
		it := lf.iters[lf.p]
		if it.key().Compare(max) == 0 {
			return // all k iterators are at max: a common key
		}
		it.seek(max)
		if it.atEnd() {
			lf.done = true
			return
		}
		max = it.key()
		lf.p = (lf.p + 1) % k
	}
}

// key returns the current common key; the leapfrog must not be done.
func (lf *leapfrog) key() relation.Value {
	return lf.iters[lf.p].key()
}

// next advances past the current common key to the following one, if any.
func (lf *leapfrog) next() {
	it := lf.iters[lf.p]
	it.next()
	if it.atEnd() {
		lf.done = true
		return
	}
	lf.p = (lf.p + 1) % len(lf.iters)
	lf.search()
}

// seek advances the intersection to the first common key ≥ v.
func (lf *leapfrog) seek(v relation.Value) {
	it := lf.iters[lf.p]
	it.seek(v)
	if it.atEnd() {
		lf.done = true
		return
	}
	lf.p = (lf.p + 1) % len(lf.iters)
	lf.search()
}
