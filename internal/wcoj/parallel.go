package wcoj

import (
	"sync"
	"sync/atomic"

	"repro/internal/govern"
	"repro/internal/relation"
)

// enumerateParallel splits the outermost variable's key range across
// workers: the depth-0 intersection keys are computed once (cheap — one
// leapfrog pass over the top trie levels), partitioned into contiguous
// chunks, and each worker enumerates its chunk with its own iterators over
// the shared tries. All workers charge the one shared scope (OpScope.Add is
// atomic), so budgets and the charged totals are identical to the
// sequential run; the chunks bind disjoint outermost keys, so the merged
// outputs are disjoint too.
func enumerateParallel(order []string, tries []*trieIndex, scope *govern.OpScope, workers int, bindings []atomic.Int64) (*relation.Relation, error) {
	keys, err := topKeys(order, tries, scope)
	if err != nil {
		return nil, err
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	out := relation.New(relation.MustSchema(order...))
	if len(keys) == 0 {
		return out, nil
	}
	if workers < 2 {
		res, err := enumerate(order, tries, scope, bindings)
		if err != nil {
			return nil, err
		}
		return res, nil
	}

	parts := make([][]relation.Tuple, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous ranges keep every worker's seeks forward-only.
		chunk := keys[w*len(keys)/workers : (w+1)*len(keys)/workers]
		wg.Add(1)
		go func(w int, chunk []relation.Value) {
			defer wg.Done()
			parts[w], errs[w] = runKeys(order, tries, chunk, scope, bindings)
		}(w, chunk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, part := range parts {
		for _, t := range part {
			out.MustInsert(t)
		}
	}
	return out, nil
}

// topKeys returns the sorted intersection of the outermost variable's
// values across the relations containing it.
func topKeys(order []string, tries []*trieIndex, scope *govern.OpScope) ([]relation.Value, error) {
	ex := newExecutor(order, tries)
	rels := ex.byVar[0]
	level := make([]*trieIter, len(rels))
	for i, r := range rels {
		ex.iters[r].open()
		level[i] = ex.iters[r]
	}
	var keys []relation.Value
	for lf := newLeapfrog(level); !lf.done; lf.next() {
		if err := scope.Add(0); err != nil {
			return nil, err
		}
		keys = append(keys, lf.key())
	}
	return keys, nil
}

// runKeys enumerates the full bindings whose outermost value lies in the
// given ascending key chunk, collecting output tuples locally. bindings,
// when non-nil, receives this worker's share of the per-variable counts.
func runKeys(order []string, tries []*trieIndex, chunk []relation.Value, scope *govern.OpScope, bindings []atomic.Int64) ([]relation.Tuple, error) {
	ex := newExecutor(order, tries)
	ex.bindings = bindings
	rels := ex.byVar[0]
	for _, r := range rels {
		ex.iters[r].open()
	}
	var out []relation.Tuple
	emit := func(binding []relation.Value) error {
		if err := scope.Add(1); err != nil {
			return err
		}
		out = append(out, append(relation.Tuple(nil), binding...))
		return nil
	}
	binding := make([]relation.Value, len(order))
	for _, key := range chunk {
		if err := scope.Add(0); err != nil {
			return nil, err
		}
		// Every chunk key is in the depth-0 intersection, so each seek lands
		// exactly on it.
		for _, r := range rels {
			ex.iters[r].seek(key)
		}
		binding[0] = key
		if bindings != nil {
			bindings[0].Add(1)
		}
		if err := ex.run(1, binding, scope, emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}
