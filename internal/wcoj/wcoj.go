// Package wcoj implements a worst-case-optimal join backend: Leapfrog
// Triejoin (Veldhuizen, ICDT 2013 — see PAPERS.md) computing ⋈D
// attribute-by-attribute instead of relation-by-relation.
//
// The paper's Example 3 exhibits cyclic schemes on which *every*
// Cartesian-product-free join expression — and hence every pairwise plan,
// however well ordered — is unboundedly worse than optimal. Worst-case
// optimal joins sidestep the pairwise bottleneck entirely: a global order
// is fixed over the scheme's attributes (variables), each relation is
// trie-indexed along that order, and the join is a nested multiway
// intersection — for each binding of the first variable present in every
// relation containing it, recurse on the second, and so on. No pairwise
// intermediate is ever materialized; the only tuples produced are the
// output itself, and the total work is bounded by the AGM fractional-cover
// bound rather than by the best pairwise plan.
//
// The package provides:
//
//   - VariableOrder: a deterministic global attribute order for a scheme,
//     preferring orders whose prefixes stay connected (order.go);
//   - trie indexes over sorted, order-permuted tuples with the classical
//     open/up/next/seek iterator interface (trie.go), built through the
//     columnar fast path — dictionary-encode once, sort integer codes,
//     decode — with the tuple-at-a-time builder kept as the differential
//     oracle (columns.go);
//   - the leapfrog k-way intersection of trie levels (leapfrog.go);
//   - Join / JoinGoverned: the full multiway join, with governed variants
//     charging trie construction and output tuples against a
//     govern.Governor and polling deadlines mid-iteration (join.go), and a
//     partition-parallel variant that splits the outermost variable's key
//     range across workers (parallel.go).
//
// The engine exposes all of this as StrategyWCOJ and slots it into the
// governed auto-degradation ladder ahead of the program route on cyclic
// schemes.
package wcoj

import (
	"fmt"
	"sync/atomic"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Result is the outcome of a governed join: the output plus the
// accounting an EXPLAIN wants.
type Result struct {
	// Output is ⋈D over the variable order's schema (one column per
	// variable, in order).
	Output *relation.Relation
	// TrieTuples is the number of index entries built — Σ|Rᵢ|, since each
	// trie re-sorts its relation without generating new tuples.
	TrieTuples int64
	// Vars is the global variable order the join ran with.
	Vars []string
	// Workers is the number of goroutines enumeration used (1 = sequential).
	Workers int
}

// Join computes the natural join of db along the given variable order with
// no resource governance; order must cover exactly the scheme's attributes
// (VariableOrder provides one).
func Join(db *relation.Database, order []string) (*relation.Relation, error) {
	res, err := JoinGoverned(db, order, nil, 1)
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}

// JoinGoverned computes the natural join of db along the given variable
// order under gov (nil = no limits), enumerating with up to workers
// goroutines (values below 2 run sequentially). Trie construction charges
// one tuple per index entry under the operator "wcoj.trie" (one scope per
// relation, so MaxIntermediateTuples bounds any single index); enumeration
// charges each output tuple — and polls cancellation/deadline on every
// leapfrog step, even when nothing is emitted — under "wcoj.join".
func JoinGoverned(db *relation.Database, order []string, gov *govern.Governor, workers int) (*Result, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("wcoj: empty database")
	}
	if err := checkOrder(db, order); err != nil {
		return nil, err
	}
	tries := make([]*trieIndex, db.Len())
	var trieTuples int64
	for i := 0; i < db.Len(); i++ {
		var sp *obs.Span
		if parent := gov.Span(); parent != nil {
			sp = parent.Child(obs.KindTrie, "trie "+db.Relation(i).Schema().String())
		}
		scope, err := gov.Begin("wcoj.trie")
		if err != nil {
			sp.End()
			return nil, err
		}
		tr, err := FromColumns(db.Relation(i), order, scope)
		if err != nil {
			sp.Note("failed: %v", err)
			sp.End()
			return nil, err
		}
		sp.AddTuples(int64(len(tr.rows)))
		sp.End()
		tries[i] = tr
		trieTuples += int64(len(tr.rows))
	}
	scope, err := gov.Begin("wcoj.join")
	if err != nil {
		return nil, err
	}
	if workers < 2 {
		workers = 1
	}
	// When traced, enumeration runs under its own span with one binding
	// counter per variable — the per-variable leapfrog work — rendered as
	// KindVar children. The counters are atomic because parallel enumeration
	// charges them from every worker.
	var enumSpan *obs.Span
	var bindings []atomic.Int64
	if parent := gov.Span(); parent != nil {
		enumSpan = parent.Child(obs.KindEnumerate, "leapfrog enumeration")
		bindings = make([]atomic.Int64, len(order))
	}
	before := gov.Produced()
	var out *relation.Relation
	if workers == 1 {
		out, err = enumerate(order, tries, scope, bindings)
	} else {
		out, err = enumerateParallel(order, tries, scope, workers, bindings)
	}
	if enumSpan != nil {
		enumSpan.AddTuples(gov.Produced() - before)
		for v, name := range order {
			vs := enumSpan.Child(obs.KindVar, "var "+name)
			vs.Note("%d bindings examined", bindings[v].Load())
			vs.End()
		}
		if err != nil {
			enumSpan.Note("failed: %v", err)
		}
		enumSpan.End()
	}
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, TrieTuples: trieTuples, Vars: order, Workers: workers}, nil
}

// checkOrder validates that order is a permutation of the scheme's
// attributes.
func checkOrder(db *relation.Database, order []string) error {
	attrs := db.Attrs()
	if len(order) != attrs.Len() {
		return fmt.Errorf("wcoj: order has %d variables, scheme has %d attributes", len(order), attrs.Len())
	}
	seen := make(map[string]bool, len(order))
	for _, v := range order {
		if seen[v] {
			return fmt.Errorf("wcoj: variable %q repeats in the order", v)
		}
		seen[v] = true
		if !attrs.Contains(v) {
			return fmt.Errorf("wcoj: variable %q is not a scheme attribute", v)
		}
	}
	return nil
}
