package wcoj

import (
	"fmt"
	"sort"

	"repro/internal/govern"
	"repro/internal/relation"
)

// FromColumns builds the trie index for rel along order through the
// columnar path: the relation is dictionary-encoded once
// (relation.FromRelation), rows are sorted by comparing uint32 dictionary
// codes instead of Values — valid because every dictionary is sorted, so
// code order is value order — and the sorted rows are decoded into a
// single backing array. Validation, the resulting index, and the governor
// charging (one tuple per index entry against scope) are identical to
// buildTrie, which remains as the differential oracle; only the sort's
// comparison work and allocation count change.
func FromColumns(rel *relation.Relation, order []string, scope *govern.OpScope) (*trieIndex, error) {
	schema := rel.Schema()
	attrs := make([]string, 0, schema.Len())
	for _, v := range order {
		if schema.Has(v) {
			attrs = append(attrs, v)
		}
	}
	if len(attrs) != schema.Len() {
		return nil, fmt.Errorf("wcoj: order %v does not cover schema %s", order, schema)
	}
	pos, err := schema.Positions(attrs)
	if err != nil {
		return nil, err
	}
	b := relation.FromRelation(rel)
	n := b.Len()
	width := len(pos)
	cols := make([][]uint32, width)
	dicts := make([][]relation.Value, width)
	for k, c := range pos {
		cols[k] = b.Codes(c)
		dicts[k] = b.Dict(c)
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		for _, codes := range cols {
			if codes[i] != codes[j] {
				return codes[i] < codes[j]
			}
		}
		return false
	})
	t := &trieIndex{attrs: attrs, rows: make([][]relation.Value, n)}
	backing := make([]relation.Value, n*width)
	for r, i := range idx {
		if err := scope.Add(1); err != nil {
			return nil, err
		}
		row := backing[r*width : (r+1)*width : (r+1)*width]
		for k := range pos {
			row[k] = dicts[k][cols[k][i]]
		}
		t.rows[r] = row
	}
	return t, nil
}
