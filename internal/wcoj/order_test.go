package wcoj

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/workload"
)

func TestVariableOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 1 + rng.Intn(6), Attrs: 6, MaxArity: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		order := VariableOrder(h)
		got := relation.NewAttrSet(order...)
		if len(order) != h.Attrs().Len() || !got.Equal(h.Attrs()) {
			t.Fatalf("trial %d: order %v is not a permutation of %v", trial, order, h.Attrs())
		}
	}
}

// TestVariableOrderInvariantUnderEdgeReorder: the order must depend only on
// the scheme as a multiset of attribute sets — the property that lets a
// cached plan (derived in canonical edge order) serve every presentation of
// the scheme.
func TestVariableOrderInvariantUnderEdgeReorder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(5), Attrs: 6, MaxArity: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := VariableOrder(h)
		edges := append([]relation.AttrSet(nil), h.Edges()...)
		for shuffle := 0; shuffle < 3; shuffle++ {
			rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
			g, err := hypergraph.New(edges)
			if err != nil {
				t.Fatal(err)
			}
			if got := VariableOrder(g); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: order changed under edge reorder: %v vs %v", trial, got, want)
			}
		}
	}
}

// TestVariableOrderPrefixesConnected: on a connected scheme every proper
// prefix of the order must touch the next variable through some edge — the
// connected-prefix property that keeps trie levels constraining each other.
func TestVariableOrderPrefixesConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(5), Attrs: 6, MaxArity: 3, Connected: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		order := VariableOrder(h)
		for i := 1; i < len(order); i++ {
			if !adjacent(h, order[i], relation.NewAttrSet(order[:i]...)) {
				t.Fatalf("trial %d: order[%d]=%q not adjacent to prefix %v on %s",
					trial, i, order[i], order[:i], h)
			}
		}
	}
}

func TestVariableOrderTriangle(t *testing.T) {
	h, err := hypergraph.New([]relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
		relation.NewAttrSet("A", "C"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// All degrees equal: lexicographic tie-breaks all the way down.
	if got := VariableOrder(h); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("triangle order = %v, want [A B C]", got)
	}
}

func TestVariableOrderPrefersHighDegree(t *testing.T) {
	// hub is in three edges, everything else in one: hub must come first
	// despite sorting lexicographically last.
	h, err := workload.StarScheme(3)
	if err != nil {
		t.Fatal(err)
	}
	order := VariableOrder(h)
	if order[0] != "hub" {
		t.Errorf("star order starts with %q, want hub (degree 3): %v", order[0], order)
	}
}
