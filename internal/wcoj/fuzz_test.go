package wcoj

import (
	"sort"
	"testing"

	"repro/internal/relation"
)

// FuzzTrieIter drives the trie iterator with an arbitrary row set and an
// arbitrary forward-only seek/next script, checking every step against a
// naive model: the sorted distinct values of the open level. The first byte
// sizes the relation, the next 2n bytes are (x, y) rows, and the remainder
// is the script (even byte = next, odd byte = seek to byte>>1, both mod the
// value domain). After the script, whatever position the iterator holds is
// opened one level down and the child keys are compared against the model's
// sub-list for that prefix.
func FuzzTrieIter(f *testing.F) {
	f.Add([]byte{4, 1, 2, 1, 3, 5, 0, 5, 9, 7, 12, 3})
	f.Add([]byte{8, 0, 0, 0, 1, 1, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 2, 9, 4})
	f.Add([]byte{1, 15, 15, 31, 31, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int(data[0]%24) + 1
		if len(data) < 1+2*n {
			return
		}
		rel := relation.New(relation.MustSchema("x", "y"))
		for i := 0; i < n; i++ {
			rel.MustInsert(relation.Ints(int64(data[1+2*i]%16), int64(data[2+2*i]%16)))
		}
		tr, err := buildTrie(rel, []string{"x", "y"}, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Naive model: distinct x values ascending, and per x the distinct
		// y values ascending.
		children := map[int64][]int64{}
		for _, row := range rel.Rows() {
			x, y := row[0].AsInt(), row[1].AsInt()
			children[x] = append(children[x], y)
		}
		var xs []int64
		for x, ys := range children {
			xs = append(xs, x)
			sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
			children[x] = dedupeSorted(ys)
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })

		it := newTrieIter(tr)
		it.open()
		idx := 0
		check := func() {
			if got, want := it.atEnd(), idx >= len(xs); got != want {
				t.Fatalf("atEnd = %v, model says %v (idx %d of %d)", got, want, idx, len(xs))
			}
			if !it.atEnd() {
				if got := it.key().AsInt(); got != xs[idx] {
					t.Fatalf("key = %d, model says %d", got, xs[idx])
				}
			}
		}
		check()
		for _, op := range data[1+2*n:] {
			if it.atEnd() {
				break
			}
			if op%2 == 0 {
				it.next()
				idx++
			} else {
				v := int64((op >> 1) % 16)
				it.seek(relation.Int(v))
				for idx < len(xs) && xs[idx] < v {
					idx++
				}
			}
			check()
		}

		if it.atEnd() {
			return
		}
		// Descend: the child level must enumerate exactly the model's
		// distinct y values under the current x, and up() must restore the
		// parent position.
		x := xs[idx]
		it.open()
		for _, wantY := range children[x] {
			if it.atEnd() {
				t.Fatalf("child level of x=%d ended early, want %d", x, wantY)
			}
			if got := it.key().AsInt(); got != wantY {
				t.Fatalf("child key = %d, want %d under x=%d", got, wantY, x)
			}
			it.next()
		}
		if !it.atEnd() {
			t.Fatalf("child level of x=%d has extra keys past %v", x, children[x])
		}
		it.up()
		if got := it.key().AsInt(); got != x {
			t.Fatalf("up() lost the parent position: key = %d, want %d", got, x)
		}
	})
}

func dedupeSorted(vs []int64) []int64 {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
