package wcoj

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/workload"
)

// randOrderRel draws a random relation over a prefix of the given attrs and
// a random permutation order covering them — the shapes buildTrie and
// FromColumns must agree on.
func randTrieRel(rng *rand.Rand, size int) (*relation.Relation, []string) {
	attrs := []string{"A", "B", "C", "D"}[:1+rng.Intn(4)]
	schema := relation.MustSchema(attrs...)
	r := relation.New(schema)
	for i := 0; i < size; i++ {
		row := make(relation.Tuple, len(attrs))
		for c := range row {
			row[c] = relation.Int(int64(rng.Intn(5)))
		}
		r.MustInsert(row)
	}
	order := append([]string(nil), attrs...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return r, order
}

// TestFromColumnsMatchesBuildTrie is the trie builders' differential: the
// columnar path must produce the identical index — same attrs, same sorted
// rows — and charge the identical governed total as the tuple-at-a-time
// builder it replaced on the hot path.
func TestFromColumnsMatchesBuildTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(2031))
	for trial := 0; trial < 200; trial++ {
		r, order := randTrieRel(rng, rng.Intn(50))

		refG := govern.New(govern.Limits{MaxTuples: 1 << 40})
		refScope, err := refG.Begin("wcoj.trie")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := buildTrie(r, order, refScope)
		if err != nil {
			t.Fatalf("trial %d buildTrie: %v", trial, err)
		}

		colG := govern.New(govern.Limits{MaxTuples: 1 << 40})
		colScope, err := colG.Begin("wcoj.trie")
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromColumns(r, order, colScope)
		if err != nil {
			t.Fatalf("trial %d FromColumns: %v", trial, err)
		}

		if len(got.attrs) != len(ref.attrs) {
			t.Fatalf("trial %d: attrs %v vs %v", trial, got.attrs, ref.attrs)
		}
		for i := range got.attrs {
			if got.attrs[i] != ref.attrs[i] {
				t.Fatalf("trial %d: attrs %v vs %v", trial, got.attrs, ref.attrs)
			}
		}
		if len(got.rows) != len(ref.rows) {
			t.Fatalf("trial %d: %d rows vs %d", trial, len(got.rows), len(ref.rows))
		}
		for i := range got.rows {
			if compareRows(got.rows[i], ref.rows[i]) != 0 {
				t.Fatalf("trial %d: row %d differs: %v vs %v", trial, i, got.rows[i], ref.rows[i])
			}
		}
		if colG.Produced() != refG.Produced() {
			t.Fatalf("trial %d: columnar charged %d, reference %d", trial, colG.Produced(), refG.Produced())
		}
	}
}

// TestFromColumnsAbortsLikeBuildTrie checks both builders reject a budget
// one entry short of the relation with the same typed error.
func TestFromColumnsAbortsLikeBuildTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(2032))
	r, order := randTrieRel(rng, 30)
	n := int64(r.Len())
	for _, build := range []struct {
		name string
		fn   func(*relation.Relation, []string, *govern.OpScope) (*trieIndex, error)
	}{{"buildTrie", buildTrie}, {"FromColumns", FromColumns}} {
		g := govern.New(govern.Limits{MaxTuples: n - 1, CheckEvery: 1})
		scope, err := g.Begin("wcoj.trie")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := build.fn(r, order, scope); !errors.Is(err, govern.ErrTupleBudget) {
			t.Fatalf("%s: want ErrTupleBudget one entry short, got %v", build.name, err)
		}
	}
}

// TestFromColumnsRejectsBadOrder pins the shared validation: an order that
// misses a schema attribute fails identically on both builders.
func TestFromColumnsRejectsBadOrder(t *testing.T) {
	spec := workload.TriangleSpec{Nodes: 5, Edges: 8}
	db, err := spec.TriangleDatabase(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromColumns(db.Relation(0), []string{"A"}, nil); err == nil {
		t.Fatal("FromColumns accepted an order that does not cover the schema")
	}
}
