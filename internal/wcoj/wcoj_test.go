package wcoj

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/workload"
)

// triangleDB builds the classic triangle query R(A,B) ⋈ S(B,C) ⋈ T(A,C)
// with edges of the small graph 0–1, 0–2, 1–2, 1–3: triangles {0,1,2} only.
func triangleDB(t *testing.T) *relation.Database {
	t.Helper()
	edges := [][2]int64{{0, 1}, {0, 2}, {1, 2}, {1, 3}}
	mk := func(a, b string) *relation.Relation {
		r := relation.New(relation.MustSchema(a, b))
		for _, e := range edges {
			r.MustInsert(relation.Ints(e[0], e[1]))
		}
		return r
	}
	return relation.MustDatabase(mk("A", "B"), mk("B", "C"), mk("A", "C"))
}

func TestTriangleKnownResult(t *testing.T) {
	db := triangleDB(t)
	order := VariableOrder(hypergraph.OfScheme(db))
	out, err := Join(db, order)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("triangle count = %d, want 1", out.Len())
	}
	if !out.Equal(db.Join()) {
		t.Error("triangle join disagrees with the reference fold")
	}
}

func TestExample3Agrees(t *testing.T) {
	spec, err := workload.Example3(6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	order := VariableOrder(hypergraph.OfScheme(db))
	out, err := Join(db, order)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(db.Join()) {
		t.Errorf("Example 3 join wrong: %d tuples, want %d", out.Len(), db.Join().Len())
	}
}

func TestAcyclicChainAgrees(t *testing.T) {
	db, err := workload.ChainDatabase(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	order := VariableOrder(hypergraph.OfScheme(db))
	out, err := Join(db, order)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(db.Join()) {
		t.Error("chain join disagrees with the reference fold")
	}
}

func TestEmptyRelationEmptyJoin(t *testing.T) {
	db := triangleDB(t)
	empty := relation.New(relation.MustSchema("A", "C"))
	db = relation.MustDatabase(db.Relation(0), db.Relation(1), empty)
	out, err := Join(db, VariableOrder(hypergraph.OfScheme(db)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("join with an empty relation has %d tuples", out.Len())
	}
}

func TestSingleRelation(t *testing.T) {
	r := relation.New(relation.MustSchema("B", "A"))
	r.MustInsert(relation.Ints(1, 2))
	r.MustInsert(relation.Ints(3, 4))
	db := relation.MustDatabase(r)
	out, err := Join(db, VariableOrder(hypergraph.OfScheme(db)))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(r) {
		t.Error("single-relation join should be the relation itself")
	}
}

func TestOrderValidation(t *testing.T) {
	db := triangleDB(t)
	cases := [][]string{
		{"A", "B"},           // too short
		{"A", "B", "B"},      // repeat
		{"A", "B", "Z"},      // not an attribute
		{"A", "B", "C", "D"}, // too long
	}
	for _, order := range cases {
		if _, err := Join(db, order); err == nil {
			t.Errorf("order %v accepted", order)
		}
	}
	if _, err := Join(nil, nil); err == nil {
		t.Error("nil database accepted")
	}
}

func TestGovernedChargesTrieAndOutput(t *testing.T) {
	db := triangleDB(t)
	gov := govern.New(govern.Limits{MaxTuples: 1 << 40})
	res, err := JoinGoverned(db, VariableOrder(hypergraph.OfScheme(db)), gov, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrieTuples != int64(db.TotalTuples()) {
		t.Errorf("TrieTuples = %d, want Σ inputs = %d", res.TrieTuples, db.TotalTuples())
	}
	want := res.TrieTuples + int64(res.Output.Len())
	if got := gov.Produced(); got != want {
		t.Errorf("Produced = %d, want trie + output = %d", got, want)
	}
}

func TestGovernedMatchesUngoverned(t *testing.T) {
	spec, err := workload.Example3(4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	order := VariableOrder(hypergraph.OfScheme(db))
	plain, err := Join(db, order)
	if err != nil {
		t.Fatal(err)
	}
	res, err := JoinGoverned(db, order, govern.New(govern.Limits{MaxTuples: 1 << 40}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(res.Output) {
		t.Error("governed run changed the result")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h, err := workload.CliqueScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := workload.RandomDatabase(rng, h, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	order := VariableOrder(h)
	seqGov := govern.New(govern.Limits{MaxTuples: 1 << 40})
	seq, err := JoinGoverned(db, order, seqGov, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		parGov := govern.New(govern.Limits{MaxTuples: 1 << 40})
		par, err := JoinGoverned(db, order, parGov, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !par.Output.Equal(seq.Output) {
			t.Errorf("workers=%d: result differs from sequential", workers)
		}
		if parGov.Produced() != seqGov.Produced() {
			t.Errorf("workers=%d: Produced = %d, sequential charged %d",
				workers, parGov.Produced(), seqGov.Produced())
		}
	}
}

func TestTupleBudgetAborts(t *testing.T) {
	db := triangleDB(t)
	// Below Σ inputs: the trie build itself must blow the budget.
	gov := govern.New(govern.Limits{MaxTuples: 3})
	if _, err := JoinGoverned(db, VariableOrder(hypergraph.OfScheme(db)), gov, 1); !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("want ErrTupleBudget, got %v", err)
	}
}

func TestDeadlineAborts(t *testing.T) {
	db := triangleDB(t)
	gov := govern.New(govern.Limits{Deadline: time.Now().Add(-time.Second)})
	if _, err := JoinGoverned(db, VariableOrder(hypergraph.OfScheme(db)), gov, 1); !errors.Is(err, govern.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

func TestDuplicateSchemes(t *testing.T) {
	// Two relations over the same attributes intersect tuple-wise.
	a := relation.New(relation.MustSchema("X", "Y"))
	b := relation.New(relation.MustSchema("Y", "X"))
	for i := int64(0); i < 10; i++ {
		a.MustInsert(relation.Ints(i, i+1))
	}
	for i := int64(5); i < 15; i++ {
		b.MustInsert(relation.Ints(i+1, i)) // (Y, X) = (i+1, i): same pairs shifted
	}
	db := relation.MustDatabase(a, b)
	out, err := Join(db, VariableOrder(hypergraph.OfScheme(db)))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(db.Join()) {
		t.Error("duplicate-scheme intersection wrong")
	}
	if out.Len() != 5 {
		t.Errorf("intersection size = %d, want 5", out.Len())
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 60; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: rng.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(15), 3)
		if err != nil {
			t.Fatal(err)
		}
		order := VariableOrder(h)
		out, err := Join(db, order)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !out.Equal(db.Join()) {
			t.Fatalf("trial %d: wrong result on %s", trial, h)
		}
	}
}
