package wcoj

import (
	"math/rand"
	"testing"

	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Tests for the enumerator's tracing: trie and enumeration spans, the
// per-variable binding counters, and their safety under parallel
// enumeration (run with -race: the binding counters and the enumeration
// span are shared across workers).

func TestTracedEnumerationSpansSequentialAndParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h, err := workload.CliqueScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := workload.RandomDatabase(rng, h, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	order := VariableOrder(h)

	type shape struct {
		tries    int
		enum     int64
		vars     int
		bindings []int64
	}
	inspect := func(root *obs.Span) shape {
		var sh shape
		root.Walk(func(sp *obs.Span, _ int) {
			switch sp.Kind() {
			case obs.KindTrie:
				sh.tries++
			case obs.KindEnumerate:
				sh.enum = sp.Tuples()
			case obs.KindVar:
				sh.vars++
			}
		})
		return sh
	}

	var seqOut *Result
	for _, workers := range []int{1, 2, 8} {
		tr := obs.NewTrace("wcoj")
		gov := govern.New(govern.Limits{MaxTuples: 1 << 40})
		gov.SetSpan(tr.Root)
		res, err := JoinGoverned(db, order, gov, workers)
		tr.Root.End()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := tr.Root.TupleTotal(); got != gov.Produced() {
			t.Fatalf("workers=%d: spans charge %d tuples, governor charged %d\n%s",
				workers, got, gov.Produced(), tr.Format())
		}
		if err := tr.Root.CheckNested(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sh := inspect(tr.Root)
		if sh.tries != db.Len() {
			t.Errorf("workers=%d: %d trie spans, want %d", workers, sh.tries, db.Len())
		}
		if sh.vars != len(order) {
			t.Errorf("workers=%d: %d var spans, want %d", workers, sh.vars, len(order))
		}
		if sh.enum != int64(res.Output.Len()) {
			t.Errorf("workers=%d: enumerate span charged %d, output has %d",
				workers, sh.enum, res.Output.Len())
		}
		if workers == 1 {
			seqOut = res
		} else if !res.Output.Equal(seqOut.Output) {
			t.Errorf("workers=%d: traced result differs from sequential", workers)
		}
	}
}

// TestUntracedRunBuildsNoSpans pins the zero-overhead path: with no span on
// the governor, enumeration allocates no binding counters and no spans.
func TestUntracedRunBuildsNoSpans(t *testing.T) {
	db := triangleDB(t)
	order := VariableOrder(hypergraph.OfScheme(db))
	gov := govern.New(govern.Limits{MaxTuples: 1 << 40})
	res, err := JoinGoverned(db, order, gov, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 1 {
		t.Fatalf("triangle count = %d, want 1", res.Output.Len())
	}
	if gov.Span() != nil {
		t.Fatal("governor grew a span out of nowhere")
	}
}
