package wcoj

import (
	"fmt"
	"sort"

	"repro/internal/govern"
	"repro/internal/relation"
)

// trieIndex is one relation indexed for a variable order: its tuples with
// columns permuted into the global order restricted to the relation's
// attributes, sorted lexicographically. The sorted array *is* the trie —
// level d of the trie is the d-th column, and a node is a run of rows
// sharing a prefix — so building it costs one permuted copy plus a sort,
// and iterators are just index ranges over shared rows.
type trieIndex struct {
	// attrs is the relation's schema in variable-order position: the level-d
	// key of the trie is attribute attrs[d].
	attrs []string
	// rows holds the permuted tuples, sorted lexicographically.
	rows [][]relation.Value
}

// buildTrie indexes rel along order, charging one tuple per index entry to
// scope (nil scope charges nothing).
func buildTrie(rel *relation.Relation, order []string, scope *govern.OpScope) (*trieIndex, error) {
	schema := rel.Schema()
	attrs := make([]string, 0, schema.Len())
	for _, v := range order {
		if schema.Has(v) {
			attrs = append(attrs, v)
		}
	}
	if len(attrs) != schema.Len() {
		return nil, fmt.Errorf("wcoj: order %v does not cover schema %s", order, schema)
	}
	pos, err := schema.Positions(attrs)
	if err != nil {
		return nil, err
	}
	t := &trieIndex{attrs: attrs, rows: make([][]relation.Value, 0, rel.Len())}
	for _, row := range rel.Rows() {
		if err := scope.Add(1); err != nil {
			return nil, err
		}
		p := make([]relation.Value, len(pos))
		for i, c := range pos {
			p[i] = row[c]
		}
		t.rows = append(t.rows, p)
	}
	sort.Slice(t.rows, func(i, j int) bool { return compareRows(t.rows[i], t.rows[j]) < 0 })
	return t, nil
}

// compareRows orders equal-length value slices lexicographically.
func compareRows(a, b []relation.Value) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// has reports whether attribute v is a level of this trie.
func (t *trieIndex) has(v string) bool {
	for _, a := range t.attrs {
		if a == v {
			return true
		}
	}
	return false
}

// trieIter is the classical Leapfrog-Triejoin trie iterator over a
// trieIndex: open descends one level, up ascends, and within a level next
// and seek step through the *distinct* values of that level's column under
// the current prefix. State per level is a row range [lo, hi) (the rows
// matching the prefix above) and pos, the first row of the current value
// group; the current key is rows[pos][depth].
type trieIter struct {
	t     *trieIndex
	depth int // -1 = root (no level open)
	lo    []int
	hi    []int
	pos   []int
}

// newTrieIter returns an iterator positioned at the root.
func newTrieIter(t *trieIndex) *trieIter {
	n := len(t.attrs)
	return &trieIter{
		t:     t,
		depth: -1,
		lo:    make([]int, n),
		hi:    make([]int, n),
		pos:   make([]int, n),
	}
}

// atEnd reports whether the iterator has exhausted the current level.
func (it *trieIter) atEnd() bool {
	return it.pos[it.depth] >= it.hi[it.depth]
}

// key returns the current value at the open level; the iterator must not be
// atEnd.
func (it *trieIter) key() relation.Value {
	return it.t.rows[it.pos[it.depth]][it.depth]
}

// open descends to the first key of the next level: from the root, to the
// first value of column 0; from an open level (not atEnd), into the rows of
// the current value group.
func (it *trieIter) open() {
	if it.depth < 0 {
		it.depth = 0
		it.lo[0], it.hi[0], it.pos[0] = 0, len(it.t.rows), 0
		return
	}
	d := it.depth
	lo, hi := it.pos[d], it.groupEnd(d)
	it.depth = d + 1
	it.lo[it.depth], it.hi[it.depth], it.pos[it.depth] = lo, hi, lo
}

// up ascends one level, restoring the parent's position.
func (it *trieIter) up() { it.depth-- }

// next advances to the level's next distinct key.
func (it *trieIter) next() {
	it.pos[it.depth] = it.groupEnd(it.depth)
}

// seek advances to the first key ≥ v, or atEnd when none remains. Seeks
// only move forward (the LFTJ contract: the sought key is ≥ the current
// key). It gallops — doubling steps from the current position, then binary
// search within the bracket — so a seek costs O(log distance) rather than
// O(log |level|), which is what makes leapfrogging skew-resistant.
func (it *trieIter) seek(v relation.Value) {
	d := it.depth
	rows, hi := it.t.rows, it.hi[d]
	lo := it.pos[d]
	if lo >= hi || rows[lo][d].Compare(v) >= 0 {
		return
	}
	// Gallop: find the smallest bracket [lo+step/2, lo+step] containing the
	// target, capped at hi.
	step := 1
	for lo+step < hi && rows[lo+step][d].Compare(v) < 0 {
		lo += step
		step <<= 1
	}
	end := lo + step
	if end > hi {
		end = hi
	}
	it.pos[d] = lo + sort.Search(end-lo, func(i int) bool {
		return rows[lo+i][d].Compare(v) >= 0
	})
}

// groupEnd returns the first row index after the current value group at
// level d: the rows [pos, groupEnd) all share rows[pos][d].
func (it *trieIter) groupEnd(d int) int {
	rows := it.t.rows
	lo, hi := it.pos[d], it.hi[d]
	v := rows[lo][d]
	// The same gallop as seek: value groups are often short.
	step := 1
	for lo+step < hi && rows[lo+step][d].Compare(v) == 0 {
		lo += step
		step <<= 1
	}
	end := lo + step
	if end > hi {
		end = hi
	}
	return lo + sort.Search(end-lo, func(i int) bool {
		return rows[lo+i][d].Compare(v) > 0
	})
}
