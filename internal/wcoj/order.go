package wcoj

import (
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// VariableOrder returns a deterministic global attribute order for the
// scheme — the variable order Leapfrog Triejoin binds attributes in.
//
// The heuristic is greedy: at each step the candidate set is the unchosen
// attributes that co-occur in some edge with an already-chosen attribute
// (so every prefix of the order induces a connected sub-scheme whenever the
// scheme is connected — the trie prefixes then actually constrain each
// other instead of enumerating a product); among candidates, the attribute
// contained in the most edges wins (intersecting more relations earlier
// prunes harder), with lexicographic order breaking ties. When no candidate
// is adjacent (at the start, or when a connected component is exhausted on
// a disconnected scheme) the same rule applies over all unchosen
// attributes.
//
// The result depends only on the scheme as a multiset of attribute sets —
// degrees and attribute names are invariant under edge reordering — so the
// order is stable across the canonical permutation plan caching applies
// (hypergraph.CanonicalOrder) and any other edge order of the same scheme.
func VariableOrder(h *hypergraph.Hypergraph) []string {
	attrs := h.Attrs()
	degree := make(map[string]int, attrs.Len())
	for _, e := range h.Edges() {
		for _, a := range e {
			degree[a]++
		}
	}
	var chosen relation.AttrSet
	remaining := append([]string(nil), attrs...) // sorted: AttrSet is sorted
	order := make([]string, 0, attrs.Len())
	for len(remaining) > 0 {
		// Adjacent candidates: attributes sharing an edge with the prefix.
		var candidates []string
		if len(chosen) > 0 {
			for _, a := range remaining {
				if adjacent(h, a, chosen) {
					candidates = append(candidates, a)
				}
			}
		}
		if len(candidates) == 0 {
			candidates = remaining
		}
		best := candidates[0]
		for _, a := range candidates[1:] {
			if degree[a] > degree[best] || (degree[a] == degree[best] && a < best) {
				best = a
			}
		}
		order = append(order, best)
		chosen = chosen.Union(relation.NewAttrSet(best))
		i := sort.SearchStrings(remaining, best)
		remaining = append(remaining[:i], remaining[i+1:]...)
	}
	return order
}

// adjacent reports whether some edge contains a together with a chosen
// attribute.
func adjacent(h *hypergraph.Hypergraph, a string, chosen relation.AttrSet) bool {
	for _, e := range h.Edges() {
		if e.Contains(a) && e.Overlaps(chosen) {
			return true
		}
	}
	return false
}
