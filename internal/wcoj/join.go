package wcoj

import (
	"sync/atomic"

	"repro/internal/govern"
	"repro/internal/relation"
)

// executor holds the per-enumeration state: one trie iterator per relation
// (over shared, read-only trie indexes) and, per variable, the relations
// whose schemes contain it. Executors are cheap — the parallel variant
// builds one per worker.
type executor struct {
	order []string
	byVar [][]int // byVar[v] = indexes of the relations containing order[v]
	iters []*trieIter
	// bindings counts the values bound per variable during enumeration —
	// the per-variable leapfrog work a trace reports. nil when untraced;
	// shared across the parallel workers (hence atomic).
	bindings []atomic.Int64
}

// newExecutor builds fresh iterators over the shared tries.
func newExecutor(order []string, tries []*trieIndex) *executor {
	ex := &executor{
		order: order,
		byVar: make([][]int, len(order)),
		iters: make([]*trieIter, len(tries)),
	}
	for i, t := range tries {
		ex.iters[i] = newTrieIter(t)
	}
	for v, name := range order {
		for i, t := range tries {
			if t.has(name) {
				ex.byVar[v] = append(ex.byVar[v], i)
			}
		}
	}
	return ex
}

// run enumerates all extensions of binding[0:v] to full results, calling
// emit with the (reused) full binding for each. Invariant: when run is
// entered at variable v, every relation's iterator has exactly its
// attributes among order[0:v] open — so the relations of byVar[v] are each
// one open() away from the level keyed by order[v]. Every leapfrog step
// charges a zero delta to scope, so deadlines and cancellation are observed
// during long seek streaks that emit nothing.
func (ex *executor) run(v int, binding []relation.Value, scope *govern.OpScope, emit func([]relation.Value) error) error {
	if v == len(ex.order) {
		return emit(binding)
	}
	rels := ex.byVar[v]
	level := make([]*trieIter, len(rels))
	for i, r := range rels {
		ex.iters[r].open()
		level[i] = ex.iters[r]
	}
	defer func() {
		for _, r := range rels {
			ex.iters[r].up()
		}
	}()
	for lf := newLeapfrog(level); !lf.done; lf.next() {
		if err := scope.Add(0); err != nil {
			return err
		}
		binding[v] = lf.key()
		if ex.bindings != nil {
			ex.bindings[v].Add(1)
		}
		if err := ex.run(v+1, binding, scope, emit); err != nil {
			return err
		}
	}
	return nil
}

// enumerate runs the full sequential join, charging each output tuple.
// bindings, when non-nil, receives the per-variable binding counts.
func enumerate(order []string, tries []*trieIndex, scope *govern.OpScope, bindings []atomic.Int64) (*relation.Relation, error) {
	out := relation.New(relation.MustSchema(order...))
	ex := newExecutor(order, tries)
	ex.bindings = bindings
	emit := func(binding []relation.Value) error {
		if err := scope.Add(1); err != nil {
			return err
		}
		out.MustInsert(append(relation.Tuple(nil), binding...))
		return nil
	}
	if err := ex.run(0, make([]relation.Value, len(order)), scope, emit); err != nil {
		return nil, err
	}
	return out, nil
}
