package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/store"
)

// The sharding coordinator. With Config.Shards > 1 every registered
// database carries a shard.Group (built at registration, rebased on every
// ingest batch under ingestMu), /v1/query routes through shard.Run, and —
// when Config.ShardPeers is set — registration pushes each peer its
// partition and ingest routes each batch's tuples to the owning peers in
// WAL order.

// planKey builds the plan-cache key: fingerprint#strategy#sN#vK. The shard
// count keeps a plan derived for (and validated clean against) one shard
// layout from being served to another — scheme fingerprints are
// layout-blind, and the cleanliness analysis Run applies depends on the plan
// instance it is handed. The statistics version pins statistics-dependent
// plans (the hybrid route above all) to the instance whose sketches chose
// them: every ingest batch bumps it, so a post-ingest query misses and
// re-plans against fresh statistics instead of reusing a route picked for
// data that no longer exists. Ingest invalidation by fingerprint+"#" prefix
// still covers every key.
func planKey(fingerprint string, strat engine.Strategy, grp *shard.Group, version int64) string {
	n := 1
	if grp != nil {
		n = grp.Shards()
	}
	return fingerprint + "#" + strat.String() + "#s" + strconv.Itoa(n) + "#v" + strconv.FormatInt(version, 10)
}

// executor picks the shard executor for a group: the configured remote
// fan-out when peers are set, else in-process scatter over the group's own
// shard databases.
func (s *Service) executor(grp *shard.Group) shard.Executor {
	if s.remoteExec != nil {
		return s.remoteExec
	}
	return shard.NewInProcess(grp)
}

// runPlan executes a derived plan: unsharded (grp == nil) it is
// engine.ExecutePlan on the query's pinned catalog; sharded it is
// shard.Run, which scatters clean plans and falls back to single-shard
// execution for the rest. The scatter counters feed the joind_shard_*
// metric series.
func (s *Service) runPlan(grp *shard.Group, db *relation.Database, plan *engine.Plan, opts engine.Options) (*engine.Report, error) {
	if grp == nil {
		return engine.ExecutePlan(db, plan, opts)
	}
	rep, err := shard.Run(grp, plan, opts, s.executor(grp))
	if err == nil && rep != nil {
		if rep.Shards > 1 {
			s.shardScatter.Add(1)
			s.shardTuples.Add(int64(rep.Result.Len()))
		} else {
			s.shardSingle.Add(1)
		}
	}
	return rep, err
}

// shardLadder is the sharded counterpart of the engine's governed
// degradation ladder (engine.Join under StrategyAuto): the same rungs in
// the same order, each with a fresh tuple budget, but every attempt goes
// through the plan cache and the scatter layer so sharded fallbacks charge
// identically to sequential ones.
func (s *Service) shardLadder(e *catalogEntry, grp *shard.Group, opts engine.Options) (*engine.Report, error) {
	h := hypergraph.OfScheme(grp.Full())
	ladder := engine.DegradationLadder(h)
	var chain []string
	for i, strat := range ladder {
		key := planKey(e.fingerprint, strat, grp, e.sketches.Version())
		plan, _, err := s.cache.GetOrCompute(key, func() (*engine.Plan, error) {
			return engine.PlanFor(grp.Full(), engine.Options{Strategy: strat, Budget: s.cfg.SearchBudget})
		})
		var rep *engine.Report
		if err == nil {
			rep, err = s.runPlan(grp, grp.Full(), plan, opts)
		}
		if err == nil {
			rep.Notes = append(chain, rep.Notes...)
			return rep, nil
		}
		if i == len(ladder)-1 || !degradableErr(err) {
			if len(chain) > 0 {
				return nil, fmt.Errorf("service: degradation ladder exhausted after %d fallbacks: %w", len(chain), err)
			}
			return nil, err
		}
		chain = append(chain, fmt.Sprintf("degradation: %s aborted (%v); falling back to %s",
			strat, err, ladder[i+1]))
	}
	panic("service: unreachable: shard ladder neither returned nor degraded")
}

// degradableErr mirrors the engine's fall-through rule: execution tuple
// budgets and optimizer search budgets degrade to the next rung;
// cancellation, deadlines, and real errors are final.
func degradableErr(err error) bool {
	return errors.Is(err, govern.ErrTupleBudget) || errors.Is(err, optimizer.ErrBudget)
}

// shardPushClient serves partition pushes and routed ingests to peers.
// Per-call urgency rides the request context; the client timeout is a
// backstop against a peer that accepts the connection and stalls.
var shardPushClient = &http.Client{Timeout: 5 * time.Minute}

// pushGroup registers each shard's partition on its peer: POST
// /v1/databases with the group's catalog name and shard i's database. Every
// peer must be empty of the name (the service's own no-replace rule applies
// remotely too); a failed push fails the coordinator's registration.
func (s *Service) pushGroup(g *shard.Group) error {
	for i, peer := range s.remoteExec.Peers() {
		req := registerRequest{Name: g.Name(), Relations: g.DB(i)}
		if err := shardPostJSON(context.Background(), peer+"/v1/databases", req); err != nil {
			return fmt.Errorf("shard %d (%s): %w", i, peer, err)
		}
	}
	return nil
}

// pushIngest routes one acknowledged batch to the owning peers: the batch
// is split by the group's Owner rule (broadcast-relation mutations fan out
// to every peer) and each non-empty routed batch is POSTed to its peer's
// /v1/ingest. Called under the entry's ingestMu, so peers receive batches
// in WAL order. The coordinator's local apply is already durable when this
// runs; a push failure therefore fails the ingest *after* the fact — the
// caller surfaces the error and the peer set is considered stale (peers
// must be rebuilt from the coordinator's catalog; see docs/SHARDING.md).
func (s *Service) pushIngest(ctx context.Context, g *shard.Group, database string, batch store.Batch) error {
	routed := batch.Route(g.Shards(), g.Owner)
	for i, peer := range s.remoteExec.Peers() {
		if len(routed[i]) == 0 {
			continue
		}
		req := ingestRequest{Database: database, Mutations: make([]ingestMutation, len(routed[i]))}
		for j, m := range routed[i] {
			req.Mutations[j] = ingestMutation{Relation: m.Relation, Inserts: m.Inserts, Deletes: m.Deletes}
		}
		if err := shardPostJSON(ctx, peer+"/v1/ingest", req); err != nil {
			return fmt.Errorf("shard %d (%s): %w", i, peer, err)
		}
	}
	return nil
}

// shardPostJSON POSTs body as JSON and fails on any non-2xx status, folding the
// peer's error body into the message.
func shardPostJSON(ctx context.Context, url string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := shardPushClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return nil
}
