package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/relation"
)

// Tests for intra-query worker carving: configuration defaulting, the
// clamp-and-degrade grant policy, stats accounting, and the HTTP surface.

func TestConfigQueryWorkerDefaults(t *testing.T) {
	cfg := Config{Workers: 3}.withDefaults()
	if cfg.QueryWorkers != 1 {
		t.Fatalf("QueryWorkers default = %d, want 1 (sequential)", cfg.QueryWorkers)
	}
	if cfg.WorkerBudget != 0 {
		t.Fatalf("WorkerBudget with sequential queries = %d, want 0", cfg.WorkerBudget)
	}
	cfg = Config{Workers: 3, QueryWorkers: 4}.withDefaults()
	if cfg.WorkerBudget != 12 {
		t.Fatalf("WorkerBudget default = %d, want Workers×QueryWorkers = 12", cfg.WorkerBudget)
	}
}

func TestCarveWorkersClampAndDegrade(t *testing.T) {
	s := New(Config{Workers: 2, QueryWorkers: 4, WorkerBudget: 6})

	// Ask above the cap: clamped to QueryWorkers, not degraded.
	got, cut, release1 := s.carveWorkers(16)
	if got != 4 || cut {
		t.Fatalf("ask 16: got %d (cut=%v), want 4 uncut", got, cut)
	}
	// Pool now holds 2: the next full ask degrades to what's left.
	got2, cut2, release2 := s.carveWorkers(4)
	if got2 != 2 || !cut2 {
		t.Fatalf("ask 4 with 2 left: got %d (cut=%v), want 2 cut", got2, cut2)
	}
	// Pool empty: degrade to sequential, reserving nothing.
	got3, cut3, release3 := s.carveWorkers(4)
	if got3 != 1 || !cut3 {
		t.Fatalf("ask 4 with empty pool: got %d (cut=%v), want 1 cut", got3, cut3)
	}
	release3()
	release2()
	release1()
	if rem := s.workersRemaining.Load(); rem != 6 {
		t.Fatalf("after all releases: %d workers unreserved, want 6", rem)
	}

	// Explicit sequential ask never touches the pool.
	if got, cut, _ := s.carveWorkers(1); got != 1 || cut {
		t.Fatalf("ask 1: got %d (cut=%v), want 1 uncut", got, cut)
	}
}

func TestQueryWorkersGrantReflectedInReport(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	s := New(Config{Workers: 2, QueryWorkers: 4})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	seq, err := s.Query(context.Background(), Request{Database: "tri", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Parallelism != 1 {
		t.Fatalf("explicit sequential query: Parallelism = %d", seq.Parallelism)
	}
	par, err := s.Query(context.Background(), Request{Database: "tri"}) // default = QueryWorkers
	if err != nil {
		t.Fatal(err)
	}
	if par.Parallelism != 4 {
		t.Fatalf("default query under QueryWorkers=4: Parallelism = %d", par.Parallelism)
	}
	if !par.Result.Equal(seq.Result) {
		t.Fatal("parallel query result differs from sequential")
	}
}

func TestWorkerBudgetDegradationCounted(t *testing.T) {
	// Budget of 2 can fund at most one 2-worker grant at a time; with
	// QueryWorkers 4, every grant is degraded.
	s := New(Config{Workers: 1, QueryWorkers: 4, WorkerBudget: 2})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Query(context.Background(), Request{Database: "tri", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallelism != 2 {
		t.Fatalf("Parallelism = %d, want degraded grant of 2", rep.Parallelism)
	}
	st := s.Stats()
	if st.WorkersDegraded != 1 {
		t.Fatalf("WorkersDegraded = %d, want 1", st.WorkersDegraded)
	}
	if st.QueryWorkers != 4 {
		t.Fatalf("Stats.QueryWorkers = %d, want 4", st.QueryWorkers)
	}
	if st.WorkerBudgetRemaining != 2 {
		t.Fatalf("WorkerBudgetRemaining = %d, want 2 (reservation returned)", st.WorkerBudgetRemaining)
	}
}

func TestConcurrentParallelQueriesUnderRace(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	s := New(Config{Workers: 4, QueryWorkers: 3, WorkerBudget: 6})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query(context.Background(), Request{Database: "tri", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 12
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := s.Query(context.Background(), Request{Database: "tri", Workers: 3})
			if err == nil && !rep.Result.Equal(want.Result) {
				t.Errorf("caller %d: result differs", i)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if rem := s.workersRemaining.Load(); rem != 6 {
		t.Fatalf("worker pool leaked: %d unreserved, want 6", rem)
	}
}

func TestHTTPQueryWorkersRoundTrip(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	s := New(Config{Workers: 2, QueryWorkers: 4})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json",
		strings.NewReader(`{"database":"tri","workers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Parallelism int `json:"parallelism"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Parallelism != 2 {
		t.Fatalf("response parallelism = %d, want 2", body.Parallelism)
	}
}
