package service

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestPlanKeyShardAware is the regression test for the plan-cache key: the
// historical fingerprint#strategy scheme would serve a plan cached by a
// single-shard (or unsharded) execution to a sharded executor — whose
// cleanliness analysis was never run against it — so the key must pin the
// shard layout too.
func TestPlanKeyShardAware(t *testing.T) {
	db, err := workload.TriangleSpec{Nodes: 8, Edges: 20}.TriangleDatabase(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	g4, err := shard.NewGroup("tri", db, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := shard.NewGroup("tri", db, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp := "fp-test"
	unsharded := planKey(fp, engine.StrategyColumnar, nil, 0)
	single := planKey(fp, engine.StrategyColumnar, g1, 0)
	sharded := planKey(fp, engine.StrategyColumnar, g4, 0)
	if unsharded != single {
		t.Fatalf("nil group key %q != 1-shard group key %q (both are unsharded execution)", unsharded, single)
	}
	if sharded == unsharded {
		t.Fatalf("4-shard key %q collides with unsharded key %q", sharded, unsharded)
	}
	if !strings.HasPrefix(sharded, fp+"#") {
		t.Fatalf("key %q lost the fingerprint prefix ingest invalidation matches on", sharded)
	}
	if other := planKey(fp, engine.StrategyWCOJ, g4, 0); other == sharded {
		t.Fatal("strategy no longer distinguishes keys")
	}
	if bumped := planKey(fp, engine.StrategyColumnar, g4, 1); bumped == sharded {
		t.Fatal("statistics version no longer distinguishes keys")
	}
}

// TestShardedServiceQueryParity runs the same query through a sharded and
// an unsharded service and asserts identical results, costs, and charges —
// the service-level slice of the differential gauntlet — plus the scatter
// counters behind the joind_shard_* metrics.
func TestShardedServiceQueryParity(t *testing.T) {
	db, err := workload.TriangleSpec{Nodes: 15, Edges: 60}.TriangleDatabase(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	plain := New(Config{})
	if _, err := plain.Register("tri", db); err != nil {
		t.Fatal(err)
	}
	// Negative threshold: never broadcast by size, so the triangle's R and T
	// partition and tree strategies scatter.
	sharded := New(Config{Shards: 4, ShardBroadcastThreshold: -1})
	if _, err := sharded.Register("tri", db); err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{"", "cpf-expression", "columnar", "wcoj", "reduce-then-join"} {
		req := Request{Database: "tri", Strategy: strategy, MaxTuples: 1 << 40}
		want, err := plain.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("%q unsharded: %v", strategy, err)
		}
		got, err := sharded.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("%q sharded: %v", strategy, err)
		}
		if !got.Result.Equal(want.Result) {
			t.Fatalf("%q: sharded result differs (%d vs %d tuples)", strategy, got.Result.Len(), want.Result.Len())
		}
		if got.Cost != want.Cost || got.Produced != want.Produced {
			t.Fatalf("%q: sharded cost/produced %d/%d != %d/%d",
				strategy, got.Cost, got.Produced, want.Cost, want.Produced)
		}
	}
	if sharded.shardScatter.Load() == 0 {
		t.Fatal("no query scattered")
	}
	if sharded.shardSingle.Load() == 0 {
		t.Fatal("no unclean query fell back to single-shard execution")
	}
	if sharded.shardTuples.Load() == 0 {
		t.Fatal("scatter gathered no tuples")
	}
}

// TestShardedServiceIngest routes a durable ingest batch through the shard
// group rebase and asserts the post-batch sharded query matches an
// unsharded reference over the same mutated catalog.
func TestShardedServiceIngest(t *testing.T) {
	db, err := workload.TriangleSpec{Nodes: 10, Edges: 35}.TriangleDatabase(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Shards: 4, ShardBroadcastThreshold: -1})
	if err := svc.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("tri", db); err != nil {
		t.Fatal(err)
	}
	batch := store.Batch{
		{Relation: 0, Inserts: db.Relation(1).Rows()[:5]},
		{Relation: 1, Deletes: db.Relation(1).Rows()[:2]},
	}
	if _, err := svc.Ingest(context.Background(), "tri", batch); err != nil {
		t.Fatal(err)
	}
	if svc.shardIngestRouted.Load() == 0 {
		t.Fatal("ingest routed no tuples through the shard group")
	}

	// Reference: apply the same batch unsharded and join sequentially.
	ref, err := store.ApplyBatch(db, batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Join(ref, engine.Options{Limits: govern.Limits{MaxTuples: 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Query(context.Background(), Request{Database: "tri", Strategy: "columnar", MaxTuples: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(want.Result) {
		t.Fatalf("post-ingest sharded result differs (%d vs %d tuples)", got.Result.Len(), want.Result.Len())
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
