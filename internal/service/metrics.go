package service

import (
	"repro/internal/obs"
	"repro/internal/store"
)

// serviceMetrics is the service's Prometheus registry: the series behind
// GET /metrics. Event-driven series (counters, histograms) are updated on
// the query path; occupancy series read the service's existing atomic
// counters and plan-cache stats at scrape time, so scraping duplicates no
// state. Every series here is documented in docs/OBSERVABILITY.md.
type serviceMetrics struct {
	registry *obs.Registry

	// queries partitions finished admissions by executed strategy and
	// outcome ("ok", "rejected", "aborted", "failed").
	queries *obs.CounterVec
	// tuples is the total governor charge across successful queries.
	tuples *obs.Counter
	// duration and queueWait are end-to-end latency and admission-queue
	// wait, in seconds.
	duration  *obs.Histogram
	queueWait *obs.Histogram
	// slow counts queries captured by the slow-query log.
	slow *obs.Counter
	// columnarTuples is the governor charge attributable to queries the
	// columnar batch kernels served — the fraction of joind's tuple work
	// running vectorized.
	columnarTuples *obs.Counter
	// ingests partitions ingest batches by outcome ("ok", "rejected",
	// "failed"); ingestDuration is the end-to-end ingest latency (WAL
	// append + fsync + catalog swap), in seconds.
	ingests        *obs.CounterVec
	ingestDuration *obs.Histogram
	// viewMaintenance is the per-view delta-application latency (one
	// observation per view per ingest batch), rebuild included when the
	// batch triggered one.
	viewMaintenance *obs.Histogram
	// optimizerQError is the hybrid estimator's q-error — max(est/actual,
	// actual/est) of the chooser's §2.3 cost estimate against the governor's
	// actual charge, one observation per executed hybrid query.
	optimizerQError *obs.Histogram
	// hybridRoutes partitions executed hybrid queries by the route the
	// chooser picked (acyclic, binary, wcoj, mixed).
	hybridRoutes *obs.CounterVec
}

// newServiceMetrics builds and registers the full series set against s.
func newServiceMetrics(s *Service) *serviceMetrics {
	r := obs.NewRegistry()
	m := &serviceMetrics{
		registry: r,
		queries: r.CounterVec("joind_queries_total",
			"Queries finished, by executed strategy and outcome (ok, rejected, aborted, failed).",
			"strategy", "status"),
		tuples: r.Counter("joind_tuples_produced_total",
			"Tuples charged by the governor across successful queries (the paper's generated relations)."),
		duration: r.Histogram("joind_query_duration_seconds",
			"End-to-end query latency, admission queue included.", nil),
		queueWait: r.Histogram("joind_queue_wait_seconds",
			"Time admitted queries spent waiting for a worker slot.", nil),
		slow: r.Counter("joind_slow_queries_total",
			"Queries at or above the slow-query threshold (captured in the slow-query log)."),
		columnarTuples: r.Counter("joind_columnar_tuples_total",
			"Tuples charged by queries executed through the columnar batch kernels."),
		ingests: r.CounterVec("joind_ingests_total",
			"Ingest batches finished, by outcome (ok, rejected, failed).",
			"status"),
		ingestDuration: r.Histogram("joind_ingest_duration_seconds",
			"End-to-end ingest latency: WAL append, fsync, and catalog swap.", nil),
		viewMaintenance: r.Histogram("joind_view_maintenance_seconds",
			"Per-view delta-maintenance latency per ingest batch (rebuild included when triggered).", nil),
		optimizerQError: r.Histogram("joind_optimizer_qerror",
			"Hybrid estimator q-error per executed hybrid query: max(estimated/actual, actual/estimated) of the chooser's cost against the governor's charge.",
			[]float64{1, 1.25, 1.5, 2, 3, 5, 10, 25, 100}),
		hybridRoutes: r.CounterVec("joind_optimizer_hybrid_routes_total",
			"Executed hybrid queries, by the route the statistics chooser picked (acyclic, binary, wcoj, mixed).",
			"route"),
	}

	r.GaugeFunc("joind_in_flight_queries",
		"Queries holding a worker slot right now.",
		func() float64 { return float64(s.inFlight.Load()) })
	r.GaugeFunc("joind_queued_queries",
		"Queries waiting for a worker slot right now.",
		func() float64 { return float64(s.queued.Load()) })
	r.GaugeFunc("joind_worker_utilization",
		"In-flight queries over the worker-pool size (0..1).",
		func() float64 { return float64(s.inFlight.Load()) / float64(s.cfg.Workers) })
	r.GaugeFunc("joind_registered_databases",
		"Databases in the catalog.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.dbs))
		})

	r.CounterFunc("joind_plan_cache_hits_total",
		"Plan-cache lookups answered from the cache (coalesced waits included).",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.CounterFunc("joind_plan_cache_misses_total",
		"Plan-cache lookups that derived a new plan.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.CounterFunc("joind_plan_cache_evictions_total",
		"Plan-cache entries dropped to respect capacity.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	r.GaugeFunc("joind_plan_cache_entries",
		"Plans currently cached.",
		func() float64 { return float64(s.cache.Stats().Len) })
	r.GaugeFunc("joind_plan_cache_hit_ratio",
		"Hits over lookups since start (0 when no lookups yet).",
		func() float64 {
			st := s.cache.Stats()
			if st.Hits+st.Misses == 0 {
				return 0
			}
			return float64(st.Hits) / float64(st.Hits+st.Misses)
		})

	r.GaugeFunc("joind_tuple_budget_remaining",
		"Unreserved part of the global tuple budget (-1 when unlimited).",
		func() float64 {
			if s.cfg.GlobalMaxTuples <= 0 {
				return -1
			}
			return float64(s.budgetRemaining.Load())
		})
	r.GaugeFunc("joind_tuple_budget_total",
		"Configured global tuple budget (-1 when unlimited).",
		func() float64 {
			if s.cfg.GlobalMaxTuples <= 0 {
				return -1
			}
			return float64(s.cfg.GlobalMaxTuples)
		})
	r.GaugeFunc("joind_worker_budget_remaining",
		"Unreserved part of the intra-query worker pool (-1 when parallelism is off or unlimited).",
		func() float64 {
			if s.cfg.QueryWorkers <= 1 || s.cfg.WorkerBudget <= 0 {
				return -1
			}
			return float64(s.workersRemaining.Load())
		})
	r.CounterFunc("joind_worker_grants_degraded_total",
		"Queries granted fewer intra-query workers than asked (worker budget depleted).",
		func() float64 { return float64(s.workersDegraded.Load()) })
	r.CounterFunc("joind_ladder_degradations_total",
		"Cached-plan executions that blew their budget and re-ran the degradation ladder.",
		func() float64 { return float64(s.degraded.Load()) })

	// Continuous-query (view) series. Counters read the service's aggregate
	// atomics; the gauges poll the registry under its lock.
	r.GaugeFunc("joind_views_registered",
		"Continuous queries (materialized views) currently registered.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.views))
		})
	r.GaugeFunc("joind_views_stale",
		"Views whose last maintenance failed and whose rebuild has not succeeded yet.",
		func() float64 { return float64(s.staleViews()) })
	r.CounterFunc("joind_view_delta_batches_total",
		"Delta batches applied to views (one per view per acknowledged ingest batch).",
		func() float64 { return float64(s.viewDeltaBatches.Load()) })
	r.CounterFunc("joind_view_delta_tuples_in_total",
		"Effective base-relation delta tuples propagated into views.",
		func() float64 { return float64(s.viewTuplesIn.Load()) })
	r.CounterFunc("joind_view_delta_tuples_out_total",
		"Result-delta tuples emitted by views (how much the materialized results changed).",
		func() float64 { return float64(s.viewTuplesOut.Load()) })
	r.CounterFunc("joind_view_reducer_skips_total",
		"Semijoin reducer re-runs skipped under the Safe-Subjoins condition.",
		func() float64 { return float64(s.viewReducerSkips.Load()) })
	r.CounterFunc("joind_view_full_rebuilds_total",
		"Full from-catalog view rebuilds (registration, recovery, and budget-abort repair).",
		func() float64 { return float64(s.viewRebuilds.Load()) })
	r.CounterFunc("joind_view_budget_aborts_total",
		"View maintenance runs aborted by the view's tuple budget (each triggers a rebuild).",
		func() float64 { return float64(s.viewBudgetAborts.Load()) })

	// Scatter-gather (sharding) series. All zero while sharding is off.
	r.GaugeFunc("joind_shard_count",
		"Configured shard count (0 when sharding is off).",
		func() float64 {
			if s.cfg.Shards > 1 {
				return float64(s.cfg.Shards)
			}
			return 0
		})
	r.GaugeFunc("joind_shard_remote_peers",
		"Remote shard peers configured (0 = in-process shard execution).",
		func() float64 {
			if s.remoteExec == nil {
				return 0
			}
			return float64(s.remoteExec.Shards())
		})
	r.CounterFunc("joind_shard_executions_total",
		"Queries executed through scatter-gather across the shard group.",
		func() float64 { return float64(s.shardScatter.Load()) })
	r.CounterFunc("joind_shard_single_fallbacks_total",
		"Sharded queries executed single-shard because the plan's cleanliness analysis rejected scatter.",
		func() float64 { return float64(s.shardSingle.Load()) })
	r.CounterFunc("joind_shard_tuples_total",
		"Result tuples gathered from scattered shard executions.",
		func() float64 { return float64(s.shardTuples.Load()) })
	r.CounterFunc("joind_shard_ingest_routed_tuples_total",
		"Ingest tuples routed to owning shards (broadcast fan-out counted once).",
		func() float64 { return float64(s.shardIngestRouted.Load()) })

	// Statistics-sketch series behind the hybrid chooser. The aggregates
	// walk the catalog at scrape time (drift/rebuild counters are monotone
	// per entry, so their sums are valid counters).
	r.CounterFunc("joind_optimizer_sketch_drift_total",
		"Delta tuples folded into statistics sketches since each database's last exact rebuild-or-build, summed over the catalog.",
		func() float64 { d, _, _ := s.sketchTotals(); return float64(d) })
	r.CounterFunc("joind_optimizer_sketch_rebuilds_total",
		"Exact sketch rebuilds triggered by accumulated ingest drift, summed over the catalog.",
		func() float64 { _, rb, _ := s.sketchTotals(); return float64(rb) })
	r.GaugeFunc("joind_optimizer_stats_version",
		"Sum of per-database statistics versions (each advances by one per acknowledged ingest batch).",
		func() float64 { _, _, v := s.sketchTotals(); return float64(v) })

	r.CounterFunc("joind_plan_cache_invalidations_total",
		"Plan-cache entries dropped because their database was mutated by ingest.",
		func() float64 { return float64(s.cache.Stats().Invalidations) })

	// Durable-store series. All zero until AttachStore; scrapes read the
	// store's own atomics.
	storeStats := func() store.Stats {
		if st := s.store.Load(); st != nil {
			return st.Stats()
		}
		return store.Stats{}
	}
	r.GaugeFunc("joind_store_attached",
		"1 when a durable store is attached (joind -data-dir), else 0.",
		func() float64 {
			if s.store.Load() != nil {
				return 1
			}
			return 0
		})
	r.CounterFunc("joind_wal_appends_total",
		"Batch records appended to write-ahead logs.",
		func() float64 { return float64(storeStats().WALAppends) })
	r.CounterFunc("joind_wal_bytes_total",
		"Bytes appended to write-ahead logs (framing included).",
		func() float64 { return float64(storeStats().WALBytes) })
	r.CounterFunc("joind_snapshot_writes_total",
		"Snapshot files written by checkpoints (database creation included).",
		func() float64 { return float64(storeStats().SnapshotWrites) })
	r.CounterFunc("joind_snapshot_bytes_total",
		"Bytes written to snapshot files.",
		func() float64 { return float64(storeStats().SnapshotBytes) })
	r.CounterFunc("joind_snapshot_checkpoints_total",
		"Completed checkpoints (snapshot durable, WAL truncated).",
		func() float64 { return float64(storeStats().Checkpoints) })
	r.GaugeFunc("joind_recovery_replayed_records",
		"WAL records replayed during this process's startup recovery.",
		func() float64 { return float64(storeStats().ReplayedRecords) })
	r.GaugeFunc("joind_recovery_torn_bytes",
		"Torn-tail bytes discarded from WALs during startup recovery.",
		func() float64 { return float64(storeStats().TornTailBytes) })

	return m
}
