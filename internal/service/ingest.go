package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/store"
)

// The durable mutation path. AttachStore hands the service a WAL-backed
// store (see internal/store): recovered databases are registered into the
// catalog, new registrations are persisted, and Ingest routes batched
// inserts/deletes through the store's write-ahead log before swapping the
// entry's catalog pointer. Queries are never blocked by ingest — they run
// against the immutable catalog version they loaded at admission.

// IngestResult summarizes one acknowledged ingest batch.
type IngestResult struct {
	Database string `json:"database"`
	// Inserted and Deleted are effective counts: tuples that actually
	// changed presence (re-inserting an existing tuple or deleting an
	// absent one is a no-op).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Tuples is the catalog's total tuple count after the batch.
	Tuples int `json:"tuples"`
	// WALBytes is the size of the batch's WAL record.
	WALBytes int64 `json:"wal_bytes"`
	// PlansInvalidated counts plan-cache entries dropped because this
	// database changed (plans are instance-dependent: optimizer search
	// reads cardinalities).
	PlansInvalidated int `json:"plans_invalidated"`
	// ViewsMaintained counts the registered views this batch's delta was
	// propagated into before the batch was acknowledged.
	ViewsMaintained int `json:"views_maintained"`
}

// AttachStore wires the durable store into the service: every database the
// store recovered (snapshot + WAL replay) is registered into the catalog,
// and subsequent Register and Ingest calls go through the store. Call once,
// before serving traffic; registering the recovered names fails if any are
// already taken.
func (s *Service) AttachStore(st *store.Store) error {
	names := st.Names()
	sort.Strings(names)
	for _, name := range names {
		db, err := st.Current(name)
		if err != nil {
			return err
		}
		if _, err := s.register(name, db); err != nil {
			return fmt.Errorf("service: attach store: %w", err)
		}
		// Seed the statistics version from the store's durable batch count,
		// so plan-cache keys never repeat version numbers across restarts.
		if v, verr := st.Version(name); verr == nil {
			if e, lerr := s.lookup(name); lerr == nil {
				e.sketches.SetVersion(v)
			}
		}
	}
	// Re-register the durable continuous queries and rebuild each from the
	// recovered catalog; their materialized state is derivable and never
	// persisted, so recovery is Compile + Rebuild per definition.
	if err := s.attachViews(st); err != nil {
		return err
	}
	s.store.Store(st)
	return nil
}

// Store returns the attached durable store, nil when the service is
// in-memory only.
func (s *Service) Store() *store.Store { return s.store.Load() }

// SetReady flips the readiness gate served by /readyz and /healthz. joind
// holds the service not-ready until recovery finishes, and flips it back off
// when shutdown begins.
func (s *Service) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the readiness gate.
func (s *Service) Ready() bool { return s.ready.Load() }

// Ingest applies one batch of inserts/deletes to a registered database,
// durably: the batch is WAL-appended (fsynced under the store's policy)
// before the in-memory catalog pointer swaps, and plan-cache entries for the
// database's fingerprint are invalidated after the swap. In-flight queries
// are untouched — they keep the catalog version they loaded at admission;
// queries admitted after Ingest returns see the post-batch catalog.
//
// Without an attached store the service is read-only and Ingest fails with
// ErrReadOnly.
func (s *Service) Ingest(ctx context.Context, database string, batch store.Batch) (IngestResult, error) {
	start := time.Now()
	res, err := s.ingest(ctx, database, batch)
	status := "ok"
	switch {
	case err == nil:
	case errors.Is(err, ErrBadRequest), errors.Is(err, ErrUnknownDatabase), errors.Is(err, ErrReadOnly):
		status = "rejected"
	default:
		status = "failed"
	}
	s.metrics.ingests.Inc(status)
	s.metrics.ingestDuration.Observe(time.Since(start).Seconds())
	return res, err
}

// ingest is Ingest without the metrics bookkeeping.
func (s *Service) ingest(ctx context.Context, database string, batch store.Batch) (IngestResult, error) {
	st := s.store.Load()
	if st == nil {
		return IngestResult{}, ErrReadOnly
	}
	if err := ctx.Err(); err != nil {
		return IngestResult{}, err
	}
	e, err := s.lookup(database)
	if err != nil {
		return IngestResult{}, err
	}
	// Serialize append + swap per entry: Apply acknowledges batches in WAL
	// order, and holding ingestMu across the swap keeps the catalog pointer
	// in that same order — and, held across maintainViews, hands every
	// registered view this batch's delta before any later batch's.
	e.ingestMu.Lock()
	applied, err := st.Apply(database, batch)
	if err != nil {
		e.ingestMu.Unlock()
		return IngestResult{}, mapStoreError(err)
	}
	e.db.Store(applied.DB)
	if g := e.group.Load(); g != nil {
		// Rebase the shard layout onto the post-batch catalog: the batch's
		// tuples route to their owning shards (in-process) or owning peers
		// (remote), in WAL order under this same lock. The local apply above
		// is already durable; a remote push failure therefore surfaces as an
		// ingest error while the peers are considered stale — operators must
		// rebuild the peer set from the coordinator (docs/SHARDING.md).
		ng, gerr := g.Rebase(applied.DB, batch)
		if gerr == nil && s.remoteExec != nil {
			gerr = s.pushIngest(ctx, ng, database, batch)
		}
		if gerr != nil {
			e.ingestMu.Unlock()
			return IngestResult{}, fmt.Errorf("service: shard ingest %q: %w", database, gerr)
		}
		e.group.Store(ng)
		s.shardIngestRouted.Add(int64(batch.Tuples()))
	}
	// Fold the batch into the entry's statistics sketches against the
	// post-batch relations (exact rebuilds trigger when accumulated drift
	// crosses the threshold), then advance the version to the store's durable
	// batch count. Both happen under ingestMu so sketch state tracks the
	// catalog in WAL order — and both happen UNCONDITIONALLY, view or no
	// view: the version bump is what keeps a post-ingest query from reusing
	// a statistics-dependent cached plan, so it cannot be contingent on any
	// other maintenance running for this database.
	for _, m := range batch {
		e.sketches.Apply(m.Relation, m.Inserts, m.Deletes, applied.DB.Relation(m.Relation))
	}
	e.sketches.SetVersion(applied.Version)
	maintained := s.maintainViews(database, batch, applied.DB)
	e.ingestMu.Unlock()
	s.ingests.Add(1)

	// Cached plans were derived from the pre-batch instance; their routes
	// may now be stale (plan choice reads cardinalities), so drop every
	// strategy's plan for this fingerprint. Other databases sharing the
	// scheme lose their plans too — a recomputation, not a correctness
	// issue. (The version suffix in planKey already keeps stale entries from
	// being served; invalidation reclaims their cache slots.)
	invalidated := s.cache.InvalidatePrefix(e.fingerprint + "#")

	return IngestResult{
		Database:         database,
		Inserted:         applied.Inserted,
		Deleted:          applied.Deleted,
		Tuples:           applied.DB.TotalTuples(),
		WALBytes:         applied.WALBytes,
		PlansInvalidated: invalidated,
		ViewsMaintained:  maintained,
	}, nil
}

// Close shuts the service down in dependency order: the readiness gate
// flips off, in-flight and queued queries drain (bounded by ctx), and only
// then does the durable store flush, checkpoint, and close. Queries hold
// immutable catalog snapshots, so a query that outlives the drain window
// still completes correctly — the ordering guarantee is that the store's
// final checkpoint happens after the drain, not under live query load.
// Close is idempotent only in its store part; call it once.
func (s *Service) Close(ctx context.Context) error {
	s.SetReady(false)
	var drainErr error
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.inFlight.Load() > 0 || s.queued.Load() > 0 {
		select {
		case <-ctx.Done():
			drainErr = fmt.Errorf("service: drain incomplete (%d in flight, %d queued): %w",
				s.inFlight.Load(), s.queued.Load(), ctx.Err())
		case <-tick.C:
			continue
		}
		break
	}
	if st := s.store.Load(); st != nil {
		if err := st.Close(); err != nil && !errors.Is(err, store.ErrClosed) {
			return errors.Join(drainErr, err)
		}
	}
	return drainErr
}
