package service

import (
	"context"
	"strings"
	"testing"
)

// TestHybridQueryFeedbackAndVersioning walks the full statistics loop at the
// service layer: a hybrid query plans from the registration-time sketches
// and feeds its q-error back; an ingest batch folds its deltas into the
// sketches and bumps the statistics version (durably, via the store's batch
// count), so the next hybrid query misses the plan cache and re-plans
// against post-ingest statistics.
func TestHybridQueryFeedbackAndVersioning(t *testing.T) {
	s := newStoreService(t, t.TempDir(), Config{Workers: 1})
	defer s.Close(context.Background())
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	e, err := s.lookup("tri")
	if err != nil {
		t.Fatal(err)
	}
	if v := e.sketches.Version(); v != 0 {
		t.Fatalf("registration-time statistics version = %d, want 0", v)
	}

	rep, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Len() != 1 {
		t.Fatalf("1 triangle joined to %d rows", rep.Result.Len())
	}
	if rep.PlanCacheHit {
		t.Fatal("first hybrid query cannot hit the plan cache")
	}
	if c := e.sketches.Correction(e.fingerprint); c <= 0 {
		t.Fatalf("post-query correction = %v, want a recorded feedback ratio", c)
	}

	// No views are registered: the version bump and sketch maintenance must
	// happen anyway (they gate statistics-dependent plan reuse, not view
	// maintenance).
	if _, err := s.Ingest(context.Background(), "tri", triBatch(1, -1)); err != nil {
		t.Fatal(err)
	}
	if v := e.sketches.Version(); v != 1 {
		t.Fatalf("post-ingest statistics version = %d, want 1 (bumped with no views registered)", v)
	}
	if rows := e.sketches.Snapshot()[0].Rows(); rows != 2 {
		t.Fatalf("sketch rows after ingest = %d, want 2 (delta folded in)", rows)
	}

	rep2, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PlanCacheHit {
		t.Fatal("post-ingest hybrid query reused a plan keyed to stale statistics")
	}
	if rep2.Result.Len() != 2 {
		t.Fatalf("2 triangles joined to %d rows", rep2.Result.Len())
	}
	// Same version, warm cache: the second lookup under #v1 must hit.
	rep3, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.PlanCacheHit {
		t.Fatal("repeat query at an unchanged version missed the plan cache")
	}

	var b strings.Builder
	s.Metrics().WriteText(&b)
	text := b.String()
	for _, series := range []string{
		"joind_optimizer_qerror_count 3",
		"joind_optimizer_hybrid_routes_total",
		"joind_optimizer_sketch_drift_total",
		"joind_optimizer_sketch_rebuilds_total",
		"joind_optimizer_stats_version 1",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestHybridVersionSurvivesRestart: reattaching a store seeds the
// statistics version from the durable batch count, so plan-cache keys never
// repeat across restarts.
func TestHybridVersionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 1})
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if _, err := s.Ingest(context.Background(), "tri", triBatch(i, -1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newStoreService(t, dir, Config{Workers: 1})
	defer s2.Close(context.Background())
	e, err := s2.lookup("tri")
	if err != nil {
		t.Fatal(err)
	}
	if v := e.sketches.Version(); v != 3 {
		t.Fatalf("recovered statistics version = %d, want 3", v)
	}
	rep, err := s2.Query(context.Background(), Request{Database: "tri", Strategy: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Len() != 4 {
		t.Fatalf("4 triangles joined to %d rows", rep.Result.Len())
	}
}
