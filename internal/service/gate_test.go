package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postJSON posts body to path and decodes the response envelope.
func postJSON(t *testing.T, srv *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return resp.StatusCode, out
}

// TestMutationsGatedOnReadiness pins the recovery-window contract: while the
// service is not ready (joind serves HTTP before the store is attached, and
// again during shutdown), register and ingest must be refused with 503 —
// never accepted into an in-memory-only catalog that a restart would lose.
func TestMutationsGatedOnReadiness(t *testing.T) {
	s := newStoreService(t, t.TempDir(), Config{Workers: 1})
	defer s.Close(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.SetReady(false)
	register := `{"name":"tri","relations":[
		{"attrs":["A","B"],"tuples":[[0,1]]},
		{"attrs":["B","C"],"tuples":[[1,2]]},
		{"attrs":["C","A"],"tuples":[[2,0]]}]}`
	ingest := `{"database":"tri","mutations":[{"relation":0,"inserts":[[10,11]]}]}`
	for path, body := range map[string]string{"/v1/databases": register, "/v1/ingest": ingest} {
		code, out := postJSON(t, srv, path, body)
		if code != http.StatusServiceUnavailable || out["kind"] != "unavailable" {
			t.Errorf("not-ready POST %s = %d %v, want 503 unavailable", path, code, out)
		}
	}
	// Nothing must have leaked into the catalog or the store.
	if got := s.Databases(); len(got) != 0 {
		t.Fatalf("catalog after gated mutations: %v", got)
	}

	s.SetReady(true)
	if code, out := postJSON(t, srv, "/v1/databases", register); code != http.StatusCreated {
		t.Fatalf("ready register = %d %v", code, out)
	}
	if code, out := postJSON(t, srv, "/v1/ingest", ingest); code != http.StatusOK {
		t.Fatalf("ready ingest = %d %v", code, out)
	}
}

// TestRequestBodyLimits pins the per-endpoint MaxBytesReader caps: an
// oversized body is 413 with kind "too_large", not an unbounded allocation.
func TestRequestBodyLimits(t *testing.T) {
	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	// Pad a syntactically valid query request past the 1 MiB query cap.
	body := `{"database":"x","strategy":"` + strings.Repeat(" ", maxQueryBody) + `"}`
	code, out := postJSON(t, srv, "/v1/query", body)
	if code != http.StatusRequestEntityTooLarge || out["kind"] != "too_large" {
		t.Fatalf("oversized query body = %d %v, want 413 too_large", code, out)
	}
	// A normal-sized request on the same server still works end to end.
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if code, out := postJSON(t, srv, "/v1/query", `{"database":"tri"}`); code != http.StatusOK {
		t.Fatalf("small query = %d %v", code, out)
	}
}
