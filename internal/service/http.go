package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
)

// HTTP/JSON API (served by cmd/joind):
//
//	POST /v1/databases  register a named database (durable when a store is attached)
//	GET  /v1/databases  list the catalog
//	POST /v1/query      join a registered database
//	POST /v1/ingest     apply batched inserts/deletes durably (WAL-backed)
//	POST /v1/views      register a continuous query (materialized ⋈D view)
//	GET  /v1/views      list registered views with maintenance stats
//	GET  /v1/views/{id} one view: maintenance stats + materialized result
//	DELETE /v1/views/{id} drop a view
//	GET  /v1/stats      service + plan-cache + store counters
//	GET  /v1/slow       slow-query log (trace drill-down included)
//	GET  /metrics       Prometheus text exposition
//	GET  /livez         liveness: 200 as soon as the process serves HTTP
//	GET  /readyz        readiness: 503 "recovering" until WAL replay finishes
//	GET  /healthz       readiness-gated health (same behavior as /readyz)
//
// Admission rejections (queue full, queue timeout, global budget) are 429;
// a query's own resource aborts are 422 (tuple budget) or 504 (deadline);
// unknown databases are 404; duplicate registrations are 409; ingest
// against a service with no durable store is 403. Mutations (register,
// ingest) are 503 while the service is not ready — before recovery attaches
// the store, and again during shutdown — so a client can never get a 201/200
// for a write the durable catalog never saw. Request bodies are bounded per
// endpoint (oversized bodies are 413). The request context is propagated
// into the governor, so a dropped connection cancels the query's execution.

// StatusClientClosedRequest is the nonstandard (nginx-convention) status
// reported when the client went away mid-query.
const StatusClientClosedRequest = 499

// Request-body ceilings, enforced with http.MaxBytesReader so one request
// cannot make the daemon buffer an arbitrarily large body. Ingest bodies
// get headroom over store.MaxRecordSize (JSON is less dense than the WAL's
// binary codec; a batch near the record limit still has to be expressible),
// and anything the cap lets through that still encodes past the record
// limit is rejected with 400 by Store.Apply. Registration bodies may carry
// a whole database, so their cap is the snapshot-scale one.
const (
	maxQueryBody    = 1 << 20                     // 1 MiB: query requests are tiny
	maxIngestBody   = 3 * store.MaxRecordSize / 2 // 96 MiB: 1.5× the WAL record limit
	maxRegisterBody = 1 << 30                     // 1 GiB: a full database as JSON
)

// registerRequest is the body of POST /v1/databases.
type registerRequest struct {
	Name string `json:"name"`
	// Relations is the database: a JSON array of
	// {"attrs": [...], "tuples": [[...], ...]} objects.
	Relations *relation.Database `json:"relations"`
}

// queryRequest is the body of POST /v1/query.
type queryRequest struct {
	Database              string `json:"database"`
	Strategy              string `json:"strategy,omitempty"`
	MaxTuples             int64  `json:"max_tuples,omitempty"`
	MaxIntermediateTuples int64  `json:"max_intermediate_tuples,omitempty"`
	TimeoutMS             int64  `json:"timeout_ms,omitempty"`
	Indexed               bool   `json:"indexed,omitempty"`
	// Workers asks for intra-query parallelism (0 = service default,
	// clamped to the configured per-query cap; the grant may degrade
	// toward sequential when the worker budget is depleted).
	Workers int `json:"workers,omitempty"`
	// IncludeResult returns the result tuples (capped by MaxResultTuples).
	IncludeResult bool `json:"include_result,omitempty"`
	// MaxResultTuples caps the tuples echoed back when IncludeResult is set
	// (0 = all). The join itself is not truncated — only the response body.
	MaxResultTuples int `json:"max_result_tuples,omitempty"`
}

// queryResponse is the body of a successful POST /v1/query.
type queryResponse struct {
	Database string `json:"database"`
	Strategy string `json:"strategy"`
	// TraceID identifies the query's span tree (present when the service
	// runs with a tracer or the slow-query log enabled).
	TraceID     string  `json:"trace_id,omitempty"`
	Cost        int64   `json:"cost"`
	Produced    int64   `json:"produced"`
	ResultCount int     `json:"result_count"`
	CacheHit    bool    `json:"cache_hit"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// Parallelism is the worker count the query actually ran with (1 =
	// sequential), after clamping and worker-budget degradation.
	Parallelism int `json:"parallelism"`
	// Shards is how many shards the query scattered across (absent or 1 =
	// unsharded execution; Cost and Produced are merged totals either way).
	Shards int      `json:"shards,omitempty"`
	Plan   string   `json:"plan,omitempty"`
	Notes  []string `json:"notes,omitempty"`
	// Result is present when include_result was set: the result relation,
	// possibly truncated to max_result_tuples (see ResultTruncated).
	Result          *relation.Relation `json:"result,omitempty"`
	ResultTruncated bool               `json:"result_truncated,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure for scripting: "overloaded",
	// "resource_limit", "deadline", "canceled", "not_found", "conflict",
	// "bad_request", "too_large", "read_only", "unavailable", or
	// "internal".
	Kind string `json:"kind"`
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/databases", s.handleRegister)
	mux.HandleFunc("GET /v1/databases", s.handleListDatabases)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/views", s.handleRegisterView)
	mux.HandleFunc("GET /v1/views", s.handleListViews)
	mux.HandleFunc("GET /v1/views/{id}", s.handleGetView)
	mux.HandleFunc("DELETE /v1/views/{id}", s.handleDropView)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/slow", s.handleSlow)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Liveness is unconditional: the process is up and serving HTTP.
	// Readiness (and the readiness-gated /healthz) answers 503 while the
	// service recovers its WAL or drains for shutdown, so load balancers
	// and scripts/smoke_joind.sh hold traffic until replay completes.
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /healthz", s.handleReady)
	return mux
}

func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
		return
	}
	fmt.Fprintln(w, "ok")
}

// gateMutation rejects mutation requests (register, ingest) with 503 while
// the service is not ready — during startup recovery the durable store is
// not attached yet, so an accepted mutation would be silently non-durable
// (and during shutdown the store is about to close under it). Reads stay
// available; load balancers steer by /readyz.
func (s *Service) gateMutation(w http.ResponseWriter) bool {
	if s.Ready() {
		return true
	}
	writeError(w, http.StatusServiceUnavailable, "unavailable",
		"service is recovering or shutting down; mutations are not accepted")
	return false
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRegisterBody)
	var req registerRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	if req.Relations == nil {
		writeError(w, http.StatusBadRequest, "bad_request", "missing \"relations\"")
		return
	}
	info, err := s.Register(req.Name, req.Relations)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Service) handleListDatabases(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Databases())
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req queryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	rep, err := s.Query(r.Context(), Request{
		Database:              req.Database,
		Strategy:              req.Strategy,
		MaxTuples:             req.MaxTuples,
		MaxIntermediateTuples: req.MaxIntermediateTuples,
		Timeout:               time.Duration(req.TimeoutMS) * time.Millisecond,
		Indexed:               req.Indexed,
		Workers:               req.Workers,
	})
	if err != nil {
		writeServiceError(w, err)
		return
	}
	resp := queryResponse{
		Database:    req.Database,
		Strategy:    rep.Strategy.String(),
		TraceID:     rep.TraceID,
		Cost:        rep.Cost,
		Produced:    rep.Produced,
		ResultCount: rep.Result.Len(),
		CacheHit:    rep.PlanCacheHit,
		QueueWaitMS: float64(rep.QueueWait) / float64(time.Millisecond),
		Parallelism: rep.Parallelism,
		Shards:      rep.Shards,
		Plan:        rep.Plan,
		Notes:       rep.Notes,
	}
	if req.IncludeResult {
		resp.Result, resp.ResultTruncated = truncate(rep.Result, req.MaxResultTuples)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ingestMutation is one relation's changes within POST /v1/ingest.
type ingestMutation struct {
	// Relation indexes the database's relations (registration order).
	Relation int `json:"relation"`
	// Inserts and Deletes are tuples in the same JSON shape as registration
	// ([[1,"x"], ...]). Deletes apply before inserts.
	Inserts []relation.Tuple `json:"inserts,omitempty"`
	Deletes []relation.Tuple `json:"deletes,omitempty"`
}

// ingestRequest is the body of POST /v1/ingest. The whole batch is one WAL
// record: it is applied atomically and acknowledged only once durable under
// the store's fsync policy.
type ingestRequest struct {
	Database  string           `json:"database"`
	Mutations []ingestMutation `json:"mutations"`
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBody)
	var req ingestRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	batch := make(store.Batch, len(req.Mutations))
	for i, m := range req.Mutations {
		batch[i] = store.Mutation{Relation: m.Relation, Inserts: m.Inserts, Deletes: m.Deletes}
	}
	res, err := s.Ingest(r.Context(), req.Database, batch)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// viewRequest is the body of POST /v1/views.
type viewRequest struct {
	// ID names the view (unique; same character rules as database names).
	ID string `json:"id"`
	// Database is the registered catalog name the view joins.
	Database string `json:"database"`
	// MaxTuples / MaxIntermediateTuples bound one ingest batch's delta
	// maintenance work for this view (0 = unlimited). Exceeding them marks
	// the view stale and rebuilds it; the ingest itself still succeeds.
	MaxTuples             int64 `json:"max_tuples,omitempty"`
	MaxIntermediateTuples int64 `json:"max_intermediate_tuples,omitempty"`
}

// viewResponse is the body of GET /v1/views/{id}: the view's info and its
// materialized result (possibly truncated by the max_result query
// parameter).
type viewResponse struct {
	ViewInfo
	Result          *relation.Relation `json:"result,omitempty"`
	ResultTruncated bool               `json:"result_truncated,omitempty"`
}

func (s *Service) handleRegisterView(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req viewRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	info, err := s.RegisterView(store.ViewDef{
		ID:                    req.ID,
		Database:              req.Database,
		MaxTuples:             req.MaxTuples,
		MaxIntermediateTuples: req.MaxIntermediateTuples,
	})
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Service) handleListViews(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Views())
}

func (s *Service) handleGetView(w http.ResponseWriter, r *http.Request) {
	info, result, err := s.ViewResult(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	resp := viewResponse{ViewInfo: info}
	maxResult := 0
	if q := r.URL.Query().Get("max_result"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &maxResult); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "max_result must be an integer")
			return
		}
	}
	resp.Result, resp.ResultTruncated = truncate(result, maxResult)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleDropView(w http.ResponseWriter, r *http.Request) {
	if !s.gateMutation(w) {
		return
	}
	if err := s.DropView(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// slowResponse is the body of GET /v1/slow.
type slowResponse struct {
	Enabled     bool            `json:"enabled"`
	ThresholdMS float64         `json:"threshold_ms"`
	Capacity    int             `json:"capacity"`
	Recorded    int64           `json:"recorded"`
	Entries     []obs.SlowEntry `json:"entries"`
}

func (s *Service) handleSlow(w http.ResponseWriter, r *http.Request) {
	l := s.slowLog
	resp := slowResponse{Enabled: l != nil, Entries: []obs.SlowEntry{}}
	if l != nil {
		resp.ThresholdMS = float64(l.Threshold()) / float64(time.Millisecond)
		resp.Capacity = l.Capacity()
		resp.Recorded = l.Recorded()
		resp.Entries = l.Entries()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics().WriteText(w)
}

// truncate returns r limited to max tuples (max <= 0 = no limit), and
// whether truncation happened. Truncation keeps the sorted prefix so the
// echoed sample is deterministic.
func truncate(r *relation.Relation, max int) (*relation.Relation, bool) {
	if max <= 0 || r.Len() <= max {
		return r, false
	}
	out := relation.New(r.Schema())
	for i, t := range r.SortedRows() {
		if i == max {
			break
		}
		out.MustInsert(t)
	}
	return out, true
}

// decodeJSON parses the body into v, writing a 400 (or 413 when the body
// blew its MaxBytesReader cap) and returning non-nil on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds the %d-byte limit for this endpoint", tooBig.Limit))
			return err
		}
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return err
	}
	return nil
}

// writeServiceError maps a service/engine/govern error to its HTTP status.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownDatabase), errors.Is(err, ErrUnknownView):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, ErrDuplicateDatabase), errors.Is(err, ErrDuplicateView):
		writeError(w, http.StatusConflict, "conflict", err.Error())
	case errors.Is(err, ErrViewStale):
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
	case errors.Is(err, govern.ErrTupleBudget):
		writeError(w, http.StatusUnprocessableEntity, "resource_limit", err.Error())
	case errors.Is(err, govern.ErrDeadline):
		writeError(w, http.StatusGatewayTimeout, "deadline", err.Error())
	case errors.Is(err, govern.ErrCanceled):
		writeError(w, StatusClientClosedRequest, "canceled", err.Error())
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, ErrReadOnly):
		writeError(w, http.StatusForbidden, "read_only", err.Error())
	case errors.Is(err, ErrUnavailable):
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Kind: kind})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
