package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine/failpoint"
	"repro/internal/relation"
	"repro/internal/store"
)

// sortedTuples renders a relation deterministically for comparison.
func sortedTuples(r *relation.Relation) string {
	return fmt.Sprint(r.SortedRows())
}

func TestViewMaintainedAcrossIngest(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 2})
	defer s.Close(context.Background())
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	info, err := s.RegisterView(store.ViewDef{ID: "tv", Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResultCount != 1 {
		t.Fatalf("initial view holds %d tuples, want 1 (the seed triangle)", info.ResultCount)
	}
	if info.Rebuilds != 1 {
		t.Fatalf("registration rebuilds = %d, want 1", info.Rebuilds)
	}
	// Grow and shrink through several batches; after each, the view must
	// equal a from-scratch join of the current catalog.
	for i := int64(1); i <= 5; i++ {
		res, err := s.Ingest(context.Background(), "tri", triBatch(i, i-2))
		if err != nil {
			t.Fatal(err)
		}
		if res.ViewsMaintained != 1 {
			t.Fatalf("batch %d maintained %d views, want 1", i, res.ViewsMaintained)
		}
		rep, err := s.Query(context.Background(), Request{Database: "tri"})
		if err != nil {
			t.Fatal(err)
		}
		vinfo, result, err := s.ViewResult("tv")
		if err != nil {
			t.Fatal(err)
		}
		if !result.Equal(rep.Result) {
			t.Fatalf("batch %d: view diverged from recompute:\nview:      %s\nrecompute: %s",
				i, sortedTuples(result), sortedTuples(rep.Result))
		}
		if vinfo.DeltaBatches != i {
			t.Fatalf("batch %d: DeltaBatches = %d", i, vinfo.DeltaBatches)
		}
		if vinfo.Rebuilds != 1 {
			t.Fatalf("batch %d: view rebuilt (%d) instead of delta-maintained", i, vinfo.Rebuilds)
		}
	}
	st := s.Stats()
	if st.Views != 1 || st.ViewDeltaBatches != 5 {
		t.Fatalf("stats = views %d, delta batches %d; want 1, 5", st.Views, st.ViewDeltaBatches)
	}
}

// TestViewDifferentialRandomOverService drives randomized insert/delete
// batches through the full service ingest path and checks the maintained
// view against a from-scratch query after every batch.
func TestViewDifferentialRandomOverService(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 2})
	defer s.Close(context.Background())
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterView(store.ViewDef{ID: "tv", Database: "tri"}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	edge := func() relation.Tuple {
		return relation.Ints(int64(rng.Intn(6)), int64(rng.Intn(6)))
	}
	for batch := 0; batch < 30; batch++ {
		var b store.Batch
		for ri := 0; ri < 3; ri++ {
			m := store.Mutation{Relation: ri}
			for k := rng.Intn(3); k > 0; k-- {
				m.Inserts = append(m.Inserts, edge())
			}
			for k := rng.Intn(2); k > 0; k-- {
				m.Deletes = append(m.Deletes, edge())
			}
			if len(m.Inserts)+len(m.Deletes) > 0 {
				b = append(b, m)
			}
		}
		if len(b) == 0 || b.Tuples() == 0 {
			continue
		}
		if _, err := s.Ingest(context.Background(), "tri", b); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		rep, err := s.Query(context.Background(), Request{Database: "tri"})
		if err != nil {
			t.Fatal(err)
		}
		_, result, err := s.ViewResult("tv")
		if err != nil {
			t.Fatal(err)
		}
		if !result.Equal(rep.Result) {
			t.Fatalf("batch %d: view diverged:\nview:      %s\nrecompute: %s",
				batch, sortedTuples(result), sortedTuples(rep.Result))
		}
	}
}

// TestHTTPViewSession is the end-to-end HTTP lifecycle, including the
// delete-batch path: ingest deletes through POST /v1/ingest and assert the
// served view result shrinks accordingly.
func TestHTTPViewSession(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 2})
	defer s.Close(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decode := func(resp *http.Response, want int, v any) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != want {
			var e errorResponse
			_ = json.NewDecoder(resp.Body).Decode(&e)
			t.Fatalf("status %d, want %d (%+v)", resp.StatusCode, want, e)
		}
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatal(err)
			}
		}
	}

	decode(post("/v1/databases", map[string]any{
		"name": "tri",
		"relations": []map[string]any{
			{"attrs": []string{"A", "B"}, "tuples": [][]int64{{0, 1}, {10, 11}}},
			{"attrs": []string{"B", "C"}, "tuples": [][]int64{{1, 2}, {11, 12}}},
			{"attrs": []string{"C", "A"}, "tuples": [][]int64{{2, 0}, {12, 10}}},
		},
	}), http.StatusCreated, nil)

	var vinfo ViewInfo
	decode(post("/v1/views", map[string]any{"id": "tv", "database": "tri"}), http.StatusCreated, &vinfo)
	if vinfo.ResultCount != 2 {
		t.Fatalf("initial view result = %d, want 2 triangles", vinfo.ResultCount)
	}
	// Duplicate id conflicts; unknown database 404s; bad id 400s.
	decode(post("/v1/views", map[string]any{"id": "tv", "database": "tri"}), http.StatusConflict, nil)
	decode(post("/v1/views", map[string]any{"id": "tv2", "database": "nope"}), http.StatusNotFound, nil)
	decode(post("/v1/views", map[string]any{"id": "bad name!", "database": "tri"}), http.StatusBadRequest, nil)

	// Delete one triangle's edges through the full HTTP ingest path: the
	// view's served result must shrink from 2 tuples to 1.
	var ing IngestResult
	decode(post("/v1/ingest", map[string]any{
		"database": "tri",
		"mutations": []map[string]any{
			{"relation": 0, "deletes": [][]int64{{10, 11}}},
			{"relation": 1, "deletes": [][]int64{{11, 12}}},
			{"relation": 2, "deletes": [][]int64{{12, 10}}},
		},
	}), http.StatusOK, &ing)
	if ing.Deleted != 3 || ing.ViewsMaintained != 1 {
		t.Fatalf("ingest = %+v, want 3 deletes into 1 view", ing)
	}

	resp, err := http.Get(srv.URL + "/v1/views/tv")
	if err != nil {
		t.Fatal(err)
	}
	var view viewResponse
	decode(resp, http.StatusOK, &view)
	if view.ResultCount != 1 || view.Result == nil || view.Result.Len() != 1 {
		t.Fatalf("view after delete batch = %+v (result %v), want exactly 1 tuple", view.ViewInfo, view.Result)
	}
	if view.DeltaBatches != 1 || view.TuplesIn != 3 {
		t.Fatalf("view stats = %+v, want 1 delta batch with 3 tuples in", view.ViewInfo)
	}

	// GET /v1/views lists it; DELETE drops it; a second DELETE 404s.
	resp, err = http.Get(srv.URL + "/v1/views")
	if err != nil {
		t.Fatal(err)
	}
	var list []ViewInfo
	decode(resp, http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != "tv" {
		t.Fatalf("view list = %+v", list)
	}

	// Satellite check: /v1/stats surfaces the durable and coherence counters
	// at the top level.
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	decode(resp, http.StatusOK, &stats)
	for _, field := range []string{"wal_records", "snapshots", "invalidations", "views", "view_delta_batches"} {
		if _, ok := stats[field]; !ok {
			t.Errorf("/v1/stats missing %q", field)
		}
	}
	if stats["wal_records"].(float64) < 1 {
		t.Errorf("wal_records = %v, want >= 1", stats["wal_records"])
	}
	if stats["views"].(float64) != 1 {
		t.Errorf("views = %v, want 1", stats["views"])
	}

	// The Prometheus exposition carries the joind_view_* series.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := raw.String()
	for _, series := range []string{
		"joind_views_registered 1",
		"joind_view_delta_batches_total 1",
		"joind_view_delta_tuples_in_total 3",
		"joind_view_full_rebuilds_total 1",
		"joind_view_maintenance_seconds_count 1",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics exposition missing %q", series)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/views/tv", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decode(resp, http.StatusNoContent, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decode(resp, http.StatusNotFound, nil)
}

func TestViewPersistsThroughRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 2})
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterView(store.ViewDef{ID: "tv", Database: "tri", MaxTuples: 10_000}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), "tri", triBatch(1, -1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart: the definition is recovered from the store, the state rebuilt
	// from the recovered catalog, and maintenance continues.
	s2 := newStoreService(t, dir, Config{Workers: 2})
	defer s2.Close(context.Background())
	info, err := s2.View("tv")
	if err != nil {
		t.Fatal(err)
	}
	if info.Database != "tri" || info.MaxTuples != 10_000 {
		t.Fatalf("recovered view = %+v", info)
	}
	if info.ResultCount != 2 {
		t.Fatalf("recovered view holds %d tuples, want 2", info.ResultCount)
	}
	if _, err := s2.Ingest(context.Background(), "tri", triBatch(2, 0)); err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	_, result, err := s2.ViewResult("tv")
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(rep.Result) {
		t.Fatalf("recovered view diverged:\nview:      %s\nrecompute: %s",
			sortedTuples(result), sortedTuples(rep.Result))
	}
}

// TestViewBudgetAbortRebuildsNotFails: a view whose maintenance budget is
// absurdly small aborts with ErrViewBudget, is rebuilt from the post-batch
// catalog, and the ingest that triggered it still succeeds.
func TestViewBudgetAbortRebuildsNotFails(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 2})
	defer s.Close(context.Background())
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterView(store.ViewDef{ID: "tv", Database: "tri", MaxTuples: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Ingest(context.Background(), "tri", triBatch(1, -1))
	if err != nil {
		t.Fatalf("ingest must not fail on view budget: %v", err)
	}
	if res.ViewsMaintained != 1 {
		t.Fatalf("views maintained = %d", res.ViewsMaintained)
	}
	info, result, err := s.ViewResult("tv")
	if err != nil {
		t.Fatalf("view should have been rebuilt, not left stale: %v", err)
	}
	if info.BudgetAborts < 1 {
		t.Fatalf("BudgetAborts = %d, want >= 1", info.BudgetAborts)
	}
	if info.Rebuilds < 2 {
		t.Fatalf("Rebuilds = %d, want >= 2 (registration + abort repair)", info.Rebuilds)
	}
	if !strings.Contains(info.LastError, "view maintenance budget") {
		t.Fatalf("LastError = %q, want the ErrViewBudget message", info.LastError)
	}
	rep, err := s.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(rep.Result) {
		t.Fatalf("rebuilt view diverged:\nview:      %s\nrecompute: %s",
			sortedTuples(result), sortedTuples(rep.Result))
	}
	if s.Stats().ViewRebuilds < 2 {
		t.Fatalf("service ViewRebuilds = %d, want >= 2", s.Stats().ViewRebuilds)
	}
}

// TestConcurrentIngestQueriesAndViewReads is the -race certificate for the
// view path: ingest batches, point queries, view result reads, and stats
// scrapes all run concurrently, and afterwards the view equals a
// from-scratch recompute.
func TestConcurrentIngestQueriesAndViewReads(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 4})
	defer s.Close(context.Background())
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterView(store.ViewDef{ID: "tv", Database: "tri"}); err != nil {
		t.Fatal(err)
	}
	const batches = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= batches; i++ {
			if _, err := s.Ingest(context.Background(), "tri", triBatch(i, i-2)); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch w {
				case 0:
					if _, err := s.Query(context.Background(), Request{Database: "tri"}); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				case 1:
					if _, _, err := s.ViewResult("tv"); err != nil && !errors.Is(err, ErrViewStale) {
						t.Errorf("view read: %v", err)
						return
					}
				default:
					_ = s.Stats()
					_ = s.Views()
				}
			}
		}(w)
	}
	// Wait for the ingester, then stop the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if s.Stats().Ingests >= batches {
			break
		}
		select {
		case <-done:
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	close(stop)
	<-done

	rep, err := s.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	_, result, err := s.ViewResult("tv")
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(rep.Result) {
		t.Fatalf("view diverged after concurrent run:\nview:      %s\nrecompute: %s",
			sortedTuples(result), sortedTuples(rep.Result))
	}
}

// Service-level crash harness: like the store's, but with a registered view.
// The child attaches the store (recovering the view), ingests one batch with
// a crash failpoint armed, and dies; the parent recovers in-process and
// asserts the rebuilt view exactly matches a from-scratch join of whatever
// catalog state recovery produced (pre- or post-batch — the store harness
// already pins which are legal).

const viewCrashExit = 7

func TestViewCrashChild(t *testing.T) {
	if os.Getenv("SERVICE_CRASH_CHILD") != "1" {
		t.Skip("not a crash-harness child")
	}
	if err := failpoint.EnableFromEnv("SERVICE_CRASH_FAILPOINTS"); err != nil {
		fmt.Fprintln(os.Stderr, "child: bad failpoint spec:", err)
		os.Exit(3)
	}
	dir := os.Getenv("SERVICE_CRASH_DIR")
	var step int64
	fmt.Sscanf(os.Getenv("SERVICE_CRASH_STEP"), "%d", &step)
	st, err := store.Open(dir, store.Options{CheckpointEvery: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: open:", err)
		os.Exit(3)
	}
	s := New(Config{Workers: 1})
	if err := s.AttachStore(st); err != nil {
		fmt.Fprintln(os.Stderr, "child: attach:", err)
		os.Exit(3)
	}
	if step == 0 {
		// Setup run: seed catalog + view, close cleanly.
		r := relation.New(relation.MustSchema("A", "B"))
		sr := relation.New(relation.MustSchema("B", "C"))
		tr := relation.New(relation.MustSchema("C", "A"))
		e0, e1, e2 := triEdges(0)
		r.MustInsert(e0)
		sr.MustInsert(e1)
		tr.MustInsert(e2)
		if _, err := s.Register("tri", relation.MustDatabase(r, sr, tr)); err != nil {
			fmt.Fprintln(os.Stderr, "child: register:", err)
			os.Exit(3)
		}
		if _, err := s.RegisterView(store.ViewDef{ID: "tv", Database: "tri"}); err != nil {
			fmt.Fprintln(os.Stderr, "child: register view:", err)
			os.Exit(3)
		}
		if err := s.Close(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "child: close:", err)
			os.Exit(3)
		}
		os.Exit(0)
	}
	if _, err := s.Ingest(context.Background(), "tri", triBatch(step, step-2)); err != nil {
		fmt.Fprintln(os.Stderr, "child: ingest:", err)
		os.Exit(3)
	}
	if err := s.Close(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "child: close:", err)
		os.Exit(3)
	}
	os.Exit(0)
}

func TestViewCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec harness; skipped in -short mode")
	}
	dir := t.TempDir()
	runChild := func(step int, failpoints string) int {
		t.Helper()
		cmd := exec.Command(os.Args[0], "-test.run=^TestViewCrashChild$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"SERVICE_CRASH_CHILD=1",
			"SERVICE_CRASH_DIR="+dir,
			fmt.Sprintf("SERVICE_CRASH_STEP=%d", step),
			"SERVICE_CRASH_FAILPOINTS="+failpoints,
		)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			if code := ee.ExitCode(); code == viewCrashExit {
				return code
			}
			t.Fatalf("child (step %d, %q) exited %d:\n%s", step, failpoints, ee.ExitCode(), out)
		}
		t.Fatalf("child failed to run: %v\n%s", err, out)
		return -1
	}

	if code := runChild(0, ""); code != 0 {
		t.Fatalf("setup child exited %d", code)
	}
	sites := []string{
		store.FailpointWALAppend + "=exit:7",
		store.FailpointWALSync + "=exit:7",
		store.FailpointApply + "=exit:7",
	}
	for step := 1; step <= 6; step++ {
		site := sites[(step-1)%len(sites)]
		if code := runChild(step, site); code != viewCrashExit {
			t.Fatalf("step %d (%s): child exited %d, want %d", step, site, code, viewCrashExit)
		}
		// Recover in-process: the view must be re-registered, fresh, and
		// exactly consistent with the recovered catalog.
		s := newStoreService(t, dir, Config{Workers: 1})
		info, result, err := s.ViewResult("tv")
		if err != nil {
			t.Fatalf("step %d (%s): view after recovery: %v", step, site, err)
		}
		if info.Stale {
			t.Fatalf("step %d: recovered view is stale", step)
		}
		rep, err := s.Query(context.Background(), Request{Database: "tri"})
		if err != nil {
			t.Fatal(err)
		}
		if !result.Equal(rep.Result) {
			t.Fatalf("step %d (%s): recovered view diverged:\nview:      %s\nrecompute: %s",
				step, site, sortedTuples(result), sortedTuples(rep.Result))
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatalf("step %d: close: %v", step, err)
		}
	}
}

// TestViewMutationsGated: view registration and drop refuse while not ready.
func TestViewMutationsGated(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	s.SetReady(false)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	raw, _ := json.Marshal(map[string]any{"id": "tv", "database": "tri"})
	resp, err := http.Post(srv.URL+"/v1/views", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("view registration while not ready = %d, want 503", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/views/tv", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("view drop while not ready = %d, want 503", resp.StatusCode)
	}
}
