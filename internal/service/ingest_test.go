package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/store"
)

// triEdges returns the three directed edges of triangle i over fresh nodes,
// for R(A,B), S(B,C), T(C,A): joining R ⋈ S ⋈ T yields one row per triangle.
func triEdges(i int64) (r, s, t relation.Tuple) {
	a, b, c := 10*i, 10*i+1, 10*i+2
	return relation.Ints(a, b), relation.Ints(b, c), relation.Ints(c, a)
}

// triDB builds {R(A,B), S(B,C), T(C,A)} seeded with triangle 0.
func triDB(t *testing.T) *relation.Database {
	t.Helper()
	r := relation.New(relation.MustSchema("A", "B"))
	s := relation.New(relation.MustSchema("B", "C"))
	tt := relation.New(relation.MustSchema("C", "A"))
	e0, e1, e2 := triEdges(0)
	r.MustInsert(e0)
	s.MustInsert(e1)
	tt.MustInsert(e2)
	return relation.MustDatabase(r, s, tt)
}

// triBatch inserts triangle next and (when prev >= 0) deletes triangle prev,
// as one atomic batch.
func triBatch(next, prev int64) store.Batch {
	r, s, t := triEdges(next)
	b := store.Batch{
		{Relation: 0, Inserts: []relation.Tuple{r}},
		{Relation: 1, Inserts: []relation.Tuple{s}},
		{Relation: 2, Inserts: []relation.Tuple{t}},
	}
	if prev >= 0 {
		r, s, t := triEdges(prev)
		b[0].Deletes = []relation.Tuple{r}
		b[1].Deletes = []relation.Tuple{s}
		b[2].Deletes = []relation.Tuple{t}
	}
	return b
}

// newStoreService builds a service with a durable store in dir.
func newStoreService(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIngestRoundTripAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 2})
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	// Warm the plan cache, then mutate: the cached plan must be dropped.
	if _, err := s.Query(context.Background(), Request{Database: "tri"}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Ingest(context.Background(), "tri", triBatch(1, -1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 3 || res.Deleted != 0 || res.Tuples != 6 {
		t.Fatalf("ingest result = %+v, want +3/-0, 6 tuples", res)
	}
	if res.PlansInvalidated < 1 {
		t.Fatalf("PlansInvalidated = %d, want >= 1", res.PlansInvalidated)
	}
	rep, err := s.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Len() != 2 {
		t.Fatalf("triangles after ingest = %d, want 2", rep.Result.Len())
	}
	if rep.PlanCacheHit {
		t.Fatal("query after ingest hit a stale cached plan")
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh service over the same data directory recovers the
	// registered catalog with the ingested batch folded in.
	s2 := newStoreService(t, dir, Config{Workers: 2})
	defer s2.Close(context.Background())
	dbs := s2.Databases()
	if len(dbs) != 1 || dbs[0].Name != "tri" || dbs[0].Tuples != 6 {
		t.Fatalf("recovered catalog = %+v, want tri with 6 tuples", dbs)
	}
	rep, err = s2.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Len() != 2 {
		t.Fatalf("triangles after recovery = %d, want 2", rep.Result.Len())
	}
}

func TestIngestWithoutStoreIsReadOnly(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), "tri", triBatch(1, -1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
}

func TestIngestErrors(t *testing.T) {
	s := newStoreService(t, t.TempDir(), Config{Workers: 1})
	defer s.Close(context.Background())
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), "nope", triBatch(1, -1)); !errors.Is(err, ErrUnknownDatabase) {
		t.Fatalf("unknown db: %v", err)
	}
	bad := store.Batch{{Relation: 9, Inserts: []relation.Tuple{relation.Ints(1, 2)}}}
	if _, err := s.Ingest(context.Background(), "tri", bad); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad relation index: %v", err)
	}
	if _, err := s.Ingest(context.Background(), "tri", nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestRegisterPersistsThroughStore(t *testing.T) {
	s := newStoreService(t, t.TempDir(), Config{Workers: 1})
	defer s.Close(context.Background())
	// Store name rules apply when a store is attached.
	if _, err := s.Register("bad name!", triDB(t)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad store name: %v", err)
	}
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("tri", triDB(t)); !errors.Is(err, ErrDuplicateDatabase) {
		t.Fatalf("duplicate: %v", err)
	}
	if got := s.Store().Names(); len(got) != 1 || got[0] != "tri" {
		t.Fatalf("store names = %v", got)
	}
}

// TestConcurrentQueriesDuringIngest is the snapshot-consistency criterion:
// each ingest batch atomically replaces triangle k with triangle k+1, so
// every concurrent query must see exactly one triangle — a torn view (the
// insert without the delete, or vice versa) would show zero or two. Run
// with -race to also catch any in-place mutation of shared relations.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	s := newStoreService(t, t.TempDir(), Config{Workers: 4})
	defer s.Close(context.Background())
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	const batches = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < batches; i++ {
			if _, err := s.Ingest(context.Background(), "tri", triBatch(i+1, i)); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep, err := s.Query(context.Background(), Request{Database: "tri"})
				if err != nil {
					t.Error(err)
					return
				}
				if n := rep.Result.Len(); n != 1 {
					t.Errorf("query saw %d triangles, want exactly 1 (torn ingest view)", n)
					return
				}
			}
		}()
	}
	// Writer finishes, then readers stop.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	go func() {
		// Close readers once the writer goroutine's work is visible: poll
		// the ingest counter.
		for s.ingests.Load() < batches {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	<-done
	rep, err := s.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Len() != 1 {
		t.Fatalf("final triangles = %d, want 1", rep.Result.Len())
	}
}

func TestReadinessGate(t *testing.T) {
	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, strings.TrimSpace(b.String())
	}
	if code, body := get("/healthz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("ready /healthz = %d %q", code, body)
	}
	s.SetReady(false)
	for _, path := range []string{"/healthz", "/readyz"} {
		if code, body := get(path); code != http.StatusServiceUnavailable || body != "recovering" {
			t.Errorf("not-ready %s = %d %q, want 503 recovering", path, code, body)
		}
	}
	if code, body := get("/livez"); code != http.StatusOK || body != "ok" {
		t.Errorf("not-ready /livez = %d %q, want 200 ok (liveness is unconditional)", code, body)
	}
	s.SetReady(true)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("re-ready /readyz = %d", code)
	}
}

// TestCloseDrainsQueriesBeforeStoreClose pins the shutdown ordering: Close
// must wait for in-flight queries to finish before it closes the store.
func TestCloseDrainsQueriesBeforeStoreClose(t *testing.T) {
	s := newStoreService(t, t.TempDir(), Config{Workers: 1})
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	// Occupy the only worker slot, standing in for a long query.
	_, release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- s.Close(context.Background()) }()
	// While the "query" is in flight, Close must not have touched the
	// store: it still answers.
	time.Sleep(20 * time.Millisecond)
	if s.Ready() {
		t.Error("service still ready during shutdown")
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a query was in flight", err)
	default:
	}
	if _, err := s.Store().Current("tri"); err != nil {
		t.Fatalf("store closed before in-flight query finished: %v", err)
	}
	release()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the last query drained")
	}
	if _, err := s.Store().Current("tri"); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("store not closed after drain: %v", err)
	}
}

func TestCloseDrainTimeout(t *testing.T) {
	s := newStoreService(t, t.TempDir(), Config{Workers: 1})
	_, release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close with stuck query = %v, want deadline error", err)
	}
}

func TestHTTPIngestSession(t *testing.T) {
	dir := t.TempDir()
	s := newStoreService(t, dir, Config{Workers: 2})
	defer s.Close(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path, body string) (int, map[string]any) {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode, out
	}

	code, _ := post("/v1/databases", `{"name":"tri","relations":[
		{"attrs":["A","B"],"tuples":[[0,1]]},
		{"attrs":["B","C"],"tuples":[[1,2]]},
		{"attrs":["C","A"],"tuples":[[2,0]]}]}`)
	if code != http.StatusCreated {
		t.Fatalf("register = %d", code)
	}

	code, out := post("/v1/ingest", `{"database":"tri","mutations":[
		{"relation":0,"inserts":[[10,11]]},
		{"relation":1,"inserts":[[11,12]]},
		{"relation":2,"inserts":[[12,10]]}]}`)
	if code != http.StatusOK {
		t.Fatalf("ingest = %d: %v", code, out)
	}
	if out["inserted"].(float64) != 3 || out["tuples"].(float64) != 6 {
		t.Fatalf("ingest response = %v", out)
	}

	code, out = post("/v1/query", `{"database":"tri","include_result":true}`)
	if code != http.StatusOK {
		t.Fatalf("query = %d: %v", code, out)
	}
	if out["result_count"].(float64) != 2 {
		t.Fatalf("result_count = %v, want 2 triangles", out["result_count"])
	}

	// Deletes apply before inserts; effective counts reflect presence change.
	code, out = post("/v1/ingest", `{"database":"tri","mutations":[
		{"relation":0,"deletes":[[10,11]]}]}`)
	if code != http.StatusOK || out["deleted"].(float64) != 1 {
		t.Fatalf("delete ingest = %d %v", code, out)
	}

	if code, out = post("/v1/ingest", `{"database":"nope","mutations":[{"relation":0,"inserts":[[1,2]]}]}`); code != http.StatusNotFound {
		t.Fatalf("unknown db ingest = %d %v", code, out)
	}
	if code, out = post("/v1/ingest", `{"database":"tri","mutations":[{"relation":7,"inserts":[[1,2]]}]}`); code != http.StatusBadRequest {
		t.Fatalf("bad relation ingest = %d %v", code, out)
	}

	// The stats endpoint exposes store counters.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Store == nil || stats.Store.WALAppends != 2 || stats.Ingests != 2 {
		t.Fatalf("stats store = %+v, ingests = %d", stats.Store, stats.Ingests)
	}
}

func TestHTTPIngestReadOnly(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"database":"tri","mutations":[{"relation":0,"inserts":[[5,6]]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only ingest = %d, want 403", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "read_only" {
		t.Fatalf("kind = %q, want read_only", e.Kind)
	}
}

func TestIngestMetricsExposition(t *testing.T) {
	s := newStoreService(t, t.TempDir(), Config{Workers: 1})
	defer s.Close(context.Background())
	if _, err := s.Register("tri", triDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), "tri", triBatch(1, -1)); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	s.Metrics().WriteText(&b)
	text := b.String()
	for _, series := range []string{
		`joind_ingests_total{status="ok"} 1`,
		"joind_wal_appends_total 1",
		"joind_wal_bytes_total",
		"joind_snapshot_writes_total",
		"joind_snapshot_checkpoints_total",
		"joind_recovery_replayed_records 0",
		"joind_ingest_duration_seconds_count 1",
		"joind_plan_cache_invalidations_total",
		"joind_store_attached 1",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}
