package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/workload"
)

func triangleDB(t *testing.T) *relation.Database {
	t.Helper()
	db, err := workload.TriangleSpec{Nodes: 12, Edges: 40}.TriangleDatabase(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRegisterAndCatalog(t *testing.T) {
	s := New(Config{Workers: 2})
	info, err := s.Register("tri", triangleDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if info.Relations != 3 || info.Acyclic || info.Fingerprint == "" {
		t.Errorf("info = %+v", info)
	}
	if _, err := s.Register("tri", triangleDB(t)); !errors.Is(err, ErrDuplicateDatabase) {
		t.Errorf("duplicate register: %v", err)
	}
	if _, err := s.Register("", triangleDB(t)); err == nil {
		t.Error("empty name accepted")
	}
	dbs := s.Databases()
	if len(dbs) != 1 || dbs[0].Name != "tri" {
		t.Errorf("catalog = %+v", dbs)
	}
}

// TestRepeatQueryIsPlanCacheHit is the acceptance criterion: a repeated
// query on the same scheme must be a plan-cache hit — no optimizer search —
// verified through the stats counters.
func TestRepeatQueryIsPlanCacheHit(t *testing.T) {
	s := New(Config{Workers: 2})
	db := triangleDB(t)
	if _, err := s.Register("tri", db); err != nil {
		t.Fatal(err)
	}
	rep1, err := s.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.PlanCacheHit {
		t.Error("first query reported a cache hit")
	}
	rep2, err := s.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.PlanCacheHit {
		t.Error("second query was not a cache hit")
	}
	if !rep2.Result.Equal(db.Join()) {
		t.Error("cached-plan result != ⋈D")
	}
	st := s.Stats()
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 1 {
		t.Errorf("plan cache stats = %+v, want 1 miss then 1 hit", st.PlanCache)
	}
	if st.Queries != 2 || st.Succeeded != 2 {
		t.Errorf("stats = %+v, want 2 queries, 2 succeeded", st)
	}

	// A second name over the SAME scheme shares the cached plan: the
	// fingerprint, not the name, is the key.
	if _, err := s.Register("tri2", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	rep3, err := s.Query(context.Background(), Request{Database: "tri2"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.PlanCacheHit {
		t.Error("same-scheme database did not share the cached plan")
	}
}

func TestQueryUnknownDatabaseAndBadStrategy(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Query(context.Background(), Request{Database: "nope"}); !errors.Is(err, ErrUnknownDatabase) {
		t.Errorf("unknown db: %v", err)
	}
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "bogus"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad strategy: %v", err)
	}
}

func TestQueueTimeoutRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, QueueTimeout: 20 * time.Millisecond})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	s.slots <- struct{}{} // occupy the only worker slot
	defer func() { <-s.slots }()
	_, err := s.Query(context.Background(), Request{Database: "tri"})
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, ErrQueueTimeout) {
		t.Errorf("err = %v, want queue timeout wrapping overloaded", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

func TestQueueDepthRejectsImmediately(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, QueueTimeout: time.Second})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	s.slots <- struct{}{} // occupy the worker
	defer func() { <-s.slots }()
	s.queued.Add(1) // simulate a waiter already filling the queue
	defer s.queued.Add(-1)
	start := time.Now()
	_, err := s.Query(context.Background(), Request{Database: "tri"})
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("err = %v, want overloaded", err)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Errorf("queue-full rejection waited %s; should be immediate", waited)
	}
}

func TestGlobalBudgetCarving(t *testing.T) {
	s := New(Config{Workers: 2, GlobalMaxTuples: 10_000})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	// Fair share is 10000/2 = 5000 — plenty for the triangle join.
	rep, err := s.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Produced == 0 {
		t.Error("governed query reported zero produced tuples")
	}
	if rem := s.Stats().GlobalTuplesRemaining; rem != 10_000 {
		t.Errorf("budget not returned: remaining %d", rem)
	}
	// Drain the budget; the next query must be rejected, not crash.
	s.budgetRemaining.Store(10)
	if _, err := s.Query(context.Background(), Request{Database: "tri"}); !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, ErrOverloaded) {
		t.Errorf("err = %v, want budget-exhausted overload", err)
	}
}

func TestPerQueryBudgetAbort(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	// An explicit strategy with an absurd budget aborts hard with the
	// governor's typed error (no ladder for explicit strategies).
	_, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "cpf-expression", MaxTuples: 1})
	if !errors.Is(err, govern.ErrTupleBudget) {
		t.Errorf("err = %v, want tuple budget", err)
	}
	if st := s.Stats(); st.Aborted != 1 {
		t.Errorf("aborted = %d, want 1", st.Aborted)
	}
}

func TestContextCancellationPropagates(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Query(ctx, Request{Database: "tri"}); !errors.Is(err, govern.ErrCanceled) {
		t.Errorf("err = %v, want canceled", err)
	}
}

// TestConcurrentQueriesUnderRace is the second acceptance criterion: ≥ 32
// concurrent queries through the HTTP handler with a global tuple budget
// and a small pool; every response must be 200 or 429 (overload is
// rejected, never a crash), with at least one of each. To make overload
// deterministic rather than timing-dependent, the test holds every worker
// slot until admission control has demonstrably rejected queries, then
// releases the pool so the queued queries complete.
func TestConcurrentQueriesUnderRace(t *testing.T) {
	s := New(Config{
		Workers:         2,
		QueueDepth:      4,
		QueueTimeout:    5 * time.Second,
		GlobalMaxTuples: 100_000,
	})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Stall the pool: with both slots held, arrivals queue (up to
	// QueueDepth) or are rejected immediately.
	for i := 0; i < s.cfg.Workers; i++ {
		s.slots <- struct{}{}
	}

	const queries = 40
	var ok200, ok429, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := bytes.NewReader([]byte(`{"database":"tri"}`))
			resp, err := http.Post(srv.URL+"/v1/query", "application/json", body)
			if err != nil {
				other.Add(1)
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				ok429.Add(1)
			default:
				other.Add(1)
				var e errorResponse
				_ = json.NewDecoder(resp.Body).Decode(&e)
				t.Errorf("unexpected status %d: %+v", resp.StatusCode, e)
			}
		}()
	}

	// Wait until overload has actually been rejected, then unstall the pool
	// so queued queries (they wait up to QueueTimeout) run to completion.
	deadline := time.Now().Add(10 * time.Second)
	for s.rejected.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no query was rejected while the pool was stalled")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < s.cfg.Workers; i++ {
		<-s.slots
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor 429", other.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("no query succeeded")
	}
	if ok429.Load() == 0 {
		t.Fatal("overload was never rejected with 429")
	}
	t.Logf("200s: %d, 429s: %d", ok200.Load(), ok429.Load())
	st := s.Stats()
	if st.Queries+st.Rejected < queries {
		t.Errorf("stats account for %d queries, want ≥ %d", st.Queries+st.Rejected, queries)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("leaked slots: in_flight %d, queued %d", st.InFlight, st.Queued)
	}
	if st.GlobalTuplesRemaining != 100_000 {
		t.Errorf("leaked budget: remaining %d", st.GlobalTuplesRemaining)
	}
}

func TestHTTPRegisterQueryStatsSession(t *testing.T) {
	s := New(Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// healthz
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Register the worked triangle example from docs/SERVICE.md.
	reg := `{"name":"triangle","relations":[
		{"attrs":["A","B"],"tuples":[[1,2],[2,3],[3,1]]},
		{"attrs":["B","C"],"tuples":[[1,2],[2,3],[3,1]]},
		{"attrs":["C","A"],"tuples":[[1,2],[2,3],[3,1]]}]}`
	resp, err = http.Post(srv.URL+"/v1/databases", "application/json", bytes.NewReader([]byte(reg)))
	if err != nil {
		t.Fatal(err)
	}
	var info DatabaseInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || info.Name != "triangle" || info.Tuples != 9 {
		t.Fatalf("register: %d %+v", resp.StatusCode, info)
	}

	// Query twice; the second must be a cache hit and the result nonempty.
	query := func() queryResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/query", "application/json",
			bytes.NewReader([]byte(`{"database":"triangle","include_result":true}`)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}
	q1, q2 := query(), query()
	if q1.ResultCount != 3 || q1.Result == nil || q1.Result.Len() != 3 {
		t.Errorf("first query = %+v, want the 3 directed triangles", q1)
	}
	if q1.CacheHit || !q2.CacheHit {
		t.Errorf("cache hits: first %v, second %v; want false, true", q1.CacheHit, q2.CacheHit)
	}

	// Stats reflect the session.
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Queries != 2 || st.PlanCache.Hits != 1 {
		t.Errorf("stats = %+v, want 2 queries, 1 plan-cache hit", st)
	}

	// Error mappings.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"database":"missing"}`, http.StatusNotFound},
		{`{"database":"triangle","strategy":"bogus"}`, http.StatusBadRequest},
		{`{"database":"triangle","strategy":"cpf-expression","max_tuples":1}`, http.StatusUnprocessableEntity},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("body %q → %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	// Duplicate registration → 409.
	resp, err = http.Post(srv.URL+"/v1/databases", "application/json", bytes.NewReader([]byte(reg)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate register → %d, want 409", resp.StatusCode)
	}
}

func TestResultTruncation(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"database":"tri","include_result":true,"max_result_tuples":2}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Result != nil && qr.Result.Len() > 2 {
		t.Errorf("result echoed %d tuples, want ≤ 2", qr.Result.Len())
	}
	if qr.ResultCount > 2 && !qr.ResultTruncated {
		t.Error("truncation not flagged")
	}
}

func TestStrategyVariantsServeCorrectResults(t *testing.T) {
	s := New(Config{Workers: 2})
	db := triangleDB(t)
	if _, err := s.Register("tri", db); err != nil {
		t.Fatal(err)
	}
	want := db.Join()
	for _, strat := range []string{"", "auto", "program", "cpf-expression", "reduce-then-join", "direct"} {
		rep, err := s.Query(context.Background(), Request{Database: "tri", Strategy: strat})
		if err != nil {
			t.Fatalf("strategy %q: %v", strat, err)
		}
		if !rep.Result.Equal(want) {
			t.Errorf("strategy %q: result != ⋈D", strat)
		}
	}
	// Distinct strategies occupy distinct cache keys.
	if st := s.Stats(); st.PlanCache.Len < 4 {
		t.Errorf("plan cache has %d entries, want ≥ 4 distinct strategies", st.PlanCache.Len)
	}
}

// TestWCOJStrategyOverService: the worst-case-optimal route is selectable
// through the serving layer, its plan (the derived variable order) is
// cached and shared, and concurrent queries over the one cached plan are
// race-clean — each execution carries its own governor and iterators.
func TestWCOJStrategyOverService(t *testing.T) {
	s := New(Config{Workers: 4})
	db := triangleDB(t)
	if _, err := s.Register("tri", db); err != nil {
		t.Fatal(err)
	}
	want := db.Join()
	rep, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "wcoj"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy.String() != "wcoj" {
		t.Errorf("ran %s, want wcoj", rep.Strategy)
	}
	if !rep.Result.Equal(want) {
		t.Error("wcoj result != ⋈D")
	}
	if rep.PlanCacheHit {
		t.Error("first wcoj query reported a cache hit")
	}

	const queries = 12
	var wg sync.WaitGroup
	var hits atomic.Int64
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := s.Query(context.Background(), Request{
				Database: "tri", Strategy: "wcoj", Workers: 1 + i%3,
			})
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if !rep.Result.Equal(want) {
				t.Errorf("query %d: wrong result", i)
			}
			if rep.PlanCacheHit {
				hits.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if hits.Load() != queries {
		t.Errorf("%d/%d concurrent wcoj queries hit the cached plan", hits.Load(), queries)
	}
}

// TestBadStrategyEnumeratesNames: a rejected strategy must tell the caller
// what it could have said — including the wcoj route.
func TestBadStrategyEnumeratesNames(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "bogus"})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	for _, name := range []string{"auto", "program", "cpf-expression", "reduce-then-join", "acyclic", "direct", "wcoj"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %v", name, err)
		}
	}
}
