// Package service is the serving layer over the engine: a catalog of
// registered named databases, a bounded worker pool with admission control
// and queue timeouts, per-query resource limits carved from a configurable
// global tuple budget, and a plan cache keyed by canonical scheme
// fingerprint so repeat schemes skip optimizer search and Algorithm 1/2
// derivation entirely (the paper's Theorems 1–2 are the license: a derived
// program is correct and quasi-optimal for every instance over its scheme).
//
// cmd/joind exposes this over HTTP (see http.go); the package itself is
// transport-agnostic and fully testable in-process.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/store"
)

// Typed service errors; match with errors.Is. ErrQueueTimeout and
// ErrBudgetExhausted wrap ErrOverloaded, so "reject with 429" is one check.
var (
	// ErrOverloaded reports that admission control rejected the query: the
	// queue is full, the queue wait timed out, or the global tuple budget
	// has no headroom. Serve it as HTTP 429.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrQueueTimeout is an ErrOverloaded for a query that waited its full
	// queue timeout without getting a worker slot.
	ErrQueueTimeout = fmt.Errorf("%w: queue wait timed out", ErrOverloaded)
	// ErrBudgetExhausted is an ErrOverloaded for a query that could not
	// carve its tuple budget from the global budget.
	ErrBudgetExhausted = fmt.Errorf("%w: global tuple budget exhausted", ErrOverloaded)
	// ErrUnknownDatabase reports a query against an unregistered name.
	ErrUnknownDatabase = errors.New("service: unknown database")
	// ErrDuplicateDatabase reports a Register with an already-taken name.
	ErrDuplicateDatabase = errors.New("service: database already registered")
	// ErrBadRequest reports a malformed request (e.g. an unknown strategy
	// name). Serve it as HTTP 400.
	ErrBadRequest = errors.New("service: bad request")
	// ErrReadOnly reports an ingest against a service with no durable store
	// attached (joind without -data-dir). Serve it as HTTP 403.
	ErrReadOnly = errors.New("service: no durable store attached (read-only)")
	// ErrUnavailable reports a request the service cannot serve right now:
	// it is still recovering its durable catalog, it is shutting down, or
	// the store refused a mutation (e.g. a poisoned WAL after an fsync
	// failure). Serve it as HTTP 503.
	ErrUnavailable = errors.New("service: unavailable (recovering or shutting down)")
)

// Config sizes the service. The zero value gets sensible defaults from New.
type Config struct {
	// Workers is the number of queries executing concurrently
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth is how many queries may wait for a slot before further
	// arrivals are rejected immediately (default 4×Workers).
	QueueDepth int
	// QueueTimeout bounds how long an admitted-to-queue query waits for a
	// worker slot before being rejected (default 5s).
	QueueTimeout time.Duration
	// PlanCacheSize is the plan cache capacity in entries
	// (default plancache.DefaultCapacity).
	PlanCacheSize int
	// GlobalMaxTuples is the total tuple budget available to in-flight
	// queries; each query reserves its per-query budget from it at
	// admission and returns it on completion (0 = unlimited).
	GlobalMaxTuples int64
	// MaxTuplesPerQuery caps any single query's tuple budget. With a global
	// budget set, it defaults to GlobalMaxTuples/Workers — the fair share —
	// and is also what a query gets when it asks for no explicit limit.
	MaxTuplesPerQuery int64
	// DefaultTimeout is the per-query deadline applied when a request does
	// not set one (0 = none).
	DefaultTimeout time.Duration
	// SearchBudget bounds optimizer search on plan-cache misses
	// (engine Options.Budget; 0 = the optimizer default).
	SearchBudget int64
	// Hybrid tunes the statistics-driven hybrid chooser (engine
	// Options.Hybrid; the zero value selects the chooser defaults).
	Hybrid optimizer.HybridConfig
	// QueryWorkers caps the intra-query parallelism of any single query
	// (engine Options.Workers). The default 1 keeps queries sequential;
	// raising it lets each query run its joins on up to QueryWorkers
	// goroutines. Requests may ask for fewer.
	QueryWorkers int
	// WorkerBudget is the total number of intra-query worker goroutines
	// available across concurrent queries. Parallel queries reserve their
	// worker count from it at admission and return it on completion; when
	// the pool runs low a query is granted fewer workers — down to
	// sequential — rather than rejected. 0 defaults to
	// Workers × QueryWorkers when QueryWorkers > 1 (no degradation under
	// the configured concurrency), and is ignored while QueryWorkers <= 1.
	WorkerBudget int64
	// Tracer, when non-nil, receives every query's finished span tree
	// (obs.Collector is the in-memory implementation; joinrun uses it for
	// -trace). Independent of the Tracer, span trees are also produced
	// whenever the slow-query log is enabled, so slow entries carry their
	// drill-down; with neither configured, queries run with tracing fully
	// off — zero allocation on the hot path.
	Tracer obs.Tracer
	// SlowQueryThreshold enables the bounded in-memory slow-query log:
	// queries whose end-to-end wall time meets the threshold are captured
	// with their span trees and served at GET /v1/slow. 0 disables the log;
	// use a tiny threshold (say time.Nanosecond) to capture every query.
	SlowQueryThreshold time.Duration
	// SlowLogSize bounds the slow-query log's retained entries
	// (default obs.DefaultSlowLogCapacity).
	SlowLogSize int
	// Shards is the number of shards queries scatter across (0 or 1 =
	// sharding off). With Shards > 1 every registered database is
	// hash-partitioned into an in-process shard group (internal/shard) and
	// /v1/query routes through scatter-gather execution whenever the
	// plan's cleanliness analysis admits it.
	Shards int
	// ShardBroadcastThreshold is the relation size below which a relation
	// is broadcast to every shard instead of hash-partitioned (0 takes
	// shard.DefaultBroadcastThreshold; negative = never broadcast by
	// size). Only meaningful with Shards > 1.
	ShardBroadcastThreshold int
	// ShardPeers are remote joind base URLs, one per shard. When set,
	// shard execution fans out over HTTP to these peers instead of running
	// in-process: registrations push each peer its partition and ingest
	// routes each batch's tuples to the owning peers, in WAL order. The
	// peer count overrides Shards.
	ShardPeers []string
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 5 * time.Second
	}
	if cfg.MaxTuplesPerQuery <= 0 && cfg.GlobalMaxTuples > 0 {
		cfg.MaxTuplesPerQuery = cfg.GlobalMaxTuples / int64(cfg.Workers)
		if cfg.MaxTuplesPerQuery < 1 {
			cfg.MaxTuplesPerQuery = 1
		}
	}
	if cfg.QueryWorkers <= 0 {
		cfg.QueryWorkers = 1
	}
	if cfg.WorkerBudget <= 0 && cfg.QueryWorkers > 1 {
		cfg.WorkerBudget = int64(cfg.Workers) * int64(cfg.QueryWorkers)
	}
	if len(cfg.ShardPeers) > 0 {
		cfg.Shards = len(cfg.ShardPeers)
	}
	if cfg.Shards > 1 && cfg.ShardBroadcastThreshold == 0 {
		cfg.ShardBroadcastThreshold = shard.DefaultBroadcastThreshold
	}
	return cfg
}

// DatabaseInfo describes one catalog entry.
type DatabaseInfo struct {
	Name        string `json:"name"`
	Relations   int    `json:"relations"`
	Tuples      int    `json:"tuples"`
	Fingerprint string `json:"fingerprint"`
	Acyclic     bool   `json:"acyclic"`
}

// catalogEntry is a registered database with its precomputed scheme facts.
// The instance pointer is swapped atomically by Ingest (copy-on-write): a
// query loads it once and keeps that consistent snapshot for its whole
// execution, while the scheme facts (fingerprint, acyclicity) never change —
// ingest mutates tuples, not schemes.
type catalogEntry struct {
	name        string
	db          atomic.Pointer[relation.Database]
	fingerprint string
	acyclic     bool

	// sketches are the per-relation statistics behind the hybrid strategy
	// chooser: built at registration, maintained incrementally on the
	// WAL-ordered ingest path, and versioned so statistics-dependent cached
	// plans are keyed to the instance they were derived from. Never nil.
	sketches *optimizer.DBSketches

	// group is the database's sharded layout, nil when sharding is off.
	// It is rebased (never mutated) on ingest under ingestMu; one load
	// pins a consistent partitioned + unsharded snapshot pair.
	group atomic.Pointer[shard.Group]

	// ingestMu serializes the store append + catalog swap so the visible
	// catalog never lags behind a later-acknowledged batch.
	ingestMu sync.Mutex
}

// Request is one query against a registered database.
type Request struct {
	// Database is the catalog name to join.
	Database string
	// Strategy names the execution strategy ("" = auto).
	Strategy string
	// MaxTuples caps this query's generated tuples. 0 takes the service
	// default (the fair share of the global budget, if one is set); a
	// nonzero ask is clamped to Config.MaxTuplesPerQuery.
	MaxTuples int64
	// MaxIntermediateTuples caps any single operator's output (0 = none).
	MaxIntermediateTuples int64
	// Timeout is this query's deadline (0 = Config.DefaultTimeout).
	Timeout time.Duration
	// Indexed runs derived programs through the index-sharing executor.
	Indexed bool
	// Workers asks for intra-query parallelism: the number of goroutines
	// this query's joins may use. 0 takes the service default
	// (Config.QueryWorkers); a nonzero ask is clamped to it. The grant may
	// be lower still when the shared worker budget is depleted — the query
	// then degrades toward sequential execution instead of being rejected.
	Workers int
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Databases int   `json:"databases"`
	Workers   int   `json:"workers"`
	InFlight  int64 `json:"in_flight"`
	Queued    int64 `json:"queued"`
	// Queries counts admitted executions; Rejected counts admission
	// failures (queue full, queue timeout, budget exhausted).
	Queries   int64 `json:"queries"`
	Succeeded int64 `json:"succeeded"`
	Rejected  int64 `json:"rejected"`
	// Aborted counts queries that hit their own resource limits
	// (tuple budget, deadline, cancellation).
	Aborted int64 `json:"aborted"`
	Failed  int64 `json:"failed"`
	// Degraded counts cached-plan executions that blew their budget and
	// fell back to the engine's governed degradation ladder.
	Degraded int64 `json:"degraded"`
	// QueryWorkers is the configured per-query parallelism cap.
	QueryWorkers int `json:"query_workers"`
	// WorkersDegraded counts queries granted fewer intra-query workers
	// than they asked for because the worker budget was depleted.
	WorkersDegraded int64 `json:"workers_degraded"`
	// WorkerBudgetRemaining is the unreserved part of the intra-query
	// worker pool (-1 when parallelism is off or the pool is unlimited).
	WorkerBudgetRemaining int64 `json:"worker_budget_remaining"`
	// GlobalTuplesRemaining is the unreserved part of the global budget
	// (-1 when no global budget is configured).
	GlobalTuplesRemaining int64           `json:"global_tuples_remaining"`
	PlanCache             plancache.Stats `json:"plan_cache"`
	// Ready reports whether the service is serving (false during recovery
	// and shutdown; mirrors /readyz).
	Ready bool `json:"ready"`
	// Ingests counts acknowledged ingest batches.
	Ingests int64 `json:"ingests"`
	// WALRecords, Snapshots, and Invalidations surface the headline durable
	// and cache-coherence counters at the top level for scripting: WAL
	// records appended, snapshot files written, and plan-cache entries
	// dropped by ingest invalidation. (The full store breakdown stays under
	// "store".)
	WALRecords    int64 `json:"wal_records"`
	Snapshots     int64 `json:"snapshots"`
	Invalidations int64 `json:"invalidations"`
	// Views counts registered continuous queries; ViewsStale how many are
	// awaiting a successful rebuild. The ViewDelta* / ViewRebuilds /
	// ViewReducerSkips counters aggregate maintenance work across all views.
	Views            int   `json:"views"`
	ViewsStale       int   `json:"views_stale"`
	ViewDeltaBatches int64 `json:"view_delta_batches"`
	ViewRebuilds     int64 `json:"view_rebuilds"`
	ViewReducerSkips int64 `json:"view_reducer_skips"`
	// Store is the durable-store snapshot, nil when no store is attached.
	Store *store.Stats `json:"store,omitempty"`
}

// Service serves joins over a catalog of registered databases. Construct
// with New; all methods are safe for concurrent use.
type Service struct {
	cfg     Config
	cache   *plancache.Cache
	slots   chan struct{}
	metrics *serviceMetrics
	slowLog *obs.SlowLog // nil when SlowQueryThreshold is 0

	mu    sync.RWMutex
	dbs   map[string]*catalogEntry
	views map[string]*viewEntry

	// store is the durable mutation path (nil = in-memory only; ingest is
	// then refused with ErrReadOnly). Attached once via AttachStore.
	store atomic.Pointer[store.Store]
	// ready gates /healthz and /readyz: false while joind replays its WAL
	// (and again during shutdown). In-process services start ready.
	ready atomic.Bool

	queued           atomic.Int64
	inFlight         atomic.Int64
	budgetRemaining  atomic.Int64 // meaningful only when cfg.GlobalMaxTuples > 0
	workersRemaining atomic.Int64 // meaningful only when cfg.WorkerBudget > 0

	queries, succeeded, rejected, aborted, failed, degraded atomic.Int64
	workersDegraded, ingests                                atomic.Int64

	viewDeltaBatches, viewTuplesIn, viewTuplesOut atomic.Int64
	viewReducerSkips, viewRebuilds                atomic.Int64
	viewBudgetAborts                              atomic.Int64

	// remoteExec fans shard tasks out to cfg.ShardPeers; nil when shard
	// execution is in-process (or sharding is off).
	remoteExec *shard.HTTPExecutor
	// Scatter-gather counters behind the joind_shard_* metric series.
	shardScatter, shardSingle, shardTuples, shardIngestRouted atomic.Int64
}

// New builds a service from cfg (zero fields get defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		cache: plancache.New(cfg.PlanCacheSize),
		slots: make(chan struct{}, cfg.Workers),
		dbs:   make(map[string]*catalogEntry),
		views: make(map[string]*viewEntry),
	}
	s.budgetRemaining.Store(cfg.GlobalMaxTuples)
	s.workersRemaining.Store(cfg.WorkerBudget)
	if len(cfg.ShardPeers) > 0 {
		s.remoteExec = shard.NewHTTPExecutor(cfg.ShardPeers, nil)
	}
	s.ready.Store(true)
	if cfg.SlowQueryThreshold > 0 {
		s.slowLog = obs.NewSlowLog(cfg.SlowQueryThreshold, cfg.SlowLogSize)
	}
	s.metrics = newServiceMetrics(s)
	return s
}

// SlowLog returns the slow-query log, nil when disabled.
func (s *Service) SlowLog() *obs.SlowLog { return s.slowLog }

// Metrics returns the service's Prometheus registry (the body of
// GET /metrics).
func (s *Service) Metrics() *obs.Registry { return s.metrics.registry }

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// Register adds a named database to the catalog. The scheme's fingerprint
// and acyclicity are computed once here, so the query path never re-derives
// them. Names are unique; re-registering is an error (drop-and-replace is a
// deliberate non-feature: cached plans for the fingerprint stay valid
// because plans depend only on the scheme, but silent replacement invites
// confusion about which instance answered).
//
// With a store attached, the database is made durable first — its initial
// snapshot is on disk before the name is visible to queries — and the
// store's (stricter) name rules apply.
func (s *Service) Register(name string, db *relation.Database) (DatabaseInfo, error) {
	if name == "" {
		return DatabaseInfo{}, fmt.Errorf("service: database name must be nonempty")
	}
	if db == nil || db.Len() == 0 {
		return DatabaseInfo{}, fmt.Errorf("service: database %q is empty", name)
	}
	if st := s.store.Load(); st != nil {
		if err := st.Create(name, db); err != nil {
			return DatabaseInfo{}, mapStoreError(err)
		}
	}
	return s.register(name, db)
}

// register adds db to the in-memory catalog (no persistence).
func (s *Service) register(name string, db *relation.Database) (DatabaseInfo, error) {
	h := hypergraph.OfScheme(db)
	e := &catalogEntry{
		name:        name,
		fingerprint: h.Fingerprint(),
		acyclic:     h.Acyclic(),
		sketches:    optimizer.CollectSketches(db),
	}
	e.db.Store(db)
	if s.cfg.Shards > 1 {
		g, err := shard.NewGroup(name, db, s.cfg.Shards, s.cfg.ShardBroadcastThreshold)
		if err != nil {
			return DatabaseInfo{}, fmt.Errorf("service: shard %q: %w", name, err)
		}
		if s.remoteExec != nil {
			if err := s.pushGroup(g); err != nil {
				return DatabaseInfo{}, fmt.Errorf("service: push shard partitions for %q: %w", name, err)
			}
		}
		e.group.Store(g)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.dbs[name]; dup {
		return DatabaseInfo{}, fmt.Errorf("%w: %q", ErrDuplicateDatabase, name)
	}
	s.dbs[name] = e
	return s.info(e), nil
}

// mapStoreError translates store errors into the service's typed errors.
func mapStoreError(err error) error {
	switch {
	case errors.Is(err, store.ErrExists):
		return fmt.Errorf("%w: %v", ErrDuplicateDatabase, err)
	case errors.Is(err, store.ErrUnknownDatabase):
		return fmt.Errorf("%w: %v", ErrUnknownDatabase, err)
	case errors.Is(err, store.ErrBadName), errors.Is(err, store.ErrBadBatch):
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	case errors.Is(err, store.ErrClosed), errors.Is(err, store.ErrWALFailed):
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	default:
		return err
	}
}

// info renders a catalog entry.
func (s *Service) info(e *catalogEntry) DatabaseInfo {
	db := e.db.Load()
	return DatabaseInfo{
		Name:        e.name,
		Relations:   db.Len(),
		Tuples:      db.TotalTuples(),
		Fingerprint: e.fingerprint,
		Acyclic:     e.acyclic,
	}
}

// Databases lists the catalog in name order.
func (s *Service) Databases() []DatabaseInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DatabaseInfo, 0, len(s.dbs))
	for _, e := range s.dbs {
		out = append(out, s.info(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookup resolves a catalog name.
func (s *Service) lookup(name string) (*catalogEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDatabase, name)
	}
	return e, nil
}

// acquire implements admission control: it takes a worker slot, waiting up
// to QueueTimeout while at most QueueDepth queries are already waiting.
// It returns the time spent queued and a release function.
func (s *Service) acquire(ctx context.Context) (time.Duration, func(), error) {
	release := func() {
		<-s.slots
		s.inFlight.Add(-1)
	}
	// Fast path: a free slot, no queue wait.
	select {
	case s.slots <- struct{}{}:
		s.inFlight.Add(1)
		return 0, release, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return 0, nil, fmt.Errorf("%w: queue full (%d waiting)", ErrOverloaded, s.cfg.QueueDepth)
	}
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	start := time.Now()
	select {
	case s.slots <- struct{}{}:
		s.inFlight.Add(1)
		return time.Since(start), release, nil
	case <-timer.C:
		return 0, nil, ErrQueueTimeout
	case <-ctx.Done():
		return 0, nil, &govern.AbortError{Op: "service.queue", Sentinel: govern.ErrCanceled, Cause: ctx.Err()}
	}
}

// carve reserves a per-query tuple budget from the global budget. It
// returns the granted budget (0 = unlimited) and a function returning the
// reservation.
func (s *Service) carve(asked int64) (int64, func(), error) {
	grant := asked
	if s.cfg.MaxTuplesPerQuery > 0 && (grant <= 0 || grant > s.cfg.MaxTuplesPerQuery) {
		grant = s.cfg.MaxTuplesPerQuery
	}
	if s.cfg.GlobalMaxTuples <= 0 {
		return grant, func() {}, nil
	}
	// With a global budget, every query must hold a concrete reservation.
	if grant <= 0 {
		grant = s.cfg.MaxTuplesPerQuery
	}
	for {
		rem := s.budgetRemaining.Load()
		if rem < grant {
			return 0, nil, fmt.Errorf("%w: %d tuples requested, %d unreserved", ErrBudgetExhausted, grant, rem)
		}
		if s.budgetRemaining.CompareAndSwap(rem, rem-grant) {
			return grant, func() { s.budgetRemaining.Add(grant) }, nil
		}
	}
}

// carveWorkers grants a query its intra-query worker count: the ask
// (0 = service default) clamped to Config.QueryWorkers, then reserved from
// the shared worker pool. A depleted pool degrades the grant — partial
// parallelism, or sequential when fewer than two workers remain — rather
// than rejecting the query; sequential execution reserves nothing. It
// returns the grant, whether it was degraded below the clamped ask, and a
// function returning the reservation.
func (s *Service) carveWorkers(asked int) (int, bool, func()) {
	want := asked
	if want <= 0 || want > s.cfg.QueryWorkers {
		want = s.cfg.QueryWorkers
	}
	if want <= 1 {
		return 1, false, func() {}
	}
	if s.cfg.WorkerBudget <= 0 {
		return want, false, func() {}
	}
	for {
		rem := s.workersRemaining.Load()
		take := int64(want)
		if take > rem {
			take = rem
		}
		if take < 2 {
			return 1, true, func() {}
		}
		if s.workersRemaining.CompareAndSwap(rem, rem-take) {
			return int(take), take < int64(want), func() { s.workersRemaining.Add(take) }
		}
	}
}

// Query joins the named database under the request's limits. The flow is:
// admission (worker slot with queue timeout), budget carving, plan-cache
// lookup keyed by scheme fingerprint + resolved strategy (a miss derives
// the plan once, coalescing concurrent misses), governed execution of the
// plan, and — if a cached plan blows its tuple budget under the auto
// strategy — a fallback to the engine's degradation ladder. The returned
// Report carries PlanCacheHit, QueueWait, and — when tracing is on — the
// TraceID of the query's span tree.
//
// Every query updates the Prometheus registry (strategy/status counters,
// latency and queue-wait histograms); with a Tracer or the slow-query log
// configured, the query additionally builds a span tree, hands it to the
// Tracer, and captures it in the slow log when the wall time meets the
// threshold.
func (s *Service) Query(ctx context.Context, req Request) (*engine.Report, error) {
	e, err := s.lookup(req.Database)
	if err != nil {
		return nil, err
	}
	strat, err := engine.ParseStrategy(strategyName(req.Strategy))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	start := time.Now()
	trace := s.startTrace(req.Database)
	rep, err := s.execute(ctx, e, strat, req, trace)
	s.finish(trace, req, rep, err, start)
	return rep, err
}

// startTrace begins a span tree for one query when anything will consume
// it: the configured Tracer, or the slow-query log. Returns nil otherwise,
// which disables tracing end to end at zero cost.
func (s *Service) startTrace(database string) *obs.Trace {
	if s.cfg.Tracer != nil {
		return s.cfg.Tracer.StartQuery(database)
	}
	if s.slowLog != nil {
		return obs.NewTrace(database)
	}
	return nil
}

// execute is the admission + plan-cache + execution core of Query, with
// trace spans (queue, plan cache; the engine hangs the rest off the root)
// when trace is non-nil.
func (s *Service) execute(ctx context.Context, e *catalogEntry, strat engine.Strategy, req Request, trace *obs.Trace) (*engine.Report, error) {
	// One atomic load pins this query's catalog version: concurrent ingests
	// swap the entry's pointer, but this query joins the exact instance it
	// loaded here — never a half-applied batch. With sharding on, the group
	// pointer is the one load: it carries the partitioned databases and the
	// exact unsharded catalog they were split from.
	grp := e.group.Load()
	db := e.db.Load()
	if grp != nil {
		db = grp.Full()
	}
	var qspan *obs.Span
	if trace != nil {
		qspan = trace.Root.Child(obs.KindQueue, "admission queue")
	}
	wait, releaseSlot, err := s.acquire(ctx)
	if err != nil {
		qspan.Note("rejected: %v", err)
		qspan.End()
		s.rejected.Add(1)
		return nil, err
	}
	qspan.End()
	s.metrics.queueWait.Observe(wait.Seconds())
	defer releaseSlot()
	grant, releaseBudget, err := s.carve(req.MaxTuples)
	if err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	defer releaseBudget()
	workers, workersCut, releaseWorkers := s.carveWorkers(req.Workers)
	defer releaseWorkers()
	if workersCut {
		s.workersDegraded.Add(1)
	}
	s.queries.Add(1)
	if trace != nil {
		if grant > 0 {
			trace.Root.Note("tuple budget granted: %d", grant)
		}
		if workers > 1 {
			trace.Root.Note("intra-query workers granted: %d", workers)
		}
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	lim := govern.Limits{
		MaxTuples:             grant,
		MaxIntermediateTuples: req.MaxIntermediateTuples,
		Context:               ctx,
	}.WithTimeout(timeout)
	opts := engine.Options{
		Strategy:         strat,
		Budget:           s.cfg.SearchBudget,
		IndexedExecution: req.Indexed,
		Limits:           lim,
		Workers:          workers,
		Sketches:         e.sketches,
		Hybrid:           s.cfg.Hybrid,
	}
	if trace != nil {
		opts.Trace = trace.Root
	}

	// Resolve auto against the registered scheme so the cache key pins the
	// actual route; two names over the same scheme share plans.
	resolved := strat
	if resolved == engine.StrategyAuto {
		if e.acyclic {
			resolved = engine.StrategyAcyclic
		} else {
			resolved = engine.StrategyProgram
		}
	}
	key := planKey(e.fingerprint, resolved, grp, e.sketches.Version())
	var pcSpan *obs.Span
	if trace != nil {
		pcSpan = trace.Root.Child(obs.KindPlanCache, "plan cache lookup")
	}
	plan, hit, err := s.cache.GetOrCompute(key, func() (*engine.Plan, error) {
		return engine.PlanFor(db, engine.Options{Strategy: resolved, Budget: s.cfg.SearchBudget, Sketches: e.sketches, Hybrid: s.cfg.Hybrid})
	})
	if pcSpan != nil {
		if hit {
			pcSpan.Note("hit: %s", key)
		} else {
			pcSpan.Note("miss: derived plan for %s", key)
		}
		pcSpan.End()
	}
	if err != nil {
		s.failed.Add(1)
		return nil, err
	}

	rep, err := s.runPlan(grp, db, plan, opts)
	if err != nil && strat == engine.StrategyAuto && errors.Is(err, govern.ErrTupleBudget) {
		// The cached plan blew this query's budget; hand the query to the
		// engine's governed degradation ladder, which tries cheaper
		// machinery rung by rung with fresh per-attempt budgets. Sharded
		// queries climb the same ladder through the scatter layer.
		s.degraded.Add(1)
		if grp != nil {
			rep, err = s.shardLadder(e, grp, opts)
		} else {
			rep, err = engine.Join(db, opts)
		}
		if err == nil {
			rep.Notes = append(rep.Notes, "plan cache: cached plan exceeded budget; re-ran degradation ladder")
		}
	}
	if err != nil {
		if errors.Is(err, govern.ErrTupleBudget) || errors.Is(err, govern.ErrDeadline) || errors.Is(err, govern.ErrCanceled) {
			s.aborted.Add(1)
		} else {
			s.failed.Add(1)
		}
		return nil, err
	}
	rep.PlanCacheHit = hit
	rep.QueueWait = wait
	// Close the estimation loop: a hybrid plan carries the §2.3 cost its
	// chooser predicted; the governor charged the actual. The q-error folds
	// into the entry's correction EWMA, biasing the next choice for this
	// scheme, and feeds the joind_optimizer_qerror series.
	if plan.Hybrid != nil && plan.Hybrid.EstCost > 0 && rep.Cost > 0 {
		q := e.sketches.Observe(e.fingerprint, plan.Hybrid.EstCost, rep.Cost)
		s.metrics.optimizerQError.Observe(q)
		s.metrics.hybridRoutes.Inc(plan.Hybrid.Route)
	}
	s.succeeded.Add(1)
	return rep, nil
}

// finish closes out one query: the Prometheus counters and latency
// histogram always; then, when tracing was on, the root span is ended, the
// trace is handed to the Tracer, and the slow-query log captures the query
// if its wall time met the threshold.
func (s *Service) finish(trace *obs.Trace, req Request, rep *engine.Report, err error, start time.Time) {
	wall := time.Since(start)
	status := "ok"
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		status = "rejected"
	case errors.Is(err, govern.ErrTupleBudget), errors.Is(err, govern.ErrDeadline), errors.Is(err, govern.ErrCanceled):
		status = "aborted"
	default:
		status = "failed"
	}
	strategy := strategyName(req.Strategy)
	if rep != nil {
		strategy = rep.Strategy.String()
	}
	s.metrics.queries.Inc(strategy, status)
	s.metrics.duration.Observe(wall.Seconds())
	if rep != nil {
		s.metrics.tuples.Add(rep.Produced)
		if rep.Strategy == engine.StrategyColumnar {
			s.metrics.columnarTuples.Add(rep.Produced)
		}
	}
	if trace == nil {
		return
	}
	if rep != nil {
		rep.TraceID = trace.ID
	}
	if err != nil {
		trace.Root.Note("%s: %v", status, err)
	}
	trace.Root.End()
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.FinishQuery(trace)
	}
	if s.slowLog != nil {
		entry := obs.SlowEntry{
			TraceID:  trace.ID,
			Database: req.Database,
			Strategy: strategy,
			Status:   status,
			Start:    start,
			WallMS:   float64(wall) / float64(time.Millisecond),
			Trace:    trace.Root.JSON(),
		}
		if err != nil {
			entry.Error = err.Error()
		}
		if rep != nil {
			entry.QueueWaitMS = float64(rep.QueueWait) / float64(time.Millisecond)
			entry.Cost = rep.Cost
			entry.Produced = rep.Produced
		}
		if s.slowLog.Record(entry) {
			s.metrics.slow.Inc()
		}
	}
}

// sketchTotals aggregates the catalog's sketch counters for the
// joind_optimizer_* series: total drift deltas, total exact rebuilds, and
// the sum of statistics versions.
func (s *Service) sketchTotals() (drift, rebuilds, versions int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.dbs {
		for _, d := range e.sketches.DriftTotals() {
			drift += d
		}
		rebuilds += e.sketches.Rebuilds()
		versions += e.sketches.Version()
	}
	return drift, rebuilds, versions
}

// strategyName maps the empty request strategy to auto.
func strategyName(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	n := len(s.dbs)
	nviews := len(s.views)
	s.mu.RUnlock()
	remaining := int64(-1)
	if s.cfg.GlobalMaxTuples > 0 {
		remaining = s.budgetRemaining.Load()
	}
	workersRemaining := int64(-1)
	if s.cfg.QueryWorkers > 1 && s.cfg.WorkerBudget > 0 {
		workersRemaining = s.workersRemaining.Load()
	}
	var storeStats *store.Stats
	if st := s.store.Load(); st != nil {
		snap := st.Stats()
		storeStats = &snap
	}
	cacheStats := s.cache.Stats()
	var walRecords, snapshots int64
	if storeStats != nil {
		walRecords, snapshots = storeStats.WALAppends, storeStats.SnapshotWrites
	}
	return Stats{
		Ready:                 s.ready.Load(),
		Ingests:               s.ingests.Load(),
		WALRecords:            walRecords,
		Snapshots:             snapshots,
		Invalidations:         cacheStats.Invalidations,
		Views:                 nviews,
		ViewsStale:            s.staleViews(),
		ViewDeltaBatches:      s.viewDeltaBatches.Load(),
		ViewRebuilds:          s.viewRebuilds.Load(),
		ViewReducerSkips:      s.viewReducerSkips.Load(),
		Store:                 storeStats,
		Databases:             n,
		Workers:               s.cfg.Workers,
		InFlight:              s.inFlight.Load(),
		Queued:                s.queued.Load(),
		Queries:               s.queries.Load(),
		Succeeded:             s.succeeded.Load(),
		Rejected:              s.rejected.Load(),
		Aborted:               s.aborted.Load(),
		Failed:                s.failed.Load(),
		Degraded:              s.degraded.Load(),
		QueryWorkers:          s.cfg.QueryWorkers,
		WorkersDegraded:       s.workersDegraded.Load(),
		WorkerBudgetRemaining: workersRemaining,
		GlobalTuplesRemaining: remaining,
		PlanCache:             cacheStats,
	}
}
