package service

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/govern"
	"repro/internal/ivm"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
)

// Continuous queries. A registered view is ⋈D over one catalog database,
// compiled once (internal/ivm) into a delta program and maintained
// incrementally: every acknowledged ingest batch is propagated through the
// view's join/semijoin/project steps — under the catalog entry's ingest
// mutex, so views see batches in exactly WAL order — before the batch is
// acknowledged to the client. Queries against the view are then O(result):
// GET /v1/views/{id} serves the materialized result without running a join.
//
// Maintenance never fails an ingest. A view whose delta work blows its
// configured budget aborts with govern.ErrViewBudget, is marked stale, and
// is rebuilt synchronously from the post-batch catalog; if even the rebuild
// fails the view stays stale (result unavailable) until a later batch's
// rebuild succeeds. With a durable store attached, view definitions persist
// in the store (views.dat) and AttachStore re-registers and rebuilds them
// from the recovered catalog.

// Typed view errors; match with errors.Is.
var (
	// ErrUnknownView reports an operation on an unregistered view id.
	ErrUnknownView = errors.New("service: unknown view")
	// ErrDuplicateView reports a RegisterView with an already-taken id.
	ErrDuplicateView = errors.New("service: view already registered")
	// ErrViewStale reports a result read from a view whose rebuild after a
	// maintenance failure has not yet succeeded. Serve it as HTTP 503.
	ErrViewStale = errors.New("service: view is stale (rebuild pending)")
)

// viewID constrains view ids like store database names.
var viewID = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// viewEntry is one registered view: its durable definition, its compiled
// delta program with materialized state, and its maintenance counters. The
// entry's own mutex serializes maintenance against result reads; the ingest
// path additionally holds the catalog entry's ingestMu, which is what
// orders delta batches by WAL position.
type viewEntry struct {
	def store.ViewDef

	mu    sync.Mutex
	view  *ivm.View
	stale bool
	// lastError is the most recent maintenance or rebuild failure ("" when
	// healthy).
	lastError string

	deltaBatches, tuplesIn, tuplesOut, stepRows int64
	reducerSkips, rebuilds, budgetAborts        int64
}

// ViewInfo describes one registered view and its maintenance counters.
type ViewInfo struct {
	ID          string `json:"id"`
	Database    string `json:"database"`
	Fingerprint string `json:"fingerprint"`
	// Steps is the delta program's statement count, split by operator below.
	Steps     int `json:"steps"`
	Projects  int `json:"projects"`
	Joins     int `json:"joins"`
	Semijoins int `json:"semijoins"`
	// ResultCount is the materialized result's current cardinality.
	ResultCount int `json:"result_count"`
	// Stale reports that maintenance failed and the rebuild has not
	// succeeded yet; the result is unavailable until it does.
	Stale                 bool  `json:"stale"`
	MaxTuples             int64 `json:"max_tuples,omitempty"`
	MaxIntermediateTuples int64 `json:"max_intermediate_tuples,omitempty"`
	// DeltaBatches counts maintenance runs; TuplesIn/TuplesOut/StepRows are
	// the cumulative effective input delta, result delta, and per-step delta
	// rows across them.
	DeltaBatches int64 `json:"delta_batches"`
	TuplesIn     int64 `json:"delta_tuples_in"`
	TuplesOut    int64 `json:"delta_tuples_out"`
	StepRows     int64 `json:"delta_step_rows"`
	// ReducerSkips counts semijoin steps skipped under the Safe-Subjoins
	// condition (reducer delta provably flips no key's support).
	ReducerSkips int64 `json:"reducer_skips"`
	// Rebuilds counts full from-catalog rebuilds (registration and recovery
	// included); BudgetAborts counts maintenance runs that exhausted the
	// view's budget and triggered one.
	Rebuilds     int64  `json:"full_rebuilds"`
	BudgetAborts int64  `json:"budget_aborts"`
	LastError    string `json:"last_error,omitempty"`
}

// info renders the entry under its lock.
func (ve *viewEntry) info() ViewInfo {
	ve.mu.Lock()
	defer ve.mu.Unlock()
	return ve.infoLocked()
}

func (ve *viewEntry) infoLocked() ViewInfo {
	projects, joins, semijoins := ve.view.OpCounts()
	return ViewInfo{
		ID:                    ve.def.ID,
		Database:              ve.def.Database,
		Fingerprint:           ve.view.Fingerprint(),
		Steps:                 ve.view.Steps(),
		Projects:              projects,
		Joins:                 joins,
		Semijoins:             semijoins,
		ResultCount:           ve.view.ResultCount(),
		Stale:                 ve.stale,
		MaxTuples:             ve.def.MaxTuples,
		MaxIntermediateTuples: ve.def.MaxIntermediateTuples,
		DeltaBatches:          ve.deltaBatches,
		TuplesIn:              ve.tuplesIn,
		TuplesOut:             ve.tuplesOut,
		StepRows:              ve.stepRows,
		ReducerSkips:          ve.reducerSkips,
		Rebuilds:              ve.rebuilds,
		BudgetAborts:          ve.budgetAborts,
		LastError:             ve.lastError,
	}
}

// RegisterView registers a continuous query over the named database and
// builds its initial materialized result. The build runs under the
// database's ingest mutex, so the view starts at an exact batch boundary and
// misses no subsequent delta. With a store attached the definition is made
// durable before RegisterView returns.
func (s *Service) RegisterView(def store.ViewDef) (ViewInfo, error) {
	if !viewID.MatchString(def.ID) {
		return ViewInfo{}, fmt.Errorf("%w: invalid view id %q (want %s)", ErrBadRequest, def.ID, viewID)
	}
	e, err := s.lookup(def.Database)
	if err != nil {
		return ViewInfo{}, err
	}
	s.mu.RLock()
	_, dup := s.views[def.ID]
	s.mu.RUnlock()
	if dup {
		return ViewInfo{}, fmt.Errorf("%w: %q", ErrDuplicateView, def.ID)
	}
	// Holding ingestMu across compile + build + registration pins the batch
	// boundary: no ingest can land between the catalog load and the view
	// becoming visible to the maintenance hook.
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	db := e.db.Load()
	v, err := ivm.Compile(db)
	if err != nil {
		return ViewInfo{}, fmt.Errorf("service: compiling view %q: %w", def.ID, err)
	}
	if err := v.Rebuild(db); err != nil {
		return ViewInfo{}, fmt.Errorf("service: building view %q: %w", def.ID, err)
	}
	ve := &viewEntry{def: def, view: v, rebuilds: 1}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.views[def.ID]; dup {
		return ViewInfo{}, fmt.Errorf("%w: %q", ErrDuplicateView, def.ID)
	}
	s.views[def.ID] = ve
	if st := s.store.Load(); st != nil {
		if err := st.SaveViews(s.viewDefsLocked()); err != nil {
			delete(s.views, def.ID)
			return ViewInfo{}, fmt.Errorf("service: persisting view %q: %w", def.ID, mapStoreError(err))
		}
	}
	s.viewRebuilds.Add(1)
	return ve.info(), nil
}

// DropView removes a registered view (and its durable definition).
func (s *Service) DropView(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.views[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownView, id)
	}
	delete(s.views, id)
	if st := s.store.Load(); st != nil {
		if err := st.SaveViews(s.viewDefsLocked()); err != nil {
			return fmt.Errorf("service: persisting view drop %q: %w", id, mapStoreError(err))
		}
	}
	return nil
}

// viewDefsLocked snapshots the definition list (caller holds s.mu), sorted
// by id so views.dat is deterministic.
func (s *Service) viewDefsLocked() []store.ViewDef {
	defs := make([]store.ViewDef, 0, len(s.views))
	for _, ve := range s.views {
		defs = append(defs, ve.def)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	return defs
}

// Views lists the registered views in id order.
func (s *Service) Views() []ViewInfo {
	s.mu.RLock()
	entries := make([]*viewEntry, 0, len(s.views))
	for _, ve := range s.views {
		entries = append(entries, ve)
	}
	s.mu.RUnlock()
	out := make([]ViewInfo, 0, len(entries))
	for _, ve := range entries {
		out = append(out, ve.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// lookupView resolves a view id.
func (s *Service) lookupView(id string) (*viewEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ve, ok := s.views[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownView, id)
	}
	return ve, nil
}

// View returns one view's info without its result.
func (s *Service) View(id string) (ViewInfo, error) {
	ve, err := s.lookupView(id)
	if err != nil {
		return ViewInfo{}, err
	}
	return ve.info(), nil
}

// ViewResult returns one view's info and materialized result. A stale view
// (failed maintenance whose rebuild has not succeeded) refuses the read with
// ErrViewStale rather than serving a result known to be wrong.
func (s *Service) ViewResult(id string) (ViewInfo, *relation.Relation, error) {
	ve, err := s.lookupView(id)
	if err != nil {
		return ViewInfo{}, nil, err
	}
	ve.mu.Lock()
	defer ve.mu.Unlock()
	if ve.stale {
		return ve.infoLocked(), nil, fmt.Errorf("%w: %q: %s", ErrViewStale, id, ve.lastError)
	}
	return ve.infoLocked(), ve.view.Result(), nil
}

// maintainViews propagates one acknowledged ingest batch into every view
// over the database and returns how many views it maintained. The caller
// holds the catalog entry's ingestMu, so batches reach each view in WAL
// order; post is the post-batch catalog the stale-recovery path rebuilds
// from. Maintenance never fails the ingest.
func (s *Service) maintainViews(database string, batch store.Batch, post *relation.Database) int {
	s.mu.RLock()
	var entries []*viewEntry
	for _, ve := range s.views {
		if ve.def.Database == database {
			entries = append(entries, ve)
		}
	}
	s.mu.RUnlock()
	if len(entries) == 0 {
		return 0
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].def.ID < entries[j].def.ID })
	changes := make([]ivm.Change, len(batch))
	for i, m := range batch {
		changes[i] = ivm.Change{Relation: m.Relation, Inserts: m.Inserts, Deletes: m.Deletes}
	}
	for _, ve := range entries {
		s.maintainView(ve, changes, post)
	}
	return len(entries)
}

// maintainView applies one delta batch to one view, with the view's budget
// governed and — when the service runs a tracer — a span tree whose children
// are the executed delta steps. A budget abort surfaces as
// govern.ErrViewBudget on the entry, marks it stale, and rebuilds from the
// post-batch catalog; only a failed rebuild leaves it stale.
func (s *Service) maintainView(ve *viewEntry, changes []ivm.Change, post *relation.Database) {
	start := time.Now()
	ve.mu.Lock()
	defer ve.mu.Unlock()
	var trace *obs.Trace
	if s.cfg.Tracer != nil {
		trace = s.cfg.Tracer.StartQuery("view:" + ve.def.ID)
	}
	lim := govern.Limits{
		MaxTuples:             ve.def.MaxTuples,
		MaxIntermediateTuples: ve.def.MaxIntermediateTuples,
	}
	var g *govern.Governor
	if lim.Enabled() || trace != nil {
		g = govern.New(lim)
		if trace != nil {
			g.SetSpan(trace.Root)
		}
	}
	stats, err := ve.view.Apply(changes, g)
	ve.deltaBatches++
	ve.tuplesIn += stats.TuplesIn
	ve.tuplesOut += stats.TuplesOut
	ve.stepRows += stats.StepRows
	ve.reducerSkips += stats.ReducerSkips
	s.viewDeltaBatches.Add(1)
	s.viewTuplesIn.Add(stats.TuplesIn)
	s.viewTuplesOut.Add(stats.TuplesOut)
	s.viewReducerSkips.Add(stats.ReducerSkips)
	if err != nil {
		if errors.Is(err, govern.ErrTupleBudget) {
			err = fmt.Errorf("%w: %w", govern.ErrViewBudget, err)
			ve.budgetAborts++
			s.viewBudgetAborts.Add(1)
		}
		ve.stale = true
		ve.lastError = err.Error()
		if trace != nil {
			trace.Root.Note("maintenance failed, rebuilding: %v", err)
		}
		if rerr := ve.view.Rebuild(post); rerr != nil {
			ve.lastError = fmt.Sprintf("%v (rebuild failed: %v)", err, rerr)
		} else {
			ve.stale = false
			ve.lastError = err.Error()
			ve.rebuilds++
			s.viewRebuilds.Add(1)
		}
	} else {
		ve.lastError = ""
	}
	if trace != nil {
		trace.Root.End()
		s.cfg.Tracer.FinishQuery(trace)
	}
	s.metrics.viewMaintenance.Observe(time.Since(start).Seconds())
}

// attachViews re-registers the store's durable view definitions at startup,
// rebuilding each from the recovered catalog. Called by AttachStore after
// the databases are registered; definitions naming unknown databases are a
// hard error (the store never drops databases, so this is corruption).
func (s *Service) attachViews(st *store.Store) error {
	for _, def := range st.Views() {
		e, err := s.lookup(def.Database)
		if err != nil {
			return fmt.Errorf("service: recovering view %q: %w", def.ID, err)
		}
		db := e.db.Load()
		v, err := ivm.Compile(db)
		if err != nil {
			return fmt.Errorf("service: recovering view %q: %w", def.ID, err)
		}
		if err := v.Rebuild(db); err != nil {
			return fmt.Errorf("service: recovering view %q: %w", def.ID, err)
		}
		ve := &viewEntry{def: def, view: v, rebuilds: 1}
		s.viewRebuilds.Add(1)
		s.mu.Lock()
		if _, dup := s.views[def.ID]; dup {
			s.mu.Unlock()
			return fmt.Errorf("%w: %q (recovered twice)", ErrDuplicateView, def.ID)
		}
		s.views[def.ID] = ve
		s.mu.Unlock()
	}
	return nil
}

// staleViews counts views currently stale (metrics).
func (s *Service) staleViews() int {
	s.mu.RLock()
	entries := make([]*viewEntry, 0, len(s.views))
	for _, ve := range s.views {
		entries = append(entries, ve)
	}
	s.mu.RUnlock()
	n := 0
	for _, ve := range entries {
		ve.mu.Lock()
		if ve.stale {
			n++
		}
		ve.mu.Unlock()
	}
	return n
}
