package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// Tests for the observability surface: span trees under concurrency, the
// slow-query log, and the Prometheus endpoint. Run with -race: the span
// trees are built concurrently by the worker pool and (with QueryWorkers
// > 1) by intra-query goroutines sharing one parent span.

// TestConcurrentTracedQueriesUnderRace drives many parallel queries through
// one shared Service with a Collector tracer and checks every captured
// trace is a disjoint, well-nested span tree of its own.
func TestConcurrentTracedQueriesUnderRace(t *testing.T) {
	const queries = 24
	col := obs.NewCollector(queries)
	s := New(Config{
		Workers:      4,
		QueueDepth:   queries,
		QueueTimeout: 10 * time.Second,
		QueryWorkers: 2,
		Tracer:       col,
	})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	reports := make([]string, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			strategy := []string{"program", "wcoj", "cpf-expression", ""}[i%4]
			rep, err := s.Query(context.Background(), Request{
				Database: "tri",
				Strategy: strategy,
				Workers:  2,
			})
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if rep.TraceID == "" {
				t.Errorf("query %d: no trace ID on report", i)
				return
			}
			reports[i] = rep.TraceID
		}(i)
	}
	wg.Wait()

	traces := col.Traces()
	if len(traces) != queries {
		t.Fatalf("collector holds %d traces, want %d", len(traces), queries)
	}
	seen := make(map[string]bool, queries)
	for _, tr := range traces {
		if seen[tr.ID] {
			t.Errorf("duplicate trace ID %s", tr.ID)
		}
		seen[tr.ID] = true
		if tr.Root.Kind() != obs.KindQuery {
			t.Errorf("trace %s: root kind %s, want %s", tr.ID, tr.Root.Kind(), obs.KindQuery)
		}
		if err := tr.Root.CheckNested(); err != nil {
			t.Errorf("trace %s: %v", tr.ID, err)
		}
		if tr.Root.TupleTotal() <= 0 {
			t.Errorf("trace %s: no tuples charged to any span", tr.ID)
		}
	}
	// Every report's trace ID must be one of the collected traces.
	for i, id := range reports {
		if id != "" && !seen[id] {
			t.Errorf("query %d: report trace %s not in the collector", i, id)
		}
	}
}

// TestSlowLogCapturesQueriesWithTraces runs with a capture-everything
// threshold and checks GET /v1/slow serves entries whose embedded span
// trees drill down to statement level.
func TestSlowLogCapturesQueriesWithTraces(t *testing.T) {
	s := New(Config{
		Workers:            2,
		SlowQueryThreshold: time.Nanosecond,
		SlowLogSize:        8,
	})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rep, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "program"})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TraceID == "" {
			t.Fatal("slow-log-only configuration still must assign trace IDs")
		}
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sl slowResponse
	if err := json.NewDecoder(resp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	if !sl.Enabled || sl.Recorded != 3 || len(sl.Entries) != 3 {
		t.Fatalf("slow log: enabled=%v recorded=%d entries=%d, want enabled with 3 of each",
			sl.Enabled, sl.Recorded, len(sl.Entries))
	}
	for _, e := range sl.Entries {
		if e.TraceID == "" || e.Status != "ok" || e.Trace == nil {
			t.Fatalf("slow entry missing fields: %+v", e)
		}
		var stmts int
		var walk func(sp *obs.SpanJSON)
		walk = func(sp *obs.SpanJSON) {
			if sp.Kind == obs.KindStmt {
				stmts++
			}
			for _, c := range sp.Children {
				walk(c)
			}
		}
		walk(e.Trace)
		if stmts == 0 {
			t.Errorf("entry %s: span tree has no statement spans", e.TraceID)
		}
	}
}

// TestMetricsEndpointServesValidText scrapes /metrics after a mixed
// workload and checks the exposition parses line by line and the required
// series moved.
func TestMetricsEndpointServesValidText(t *testing.T) {
	s := New(Config{Workers: 2, SlowQueryThreshold: time.Nanosecond})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Query(context.Background(), Request{Database: "tri"}); err != nil {
			t.Fatal(err)
		}
	}
	// One failed admission: unknown strategies are rejected before tracing.
	if _, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "bogus"}); err == nil {
		t.Fatal("bogus strategy did not error")
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, series := range []string{
		"joind_queries_total",
		"joind_tuples_produced_total",
		"joind_query_duration_seconds_bucket",
		"joind_queue_wait_seconds_bucket",
		"joind_slow_queries_total",
		"joind_in_flight_queries",
		"joind_queued_queries",
		"joind_worker_utilization",
		"joind_registered_databases",
		"joind_plan_cache_hits_total",
		"joind_plan_cache_misses_total",
		"joind_plan_cache_hit_ratio",
		"joind_tuple_budget_remaining",
		"joind_ladder_degradations_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing series %s", series)
		}
	}
	if !strings.Contains(text, `joind_queries_total{strategy="program",status="ok"} 4`) {
		t.Errorf("queries counter did not reach 4 ok:\n%s", text)
	}
	if !strings.Contains(text, "joind_slow_queries_total 4") {
		t.Errorf("slow counter did not reach 4:\n%s", text)
	}
	if !strings.Contains(text, "joind_registered_databases 1") {
		t.Errorf("registered databases gauge not 1:\n%s", text)
	}

	// Every non-comment line must be "name{labels} value" — two fields.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestColumnarQueryMetrics serves a columnar-strategy query end-to-end and
// checks its strategy×status counter and the columnar tuple counter move.
func TestColumnarQueryMetrics(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Query(context.Background(), Request{Database: "tri", Strategy: "columnar"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy.String() != "columnar" {
		t.Fatalf("executed strategy %q, want columnar", rep.Strategy)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, `joind_queries_total{strategy="columnar",status="ok"} 1`) {
		t.Errorf("columnar strategy counter did not move:\n%s", text)
	}
	if strings.Contains(text, "joind_columnar_tuples_total 0\n") {
		t.Errorf("columnar tuple counter stayed at 0:\n%s", text)
	}
	if !strings.Contains(text, "joind_columnar_tuples_total") {
		t.Errorf("columnar tuple series missing:\n%s", text)
	}
}

// TestUntracedServiceAssignsNoTraceIDs checks the default configuration
// (no tracer, no slow log) builds no spans at all.
func TestUntracedServiceAssignsNoTraceIDs(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Register("tri", triangleDB(t)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Query(context.Background(), Request{Database: "tri"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != "" {
		t.Fatalf("untraced query carries trace ID %q", rep.TraceID)
	}
	if s.SlowLog() != nil {
		t.Fatal("slow log exists with a zero threshold")
	}
}
