package obs

import (
	"sync"
	"time"
)

// SlowEntry is one captured slow query: the metadata a dashboard lists plus
// the full span tree for drill-down.
type SlowEntry struct {
	// TraceID identifies the query across the response, the slow log, and
	// any external trace store.
	TraceID string `json:"trace_id"`
	// Database is the catalog name queried.
	Database string `json:"database"`
	// Strategy is the resolved execution route ("none" when the query was
	// rejected before resolution).
	Strategy string `json:"strategy"`
	// Status is "ok", "rejected", "aborted", or "failed".
	Status string `json:"status"`
	// Error carries the failure for non-ok statuses.
	Error string `json:"error,omitempty"`
	// Start is when the query began (admission included).
	Start time.Time `json:"start"`
	// WallMS is the query's total wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// QueueWaitMS is the admission queue wait in milliseconds.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// Cost and Produced echo the report's §2.3 cost and governor charge.
	Cost     int64 `json:"cost"`
	Produced int64 `json:"produced"`
	// Trace is the query's span tree (nil when tracing was off).
	Trace *SpanJSON `json:"trace,omitempty"`
}

// SlowLog is a bounded in-memory log of the most recent queries slower than
// a threshold. Safe for concurrent use; a nil *SlowLog records nothing.
type SlowLog struct {
	threshold time.Duration
	capacity  int

	mu       sync.Mutex
	entries  []SlowEntry
	recorded int64
}

// DefaultSlowLogCapacity bounds the log when NewSlowLog is given no
// capacity.
const DefaultSlowLogCapacity = 64

// NewSlowLog returns a log capturing queries with wall time >= threshold,
// keeping the most recent capacity entries (capacity <= 0 =
// DefaultSlowLogCapacity). A threshold <= 0 captures every query — useful
// for smoke tests and debugging sessions.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogCapacity
	}
	return &SlowLog{threshold: threshold, capacity: capacity}
}

// Threshold returns the capture threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Capacity returns the retention bound.
func (l *SlowLog) Capacity() int {
	if l == nil {
		return 0
	}
	return l.capacity
}

// Record captures e if its wall time meets the threshold, evicting the
// oldest entry when full. It reports whether the entry was kept.
func (l *SlowLog) Record(e SlowEntry) bool {
	if l == nil || e.WallMS < float64(l.threshold)/float64(time.Millisecond) {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.capacity {
		l.entries = append(l.entries[:0], l.entries[len(l.entries)-l.capacity:]...)
	}
	l.recorded++
	return true
}

// Entries returns the captured queries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, len(l.entries))
	for i, e := range l.entries {
		out[len(out)-1-i] = e
	}
	return out
}

// Recorded returns the total entries ever captured (including evicted).
func (l *SlowLog) Recorded() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recorded
}
