package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryRendersValidText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.")
	v := r.CounterVec("test_by_kind_total", "A labeled counter.", "kind", "status")
	r.GaugeFunc("test_gauge", "A callback gauge.", func() float64 { return 2.5 })
	h := r.Histogram("test_seconds", "A histogram.", []float64{0.1, 1, 10})

	c.Add(3)
	c.Add(-7) // ignored: counters only go up
	c.Inc()
	v.Inc("a", "ok")
	v.Add(2, "a", "failed")
	v.Inc("b", "ok")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP test_total A test counter.",
		"# TYPE test_total counter",
		"test_total 4",
		`test_by_kind_total{kind="a",status="failed"} 2`,
		`test_by_kind_total{kind="a",status="ok"} 1`,
		`test_by_kind_total{kind="b",status="ok"} 1`,
		"# TYPE test_gauge gauge",
		"test_gauge 2.5",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		"test_seconds_sum 100.05",
		"test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}

	// Every non-comment line must be "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "c", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v.Inc("x")
			}
		}()
	}
	wg.Wait()
	if got := v.Value("x"); got != 1600 {
		t.Fatalf("Value = %d, want 1600", got)
	}
	if v.Value("missing") != 0 {
		t.Fatal("missing series should read 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Fatalf("Count = %d, want 4000", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "x")
}
