package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsInert(t *testing.T) {
	var s *Span
	if c := s.Child(KindStmt, "x"); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	s.AddTuples(5)
	s.Note("ignored %d", 1)
	s.End()
	if s.Ended() || s.Tuples() != 0 || s.Wall() != 0 || s.TupleTotal() != 0 {
		t.Fatal("nil span leaked state")
	}
	if s.Format() != "" || s.JSON() != nil || s.Children() != nil || s.Notes() != nil {
		t.Fatal("nil span rendered something")
	}
	if err := s.CheckNested(); err != nil {
		t.Fatalf("nil.CheckNested = %v", err)
	}
	s.Walk(func(*Span, int) { t.Fatal("nil.Walk visited a span") })
}

func TestSpanTreeTotalsAndNesting(t *testing.T) {
	tr := NewTrace("q")
	root := tr.Root
	root.AddTuples(1)
	a := root.Child(KindAttempt, "attempt: program")
	s1 := a.Child(KindStmt, "stmt 1")
	s1.AddTuples(10)
	s1.End()
	s2 := a.Child(KindStmt, "stmt 2")
	s2.AddTuples(32)
	s2.Note("head %s", "R(AB)")
	s2.End()
	a.End()
	root.End()

	if got := root.TupleTotal(); got != 43 {
		t.Fatalf("TupleTotal = %d, want 43", got)
	}
	if err := root.CheckNested(); err != nil {
		t.Fatalf("CheckNested: %v", err)
	}
	if !root.Ended() || root.Wall() <= 0 {
		t.Fatal("root not ended with a positive wall")
	}
	// End is idempotent: the wall does not grow on a second call.
	w := root.Wall()
	root.End()
	if root.Wall() != w {
		t.Fatal("second End changed the wall time")
	}

	out := root.Format()
	for _, want := range []string{"query q", "attempt: program", "stmt 2", "32 tuples", "head R(AB)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}

	j := root.JSON()
	if j == nil || len(j.Children) != 1 || len(j.Children[0].Children) != 2 {
		t.Fatalf("JSON shape wrong: %+v", j)
	}
	if j.Children[0].Children[1].Tuples != 32 {
		t.Fatalf("JSON tuples = %d, want 32", j.Children[0].Children[1].Tuples)
	}
}

func TestCheckNestedCatchesUnendedSpan(t *testing.T) {
	root := NewTrace("q").Root
	c := root.Child(KindEval, "eval")
	_ = c // never ended
	root.End()
	if err := root.CheckNested(); err == nil {
		t.Fatal("CheckNested accepted an unended child")
	}
}

func TestConcurrentChildrenAndCharges(t *testing.T) {
	root := NewTrace("q").Root
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := root.Child(KindStmt, "s")
				c.AddTuples(2)
				root.AddTuples(1)
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if n := len(root.Children()); n != workers*perWorker {
		t.Fatalf("children = %d, want %d", n, workers*perWorker)
	}
	if got := root.TupleTotal(); got != int64(workers*perWorker*3) {
		t.Fatalf("TupleTotal = %d, want %d", got, workers*perWorker*3)
	}
	if err := root.CheckNested(); err != nil {
		t.Fatalf("CheckNested: %v", err)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTrace("q").ID
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestCollectorBounded(t *testing.T) {
	c := NewCollector(3)
	var last *Trace
	for i := 0; i < 5; i++ {
		tr := c.StartQuery("q")
		tr.Root.End()
		c.FinishQuery(tr)
		last = tr
	}
	got := c.Traces()
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	if got[2].ID != last.ID {
		t.Fatal("collector did not keep the most recent traces")
	}
	c.FinishQuery(nil) // must not panic
}

func TestSlowLogThresholdAndBound(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 2)
	if l.Record(SlowEntry{TraceID: "fast", WallMS: 3}) {
		t.Fatal("recorded a query under the threshold")
	}
	for _, id := range []string{"a", "b", "c"} {
		if !l.Record(SlowEntry{TraceID: id, WallMS: 50}) {
			t.Fatalf("dropped slow query %q", id)
		}
	}
	got := l.Entries()
	if len(got) != 2 || got[0].TraceID != "c" || got[1].TraceID != "b" {
		t.Fatalf("entries = %+v, want newest-first [c b]", got)
	}
	if l.Recorded() != 3 {
		t.Fatalf("Recorded = %d, want 3", l.Recorded())
	}

	var nilLog *SlowLog
	if nilLog.Record(SlowEntry{WallMS: 1e9}) || nilLog.Entries() != nil || nilLog.Recorded() != 0 {
		t.Fatal("nil SlowLog recorded something")
	}

	// Threshold <= 0 captures everything.
	all := NewSlowLog(0, 4)
	if !all.Record(SlowEntry{TraceID: "x", WallMS: 0}) {
		t.Fatal("zero-threshold log dropped an instant query")
	}
}
