// Package obs is the query observability layer: tracing spans recording
// where a query spent its §2.3 cost and its wall time, a Prometheus-text
// metrics registry (metrics.go), and a bounded slow-query log (slowlog.go).
//
// The design mirrors internal/govern's nil-Governor idiom: a nil *Span is a
// valid span on which every method is a no-op, so execution code threads
// spans unconditionally and pays nothing — no allocation, no atomic, no
// lock — when tracing is disabled. Span creation is the only operation that
// must be guarded by the caller when building the span's name is itself
// costly:
//
//	var sp *obs.Span
//	if parent := gov.Span(); parent != nil {
//		sp = parent.Child(obs.KindStmt, stmt.String())
//	}
//	... work ...
//	sp.AddTuples(int64(out.Len()))
//	sp.End()
//
// Spans form a tree per query. By convention Span.Tuples carries the
// governor charge attributed to that span alone (children excluded), so for
// a completed query the recursive TupleTotal of the winning attempt's span
// equals Report.Produced — an invariant the engine's differential tests
// enforce across every strategy.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a span for filtering and rendering.
type Kind string

// The span kinds produced by the engine, the executors, and the service.
const (
	// KindQuery is the root span of one query.
	KindQuery Kind = "query"
	// KindQueue covers the wait for an admission worker slot.
	KindQueue Kind = "queue"
	// KindResolve covers strategy resolution.
	KindResolve Kind = "resolve"
	// KindPlanCache covers the plan-cache lookup (hit, miss, or coalesced
	// wait on another caller's derivation).
	KindPlanCache Kind = "plan-cache"
	// KindPlan covers optimizer search and Algorithm 1/2 derivation.
	KindPlan Kind = "plan"
	// KindAttempt covers one strategy attempt (a degradation-ladder rung, or
	// the single attempt of an explicit strategy).
	KindAttempt Kind = "attempt"
	// KindExecute covers governed execution of a cached plan.
	KindExecute Kind = "execute"
	// KindReduce covers a semijoin reduction pass.
	KindReduce Kind = "reduce"
	// KindEval covers join-expression evaluation.
	KindEval Kind = "eval"
	// KindPipeline covers the acyclic full-reduce + monotone-join pipeline.
	KindPipeline Kind = "pipeline"
	// KindStmt covers one program statement.
	KindStmt Kind = "stmt"
	// KindTrie covers trie-index construction for the WCOJ backend.
	KindTrie Kind = "trie"
	// KindEnumerate covers the leapfrog enumeration of the WCOJ backend.
	KindEnumerate Kind = "enumerate"
	// KindVar reports per-variable binding counts of the WCOJ enumeration.
	KindVar Kind = "var"
)

// Span is one timed region of a query's execution. Spans are created with
// Child (or NewTrace for roots), accumulate a governor-charge tuple count
// and free-form notes, and are closed with End. All methods are safe on a
// nil receiver and safe for concurrent use, so one span may parent children
// created by concurrent executor goroutines.
type Span struct {
	kind   Kind
	name   string
	start  time.Time
	wall   atomic.Int64 // duration in ns, valid once ended is set
	ended  atomic.Bool
	tuples atomic.Int64

	mu       sync.Mutex
	children []*Span
	notes    []string
}

// newSpan starts a span now.
func newSpan(kind Kind, name string) *Span {
	return &Span{kind: kind, name: name, start: time.Now()}
}

// Child starts a sub-span. On a nil receiver it returns nil, so disabled
// tracing propagates down the tree for free; callers should still guard the
// call when computing the name is costly (see the package comment).
func (s *Span) Child(kind Kind, name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(kind, name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddTuples charges n tuples to this span (not its children). By convention
// this is the governor charge attributed to the span's own work.
func (s *Span) AddTuples(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.tuples.Add(n)
}

// Note appends a free-form annotation.
func (s *Span) Note(format string, args ...any) {
	if s == nil {
		return
	}
	n := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.notes = append(s.notes, n)
	s.mu.Unlock()
}

// End closes the span, fixing its wall time. Extra calls are ignored, so a
// deferred End composes with early explicit ones.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.ended.CompareAndSwap(false, true) {
		s.wall.Store(int64(time.Since(s.start)))
	}
}

// Kind returns the span's kind ("" on nil).
func (s *Span) Kind() Kind {
	if s == nil {
		return ""
	}
	return s.kind
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start instant (zero on nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	return s != nil && s.ended.Load()
}

// Wall returns the span's duration (zero until ended).
func (s *Span) Wall() time.Duration {
	if s == nil || !s.ended.Load() {
		return 0
	}
	return time.Duration(s.wall.Load())
}

// Tuples returns the tuples charged to this span alone.
func (s *Span) Tuples() int64 {
	if s == nil {
		return 0
	}
	return s.tuples.Load()
}

// Notes returns a copy of the span's annotations.
func (s *Span) Notes() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.notes...)
}

// Children returns the sub-spans, ordered by start time.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].start.Before(out[j].start) })
	return out
}

// TupleTotal returns the tuples charged to this span and all descendants —
// for a query's winning attempt, the governor's Produced total.
func (s *Span) TupleTotal() int64 {
	if s == nil {
		return 0
	}
	total := s.tuples.Load()
	for _, c := range s.Children() {
		total += c.TupleTotal()
	}
	return total
}

// Walk visits the span and its descendants depth-first in start order.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(*Span, int), depth int) {
	fn(s, depth)
	for _, c := range s.Children() {
		c.walk(fn, depth+1)
	}
}

// CheckNested verifies the tree is well formed: every span has ended, every
// child started no earlier than its parent, and every child ended no later
// than its parent. It is the assertion shared by the engine and service
// trace tests.
func (s *Span) CheckNested() error {
	if s == nil {
		return nil
	}
	if !s.Ended() {
		return fmt.Errorf("obs: span %q (%s) never ended", s.name, s.kind)
	}
	end := s.start.Add(s.Wall())
	for _, c := range s.Children() {
		if c.start.Before(s.start) {
			return fmt.Errorf("obs: span %q starts %s before its parent %q",
				c.name, s.start.Sub(c.start), s.name)
		}
		if err := c.CheckNested(); err != nil {
			return err
		}
		if cEnd := c.start.Add(c.Wall()); cEnd.After(end) {
			return fmt.Errorf("obs: span %q ends %s after its parent %q",
				c.name, cEnd.Sub(end), s.name)
		}
	}
	return nil
}

// Format renders the span tree for humans: one line per span with its wall
// time, tuple charge, and notes, children indented under parents.
func (s *Span) Format() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(sp *Span, depth int) {
		label := string(sp.kind)
		if sp.name != "" {
			label += " " + sp.name
		}
		fmt.Fprintf(&b, "%s%-*s %12s", strings.Repeat("  ", depth), 48-2*depth, label,
			sp.Wall().Round(time.Microsecond))
		if n := sp.Tuples(); n > 0 {
			fmt.Fprintf(&b, " %8d tuples", n)
		}
		if notes := sp.Notes(); len(notes) > 0 {
			fmt.Fprintf(&b, "  — %s", strings.Join(notes, "; "))
		}
		b.WriteByte('\n')
	})
	return strings.TrimRight(b.String(), "\n")
}

// SpanJSON is the wire form of a span tree (slow-query log entries, joinrun
// -json -trace).
type SpanJSON struct {
	Kind Kind   `json:"kind"`
	Name string `json:"name"`
	// StartOffsetMS is the span's start relative to the tree root, so
	// overlap between concurrent spans is visible.
	StartOffsetMS float64     `json:"start_offset_ms"`
	WallMS        float64     `json:"wall_ms"`
	Tuples        int64       `json:"tuples,omitempty"`
	Notes         []string    `json:"notes,omitempty"`
	Children      []*SpanJSON `json:"children,omitempty"`
}

// JSON converts the span tree to its wire form, with offsets relative to s.
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	return s.json(s.start)
}

func (s *Span) json(origin time.Time) *SpanJSON {
	j := &SpanJSON{
		Kind:          s.kind,
		Name:          s.name,
		StartOffsetMS: float64(s.start.Sub(origin)) / float64(time.Millisecond),
		WallMS:        float64(s.Wall()) / float64(time.Millisecond),
		Tuples:        s.Tuples(),
		Notes:         s.Notes(),
	}
	for _, c := range s.Children() {
		j.Children = append(j.Children, c.json(origin))
	}
	return j
}

// Trace is one query's span tree plus its identity.
type Trace struct {
	// ID is the per-query trace ID surfaced in joind responses.
	ID string
	// Root is the query's root span (kind KindQuery), already started.
	Root *Span
}

// NewTrace starts a trace: a fresh ID and a running root span.
func NewTrace(name string) *Trace {
	return &Trace{ID: newTraceID(), Root: newSpan(KindQuery, name)}
}

// Format renders the trace for humans.
func (t *Trace) Format() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("trace %s (%d tuples charged across spans)\n%s",
		t.ID, t.Root.TupleTotal(), t.Root.Format())
}

// traceSeq and traceSeed make trace IDs unique across the process: an
// 8-hex-char random process prefix plus a monotone counter.
var (
	traceSeq      atomic.Uint64
	traceSeedOnce sync.Once
	traceSeed     string
)

func newTraceID() string {
	traceSeedOnce.Do(func() {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degrade to a time-derived prefix; IDs stay unique in-process.
			traceSeed = fmt.Sprintf("%08x", uint32(time.Now().UnixNano()))
			return
		}
		traceSeed = hex.EncodeToString(b[:])
	})
	return fmt.Sprintf("%s-%06x", traceSeed, traceSeq.Add(1))
}

// Tracer decides whether and how query traces are recorded. Implementations
// must be safe for concurrent use; the service calls StartQuery as a query
// is admitted for processing and FinishQuery after its root span has ended.
// A nil Tracer disables tracing entirely.
type Tracer interface {
	// StartQuery begins a trace for one query. Returning nil skips tracing
	// for that query (sampling tracers do this).
	StartQuery(name string) *Trace
	// FinishQuery delivers a completed trace (its root span has ended).
	FinishQuery(t *Trace)
}

// Collector is the reference Tracer: it traces every query and retains the
// most recent completed traces in a bounded ring.
type Collector struct {
	mu     sync.Mutex
	cap    int
	traces []*Trace
}

// NewCollector returns a Collector keeping at most capacity finished traces
// (capacity <= 0 keeps 16).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = 16
	}
	return &Collector{cap: capacity}
}

// StartQuery implements Tracer.
func (c *Collector) StartQuery(name string) *Trace { return NewTrace(name) }

// FinishQuery implements Tracer.
func (c *Collector) FinishQuery(t *Trace) {
	if t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traces = append(c.traces, t)
	if len(c.traces) > c.cap {
		c.traces = append(c.traces[:0], c.traces[len(c.traces)-c.cap:]...)
	}
}

// Traces returns the retained traces, oldest first.
func (c *Collector) Traces() []*Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Trace(nil), c.traces...)
}
