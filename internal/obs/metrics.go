package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a minimal Prometheus-text-format metrics registry: counters,
// labeled counter vectors, callback gauges/counters, and histograms, all
// safe for concurrent use, rendered by WriteText in registration order. It
// implements just enough of the exposition format (version 0.0.4) for a
// Prometheus scraper — no external dependency.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// metric is anything the registry can render.
type metric interface {
	write(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register adds m under name, panicking on duplicates (a programmer error:
// metric names are compile-time constants).
func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// WriteText renders every registered metric in the Prometheus text format.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.write(w)
	}
}

// header writes the # HELP / # TYPE preamble.
func header(w io.Writer, name, help, typ string) {
	help = strings.ReplaceAll(help, "\\", `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, "\\", `\\`)
	v = strings.ReplaceAll(v, "\"", `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// CounterVec is a counter partitioned by one or more labels. Unused label
// combinations are absent from the output until first incremented.
type CounterVec struct {
	name, help string
	labels     []string

	mu   sync.Mutex
	vals map[string]*atomic.Int64
}

// CounterVec registers and returns a labeled counter.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	v := &CounterVec{name: name, help: help, labels: labels, vals: make(map[string]*atomic.Int64)}
	r.register(name, v)
	return v
}

// Inc adds one to the series for the given label values (one per label, in
// registration order).
func (v *CounterVec) Inc(labelValues ...string) { v.Add(1, labelValues...) }

// Add adds n to the series for the given label values.
func (v *CounterVec) Add(n int64, labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s got %d label values, want %d", v.name, len(labelValues), len(v.labels)))
	}
	key := strings.Join(labelValues, "\xff")
	v.mu.Lock()
	cell, ok := v.vals[key]
	if !ok {
		cell = new(atomic.Int64)
		v.vals[key] = cell
	}
	v.mu.Unlock()
	cell.Add(n)
}

// Value returns the current count for the given label values.
func (v *CounterVec) Value(labelValues ...string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if cell, ok := v.vals[strings.Join(labelValues, "\xff")]; ok {
		return cell.Load()
	}
	return 0
}

func (v *CounterVec) write(w io.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		n      int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		parts := strings.Split(k, "\xff")
		pairs := make([]string, len(parts))
		for i, p := range parts {
			pairs[i] = fmt.Sprintf("%s=%q", v.labels[i], escapeLabel(p))
		}
		rows = append(rows, row{labels: strings.Join(pairs, ","), n: v.vals[k].Load()})
	}
	v.mu.Unlock()
	for _, r := range rows {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, r.labels, r.n)
	}
}

// funcMetric renders a scrape-time callback as a gauge or counter. Used for
// values another subsystem already tracks (plan-cache stats, pool
// occupancy), so scraping never duplicates state.
type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time; fn must be monotone.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, typ: "counter", fn: fn})
}

func (m *funcMetric) write(w io.Writer) {
	header(w, m.name, m.help, m.typ)
	fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
}

// DefBuckets are the default histogram buckets, in seconds: half a
// millisecond up to ten seconds, roughly exponential — sized for query
// latencies and queue waits.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram with the standard cumulative
// exposition (name_bucket{le=...}, name_sum, name_count).
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // per bucket; counts[len(bounds)] = +Inf overflow
	sumBits    atomic.Uint64  // float64 bits of the observation sum
}

// Histogram registers and returns a histogram over the given ascending
// bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: %s buckets not ascending", name))
		}
	}
	h := &Histogram{name: name, help: help, bounds: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Int64, len(buckets)+1)
	r.register(name, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBitsAdd(old, v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func (h *Histogram) write(w io.Writer) {
	header(w, h.name, h.help, "histogram")
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}

// floatBitsAdd adds v to the float64 encoded in bits, returning new bits —
// the CAS-loop body of Histogram.Observe.
func floatBitsAdd(bits uint64, v float64) uint64 {
	return math.Float64bits(math.Float64frombits(bits) + v)
}
