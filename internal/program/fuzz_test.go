package program

import "testing"

// FuzzParseProgram drives the program parser with arbitrary input: it must
// never panic, and any accepted program must validate and round-trip.
func FuzzParseProgram(f *testing.F) {
	for _, seed := range []string{
		"R(V) := R(ABC) ⋉ R(CDE)\nR(V) := R(V) ⋈ R(EFG)",
		"R(F) := π_C R(ABC)",
		"R(F) := π_{C, E} R(ABC)",
		"X := ABC |><| EFG",
		"X := ABC <| CDE",
		"# comment\n\nR(V) := R(ABC) ⋈ R(CDE)",
		"R() := R(ABC) ⋈ R(CDE)",
		"R(V) = R(ABC) ⋈ R(CDE)",
		"",
		"π_ :=",
	} {
		f.Add(seed)
	}
	inputs := []string{"ABC", "CDE", "EFG", "GHA"}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text, inputs, "")
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\n%q", err, text)
		}
		again, err := Parse(p.String(), inputs, p.Output)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n%s", err, p)
		}
		if again.String() != p.String() {
			t.Fatalf("round trip changed program:\n%s\nvs\n%s", again, p)
		}
	})
}
