package program

// liveKeep computes, by a single backward liveness scan, which statements
// are live. A statement is dead when the relation it assigns is overwritten
// before being read and is not the program's output. A semijoin in the §2.2
// in-place form reads its own head; the generalized form reads only its
// operands (Arg1 may equal Head, which the scan handles uniformly since the
// read happens in the same statement as the kill).
func (p *Program) liveKeep() []bool {
	live := map[string]bool{p.Output: true}
	keep := make([]bool, len(p.Stmts))
	for i := len(p.Stmts) - 1; i >= 0; i-- {
		s := p.Stmts[i]
		if !live[s.Head] {
			continue // dead: head unread before its next overwrite
		}
		keep[i] = true
		// This definition satisfies the pending reads of the head...
		live[s.Head] = false
		// ...and reads its operands.
		live[s.Arg1] = true
		if s.Op != OpProject {
			live[s.Arg2] = true
		}
	}
	return keep
}

// EliminateDead returns a copy of the program with dead statements removed.
// Removing dead statements never changes the output relation and never
// increases the cost (each removed statement drops its head's tuples from
// the §2.3 cost sum).
func (p *Program) EliminateDead() *Program {
	keep := p.liveKeep()
	out := &Program{
		Inputs: append([]string(nil), p.Inputs...),
		Output: p.Output,
	}
	for i, s := range p.Stmts {
		if keep[i] {
			out.Stmts = append(out.Stmts, s)
		}
	}
	return out
}

// DeadStatements returns the 0-based indexes of the statements
// EliminateDead would remove; useful for diagnostics.
func (p *Program) DeadStatements() []int {
	keep := p.liveKeep()
	var dead []int
	for i, k := range keep {
		if !k {
			dead = append(dead, i)
		}
	}
	return dead
}
