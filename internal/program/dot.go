package program

import (
	"fmt"
	"strings"
)

// DOT renders the program's dataflow in Graphviz dot syntax: a node per
// statement (labeled with the statement text) and per input, with edges
// from each relation's most recent definition to the statements reading it.
// Pipe through `dot -Tsvg` for a dataflow diagram of a derived program.
func (p *Program) DOT(graphName string) string {
	if graphName == "" {
		graphName = "program"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", graphName)
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")

	// lastDef maps a relation name to the DOT node currently defining it.
	lastDef := make(map[string]string, len(p.Inputs)+len(p.Stmts))
	for i, in := range p.Inputs {
		node := fmt.Sprintf("in%d", i)
		fmt.Fprintf(&b, "  %s [label=%q, shape=ellipse];\n", node, "R("+in+")")
		lastDef[in] = node
	}
	for i, s := range p.Stmts {
		node := fmt.Sprintf("s%d", i)
		fmt.Fprintf(&b, "  %s [label=%q, shape=box];\n", node, s.String())
		reads := []string{s.Arg1}
		if s.Op != OpProject {
			reads = append(reads, s.Arg2)
		}
		for _, r := range reads {
			if def, ok := lastDef[r]; ok {
				fmt.Fprintf(&b, "  %s -> %s;\n", def, node)
			}
		}
		lastDef[s.Head] = node
	}
	if def, ok := lastDef[p.Output]; ok {
		b.WriteString("  out [label=\"⋈D\", shape=doublecircle];\n")
		fmt.Fprintf(&b, "  %s -> out;\n", def)
	}
	b.WriteString("}\n")
	return b.String()
}
