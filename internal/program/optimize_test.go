package program

import (
	"testing"

	"repro/internal/relation"
)

func TestEliminateDeadRemovesUnusedStatement(t *testing.T) {
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpJoin, Head: "X", Arg1: "ABC", Arg2: "EFG"},
			{Op: OpJoin, Head: "DEADVAR", Arg1: "CDE", Arg2: "GHA"}, // never read
			{Op: OpJoin, Head: "Y", Arg1: "CDE", Arg2: "GHA"},
			{Op: OpJoin, Head: "X", Arg1: "X", Arg2: "Y"},
		},
		Output: "X",
	}
	opt := p.EliminateDead()
	if opt.Len() != 3 {
		t.Fatalf("optimized program has %d statements, want 3:\n%s", opt.Len(), opt)
	}
	if dead := p.DeadStatements(); len(dead) != 1 || dead[0] != 1 {
		t.Errorf("DeadStatements = %v, want [1]", dead)
	}
	db := paperDB(t)
	want, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Output.Equal(want.Output) {
		t.Error("elimination changed the output")
	}
	if got.Cost >= want.Cost {
		t.Errorf("elimination did not reduce cost: %d vs %d", got.Cost, want.Cost)
	}
}

func TestEliminateDeadRemovesOverwrittenDefinition(t *testing.T) {
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpJoin, Head: "X", Arg1: "ABC", Arg2: "CDE"}, // overwritten before read
			{Op: OpJoin, Head: "X", Arg1: "CDE", Arg2: "GHA"},
		},
		Output: "X",
	}
	opt := p.EliminateDead()
	if opt.Len() != 1 {
		t.Fatalf("optimized program has %d statements, want 1", opt.Len())
	}
	if opt.Stmts[0].Arg1 != "CDE" {
		t.Error("kept the wrong definition")
	}
}

func TestEliminateDeadKeepsInPlaceSemijoinChain(t *testing.T) {
	// The in-place semijoin reads its head, so a reduce-then-use chain must
	// survive intact.
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpSemijoin, Head: "ABC", Arg1: "ABC", Arg2: "CDE"},
			{Op: OpSemijoin, Head: "ABC", Arg1: "ABC", Arg2: "GHA"},
			{Op: OpJoin, Head: "V", Arg1: "ABC", Arg2: "CDE"},
		},
		Output: "V",
	}
	opt := p.EliminateDead()
	if opt.Len() != 3 {
		t.Fatalf("optimized program has %d statements, want 3:\n%s", opt.Len(), opt)
	}
}

func TestEliminateDeadIdempotentOnCleanPrograms(t *testing.T) {
	p := example2Program()
	opt := p.EliminateDead()
	if opt.Len() != p.Len() {
		t.Errorf("clean program shrank from %d to %d statements", p.Len(), opt.Len())
	}
	if len(p.DeadStatements()) != 0 {
		t.Error("clean program reported dead statements")
	}
}

func TestEliminateDeadPreservesValidation(t *testing.T) {
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpProject, Head: "P", Arg1: "ABC", Proj: relation.NewAttrSet("C")},
			{Op: OpJoin, Head: "Q", Arg1: "P", Arg2: "CDE"},
			{Op: OpProject, Head: "UNUSED", Arg1: "EFG", Proj: relation.NewAttrSet("E")},
			{Op: OpSemijoin, Head: "Q", Arg1: "Q", Arg2: "GHA"},
		},
		Output: "Q",
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := p.EliminateDead()
	if err := opt.Validate(); err != nil {
		t.Fatalf("optimized program fails validation: %v", err)
	}
	if opt.Len() != 3 {
		t.Errorf("optimized program has %d statements, want 3", opt.Len())
	}
}
