package program_test

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/govern"
	"repro/internal/jointree"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Differential layer for the DAG executor: ApplyParallel must be
// extensionally identical to Apply — same output, same §2.3 cost, same
// per-statement trace sizes, same governed totals and budget aborts — on
// derived Algorithm-2 programs over random cyclic and acyclic schemes, at
// every worker count. The external test package lets these tests drive the
// executor through core.Derive, the way the engine does.

func parallelWorkerSweep() []int {
	sweep := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		sweep = append(sweep, p)
	}
	return sweep
}

// leftDeepTree is the no-optimization spine over n relations.
func leftDeepTree(n int) *jointree.Tree {
	t := jointree.NewLeaf(0)
	for i := 1; i < n; i++ {
		t = jointree.NewJoin(t, jointree.NewLeaf(i))
	}
	return t
}

// randomDerived draws a connected random scheme, a small random database
// over it, and the Algorithm 1+2 program derived from the left-deep tree.
func randomDerived(t *testing.T, rng *rand.Rand) (*relation.Database, *program.Program) {
	t.Helper()
	h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
		Relations: 2 + rng.Intn(4),
		Attrs:     4 + rng.Intn(3),
		MaxArity:  3,
		Connected: true,
	})
	if err != nil {
		t.Fatalf("random scheme: %v", err)
	}
	db, err := workload.RandomDatabase(rng, h, 4+rng.Intn(12), 2)
	if err != nil {
		t.Fatalf("random database: %v", err)
	}
	d, err := core.DeriveFromTree(leftDeepTree(h.Len()), h, nil)
	if err != nil {
		t.Fatalf("derive: %v", err)
	}
	return db, d.Program
}

func TestApplyParallelMatchesApplyOnRandomDerivedPrograms(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1992))
	for trial := 0; trial < 60; trial++ {
		db, p := randomDerived(t, rng)
		want, err := p.Apply(db)
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		// Theorem 1: the program computes ⋈D — anchor both executors to the
		// naive pairwise join, not just to each other.
		if naive := db.Join(); !want.Output.Equal(naive) {
			t.Fatalf("trial %d: sequential program output differs from ⋈D (%d vs %d tuples)",
				trial, want.Output.Len(), naive.Len())
		}
		for _, w := range parallelWorkerSweep() {
			got, err := p.ApplyParallel(db, w)
			if err != nil {
				t.Fatalf("trial %d %d workers: %v", trial, w, err)
			}
			if !got.Output.Equal(want.Output) {
				t.Fatalf("trial %d %d workers: outputs differ (%d vs %d tuples)",
					trial, w, got.Output.Len(), want.Output.Len())
			}
			if got.Cost != want.Cost {
				t.Fatalf("trial %d %d workers: cost %d, sequential %d", trial, w, got.Cost, want.Cost)
			}
			if len(got.Trace) != len(want.Trace) {
				t.Fatalf("trial %d %d workers: trace length %d, sequential %d",
					trial, w, len(got.Trace), len(want.Trace))
			}
			for i := range got.Trace {
				if got.Trace[i].Size != want.Trace[i].Size {
					t.Fatalf("trial %d %d workers: statement %d head size %d, sequential %d",
						trial, w, i+1, got.Trace[i].Size, want.Trace[i].Size)
				}
			}
		}
	}
}

func TestApplyParallelGovernedChargesSequentialTotals(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1993))
	for trial := 0; trial < 40; trial++ {
		db, p := randomDerived(t, rng)
		seqG := govern.New(govern.Limits{MaxTuples: 1 << 40})
		if _, err := p.ApplyGoverned(db, seqG); err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		for _, w := range parallelWorkerSweep() {
			parG := govern.New(govern.Limits{MaxTuples: 1 << 40})
			if _, err := p.ApplyParallelGoverned(db, parG, w); err != nil {
				t.Fatalf("trial %d %d workers: %v", trial, w, err)
			}
			if parG.Produced() != seqG.Produced() {
				t.Fatalf("trial %d %d workers: parallel charged %d, sequential %d",
					trial, w, parG.Produced(), seqG.Produced())
			}
		}
	}
}

// TestApplyParallelGovernedBudgetAborts pins the abort boundary
// deterministically: a budget of exactly the charged total succeeds; one
// tuple less aborts with govern.ErrTupleBudget and no partial Result.
func TestApplyParallelGovernedBudgetAborts(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1994))
	tried := 0
	for trial := 0; tried < 25; trial++ {
		if trial > 500 {
			t.Fatal("could not generate enough programs with nonzero charged totals")
		}
		db, p := randomDerived(t, rng)
		probe := govern.New(govern.Limits{MaxTuples: 1 << 40})
		if _, err := p.ApplyGoverned(db, probe); err != nil {
			t.Fatalf("trial %d probe: %v", trial, err)
		}
		total := probe.Produced()
		if total == 0 {
			continue
		}
		tried++
		for _, w := range parallelWorkerSweep() {
			okG := govern.New(govern.Limits{MaxTuples: total, CheckEvery: 1})
			if _, err := p.ApplyParallelGoverned(db, okG, w); err != nil {
				t.Fatalf("trial %d %d workers: budget == total must succeed, got %v", trial, w, err)
			}
			abortG := govern.New(govern.Limits{MaxTuples: total - 1, CheckEvery: 1})
			res, err := p.ApplyParallelGoverned(db, abortG, w)
			if !errors.Is(err, govern.ErrTupleBudget) {
				t.Fatalf("trial %d %d workers: budget == total-1 must abort with ErrTupleBudget, got %v", trial, w, err)
			}
			if res != nil {
				t.Fatalf("trial %d %d workers: abort leaked a partial Result", trial, w)
			}
		}
	}
}

// TestApplyParallelRenamesDestructiveAssignment exercises the SSA renaming
// directly: a program that reassigns a variable after another statement read
// it (write-after-read) and reassigns it again (write-after-write) must
// still match sequential execution at every worker count.
func TestApplyParallelRenamesDestructiveAssignment(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	x := relation.New(relation.SchemaOfRunes("AB"))
	y := relation.New(relation.SchemaOfRunes("BC"))
	for a := int64(0); a < 4; a++ {
		for b := int64(0); b < 3; b++ {
			x.MustInsert(relation.Ints(a, b))
			y.MustInsert(relation.Ints(b, (a+b)%3))
		}
	}
	db, err := relation.NewDatabase(x, y)
	if err != nil {
		t.Fatal(err)
	}
	p := &program.Program{
		Inputs: []string{"X", "Y"},
		Stmts: []program.Stmt{
			{Op: program.OpJoin, Head: "T", Arg1: "X", Arg2: "Y"},                           // T₁ = X ⋈ Y
			{Op: program.OpProject, Head: "U", Arg1: "T", Proj: relation.AttrSet{"A", "B"}}, // reads T₁
			{Op: program.OpProject, Head: "T", Arg1: "T", Proj: relation.AttrSet{"B", "C"}}, // T₂ reads T₁ (WAR vs stmt 2, WAW vs stmt 1)
			{Op: program.OpJoin, Head: "W", Arg1: "U", Arg2: "T"},                           // must see T₂, not T₁
			{Op: program.OpSemijoin, Head: "W", Arg1: "W", Arg2: "X"},                       // head-aliasing semijoin rebind
		},
		Output: "W",
	}
	want, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 3, 4, 8} {
		got, err := p.ApplyParallel(db, w)
		if err != nil {
			t.Fatalf("%d workers: %v", w, err)
		}
		if !got.Output.Equal(want.Output) || got.Cost != want.Cost {
			t.Fatalf("%d workers: renamed execution diverged (output %d vs %d tuples, cost %d vs %d)",
				w, got.Output.Len(), want.Output.Len(), got.Cost, want.Cost)
		}
	}
}

// TestApplyParallelEmptyProgram covers the zero-statement path: the output
// is an input and no worker pool is spun up.
func TestApplyParallelEmptyProgram(t *testing.T) {
	r := relation.New(relation.SchemaOfRunes("AB"))
	r.MustInsert(relation.Ints(1, 2))
	db, err := relation.NewDatabase(r)
	if err != nil {
		t.Fatal(err)
	}
	p := &program.Program{Inputs: []string{"R"}, Output: "R"}
	res, err := p.ApplyParallel(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(r) || res.Cost != r.Len() {
		t.Fatalf("empty program: output %d tuples cost %d, want the input back", res.Output.Len(), res.Cost)
	}
}

// TestApplyParallelConcurrentCallers runs many parallel executions of one
// shared Program value concurrently — the scheduler must not share mutable
// state across calls (the race detector is the assertion here).
func TestApplyParallelConcurrentCallers(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1995))
	db, p := randomDerived(t, rng)
	want, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.ApplyParallel(db, 4)
			if err == nil && !res.Output.Equal(want.Output) {
				err = errors.New("output differs from sequential execution")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
}

// TestCriticalPathLen pins the DAG shape metric on a program with known
// structure: two independent chains merged by one join.
func TestCriticalPathLen(t *testing.T) {
	p := &program.Program{
		Inputs: []string{"X", "Y"},
		Stmts: []program.Stmt{
			{Op: program.OpProject, Head: "A1", Arg1: "X", Proj: relation.AttrSet{"A"}},
			{Op: program.OpProject, Head: "B1", Arg1: "Y", Proj: relation.AttrSet{"B"}},
			{Op: program.OpJoin, Head: "J", Arg1: "A1", Arg2: "B1"},
		},
		Output: "J",
	}
	if got := p.CriticalPathLen(); got != 2 {
		t.Fatalf("critical path: got %d, want 2 (two independent projections feed one join)", got)
	}
	empty := &program.Program{Inputs: []string{"X"}, Output: "X"}
	if got := empty.CriticalPathLen(); got != 0 {
		t.Fatalf("empty program critical path: got %d, want 0", got)
	}
}
