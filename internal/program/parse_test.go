package program

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

var paperInputs = []string{"ABC", "CDE", "EFG", "GHA"}

func TestParseExample6RoundTrip(t *testing.T) {
	text := `
R(V) := R(ABC) ⋉ R(CDE)
R(F) := π_C R(V)
R(F) := R(F) ⋈ R(CDE)
R(F) := π_CE R(F)
R(F) := R(F) ⋉ R(EFG)
R(V) := R(V) ⋈ R(F)
R(V) := R(V) ⋈ R(EFG)
R(V) := R(V) ⋉ R(GHA)
R(V) := R(V) ⋈ R(CDE)
R(V) := R(V) ⋈ R(GHA)
`
	p, err := Parse(text, paperInputs, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 10 {
		t.Fatalf("statements = %d, want 10", p.Len())
	}
	if p.Output != "V" {
		t.Errorf("output = %q, want V (last head)", p.Output)
	}
	// Printing and reparsing yields the same program text.
	again, err := Parse(p.String(), paperInputs, p.Output)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if again.String() != p.String() {
		t.Errorf("round trip changed the program:\n%s\nvs\n%s", again, p)
	}
	// The parsed program runs and computes ⋈D.
	db := paperDB(t)
	res, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(db.Join()) {
		t.Error("parsed Example 6 program computed wrong join")
	}
}

func TestParseASCIISpellings(t *testing.T) {
	text := `
R(X) := R(ABC) |><| R(EFG)
R(Y) := R(CDE) * R(GHA)
X := X |><| Y
`
	// "*" is not an accepted spelling for ⋈ in programs (it is in join
	// expressions) — the middle line must fail.
	if _, err := Parse(text, paperInputs, "X"); err == nil {
		t.Fatal("'*' accepted as a program operator")
	}
	ok := `
R(X) := R(ABC) |><| R(EFG)
R(Y) := R(CDE) |><| R(GHA)
X := X <| Y
`
	p, err := Parse(ok, paperInputs, "X")
	if err != nil {
		t.Fatal(err)
	}
	if p.Stmts[2].Op != OpSemijoin {
		t.Errorf("third statement op = %v, want ⋉", p.Stmts[2].Op)
	}
}

func TestParseBracedAttrs(t *testing.T) {
	p, err := Parse("R(P) := π_{x0, x2} R(IN)", []string{"IN"}, "P")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stmts[0].Proj.Equal(relation.NewAttrSet("x0", "x2")) {
		t.Errorf("Proj = %v", p.Stmts[0].Proj)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	text := `
# reduce first
R(V) := R(ABC) ⋉ R(CDE)

-- then join everything
R(V) := R(V) ⋈ R(CDE)
R(V) := R(V) ⋈ R(EFG)
R(V) := R(V) ⋈ R(GHA)
`
	p, err := Parse(text, paperInputs, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Errorf("statements = %d, want 4", p.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"R(V) = R(ABC) ⋈ R(CDE)",    // missing :=
		"R(V) := R(ABC)",            // no operator
		"R(V) := π_C",               // projection without operand
		"R() := R(ABC) ⋈ R(CDE)",    // empty head
		"R(V) := R(ABC) ⋈ R(NOPE)",  // undefined operand (validation)
		"R(ABC) := R(ABC) ⋈ R(CDE)", // join head must be a variable
	}
	for _, c := range cases {
		if _, err := Parse(c, paperInputs, ""); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", c)
		}
	}
	if _, err := Parse("", paperInputs, ""); err == nil {
		t.Error("empty program without explicit output accepted")
	}
	if _, err := Parse("", paperInputs, "ABC"); err != nil {
		t.Errorf("empty program with explicit input output rejected: %v", err)
	}
}

func TestParseRejectsJunkRefs(t *testing.T) {
	if _, err := Parse("R(V) := two words ⋈ R(CDE)", paperInputs, ""); err == nil {
		t.Error("junk operand accepted")
	}
	if !strings.Contains(Stmt{Op: OpJoin, Head: "V", Arg1: "A", Arg2: "B"}.String(), "⋈") {
		t.Error("sanity: join prints with ⋈")
	}
}
