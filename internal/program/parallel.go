package program

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/govern"
	"repro/internal/relation"
)

// The parallel executor runs a program as a step-dependency DAG instead of a
// straight line. The paper's programs use destructive assignment, so the
// textual statement order carries write-after-read and write-after-write
// hazards as well as true data dependencies; the executor removes the false
// hazards by renaming: every statement's result is a fresh version (SSA
// style), each operand binds to the version visible at the statement's
// program point, and only true read-after-write edges remain. Statements
// whose edges are satisfied run concurrently on a bounded worker pool — in
// a derived Algorithm-2 program the per-subtree semijoin chains are mutually
// independent, so the DAG's width is roughly the number of join-tree
// branches.
//
// Resource governance is unchanged: every statement begins the same
// "program.Stmt" governor site as the sequential executor, the relation
// operators charge the same tuple totals (the parallel operator variants
// charge into one shared scope per operator), and an abort returns the typed
// govern error with no partial Result.

// valueRef identifies the producer of one operand version: statement index
// i >= 0, or input k encoded as -(k+1).
type valueRef int

// inputRef encodes input k as a valueRef.
func inputRef(k int) valueRef { return valueRef(-(k + 1)) }

// stmtNode is one statement's resolved dependencies.
type stmtNode struct {
	arg1, arg2 valueRef
	hasArg2    bool
}

// buildDAG renames the program into SSA form: each statement's operands are
// resolved to the defining statement (or input) of the version visible at
// its program point, and the final output version is returned. Validate must
// have accepted p already.
func (p *Program) buildDAG() (nodes []stmtNode, output valueRef) {
	lastDef := make(map[string]valueRef, len(p.Inputs)+len(p.Stmts))
	for k, name := range p.Inputs {
		lastDef[name] = inputRef(k)
	}
	nodes = make([]stmtNode, len(p.Stmts))
	for i, s := range p.Stmts {
		n := stmtNode{arg1: lastDef[s.Arg1]}
		if s.Op != OpProject {
			n.arg2 = lastDef[s.Arg2]
			n.hasArg2 = true
		}
		nodes[i] = n
		lastDef[s.Head] = valueRef(i)
	}
	return nodes, lastDef[p.Output]
}

// ApplyParallel executes the program on db like Apply, but schedules
// statements over their dependency DAG on a pool of up to workers
// goroutines, and runs each join, semijoin, and projection through the
// partition-parallel relation operators. The Result — output, §2.3 cost,
// and trace order — is identical to Apply's; only wall-clock work and the
// per-step Wall timings differ.
func (p *Program) ApplyParallel(db *relation.Database, workers int) (*Result, error) {
	return p.ApplyParallelGoverned(db, nil, workers)
}

// ApplyParallelGoverned is ApplyParallel under a governor, with the same
// abort semantics as ApplyGoverned: statement heads are charged (through the
// parallel operators' shared scopes, so budgets see the same totals), the
// failpoint site "program.Stmt" fires per statement, and an abort returns
// the governor's typed error with no partial Result. workers <= 0 means
// GOMAXPROCS; workers == 1 still schedules over the DAG, on a single
// goroutine.
func (p *Program) ApplyParallelGoverned(db *relation.Database, g *govern.Governor, workers int) (*Result, error) {
	if db.Len() != len(p.Inputs) {
		return nil, fmt.Errorf("program: database has %d relations, program has %d inputs",
			db.Len(), len(p.Inputs))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	nodes, outRef := p.buildDAG()
	vals := make([]*relation.Relation, len(p.Stmts))
	resolve := func(ref valueRef) *relation.Relation {
		if ref < 0 {
			return db.Relation(-int(ref) - 1)
		}
		return vals[ref]
	}

	// Dependency bookkeeping: indegree counts distinct statement (not input)
	// dependencies; dependents is the reverse adjacency.
	indegree := make([]atomic.Int32, len(p.Stmts))
	dependents := make([][]int, len(p.Stmts))
	for i, n := range nodes {
		deps := 0
		if n.arg1 >= 0 {
			dependents[n.arg1] = append(dependents[n.arg1], i)
			deps++
		}
		if n.hasArg2 && n.arg2 >= 0 && n.arg2 != n.arg1 {
			dependents[n.arg2] = append(dependents[n.arg2], i)
			deps++
		}
		indegree[i].Store(int32(deps))
	}

	steps := make([]Step, len(p.Stmts))
	ready := make(chan int, len(p.Stmts))
	quit := make(chan struct{})
	var (
		errOnce   sync.Once
		firstErr  error
		remaining atomic.Int32
	)
	remaining.Store(int32(len(p.Stmts)))
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(quit)
		})
	}
	for i := range nodes {
		if indegree[i].Load() == 0 {
			ready <- i
		}
	}
	if len(p.Stmts) == 0 {
		close(ready)
	}

	runStmt := func(i int) error {
		s := p.Stmts[i]
		if _, err := g.Begin("program.Stmt"); err != nil {
			return fmt.Errorf("program: statement %d (%s): %w", i+1, s, err)
		}
		// Concurrent statements open sibling spans on the shared parent;
		// Span.Child is safe for that.
		span := beginStmtSpan(g, s)
		start := time.Now()
		var out *relation.Relation
		var err error
		switch s.Op {
		case OpProject:
			out, err = relation.ParallelProjectGoverned(g, resolve(nodes[i].arg1), s.Proj, workers)
		case OpJoin:
			out, err = relation.ParallelJoinGoverned(g, resolve(nodes[i].arg1), resolve(nodes[i].arg2), workers)
		case OpSemijoin:
			out, err = relation.ParallelSemijoinGoverned(g, resolve(nodes[i].arg1), resolve(nodes[i].arg2), workers)
		}
		if err != nil {
			span.finish(0, err)
			return fmt.Errorf("program: statement %d (%s): %w", i+1, s, err)
		}
		span.finish(out.Len(), nil)
		vals[i] = out
		steps[i] = Step{Stmt: s, Schema: out.Schema(), Size: out.Len(), Wall: time.Since(start)}
		// Release dependents; close ready once the last statement finishes,
		// so idle workers drain out.
		for _, j := range dependents[i] {
			if indegree[j].Add(-1) == 0 {
				ready <- j
			}
		}
		if remaining.Add(-1) == 0 {
			close(ready)
		}
		return nil
	}

	pool := workers
	if pool > len(p.Stmts) {
		pool = len(p.Stmts)
	}
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-quit:
					return
				case i, ok := <-ready:
					if !ok {
						return
					}
					if err := runStmt(i); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	cost := 0
	for i := 0; i < db.Len(); i++ {
		cost += db.Relation(i).Len()
	}
	res := &Result{Trace: make([]Step, 0, len(p.Stmts))}
	for i := range steps {
		cost += steps[i].Size
		res.Trace = append(res.Trace, steps[i])
	}
	res.Output = resolve(outRef)
	res.Cost = cost
	return res, nil
}

// CriticalPathLen returns the number of statements on the longest chain of
// true data dependencies — the lower bound on parallel execution's depth.
// Width (statements ÷ critical path) is the parallelism the DAG scheduler
// can exploit.
func (p *Program) CriticalPathLen() int {
	if err := p.Validate(); err != nil {
		return len(p.Stmts)
	}
	nodes, _ := p.buildDAG()
	depth := make([]int, len(p.Stmts))
	longest := 0
	for i, n := range nodes {
		d := 0
		if n.arg1 >= 0 && depth[n.arg1] > d {
			d = depth[n.arg1]
		}
		if n.hasArg2 && n.arg2 >= 0 && depth[n.arg2] > d {
			d = depth[n.arg2]
		}
		depth[i] = d + 1
		if depth[i] > longest {
			longest = depth[i]
		}
	}
	return longest
}
