package program

import (
	"strings"
	"testing"
)

func TestProgramDOT(t *testing.T) {
	p := example2Program()
	dot := p.DOT("ex2")
	for _, want := range []string{
		`digraph "ex2" {`,
		`label="R(ABC)"`,
		`label="R(X) := R(ABC) ⋈ R(EFG)"`,
		"in0 -> s0;",
		"s0 -> s2;", // X defined by s0 read by s2
		"s1 -> s2;", // Y defined by s1 read by s2
		"s2 -> out;",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestProgramDOTInPlaceSemijoin(t *testing.T) {
	p := &Program{
		Inputs: []string{"ABC", "CDE"},
		Stmts: []Stmt{
			{Op: OpSemijoin, Head: "ABC", Arg1: "ABC", Arg2: "CDE"},
			{Op: OpJoin, Head: "V", Arg1: "ABC", Arg2: "CDE"},
		},
		Output: "V",
	}
	dot := p.DOT("")
	// The join must read the REDUCED ABC (s0), not the raw input.
	if !strings.Contains(dot, "s0 -> s1;") {
		t.Errorf("dataflow edge through in-place semijoin missing:\n%s", dot)
	}
}
