package program

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/relation"
)

// Parse reads a program in the paper's notation, one statement per line,
// e.g.
//
//	R(V) := R(ABC) ⋉ R(CDE)
//	R(F) := π_C R(V)
//	R(F) := R(F) ⋈ R(CDE)
//
// Blank lines and lines starting with "#" or "--" are ignored. ASCII
// spellings are accepted: "|><|" or "*" for ⋈, "<|" for ⋉, "pi_" for π_.
// inputs names the program's input relations (bound by position when the
// program is applied); output names the result relation — when empty, the
// head of the last statement is used. The parsed program is validated
// before being returned.
func Parse(text string, inputs []string, output string) (*Program, error) {
	p := &Program{Inputs: append([]string(nil), inputs...), Output: output}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		stmt, err := parseStmt(line)
		if err != nil {
			return nil, fmt.Errorf("program: line %d: %v", lineNo+1, err)
		}
		p.Stmts = append(p.Stmts, stmt)
	}
	if p.Output == "" {
		if len(p.Stmts) == 0 {
			return nil, fmt.Errorf("program: empty program needs an explicit output")
		}
		p.Output = p.Stmts[len(p.Stmts)-1].Head
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseStmt parses one statement line.
func parseStmt(line string) (Stmt, error) {
	// Normalize ASCII operator spellings.
	line = strings.ReplaceAll(line, "|><|", "⋈")
	line = strings.ReplaceAll(line, "<|", "⋉")
	line = strings.ReplaceAll(line, "pi_", "π_")

	head, body, ok := strings.Cut(line, ":=")
	if !ok {
		return Stmt{}, fmt.Errorf("missing := in %q", line)
	}
	headName, err := parseRef(strings.TrimSpace(head))
	if err != nil {
		return Stmt{}, fmt.Errorf("bad head: %v", err)
	}
	body = strings.TrimSpace(body)

	switch {
	case strings.HasPrefix(body, "π_"):
		rest := strings.TrimSpace(strings.TrimPrefix(body, "π_"))
		// The operand is the last whitespace-separated token; the attribute
		// list (which may itself contain spaces inside braces) is the rest.
		cut := strings.LastIndexAny(rest, " \t")
		if cut < 0 {
			return Stmt{}, fmt.Errorf("projection needs attributes and one operand, got %q", body)
		}
		attrs := strings.TrimSpace(rest[:cut])
		src, err := parseRef(strings.TrimSpace(rest[cut:]))
		if err != nil {
			return Stmt{}, fmt.Errorf("bad projection operand: %v", err)
		}
		proj, err := parseAttrs(attrs)
		if err != nil {
			return Stmt{}, fmt.Errorf("bad projection attributes: %v", err)
		}
		return Stmt{Op: OpProject, Head: headName, Arg1: src, Proj: proj}, nil
	case strings.Contains(body, "⋈"):
		l, r, _ := strings.Cut(body, "⋈")
		a1, err := parseRef(strings.TrimSpace(l))
		if err != nil {
			return Stmt{}, err
		}
		a2, err := parseRef(strings.TrimSpace(r))
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Op: OpJoin, Head: headName, Arg1: a1, Arg2: a2}, nil
	case strings.Contains(body, "⋉"):
		l, r, _ := strings.Cut(body, "⋉")
		a1, err := parseRef(strings.TrimSpace(l))
		if err != nil {
			return Stmt{}, err
		}
		a2, err := parseRef(strings.TrimSpace(r))
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Op: OpSemijoin, Head: headName, Arg1: a1, Arg2: a2}, nil
	default:
		return Stmt{}, fmt.Errorf("no operator in %q", body)
	}
}

// parseRef parses "R(NAME)" or a bare name into NAME.
func parseRef(s string) (string, error) {
	if strings.HasPrefix(s, "R(") && strings.HasSuffix(s, ")") {
		inner := strings.TrimSuffix(strings.TrimPrefix(s, "R("), ")")
		if inner == "" {
			return "", fmt.Errorf("empty relation reference %q", s)
		}
		return inner, nil
	}
	if s == "" || strings.ContainsAny(s, "() \t") {
		return "", fmt.Errorf("bad relation reference %q", s)
	}
	return s, nil
}

// parseAttrs parses a projection attribute list: either single-character
// attributes concatenated ("CE", letters and digits only) or comma-separated
// names inside braces ("{city,year}"). Whitespace or punctuation in the
// compact form is rejected — it cannot survive a print/parse round trip.
func parseAttrs(s string) (relation.AttrSet, error) {
	if strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}") {
		inner := strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
		if inner == "" {
			return nil, nil
		}
		parts := strings.Split(inner, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
			if parts[i] == "" || strings.ContainsAny(parts[i], "{}, \t") {
				return nil, fmt.Errorf("bad attribute name %q in %q", parts[i], s)
			}
		}
		return relation.NewAttrSet(parts...), nil
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			return nil, fmt.Errorf("bad character %q in compact attribute list %q (use braces for multi-character names)", r, s)
		}
	}
	if s == "" {
		return nil, fmt.Errorf("empty attribute list")
	}
	return relation.AttrSetOfRunes(s), nil
}
