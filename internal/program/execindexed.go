package program

import (
	"fmt"

	"repro/internal/govern"
	"repro/internal/relation"
)

// ApplyIndexed executes the program like Apply but builds hash indexes on
// relations that several statements probe on the same attribute set, and
// drives those joins and semijoins through the shared index. The result and
// the §2.3 cost are identical to Apply; only wall-clock work changes.
// Index builds are counted in neither (the cost model counts tuples of
// generated relations; an index generates none).
//
// Derived programs benefit: Algorithm 2 probes the same input relation from
// several statements (Example 6 touches CDE four times), and full reducers
// probe each relation twice.
func (p *Program) ApplyIndexed(db *relation.Database) (*Result, error) {
	return p.ApplyIndexedGoverned(db, nil)
}

// ApplyIndexedGoverned is ApplyIndexed under a governor, with the same
// abort semantics as ApplyGoverned: statement heads are charged, the
// failpoint site "program.Stmt" fires per statement, and aborts return the
// typed error with no partial Result. Index builds remain uncharged (they
// generate no §2.3 relation), but index-driven joins charge their outputs
// exactly like the plain operators.
func (p *Program) ApplyIndexedGoverned(db *relation.Database, g *govern.Governor) (*Result, error) {
	if db.Len() != len(p.Inputs) {
		return nil, fmt.Errorf("program: database has %d relations, program has %d inputs",
			db.Len(), len(p.Inputs))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	env := make(map[string]*relation.Relation, len(p.Inputs)+len(p.Stmts))
	cost := 0
	for i, name := range p.Inputs {
		env[name] = db.Relation(i)
		cost += db.Relation(i).Len()
	}

	// Indexes are keyed by (relation identity, probed attribute set) and
	// built lazily on the second probe of the same key: the first probe
	// runs the plain operator, so an index is only ever built when it will
	// be used at least twice. Keying by relation identity makes stale reuse
	// across reassignments impossible.
	type indexKey struct {
		rel   *relation.Relation
		attrs string
	}
	indexes := make(map[indexKey]*relation.Index)
	probeSeen := make(map[indexKey]int)

	res := &Result{Trace: make([]Step, 0, len(p.Stmts))}
	for i, s := range p.Stmts {
		if _, err := g.Begin("program.Stmt"); err != nil {
			return nil, fmt.Errorf("program: statement %d (%s): %w", i+1, s, err)
		}
		span := beginStmtSpan(g, s)
		var out *relation.Relation
		switch s.Op {
		case OpProject:
			var err error
			out, err = relation.ProjectGoverned(g, env[s.Arg1], s.Proj)
			if err != nil {
				span.finish(0, err)
				return nil, fmt.Errorf("program: statement %d (%s): %w", i+1, s, err)
			}
		case OpJoin, OpSemijoin:
			l, r := env[s.Arg1], env[s.Arg2]
			common := l.Schema().AttrSet().Intersect(r.Schema().AttrSet())
			var key indexKey
			useIndex := false
			if !common.IsEmpty() {
				key = indexKey{rel: r, attrs: common.String()}
				probeSeen[key]++
				useIndex = probeSeen[key] > 1
			}
			if useIndex {
				ix, ok := indexes[key]
				if !ok {
					var err error
					ix, err = relation.NewIndex(r, common)
					if err != nil {
						span.finish(0, err)
						return nil, fmt.Errorf("program: statement %d: %v", i+1, err)
					}
					indexes[key] = ix
				}
				var err error
				if s.Op == OpJoin {
					out, err = relation.JoinWithIndexGoverned(g, l, ix)
				} else {
					out, err = relation.SemijoinWithIndexGoverned(g, l, ix)
				}
				if err != nil {
					span.finish(0, err)
					return nil, fmt.Errorf("program: statement %d (%s): %w", i+1, s, err)
				}
			} else {
				var err error
				if s.Op == OpJoin {
					out, err = relation.JoinGoverned(g, l, r)
				} else {
					out, err = relation.SemijoinGoverned(g, l, r)
				}
				if err != nil {
					span.finish(0, err)
					return nil, fmt.Errorf("program: statement %d (%s): %w", i+1, s, err)
				}
			}
		}
		span.finish(out.Len(), nil)
		env[s.Head] = out
		cost += out.Len()
		res.Trace = append(res.Trace, Step{Stmt: s, Schema: out.Schema(), Size: out.Len()})
	}
	res.Output = env[p.Output]
	res.Cost = cost
	return res, nil
}
