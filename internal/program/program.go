// Package program implements the paper's program language (§2.2): finite
// sequences of project, join, and semijoin statements over relation
// variables and input relation schemes, with destructive assignment. It
// provides static validation of the paper's well-formedness rules, an
// interpreter with the §2.3 cost accounting, and a printer matching the
// paper's notation.
package program

import (
	"fmt"
	"strings"
	"time"
	"unicode"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Op is the statement operator.
type Op uint8

const (
	// OpProject is "R(R) := π_U R(S)".
	OpProject Op = iota
	// OpJoin is "R(R) := R(S) ⋈ R(T)".
	OpJoin
	// OpSemijoin is "R(R) := R(R) ⋉ R(S)".
	OpSemijoin
)

// String returns the operator's symbol.
func (op Op) String() string {
	switch op {
	case OpProject:
		return "π"
	case OpJoin:
		return "⋈"
	case OpSemijoin:
		return "⋉"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Stmt is one statement. Head receives the result. For OpProject, Arg1 is
// the source and Proj the projection attributes (Arg2 unused). For OpJoin,
// Arg1 and Arg2 are the operands. For OpSemijoin, the paper requires
// Head == Arg1; Arg2 is the reducer.
type Stmt struct {
	Op   Op
	Head string
	Arg1 string
	Arg2 string
	Proj relation.AttrSet
}

// String renders the statement in the paper's notation, e.g.
// "R(V) := R(V) ⋉ R(CDE)". Projection attributes print compactly ("CE")
// only when that form re-parses (single letter-or-digit names); otherwise
// they print braced ("{city,year}").
func (s Stmt) String() string {
	switch s.Op {
	case OpProject:
		return fmt.Sprintf("R(%s) := π_%s R(%s)", s.Head, formatAttrs(s.Proj), s.Arg1)
	case OpJoin:
		return fmt.Sprintf("R(%s) := R(%s) ⋈ R(%s)", s.Head, s.Arg1, s.Arg2)
	case OpSemijoin:
		return fmt.Sprintf("R(%s) := R(%s) ⋉ R(%s)", s.Head, s.Arg1, s.Arg2)
	default:
		return fmt.Sprintf("R(%s) := ?%d", s.Head, s.Op)
	}
}

// formatAttrs renders a projection attribute set so that parseAttrs reads
// it back identically: compact when every attribute is a single letter or
// digit, braced otherwise.
func formatAttrs(attrs relation.AttrSet) string {
	compact := len(attrs) > 0
	for _, a := range attrs {
		runes := []rune(a)
		if len(runes) != 1 || (!unicode.IsLetter(runes[0]) && !unicode.IsDigit(runes[0])) {
			compact = false
			break
		}
	}
	if compact {
		return strings.Join(attrs, "")
	}
	return "{" + strings.Join(attrs, ",") + "}"
}

// Program is a program over a database scheme: named inputs (one per
// relation scheme occurrence, bound by position to the database's
// relations), statements, and the name holding the result after execution.
type Program struct {
	// Inputs names the n input relations; Inputs[i] binds to relation i of
	// the database the program is applied to.
	Inputs []string
	// Stmts are executed in order with destructive assignment.
	Stmts []Stmt
	// Output names the relation holding ⋈D after execution. For the empty
	// program over a single relation it is that input's name.
	Output string
}

// Validate checks the paper's §2.2 well-formedness rules:
//   - input names are distinct and nonempty;
//   - the head of a join or project statement is a variable (not an input);
//   - the head of a semijoin statement equals its first operand (the §2.2
//     form) or is a variable, which the statement then defines — the
//     generalized form the paper itself uses in Example 6, where the head
//     aliases the first operand;
//   - every variable used in a body was defined earlier by a join or project
//     statement (inputs may be used at any time);
//   - the output name is an input or a defined variable.
func (p *Program) Validate() error {
	inputs := make(map[string]bool, len(p.Inputs))
	for i, in := range p.Inputs {
		if in == "" {
			return fmt.Errorf("program: input %d has empty name", i)
		}
		if inputs[in] {
			return fmt.Errorf("program: duplicate input name %q", in)
		}
		inputs[in] = true
	}
	defined := make(map[string]bool) // variables defined by join/project so far
	available := func(name string) bool { return inputs[name] || defined[name] }

	for i, s := range p.Stmts {
		where := fmt.Sprintf("program: statement %d (%s)", i+1, s)
		switch s.Op {
		case OpProject:
			if s.Head == "" || inputs[s.Head] {
				return fmt.Errorf("%s: project head must be a relation scheme variable", where)
			}
			if !available(s.Arg1) {
				return fmt.Errorf("%s: source %q not defined", where, s.Arg1)
			}
			defined[s.Head] = true
		case OpJoin:
			if s.Head == "" || inputs[s.Head] {
				return fmt.Errorf("%s: join head must be a relation scheme variable", where)
			}
			if !available(s.Arg1) || !available(s.Arg2) {
				return fmt.Errorf("%s: operand not defined", where)
			}
			defined[s.Head] = true
		case OpSemijoin:
			if !available(s.Arg1) || !available(s.Arg2) {
				return fmt.Errorf("%s: operand not defined", where)
			}
			if s.Head != s.Arg1 {
				// Generalized form "R(V) := R(S) ⋉ R(T)": the paper writes
				// its derived programs this way (Example 6's first statement
				// is R(V) := R(ABC) ⋉ R(CDE)), treating V as an alias of the
				// first operand. The head must then be a variable it
				// (re)defines.
				if s.Head == "" || inputs[s.Head] {
					return fmt.Errorf("%s: semijoin head must equal its first operand or be a variable", where)
				}
				defined[s.Head] = true
			}
		default:
			return fmt.Errorf("%s: unknown operator", where)
		}
	}
	if p.Output == "" || !available(p.Output) {
		return fmt.Errorf("program: output %q is not an input or defined variable", p.Output)
	}
	return nil
}

// Step records the effect of one executed statement.
type Step struct {
	// Stmt is the executed statement.
	Stmt Stmt
	// Schema is the head's schema after the assignment.
	Schema *relation.Schema
	// Size is the head's cardinality after the assignment — the statement's
	// contribution to the paper's cost.
	Size int
	// Wall is the statement's execution wall-clock time. Under the parallel
	// executor concurrent statements overlap, so the steps' Walls sum to more
	// than the program's elapsed time.
	Wall time.Duration
}

// Result is the outcome of applying a program to a database.
type Result struct {
	// Output is the relation named by the program's Output after execution.
	Output *relation.Relation
	// Cost is the paper's cost(P(D)): Σ|R_i| over the n inputs plus the head
	// cardinality of each executed statement.
	Cost int
	// Trace records every executed statement in order.
	Trace []Step
}

// Apply executes the program on db, whose relations bind positionally to the
// program's inputs. Statements assign destructively into an environment; the
// environment is seeded with the inputs (the input relations themselves are
// never mutated — a semijoin into an input name rebinds the name).
func (p *Program) Apply(db *relation.Database) (*Result, error) {
	return p.ApplyGoverned(db, nil)
}

// beginStmtSpan opens a tracing span for one statement when the governor
// carries a span (govern.Governor.SetSpan), returning the zero value — and
// formatting nothing — when untraced. The span is charged with the head
// cardinality, which is exactly what the statement's relation operator
// charges the governor, so span totals reconcile with Governor.Produced.
type stmtSpan struct{ sp *obs.Span }

func beginStmtSpan(g *govern.Governor, s Stmt) stmtSpan {
	parent := g.Span()
	if parent == nil {
		return stmtSpan{}
	}
	return stmtSpan{sp: parent.Child(obs.KindStmt, s.String())}
}

// finish closes the span with the statement's head cardinality, or the
// failure when err is non-nil.
func (t stmtSpan) finish(produced int, err error) {
	if t.sp == nil {
		return
	}
	if err != nil {
		t.sp.Note("failed: %v", err)
	} else {
		t.sp.AddTuples(int64(produced))
	}
	t.sp.End()
}

// ApplyGoverned is Apply under a governor: every statement head charges its
// tuples against the budgets, the governor's failpoint hook fires at each
// statement boundary (site "program.Stmt"), and cancellation aborts between
// or inside statements with the governor's typed error. On abort no partial
// Result is returned.
func (p *Program) ApplyGoverned(db *relation.Database, g *govern.Governor) (*Result, error) {
	if db.Len() != len(p.Inputs) {
		return nil, fmt.Errorf("program: database has %d relations, program has %d inputs",
			db.Len(), len(p.Inputs))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	env := make(map[string]*relation.Relation, len(p.Inputs)+len(p.Stmts))
	cost := 0
	for i, name := range p.Inputs {
		env[name] = db.Relation(i)
		cost += db.Relation(i).Len()
	}
	res := &Result{Trace: make([]Step, 0, len(p.Stmts))}
	for i, s := range p.Stmts {
		if _, err := g.Begin("program.Stmt"); err != nil {
			return nil, fmt.Errorf("program: statement %d (%s): %w", i+1, s, err)
		}
		span := beginStmtSpan(g, s)
		start := time.Now()
		var out *relation.Relation
		var err error
		switch s.Op {
		case OpProject:
			out, err = relation.ProjectGoverned(g, env[s.Arg1], s.Proj)
		case OpJoin:
			out, err = relation.JoinGoverned(g, env[s.Arg1], env[s.Arg2])
		case OpSemijoin:
			out, err = relation.SemijoinGoverned(g, env[s.Arg1], env[s.Arg2])
		}
		if err != nil {
			span.finish(0, err)
			return nil, fmt.Errorf("program: statement %d (%s): %w", i+1, s, err)
		}
		span.finish(out.Len(), nil)
		env[s.Head] = out
		cost += out.Len()
		res.Trace = append(res.Trace, Step{Stmt: s, Schema: out.Schema(), Size: out.Len(), Wall: time.Since(start)})
	}
	res.Output = env[p.Output]
	res.Cost = cost
	return res, nil
}

// Len returns the number of statements (m in the paper's cost definition).
func (p *Program) Len() int { return len(p.Stmts) }

// OpCounts returns the number of statements per operator, in the order
// (projections, joins, semijoins).
func (p *Program) OpCounts() (projects, joins, semijoins int) {
	for _, s := range p.Stmts {
		switch s.Op {
		case OpProject:
			projects++
		case OpJoin:
			joins++
		case OpSemijoin:
			semijoins++
		}
	}
	return projects, joins, semijoins
}

// String renders the program one statement per line, in the paper's
// notation.
func (p *Program) String() string {
	if len(p.Stmts) == 0 {
		return fmt.Sprintf("(empty program; output %s)", p.Output)
	}
	lines := make([]string, len(p.Stmts))
	for i, s := range p.Stmts {
		lines[i] = s.String()
	}
	return strings.Join(lines, "\n")
}
