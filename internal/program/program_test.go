package program

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// paperDB builds the 4-cycle database used across the tests: links
// increment mod 3 plus a closing bottom tuple.
func paperDB(t *testing.T) *relation.Database {
	t.Helper()
	mk := func(scheme string) *relation.Relation { return relation.New(relation.SchemaOfRunes(scheme)) }
	r1, r2, r3, r4 := mk("ABC"), mk("CDE"), mk("EFG"), mk("GHA")
	for v := int64(0); v < 3; v++ {
		next := (v + 1) % 3
		for pay := int64(0); pay < 2; pay++ {
			for _, r := range []*relation.Relation{r1, r2, r3, r4} {
				r.MustInsert(relation.Ints(v, pay, next))
			}
		}
	}
	for _, r := range []*relation.Relation{r1, r2, r3, r4} {
		r.MustInsert(relation.Ints(-1, 0, -1))
	}
	return relation.MustDatabase(r1, r2, r3, r4)
}

// example2Program is the paper's Example 2: join opposite pairs, then join
// the results.
func example2Program() *Program {
	return &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpJoin, Head: "X", Arg1: "ABC", Arg2: "EFG"},
			{Op: OpJoin, Head: "Y", Arg1: "CDE", Arg2: "GHA"},
			{Op: OpJoin, Head: "X", Arg1: "X", Arg2: "Y"},
		},
		Output: "X",
	}
}

func TestExample2ComputesJoin(t *testing.T) {
	db := paperDB(t)
	p := example2Program()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	res, err := p.Apply(db)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !res.Output.Equal(db.Join()) {
		t.Error("Example 2 program did not compute ⋈D")
	}
	if len(res.Trace) != 3 {
		t.Errorf("trace has %d steps", len(res.Trace))
	}
}

func TestCostAccounting(t *testing.T) {
	db := paperDB(t)
	p := example2Program()
	res, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	want := db.TotalTuples()
	for _, s := range res.Trace {
		want += s.Size
	}
	if res.Cost != want {
		t.Errorf("Cost = %d, want inputs+heads = %d", res.Cost, want)
	}
	// Cross-check against direct evaluation: |ABC ⋈ EFG| + |CDE ⋈ GHA| +
	// |⋈D| + inputs.
	x := relation.Join(db.Relation(0), db.Relation(2))
	y := relation.Join(db.Relation(1), db.Relation(3))
	full := relation.Join(x, y)
	explicit := db.TotalTuples() + x.Len() + y.Len() + full.Len()
	if res.Cost != explicit {
		t.Errorf("Cost = %d, want %d", res.Cost, explicit)
	}
}

func TestDestructiveAssignment(t *testing.T) {
	db := paperDB(t)
	p := example2Program()
	// X is assigned twice; the final output must reflect the second
	// assignment, and the input relations must be untouched.
	before := db.Relation(0).Len()
	res, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation(0).Len() != before {
		t.Error("Apply mutated an input relation")
	}
	if res.Output.Schema().Len() != 8 {
		t.Errorf("output schema has %d attributes, want 8", res.Output.Schema().Len())
	}
}

func TestSemijoinIntoInputNameRebindsOnly(t *testing.T) {
	db := paperDB(t)
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			// In-place §2.2 form: reduce ABC by CDE.
			{Op: OpSemijoin, Head: "ABC", Arg1: "ABC", Arg2: "CDE"},
			{Op: OpJoin, Head: "V", Arg1: "ABC", Arg2: "CDE"},
			{Op: OpJoin, Head: "V", Arg1: "V", Arg2: "EFG"},
			{Op: OpJoin, Head: "V", Arg1: "V", Arg2: "GHA"},
		},
		Output: "V",
	}
	res, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(db.Join()) {
		t.Error("program with in-place semijoin computed wrong join")
	}
	if db.Relation(0).Len() != 7 {
		t.Error("semijoin into input name mutated the input relation")
	}
}

func TestProjectStatement(t *testing.T) {
	db := paperDB(t)
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpProject, Head: "P", Arg1: "ABC", Proj: relation.NewAttrSet("C")},
		},
		Output: "P",
	}
	res, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustProject(db.Relation(0), relation.NewAttrSet("C"))
	if !res.Output.Equal(want) {
		t.Error("project statement wrong")
	}
}

func TestValidateRules(t *testing.T) {
	inputs := []string{"ABC", "CDE"}
	cases := []struct {
		name string
		p    *Program
		ok   bool
	}{
		{"join head must be variable", &Program{
			Inputs: inputs,
			Stmts:  []Stmt{{Op: OpJoin, Head: "ABC", Arg1: "ABC", Arg2: "CDE"}},
			Output: "ABC",
		}, false},
		{"project head must be variable", &Program{
			Inputs: inputs,
			Stmts:  []Stmt{{Op: OpProject, Head: "CDE", Arg1: "ABC", Proj: relation.NewAttrSet("C")}},
			Output: "CDE",
		}, false},
		{"body variable must be defined earlier", &Program{
			Inputs: inputs,
			Stmts:  []Stmt{{Op: OpJoin, Head: "V", Arg1: "W", Arg2: "CDE"}},
			Output: "V",
		}, false},
		{"semijoin in-place into input ok", &Program{
			Inputs: inputs,
			Stmts:  []Stmt{{Op: OpSemijoin, Head: "ABC", Arg1: "ABC", Arg2: "CDE"}},
			Output: "ABC",
		}, true},
		{"semijoin defining a variable ok", &Program{
			Inputs: inputs,
			Stmts:  []Stmt{{Op: OpSemijoin, Head: "V", Arg1: "ABC", Arg2: "CDE"}},
			Output: "V",
		}, true},
		{"semijoin head into unrelated input rejected", &Program{
			Inputs: inputs,
			Stmts:  []Stmt{{Op: OpSemijoin, Head: "CDE", Arg1: "ABC", Arg2: "CDE"}},
			Output: "CDE",
		}, false},
		{"duplicate input names rejected", &Program{
			Inputs: []string{"ABC", "ABC"},
			Output: "ABC",
		}, false},
		{"empty output rejected", &Program{
			Inputs: inputs,
			Output: "",
		}, false},
		{"undefined output rejected", &Program{
			Inputs: inputs,
			Output: "Z",
		}, false},
		{"empty program with input output ok", &Program{
			Inputs: inputs,
			Output: "CDE",
		}, true},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestApplyArityMismatch(t *testing.T) {
	db := paperDB(t)
	p := &Program{Inputs: []string{"ABC"}, Output: "ABC"}
	if _, err := p.Apply(db); err == nil {
		t.Error("input-count mismatch accepted")
	}
}

func TestApplyBadProjection(t *testing.T) {
	db := paperDB(t)
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts:  []Stmt{{Op: OpProject, Head: "P", Arg1: "ABC", Proj: relation.NewAttrSet("Z")}},
		Output: "P",
	}
	if _, err := p.Apply(db); err == nil {
		t.Error("projection onto missing attribute accepted at run time")
	}
}

func TestStmtString(t *testing.T) {
	cases := []struct {
		s    Stmt
		want string
	}{
		{Stmt{Op: OpProject, Head: "F", Arg1: "V", Proj: relation.NewAttrSet("C", "E")}, "R(F) := π_CE R(V)"},
		{Stmt{Op: OpJoin, Head: "V", Arg1: "V", Arg2: "F"}, "R(V) := R(V) ⋈ R(F)"},
		{Stmt{Op: OpSemijoin, Head: "V", Arg1: "V", Arg2: "GHA"}, "R(V) := R(V) ⋉ R(GHA)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestProgramString(t *testing.T) {
	p := example2Program()
	s := p.String()
	if !strings.Contains(s, "R(X) := R(ABC) ⋈ R(EFG)") {
		t.Errorf("program String missing statement:\n%s", s)
	}
	if lines := strings.Count(s, "\n") + 1; lines != 3 {
		t.Errorf("program String has %d lines, want 3", lines)
	}
	empty := &Program{Inputs: []string{"ABC"}, Output: "ABC"}
	if !strings.Contains(empty.String(), "empty program") {
		t.Errorf("empty program String = %q", empty.String())
	}
}

func TestOpString(t *testing.T) {
	if OpProject.String() != "π" || OpJoin.String() != "⋈" || OpSemijoin.String() != "⋉" {
		t.Error("Op.String wrong")
	}
}

func TestEmptyProgramIdentity(t *testing.T) {
	db := paperDB(t)
	p := &Program{Inputs: []string{"ABC", "CDE", "EFG", "GHA"}, Output: "EFG"}
	res, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(db.Relation(2)) {
		t.Error("empty program output wrong")
	}
	if res.Cost != db.TotalTuples() {
		t.Errorf("empty program cost = %d, want %d", res.Cost, db.TotalTuples())
	}
}

func TestOpCounts(t *testing.T) {
	p := example6Program()
	projects, joins, semijoins := p.OpCounts()
	if projects != 2 || joins != 5 || semijoins != 3 {
		t.Errorf("OpCounts = %d/%d/%d, want 2/5/3", projects, joins, semijoins)
	}
}
