package program

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// example6Program builds the paper's derived program by hand (this package
// cannot import core).
func example6Program() *Program {
	return &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpSemijoin, Head: "V", Arg1: "ABC", Arg2: "CDE"},
			{Op: OpProject, Head: "F", Arg1: "V", Proj: relation.NewAttrSet("C")},
			{Op: OpJoin, Head: "F", Arg1: "F", Arg2: "CDE"},
			{Op: OpProject, Head: "F", Arg1: "F", Proj: relation.NewAttrSet("C", "E")},
			{Op: OpSemijoin, Head: "F", Arg1: "F", Arg2: "EFG"},
			{Op: OpJoin, Head: "V", Arg1: "V", Arg2: "F"},
			{Op: OpJoin, Head: "V", Arg1: "V", Arg2: "EFG"},
			{Op: OpSemijoin, Head: "V", Arg1: "V", Arg2: "GHA"},
			{Op: OpJoin, Head: "V", Arg1: "V", Arg2: "CDE"},
			{Op: OpJoin, Head: "V", Arg1: "V", Arg2: "GHA"},
		},
		Output: "V",
	}
}

func TestApplyIndexedMatchesApplyOnExample6(t *testing.T) {
	db := paperDB(t)
	p := example6Program()
	plain, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := p.ApplyIndexed(db)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Output.Equal(indexed.Output) {
		t.Error("outputs differ")
	}
	if plain.Cost != indexed.Cost {
		t.Errorf("costs differ: %d vs %d (the cost model must not see the index)", plain.Cost, indexed.Cost)
	}
	if len(plain.Trace) != len(indexed.Trace) {
		t.Fatal("trace lengths differ")
	}
	for i := range plain.Trace {
		if plain.Trace[i].Size != indexed.Trace[i].Size {
			t.Errorf("statement %d size differs: %d vs %d", i+1, plain.Trace[i].Size, indexed.Trace[i].Size)
		}
	}
}

func TestApplyIndexedReassignedOperandSafe(t *testing.T) {
	// V is probed as Arg2 twice but is also a head — the executor must not
	// reuse a stale index across the reassignment.
	db := paperDB(t)
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpJoin, Head: "V", Arg1: "ABC", Arg2: "CDE"},
			{Op: OpSemijoin, Head: "X", Arg1: "EFG", Arg2: "V"},
			{Op: OpJoin, Head: "V", Arg1: "V", Arg2: "EFG"}, // V changes
			{Op: OpSemijoin, Head: "Y", Arg1: "GHA", Arg2: "V"},
			{Op: OpJoin, Head: "Z", Arg1: "X", Arg2: "Y"},
			{Op: OpJoin, Head: "Z", Arg1: "Z", Arg2: "V"},
			{Op: OpJoin, Head: "Z", Arg1: "Z", Arg2: "CDE"},
			{Op: OpJoin, Head: "Z", Arg1: "Z", Arg2: "ABC"},
		},
		Output: "Z",
	}
	plain, err := p.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := p.ApplyIndexed(db)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Output.Equal(indexed.Output) {
		t.Error("outputs differ with reassigned operand")
	}
}

func TestApplyIndexedRandomizedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	db := paperDB(t)
	// Random well-formed programs over the paper inputs: chains of joins
	// and semijoins through a single variable, probing random inputs.
	names := []string{"ABC", "CDE", "EFG", "GHA"}
	for trial := 0; trial < 50; trial++ {
		p := &Program{Inputs: names, Output: "V"}
		p.Stmts = append(p.Stmts, Stmt{Op: OpJoin, Head: "V", Arg1: names[rng.Intn(4)], Arg2: names[rng.Intn(4)]})
		steps := 1 + rng.Intn(6)
		for k := 0; k < steps; k++ {
			op := OpJoin
			if rng.Intn(2) == 0 {
				op = OpSemijoin
			}
			p.Stmts = append(p.Stmts, Stmt{Op: op, Head: "V", Arg1: "V", Arg2: names[rng.Intn(4)]})
		}
		plain, err := p.Apply(db)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := p.ApplyIndexed(db)
		if err != nil {
			t.Fatal(err)
		}
		if !plain.Output.Equal(indexed.Output) || plain.Cost != indexed.Cost {
			t.Fatalf("trial %d: indexed execution diverged\n%s", trial, p)
		}
	}
}

func BenchmarkApplyVsApplyIndexed(b *testing.B) {
	rng := rand.New(rand.NewSource(122))
	mk := func(scheme string, n, domain int) *relation.Relation {
		r := relation.New(relation.SchemaOfRunes(scheme))
		for i := 0; i < n; i++ {
			row := make(relation.Tuple, r.Schema().Len())
			for c := range row {
				row[c] = relation.Int(int64(rng.Intn(domain)))
			}
			r.MustInsert(row)
		}
		return r
	}
	// One large relation probed repeatedly by small ones: the shared index
	// is built once instead of per-statement.
	db := relation.MustDatabase(
		mk("ABC", 2000, 400), mk("CDE", 200000, 400), mk("EFG", 2000, 400), mk("GHA", 2000, 400),
	)
	// Five probes of CDE on the same shared attribute C: the indexed
	// executor builds the 200k-row index once (on the second probe) and
	// reuses it.
	p := &Program{
		Inputs: []string{"ABC", "CDE", "EFG", "GHA"},
		Stmts: []Stmt{
			{Op: OpSemijoin, Head: "V", Arg1: "ABC", Arg2: "CDE"},
			{Op: OpProject, Head: "P", Arg1: "ABC", Proj: relation.NewAttrSet("A", "C")},
			{Op: OpSemijoin, Head: "P", Arg1: "P", Arg2: "CDE"},
			{Op: OpProject, Head: "Q", Arg1: "ABC", Proj: relation.NewAttrSet("B", "C")},
			{Op: OpSemijoin, Head: "Q", Arg1: "Q", Arg2: "CDE"},
			{Op: OpSemijoin, Head: "V", Arg1: "V", Arg2: "CDE"},
			{Op: OpProject, Head: "S", Arg1: "ABC", Proj: relation.NewAttrSet("C")},
			{Op: OpSemijoin, Head: "S", Arg1: "S", Arg2: "CDE"},
		},
		Output: "V",
	}
	b.Run("Apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Apply(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ApplyIndexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.ApplyIndexed(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}
