package program_test

import (
	"fmt"
	"log"

	"repro/internal/program"
	"repro/internal/relation"
)

// ExampleParse reads a program in the paper's notation and validates it.
func ExampleParse() {
	text := `
# reduce, then join everything in
R(V) := R(AB) ⋉ R(BC)
R(V) := R(V) ⋈ R(BC)
`
	p, err := program.Parse(text, []string{"AB", "BC"}, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p)
	projects, joins, semijoins := p.OpCounts()
	fmt.Printf("%d projections, %d joins, %d semijoins\n", projects, joins, semijoins)
	// Output:
	// R(V) := R(AB) ⋉ R(BC)
	// R(V) := R(V) ⋈ R(BC)
	// 0 projections, 1 joins, 1 semijoins
}

// ExampleProgram_Apply executes a program with the §2.3 cost accounting.
func ExampleProgram_Apply() {
	ab := relation.New(relation.SchemaOfRunes("AB"))
	ab.MustInsert(relation.Ints(1, 10))
	ab.MustInsert(relation.Ints(2, 20))
	bc := relation.New(relation.SchemaOfRunes("BC"))
	bc.MustInsert(relation.Ints(10, 7))
	db := relation.MustDatabase(ab, bc)

	p := &program.Program{
		Inputs: []string{"AB", "BC"},
		Stmts: []program.Stmt{
			{Op: program.OpSemijoin, Head: "AB", Arg1: "AB", Arg2: "BC"},
			{Op: program.OpJoin, Head: "V", Arg1: "AB", Arg2: "BC"},
		},
		Output: "V",
	}
	res, err := p.Apply(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", res.Output.Len(), "tuple(s)")
	fmt.Println("cost:  ", res.Cost)
	// Output:
	// result: 1 tuple(s)
	// cost:   5
}
