package engine

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/workload"
)

// TestWCOJDifferentialRandomSchemes is the subsystem's correctness anchor:
// over 120 random schemes — cyclic ones included — the leapfrog-triejoin
// route must compute exactly the same relation as the paper's program route,
// join-expression evaluation, and the reference fold, and its governed
// accounting must balance (Produced = trie builds + output = Cost).
func TestWCOJDifferentialRandomSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cyclic := 0
	for trial := 0; trial < 120; trial++ {
		var h *hypergraph.Hypergraph
		var err error
		if trial%3 == 0 {
			// Random draws at these sizes are mostly acyclic; every third
			// trial uses a clique scheme — guaranteed cyclic — so both sides
			// of the GYO split are exercised heavily.
			h, err = workload.CliqueScheme(3 + rng.Intn(2))
		} else {
			h, err = workload.RandomScheme(rng, workload.RandomSchemeSpec{
				Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: rng.Intn(2) == 0,
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !h.Acyclic() {
			cyclic++
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(14), 3)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Join()
		wrep, err := Join(db, Options{
			Strategy: StrategyWCOJ,
			Limits:   govern.Limits{MaxTuples: 1 << 40},
		})
		if err != nil {
			t.Fatalf("trial %d wcoj: %v on %s", trial, err, h)
		}
		if !wrep.Result.Equal(want) {
			t.Fatalf("trial %d: wcoj disagrees with the reference fold on %s", trial, h)
		}
		if wrep.Produced != wrep.Cost {
			t.Fatalf("trial %d: wcoj Produced %d != Cost %d (inputs + output) on %s",
				trial, wrep.Produced, wrep.Cost, h)
		}
		for _, s := range []Strategy{StrategyProgram, StrategyExpression} {
			rep, err := Join(db, Options{Strategy: s})
			if err != nil {
				t.Fatalf("trial %d %s: %v on %s", trial, s, err, h)
			}
			if !rep.Result.Equal(wrep.Result) {
				t.Fatalf("trial %d: %s disagrees with wcoj on %s", trial, s, h)
			}
		}
	}
	if cyclic < 20 {
		t.Fatalf("only %d/120 trials drew cyclic schemes; the differential needs both kinds", cyclic)
	}
}

// TestWCOJParallelGovernedAgrees: the engine-level parallel path (worker
// carving over the outermost variable) must not change the result or the
// governed charges.
func TestWCOJParallelGovernedAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h, err := workload.CliqueScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	db, err := workload.RandomDatabase(rng, h, 80, 9)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Join(db, Options{Strategy: StrategyWCOJ, Limits: govern.Limits{MaxTuples: 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Join(db, Options{
		Strategy: StrategyWCOJ,
		Workers:  4,
		Limits:   govern.Limits{MaxTuples: 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Result.Equal(seq.Result) {
		t.Error("parallel wcoj changed the result")
	}
	if par.Produced != seq.Produced {
		t.Errorf("parallel Produced = %d, sequential = %d", par.Produced, seq.Produced)
	}
	if par.Parallelism != 4 {
		t.Errorf("Parallelism = %d, want 4", par.Parallelism)
	}
}

// TestWCOJPlanRoundTrip: PlanFor derives the variable order once; ExecutePlan
// must reuse it against any edge order of the same scheme.
func TestWCOJPlanRoundTrip(t *testing.T) {
	db := example3DB(t, 6)
	plan, err := PlanFor(db, Options{Strategy: StrategyWCOJ})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyWCOJ || len(plan.VarOrder) == 0 {
		t.Fatalf("plan = %+v, want wcoj with a variable order", plan)
	}
	want := db.Join()
	rep, err := ExecutePlan(db, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(want) {
		t.Error("plan execution wrong")
	}
	// Reversed edge order, same fingerprint: the cached plan still serves it.
	perm := make([]int, db.Len())
	for i := range perm {
		perm[i] = db.Len() - 1 - i
	}
	rdb, err := db.Restrict(perm)
	if err != nil {
		t.Fatal(err)
	}
	if hypergraph.OfScheme(rdb).Fingerprint() != plan.Fingerprint {
		t.Fatal("reversed database changed fingerprint")
	}
	rrep, err := ExecutePlan(rdb, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.Result.Equal(want) {
		t.Error("plan execution wrong on reordered edges")
	}
}

// TestConcurrentExecuteWCOJPlan hammers one shared WCOJ plan from many
// goroutines — sequential and parallel executions mixed — as the race
// detector's view of cached-plan sharing.
func TestConcurrentExecuteWCOJPlan(t *testing.T) {
	db := example3DB(t, 6)
	plan, err := PlanFor(db, Options{Strategy: StrategyWCOJ})
	if err != nil {
		t.Fatal(err)
	}
	want := db.Join()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := ExecutePlan(db, plan, Options{
				Workers: 1 + i%3,
				Limits:  govern.Limits{MaxTuples: 1 << 40},
			})
			if err != nil {
				errs[i] = err
				return
			}
			if !rep.Result.Equal(want) {
				t.Errorf("goroutine %d: wrong result", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
}

// TestWCOJBudgetDegradesInLadder: a budget below Σ inputs blows the trie
// build itself, so even the triejoin rung aborts and the explicit strategy
// fails hard.
func TestWCOJBudgetAbortsHard(t *testing.T) {
	db := example3DB(t, 10)
	_, err := Join(db, Options{
		Strategy: StrategyWCOJ,
		Limits:   govern.Limits{MaxTuples: 10},
	})
	if err == nil {
		t.Fatal("tiny budget accepted")
	}
}
