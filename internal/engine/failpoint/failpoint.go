// Package failpoint is a deterministic fault-injection registry for tests.
// A failpoint is named after the operator sites the governor passes to its
// hook ("relation.Join", "program.Stmt", "engine.strategy", …); enabling
// one arms it to fire on the nth time that site is reached. Tests use it to
// trigger aborts at a precise operator and verify that every abort path
// unwinds cleanly, returns the typed error, and never leaks a partial
// result.
//
// The registry is process-global and mutex-guarded; tests that enable
// failpoints must Reset (or Disable) them when done and must not run in
// parallel with other failpoint users.
package failpoint

import (
	"errors"
	"sort"
	"sync"
)

// ErrInjected is the default error an armed failpoint returns; tests can
// match it with errors.Is.
var ErrInjected = errors.New("failpoint: injected fault")

type point struct {
	remaining int64
	fn        func() error
}

var (
	mu     sync.Mutex
	points = make(map[string]*point)
)

// Enable arms name to return err on the nth Check (1-based; n <= 1 means
// the next one). A nil err arms ErrInjected. Re-enabling replaces any
// previous arming.
func Enable(name string, nth int64, err error) {
	if err == nil {
		err = ErrInjected
	}
	EnableFunc(name, nth, func() error { return err })
}

// EnableFunc arms name to call fn on the nth Check and return fn's result.
// fn returning nil lets execution continue — useful for side effects such
// as canceling a context at a precise operator. The point disarms after
// firing once.
func EnableFunc(name string, nth int64, fn func() error) {
	if nth < 1 {
		nth = 1
	}
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{remaining: nth, fn: fn}
}

// Disable removes the named failpoint.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
}

// Reset removes every failpoint.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = make(map[string]*point)
}

// Active returns the names of armed failpoints, sorted.
func Active() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Check is the hook the governor calls at each operator start. It counts
// down the named point and fires it on the nth hit; unarmed names return
// nil. It is safe for concurrent use.
func Check(name string) error {
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.remaining--
	if p.remaining > 0 {
		mu.Unlock()
		return nil
	}
	delete(points, name)
	mu.Unlock()
	// Run the payload outside the lock: it may cancel contexts or enable
	// other failpoints.
	return p.fn()
}
