// Package failpoint is a deterministic fault-injection registry for tests.
// A failpoint is named after the operator sites the governor passes to its
// hook ("relation.Join", "program.Stmt", "engine.strategy", …); enabling
// one arms it to fire on the nth time that site is reached. Tests use it to
// trigger aborts at a precise operator and verify that every abort path
// unwinds cleanly, returns the typed error, and never leaks a partial
// result.
//
// Beyond error injection, the package supports crash-point injection for
// process-level recovery tests: a point armed with an *ExitError payload
// (EnableExit, or an "exit:N" spec in EnableFromEnv) asks the site to
// terminate the process abruptly — no deferred cleanup, no flushes — via
// ExitIf. Sites that own buffered state (the WAL in internal/store) pair
// this with torn-write injection: on a fired point they first perform a
// deliberately partial side effect, then call ExitIf, so a crash harness
// can leave a half-written record behind exactly as a power cut would.
// EnableFromEnv arms points from an environment variable, which is how a
// child process under a crash harness (or a joind under JOIND_FAILPOINTS)
// gets its kill points without a code path to its registry.
//
// The registry is process-global and mutex-guarded; tests that enable
// failpoints must Reset (or Disable) them when done and must not run in
// parallel with other failpoint users.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrInjected is the default error an armed failpoint returns; tests can
// match it with errors.Is.
var ErrInjected = errors.New("failpoint: injected fault")

// ExitError is a crash-point payload: a site that receives it from Check is
// expected to finish any deliberately partial side effect (a torn write)
// and then call ExitIf, which terminates the process with Code — no
// deferred cleanup, simulating a kill -9 or power cut at that exact point.
// It still behaves as an ordinary error (matching ErrInjected) for sites
// that propagate instead of exiting, so an "exit" arming in a process that
// never reaches ExitIf degrades to error injection rather than a hang.
type ExitError struct {
	// Code is the process exit status (crash harnesses assert on it to
	// distinguish an injected crash from an ordinary failure).
	Code int
}

// Error implements error.
func (e *ExitError) Error() string {
	return fmt.Sprintf("failpoint: injected crash (exit %d)", e.Code)
}

// Unwrap makes errors.Is(err, ErrInjected) hold for crash payloads.
func (e *ExitError) Unwrap() error { return ErrInjected }

// exit is swapped out by tests that must not kill the test process.
var exit = os.Exit

// ExitIf terminates the process with err's exit code when err is an
// *ExitError (directly or wrapped); otherwise it is a no-op. Sites place it
// between their torn side effect and their normal error return:
//
//	if err := failpoint.Check("store.wal.torn"); err != nil {
//		f.Write(buf[:n/2]) // the torn write
//		failpoint.ExitIf(err)
//		return err         // in-process tests take this path
//	}
func ExitIf(err error) {
	var ee *ExitError
	if errors.As(err, &ee) {
		exit(ee.Code)
	}
}

type point struct {
	remaining int64
	fn        func() error
}

var (
	mu     sync.Mutex
	points = make(map[string]*point)
)

// Enable arms name to return err on the nth Check (1-based; n <= 1 means
// the next one). A nil err arms ErrInjected. Re-enabling replaces any
// previous arming.
func Enable(name string, nth int64, err error) {
	if err == nil {
		err = ErrInjected
	}
	EnableFunc(name, nth, func() error { return err })
}

// EnableFunc arms name to call fn on the nth Check and return fn's result.
// fn returning nil lets execution continue — useful for side effects such
// as canceling a context at a precise operator. The point disarms after
// firing once.
func EnableFunc(name string, nth int64, fn func() error) {
	if nth < 1 {
		nth = 1
	}
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{remaining: nth, fn: fn}
}

// EnableExit arms name as a crash point: on the nth Check the site receives
// an *ExitError and (via ExitIf) terminates the process with code.
func EnableExit(name string, nth int64, code int) {
	Enable(name, nth, &ExitError{Code: code})
}

// EnableFromEnv arms failpoints from the named environment variable, which
// holds a semicolon-separated list of specs:
//
//	point@nth=error        fire ErrInjected on the nth Check
//	point@nth=exit:code    fire an *ExitError{code} (crash point)
//
// "@nth" may be omitted (defaults to 1). An unset or empty variable arms
// nothing and returns nil; a malformed spec returns an error naming it.
// cmd/joind calls this with JOIND_FAILPOINTS at startup, and the store's
// crash harness uses it to arm kill points in its child processes.
func EnableFromEnv(envVar string) error {
	raw := os.Getenv(envVar)
	if raw == "" {
		return nil
	}
	for _, spec := range strings.Split(raw, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		lhs, action, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("failpoint: %s spec %q is not point[@nth]=action", envVar, spec)
		}
		name := lhs
		nth := int64(1)
		if point, n, hasNth := strings.Cut(lhs, "@"); hasNth {
			v, err := strconv.ParseInt(n, 10, 64)
			if err != nil || v < 1 {
				return fmt.Errorf("failpoint: %s spec %q has bad nth %q", envVar, spec, n)
			}
			name, nth = point, v
		}
		if name == "" {
			return fmt.Errorf("failpoint: %s spec %q has an empty point name", envVar, spec)
		}
		switch {
		case action == "error":
			Enable(name, nth, nil)
		case strings.HasPrefix(action, "exit:"):
			code, err := strconv.Atoi(strings.TrimPrefix(action, "exit:"))
			if err != nil || code < 0 {
				return fmt.Errorf("failpoint: %s spec %q has bad exit code", envVar, spec)
			}
			EnableExit(name, nth, code)
		default:
			return fmt.Errorf("failpoint: %s spec %q has unknown action %q", envVar, spec, action)
		}
	}
	return nil
}

// Disable removes the named failpoint.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
}

// Reset removes every failpoint.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = make(map[string]*point)
}

// Active returns the names of armed failpoints, sorted.
func Active() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Check is the hook the governor calls at each operator start. It counts
// down the named point and fires it on the nth hit; unarmed names return
// nil. It is safe for concurrent use.
func Check(name string) error {
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.remaining--
	if p.remaining > 0 {
		mu.Unlock()
		return nil
	}
	delete(points, name)
	mu.Unlock()
	// Run the payload outside the lock: it may cancel contexts or enable
	// other failpoints.
	return p.fn()
}
