package failpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestFiresOnNthCheck(t *testing.T) {
	defer Reset()
	Enable("op", 3, nil)
	for i := 1; i <= 2; i++ {
		if err := Check("op"); err != nil {
			t.Fatalf("check %d fired early: %v", i, err)
		}
	}
	if err := Check("op"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third check: got %v, want ErrInjected", err)
	}
	// Disarms after firing.
	if err := Check("op"); err != nil {
		t.Fatalf("after firing: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("op", 1, boom)
	if err := Check("op"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestEnableFuncSideEffect(t *testing.T) {
	defer Reset()
	fired := false
	EnableFunc("op", 2, func() error { fired = true; return nil })
	if err := Check("op"); err != nil || fired {
		t.Fatalf("first check: err=%v fired=%v", err, fired)
	}
	if err := Check("op"); err != nil || !fired {
		t.Fatalf("second check: err=%v fired=%v", err, fired)
	}
}

func TestDisableAndActive(t *testing.T) {
	defer Reset()
	Enable("a", 1, nil)
	Enable("b", 1, nil)
	got := Active()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Active = %v", got)
	}
	Disable("a")
	if err := Check("a"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	if got := Active(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Active after disable = %v", got)
	}
}

func TestUnarmedCheckIsNil(t *testing.T) {
	if err := Check("nothing-here"); err != nil {
		t.Fatalf("unarmed check: %v", err)
	}
}

func TestConcurrentChecksFireExactlyOnce(t *testing.T) {
	defer Reset()
	Enable("op", 50, nil)
	var fired sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := Check("op"); err != nil {
					fired.Store(w*100+i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	fired.Range(func(_, _ any) bool { count++; return true })
	if count != 1 {
		t.Fatalf("failpoint fired %d times, want exactly 1", count)
	}
}
