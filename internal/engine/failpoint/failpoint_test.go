package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

func TestFiresOnNthCheck(t *testing.T) {
	defer Reset()
	Enable("op", 3, nil)
	for i := 1; i <= 2; i++ {
		if err := Check("op"); err != nil {
			t.Fatalf("check %d fired early: %v", i, err)
		}
	}
	if err := Check("op"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third check: got %v, want ErrInjected", err)
	}
	// Disarms after firing.
	if err := Check("op"); err != nil {
		t.Fatalf("after firing: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("op", 1, boom)
	if err := Check("op"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestEnableFuncSideEffect(t *testing.T) {
	defer Reset()
	fired := false
	EnableFunc("op", 2, func() error { fired = true; return nil })
	if err := Check("op"); err != nil || fired {
		t.Fatalf("first check: err=%v fired=%v", err, fired)
	}
	if err := Check("op"); err != nil || !fired {
		t.Fatalf("second check: err=%v fired=%v", err, fired)
	}
}

func TestDisableAndActive(t *testing.T) {
	defer Reset()
	Enable("a", 1, nil)
	Enable("b", 1, nil)
	got := Active()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Active = %v", got)
	}
	Disable("a")
	if err := Check("a"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	if got := Active(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Active after disable = %v", got)
	}
}

func TestUnarmedCheckIsNil(t *testing.T) {
	if err := Check("nothing-here"); err != nil {
		t.Fatalf("unarmed check: %v", err)
	}
}

func TestExitErrorMatchesInjected(t *testing.T) {
	defer Reset()
	EnableExit("op", 1, 7)
	err := Check("op")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crash payload should match ErrInjected, got %v", err)
	}
	var ee *ExitError
	if !errors.As(err, &ee) || ee.Code != 7 {
		t.Fatalf("got %v, want *ExitError{Code: 7}", err)
	}
}

func TestExitIf(t *testing.T) {
	defer func() { exit = os.Exit }()
	var code = -1
	exit = func(c int) { code = c }
	ExitIf(nil)
	ExitIf(errors.New("plain"))
	if code != -1 {
		t.Fatalf("ExitIf exited on a non-crash error (code %d)", code)
	}
	ExitIf(&ExitError{Code: 3})
	if code != 3 {
		t.Fatalf("ExitIf(&ExitError{3}): exit code = %d, want 3", code)
	}
	code = -1
	ExitIf(fmt.Errorf("wal append: %w", &ExitError{Code: 5}))
	if code != 5 {
		t.Fatalf("wrapped ExitError: exit code = %d, want 5", code)
	}
}

func TestEnableFromEnv(t *testing.T) {
	defer Reset()
	const env = "FAILPOINT_TEST_SPEC"
	t.Setenv(env, "a@2=error; b=exit:4 ;c@3=error")
	if err := EnableFromEnv(env); err != nil {
		t.Fatal(err)
	}
	if got := Active(); len(got) != 3 {
		t.Fatalf("Active = %v, want a, b, c", got)
	}
	if err := Check("a"); err != nil {
		t.Fatalf("a fired on first check: %v", err)
	}
	if err := Check("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a second check: %v", err)
	}
	var ee *ExitError
	if err := Check("b"); !errors.As(err, &ee) || ee.Code != 4 {
		t.Fatalf("b: got %v, want *ExitError{4}", err)
	}
	Reset()

	// Unset or empty arms nothing.
	t.Setenv(env, "")
	if err := EnableFromEnv(env); err != nil || len(Active()) != 0 {
		t.Fatalf("empty spec: err=%v active=%v", err, Active())
	}

	// Malformed specs are named errors.
	for _, bad := range []string{"justaname", "a@zero=error", "a@0=error", "=error", "a=exit:x", "a=explode"} {
		t.Setenv(env, bad)
		if err := EnableFromEnv(env); err == nil {
			t.Errorf("spec %q: want error, got nil", bad)
		}
		Reset()
	}
}

func TestConcurrentChecksFireExactlyOnce(t *testing.T) {
	defer Reset()
	Enable("op", 50, nil)
	var fired sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := Check("op"); err != nil {
					fired.Store(w*100+i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	fired.Range(func(_, _ any) bool { count++; return true })
	if count != 1 {
		t.Fatalf("failpoint fired %d times, want exactly 1", count)
	}
}
