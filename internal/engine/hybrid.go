package engine

import (
	"fmt"
	"strings"

	"repro/internal/acyclic"
	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

// HybridPlan is StrategyHybrid's resolved route in canonical edge order.
// Pure routes reuse the static rungs' machinery wholesale — results, §2.3
// costs, and governor charges are identical to the corresponding static
// strategy. The mixed route is the hybrid shape proper: the cyclic core
// runs through the worst-case-optimal triejoin and its output joins the
// pendant edges through the columnar binary kernels.
type HybridPlan struct {
	// Route is one of optimizer.RouteAcyclic / RouteBinary / RouteWCOJ /
	// RouteMixed.
	Route string
	// Core is the canonical-order edge mask the triejoin covers (the full
	// scheme for RouteWCOJ, hypergraph.Core for RouteMixed; 0 otherwise).
	Core hypergraph.Mask
	// CoreOrder is the triejoin's variable order over Core.
	CoreOrder []string
	// Outer is the binary tree. For RouteBinary its leaves are scheme
	// edges; for RouteMixed leaf 0 is the core's output and leaf k>0 the
	// k-th non-core edge in ascending index order. Nil when the chooser's
	// DP was unavailable (execution falls back to bestTree search).
	Outer *jointree.Tree
	// EstCost is the chooser's §2.3 estimate for the picked route — the
	// denominator of the served q-error feedback.
	EstCost int64
}

// sketchesFor aligns the caller-supplied sketches with db (permuting by
// perm when db was canonicalized: sketch for db position i is snap[perm[i]])
// or, when none were supplied, scans db once for throwaway sketches.
func sketchesFor(db *relation.Database, perm []int, opts Options) []*optimizer.Sketch {
	if opts.Sketches != nil {
		snap := opts.Sketches.Snapshot()
		if perm == nil && len(snap) == db.Len() {
			return snap
		}
		if perm != nil && len(snap) == len(perm) && len(perm) == db.Len() {
			out := make([]*optimizer.Sketch, len(perm))
			for i, p := range perm {
				out[i] = snap[p]
			}
			return out
		}
	}
	out := make([]*optimizer.Sketch, db.Len())
	for i := range out {
		out[i] = optimizer.BuildSketch(db.Relation(i))
	}
	return out
}

// planHybrid runs the statistics-driven chooser over cdb (already in
// canonical edge order, scheme ch) and fixes the route. perm maps canonical
// positions back to the original database order the sketches follow (nil
// when the caller's database is the sketches' order already).
func planHybrid(cdb *relation.Database, ch *hypergraph.Hypergraph, perm []int, opts Options) (*HybridPlan, []string, error) {
	sks := sketchesFor(cdb, perm, opts)
	corr := 1.0
	if opts.Sketches != nil {
		corr = opts.Sketches.Correction(ch.Fingerprint())
	}
	choice, err := optimizer.ChooseHybrid(ch, sks, corr, opts.Hybrid)
	if err != nil {
		return nil, nil, err
	}
	hp := &HybridPlan{Route: choice.Route, EstCost: choice.EstCost, Outer: choice.Outer}
	switch choice.Route {
	case optimizer.RouteWCOJ:
		hp.Core = ch.Full()
		hp.CoreOrder = wcoj.VariableOrder(ch)
		hp.Outer = nil
	case optimizer.RouteMixed:
		hp.Core = choice.Core
		coreH, err := coreHypergraph(ch, choice.Core)
		if err != nil {
			return nil, nil, err
		}
		hp.CoreOrder = wcoj.VariableOrder(coreH)
	}
	notes := make([]string, 0, len(choice.Notes)+1)
	for _, n := range choice.Notes {
		notes = append(notes, "hybrid: "+n)
	}
	return hp, notes, nil
}

// coreHypergraph builds the sub-scheme induced by the core mask.
func coreHypergraph(h *hypergraph.Hypergraph, core hypergraph.Mask) (*hypergraph.Hypergraph, error) {
	edges := make([]relation.AttrSet, 0, core.Count())
	for _, i := range core.Indexes() {
		edges = append(edges, h.Edge(i))
	}
	return hypergraph.New(edges)
}

// outerHypergraph builds the mixed route's outer scheme for display: the
// core's output attributes first, then the non-core edges.
func outerHypergraph(h *hypergraph.Hypergraph, core hypergraph.Mask) (*hypergraph.Hypergraph, error) {
	edges := []relation.AttrSet{h.AttrsOf(core)}
	for i := 0; i < h.Len(); i++ {
		if !core.Has(i) {
			edges = append(edges, h.Edge(i))
		}
	}
	return hypergraph.New(edges)
}

// joinHybrid plans and executes the hybrid route in one call (the direct
// Join path; the serving layer splits the same work across planHybrid and
// executeHybrid around the plan cache).
func joinHybrid(db *relation.Database, h *hypergraph.Hypergraph, opts Options, gov *govern.Governor) (*Report, error) {
	var hp *HybridPlan
	var notes []string
	if err := tracedPhase(gov, obs.KindPlan, "choose hybrid route", func() (err error) {
		hp, notes, err = planHybrid(db, h, nil, opts)
		return err
	}); err != nil {
		return nil, err
	}
	rep, err := executeHybrid(db, h, hp, opts, gov)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, notes...)
	return rep, nil
}

// executeHybrid runs a resolved hybrid route. cdb/ch must be in the edge
// order the plan was derived for.
func executeHybrid(cdb *relation.Database, ch *hypergraph.Hypergraph, hp *HybridPlan, opts Options, gov *govern.Governor) (*Report, error) {
	if hp == nil {
		return nil, fmt.Errorf("engine: hybrid plan missing")
	}
	switch hp.Route {
	case optimizer.RouteAcyclic:
		var out *relation.Relation
		var cost int
		if err := tracedPhase(gov, obs.KindPipeline, "full-reducer pipeline", func() (err error) {
			out, cost, err = acyclic.JoinGoverned(cdb, gov)
			return err
		}); err != nil {
			return nil, err
		}
		jt, _ := ch.GYO()
		tree := acyclic.MonotoneTree(jt)
		return &Report{
			Result:   out,
			Strategy: StrategyHybrid,
			Cost:     int64(cost),
			Plan:     "hybrid route: acyclic\nfull reducer; monotone expression: " + tree.String(ch),
		}, nil

	case optimizer.RouteBinary:
		tree := hp.Outer
		if tree == nil {
			// The chooser's DP was unavailable (too many edges); fall back to
			// the shared search the static rungs use.
			space := optimizer.SpaceCPF
			if !ch.Connected(ch.Full()) {
				space = optimizer.SpaceAll
			}
			if err := tracedPhase(gov, obs.KindPlan, "optimize expression", func() (err error) {
				tree, _, err = bestTree(cdb, ch, opts.Budget, space)
				return err
			}); err != nil {
				return nil, err
			}
		}
		var out *relation.Relation
		var cost int
		if err := tracedPhase(gov, obs.KindEval, "evaluate columnar expression", func() (err error) {
			out, cost, err = tree.EvalColumnarGoverned(cdb, gov)
			return err
		}); err != nil {
			return nil, err
		}
		return &Report{
			Result:   out,
			Strategy: StrategyHybrid,
			Cost:     int64(cost),
			Plan:     "hybrid route: binary\n" + tree.String(ch),
			Notes:    []string{"columnar kernels: dictionary-encoded blocks, code-remapped batch joins"},
		}, nil

	case optimizer.RouteWCOJ:
		res, err := wcoj.JoinGoverned(cdb, hp.CoreOrder, gov, opts.workerCount())
		if err != nil {
			return nil, err
		}
		return &Report{
			Result:   res.Output,
			Strategy: StrategyHybrid,
			Cost:     int64(cdb.TotalTuples()) + int64(res.Output.Len()),
			Plan:     "hybrid route: wcoj\nleapfrog triejoin, variable order: " + strings.Join(hp.CoreOrder, " "),
			Notes:    wcojNotes(res),
		}, nil

	case optimizer.RouteMixed:
		coreDb, err := cdb.Restrict(hp.Core.Indexes())
		if err != nil {
			return nil, err
		}
		res, err := wcoj.JoinGoverned(coreDb, hp.CoreOrder, gov, opts.workerCount())
		if err != nil {
			return nil, err
		}
		rels := []*relation.Relation{res.Output}
		for i := 0; i < cdb.Len(); i++ {
			if !hp.Core.Has(i) {
				rels = append(rels, cdb.Relation(i))
			}
		}
		outerDb, err := relation.NewDatabase(rels...)
		if err != nil {
			return nil, err
		}
		outerTree := hp.Outer
		if outerTree == nil {
			return nil, fmt.Errorf("engine: mixed hybrid route without an outer tree")
		}
		var out *relation.Relation
		var outerCost int
		if err := tracedPhase(gov, obs.KindEval, "evaluate columnar outer expression", func() (err error) {
			out, outerCost, err = outerTree.EvalColumnarGoverned(outerDb, gov)
			return err
		}); err != nil {
			return nil, err
		}
		// §2.3 total: the core's inputs plus the outer evaluation, whose
		// leaves already count the core's output (generated once) and the
		// non-core inputs.
		cost := int64(coreDb.TotalTuples()) + int64(outerCost)
		planStr := "hybrid route: mixed\ncore " + hp.Core.String() +
			" via leapfrog triejoin, variable order: " + strings.Join(hp.CoreOrder, " ")
		if outerH, err := outerHypergraph(ch, hp.Core); err == nil {
			planStr += "\nouter: " + outerTree.String(outerH)
		}
		notes := append(wcojNotes(res),
			fmt.Sprintf("core output (%d tuples) joined to %d pendant edges through columnar kernels", res.Output.Len(), cdb.Len()-hp.Core.Count()))
		return &Report{
			Result:   out,
			Strategy: StrategyHybrid,
			Cost:     cost,
			Plan:     planStr,
			Notes:    notes,
		}, nil

	default:
		return nil, fmt.Errorf("engine: unknown hybrid route %q", hp.Route)
	}
}
