package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/workload"
)

// The columnar strategy's differential gauntlet: over ≥100 random schemes
// (cyclic clique schemes force-included), the columnar evaluator must agree
// with every other applicable strategy on the result, and with the
// tuple-map expression evaluator — its oracle, same tree, same operators —
// on cost, governed charges, and the exact budget-abort boundary. This is
// what licenses StrategyColumnar as the first rung of the degradation
// ladder: an aborted columnar attempt proves the tuple-map evaluation
// would have aborted at the same tuple.

func TestColumnarDifferentialGauntlet(t *testing.T) {
	rng := rand.New(rand.NewSource(2029))
	cyclic := 0
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		var h *hypergraph.Hypergraph
		var err error
		if trial%3 == 0 {
			// Random draws at these sizes are mostly acyclic; every third
			// trial uses a clique scheme — guaranteed cyclic — so the CPF
			// search space and the ladder's home turf are both exercised.
			h, err = workload.CliqueScheme(3 + rng.Intn(2))
		} else {
			h, err = workload.RandomScheme(rng, workload.RandomSchemeSpec{
				Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: rng.Intn(2) == 0,
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !h.Acyclic() {
			cyclic++
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(14), 3)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Join()
		crep, err := Join(db, Options{
			Strategy: StrategyColumnar,
			Limits:   govern.Limits{MaxTuples: 1 << 40},
		})
		if err != nil {
			t.Fatalf("trial %d columnar: %v on %s", trial, err, h)
		}
		if !crep.Result.Equal(want) {
			t.Fatalf("trial %d: columnar disagrees with the reference fold on %s", trial, h)
		}

		// The expression evaluator over the same optimizer search is the
		// exact oracle: same tree, so same result, same §2.3 cost, same
		// governed tuple total.
		erep, err := Join(db, Options{
			Strategy: StrategyExpression,
			Limits:   govern.Limits{MaxTuples: 1 << 40},
		})
		if err != nil {
			t.Fatalf("trial %d expression: %v on %s", trial, err, h)
		}
		if !crep.Result.Equal(erep.Result) {
			t.Fatalf("trial %d: columnar and expression results differ on %s", trial, h)
		}
		if crep.Cost != erep.Cost {
			t.Fatalf("trial %d: columnar cost %d, expression cost %d on %s",
				trial, crep.Cost, erep.Cost, h)
		}
		if crep.Produced != erep.Produced {
			t.Fatalf("trial %d: columnar charged %d tuples, expression %d on %s",
				trial, crep.Produced, erep.Produced, h)
		}

		// Every other applicable strategy must agree on the result too.
		for _, s := range strategiesFor(h) {
			rep, err := Join(db, Options{Strategy: s})
			if err != nil {
				t.Fatalf("trial %d %s: %v on %s", trial, s, err, h)
			}
			if !rep.Result.Equal(crep.Result) {
				t.Fatalf("trial %d: %s disagrees with columnar on %s", trial, s, h)
			}
		}
	}
	if cyclic < 20 {
		t.Fatalf("only %d/%d trials drew cyclic schemes; the gauntlet needs both kinds", cyclic, trials)
	}
}

// TestColumnarAbortBoundaryMatchesExpression pins the abort boundary: with
// CheckEvery 1, a budget of exactly the expression evaluator's charged
// total succeeds for both strategies, and one tuple less aborts both with
// govern.ErrTupleBudget.
func TestColumnarAbortBoundaryMatchesExpression(t *testing.T) {
	rng := rand.New(rand.NewSource(2030))
	tried := 0
	for trial := 0; tried < 25; trial++ {
		if trial > 500 {
			t.Fatal("could not generate enough schemes with nonzero charges")
		}
		h, err := workload.CliqueScheme(3)
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 4+rng.Intn(12), 3)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Join(db, Options{
			Strategy: StrategyExpression,
			Limits:   govern.Limits{MaxTuples: 1 << 40, CheckEvery: 1},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := base.Produced
		if total == 0 {
			continue
		}
		tried++
		for _, s := range []Strategy{StrategyExpression, StrategyColumnar} {
			if _, err := Join(db, Options{
				Strategy: s,
				Limits:   govern.Limits{MaxTuples: total, CheckEvery: 1},
			}); err != nil {
				t.Fatalf("trial %d %s: budget == charged total must succeed, got %v", trial, s, err)
			}
			rep, err := Join(db, Options{
				Strategy: s,
				Limits:   govern.Limits{MaxTuples: total - 1, CheckEvery: 1},
			})
			if !errors.Is(err, govern.ErrTupleBudget) {
				t.Fatalf("trial %d %s: budget == total-1 must abort with ErrTupleBudget, got %v", trial, s, err)
			}
			if rep != nil {
				t.Fatalf("trial %d %s: abort leaked a report", trial, s)
			}
		}
	}
}

// TestColumnarPlanRoundTrip drives the serving path: a plan derived once
// with PlanFor(StrategyColumnar) executes correctly — the shape the joind
// plan cache reuses across requests.
func TestColumnarPlanRoundTrip(t *testing.T) {
	db := example3DB(t, 4)
	want := db.Join()
	plan, err := PlanFor(db, Options{Strategy: StrategyColumnar})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyColumnar {
		t.Fatalf("plan strategy = %s, want columnar", plan.Strategy)
	}
	if plan.Tree == nil {
		t.Fatal("columnar plan has no tree")
	}
	for i := 0; i < 2; i++ {
		rep, err := ExecutePlan(db, plan, Options{Limits: govern.Limits{MaxTuples: 1 << 40}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Strategy != StrategyColumnar || !rep.Result.Equal(want) {
			t.Fatalf("execution %d: strategy %s, %d tuples (want columnar, %d)",
				i, rep.Strategy, rep.Result.Len(), want.Len())
		}
		if rep.Produced == 0 {
			t.Fatalf("execution %d: no governed charges recorded", i)
		}
	}
}

// TestParseColumnarStrategy pins the CLI/service-facing name.
func TestParseColumnarStrategy(t *testing.T) {
	s, err := ParseStrategy("columnar")
	if err != nil || s != StrategyColumnar {
		t.Fatalf("ParseStrategy(columnar) = %v, %v", s, err)
	}
}
