package engine

import (
	"math/rand"
	"testing"

	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Tests for the engine's tracing: span-tree structure and the reconciliation
// invariant that span tuple charges sum exactly to the report's produced
// count for explicit-strategy executions. (The auto ladder is excluded: a
// rung that blows its budget still charged tuples to its attempt span, so
// after a degradation the tree's total legitimately exceeds the winning
// rung's Produced.)

// TestTraceTupleTotalsMatchProduced is the differential test: over many
// random schemes — cyclic and acyclic, dense and sparse — every explicit
// strategy's span tree is well nested and charges exactly Report.Produced
// tuples across its spans.
func TestTraceTupleTotalsMatchProduced(t *testing.T) {
	rng := rand.New(rand.NewSource(1992))
	const trials = 60
	checked := 0
	for trial := 0; trial < trials; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: rng.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(12), 3)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Join()
		for _, s := range strategiesFor(h) {
			tr := obs.NewTrace("diff")
			rep, err := Join(db, Options{Strategy: s, Trace: tr.Root})
			tr.Root.End()
			if err != nil {
				t.Fatalf("trial %d %s on %s: %v", trial, s, h, err)
			}
			if !rep.Result.Equal(want) {
				t.Fatalf("trial %d %s: wrong result on %s", trial, s, h)
			}
			if err := tr.Root.CheckNested(); err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, s, err, tr.Format())
			}
			if got := tr.Root.TupleTotal(); got != rep.Produced {
				t.Fatalf("trial %d %s on %s: spans charge %d tuples, report produced %d\n%s",
					trial, s, h, got, rep.Produced, tr.Format())
			}
			checked++
		}
	}
	if checked < trials*4 {
		t.Fatalf("only %d strategy executions checked across %d trials", checked, trials)
	}
}

// strategiesFor returns every explicit strategy applicable to the scheme.
func strategiesFor(h *hypergraph.Hypergraph) []Strategy {
	s := []Strategy{StrategyProgram, StrategyExpression, StrategyReduceThenJoin, StrategyDirect, StrategyWCOJ, StrategyColumnar}
	if h.Acyclic() {
		s = append(s, StrategyAcyclic)
	}
	return s
}

// TestTraceShapePerStrategy pins the span kinds each strategy emits under
// its attempt span.
func TestTraceShapePerStrategy(t *testing.T) {
	db := triangleDB(t)
	cases := []struct {
		strategy Strategy
		kinds    []obs.Kind
	}{
		{StrategyProgram, []obs.Kind{obs.KindPlan, obs.KindExecute}},
		{StrategyExpression, []obs.Kind{obs.KindPlan, obs.KindEval}},
		{StrategyReduceThenJoin, []obs.Kind{obs.KindReduce, obs.KindPlan, obs.KindEval}},
		{StrategyDirect, []obs.Kind{obs.KindEval}},
		{StrategyWCOJ, []obs.Kind{obs.KindTrie, obs.KindTrie, obs.KindTrie, obs.KindEnumerate}},
		{StrategyColumnar, []obs.Kind{obs.KindPlan, obs.KindEval}},
	}
	for _, c := range cases {
		tr := obs.NewTrace("shape")
		if _, err := Join(db, Options{Strategy: c.strategy, Trace: tr.Root}); err != nil {
			t.Fatalf("%s: %v", c.strategy, err)
		}
		tr.Root.End()
		var attempt *obs.Span
		for _, ch := range tr.Root.Children() {
			if ch.Kind() == obs.KindAttempt {
				attempt = ch
			}
		}
		if attempt == nil {
			t.Fatalf("%s: no attempt span\n%s", c.strategy, tr.Format())
		}
		var got []obs.Kind
		for _, ch := range attempt.Children() {
			got = append(got, ch.Kind())
		}
		if len(got) != len(c.kinds) {
			t.Fatalf("%s: attempt children %v, want %v\n%s", c.strategy, got, c.kinds, tr.Format())
		}
		for i := range got {
			if got[i] != c.kinds[i] {
				t.Fatalf("%s: attempt children %v, want %v", c.strategy, got, c.kinds)
			}
		}
	}
}

// TestLadderTraceRecordsDegradation checks the auto ladder's trace keeps
// the failed rung's attempt span (marked failed) alongside the winner's.
func TestLadderTraceRecordsDegradation(t *testing.T) {
	db := example3DB(t, 4)
	tr := obs.NewTrace("ladder")
	// 200 tuples: too small for the near-Cartesian adjacent joins the
	// expression rungs must pay on Example 3 at q=4, but enough for the
	// wcoj rung (inputs + the single closing tuple).
	rep, err := Join(db, Options{
		Strategy: StrategyAuto,
		Limits:   govern.Limits{MaxTuples: 200},
		Trace:    tr.Root,
	})
	tr.Root.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy == StrategyColumnar {
		t.Skip("budget did not force a degradation")
	}
	var failed, total int
	tr.Root.Walk(func(sp *obs.Span, _ int) {
		if sp.Kind() != obs.KindAttempt {
			return
		}
		total++
		for _, n := range sp.Notes() {
			if len(n) >= 6 && n[:6] == "failed" {
				failed++
			}
		}
	})
	if total < 2 || failed < 1 {
		t.Fatalf("ladder trace: %d attempts, %d failed; want ≥2 attempts with ≥1 failure\n%s",
			total, failed, tr.Format())
	}
	if err := tr.Root.CheckNested(); err != nil {
		t.Fatal(err)
	}
}
