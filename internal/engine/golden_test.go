package engine

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/relation"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// stepWall matches the wall-time column of an Explain "steps:" line; wall
// times vary run to run, so golden comparison replaces them with <dur>.
var stepWall = regexp.MustCompile(`(tuples)\s+\S+$`)

func normalizeExplain(s string) string {
	lines := strings.Split(s, "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "  ") && strings.Contains(line, " tuples ") {
			lines[i] = stepWall.ReplaceAllString(strings.TrimRight(line, " "), "$1 <dur>")
		}
	}
	return strings.Join(lines, "\n")
}

// TestGoldenExplain pins Report.Plan and Report.Explain for every explicit
// strategy on the two canonical cyclic schemes: the triangle and the
// paper's Example 3 (at scale q=2). The golden files are the review surface
// for plan or report drift; regenerate with go test ./internal/engine
// -run TestGoldenExplain -update.
func TestGoldenExplain(t *testing.T) {
	dbs := []struct {
		name string
		db   *relation.Database
	}{
		{"triangle", triangleDB(t)},
		{"example3", example3DB(t, 2)},
	}
	strategies := []Strategy{
		StrategyProgram, StrategyExpression, StrategyReduceThenJoin, StrategyDirect, StrategyWCOJ,
		StrategyColumnar, StrategyHybrid,
	}
	for _, d := range dbs {
		want := d.db.Join()
		for _, s := range strategies {
			name := d.name + "_" + s.String()
			t.Run(name, func(t *testing.T) {
				rep, err := Join(d.db, Options{Strategy: s})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Result.Equal(want) {
					t.Fatalf("wrong result: %d tuples, want %d", rep.Result.Len(), want.Len())
				}
				got := normalizeExplain(rep.Explain()) + "\n"
				path := filepath.Join("testdata", "golden", name+".golden")
				if *update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				wantText, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run with -update to generate)", err)
				}
				if got != string(wantText) {
					t.Errorf("explain drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
						path, got, wantText)
				}
			})
		}
	}
}
