package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/wcoj"
	"repro/internal/workload"
)

// TestHybridDifferentialRandomSchemes is the chooser's correctness anchor:
// over 120 random schemes (≥20 cyclic) the hybrid route must compute
// exactly the same relation as the program, wcoj, and columnar routes, its
// governor charges must equal what the selected plan charges through the
// static machinery, and a budget one below its own charge must abort with
// the typed error (the abort boundary matches the charge exactly).
func TestHybridDifferentialRandomSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(1992))
	cyclic := 0
	routes := map[string]int{}
	for trial := 0; trial < 120; trial++ {
		var h *hypergraph.Hypergraph
		var err error
		if trial%3 == 0 {
			h, err = workload.CliqueScheme(3 + rng.Intn(2))
		} else {
			h, err = workload.RandomScheme(rng, workload.RandomSchemeSpec{
				Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: rng.Intn(2) == 0,
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !h.Acyclic() {
			cyclic++
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(14), 3)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Join()

		plan, err := PlanFor(db, Options{Strategy: StrategyHybrid})
		if err != nil {
			t.Fatalf("trial %d plan: %v on %s", trial, err, h)
		}
		if plan.Hybrid == nil {
			t.Fatalf("trial %d: hybrid plan missing on %s", trial, h)
		}
		routes[plan.Hybrid.Route]++
		rep, err := ExecutePlan(db, plan, Options{Limits: govern.Limits{MaxTuples: 1 << 40}})
		if err != nil {
			t.Fatalf("trial %d hybrid: %v on %s", trial, err, h)
		}
		if !rep.Result.Equal(want) {
			t.Fatalf("trial %d: hybrid (%s route) disagrees with the reference fold on %s",
				trial, plan.Hybrid.Route, h)
		}

		// Every other strategy agrees.
		for _, s := range []Strategy{StrategyProgram, StrategyWCOJ, StrategyColumnar} {
			srep, err := Join(db, Options{Strategy: s})
			if err != nil {
				t.Fatalf("trial %d %s: %v on %s", trial, s, err, h)
			}
			if !srep.Result.Equal(rep.Result) {
				t.Fatalf("trial %d: %s disagrees with hybrid on %s", trial, s, h)
			}
		}

		// Charge parity: the hybrid report must match the selected plan run
		// through the static machinery, tuple for tuple.
		cdb, ch, err := canonicalize(db, hypergraph.OfScheme(db))
		if err != nil {
			t.Fatal(err)
		}
		switch plan.Hybrid.Route {
		case optimizer.RouteWCOJ:
			if want := int64(db.TotalTuples()) + int64(rep.Result.Len()); rep.Cost != want {
				t.Fatalf("trial %d: wcoj-route cost %d, want inputs+output %d", trial, rep.Cost, want)
			}
			if rep.Produced != rep.Cost {
				t.Fatalf("trial %d: wcoj-route Produced %d != Cost %d", trial, rep.Produced, rep.Cost)
			}
		case optimizer.RouteBinary:
			if plan.Hybrid.Outer != nil {
				gov := govern.New(govern.Limits{MaxTuples: 1 << 40})
				out, cost, err := plan.Hybrid.Outer.EvalColumnarGoverned(cdb, gov)
				if err != nil {
					t.Fatalf("trial %d: direct columnar eval of the hybrid tree: %v", trial, err)
				}
				if !out.Equal(rep.Result) || int64(cost) != rep.Cost || gov.Produced() != rep.Produced {
					t.Fatalf("trial %d: binary route diverges from its own tree via static machinery: cost %d vs %d, produced %d vs %d",
						trial, rep.Cost, cost, rep.Produced, gov.Produced())
				}
			}
		case optimizer.RouteAcyclic:
			// Compare via the plan path: both canonicalize the edge order,
			// which the reducer pipeline's pass order (and thus cost) follows.
			aplan, err := PlanFor(db, Options{Strategy: StrategyAcyclic})
			if err != nil {
				t.Fatalf("trial %d acyclic plan: %v", trial, err)
			}
			arep, err := ExecutePlan(db, aplan, Options{Limits: govern.Limits{MaxTuples: 1 << 40}})
			if err != nil {
				t.Fatalf("trial %d acyclic: %v", trial, err)
			}
			if arep.Cost != rep.Cost || arep.Produced != rep.Produced {
				t.Fatalf("trial %d: acyclic route charges drifted: cost %d vs %d, produced %d vs %d",
					trial, rep.Cost, arep.Cost, rep.Produced, arep.Produced)
			}
		case optimizer.RouteMixed:
			// Deterministic machinery: a rerun charges identically.
			rep2, err := ExecutePlan(db, plan, Options{Limits: govern.Limits{MaxTuples: 1 << 40}})
			if err != nil {
				t.Fatalf("trial %d mixed rerun: %v", trial, err)
			}
			if rep2.Cost != rep.Cost || rep2.Produced != rep.Produced {
				t.Fatalf("trial %d: mixed route not deterministic: cost %d vs %d", trial, rep.Cost, rep2.Cost)
			}
		}
		_ = ch

		// Abort boundary: one tuple under the hybrid's own charge must abort
		// with the typed budget error; exactly its charge must succeed.
		if trial%10 == 0 && rep.Produced > 1 {
			if _, err := ExecutePlan(db, plan, Options{Limits: govern.Limits{MaxTuples: rep.Produced}}); err != nil {
				t.Fatalf("trial %d: budget == Produced (%d) aborted: %v", trial, rep.Produced, err)
			}
			_, err := ExecutePlan(db, plan, Options{Limits: govern.Limits{MaxTuples: rep.Produced - 1}})
			if !errors.Is(err, govern.ErrTupleBudget) {
				t.Fatalf("trial %d: budget %d (one under charge) returned %v, want ErrTupleBudget",
					trial, rep.Produced-1, err)
			}
		}
	}
	if cyclic < 20 {
		t.Fatalf("only %d/120 trials drew cyclic schemes; the differential needs both kinds", cyclic)
	}
	if routes[optimizer.RouteBinary] == 0 || routes[optimizer.RouteWCOJ]+routes[optimizer.RouteMixed] == 0 {
		t.Fatalf("route mix degenerate: %v (both binary and wcoj/mixed must be exercised)", routes)
	}
}

// TestHybridMixedRouteExecution pins the mixed executor against handmade
// machinery: wcoj on the triangle core, the core output joined to a pendant
// edge through the columnar kernels — results, §2.3 cost, and governor
// charges must all match the two-stage reference run.
func TestHybridMixedRouteExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := hypergraph.Must([]relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
		relation.NewAttrSet("A", "C"),
		relation.NewAttrSet("C", "D"),
		relation.NewAttrSet("D", "E"),
	})
	db, err := workload.RandomDatabase(rng, h, 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	core := h.Core()
	if core.Count() != 3 || core == h.Full() {
		t.Fatalf("core = %s, want the triangle edges", core)
	}
	coreH, err := coreHypergraph(h, core)
	if err != nil {
		t.Fatal(err)
	}
	outer := jointree.NewJoin(jointree.NewJoin(jointree.NewLeaf(0), jointree.NewLeaf(1)), jointree.NewLeaf(2))
	hp := &HybridPlan{
		Route:     optimizer.RouteMixed,
		Core:      core,
		CoreOrder: wcoj.VariableOrder(coreH),
		Outer:     outer,
	}
	gov := govern.New(govern.Limits{MaxTuples: 1 << 40})
	rep, err := executeHybrid(db, h, hp, Options{}, gov)
	if err != nil {
		t.Fatal(err)
	}
	rep.Produced = gov.Produced()
	if want := db.Join(); !rep.Result.Equal(want) {
		t.Fatalf("mixed route: %d tuples, reference %d", rep.Result.Len(), want.Len())
	}

	// Reference: the same two stages by hand.
	refGov := govern.New(govern.Limits{MaxTuples: 1 << 40})
	coreDb, err := db.Restrict(core.Indexes())
	if err != nil {
		t.Fatal(err)
	}
	res, err := wcoj.JoinGoverned(coreDb, hp.CoreOrder, refGov, 1)
	if err != nil {
		t.Fatal(err)
	}
	outerDb, err := relation.NewDatabase(res.Output, db.Relation(3), db.Relation(4))
	if err != nil {
		t.Fatal(err)
	}
	out, outerCost, err := outer.EvalColumnarGoverned(outerDb, refGov)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(rep.Result) {
		t.Fatal("reference two-stage run disagrees")
	}
	wantCost := int64(coreDb.TotalTuples()) + int64(outerCost)
	if rep.Cost != wantCost {
		t.Fatalf("mixed cost %d, want core inputs + outer eval = %d", rep.Cost, wantCost)
	}
	if rep.Produced != refGov.Produced() {
		t.Fatalf("mixed charges %d, reference machinery charged %d", rep.Produced, refGov.Produced())
	}
}

// TestHybridPlanRoundTrip: the hybrid plan is cache-reusable across edge
// orders of the same scheme, like every other plan.
func TestHybridPlanRoundTrip(t *testing.T) {
	db := example3DB(t, 6)
	plan, err := PlanFor(db, Options{Strategy: StrategyHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyHybrid || plan.Hybrid == nil {
		t.Fatalf("plan = %+v, want hybrid with a route", plan)
	}
	want := db.Join()
	rep, err := ExecutePlan(db, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(want) {
		t.Error("plan execution wrong")
	}
	perm := make([]int, db.Len())
	for i := range perm {
		perm[i] = db.Len() - 1 - i
	}
	rdb, err := db.Restrict(perm)
	if err != nil {
		t.Fatal(err)
	}
	rrep, err := ExecutePlan(rdb, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.Result.Equal(want) {
		t.Error("plan execution wrong on reordered edges")
	}
}

// TestHybridSkewRoutesToWCOJ: Zipf-skewed cyclic data must push the chooser
// off the binary route — the independence assumption's blind spot is
// exactly what the sketch histograms exist to catch.
func TestHybridSkewRoutesToWCOJ(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := workload.CliqueScheme(3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := workload.ZipfDatabase(rng, h, 400, 40, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFor(db, Options{Strategy: StrategyHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if r := plan.Hybrid.Route; r != optimizer.RouteWCOJ && r != optimizer.RouteMixed {
		t.Fatalf("route = %q on skewed triangle, want wcoj or mixed", r)
	}
	rep, err := ExecutePlan(db, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := db.Join(); !rep.Result.Equal(want) {
		t.Fatal("wrong result on skewed triangle")
	}
}
