package engine

import (
	"fmt"
	"strings"

	"repro/internal/acyclic"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

// Plan is a reusable execution plan for one database scheme: the outcome of
// strategy resolution and optimizer search, detached from any particular
// instance. The paper's Theorems 1–2 are exactly the license for this
// reuse — a program is derived once per scheme and computes ⋈D for *every*
// database over it, quasi-optimally — so a Plan is the natural cache entry
// (see internal/plancache).
//
// Plans are expressed in the scheme's canonical edge order
// (hypergraph.CanonicalOrder): PlanFor permutes the database into canonical
// order before searching, and ExecutePlan permutes again at run time, so one
// plan serves every database whose scheme has the same Fingerprint
// regardless of how its relations happen to be ordered.
//
// A Plan is immutable after PlanFor returns and safe for concurrent
// ExecutePlan calls.
type Plan struct {
	// Fingerprint is the canonical scheme key the plan was derived for
	// (hypergraph.Fingerprint).
	Fingerprint string
	// Strategy is the resolved execution route — never StrategyAuto.
	Strategy Strategy
	// Tree is the optimized join expression in canonical edge order: the
	// evaluation plan for the expression, reduce-then-join, and direct
	// strategies, and the source expression Algorithm 1/2 derived from for
	// the program strategy. It is nil for the acyclic pipeline, which needs
	// no search.
	Tree *jointree.Tree
	// Derivation carries the CPF tree and derived program for
	// StrategyProgram (Algorithms 1 and 2, run once at plan time).
	Derivation *core.Derivation
	// VarOrder is the global variable order for StrategyWCOJ (nil for the
	// other strategies). Like the trees and programs above it depends only
	// on the scheme, never on the instance, so it is cache-reusable.
	VarOrder []string
	// Hybrid carries StrategyHybrid's chosen route (nil for the other
	// strategies). Unlike the fields above it depends on the instance's
	// statistics, which is why the serving layer versions hybrid cache keys
	// by the statistics version.
	Hybrid *HybridPlan
	// Notes records how the plan was obtained (search used, bound factors).
	Notes []string
}

// Resolve returns the strategy Auto resolves to for the given scheme: the
// classical acyclic pipeline when the scheme is acyclic, otherwise the
// paper's derived program. Non-Auto strategies resolve to themselves.
func Resolve(h *hypergraph.Hypergraph, s Strategy) Strategy {
	if s != StrategyAuto {
		return s
	}
	if h.Acyclic() {
		return StrategyAcyclic
	}
	return StrategyProgram
}

// Strategies lists every selectable strategy, Auto first.
func Strategies() []Strategy {
	return []Strategy{
		StrategyAuto, StrategyProgram, StrategyExpression,
		StrategyReduceThenJoin, StrategyAcyclic, StrategyDirect, StrategyWCOJ,
		StrategyColumnar, StrategyHybrid,
	}
}

// StrategyNames lists the parseable strategy names, in Strategies order —
// the canonical enumeration for CLI usage strings and error messages.
func StrategyNames() []string {
	all := Strategies()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.String()
	}
	return names
}

// ParseStrategy parses a strategy name as printed by Strategy.String. The
// error enumerates every valid name.
func ParseStrategy(s string) (Strategy, error) {
	for _, cand := range Strategies() {
		if cand.String() == s {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("engine: unknown strategy %q (valid strategies: %s)", s, strings.Join(StrategyNames(), ", "))
}

// canonicalize permutes db into canonical edge order, returning the
// canonical database and its hypergraph. When the database is already
// canonical it is returned as-is.
func canonicalize(db *relation.Database, h *hypergraph.Hypergraph) (*relation.Database, *hypergraph.Hypergraph, error) {
	perm := h.CanonicalOrder()
	ordered := true
	for i, p := range perm {
		if p != i {
			ordered = false
			break
		}
	}
	if ordered {
		return db, h, nil
	}
	cdb, err := db.Restrict(perm)
	if err != nil {
		return nil, nil, err
	}
	return cdb, hypergraph.OfScheme(cdb), nil
}

// leftDeep builds the no-optimization left-deep tree over n relations.
func leftDeep(n int) *jointree.Tree {
	t := jointree.NewLeaf(0)
	for i := 1; i < n; i++ {
		t = jointree.NewJoin(t, jointree.NewLeaf(i))
	}
	return t
}

// PlanFor derives a reusable plan for db's scheme under the given options:
// it resolves the strategy, runs whatever optimizer search the strategy
// needs (charged against Options.Budget), and — for the program route —
// runs Algorithms 1 and 2. Execution limits in Options are ignored here;
// they bind at ExecutePlan time. The instance's statistics steer the search,
// but the returned plan is valid for every database over the same scheme
// (Theorem 1) and quasi-optimal relative to the found expression on all of
// them (Theorem 2).
func PlanFor(db *relation.Database, opts Options) (*Plan, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("engine: empty database")
	}
	h := hypergraph.OfScheme(db)
	cdb, ch, err := canonicalize(db, h)
	if err != nil {
		return nil, err
	}
	p := &Plan{Fingerprint: h.Fingerprint(), Strategy: Resolve(h, opts.Strategy)}
	switch p.Strategy {
	case StrategyAcyclic:
		if !ch.Acyclic() {
			return nil, fmt.Errorf("engine: acyclic strategy requires an acyclic scheme, got %s", ch)
		}
		// The full-reducer pipeline is search-free; the plan is the strategy.
	case StrategyDirect:
		p.Tree = leftDeep(cdb.Len())
	case StrategyWCOJ:
		p.VarOrder = wcoj.VariableOrder(ch)
		p.Notes = append(p.Notes, "variable order derived greedily: connected prefixes first, ties to the attribute on most edges")
	case StrategyExpression, StrategyReduceThenJoin, StrategyColumnar:
		space := optimizer.SpaceCPF
		if !ch.Connected(ch.Full()) {
			space = optimizer.SpaceAll
		}
		tree, how, err := bestTree(cdb, ch, opts.Budget, space)
		if err != nil {
			return nil, err
		}
		p.Tree = tree
		p.Notes = append(p.Notes, "optimized by "+how)
	case StrategyHybrid:
		hp, notes, err := planHybrid(cdb, ch, h.CanonicalOrder(), opts)
		if err != nil {
			return nil, err
		}
		p.Hybrid = hp
		p.Notes = append(p.Notes, notes...)
	case StrategyProgram:
		if !ch.Connected(ch.Full()) {
			// Same fallback as joinProgram: Algorithms 1/2 need a connected
			// scheme; expression evaluation handles products natively.
			tree, how, err := bestTree(cdb, ch, opts.Budget, optimizer.SpaceAll)
			if err != nil {
				return nil, err
			}
			p.Strategy = StrategyExpression
			p.Tree = tree
			p.Notes = append(p.Notes,
				"optimized by "+how,
				"scheme disconnected: fell back to expression evaluation")
			break
		}
		tree, how, err := bestTree(cdb, ch, opts.Budget, optimizer.SpaceAll)
		if err != nil {
			return nil, err
		}
		d, err := core.DeriveFromTree(tree, ch, nil)
		if err != nil {
			return nil, err
		}
		projects, joins, semijoins := d.Program.OpCounts()
		p.Tree = tree
		p.Derivation = d
		p.Notes = append(p.Notes,
			"optimized by "+how,
			fmt.Sprintf("program: %d projections, %d joins, %d semijoins", projects, joins, semijoins),
			fmt.Sprintf("Theorem 2 bound factor r(a+5) = %d", d.QuasiFactor),
		)
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", p.Strategy)
	}
	return p, nil
}

// ExecutePlan runs a previously derived plan against db, which must be over
// the same scheme (equal Fingerprint; any edge order). No optimizer search
// or algorithm derivation happens here — this is the serving hot path.
// Options.Limits, Options.IndexedExecution, and Options.Workers apply;
// Options.Strategy and Options.Budget are ignored (the plan fixed both).
// The plan is not mutated, so concurrent ExecutePlan calls on one plan are
// safe — including parallel executions of the same cached plan, each with
// its own governor and worker pool.
func ExecutePlan(db *relation.Database, plan *Plan, opts Options) (rep *Report, err error) {
	if plan == nil {
		return nil, fmt.Errorf("engine: nil plan")
	}
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("engine: empty database")
	}
	h := hypergraph.OfScheme(db)
	if fp := h.Fingerprint(); fp != plan.Fingerprint {
		return nil, fmt.Errorf("engine: plan fingerprint %q does not match database scheme %q", plan.Fingerprint, fp)
	}
	cdb, ch, err := canonicalize(db, h)
	if err != nil {
		return nil, err
	}
	gov := newGovernor(opts)
	if opts.Trace != nil {
		span := opts.Trace.Child(obs.KindAttempt, "execute plan: "+plan.Strategy.String())
		gov.SetSpan(span)
		defer func() {
			if err != nil {
				span.Note("failed: %v", err)
			}
			span.End()
		}()
	}
	if _, err := gov.Begin("engine.strategy"); err != nil {
		return nil, err
	}
	switch plan.Strategy {
	case StrategyProgram:
		res, err := runProgramTraced(plan.Derivation.Program, cdb, gov, opts)
		if err != nil {
			return nil, err
		}
		rep = &Report{
			Result:   res.Output,
			Strategy: StrategyProgram,
			Cost:     int64(res.Cost),
			Plan:     "source expression: " + plan.Tree.String(ch) + "\n" + plan.Derivation.Program.String(),
			Steps:    stepTimings(res.Trace),
		}
	case StrategyExpression, StrategyDirect:
		var out *relation.Relation
		var cost int
		if err := tracedPhase(gov, obs.KindEval, "evaluate expression", func() (err error) {
			out, cost, err = plan.Tree.EvalParallelGoverned(cdb, gov, opts.workerCount())
			return err
		}); err != nil {
			return nil, err
		}
		rep = &Report{
			Result:   out,
			Strategy: plan.Strategy,
			Cost:     int64(cost),
			Plan:     plan.Tree.String(ch),
		}
	case StrategyColumnar:
		var out *relation.Relation
		var cost int
		if err := tracedPhase(gov, obs.KindEval, "evaluate columnar expression", func() (err error) {
			out, cost, err = plan.Tree.EvalColumnarGoverned(cdb, gov)
			return err
		}); err != nil {
			return nil, err
		}
		rep = &Report{
			Result:   out,
			Strategy: StrategyColumnar,
			Cost:     int64(cost),
			Plan:     plan.Tree.String(ch),
			Notes:    []string{"columnar kernels: dictionary-encoded blocks, code-remapped batch joins"},
		}
	case StrategyReduceThenJoin:
		var red *PairwiseReduction
		if err := tracedPhase(gov, obs.KindReduce, "pairwise semijoin reduction", func() (err error) {
			red, err = PairwiseReduceGoverned(cdb, 0, gov)
			return err
		}); err != nil {
			return nil, err
		}
		var out *relation.Relation
		var joinCost int
		if err := tracedPhase(gov, obs.KindEval, "evaluate expression", func() (err error) {
			out, joinCost, err = plan.Tree.EvalParallelGoverned(red.Database, gov, opts.workerCount())
			return err
		}); err != nil {
			return nil, err
		}
		total := int64(cdb.TotalTuples()) + int64(red.Cost) + int64(joinCost) - int64(red.Database.TotalTuples())
		rep = &Report{
			Result:   out,
			Strategy: StrategyReduceThenJoin,
			Cost:     total,
			Plan:     plan.Tree.String(ch),
			Notes:    []string{fmt.Sprintf("pairwise reduction: %d rounds, %d tuples removed", red.Rounds, red.Removed)},
		}
	case StrategyWCOJ:
		res, err := wcoj.JoinGoverned(cdb, plan.VarOrder, gov, opts.workerCount())
		if err != nil {
			return nil, err
		}
		rep = &Report{
			Result:   res.Output,
			Strategy: StrategyWCOJ,
			Cost:     int64(cdb.TotalTuples()) + int64(res.Output.Len()),
			Plan:     "leapfrog triejoin, variable order: " + strings.Join(plan.VarOrder, " "),
			Notes:    wcojNotes(res),
		}
	case StrategyAcyclic:
		var out *relation.Relation
		var cost int
		if err := tracedPhase(gov, obs.KindPipeline, "full-reducer pipeline", func() (err error) {
			out, cost, err = acyclic.JoinGoverned(cdb, gov)
			return err
		}); err != nil {
			return nil, err
		}
		jt, _ := ch.GYO()
		tree := acyclic.MonotoneTree(jt)
		rep = &Report{
			Result:   out,
			Strategy: StrategyAcyclic,
			Cost:     int64(cost),
			Plan:     "full reducer; monotone expression: " + tree.String(ch),
			Notes:    []string{"no intermediate exceeds the output on the reduced database"},
		}
	case StrategyHybrid:
		rep, err = executeHybrid(cdb, ch, plan.Hybrid, opts, gov)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", plan.Strategy)
	}
	// Append the plan-time notes without mutating the shared plan.
	rep.Notes = append(rep.Notes, plan.Notes...)
	rep.Produced = gov.Produced()
	rep.Parallelism = opts.workerCount()
	return rep, nil
}
