// Package engine is the user-facing facade: given a database, it picks (or
// is told) a strategy — the classical acyclic pipeline, direct evaluation of
// an optimized join expression, or the paper's derive-a-program route — runs
// it, and returns the result with cost accounting and an EXPLAIN-style
// report.
package engine

import (
	"fmt"

	"repro/internal/govern"
	"repro/internal/relation"
)

// PairwiseReduction is the natural generalization of a full reducer to
// cyclic schemes: repeatedly semijoin every relation with every neighbour
// until no relation shrinks (or maxRounds passes complete). On acyclic
// schemes this reaches the full reducer's fixpoint (global consistency); on
// cyclic schemes it reaches local (pairwise) consistency only — the paper's
// Example 3 is built so that this fixpoint removes nothing while ⋈D is
// nearly empty.
type PairwiseReduction struct {
	// Database is the reduced database (inputs are never mutated).
	Database *relation.Database
	// Cost counts every semijoin head produced, per the §2.3 model
	// (the original inputs are not counted here; callers add them once).
	Cost int
	// Rounds is the number of full passes executed, including the final
	// pass that found a fixpoint.
	Rounds int
	// Removed is the total number of tuples eliminated.
	Removed int
}

// PairwiseReduce runs the reduction. maxRounds ≤ 0 means no limit (the
// reduction always terminates: relation sizes strictly decrease between
// rounds).
func PairwiseReduce(db *relation.Database, maxRounds int) (*PairwiseReduction, error) {
	return PairwiseReduceGoverned(db, maxRounds, nil)
}

// PairwiseReduceGoverned is PairwiseReduce under a governor: each semijoin
// head charges its tuples and cancellation aborts between semijoins with
// the governor's typed error (the failpoint site is the relation operators'
// own "relation.Semijoin").
func PairwiseReduceGoverned(db *relation.Database, maxRounds int, g *govern.Governor) (*PairwiseReduction, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("engine: empty database")
	}
	rels := make([]*relation.Relation, db.Len())
	copy(rels, db.Relations())

	out := &PairwiseReduction{}
	for {
		out.Rounds++
		changed := false
		for i := range rels {
			for j := range rels {
				if i == j {
					continue
				}
				if !rels[i].Schema().AttrSet().Overlaps(rels[j].Schema().AttrSet()) {
					continue
				}
				reduced, err := relation.SemijoinGoverned(g, rels[i], rels[j])
				if err != nil {
					return nil, err
				}
				out.Cost += reduced.Len()
				if reduced.Len() < rels[i].Len() {
					changed = true
					rels[i] = reduced
				}
			}
		}
		if !changed || (maxRounds > 0 && out.Rounds >= maxRounds) {
			break
		}
	}
	reducedDB, err := relation.NewDatabase(rels...)
	if err != nil {
		return nil, err
	}
	out.Database = reducedDB
	out.Removed = db.TotalTuples() - reducedDB.TotalTuples()
	return out, nil
}
