package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine/failpoint"
	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/workload"
)

// ladderBudget sits between the program route's produced tuples (~7.1k at
// q=10) and the classical routes' (~25.5k for the CPF expression — and for
// the columnar rung, which charges identically — 50k for direct's first
// join), so both expression-shaped rungs of the ladder blow it.
// The leapfrog-triejoin rung charges only the trie builds plus the output
// (~600 tuples here — no pairwise intermediate exists to charge), so it is
// the first rung that fits.
const ladderBudget = 15000

func TestDirectAbortsOnTupleBudget(t *testing.T) {
	db := example3DB(t, 10)
	rep, err := Join(db, Options{
		Strategy: StrategyDirect,
		Limits:   govern.Limits{MaxTuples: ladderBudget},
	})
	if rep != nil {
		t.Fatalf("got a report despite the abort: %+v", rep)
	}
	if !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("want ErrTupleBudget, got %v", err)
	}
	var le *govern.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want a *govern.LimitError in the chain, got %v", err)
	}
	if le.Max != ladderBudget {
		t.Errorf("LimitError.Max = %d, want %d", le.Max, ladderBudget)
	}
	// Bounded memory: the abort fires within one probe row of the budget;
	// the build side here has at most q²=100 matches per probe row.
	if le.Produced > ladderBudget+200 {
		t.Errorf("overshoot: produced %d against budget %d", le.Produced, ladderBudget)
	}
}

func TestExplicitStrategiesAbortHard(t *testing.T) {
	db := example3DB(t, 10)
	for _, s := range []Strategy{StrategyExpression, StrategyColumnar, StrategyReduceThenJoin, StrategyDirect} {
		rep, err := Join(db, Options{Strategy: s, Limits: govern.Limits{MaxTuples: ladderBudget}})
		if rep != nil || !errors.Is(err, govern.ErrTupleBudget) {
			t.Errorf("%s: want hard ErrTupleBudget abort, got rep=%v err=%v", s, rep, err)
		}
	}
}

func TestAutoLadderDegradesToWCOJ(t *testing.T) {
	db := example3DB(t, 10)
	want := db.Join()
	rep, err := Join(db, Options{Limits: govern.Limits{MaxTuples: ladderBudget}})
	if err != nil {
		t.Fatalf("ladder failed: %v", err)
	}
	if rep.Strategy != StrategyWCOJ {
		t.Errorf("ladder landed on %s, want %s", rep.Strategy, StrategyWCOJ)
	}
	if !rep.Result.Equal(want) {
		t.Errorf("wrong result: %d tuples, want %d", rep.Result.Len(), want.Len())
	}
	if rep.Produced == 0 || rep.Produced > ladderBudget {
		t.Errorf("Produced = %d, want within (0, %d]", rep.Produced, ladderBudget)
	}
	// The fallback chain must name both abandoned rungs, in order.
	var falls []string
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "degradation:") {
			falls = append(falls, n)
		}
	}
	if len(falls) != 2 {
		t.Fatalf("want 2 degradation notes, got %d: %q", len(falls), rep.Notes)
	}
	if !strings.Contains(falls[0], StrategyColumnar.String()) ||
		!strings.Contains(falls[1], StrategyReduceThenJoin.String()) {
		t.Errorf("fallback chain out of order: %q", falls)
	}
}

// TestAutoLadderDegradesToProgram forces the triejoin rung to blow its
// budget too (on Example 3 it never does naturally — its charge is inputs
// plus output, strictly below every other rung — so a failpoint injects the
// budget abort on the third attempt) and checks the ladder still bottoms
// out on the paper's program route with the full three-rung fallback chain.
func TestAutoLadderDegradesToProgram(t *testing.T) {
	defer failpoint.Reset()
	db := example3DB(t, 10)
	want := db.Join()
	failpoint.Enable("engine.strategy", 3, govern.ErrTupleBudget)
	rep, err := Join(db, Options{Limits: govern.Limits{MaxTuples: ladderBudget}})
	if err != nil {
		t.Fatalf("ladder failed: %v", err)
	}
	if rep.Strategy != StrategyProgram {
		t.Errorf("ladder landed on %s, want %s", rep.Strategy, StrategyProgram)
	}
	if !rep.Result.Equal(want) {
		t.Errorf("wrong result: %d tuples, want %d", rep.Result.Len(), want.Len())
	}
	var falls []string
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "degradation:") {
			falls = append(falls, n)
		}
	}
	if len(falls) != 3 {
		t.Fatalf("want 3 degradation notes, got %d: %q", len(falls), rep.Notes)
	}
	if !strings.Contains(falls[0], StrategyColumnar.String()) ||
		!strings.Contains(falls[1], StrategyReduceThenJoin.String()) ||
		!strings.Contains(falls[2], StrategyWCOJ.String()) {
		t.Errorf("fallback chain out of order: %q", falls)
	}
}

func TestAutoWithAmpleBudgetSkipsLadderNoise(t *testing.T) {
	db := example3DB(t, 6)
	rep, err := Join(db, Options{Limits: govern.Limits{MaxTuples: 10_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "degradation:") {
			t.Errorf("unexpected degradation note with an ample budget: %q", n)
		}
	}
	if rep.Strategy != StrategyColumnar {
		// First rung of the cyclic ladder should win outright.
		t.Errorf("ample budget landed on %s, want %s", rep.Strategy, StrategyColumnar)
	}
}

func TestAutoLadderExhausted(t *testing.T) {
	db := example3DB(t, 10)
	// Below even the program route's ~7.1k produced tuples: every rung blows.
	_, err := Join(db, Options{Limits: govern.Limits{MaxTuples: 100}})
	if !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("want ErrTupleBudget after exhausting the ladder, got %v", err)
	}
	if !strings.Contains(err.Error(), "ladder exhausted") {
		t.Errorf("error does not mention the exhausted ladder: %v", err)
	}
}

func TestAcyclicLadder(t *testing.T) {
	db, err := workload.DanglingChainDatabase(4, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := hypergraph.OfScheme(db)
	if ls := DegradationLadder(h); len(ls) != 2 ||
		ls[0] != StrategyAcyclic || ls[1] != StrategyProgram {
		t.Errorf("acyclic ladder = %v", ls)
	}
	// And the governed acyclic pipeline degrades to the program route when
	// its budget blows — both rungs produce the same answer, so pick a
	// budget only the reducer-heavy first rung exceeds... on this small
	// database the pipeline is cheap, so just check a generous run works.
	rep, err := Join(db, Options{Limits: govern.Limits{MaxTuples: 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyAcyclic {
		t.Errorf("governed auto on acyclic scheme ran %s", rep.Strategy)
	}
	if !rep.Result.Equal(db.Join()) {
		t.Error("wrong result")
	}
}

func TestCancellationIsFinalNotDegraded(t *testing.T) {
	db := example3DB(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the very first Begin must abort
	rep, err := Join(db, Options{Limits: govern.Limits{Context: ctx}})
	if rep != nil || !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("want ErrCanceled with no report, got rep=%v err=%v", rep, err)
	}
	if strings.Contains(err.Error(), "ladder") {
		t.Errorf("cancellation should not walk the ladder: %v", err)
	}
}

func TestDeadlineAbortsJoin(t *testing.T) {
	db := example3DB(t, 10)
	lim := govern.Limits{Deadline: time.Now().Add(-time.Second)}
	_, err := Join(db, Options{Strategy: StrategyProgram, Limits: lim})
	if !errors.Is(err, govern.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

// TestFailpointCancelMidExecution arms a failpoint that cancels the context
// as a side effect on the Nth relation.Join, proving a cancellation raised
// mid-execution is observed within one operator step: the very next
// governor poll aborts with ErrCanceled before another operator runs.
func TestFailpointCancelMidExecution(t *testing.T) {
	defer failpoint.Reset()
	db := example3DB(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	failpoint.EnableFunc("relation.Join", 2, func() error {
		cancel() // simulate an external cancellation arriving mid-query
		return nil
	})
	rep, err := Join(db, Options{
		Strategy: StrategyDirect, // 4 relations: 3 joins if run to completion
		Limits:   govern.Limits{Context: ctx},
	})
	if rep != nil {
		t.Fatalf("got a report despite cancellation: %+v", rep)
	}
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("abort should also match context.Canceled, got %v", err)
	}
}

func TestInjectedFaultIsNotDegraded(t *testing.T) {
	defer failpoint.Reset()
	db := example3DB(t, 6)
	boom := errors.New("disk on fire")
	failpoint.Enable("program.Stmt", 3, boom)
	// Auto with limits walks the ladder; an injected fault on the first rung
	// must surface as-is rather than being retried on the next rung.
	// (program.Stmt only fires on the program rung, so force it directly.)
	_, err := Join(db, Options{Strategy: StrategyProgram, Limits: govern.Limits{MaxTuples: 1 << 40}})
	if !errors.Is(err, boom) {
		t.Fatalf("want the injected fault, got %v", err)
	}
	if len(failpoint.Active()) != 0 {
		t.Error("failpoint should disarm after firing")
	}
}

func TestLadderDoesNotRetryInjectedFault(t *testing.T) {
	defer failpoint.Reset()
	db := example3DB(t, 6)
	boom := errors.New("injected")
	// Fires on the very first strategy attempt; the ladder must stop there.
	failpoint.Enable("engine.strategy", 1, boom)
	_, err := Join(db, Options{Limits: govern.Limits{MaxTuples: 1 << 40}})
	if !errors.Is(err, boom) {
		t.Fatalf("want the injected fault unretried, got %v", err)
	}
	if strings.Contains(err.Error(), "ladder") {
		t.Errorf("injected fault should not be degraded: %v", err)
	}
}

func TestProjectHonorsLimits(t *testing.T) {
	db := example3DB(t, 10)
	_, err := Project(db, db.Relation(0).Schema().AttrSet(), Options{
		Limits: govern.Limits{MaxTuples: 100},
	})
	if !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("want ErrTupleBudget from Project, got %v", err)
	}
}

func TestPairwiseReduceGovernedCancel(t *testing.T) {
	db := example3DB(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := govern.New(govern.Limits{Context: ctx})
	_, err := PairwiseReduceGoverned(db, 0, g)
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestReportProducedMatchesWork(t *testing.T) {
	db := example3DB(t, 6)
	rep, err := Join(db, Options{
		Strategy: StrategyProgram,
		Limits:   govern.Limits{MaxTuples: 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Produced counts generated tuples only; Cost additionally counts the
	// inputs, so cost - inputs = produced for a single uninterrupted attempt.
	wantProduced := rep.Cost - int64(db.TotalTuples())
	if rep.Produced != wantProduced {
		t.Errorf("Produced = %d, want cost-inputs = %d", rep.Produced, wantProduced)
	}
}
