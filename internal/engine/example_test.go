package engine_test

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/workload"
)

// ExampleJoin shows the facade on the paper's adversarial instance: the
// auto strategy routes cyclic schemes through Algorithms 1+2.
func ExampleJoin() {
	spec, err := workload.Example3(10)
	if err != nil {
		log.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := engine.Join(db, engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy:", rep.Strategy)
	fmt.Println("result:  ", rep.Result.Len(), "tuple(s)")
	fmt.Println("cost:    ", rep.Cost)
	// Output:
	// strategy: program
	// result:   1 tuple(s)
	// cost:     8330
}
