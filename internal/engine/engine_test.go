package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

func example3DB(t *testing.T, q int64) *relation.Database {
	t.Helper()
	spec, err := workload.Example3(q)
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestJoinAllStrategiesAgree(t *testing.T) {
	db := example3DB(t, 6)
	want := db.Join()
	for _, s := range []Strategy{
		StrategyAuto, StrategyProgram, StrategyExpression, StrategyReduceThenJoin, StrategyDirect, StrategyWCOJ,
	} {
		rep, err := Join(db, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !rep.Result.Equal(want) {
			t.Errorf("%s: wrong result (%d tuples)", s, rep.Result.Len())
		}
		if rep.Cost <= 0 {
			t.Errorf("%s: cost not accounted", s)
		}
		if rep.Explain() == "" {
			t.Errorf("%s: empty explain", s)
		}
	}
}

func TestAutoPicksAcyclicOnAcyclicScheme(t *testing.T) {
	db, err := workload.DanglingChainDatabase(4, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Join(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyAcyclic {
		t.Errorf("auto picked %s on an acyclic scheme", rep.Strategy)
	}
	if !rep.Result.Equal(db.Join()) {
		t.Error("wrong result")
	}
}

func TestAutoPicksProgramOnCyclicScheme(t *testing.T) {
	db := example3DB(t, 6)
	rep, err := Join(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != StrategyProgram {
		t.Errorf("auto picked %s on a cyclic scheme", rep.Strategy)
	}
}

func TestAcyclicStrategyRejectsCyclic(t *testing.T) {
	db := example3DB(t, 6)
	if _, err := Join(db, Options{Strategy: StrategyAcyclic}); err == nil {
		t.Error("acyclic strategy accepted a cyclic scheme")
	}
}

// TestProgramBeatsExpressionOnExample3: the engine's headline — at q = 10
// the program route costs less than the CPF-expression route.
func TestProgramBeatsExpressionOnExample3(t *testing.T) {
	db := example3DB(t, 10)
	prog, err := Join(db, Options{Strategy: StrategyProgram})
	if err != nil {
		t.Fatal(err)
	}
	expr, err := Join(db, Options{Strategy: StrategyExpression})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Cost >= expr.Cost {
		t.Errorf("program (%d) should beat CPF expression (%d) at q=10", prog.Cost, expr.Cost)
	}
}

// TestReduceThenJoinWastedOnExample3: pairwise reduction removes nothing on
// the pairwise-consistent family, so the strategy pays the reduction for
// free and cannot beat plain expression evaluation.
func TestReduceThenJoinWastedOnExample3(t *testing.T) {
	db := example3DB(t, 6)
	red, err := Join(db, Options{Strategy: StrategyReduceThenJoin})
	if err != nil {
		t.Fatal(err)
	}
	expr, err := Join(db, Options{Strategy: StrategyExpression})
	if err != nil {
		t.Fatal(err)
	}
	if red.Cost <= expr.Cost {
		t.Errorf("reduce-then-join (%d) should cost more than expression (%d) on pairwise-consistent data",
			red.Cost, expr.Cost)
	}
	found := false
	for _, n := range red.Notes {
		if strings.Contains(n, ", 0 tuples removed") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a zero-removal note, got %v", red.Notes)
	}
}

// TestReduceThenJoinHelpsOnDanglingData: with dangling tuples the reduction
// pays for itself against direct expression evaluation of the raw database.
func TestReduceThenJoinHelpsOnDanglingData(t *testing.T) {
	db, err := workload.DanglingChainDatabase(5, 14, 40)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Join(db, Options{Strategy: StrategyReduceThenJoin})
	if err != nil {
		t.Fatal(err)
	}
	if !red.Result.Equal(db.Join()) {
		t.Fatal("wrong result")
	}
	for _, n := range red.Notes {
		if strings.Contains(n, ", 0 tuples removed") {
			t.Errorf("reduction removed nothing on dangling data: %v", red.Notes)
		}
	}
}

func TestPairwiseReduce(t *testing.T) {
	db, err := workload.DanglingChainDatabase(4, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	red, err := PairwiseReduce(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if red.Removed == 0 {
		t.Error("no tuples removed from dangling data")
	}
	if !red.Database.Join().Equal(db.Join()) {
		t.Error("reduction changed the join")
	}
	if !red.Database.PairwiseConsistent() {
		t.Error("fixpoint not pairwise consistent")
	}
	// Inputs untouched.
	if db.Relation(0).Len() != 11+6 {
		t.Error("PairwiseReduce mutated its input")
	}
	// Round limit respected.
	one, err := PairwiseReduce(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Rounds != 1 {
		t.Errorf("rounds = %d with limit 1", one.Rounds)
	}
}

func TestPairwiseReduceFixpointOnConsistent(t *testing.T) {
	db := example3DB(t, 6)
	red, err := PairwiseReduce(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if red.Removed != 0 {
		t.Errorf("removed %d tuples from a pairwise-consistent database", red.Removed)
	}
	if red.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (immediate fixpoint)", red.Rounds)
	}
}

func TestJoinRandomizedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: rng.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(12), 3)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Join()
		for _, s := range []Strategy{StrategyAuto, StrategyProgram, StrategyExpression, StrategyDirect} {
			rep, err := Join(db, Options{Strategy: s})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s, err)
			}
			if !rep.Result.Equal(want) {
				t.Fatalf("trial %d %s: wrong result on %s", trial, s, h)
			}
		}
	}
}

func TestJoinEmptyDatabase(t *testing.T) {
	if _, err := Join(nil, Options{}); err == nil {
		t.Error("nil database accepted")
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		StrategyAuto:           "auto",
		StrategyProgram:        "program",
		StrategyExpression:     "cpf-expression",
		StrategyReduceThenJoin: "reduce-then-join",
		StrategyAcyclic:        "acyclic",
		StrategyDirect:         "direct",
		StrategyWCOJ:           "wcoj",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestExplainMentionsPlan(t *testing.T) {
	db := example3DB(t, 6)
	rep, err := Join(db, Options{Strategy: StrategyProgram})
	if err != nil {
		t.Fatal(err)
	}
	exp := rep.Explain()
	for _, want := range []string{"strategy: program", "source expression:", "R(", "Theorem 2"} {
		if !strings.Contains(exp, want) {
			t.Errorf("Explain missing %q:\n%s", want, exp)
		}
	}
}

func TestIndexedExecutionOptionAgrees(t *testing.T) {
	db := example3DB(t, 10)
	plain, err := Join(db, Options{Strategy: StrategyProgram})
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := Join(db, Options{Strategy: StrategyProgram, IndexedExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Result.Equal(indexed.Result) || plain.Cost != indexed.Cost {
		t.Errorf("indexed execution changed result or cost: %d vs %d", plain.Cost, indexed.Cost)
	}
}

func TestJoinTinyBudgetFails(t *testing.T) {
	// With a 1-tuple optimizer budget every catalog materialization fails;
	// the exact DP and the greedy fallback both error, and Join surfaces
	// it rather than returning a wrong answer.
	db := example3DB(t, 6)
	if _, err := Join(db, Options{Strategy: StrategyProgram, Budget: 1}); err == nil {
		t.Error("tiny budget silently succeeded")
	}
	if _, err := Join(db, Options{Strategy: StrategyExpression, Budget: 1}); err == nil {
		t.Error("tiny budget silently succeeded for expressions")
	}
}

func TestJoinDisconnectedAcyclicScheme(t *testing.T) {
	// Two disjoint binary relations: the scheme is acyclic but
	// disconnected; auto takes the acyclic route, whose monotone tree
	// crosses the components.
	r1 := relation.New(relation.SchemaOfRunes("AB"))
	r1.MustInsert(relation.Ints(1, 2))
	r1.MustInsert(relation.Ints(3, 4))
	r2 := relation.New(relation.SchemaOfRunes("CD"))
	r2.MustInsert(relation.Ints(5, 6))
	db := relation.MustDatabase(r1, r2)
	rep, err := Join(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(db.Join()) {
		t.Error("disconnected acyclic join wrong")
	}
	if rep.Result.Len() != 2 {
		t.Errorf("product size = %d, want 2", rep.Result.Len())
	}
	// The program strategy falls back gracefully on disconnected schemes.
	prog, err := Join(db, Options{Strategy: StrategyProgram})
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Result.Equal(db.Join()) {
		t.Error("program fallback wrong on disconnected scheme")
	}
}
