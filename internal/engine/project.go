package engine

import (
	"fmt"

	"repro/internal/acyclic"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/optimizer"
	"repro/internal/relation"
)

// Project computes π_out(⋈D): the project-join query over the database.
// On acyclic schemes it runs Yannakakis (polynomial in input + output); on
// cyclic schemes it optimizes a join expression and derives a program with
// a final projection (core.DeriveProjection). out must be a subset of the
// scheme's attributes; empty out answers the boolean query "is ⋈D
// nonempty" with a 0-ary relation.
//
// Options.Limits is enforced the same way as in Join, except there is no
// degradation ladder: a blown budget aborts the call with the typed error.
func Project(db *relation.Database, out relation.AttrSet, opts Options) (*Report, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("engine: empty database")
	}
	h := hypergraph.OfScheme(db)
	if !h.Attrs().ContainsAll(out) {
		return nil, fmt.Errorf("engine: projection attributes %s not all in scheme %s", out, h)
	}
	gov := newGovernor(opts)
	if _, err := gov.Begin("engine.strategy"); err != nil {
		return nil, err
	}
	if h.Acyclic() {
		res, cost, err := acyclic.YannakakisGoverned(db, out, gov)
		if err != nil {
			return nil, err
		}
		return &Report{
			Result:   res,
			Strategy: StrategyAcyclic,
			Cost:     int64(cost),
			Produced: gov.Produced(),
			Plan:     fmt.Sprintf("Yannakakis: full reducer, bottom-up join tree sweep, π_%s", out),
			Notes:    []string{"acyclic scheme: polynomial in input + output"},
		}, nil
	}
	if !h.Connected(h.Full()) {
		return nil, fmt.Errorf("engine: projection over a disconnected cyclic scheme is not supported")
	}
	tree, how, err := bestTree(db, h, opts.Budget, optimizer.SpaceAll)
	if err != nil {
		return nil, err
	}
	cpf, err := core.CPFify(tree, h, nil)
	if err != nil {
		return nil, err
	}
	d, err := core.DeriveProjection(cpf, h, out)
	if err != nil {
		return nil, err
	}
	apply := d.Program.ApplyGoverned
	if opts.IndexedExecution {
		apply = d.Program.ApplyIndexedGoverned
	}
	res, err := apply(db, gov)
	if err != nil {
		return nil, err
	}
	return &Report{
		Result:   res.Output,
		Strategy: StrategyProgram,
		Cost:     int64(res.Cost),
		Produced: gov.Produced(),
		Plan:     "source expression: " + tree.String(h) + "\n" + d.Program.String(),
		Notes:    []string{"optimized by " + how, "projection derived per Yannakakis' extension, appended to the Algorithm 2 program"},
	}, nil
}
