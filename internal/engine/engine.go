package engine

import (
	"fmt"
	"strings"

	"repro/internal/acyclic"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/optimizer"
	"repro/internal/relation"
)

// Strategy selects how Join computes ⋈D.
type Strategy int

const (
	// StrategyAuto picks per database: the acyclic pipeline when the scheme
	// is acyclic; otherwise an optimized tree is derived into a program —
	// exactly optimal for small schemes, greedy-seeded beyond the exact
	// search limit.
	StrategyAuto Strategy = iota
	// StrategyProgram optimizes a join expression (exact DP when feasible,
	// greedy otherwise), normalizes it with Algorithm 1, derives a program
	// with Algorithm 2, and runs it — the paper's route.
	StrategyProgram
	// StrategyExpression evaluates the cheapest Cartesian-product-free join
	// expression directly — the classical heuristic the paper critiques.
	StrategyExpression
	// StrategyReduceThenJoin runs the pairwise semijoin reduction to a
	// fixpoint, then evaluates the cheapest CPF expression on the reduced
	// database — the classical generalization of "full-reduce then join".
	StrategyReduceThenJoin
	// StrategyAcyclic runs the full reducer plus a monotone join
	// expression; it fails on cyclic schemes.
	StrategyAcyclic
	// StrategyDirect joins the relations left to right with no
	// optimization; the baseline of baselines.
	StrategyDirect
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyProgram:
		return "program"
	case StrategyExpression:
		return "cpf-expression"
	case StrategyReduceThenJoin:
		return "reduce-then-join"
	case StrategyAcyclic:
		return "acyclic"
	case StrategyDirect:
		return "direct"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures Join.
type Options struct {
	// Strategy selects the execution route (default StrategyAuto).
	Strategy Strategy
	// Budget caps the tuples the optimizer's catalog may materialize while
	// searching (0 = optimizer.DefaultBudget).
	Budget int64
	// IndexedExecution runs programs through the index-sharing executor
	// (identical results and cost; shared hash indexes across statements
	// that probe the same relation on the same attributes).
	IndexedExecution bool
}

// Report is the outcome of Join: the result plus everything an EXPLAIN
// would show.
type Report struct {
	// Result is ⋈D.
	Result *relation.Relation
	// Strategy is the route actually taken (resolved from Auto).
	Strategy Strategy
	// Cost is the total §2.3 cost actually paid: inputs plus every
	// generated relation, including optimizer search work is NOT included —
	// Cost covers execution only.
	Cost int64
	// Plan describes the executed plan: the join expression and, for the
	// program strategies, the derived statements.
	Plan string
	// Notes carries strategy-specific detail (reduction rounds, bound
	// factors, …).
	Notes []string
}

// Explain renders the report for humans.
func (r *Report) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", r.Strategy)
	fmt.Fprintf(&b, "cost:     %d tuples (inputs + every generated relation)\n", r.Cost)
	fmt.Fprintf(&b, "result:   %d tuples\n", r.Result.Len())
	if r.Plan != "" {
		b.WriteString("plan:\n")
		for _, line := range strings.Split(strings.TrimRight(r.Plan, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Join computes the natural join of the database under the given options.
func Join(db *relation.Database, opts Options) (*Report, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("engine: empty database")
	}
	h := hypergraph.OfScheme(db)
	strat := opts.Strategy
	if strat == StrategyAuto {
		if h.Acyclic() {
			strat = StrategyAcyclic
		} else {
			strat = StrategyProgram
		}
	}
	switch strat {
	case StrategyProgram:
		return joinProgram(db, h, opts)
	case StrategyExpression:
		return joinExpression(db, h, opts)
	case StrategyReduceThenJoin:
		return joinReduceThenJoin(db, h, opts)
	case StrategyAcyclic:
		return joinAcyclic(db, h)
	case StrategyDirect:
		return joinDirect(db, h)
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", strat)
	}
}

// bestTree finds the cheapest join expression: exact DP when the scheme is
// small enough, greedy otherwise. The returned note names the search used.
func bestTree(db *relation.Database, h *hypergraph.Hypergraph, budget int64, space optimizer.Space) (*jointree.Tree, string, error) {
	cat := optimizer.NewCatalog(db, budget)
	if h.Len() <= optimizer.MaxExactRelations {
		plan, err := optimizer.Optimal(cat, space)
		if err == nil {
			return plan.Tree, fmt.Sprintf("exact %s-space DP (cost %d)", space, plan.Cost), nil
		}
		// Fall through to greedy on budget exhaustion.
	}
	plan, err := optimizer.Greedy(cat, space == optimizer.SpaceCPF)
	if err != nil {
		return nil, "", err
	}
	return plan.Tree, fmt.Sprintf("greedy (cost %d)", plan.Cost), nil
}

// joinProgram is the paper's route: optimize, CPFify, derive, execute.
func joinProgram(db *relation.Database, h *hypergraph.Hypergraph, opts Options) (*Report, error) {
	if !h.Connected(h.Full()) {
		// Algorithms 1/2 need a connected scheme; fall back to direct
		// evaluation per component would complicate the facade — join
		// expression evaluation handles products natively.
		rep, err := joinExpression(db, h, opts)
		if err != nil {
			return nil, err
		}
		rep.Notes = append(rep.Notes, "scheme disconnected: fell back to expression evaluation")
		return rep, nil
	}
	tree, how, err := bestTree(db, h, opts.Budget, optimizer.SpaceAll)
	if err != nil {
		return nil, err
	}
	d, err := core.DeriveFromTree(tree, h, nil)
	if err != nil {
		return nil, err
	}
	apply := d.Program.Apply
	if opts.IndexedExecution {
		apply = d.Program.ApplyIndexed
	}
	res, err := apply(db)
	if err != nil {
		return nil, err
	}
	projects, joins, semijoins := d.Program.OpCounts()
	return &Report{
		Result:   res.Output,
		Strategy: StrategyProgram,
		Cost:     int64(res.Cost),
		Plan:     "source expression: " + tree.String(h) + "\n" + d.Program.String(),
		Notes: []string{
			"optimized by " + how,
			fmt.Sprintf("program: %d projections, %d joins, %d semijoins", projects, joins, semijoins),
			fmt.Sprintf("Theorem 2 bound factor r(a+5) = %d", d.QuasiFactor),
		},
	}, nil
}

// joinExpression evaluates the cheapest CPF expression directly (falling
// back to the unrestricted space on disconnected schemes, where no CPF
// expression exists).
func joinExpression(db *relation.Database, h *hypergraph.Hypergraph, opts Options) (*Report, error) {
	space := optimizer.SpaceCPF
	if !h.Connected(h.Full()) {
		space = optimizer.SpaceAll
	}
	tree, how, err := bestTree(db, h, opts.Budget, space)
	if err != nil {
		return nil, err
	}
	out, cost := tree.Eval(db)
	return &Report{
		Result:   out,
		Strategy: StrategyExpression,
		Cost:     int64(cost),
		Plan:     tree.String(h),
		Notes:    []string{"optimized by " + how},
	}, nil
}

// joinReduceThenJoin reduces pairwise to a fixpoint, then evaluates the
// cheapest CPF expression over the reduced database.
func joinReduceThenJoin(db *relation.Database, h *hypergraph.Hypergraph, opts Options) (*Report, error) {
	red, err := PairwiseReduce(db, 0)
	if err != nil {
		return nil, err
	}
	space := optimizer.SpaceCPF
	if !h.Connected(h.Full()) {
		space = optimizer.SpaceAll
	}
	tree, how, err := bestTree(red.Database, h, opts.Budget, space)
	if err != nil {
		return nil, err
	}
	out, joinCost := tree.Eval(red.Database)
	// Total: the original inputs once, the reduction heads, the join's
	// intermediates (subtract the reduced inputs the tree counted as its
	// leaves, which the reduction already paid for).
	total := int64(db.TotalTuples()) + int64(red.Cost) + int64(joinCost) - int64(red.Database.TotalTuples())
	return &Report{
		Result:   out,
		Strategy: StrategyReduceThenJoin,
		Cost:     total,
		Plan:     tree.String(h),
		Notes: []string{
			fmt.Sprintf("pairwise reduction: %d rounds, %d tuples removed", red.Rounds, red.Removed),
			"optimized by " + how,
		},
	}, nil
}

// joinAcyclic runs the classical full-reduce + monotone-join pipeline.
func joinAcyclic(db *relation.Database, h *hypergraph.Hypergraph) (*Report, error) {
	out, cost, err := acyclic.Join(db)
	if err != nil {
		return nil, err
	}
	jt, _ := h.GYO()
	tree := acyclic.MonotoneTree(jt)
	return &Report{
		Result:   out,
		Strategy: StrategyAcyclic,
		Cost:     int64(cost),
		Plan:     "full reducer; monotone expression: " + tree.String(h),
		Notes:    []string{"no intermediate exceeds the output on the reduced database"},
	}, nil
}

// joinDirect folds the relations left to right.
func joinDirect(db *relation.Database, h *hypergraph.Hypergraph) (*Report, error) {
	tree := jointree.NewLeaf(0)
	for i := 1; i < db.Len(); i++ {
		tree = jointree.NewJoin(tree, jointree.NewLeaf(i))
	}
	out, cost := tree.Eval(db)
	return &Report{
		Result:   out,
		Strategy: StrategyDirect,
		Cost:     int64(cost),
		Plan:     tree.String(h),
	}, nil
}
