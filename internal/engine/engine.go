package engine

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/acyclic"
	"repro/internal/core"
	"repro/internal/engine/failpoint"
	"repro/internal/govern"
	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

// Strategy selects how Join computes ⋈D.
type Strategy int

const (
	// StrategyAuto picks per database: the acyclic pipeline when the scheme
	// is acyclic; otherwise an optimized tree is derived into a program —
	// exactly optimal for small schemes, greedy-seeded beyond the exact
	// search limit.
	StrategyAuto Strategy = iota
	// StrategyProgram optimizes a join expression (exact DP when feasible,
	// greedy otherwise), normalizes it with Algorithm 1, derives a program
	// with Algorithm 2, and runs it — the paper's route.
	StrategyProgram
	// StrategyExpression evaluates the cheapest Cartesian-product-free join
	// expression directly — the classical heuristic the paper critiques.
	StrategyExpression
	// StrategyReduceThenJoin runs the pairwise semijoin reduction to a
	// fixpoint, then evaluates the cheapest CPF expression on the reduced
	// database — the classical generalization of "full-reduce then join".
	StrategyReduceThenJoin
	// StrategyAcyclic runs the full reducer plus a monotone join
	// expression; it fails on cyclic schemes.
	StrategyAcyclic
	// StrategyDirect joins the relations left to right with no
	// optimization; the baseline of baselines.
	StrategyDirect
	// StrategyWCOJ runs the worst-case-optimal Leapfrog Triejoin
	// (internal/wcoj): relations are trie-indexed along a global variable
	// order and ⋈D is computed attribute-by-attribute as a multiway
	// intersection, materializing no pairwise intermediate at all. On the
	// cyclic schemes where Example 3 makes every CPF expression unboundedly
	// suboptimal, this is the backend built for the job.
	StrategyWCOJ
	// StrategyColumnar evaluates the cheapest Cartesian-product-free join
	// expression through the columnar batch kernels: leaves are
	// dictionary-encoded into column blocks once, every join runs the
	// vectorized code-remapping kernel, and only the root decodes back to
	// tuples. Results, §2.3 costs, and governor charges are identical to
	// StrategyExpression — the differential gauntlet enforces it — so the
	// tuple-map operators remain the checked oracle while this is the fast
	// path.
	StrategyColumnar
	// StrategyHybrid is the statistics-driven chooser: per-relation sketches
	// (degree / distinct counts / equi-depth histograms, incrementally
	// maintained on the mutation path) estimate each route's §2.3 cost and
	// pick between the worst-case-optimal triejoin on the skewed cyclic
	// core, binary-join programs through the columnar kernels elsewhere, or
	// a mixed plan stitching the two — wcoj on hypergraph.Core, its output
	// fed as a leaf into a binary tree over the pendant edges. Pure routes
	// charge the governor identically to their static rungs.
	StrategyHybrid
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyProgram:
		return "program"
	case StrategyExpression:
		return "cpf-expression"
	case StrategyReduceThenJoin:
		return "reduce-then-join"
	case StrategyAcyclic:
		return "acyclic"
	case StrategyDirect:
		return "direct"
	case StrategyWCOJ:
		return "wcoj"
	case StrategyColumnar:
		return "columnar"
	case StrategyHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures Join.
type Options struct {
	// Strategy selects the execution route (default StrategyAuto).
	Strategy Strategy
	// Budget caps the tuples the optimizer's catalog may materialize while
	// searching (0 = optimizer.DefaultBudget). It bounds planning only;
	// Limits bounds execution.
	Budget int64
	// IndexedExecution runs programs through the index-sharing executor
	// (identical results and cost; shared hash indexes across statements
	// that probe the same relation on the same attributes).
	IndexedExecution bool
	// Limits bounds execution itself: tuple budgets, a deadline, and a
	// cancellation context enforced inside every operator (zero value =
	// unlimited). Exceeding a limit aborts with a typed error
	// (govern.ErrTupleBudget, govern.ErrCanceled, govern.ErrDeadline).
	//
	// Under StrategyAuto, a blown tuple budget does not fail the call
	// outright: Join degrades along a strategy ladder (see DegradationLadder)
	// and records the fallback chain in Report.Notes. Explicit strategies
	// abort hard. Tuple budgets apply per attempt — each rung of the ladder
	// starts with fresh counters (an aborted attempt's intermediates are
	// discarded), while the deadline and context are absolute and shared.
	Limits govern.Limits
	// Workers enables governed intra-query parallelism: program statements
	// are scheduled over their dependency DAG and joins, semijoins, and
	// projections run partition-parallel with up to Workers goroutines,
	// all charging the same governor budgets. 0 or 1 executes sequentially
	// (the default); results are identical either way. Workers is honored by
	// direct Join calls and by cached-Plan execution; the acyclic pipeline
	// runs sequentially regardless (its semijoin passes are already linear
	// in the inputs).
	Workers int
	// Sketches, when non-nil, supplies StrategyHybrid's maintained
	// per-relation statistics (aligned with the database as passed: sketch i
	// describes relation i) plus the served-traffic correction feedback.
	// When nil, hybrid planning builds throwaway sketches by scanning the
	// database once.
	Sketches *optimizer.DBSketches
	// Hybrid tunes the hybrid chooser (zero value = defaults).
	Hybrid optimizer.HybridConfig
	// Trace, when non-nil, is the parent span the execution hangs its span
	// tree under: strategy resolution, one attempt span per strategy tried,
	// and per-phase / per-statement / per-variable children below each
	// attempt, every span carrying its wall time and the tuples the governor
	// charged during it. Tracing forces governor accounting on (so
	// Report.Produced is meaningful even without limits) and adds no cost at
	// all when nil.
	Trace *obs.Span
}

// workerCount normalizes Options.Workers: anything below 2 is sequential.
func (o Options) workerCount() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

// Report is the outcome of Join: the result plus everything an EXPLAIN
// would show.
type Report struct {
	// Result is ⋈D.
	Result *relation.Relation
	// Strategy is the route actually taken (resolved from Auto).
	Strategy Strategy
	// Cost is the total §2.3 cost actually paid by execution: the input
	// relations plus every generated relation. Optimizer search work is
	// excluded; Options.Budget bounds that separately.
	Cost int64
	// Produced is the number of tuples the governor charged during the
	// winning execution attempt (0 when neither limits nor tracing were
	// set).
	Produced int64
	// TraceID identifies the query's span tree when tracing was enabled
	// (set by the serving layer; empty otherwise).
	TraceID string
	// Plan describes the executed plan: the join expression and, for the
	// program strategies, the derived statements.
	Plan string
	// Notes carries strategy-specific detail (reduction rounds, bound
	// factors, …).
	Notes []string
	// PlanCacheHit reports whether execution reused a cached plan instead of
	// running optimizer search (set by the serving layer; always false for
	// direct Join calls).
	PlanCacheHit bool
	// QueueWait is how long the query waited for a worker slot before
	// executing (set by the serving layer; zero for direct Join calls).
	QueueWait time.Duration
	// Parallelism is the intra-query worker count execution ran with
	// (1 = sequential).
	Parallelism int
	// Shards is the number of shards the query scattered across (set by the
	// sharding layer; 0 or 1 = executed unsharded). Cost and Produced are
	// the merged totals, corrected to match what one sequential execution
	// would have charged.
	Shards int
	// Steps carries per-statement timings for the program strategies (nil
	// for the expression and pipeline strategies, whose plans are not
	// statement lists). Under parallel execution concurrent steps overlap,
	// so their Walls sum to more than the query's elapsed time.
	Steps []StepTiming
}

// StepTiming is one executed program statement's contribution: its §2.3
// head cardinality and its wall-clock time.
type StepTiming struct {
	Stmt   string        `json:"stmt"`
	Tuples int           `json:"tuples"`
	Wall   time.Duration `json:"wall"`
}

// Explain renders the report for humans.
func (r *Report) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", r.Strategy)
	if r.TraceID != "" {
		fmt.Fprintf(&b, "trace:    %s\n", r.TraceID)
	}
	fmt.Fprintf(&b, "cost:     %d tuples (inputs + every generated relation)\n", r.Cost)
	fmt.Fprintf(&b, "result:   %d tuples\n", r.Result.Len())
	if r.PlanCacheHit {
		b.WriteString("plan cache: hit (no optimizer search)\n")
	}
	if r.QueueWait > 0 {
		fmt.Fprintf(&b, "queue wait: %s\n", r.QueueWait)
	}
	if r.Parallelism > 1 {
		fmt.Fprintf(&b, "parallelism: %d workers\n", r.Parallelism)
	}
	if r.Shards > 1 {
		fmt.Fprintf(&b, "shards:   %d (scatter-gather; cost and produced are merged totals)\n", r.Shards)
	}
	if len(r.Steps) > 0 {
		b.WriteString("steps:\n")
		for _, s := range r.Steps {
			fmt.Fprintf(&b, "  %-40s %8d tuples %12s\n", s.Stmt, s.Tuples, s.Wall.Round(time.Microsecond))
		}
	}
	if r.Plan != "" {
		b.WriteString("plan:\n")
		for _, line := range strings.Split(strings.TrimRight(r.Plan, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Join computes the natural join of the database under the given options.
//
// With Options.Limits set and StrategyAuto, Join runs the degradation
// ladder: strategies are tried in DegradationLadder order, a rung that
// exhausts its tuple budget (or the optimizer's search budget) falls
// through to the next, and the fallback chain is recorded in Report.Notes.
// A cancellation or deadline abort is final — there is no point retrying
// against an expired clock.
func Join(db *relation.Database, opts Options) (*Report, error) {
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("engine: empty database")
	}
	h := hypergraph.OfScheme(db)
	if opts.Strategy == StrategyAuto && opts.Limits.Enabled() {
		return joinLadder(db, h, opts)
	}
	strat := Resolve(h, opts.Strategy)
	if opts.Trace != nil {
		sp := opts.Trace.Child(obs.KindResolve, "resolve strategy")
		sp.Note("%s resolved to %s", opts.Strategy, strat)
		sp.End()
	}
	return runStrategy(db, h, strat, opts, newGovernor(opts))
}

// newGovernor builds the execution governor for one strategy attempt and
// wires the fault-injection registry into it. Tracing forces per-tuple
// accounting on so span charges and Report.Produced stay meaningful for
// unlimited executions.
func newGovernor(opts Options) *govern.Governor {
	gov := govern.New(opts.Limits)
	gov.SetFailpoint(failpoint.Check)
	if opts.Trace != nil {
		gov.Observe()
	}
	return gov
}

// tracedPhase runs one phase of a strategy attempt under a child span of
// the governor's current span, charging the span with the governor delta
// the phase produced. Untraced executions call fn with no overhead at all.
// The delta protocol is sound here because engine-level phases run
// sequentially: nothing else charges the governor during fn.
func tracedPhase(gov *govern.Governor, kind obs.Kind, name string, fn func() error) error {
	parent := gov.Span()
	if parent == nil {
		return fn()
	}
	sp := parent.Child(kind, name)
	defer sp.End()
	before := gov.Produced()
	err := fn()
	sp.AddTuples(gov.Produced() - before)
	if err != nil {
		sp.Note("failed: %v", err)
	}
	return err
}

// runStrategy executes one already-resolved (non-Auto) strategy under the
// given governor. The failpoint site "engine.strategy" fires once per
// attempt, before any work. When tracing is on, the whole attempt runs
// under an attempt span hung off Options.Trace, and the governor carries it
// down to the executors (govern.Governor.SetSpan).
func runStrategy(db *relation.Database, h *hypergraph.Hypergraph, strat Strategy, opts Options, gov *govern.Governor) (rep *Report, err error) {
	if opts.Trace != nil {
		span := opts.Trace.Child(obs.KindAttempt, "attempt: "+strat.String())
		gov.SetSpan(span)
		defer func() {
			if err != nil {
				span.Note("failed: %v", err)
			}
			span.End()
		}()
	}
	if _, err := gov.Begin("engine.strategy"); err != nil {
		return nil, err
	}
	switch strat {
	case StrategyProgram:
		rep, err = joinProgram(db, h, opts, gov)
	case StrategyExpression:
		rep, err = joinExpression(db, h, opts, gov)
	case StrategyReduceThenJoin:
		rep, err = joinReduceThenJoin(db, h, opts, gov)
	case StrategyAcyclic:
		rep, err = joinAcyclic(db, h, gov)
	case StrategyDirect:
		rep, err = joinDirect(db, h, opts, gov)
	case StrategyWCOJ:
		rep, err = joinWCOJ(db, h, opts, gov)
	case StrategyColumnar:
		rep, err = joinColumnar(db, h, opts, gov)
	case StrategyHybrid:
		rep, err = joinHybrid(db, h, opts, gov)
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", strat)
	}
	if err != nil {
		return nil, err
	}
	rep.Produced = gov.Produced()
	rep.Parallelism = opts.workerCount()
	return rep, nil
}

// runProgram picks the program executor the options ask for: the
// DAG-parallel executor when Workers > 1, the index-sharing executor when
// requested, else the plain interpreter. All three produce identical
// Results; they differ only in wall-clock work.
func runProgram(p *program.Program, db *relation.Database, gov *govern.Governor, opts Options) (*program.Result, error) {
	switch {
	case opts.workerCount() > 1:
		return p.ApplyParallelGoverned(db, gov, opts.workerCount())
	case opts.IndexedExecution:
		return p.ApplyIndexedGoverned(db, gov)
	default:
		return p.ApplyGoverned(db, gov)
	}
}

// runProgramTraced is runProgram under an "execute program" span: the
// governor's span is swapped to the execute span for the duration so the
// executors' per-statement spans nest under it, then restored. The swap is
// safe because the executors' worker goroutines are spawned (and joined)
// strictly inside the call.
func runProgramTraced(p *program.Program, db *relation.Database, gov *govern.Governor, opts Options) (*program.Result, error) {
	parent := gov.Span()
	if parent == nil {
		return runProgram(p, db, gov, opts)
	}
	exec := parent.Child(obs.KindExecute, "execute program")
	gov.SetSpan(exec)
	res, err := runProgram(p, db, gov, opts)
	gov.SetSpan(parent)
	if err != nil {
		exec.Note("failed: %v", err)
	}
	exec.End()
	return res, err
}

// stepTimings converts a program trace into Report.Steps.
func stepTimings(trace []program.Step) []StepTiming {
	out := make([]StepTiming, len(trace))
	for i, s := range trace {
		out[i] = StepTiming{Stmt: s.Stmt.String(), Tuples: s.Size, Wall: s.Wall}
	}
	return out
}

// DegradationLadder returns the strategy ladder governed Auto execution
// climbs for the given scheme, cheapest machinery first. On cyclic schemes
// it is the cheapest CPF expression through the columnar batch kernels
// (identical charges to StrategyExpression, so nothing is lost by leading
// with the faster evaluator — an aborted columnar attempt proves the
// tuple-map evaluation of the same tree would abort at the same tuple),
// then fixpoint semijoin reduction followed by the cheapest CPF expression,
// then the worst-case-optimal Leapfrog Triejoin — which materializes no
// pairwise intermediate at all, exactly what blew the earlier rungs — and
// finally the paper's derived program, whose semijoin-bounded heads
// (Theorem 2 caps its cost at r(a+5) times the optimum) make it the most
// conservative machinery of all. On acyclic schemes the full-reducer
// pipeline is already monotone; only the program route remains behind it.
func DegradationLadder(h *hypergraph.Hypergraph) []Strategy {
	if h.Acyclic() {
		return []Strategy{StrategyAcyclic, StrategyProgram}
	}
	return []Strategy{StrategyColumnar, StrategyReduceThenJoin, StrategyWCOJ, StrategyProgram}
}

// degradable reports whether an attempt's failure should fall through to
// the next rung: execution tuple budgets and optimizer search budgets
// degrade; cancellation, deadlines, and real errors are final.
func degradable(err error) bool {
	return errors.Is(err, govern.ErrTupleBudget) || errors.Is(err, optimizer.ErrBudget)
}

// joinLadder runs governed Auto execution down the degradation ladder.
// Tuple budgets are per attempt (each rung gets a fresh governor); the
// deadline and context are wall-clock–absolute, so they carry across
// rungs unchanged.
func joinLadder(db *relation.Database, h *hypergraph.Hypergraph, opts Options) (*Report, error) {
	ladder := DegradationLadder(h)
	if opts.Trace != nil {
		names := make([]string, len(ladder))
		for i, s := range ladder {
			names[i] = s.String()
		}
		sp := opts.Trace.Child(obs.KindResolve, "resolve strategy")
		sp.Note("governed auto: degradation ladder %s", strings.Join(names, " -> "))
		sp.End()
	}
	var chain []string
	for i, strat := range ladder {
		rep, err := runStrategy(db, h, strat, opts, newGovernor(opts))
		if err == nil {
			rep.Notes = append(chain, rep.Notes...)
			return rep, nil
		}
		if i == len(ladder)-1 || !degradable(err) {
			if len(chain) > 0 {
				return nil, fmt.Errorf("engine: degradation ladder exhausted after %d fallbacks: %w", len(chain), err)
			}
			return nil, err
		}
		chain = append(chain, fmt.Sprintf("degradation: %s aborted (%v); falling back to %s",
			strat, err, ladder[i+1]))
	}
	panic("engine: unreachable: ladder loop neither returned nor degraded")
}

// bestTree finds the cheapest join expression: exact DP when the scheme is
// small enough, greedy otherwise. The returned note names the search used.
func bestTree(db *relation.Database, h *hypergraph.Hypergraph, budget int64, space optimizer.Space) (*jointree.Tree, string, error) {
	cat := optimizer.NewCatalog(db, budget)
	if h.Len() <= optimizer.MaxExactRelations {
		plan, err := optimizer.Optimal(cat, space)
		if err == nil {
			return plan.Tree, fmt.Sprintf("exact %s-space DP (cost %d)", space, plan.Cost), nil
		}
		// Fall through to greedy on budget exhaustion.
	}
	plan, err := optimizer.Greedy(cat, space == optimizer.SpaceCPF)
	if err != nil {
		return nil, "", err
	}
	return plan.Tree, fmt.Sprintf("greedy (cost %d)", plan.Cost), nil
}

// joinProgram is the paper's route: optimize, CPFify, derive, execute.
func joinProgram(db *relation.Database, h *hypergraph.Hypergraph, opts Options, gov *govern.Governor) (*Report, error) {
	if !h.Connected(h.Full()) {
		// Algorithms 1/2 need a connected scheme; fall back to direct
		// evaluation per component would complicate the facade — join
		// expression evaluation handles products natively.
		rep, err := joinExpression(db, h, opts, gov)
		if err != nil {
			return nil, err
		}
		rep.Notes = append(rep.Notes, "scheme disconnected: fell back to expression evaluation")
		return rep, nil
	}
	var tree *jointree.Tree
	var how string
	var d *core.Derivation
	if err := tracedPhase(gov, obs.KindPlan, "optimize and derive program", func() (err error) {
		tree, how, err = bestTree(db, h, opts.Budget, optimizer.SpaceAll)
		if err != nil {
			return err
		}
		d, err = core.DeriveFromTree(tree, h, nil)
		return err
	}); err != nil {
		return nil, err
	}
	res, err := runProgramTraced(d.Program, db, gov, opts)
	if err != nil {
		return nil, err
	}
	projects, joins, semijoins := d.Program.OpCounts()
	notes := []string{
		"optimized by " + how,
		fmt.Sprintf("program: %d projections, %d joins, %d semijoins", projects, joins, semijoins),
		fmt.Sprintf("Theorem 2 bound factor r(a+5) = %d", d.QuasiFactor),
	}
	if w := opts.workerCount(); w > 1 {
		notes = append(notes, fmt.Sprintf("parallel DAG execution: %d statements, critical path %d, %d workers",
			d.Program.Len(), d.Program.CriticalPathLen(), w))
	}
	return &Report{
		Result:   res.Output,
		Strategy: StrategyProgram,
		Cost:     int64(res.Cost),
		Plan:     "source expression: " + tree.String(h) + "\n" + d.Program.String(),
		Steps:    stepTimings(res.Trace),
		Notes:    notes,
	}, nil
}

// joinExpression evaluates the cheapest CPF expression directly (falling
// back to the unrestricted space on disconnected schemes, where no CPF
// expression exists).
func joinExpression(db *relation.Database, h *hypergraph.Hypergraph, opts Options, gov *govern.Governor) (*Report, error) {
	space := optimizer.SpaceCPF
	if !h.Connected(h.Full()) {
		space = optimizer.SpaceAll
	}
	var tree *jointree.Tree
	var how string
	if err := tracedPhase(gov, obs.KindPlan, "optimize expression", func() (err error) {
		tree, how, err = bestTree(db, h, opts.Budget, space)
		return err
	}); err != nil {
		return nil, err
	}
	var out *relation.Relation
	var cost int
	if err := tracedPhase(gov, obs.KindEval, "evaluate expression", func() (err error) {
		out, cost, err = tree.EvalParallelGoverned(db, gov, opts.workerCount())
		return err
	}); err != nil {
		return nil, err
	}
	return &Report{
		Result:   out,
		Strategy: StrategyExpression,
		Cost:     int64(cost),
		Plan:     tree.String(h),
		Notes:    []string{"optimized by " + how},
	}, nil
}

// joinColumnar evaluates the same cheapest CPF expression as
// joinExpression, but through the vectorized columnar kernels: dictionary
// encoding at the leaves, code-remapping batch joins at every node, one
// decode at the root. Cost and governor charges match joinExpression
// exactly.
func joinColumnar(db *relation.Database, h *hypergraph.Hypergraph, opts Options, gov *govern.Governor) (*Report, error) {
	space := optimizer.SpaceCPF
	if !h.Connected(h.Full()) {
		space = optimizer.SpaceAll
	}
	var tree *jointree.Tree
	var how string
	if err := tracedPhase(gov, obs.KindPlan, "optimize expression", func() (err error) {
		tree, how, err = bestTree(db, h, opts.Budget, space)
		return err
	}); err != nil {
		return nil, err
	}
	var out *relation.Relation
	var cost int
	if err := tracedPhase(gov, obs.KindEval, "evaluate columnar expression", func() (err error) {
		out, cost, err = tree.EvalColumnarGoverned(db, gov)
		return err
	}); err != nil {
		return nil, err
	}
	return &Report{
		Result:   out,
		Strategy: StrategyColumnar,
		Cost:     int64(cost),
		Plan:     tree.String(h),
		Notes: []string{
			"optimized by " + how,
			"columnar kernels: dictionary-encoded blocks, code-remapped batch joins",
		},
	}, nil
}

// joinReduceThenJoin reduces pairwise to a fixpoint, then evaluates the
// cheapest CPF expression over the reduced database.
func joinReduceThenJoin(db *relation.Database, h *hypergraph.Hypergraph, opts Options, gov *govern.Governor) (*Report, error) {
	var red *PairwiseReduction
	if err := tracedPhase(gov, obs.KindReduce, "pairwise semijoin reduction", func() (err error) {
		red, err = PairwiseReduceGoverned(db, 0, gov)
		return err
	}); err != nil {
		return nil, err
	}
	space := optimizer.SpaceCPF
	if !h.Connected(h.Full()) {
		space = optimizer.SpaceAll
	}
	var tree *jointree.Tree
	var how string
	if err := tracedPhase(gov, obs.KindPlan, "optimize expression", func() (err error) {
		tree, how, err = bestTree(red.Database, h, opts.Budget, space)
		return err
	}); err != nil {
		return nil, err
	}
	var out *relation.Relation
	var joinCost int
	if err := tracedPhase(gov, obs.KindEval, "evaluate expression", func() (err error) {
		out, joinCost, err = tree.EvalParallelGoverned(red.Database, gov, opts.workerCount())
		return err
	}); err != nil {
		return nil, err
	}
	// Total: the original inputs once, the reduction heads, the join's
	// intermediates (subtract the reduced inputs the tree counted as its
	// leaves, which the reduction already paid for).
	total := int64(db.TotalTuples()) + int64(red.Cost) + int64(joinCost) - int64(red.Database.TotalTuples())
	return &Report{
		Result:   out,
		Strategy: StrategyReduceThenJoin,
		Cost:     total,
		Plan:     tree.String(h),
		Notes: []string{
			fmt.Sprintf("pairwise reduction: %d rounds, %d tuples removed", red.Rounds, red.Removed),
			"optimized by " + how,
		},
	}, nil
}

// joinAcyclic runs the classical full-reduce + monotone-join pipeline.
func joinAcyclic(db *relation.Database, h *hypergraph.Hypergraph, gov *govern.Governor) (*Report, error) {
	var out *relation.Relation
	var cost int
	if err := tracedPhase(gov, obs.KindPipeline, "full-reducer pipeline", func() (err error) {
		out, cost, err = acyclic.JoinGoverned(db, gov)
		return err
	}); err != nil {
		return nil, err
	}
	jt, _ := h.GYO()
	tree := acyclic.MonotoneTree(jt)
	return &Report{
		Result:   out,
		Strategy: StrategyAcyclic,
		Cost:     int64(cost),
		Plan:     "full reducer; monotone expression: " + tree.String(h),
		Notes:    []string{"no intermediate exceeds the output on the reduced database"},
	}, nil
}

// joinWCOJ runs the worst-case-optimal Leapfrog Triejoin along the
// scheme's derived variable order.
func joinWCOJ(db *relation.Database, h *hypergraph.Hypergraph, opts Options, gov *govern.Governor) (*Report, error) {
	order := wcoj.VariableOrder(h)
	res, err := wcoj.JoinGoverned(db, order, gov, opts.workerCount())
	if err != nil {
		return nil, err
	}
	return &Report{
		Result:   res.Output,
		Strategy: StrategyWCOJ,
		Cost:     int64(db.TotalTuples()) + int64(res.Output.Len()),
		Plan:     "leapfrog triejoin, variable order: " + strings.Join(order, " "),
		Notes:    wcojNotes(res),
	}, nil
}

// wcojNotes renders the WCOJ accounting shared by Join and ExecutePlan.
func wcojNotes(res *wcoj.Result) []string {
	notes := []string{
		fmt.Sprintf("tries re-sort the %d input tuples; no pairwise intermediate is materialized (§2.3 cost = inputs + output)", res.TrieTuples),
	}
	if res.Workers > 1 {
		notes = append(notes, fmt.Sprintf("outermost variable's key range partitioned across %d workers", res.Workers))
	}
	return notes
}

// joinDirect folds the relations left to right.
func joinDirect(db *relation.Database, h *hypergraph.Hypergraph, opts Options, gov *govern.Governor) (*Report, error) {
	tree := jointree.NewLeaf(0)
	for i := 1; i < db.Len(); i++ {
		tree = jointree.NewJoin(tree, jointree.NewLeaf(i))
	}
	var out *relation.Relation
	var cost int
	if err := tracedPhase(gov, obs.KindEval, "evaluate left-deep expression", func() (err error) {
		out, cost, err = tree.EvalParallelGoverned(db, gov, opts.workerCount())
		return err
	}); err != nil {
		return nil, err
	}
	return &Report{
		Result:   out,
		Strategy: StrategyDirect,
		Cost:     int64(cost),
		Plan:     tree.String(h),
	}, nil
}
