package engine

import (
	"testing"

	"repro/internal/govern"
	"repro/internal/workload"
)

// TestAdversarialGauntlet runs the checked-in cartesian-explosion corpus
// through every execution strategy under each case's own tuple budget: all
// strategies must finish within budget (the shapes are sized to be
// survivable — a planner that mishandles them blows the bound and fails
// here, loudly, instead of hanging), and all must agree tuple-for-tuple.
func TestAdversarialGauntlet(t *testing.T) {
	cases, err := workload.AdversarialCases()
	if err != nil {
		t.Fatal(err)
	}
	strategies := []Strategy{StrategyProgram, StrategyWCOJ, StrategyColumnar, StrategyHybrid}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			db, err := c.Database()
			if err != nil {
				t.Fatal(err)
			}
			want := db.Join()
			for _, s := range strategies {
				rep, err := Join(db, Options{Strategy: s, Limits: govern.Limits{MaxTuples: c.Budget}})
				if err != nil {
					t.Fatalf("%s under budget %d: %v", s, c.Budget, err)
				}
				if !rep.Result.Equal(want) {
					t.Fatalf("%s diverges from the reference fold (%d tuples, want %d)",
						s, rep.Result.Len(), want.Len())
				}
				if rep.Produced > c.Budget {
					t.Fatalf("%s charged %d over the case budget %d", s, rep.Produced, c.Budget)
				}
			}
		})
	}
}

// TestAdversarialQErrorAcceptance is the estimator's acceptance bound: on
// every corpus case the hybrid chooser's §2.3 cost estimate must be within
// the case's fixed q-error factor of the cost its chosen route actually
// charged. The corpus shapes are exactly the ones that wreck naive
// estimators — products the independence assumption gets right, skew it
// gets wrong without histograms — so a regression in the sketch/histogram
// path shows up as a blown bound here before it shows up as bad routing.
func TestAdversarialQErrorAcceptance(t *testing.T) {
	cases, err := workload.AdversarialCases()
	if err != nil {
		t.Fatal(err)
	}
	sawWCOJ := false
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			db, err := c.Database()
			if err != nil {
				t.Fatal(err)
			}
			plan, err := PlanFor(db, Options{Strategy: StrategyHybrid})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Hybrid.EstCost <= 0 {
				t.Fatalf("hybrid estimate %d, want positive", plan.Hybrid.EstCost)
			}
			rep, err := ExecutePlan(db, plan, Options{Limits: govern.Limits{MaxTuples: c.Budget}})
			if err != nil {
				t.Fatal(err)
			}
			q := float64(plan.Hybrid.EstCost) / float64(rep.Cost)
			if q < 1 {
				q = 1 / q
			}
			if q > c.QErrorBound {
				t.Fatalf("q-error %.2f exceeds the case bound %.2f (route %s, est %d, actual %d)",
					q, c.QErrorBound, plan.Hybrid.Route, plan.Hybrid.EstCost, rep.Cost)
			}
			if plan.Hybrid.Route == "wcoj" || plan.Hybrid.Route == "mixed" {
				sawWCOJ = true
			}
		})
	}
	if !sawWCOJ {
		t.Error("no corpus case routed off the binary/acyclic path; the skewed shapes should")
	}
}
