package engine

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

func TestProjectCyclic(t *testing.T) {
	db := example3DB(t, 6)
	out := relation.AttrSetOfRunes("BH")
	rep, err := Project(db, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustProject(db.Join(), out)
	if !rep.Result.Equal(want) {
		t.Errorf("Project = %s, want %s", rep.Result, want)
	}
	if rep.Strategy != StrategyProgram {
		t.Errorf("strategy = %s", rep.Strategy)
	}
}

func TestProjectAcyclicUsesYannakakis(t *testing.T) {
	db, err := workload.DanglingChainDatabase(4, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := relation.NewAttrSet("x0", "x4")
	rep, err := Project(db, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustProject(db.Join(), out)
	if !rep.Result.Equal(want) {
		t.Error("acyclic projection wrong")
	}
	if rep.Strategy != StrategyAcyclic {
		t.Errorf("strategy = %s, want acyclic", rep.Strategy)
	}
}

func TestProjectBooleanQuery(t *testing.T) {
	db := example3DB(t, 6)
	rep, err := Project(db, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Len() != 1 || rep.Result.Schema().Len() != 0 {
		t.Errorf("boolean query = %d tuples over %d attrs", rep.Result.Len(), rep.Result.Schema().Len())
	}
}

func TestProjectRejectsBadAttrs(t *testing.T) {
	db := example3DB(t, 6)
	if _, err := Project(db, relation.NewAttrSet("Z"), Options{}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Project(nil, nil, Options{}); err == nil {
		t.Error("nil database accepted")
	}
}

func TestProjectIndexedExecutionAgrees(t *testing.T) {
	db := example3DB(t, 6)
	out := relation.AttrSetOfRunes("AD")
	a, err := Project(db, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Project(db, out, Options{IndexedExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Result.Equal(b.Result) || a.Cost != b.Cost {
		t.Error("indexed execution diverged for projection")
	}
}
