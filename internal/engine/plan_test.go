package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// triangleDB builds the canonical cyclic instance {AB, BC, CA}.
func triangleDB(t *testing.T) *relation.Database {
	t.Helper()
	db, err := workload.TriangleSpec{Nodes: 12, Edges: 40}.TriangleDatabase(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// chainDB builds a small acyclic instance AB ⋈ BC ⋈ CD.
func chainDB(t *testing.T) *relation.Database {
	t.Helper()
	mk := func(a, b string) *relation.Relation {
		r := relation.New(relation.MustSchema(a, b))
		for i := int64(0); i < 20; i++ {
			r.MustInsert(relation.Ints(i%5, i%7))
		}
		return r
	}
	return relation.MustDatabase(mk("A", "B"), mk("B", "C"), mk("C", "D"))
}

func TestPlanForExecutePlanMatchesJoin(t *testing.T) {
	for _, tc := range []struct {
		name string
		db   *relation.Database
	}{
		{"cyclic-triangle", triangleDB(t)},
		{"acyclic-chain", chainDB(t)},
	} {
		for _, strat := range []Strategy{
			StrategyAuto, StrategyProgram, StrategyExpression,
			StrategyReduceThenJoin, StrategyDirect,
		} {
			opts := Options{Strategy: strat}
			plan, err := PlanFor(tc.db, opts)
			if err != nil {
				t.Fatalf("%s/%s: PlanFor: %v", tc.name, strat, err)
			}
			if plan.Strategy == StrategyAuto {
				t.Fatalf("%s/%s: plan strategy not resolved", tc.name, strat)
			}
			rep, err := ExecutePlan(tc.db, plan, opts)
			if err != nil {
				t.Fatalf("%s/%s: ExecutePlan: %v", tc.name, strat, err)
			}
			want := tc.db.Join()
			if !rep.Result.Equal(want) {
				t.Errorf("%s/%s: plan result != ⋈D (%d vs %d tuples)",
					tc.name, strat, rep.Result.Len(), want.Len())
			}
		}
	}
}

func TestPlanReusableAcrossEdgeOrder(t *testing.T) {
	db := triangleDB(t)
	plan, err := PlanFor(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The same relations registered in a different order share the
	// fingerprint, so the cached plan must serve them too.
	permuted, err := db.Restrict([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExecutePlan(permuted, plan, Options{})
	if err != nil {
		t.Fatalf("ExecutePlan on permuted database: %v", err)
	}
	if !rep.Result.Equal(db.Join()) {
		t.Error("plan on permuted database != ⋈D")
	}
}

func TestExecutePlanRejectsWrongScheme(t *testing.T) {
	plan, err := PlanFor(triangleDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecutePlan(chainDB(t), plan, Options{}); err == nil {
		t.Fatal("plan accepted a database over a different scheme")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPlanAutoResolution(t *testing.T) {
	cyc, err := PlanFor(triangleDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Strategy != StrategyProgram {
		t.Errorf("cyclic auto resolved to %s, want program", cyc.Strategy)
	}
	if cyc.Derivation == nil || cyc.Derivation.Program == nil {
		t.Error("program plan missing derivation")
	}
	acy, err := PlanFor(chainDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acy.Strategy != StrategyAcyclic {
		t.Errorf("acyclic auto resolved to %s, want acyclic", acy.Strategy)
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{
		StrategyAuto, StrategyProgram, StrategyExpression,
		StrategyReduceThenJoin, StrategyAcyclic, StrategyDirect,
	} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}
