package engine

import (
	"sync"
	"testing"

	"repro/internal/govern"
)

// TestConcurrentJoinSharedDatabase hammers one shared *relation.Database
// with concurrent Join calls across every strategy. Run under -race (CI
// does), it proves the read path builds its hash tables per call instead of
// lazily mutating shared relations — the property the serving layer's
// worker pool depends on.
func TestConcurrentJoinSharedDatabase(t *testing.T) {
	db := triangleDB(t)
	want, err := Join(db, Options{})
	if err != nil {
		t.Fatal(err)
	}

	strategies := []Strategy{
		StrategyAuto, StrategyProgram, StrategyExpression,
		StrategyReduceThenJoin, StrategyDirect,
	}
	const goroutines = 32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		strat := strategies[i%len(strategies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := Join(db, Options{Strategy: strat})
			if err != nil {
				t.Errorf("%s: %v", strat, err)
				return
			}
			if !rep.Result.Equal(want.Result) {
				t.Errorf("%s: concurrent result != ⋈D", strat)
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentExecutePlanSharedPlan shares one derived plan across many
// goroutines, mixing governed and ungoverned executions — the exact shape
// of plan-cache hits in the serving layer. The plan must never be mutated
// by execution.
func TestConcurrentExecutePlanSharedPlan(t *testing.T) {
	db := triangleDB(t)
	plan, err := PlanFor(db, Options{Strategy: StrategyProgram})
	if err != nil {
		t.Fatal(err)
	}
	notesBefore := len(plan.Notes)
	want, err := Join(db, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		governed := i%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := Options{Strategy: StrategyProgram}
			if governed {
				opts.Limits = govern.Limits{MaxTuples: 1 << 40}
			}
			rep, err := ExecutePlan(db, plan, opts)
			if err != nil {
				t.Errorf("ExecutePlan: %v", err)
				return
			}
			if !rep.Result.Equal(want.Result) {
				t.Error("shared-plan result != ⋈D")
			}
		}()
	}
	wg.Wait()
	if len(plan.Notes) != notesBefore {
		t.Errorf("execution mutated the shared plan's notes: %d → %d", notesBefore, len(plan.Notes))
	}
}
