package engine

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/govern"
	"repro/internal/relation"
)

// Tests for Options.Workers: the engine must produce the same Report
// contents (result, cost, produced) at every worker count, annotate the
// parallelism it ran with, and stay race-clean when many goroutines execute
// one shared cached Plan in parallel.

func TestJoinWorkersMatchesSequential(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	for _, strat := range []Strategy{StrategyProgram, StrategyExpression, StrategyDirect, StrategyReduceThenJoin} {
		db := triangleDB(t)
		seq, err := Join(db, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%v sequential: %v", strat, err)
		}
		if seq.Parallelism != 1 {
			t.Fatalf("%v sequential: Parallelism = %d, want 1", strat, seq.Parallelism)
		}
		for _, w := range []int{2, 4} {
			par, err := Join(db, Options{Strategy: strat, Workers: w})
			if err != nil {
				t.Fatalf("%v %d workers: %v", strat, w, err)
			}
			if !par.Result.Equal(seq.Result) {
				t.Fatalf("%v %d workers: result differs from sequential", strat, w)
			}
			if par.Cost != seq.Cost {
				t.Fatalf("%v %d workers: cost %d, sequential %d", strat, w, par.Cost, seq.Cost)
			}
			if par.Parallelism != w {
				t.Fatalf("%v %d workers: Parallelism = %d", strat, w, par.Parallelism)
			}
		}
	}
}

func TestJoinWorkersAcyclicStaysSequential(t *testing.T) {
	db := chainDB(t)
	rep, err := Join(db, Options{Strategy: StrategyAcyclic, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Join(db, Options{Strategy: StrategyAcyclic})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(seq.Result) {
		t.Fatal("acyclic route with Workers set: result differs")
	}
}

func TestProgramReportStepsAndParallelismNote(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	db := triangleDB(t)
	rep, err := Join(db, Options{Strategy: StrategyProgram, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) == 0 {
		t.Fatal("program route: Report.Steps is empty")
	}
	total := 0
	for _, s := range rep.Steps {
		if s.Stmt == "" {
			t.Fatal("Report.Steps entry with empty statement")
		}
		total += s.Tuples
	}
	// Cost = inputs + statement heads; Steps holds exactly the heads.
	if want := int(rep.Cost) - db.TotalTuples(); total != want {
		t.Fatalf("Steps tuples sum %d, want cost-minus-inputs %d", total, want)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "parallel DAG execution") {
			found = true
		}
	}
	if !found {
		t.Fatalf("program route with workers: no parallel note in %q", rep.Notes)
	}
}

// TestExecutePlanSharedPlanConcurrentWorkers is the cached-plan race test:
// one Plan, many goroutines, each executing with intra-query parallelism and
// its own governor. The race detector checks the plan is truly read-only;
// the assertions check every execution returns the full, identical answer.
func TestExecutePlanSharedPlanConcurrentWorkers(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	db := triangleDB(t)
	plan, err := PlanFor(db, Options{Strategy: StrategyProgram})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExecutePlan(db, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := ExecutePlan(db, plan, Options{
				Workers: 1 + i%4,
				Limits:  govern.Limits{MaxTuples: 1 << 40},
			})
			if err == nil {
				switch {
				case !rep.Result.Equal(want.Result):
					err = errors.New("result differs")
				case rep.Cost != want.Cost:
					err = errors.New("cost differs")
				case rep.Parallelism != 1+i%4:
					err = errors.New("parallelism not reported")
				}
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
}

// TestExecutePlanWorkersBudgetAbort: a cached plan executed in parallel
// under a too-small budget aborts with the typed error and no report.
func TestExecutePlanWorkersBudgetAbort(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	db := triangleDB(t)
	plan, err := PlanFor(db, Options{Strategy: StrategyProgram})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := ExecutePlan(db, plan, Options{Limits: govern.Limits{MaxTuples: 1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Produced == 0 {
		t.Skip("workload produced no governed tuples")
	}
	for _, w := range []int{1, 4} {
		rep, err := ExecutePlan(db, plan, Options{
			Workers: w,
			Limits:  govern.Limits{MaxTuples: probe.Produced - 1, CheckEvery: 1},
		})
		if !errors.Is(err, govern.ErrTupleBudget) {
			t.Fatalf("%d workers: want ErrTupleBudget, got %v", w, err)
		}
		if rep != nil {
			t.Fatalf("%d workers: abort returned a report", w)
		}
	}
}

func TestExplainMentionsParallelism(t *testing.T) {
	defer relation.SetParallelThreshold(0)()
	db := triangleDB(t)
	rep, err := Join(db, Options{Strategy: StrategyProgram, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Explain(); !strings.Contains(s, "parallelism: 3 workers") {
		t.Fatalf("Explain output missing parallelism line:\n%s", s)
	}
}
