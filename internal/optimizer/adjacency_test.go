package optimizer

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestAdjacencyImproveNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 25; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 3 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(10), 3)
		if err != nil {
			t.Fatal(err)
		}
		cat := NewCatalog(db, 0)
		order := rng.Perm(h.Len())
		before, err := orderCost(cat, order)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := AdjacencyImprove(cat, order)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cost > before {
			t.Fatalf("trial %d: adjacency rule worsened %d → %d", trial, before, plan.Cost)
		}
		if !plan.Tree.IsLinear() {
			t.Fatal("result not linear")
		}
		// Local optimality: no single adjacent swap improves further.
		final := plan.Tree.Leaves()
		for k := 0; k+1 < len(final); k++ {
			swapped := append([]int(nil), final...)
			swapped[k], swapped[k+1] = swapped[k+1], swapped[k]
			c, err := orderCost(cat, swapped)
			if err != nil {
				t.Fatal(err)
			}
			if c < plan.Cost {
				t.Fatalf("trial %d: not locally optimal (swap %d improves %d → %d)", trial, k, plan.Cost, c)
			}
		}
		// Input untouched.
		if len(order) != h.Len() {
			t.Fatal("input modified")
		}
	}
}

func TestAdjacencyImproveOnExample3(t *testing.T) {
	spec, err := workload.Example3(8)
	if err != nil {
		t.Fatal(err)
	}
	sizer, err := spec.AnalyticSizer()
	if err != nil {
		t.Fatal(err)
	}
	// Start from the naive order; the rule must find a no-worse local
	// optimum, and it can never beat the exact linear DP.
	plan, err := AdjacencyImprove(sizer, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Optimal(sizer, SpaceLinear)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost < exact.Cost {
		t.Fatalf("adjacency rule (%d) beat the exact linear DP (%d)", plan.Cost, exact.Cost)
	}
}
