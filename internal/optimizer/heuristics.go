package optimizer

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
)

// Greedy builds a bushy plan by repeatedly joining the pair of current
// subtrees whose join result is smallest (ties: lowest masks), a classic
// smallest-intermediate heuristic. With cpfOnly set, only overlapping pairs
// are considered; it then fails on disconnected schemes.
func Greedy(c Sizer, cpfOnly bool) (Plan, error) {
	type part struct {
		mask hypergraph.Mask
		tree *jointree.Tree
	}
	parts := make([]part, c.Hypergraph().Len())
	for i := range parts {
		parts[i] = part{mask: hypergraph.MaskOf(i), tree: jointree.NewLeaf(i)}
	}
	for len(parts) > 1 {
		bestI, bestJ := -1, -1
		bestSize := int64(math.MaxInt64)
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				if cpfOnly && !c.Hypergraph().Overlapping(parts[i].mask, parts[j].mask) {
					continue
				}
				size, err := c.Size(parts[i].mask | parts[j].mask)
				if err != nil {
					return Plan{}, err
				}
				if size < bestSize {
					bestSize = size
					bestI, bestJ = i, j
				}
			}
		}
		if bestI < 0 {
			return Plan{}, fmt.Errorf("optimizer: greedy found no joinable pair (disconnected scheme under CPF)")
		}
		merged := part{
			mask: parts[bestI].mask | parts[bestJ].mask,
			tree: jointree.NewJoin(parts[bestI].tree, parts[bestJ].tree),
		}
		parts = append(parts[:bestJ], parts[bestJ+1:]...)
		parts[bestI] = merged
	}
	cost, err := CostOf(c, parts[0].tree)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Tree: parts[0].tree, Cost: cost}, nil
}

// orderCost computes the cost of the linear order using catalog sizes.
func orderCost(c Sizer, order []int) (int64, error) {
	total := int64(0)
	var prefix hypergraph.Mask
	for k, i := range order {
		total = satAdd(total, leafSize(c, i))
		prefix = prefix.With(i)
		if k >= 1 {
			size, err := c.Size(prefix)
			if err != nil {
				return 0, err
			}
			total = satAdd(total, size)
		}
	}
	return total, nil
}

// orderTree converts a left-deep order into a tree.
func orderTree(order []int) *jointree.Tree {
	t := jointree.NewLeaf(order[0])
	for _, i := range order[1:] {
		t = jointree.NewJoin(t, jointree.NewLeaf(i))
	}
	return t
}

// IterativeImprovement searches linear orders by repeated random restarts,
// each followed by the Smith–Genesereth adjacency rule (AdjacencyImprove),
// in the spirit of Swami and Gupta's iterative improvement. restarts
// controls the number of random starting orders.
func IterativeImprovement(c Sizer, rng *rand.Rand, restarts int) (Plan, error) {
	n := c.Hypergraph().Len()
	if restarts <= 0 {
		restarts = 10
	}
	best := Plan{Cost: math.MaxInt64}
	for s := 0; s < restarts; s++ {
		plan, err := AdjacencyImprove(c, rng.Perm(n))
		if err != nil {
			return Plan{}, err
		}
		if plan.Cost < best.Cost {
			best = plan
		}
	}
	return best, nil
}

// AnnealOptions tunes SimulatedAnnealing.
type AnnealOptions struct {
	// InitialTemp is the starting temperature (0 = derived from the initial
	// cost).
	InitialTemp float64
	// Cooling is the geometric cooling factor per epoch (0 = 0.9).
	Cooling float64
	// StepsPerEpoch is the number of proposed moves per temperature
	// (0 = 4·n²).
	StepsPerEpoch int
	// Epochs is the number of cooling steps (0 = 30).
	Epochs int
}

// SimulatedAnnealing searches linear orders with random transposition moves
// accepted by the Metropolis criterion, after Swami and Gupta.
func SimulatedAnnealing(c Sizer, rng *rand.Rand, opts AnnealOptions) (Plan, error) {
	n := c.Hypergraph().Len()
	order := rng.Perm(n)
	cost, err := orderCost(c, order)
	if err != nil {
		return Plan{}, err
	}
	bestOrder := append([]int(nil), order...)
	bestCost := cost

	temp := opts.InitialTemp
	if temp <= 0 {
		temp = float64(cost)/float64(n) + 1
	}
	cooling := opts.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.9
	}
	steps := opts.StepsPerEpoch
	if steps <= 0 {
		steps = 4 * n * n
	}
	epochs := opts.Epochs
	if epochs <= 0 {
		epochs = 30
	}

	for e := 0; e < epochs; e++ {
		for s := 0; s < steps; s++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			order[i], order[j] = order[j], order[i]
			nc, err := orderCost(c, order)
			if err != nil {
				return Plan{}, err
			}
			delta := float64(nc - cost)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cost = nc
				if cost < bestCost {
					bestCost = cost
					copy(bestOrder, order)
				}
			} else {
				order[i], order[j] = order[j], order[i]
			}
		}
		temp *= cooling
	}
	return Plan{Tree: orderTree(bestOrder), Cost: bestCost}, nil
}
