package optimizer

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
)

// The hybrid chooser: given a scheme and its maintained sketches, estimate
// the §2.3 cost of three physical routes and pick the cheapest —
//
//	binary: one binary-join tree over the whole scheme (columnar kernels),
//	        the System-R-style DP over sketch statistics, refined with
//	        sketch-derived equi-depth histograms so heavy hitters surface;
//	wcoj:   one worst-case-optimal triejoin over the whole scheme, costed
//	        as trie inputs (with a constant-factor handicap for the sort)
//	        plus the estimated output;
//	mixed:  wcoj on the cyclic core only (hypergraph.Core), its output fed
//	        as a leaf into a binary tree over the remaining edges — the
//	        hybrid-plan shape of "Optimizing Queries with Many-to-Many
//	        Joins": worst-case-optimal where skew concentrates, binary
//	        joins elsewhere.
//
// Acyclic schemes route to the reducer pipeline unconditionally. All
// generated-tuple estimates are scaled by a served-traffic correction
// factor (DBSketches.Correction) so q-error feedback shifts future routing.

// HybridConfig tunes the chooser. The zero value selects the defaults.
type HybridConfig struct {
	// TrieCostFactor handicaps wcoj's trie build: its inputs count this
	// many times in the route comparison (but never in EstCost, which
	// stays the plain §2.3 estimate). Default 2.
	TrieCostFactor float64
	// SkewThreshold is the heavy-hitter ratio (max degree over mean
	// degree) past which, when the DP is unavailable, the chooser routes
	// cyclic schemes to wcoj outright. Default 8.
	SkewThreshold float64
	// Buckets is the equi-depth histogram resolution. Default 32.
	Buckets int
}

func (c HybridConfig) withDefaults() HybridConfig {
	if c.TrieCostFactor <= 0 {
		c.TrieCostFactor = 2
	}
	if c.SkewThreshold <= 0 {
		c.SkewThreshold = 8
	}
	if c.Buckets <= 0 {
		c.Buckets = 32
	}
	return c
}

// Route names for HybridChoice.Route.
const (
	RouteAcyclic = "acyclic"
	RouteBinary  = "binary"
	RouteWCOJ    = "wcoj"
	RouteMixed   = "mixed"
)

// HybridChoice is the chooser's decision.
type HybridChoice struct {
	// Route is one of the Route* constants.
	Route string
	// Core is the cyclic core (edge mask of the input hypergraph); set for
	// the wcoj and mixed routes.
	Core hypergraph.Mask
	// Outer is the chosen binary tree. For RouteBinary (and RouteAcyclic)
	// its leaves index the scheme's edges. For RouteMixed leaf 0 is the
	// core's output and leaf k>0 is the k-th non-core edge in ascending
	// index order. Nil when the DP was unavailable (the executor falls
	// back to its own search).
	Outer *jointree.Tree
	// EstCost is the chosen route's estimated §2.3 cost — inputs plus
	// correction-scaled generated tuples, with no handicap — the number
	// q-error is measured against.
	EstCost int64
	// EstBinary/EstWCOJ/EstMixed are the handicapped comparables the
	// decision was made on (0 = route unavailable).
	EstBinary, EstWCOJ, EstMixed int64
	// Skew is the worst per-relation heavy-hitter ratio.
	Skew float64
	// Correction is the feedback factor applied to generated-tuple terms.
	Correction float64
	// Notes explains the decision for Explain output.
	Notes []string
}

// scale multiplies a saturating count by a non-negative float factor.
func scale(x int64, f float64) int64 {
	if x >= Infinite {
		return Infinite
	}
	v := float64(x) * f
	if v >= float64(Infinite) {
		return Infinite
	}
	if v < 0 {
		return 0
	}
	return int64(v)
}

// ChooseHybrid picks the physical route for scheme h given per-relation
// sketches (sks[i] describes the relation behind edge i) and the feedback
// correction factor corr (1 = no feedback yet).
func ChooseHybrid(h *hypergraph.Hypergraph, sks []*Sketch, corr float64, cfg HybridConfig) (HybridChoice, error) {
	cfg = cfg.withDefaults()
	if h.Len() != len(sks) {
		return HybridChoice{}, fmt.Errorf("optimizer: %d sketches for %d edges", len(sks), h.Len())
	}
	if corr <= 0 {
		corr = 1
	}
	stats := make([]Stats, len(sks))
	var inputs int64
	skew := 1.0
	for i, s := range sks {
		stats[i] = s.Stats()
		inputs = satAdd(inputs, stats[i].Card)
		if sk := s.Skew(); sk > skew {
			skew = sk
		}
	}
	ch := HybridChoice{Skew: skew, Correction: corr}
	note := func(format string, args ...any) {
		ch.Notes = append(ch.Notes, fmt.Sprintf(format, args...))
	}
	note("skew=%.2f correction=%.2f", skew, corr)

	hist := NewHistogramEstimatorFromSketches(sks, cfg.Buckets)

	// treeFor runs the estimated DP over an arbitrary scheme; CPF first,
	// falling back to the unrestricted space for disconnected schemes
	// (where every complete plan crosses a product).
	treeFor := func(hh *hypergraph.Hypergraph, base []Stats) (*jointree.Tree, bool) {
		if p, err := EstimatedOptimalStats(hh, base, SpaceCPF); err == nil {
			return p.Tree, true
		}
		if p, err := EstimatedOptimalStats(hh, base, SpaceAll); err == nil {
			return p.Tree, true
		}
		return nil, false
	}

	if h.Acyclic() {
		ch.Route = RouteAcyclic
		if tree, ok := treeFor(h, stats); ok {
			cost, _ := hist.EstimateTree(tree)
			ch.Outer = tree
			ch.EstCost = satAdd(inputs, scale(cost-inputs, corr))
		} else {
			ch.EstCost = inputs
		}
		note("acyclic scheme: reducer pipeline, est=%d", ch.EstCost)
		return ch, nil
	}

	core := h.Core()
	if core == 0 {
		core = h.Full()
	}
	ch.Core = core

	// Binary comparable: DP tree over the whole scheme, histogram-refined.
	var binTree *jointree.Tree
	var binGen, outZ int64
	haveBin := false
	if tree, ok := treeFor(h, stats); ok {
		cost, root := hist.EstimateTree(tree)
		binTree = tree
		binGen = cost - inputs
		outZ = root.Card
		haveBin = true
		ch.EstBinary = satAdd(inputs, scale(binGen, corr))
	}

	if !haveBin {
		// Too many relations for the exact DP: decide on skew alone.
		if skew >= cfg.SkewThreshold {
			ch.Route = RouteWCOJ
			ch.EstCost = inputs
			note("DP unavailable (%d edges); skew %.2f >= %.2f routes to wcoj", h.Len(), skew, cfg.SkewThreshold)
		} else {
			ch.Route = RouteBinary
			ch.EstCost = inputs
			note("DP unavailable (%d edges); low skew routes to binary search fallback", h.Len())
		}
		return ch, nil
	}

	// WCOJ comparable: trie inputs (handicapped) plus the same
	// histogram-refined output estimate the binary root carries.
	ch.EstWCOJ = satAdd(scale(inputs, cfg.TrieCostFactor), scale(outZ, corr))
	wcojEstCost := satAdd(inputs, scale(outZ, corr))

	// Mixed comparable: wcoj on the core, binary joins over its output and
	// the pendant edges.
	var mixedTree *jointree.Tree
	var mixedEstCost int64
	haveMixed := false
	if core != h.Full() && core.Count() >= 2 && h.Len()-core.Count() >= 1 {
		coreIdx := core.Indexes()
		var coreTree *jointree.Tree
		for _, i := range coreIdx {
			leaf := jointree.NewLeaf(i)
			if coreTree == nil {
				coreTree = leaf
			} else {
				coreTree = jointree.NewJoin(coreTree, leaf)
			}
		}
		_, coreNode := hist.estimate(coreTree)
		var coreInputs int64
		for _, i := range coreIdx {
			coreInputs = satAdd(coreInputs, stats[i].Card)
		}
		coreZ := coreNode.stats.Card

		outerEdges := []relation.AttrSet{h.AttrsOf(core)}
		outerBase := []Stats{coreNode.stats}
		outerHists := []map[string]*Histogram{coreNode.hists}
		for i := 0; i < h.Len(); i++ {
			if core.Has(i) {
				continue
			}
			outerEdges = append(outerEdges, h.Edge(i))
			outerBase = append(outerBase, stats[i])
			outerHists = append(outerHists, hist.hists[i])
		}
		if outerH, err := hypergraph.New(outerEdges); err == nil {
			if tree, ok := treeFor(outerH, outerBase); ok {
				outerEst := &HistogramEstimator{base: outerBase, hists: outerHists}
				outerCost, _ := outerEst.EstimateTree(tree)
				var outerLeaves int64
				for _, s := range outerBase {
					outerLeaves = satAdd(outerLeaves, s.Card)
				}
				gen := satAdd(coreZ, outerCost-outerLeaves)
				handicap := scale(coreInputs, cfg.TrieCostFactor-1)
				ch.EstMixed = satAdd(satAdd(inputs, handicap), scale(gen, corr))
				mixedEstCost = satAdd(inputs, scale(gen, corr))
				mixedTree = tree
				haveMixed = true
			}
		}
	}

	note("est binary=%d wcoj=%d mixed=%d (core %s)", ch.EstBinary, ch.EstWCOJ, ch.EstMixed, core)

	// Pick the cheapest available comparable; ties prefer binary (no trie
	// build), then mixed over full wcoj (smaller sort).
	ch.Route = RouteBinary
	ch.Outer = binTree
	ch.EstCost = satAdd(inputs, scale(binGen, corr))
	best := ch.EstBinary
	if haveMixed && ch.EstMixed < best {
		best = ch.EstMixed
		ch.Route = RouteMixed
		ch.Outer = mixedTree
		ch.EstCost = mixedEstCost
	}
	if ch.EstWCOJ < best {
		ch.Route = RouteWCOJ
		ch.Outer = nil
		ch.EstCost = wcojEstCost
	}
	note("route=%s est=%d", ch.Route, ch.EstCost)
	return ch, nil
}
