package optimizer

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// buildCol makes a single-column relation with the given values (a column
// of a wider relation works too, but tests stay simpler with one column
// plus a row id to defeat set-dedup).
func buildCol(vals []int64) *relation.Relation {
	r := relation.New(relation.MustSchema("x", "rid"))
	for i, v := range vals {
		r.MustInsert(relation.Ints(v, int64(i)))
	}
	return r
}

func TestBuildHistogramBasics(t *testing.T) {
	r := buildCol([]int64{1, 1, 2, 3, 3, 3, 4, 5, 6, 7})
	h, err := BuildHistogram(r, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalRows() != 10 {
		t.Errorf("TotalRows = %d", h.TotalRows())
	}
	// Buckets cover the sorted values in order and never split a value.
	var seen int64
	for i := range h.Bounds {
		if h.Rows[i] <= 0 || h.Distinct[i] <= 0 {
			t.Errorf("bucket %d: rows %d distinct %d", i, h.Rows[i], h.Distinct[i])
		}
		if i > 0 && h.Bounds[i].Compare(h.Bounds[i-1]) <= 0 {
			t.Errorf("bounds not increasing at %d", i)
		}
		seen += h.Rows[i]
	}
	if seen != 10 {
		t.Errorf("buckets cover %d rows", seen)
	}
	if _, err := BuildHistogram(r, "nope", 4); err == nil {
		t.Error("missing attribute accepted")
	}
	if _, err := BuildHistogram(r, "x", 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestBuildHistogramEmpty(t *testing.T) {
	r := relation.New(relation.MustSchema("x"))
	h, err := BuildHistogram(r, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalRows() != 0 || len(h.Bounds) != 0 {
		t.Errorf("empty histogram wrong: %+v", h)
	}
	if EstimateEquiJoin(h, h) != 0 {
		t.Error("join estimate on empty histograms should be 0")
	}
}

// trueEquiJoin counts matching pairs on x exactly.
func trueEquiJoin(a, b *relation.Relation) int64 {
	counts := map[int64]int64{}
	posA, _ := a.Schema().Position("x")
	for _, row := range a.Rows() {
		counts[row[posA].AsInt()]++
	}
	posB, _ := b.Schema().Position("x")
	var total int64
	for _, row := range b.Rows() {
		total += counts[row[posB].AsInt()]
	}
	return total
}

// TestEstimateEquiJoinUniform: on uniform data both the histogram and the
// independence estimate should be within a small factor of the truth.
func TestEstimateEquiJoinUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	mk := func(n, domain int) *relation.Relation {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(domain))
		}
		return buildCol(vals)
	}
	a, b := mk(2000, 100), mk(2000, 100)
	ha, err := BuildHistogram(a, "x", 20)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := BuildHistogram(b, "x", 20)
	if err != nil {
		t.Fatal(err)
	}
	truth := trueEquiJoin(a, b)
	est := EstimateEquiJoin(ha, hb)
	if est < truth/3 || est > truth*3 {
		t.Errorf("uniform estimate %d vs truth %d (off by > 3×)", est, truth)
	}
}

// TestHistogramBeatsIndependenceOnSkew: on Zipf data the histogram estimate
// must be closer to the truth than the independence estimate — the reason
// real optimizers carry histograms.
func TestHistogramBeatsIndependenceOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	zipf := rand.NewZipf(rng, 1.3, 1, 199)
	mk := func(n int) *relation.Relation {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(zipf.Uint64())
		}
		return buildCol(vals)
	}
	a, b := mk(3000), mk(3000)
	truth := trueEquiJoin(a, b)

	ha, err := BuildHistogram(a, "x", 30)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := BuildHistogram(b, "x", 30)
	if err != nil {
		t.Fatal(err)
	}
	histEst := EstimateEquiJoin(ha, hb)

	// Independence estimate: |a|·|b| / max(d(a), d(b)).
	sa, sb := CollectStats(a), CollectStats(b)
	div := sa.Distinct["x"]
	if sb.Distinct["x"] > div {
		div = sb.Distinct["x"]
	}
	indEst := sa.Card * sb.Card / div

	errOf := func(est int64) float64 {
		r := float64(est) / float64(truth)
		if r < 1 {
			return 1 / r
		}
		return r
	}
	if errOf(histEst) >= errOf(indEst) {
		t.Errorf("histogram (est %d, err %.2fx) should beat independence (est %d, err %.2fx); truth %d",
			histEst, errOf(histEst), indEst, errOf(indEst), truth)
	}
}

// TestHistogramOnWorkloadZipf exercises the workload generator path.
func TestHistogramOnWorkloadZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	h, err := workload.ChainScheme(2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := workload.ZipfDatabase(rng, h, 500, 60, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := BuildHistogram(db.Relation(0), "x1", 16)
	if err != nil {
		t.Fatal(err)
	}
	if hist.TotalRows() != int64(db.Relation(0).Len()) {
		t.Errorf("TotalRows %d vs relation %d", hist.TotalRows(), db.Relation(0).Len())
	}
}
