package optimizer

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

func sketchesOf(t *testing.T, db *relation.Database) []*Sketch {
	t.Helper()
	sks := make([]*Sketch, db.Len())
	for i := range sks {
		sks[i] = BuildSketch(db.Relation(i))
	}
	return sks
}

func zipfRelation(rng *rand.Rand, attrs []string, size, domain int, s float64) *relation.Relation {
	r := relation.New(relation.MustSchema(attrs...))
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	for i := 0; i < size; i++ {
		tup := make(relation.Tuple, len(attrs))
		for j := range tup {
			tup[j] = relation.Int(int64(z.Uint64()))
		}
		_ = r.Insert(tup)
	}
	return r
}

// degree1Relation draws the first attribute uniformly from dom1 and makes
// the second unique — a big relation that joins selectively instead of
// fanning out.
func degree1Relation(rng *rand.Rand, attrs []string, size, dom1 int) *relation.Relation {
	r := relation.New(relation.MustSchema(attrs...))
	for i := 0; i < size; i++ {
		_ = r.Insert(relation.Tuple{relation.Int(int64(rng.Intn(dom1))), relation.Int(int64(i))})
	}
	return r
}

func uniformRelation(rng *rand.Rand, attrs []string, size, domain int) *relation.Relation {
	r := relation.New(relation.MustSchema(attrs...))
	for i := 0; i < size; i++ {
		tup := make(relation.Tuple, len(attrs))
		for j := range tup {
			tup[j] = relation.Int(int64(rng.Intn(domain)))
		}
		_ = r.Insert(tup)
	}
	return r
}

// TestChooseHybridAcyclic: acyclic schemes route to the reducer pipeline
// unconditionally.
func TestChooseHybridAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := hypergraph.Must([]relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
		relation.NewAttrSet("C", "D"),
	})
	rels := make([]*relation.Relation, h.Len())
	for i, e := range h.Edges() {
		rels[i] = uniformRelation(rng, e, 50, 10)
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ChooseHybrid(h, sketchesOf(t, db), 1, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Route != RouteAcyclic {
		t.Fatalf("route = %q, want acyclic", ch.Route)
	}
	if ch.EstCost <= 0 {
		t.Fatalf("EstCost = %d, want positive", ch.EstCost)
	}
}

// TestChooseHybridSkewPrefersWCOJ: on a Zipf-skewed triangle the
// histogram-refined binary estimate explodes and the chooser must leave
// the binary route; on the same scheme with uniform data it should stay
// binary (the triejoin's trie build is a real constant-factor cost).
func TestChooseHybridSkewPrefersWCOJ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tri := hypergraph.Must([]relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
		relation.NewAttrSet("A", "C"),
	})
	skewed := make([]*relation.Relation, 3)
	for i, e := range tri.Edges() {
		skewed[i] = zipfRelation(rng, e, 500, 50, 1.2)
	}
	sdb, err := relation.NewDatabase(skewed...)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ChooseHybrid(tri, sketchesOf(t, sdb), 1, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Route != RouteWCOJ && ch.Route != RouteMixed {
		t.Fatalf("skewed triangle routed to %q (est binary=%d wcoj=%d)", ch.Route, ch.EstBinary, ch.EstWCOJ)
	}
	if ch.Skew < 2 {
		t.Fatalf("skew = %.2f, expected the Zipf heavy hitter to register", ch.Skew)
	}

	uniform := make([]*relation.Relation, 3)
	for i, e := range tri.Edges() {
		// Sparse uniform edges: pairwise joins stay small, so the binary
		// route's intermediates undercut the triejoin's 2× trie handicap.
		uniform[i] = uniformRelation(rng, e, 60, 60)
	}
	udb, err := relation.NewDatabase(uniform...)
	if err != nil {
		t.Fatal(err)
	}
	uch, err := ChooseHybrid(tri, sketchesOf(t, udb), 1, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if uch.Route != RouteBinary {
		t.Fatalf("sparse uniform triangle routed to %q (est binary=%d wcoj=%d)", uch.Route, uch.EstBinary, uch.EstWCOJ)
	}
}

// TestChooseHybridMixed: a skewed triangle core with a large pendant chain
// should pick the mixed route — wcoj would pay its trie handicap on the
// big pendant relations, binary would pay the core's skewed intermediates.
func TestChooseHybridMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := hypergraph.Must([]relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
		relation.NewAttrSet("A", "C"),
		relation.NewAttrSet("C", "D"),
		relation.NewAttrSet("D", "E"),
	})
	rels := make([]*relation.Relation, h.Len())
	for i := 0; i < 3; i++ {
		rels[i] = zipfRelation(rng, h.Edge(i), 200, 50, 1.3)
	}
	// Pendant chains: large but selective (degree 1 on the fresh attribute),
	// so the full triejoin pays its trie handicap on them for nothing while
	// the binary route still pays the core's skewed intermediates.
	rels[3] = degree1Relation(rng, h.Edge(3), 20000, 50)
	rels[4] = degree1Relation(rng, h.Edge(4), 20000, 20000)
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ChooseHybrid(h, sketchesOf(t, db), 1, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Route != RouteMixed {
		t.Fatalf("route = %q (binary=%d wcoj=%d mixed=%d), want mixed",
			ch.Route, ch.EstBinary, ch.EstWCOJ, ch.EstMixed)
	}
	if ch.Core != hypergraph.MaskOf(0, 1, 2) {
		t.Fatalf("core = %s, want the triangle", ch.Core)
	}
	if ch.Outer == nil {
		t.Fatal("mixed route without an outer tree")
	}
}

// TestChooseHybridCorrectionShiftsRoute: a large feedback correction
// inflates generated-tuple estimates for every route proportionally, so it
// cannot flip a decision by itself — but it must scale EstCost so q-error
// feedback converges.
func TestChooseHybridCorrectionShiftsRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tri := hypergraph.Must([]relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
		relation.NewAttrSet("A", "C"),
	})
	rels := make([]*relation.Relation, 3)
	for i, e := range tri.Edges() {
		rels[i] = uniformRelation(rng, e, 100, 12)
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	sks := sketchesOf(t, db)
	base, err := ChooseHybrid(tri, sks, 1, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	corrected, err := ChooseHybrid(tri, sks, 3, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if corrected.EstCost <= base.EstCost {
		t.Fatalf("correction 3 did not inflate EstCost: %d vs %d", corrected.EstCost, base.EstCost)
	}
}

// TestChooseHybridDPUnavailable: past MaxExactRelations the chooser falls
// back to the skew heuristic instead of failing.
func TestChooseHybridDPUnavailable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := MaxExactRelations + 2
	edges := make([]relation.AttrSet, n)
	for i := 0; i < n; i++ {
		edges[i] = relation.NewAttrSet(fmt.Sprintf("X%02d", i), fmt.Sprintf("X%02d", (i+1)%n))
	}
	h, err := hypergraph.New(edges)
	if err != nil {
		t.Fatal(err)
	}
	if h.Acyclic() {
		t.Fatal("cycle scheme should be cyclic")
	}
	rels := make([]*relation.Relation, n)
	for i, e := range edges {
		rels[i] = uniformRelation(rng, e, 10, 5)
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ChooseHybrid(h, sketchesOf(t, db), 1, HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Route != RouteBinary && ch.Route != RouteWCOJ {
		t.Fatalf("fallback route = %q", ch.Route)
	}
	if ch.Outer != nil {
		t.Fatal("fallback should leave the tree search to the executor")
	}
}

// TestChooseHybridEstimateSanity: for every route EstCost must be at least
// the inputs — §2.3 cost can never be below them.
func TestChooseHybridEstimateSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tri := hypergraph.Must([]relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
		relation.NewAttrSet("A", "C"),
	})
	for trial := 0; trial < 10; trial++ {
		rels := make([]*relation.Relation, 3)
		var inputs int64
		for i, e := range tri.Edges() {
			rels[i] = uniformRelation(rng, e, 10+rng.Intn(200), 2+rng.Intn(30))
			inputs += int64(rels[i].Len())
		}
		db, err := relation.NewDatabase(rels...)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := ChooseHybrid(tri, sketchesOf(t, db), 1, HybridConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if ch.EstCost < inputs {
			t.Fatalf("trial %d: EstCost %d below inputs %d (route %s)", trial, ch.EstCost, inputs, ch.Route)
		}
		if ch.EstCost >= math.MaxInt64/2 && ch.Route != RouteBinary {
			t.Fatalf("trial %d: saturated estimate", trial)
		}
	}
}
