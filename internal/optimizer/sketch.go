package optimizer

import (
	"sort"
	"sync"

	"repro/internal/relation"
)

// Per-relation statistics sketches, maintained incrementally on the
// mutation path. A Sketch holds one relation's row count and, per
// attribute, the exact value→row-count map; from it the estimators'
// Stats (cardinality + distinct counts) and equi-depth Histograms are
// derived without rescanning the relation. DBSketches bundles one sketch
// per relation of a database behind a version counter: every applied
// mutation batch bumps the version, which the serving layer folds into
// plan-cache keys so plans chosen from stale statistics are never
// re-served after the data shifts under them.
//
// Delta maintenance is deliberately blind to set semantics: a re-inserted
// tuple or a delete of an absent tuple drifts the counts slightly rather
// than forcing a lookup against the live relation. The drift is tracked
// per sketch, and once it exceeds RebuildFraction of the rows the sketch
// is rebuilt exactly from the relation — the classic stale-statistics /
// auto-analyze tradeoff, made explicit.

// RebuildFraction is the drift threshold: when the tuples applied as
// blind deltas since the last exact build exceed this fraction of the
// relation's rows (and the absolute floor below), the sketch rebuilds.
const RebuildFraction = 0.25

// rebuildFloor avoids rebuilding tiny relations on every batch.
const rebuildFloor = 64

// Sketch summarizes one relation: exact per-attribute value counts in
// column order. It is immutable once built except through Apply; the
// concurrent owner is DBSketches, which copies-on-write around Apply.
type Sketch struct {
	// attrs is the relation's schema in column order, so mutation tuples
	// index it positionally.
	attrs []string
	rows  int64
	// counts[i] maps attribute attrs[i]'s values to their row counts.
	counts []map[relation.Value]int64
	// drift is the number of delta tuples applied blindly since the last
	// exact build; it measures how far the counts may have strayed from
	// the live relation under set semantics.
	drift int64
}

// BuildSketch scans the relation once and builds its exact sketch.
func BuildSketch(r *relation.Relation) *Sketch {
	attrs := r.Schema().Attrs()
	s := &Sketch{
		attrs:  append([]string(nil), attrs...),
		rows:   int64(r.Len()),
		counts: make([]map[relation.Value]int64, len(attrs)),
	}
	for i := range attrs {
		s.counts[i] = make(map[relation.Value]int64, r.Len())
	}
	for _, row := range r.Rows() {
		for i, v := range row {
			s.counts[i][v]++
		}
	}
	return s
}

// Rows returns the (possibly drifted) row count.
func (s *Sketch) Rows() int64 { return s.rows }

// Drift returns the delta tuples applied since the last exact build.
func (s *Sketch) Drift() int64 { return s.drift }

// Attrs returns the schema attributes in column order.
func (s *Sketch) Attrs() []string { return s.attrs }

// Distinct returns the number of distinct values of attr (0 when the
// attribute is not in the schema).
func (s *Sketch) Distinct(attr string) int64 {
	for i, a := range s.attrs {
		if a == attr {
			return int64(len(s.counts[i]))
		}
	}
	return 0
}

// MaxDegree returns the row count of attr's most frequent value — the
// heavy hitter the uniformity assumption cannot see.
func (s *Sketch) MaxDegree(attr string) int64 {
	for i, a := range s.attrs {
		if a != attr {
			continue
		}
		var max int64
		for _, c := range s.counts[i] {
			if c > max {
				max = c
			}
		}
		return max
	}
	return 0
}

// Skew returns the relation's worst per-attribute skew ratio: the heavy
// hitter's degree over the mean degree (rows/distinct). 1 means uniform;
// large values mean a few values dominate and independence-assumption
// estimates of joins through this relation are badly low.
func (s *Sketch) Skew() float64 {
	worst := 1.0
	for i := range s.attrs {
		d := int64(len(s.counts[i]))
		if d == 0 || s.rows == 0 {
			continue
		}
		var max int64
		for _, c := range s.counts[i] {
			if c > max {
				max = c
			}
		}
		mean := float64(s.rows) / float64(d)
		if mean <= 0 {
			continue
		}
		if ratio := float64(max) / mean; ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// Stats derives the estimator input: cardinality plus per-attribute
// distinct counts.
func (s *Sketch) Stats() Stats {
	st := Stats{Card: s.rows, Distinct: make(map[string]int64, len(s.attrs))}
	for i, a := range s.attrs {
		st.Distinct[a] = int64(len(s.counts[i]))
	}
	return st
}

// Histogram derives attr's equi-depth histogram from the value counts
// (nil when the attribute is not in the schema or holds no rows). The
// bucketing rule matches BuildHistogram: buckets hold roughly equal row
// counts and a value never straddles a boundary.
func (s *Sketch) Histogram(attr string, buckets int) *Histogram {
	if buckets <= 0 {
		buckets = 32
	}
	col := -1
	for i, a := range s.attrs {
		if a == attr {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}
	type vc struct {
		v relation.Value
		n int64
	}
	vals := make([]vc, 0, len(s.counts[col]))
	var total int64
	for v, n := range s.counts[col] {
		if n > 0 {
			vals = append(vals, vc{v, n})
			total += n
		}
	}
	h := &Histogram{}
	if total == 0 {
		return h
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v.Compare(vals[j].v) < 0 })
	per := (total + int64(buckets) - 1) / int64(buckets)
	var rows, distinct int64
	for i, x := range vals {
		rows += x.n
		distinct++
		if rows >= per || i == len(vals)-1 {
			h.Bounds = append(h.Bounds, x.v)
			h.Rows = append(h.Rows, rows)
			h.Distinct = append(h.Distinct, distinct)
			rows, distinct = 0, 0
		}
	}
	return h
}

// clone deep-copies the sketch (copy-on-write support for DBSketches).
func (s *Sketch) clone() *Sketch {
	out := &Sketch{
		attrs:  s.attrs,
		rows:   s.rows,
		counts: make([]map[relation.Value]int64, len(s.counts)),
		drift:  s.drift,
	}
	for i, m := range s.counts {
		c := make(map[relation.Value]int64, len(m))
		for v, n := range m {
			c[v] = n
		}
		out.counts[i] = c
	}
	return out
}

// apply folds one mutation's deletes and inserts into the counts,
// blindly (no set-semantics check against the live relation) and clamped
// at zero. It returns the number of delta tuples applied, which is also
// added to the drift.
func (s *Sketch) apply(inserts, deletes []relation.Tuple) int64 {
	for _, t := range deletes {
		for i, v := range t {
			if i >= len(s.counts) {
				break
			}
			if c := s.counts[i][v]; c <= 1 {
				delete(s.counts[i], v)
			} else {
				s.counts[i][v] = c - 1
			}
		}
		if s.rows > 0 {
			s.rows--
		}
	}
	for _, t := range inserts {
		for i, v := range t {
			if i >= len(s.counts) {
				break
			}
			s.counts[i][v]++
		}
		s.rows++
	}
	n := int64(len(inserts) + len(deletes))
	s.drift += n
	return n
}

// needsRebuild reports whether the accumulated drift warrants an exact
// rebuild from the live relation.
func (s *Sketch) needsRebuild() bool {
	if s.drift == 0 {
		return false
	}
	threshold := int64(RebuildFraction * float64(s.rows))
	if threshold < rebuildFloor {
		threshold = rebuildFloor
	}
	return s.drift >= threshold
}

// DBSketches is a database's sketch set behind a version counter, safe
// for concurrent use: readers take an immutable snapshot, the mutation
// path clones-and-swaps the sketches it touches (copy-on-write, the same
// discipline the catalog itself uses). It also accumulates the
// estimation feedback loop: observed actual-vs-estimated cost ratios per
// scheme fingerprint, folded back into future estimates as a
// multiplicative correction.
type DBSketches struct {
	mu       sync.RWMutex
	version  int64
	sketches []*Sketch
	// driftTotal accumulates, per relation, every delta tuple ever applied
	// blindly — it keeps counting across rebuilds (which reset the
	// per-sketch drift), so it is the monotone series behind the
	// joind_optimizer_drift_total metric.
	driftTotal []int64
	rebuilds   int64
	// feedback maps a scheme fingerprint to the EWMA of actual/estimated
	// §2.3 cost ratios observed for plans executed over that scheme.
	feedback map[string]float64
}

// feedbackAlpha is the EWMA weight of the newest observation.
const feedbackAlpha = 0.3

// CollectSketches builds the sketch set for a database (version 0).
func CollectSketches(db *relation.Database) *DBSketches {
	d := &DBSketches{
		sketches:   make([]*Sketch, db.Len()),
		driftTotal: make([]int64, db.Len()),
		feedback:   make(map[string]float64),
	}
	for i := 0; i < db.Len(); i++ {
		d.sketches[i] = BuildSketch(db.Relation(i))
	}
	return d
}

// Version returns the current statistics version.
func (d *DBSketches) Version() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version
}

// SetVersion pins the version (recovery seeds it from the store so the
// counter stays monotone across restarts). It never moves the version
// backwards.
func (d *DBSketches) SetVersion(v int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v > d.version {
		d.version = v
	}
}

// Bump increments the version and returns the new value. Every ingest
// batch bumps — even one that touched no registered view and changed no
// sketch materially — so a hybrid plan chosen before a skew-shifting
// ingest can never be re-served from the plan cache.
func (d *DBSketches) Bump() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.version++
	return d.version
}

// Snapshot returns the current sketch slice. The slice and the sketches
// are immutable: Apply swaps in clones, so a snapshot stays consistent
// for as long as the caller holds it.
func (d *DBSketches) Snapshot() []*Sketch {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.sketches
}

// Stats derives the estimator inputs for every relation from the current
// snapshot.
func (d *DBSketches) Stats() []Stats {
	sks := d.Snapshot()
	out := make([]Stats, len(sks))
	for i, s := range sks {
		out[i] = s.Stats()
	}
	return out
}

// Apply folds one mutation into relation rel's sketch: deletes then
// inserts, blind and clamped, with an exact rebuild from current when the
// accumulated drift crosses the threshold. It returns the delta tuples
// applied and whether a rebuild happened. Apply does NOT bump the
// version; the caller bumps once per batch (Bump) after all mutations.
func (d *DBSketches) Apply(rel int, inserts, deletes []relation.Tuple, current *relation.Relation) (delta int64, rebuilt bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if rel < 0 || rel >= len(d.sketches) {
		return 0, false
	}
	next := d.sketches[rel].clone()
	delta = next.apply(inserts, deletes)
	d.driftTotal[rel] += delta
	if next.needsRebuild() && current != nil {
		next = BuildSketch(current)
		d.rebuilds++
		rebuilt = true
	}
	// Swap a fresh slice so concurrent Snapshot holders keep their view.
	sks := append([]*Sketch(nil), d.sketches...)
	sks[rel] = next
	d.sketches = sks
	return delta, rebuilt
}

// DriftTotals returns the cumulative per-relation delta tuples applied
// (monotone across rebuilds).
func (d *DBSketches) DriftTotals() []int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]int64(nil), d.driftTotal...)
}

// Rebuilds returns how many drift-triggered exact rebuilds have run.
func (d *DBSketches) Rebuilds() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rebuilds
}

// Observe records one executed plan's actual §2.3 cost against its
// estimate, returning the q-error max(est/act, act/est) and folding the
// ratio into the fingerprint's correction EWMA so served traffic tightens
// future estimates.
func (d *DBSketches) Observe(fingerprint string, estimated, actual int64) float64 {
	if estimated <= 0 || actual <= 0 {
		return 0
	}
	ratio := float64(actual) / float64(estimated)
	d.mu.Lock()
	if prev, ok := d.feedback[fingerprint]; ok {
		d.feedback[fingerprint] = (1-feedbackAlpha)*prev + feedbackAlpha*ratio
	} else {
		d.feedback[fingerprint] = ratio
	}
	d.mu.Unlock()
	if ratio < 1 {
		return 1 / ratio
	}
	return ratio
}

// Correction returns the multiplicative correction learned for the
// fingerprint (1 when nothing has been observed yet). Estimates of
// generated tuples are scaled by it, so a scheme whose plans keep
// producing more than estimated drifts the chooser toward the
// conservative routes.
func (d *DBSketches) Correction(fingerprint string) float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if c, ok := d.feedback[fingerprint]; ok && c > 0 {
		return c
	}
	return 1
}
