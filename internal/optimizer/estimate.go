package optimizer

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
)

// Stats holds the per-relation statistics the estimator uses: cardinality
// and per-attribute distinct-value counts.
type Stats struct {
	// Card is the relation's cardinality.
	Card int64
	// Distinct maps each attribute to its number of distinct values.
	Distinct map[string]int64
}

// CollectStats scans a relation once and returns its statistics.
func CollectStats(r *relation.Relation) Stats {
	s := Stats{Card: int64(r.Len()), Distinct: make(map[string]int64, r.Schema().Len())}
	for col, attr := range r.Schema().Attrs() {
		seen := make(map[relation.Value]struct{}, r.Len())
		for _, t := range r.Rows() {
			seen[t[col]] = struct{}{}
		}
		s.Distinct[attr] = int64(len(seen))
	}
	return s
}

// Estimator predicts join cardinalities under the classic independence and
// uniformity assumptions (System R): |L ⋈ R| ≈ |L|·|R| / Π_a max(dL(a),
// dR(a)) over the shared attributes a, with result distinct counts
// min(dL, dR) capped by the estimated cardinality.
type Estimator struct {
	base []Stats
}

// NewEstimator collects statistics from every relation of the database.
func NewEstimator(db *relation.Database) *Estimator {
	e := &Estimator{base: make([]Stats, db.Len())}
	for i := 0; i < db.Len(); i++ {
		e.base[i] = CollectStats(db.Relation(i))
	}
	return e
}

// joinStats combines two operand statistics into the join's.
func joinStats(l, r Stats) Stats {
	card := satMul(l.Card, r.Card)
	out := Stats{Distinct: make(map[string]int64, len(l.Distinct)+len(r.Distinct))}
	for a, dl := range l.Distinct {
		if dr, shared := r.Distinct[a]; shared {
			div := dl
			if dr > div {
				div = dr
			}
			if div > 0 {
				card = card / div
			}
			if dl < dr {
				out.Distinct[a] = dl
			} else {
				out.Distinct[a] = dr
			}
		} else {
			out.Distinct[a] = dl
		}
	}
	for a, dr := range r.Distinct {
		if _, shared := l.Distinct[a]; !shared {
			out.Distinct[a] = dr
		}
	}
	if card < 1 {
		card = 1
	}
	out.Card = card
	for a, d := range out.Distinct {
		if d > card {
			out.Distinct[a] = card
		}
	}
	return out
}

// EstimateTree returns the estimated cost of a tree: estimated cardinalities
// summed exactly like the paper's true-cost model.
func (e *Estimator) EstimateTree(t *jointree.Tree) (cost int64, stats Stats) {
	if t.IsLeaf() {
		s := e.base[t.Leaf]
		return s.Card, s
	}
	lc, ls := e.EstimateTree(t.Left)
	rc, rs := e.EstimateTree(t.Right)
	js := joinStats(ls, rs)
	return satAdd(satAdd(lc, rc), js.Card), js
}

// EstimatedOptimal runs a System-R-style dynamic program over estimated
// cardinalities and returns the tree it believes cheapest, together with its
// estimated cost. Restricting to SpaceCPF or SpaceLinearCPF applies the
// avoid-Cartesian-products heuristic inside the estimator's search, exactly
// as the optimizers the paper cites do.
func EstimatedOptimal(db *relation.Database, space Space) (Plan, error) {
	return EstimatedOptimalStats(hypergraph.OfScheme(db), NewEstimator(db).base, space)
}

// EstimatedOptimalStats is EstimatedOptimal over pre-collected statistics —
// the form the hybrid chooser uses, where the stats come from incrementally
// maintained sketches rather than a fresh scan. base[i] must describe the
// relation behind edge i of h.
func EstimatedOptimalStats(h *hypergraph.Hypergraph, base []Stats, space Space) (Plan, error) {
	n := h.Len()
	if n > MaxExactRelations {
		return Plan{}, fmt.Errorf("optimizer: %d relations exceeds the exact-search limit %d", n, MaxExactRelations)
	}
	if len(base) != n {
		return Plan{}, fmt.Errorf("optimizer: %d stats for %d relations", len(base), n)
	}
	e := &Estimator{base: base}
	full := h.Full()

	type cell struct {
		cost  int64
		stats Stats
		left  hypergraph.Mask
		right hypergraph.Mask
		last  int
	}
	best := make(map[hypergraph.Mask]cell, 1<<uint(n))
	linear := space == SpaceLinear || space == SpaceLinearCPF
	cpf := space == SpaceCPF || space == SpaceLinearCPF

	for mask := hypergraph.Mask(1); mask <= full; mask++ {
		if mask.Count() == 1 {
			i := mask.Indexes()[0]
			best[mask] = cell{cost: e.base[i].Card, stats: e.base[i], last: -1}
			continue
		}
		cur := cell{cost: Infinite, last: -1}
		consider := func(l, r hypergraph.Mask, last int) {
			lc, lok := best[l]
			rc, rok := best[r]
			if !lok || !rok {
				return
			}
			if cpf && !h.Overlapping(l, r) {
				return
			}
			js := joinStats(lc.stats, rc.stats)
			total := satAdd(satAdd(lc.cost, rc.cost), js.Card)
			if total < cur.cost {
				cur = cell{cost: total, stats: js, left: l, right: r, last: last}
			}
		}
		if linear {
			for _, i := range mask.Indexes() {
				consider(mask.Without(i), hypergraph.MaskOf(i), i)
			}
		} else {
			for l := (mask - 1) & mask; l != 0; l = (l - 1) & mask {
				r := mask &^ l
				if l < r {
					continue
				}
				consider(l, r, 0)
			}
		}
		if cur.cost < Infinite {
			best[mask] = cur
		}
	}

	root, ok := best[full]
	if !ok {
		return Plan{}, fmt.Errorf("optimizer: no estimated plan in space %s", space)
	}
	var build func(mask hypergraph.Mask) *jointree.Tree
	build = func(mask hypergraph.Mask) *jointree.Tree {
		c := best[mask]
		if mask.Count() == 1 {
			return jointree.NewLeaf(mask.Indexes()[0])
		}
		return jointree.NewJoin(build(c.left), build(c.right))
	}
	return Plan{Tree: build(full), Cost: root.cost}, nil
}
