package optimizer_test

import (
	"fmt"
	"log"

	"repro/internal/optimizer"
	"repro/internal/workload"
)

// ExampleOptimal reproduces the Example 3 cost separation at the paper's
// k = 1 scale using the family's closed-form sizes — no data materialized.
func ExampleOptimal() {
	spec, err := workload.Example3(10)
	if err != nil {
		log.Fatal(err)
	}
	sizer, err := spec.AnalyticSizer()
	if err != nil {
		log.Fatal(err)
	}
	opt, err := optimizer.Optimal(sizer, optimizer.SpaceAll)
	if err != nil {
		log.Fatal(err)
	}
	cpf, err := optimizer.Optimal(sizer, optimizer.SpaceCPF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal:     ", opt.Cost)
	fmt.Println("cheapest CPF:", cpf.Cost)
	fmt.Println("optimal is CPF:", opt.Tree.IsCPF(sizer.Hypergraph()))
	// Output:
	// optimal:      22427
	// cheapest CPF: 26717
	// optimal is CPF: false
}

// ExampleOptimalCPFccp shows the DPccp-driven CPF optimizer agreeing with
// the subset-scanning formulation.
func ExampleOptimalCPFccp() {
	spec, err := workload.Example3(10)
	if err != nil {
		log.Fatal(err)
	}
	sizer, err := spec.AnalyticSizer()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := optimizer.OptimalCPFccp(sizer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Cost)
	// Output:
	// 26717
}
