package optimizer

import (
	"math"
	"sort"

	"repro/internal/jointree"
	"repro/internal/relation"
)

// HistogramEstimator refines the independence Estimator with equi-depth
// histograms on every base-relation attribute. Joins whose operands are
// base relations (or whose shared attributes' histograms are still valid —
// i.e. the attribute came through untouched from a single base relation)
// estimate each shared attribute's selectivity from the aligned histograms
// instead of distinct counts; deeper combinations fall back to the
// independence rule.
type HistogramEstimator struct {
	base  []Stats
	hists []map[string]*Histogram
}

// NewHistogramEstimator scans the database once per attribute, building
// histograms with the given bucket count (≤ 0 means 32).
func NewHistogramEstimator(db *relation.Database, buckets int) (*HistogramEstimator, error) {
	if buckets <= 0 {
		buckets = 32
	}
	e := &HistogramEstimator{
		base:  make([]Stats, db.Len()),
		hists: make([]map[string]*Histogram, db.Len()),
	}
	for i := 0; i < db.Len(); i++ {
		rel := db.Relation(i)
		e.base[i] = CollectStats(rel)
		e.hists[i] = make(map[string]*Histogram, rel.Schema().Len())
		for _, a := range rel.Schema().Attrs() {
			h, err := BuildHistogram(rel, a, buckets)
			if err != nil {
				return nil, err
			}
			e.hists[i][a] = h
		}
	}
	return e, nil
}

// NewHistogramEstimatorFromSketches derives a HistogramEstimator from
// maintained sketches without touching the relations: both the Stats and
// the equi-depth histograms come straight out of the sketches' value
// counts. sks[i] must describe relation i in database order.
func NewHistogramEstimatorFromSketches(sks []*Sketch, buckets int) *HistogramEstimator {
	if buckets <= 0 {
		buckets = 32
	}
	e := &HistogramEstimator{
		base:  make([]Stats, len(sks)),
		hists: make([]map[string]*Histogram, len(sks)),
	}
	for i, s := range sks {
		e.base[i] = s.Stats()
		e.hists[i] = make(map[string]*Histogram, len(s.Attrs()))
		for _, a := range s.Attrs() {
			e.hists[i][a] = s.Histogram(a, buckets)
		}
	}
	return e
}

// nodeEstimate carries the estimator's per-node state: cardinality,
// distinct counts, and — for attributes that still reflect a single base
// relation — the histogram to align against.
type nodeEstimate struct {
	stats Stats
	hists map[string]*Histogram
}

// EstimateTree returns the estimated cost of the tree under the paper's
// cost model, with histogram-driven base-join selectivities.
func (e *HistogramEstimator) EstimateTree(t *jointree.Tree) (int64, Stats) {
	cost, node := e.estimate(t)
	return cost, node.stats
}

func (e *HistogramEstimator) estimate(t *jointree.Tree) (int64, nodeEstimate) {
	if t.IsLeaf() {
		return e.base[t.Leaf].Card, nodeEstimate{stats: e.base[t.Leaf], hists: e.hists[t.Leaf]}
	}
	lc, l := e.estimate(t.Left)
	rc, r := e.estimate(t.Right)

	// Shared attributes, sorted for determinism.
	var shared []string
	for a := range l.stats.Distinct {
		if _, ok := r.stats.Distinct[a]; ok {
			shared = append(shared, a)
		}
	}
	sort.Strings(shared)

	card := float64(l.stats.Card) * float64(r.stats.Card)
	for _, a := range shared {
		var sel float64
		lh, lok := l.hists[a]
		rh, rok := r.hists[a]
		if lok && rok && lh.TotalRows() > 0 && rh.TotalRows() > 0 {
			matches := float64(EstimateEquiJoin(lh, rh))
			sel = matches / (float64(lh.TotalRows()) * float64(rh.TotalRows()))
		} else {
			d := l.stats.Distinct[a]
			if r.stats.Distinct[a] > d {
				d = r.stats.Distinct[a]
			}
			if d > 0 {
				sel = 1 / float64(d)
			} else {
				sel = 1
			}
		}
		card *= sel
	}
	if card < 1 {
		card = 1
	}
	if card > float64(Infinite) {
		card = float64(Infinite)
	}

	// Combine stats like the independence estimator; histograms survive for
	// attributes present in exactly one operand (their distribution is
	// untouched by the join under the usual containment assumption).
	out := nodeEstimate{
		stats: Stats{Card: int64(card), Distinct: make(map[string]int64, len(l.stats.Distinct)+len(r.stats.Distinct))},
		hists: make(map[string]*Histogram, len(l.hists)+len(r.hists)),
	}
	merge := func(side nodeEstimate, other nodeEstimate) {
		for a, d := range side.stats.Distinct {
			if od, sharedAttr := other.stats.Distinct[a]; sharedAttr {
				m := d
				if od < m {
					m = od
				}
				out.stats.Distinct[a] = m
			} else {
				out.stats.Distinct[a] = d
				if h, ok := side.hists[a]; ok {
					out.hists[a] = h
				}
			}
		}
	}
	merge(l, r)
	merge(r, l)
	for a, d := range out.stats.Distinct {
		if d > out.stats.Card {
			out.stats.Distinct[a] = out.stats.Card
		}
	}
	return satAdd(satAdd(lc, rc), out.stats.Card), out
}

// RankByEstimate returns the tree with the smallest estimated cost under
// est, together with that estimate. It is how an estimator drives plan
// choice without exact costing.
func RankByEstimate(est interface {
	EstimateTree(*jointree.Tree) (int64, Stats)
}, trees []*jointree.Tree) (*jointree.Tree, int64) {
	var best *jointree.Tree
	bestCost := int64(math.MaxInt64)
	for _, tr := range trees {
		c, _ := est.EstimateTree(tr)
		if c < bestCost {
			bestCost = c
			best = tr
		}
	}
	return best, bestCost
}
