package optimizer

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/workload"
)

func TestTopKCPFAgainstEnumeration(t *testing.T) {
	spec, err := workload.Example3(6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(db, 0)
	h := cat.Hypergraph()

	// Brute force: cost every CPF tree, dedupe mirrored operand orders,
	// sort.
	trees, err := jointree.AllCPFTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int64{}
	for _, tr := range trees {
		key := tr.CanonUnordered()
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = int64(tr.Cost(db))
	}
	var want []int64
	for _, c := range seen {
		want = append(want, c)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	const k = 7
	plans, err := TopKCPF(cat, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != k {
		t.Fatalf("got %d plans, want %d", len(plans), k)
	}
	for i, p := range plans {
		if p.Cost != want[i] {
			t.Errorf("rank %d: cost %d, enumeration says %d", i+1, p.Cost, want[i])
		}
		if real := int64(p.Tree.Cost(db)); real != p.Cost {
			t.Errorf("rank %d: claimed %d, tree costs %d", i+1, p.Cost, real)
		}
		if !p.Tree.IsCPF(h) {
			t.Errorf("rank %d: not CPF", i+1)
		}
		if i > 0 && p.Cost < plans[i-1].Cost {
			t.Error("plans not sorted")
		}
	}
	// Distinctness up to operand order.
	keys := map[string]bool{}
	for _, p := range plans {
		k := p.Tree.CanonUnordered()
		if keys[k] {
			t.Errorf("duplicate plan %s", k)
		}
		keys[k] = true
	}
}

func TestTopKCPFRankOneMatchesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 15; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(4), Attrs: 5, MaxArity: 3, Connected: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(10), 3)
		if err != nil {
			t.Fatal(err)
		}
		cat := NewCatalog(db, 0)
		plans, err := TopKCPF(cat, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Optimal(cat, SpaceCPF)
		if err != nil {
			t.Fatal(err)
		}
		if plans[0].Cost != want.Cost {
			t.Fatalf("trial %d: TopK(1) = %d, Optimal = %d", trial, plans[0].Cost, want.Cost)
		}
	}
}

func TestTopKCPFValidation(t *testing.T) {
	spec, _ := workload.Example3(6)
	sizer, err := spec.AnalyticSizer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TopKCPF(sizer, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// Asking for more plans than exist returns all of them.
	plans, err := TopKCPF(sizer, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	// 4-cycle: 80 ordered CPF trees, with up to 2³ operand-order mirrors
	// each → exactly 10 distinct plans (4 triples × 2 shapes + 2 opposite
	// pair-pairings).
	if len(plans) != 10 {
		t.Errorf("plans = %d, want 10 distinct CPF plans over the 4-cycle", len(plans))
	}
	_ = hypergraph.Mask(0)
}
