package optimizer

import (
	"fmt"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
)

// TopKCPF returns up to k cheapest Cartesian-product-free join expressions
// over the database's scheme, cheapest first, by a k-best dynamic program
// over connected subsets. Near-optimal alternatives matter in practice —
// a plan one percent worse may pipeline better or reuse an existing index —
// and they quantify how flat the optimum's neighbourhood is.
//
// The k plans are structurally distinct trees (join operand order is
// canonicalized, so mirrored plans count once). k must be ≥ 1.
func TopKCPF(c Sizer, k int) ([]Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("optimizer: k must be ≥ 1")
	}
	h := c.Hypergraph()
	n := h.Len()
	if n > MaxExactRelations {
		return nil, fmt.Errorf("optimizer: %d relations exceeds the exact-search limit %d", n, MaxExactRelations)
	}

	type cell struct {
		cost int64
		tree *jointree.Tree
	}
	best := make(map[hypergraph.Mask][]cell, 1<<uint(n))

	full := h.Full()
	for mask := hypergraph.Mask(1); mask <= full; mask++ {
		if mask.Count() == 1 {
			i := mask.Indexes()[0]
			best[mask] = []cell{{cost: leafSize(c, i), tree: jointree.NewLeaf(i)}}
			continue
		}
		if !h.Connected(mask) {
			continue
		}
		size, err := c.Size(mask)
		if err != nil {
			return nil, err
		}
		var cands []cell
		seen := map[string]bool{}
		for l := (mask - 1) & mask; l != 0; l = (l - 1) & mask {
			r := mask &^ l
			if l < r {
				continue // each unordered partition once
			}
			ls, lok := best[l]
			rs, rok := best[r]
			if !lok || !rok {
				continue
			}
			if !h.Overlapping(l, r) {
				continue
			}
			for _, lc := range ls {
				for _, rc := range rs {
					tree := jointree.NewJoin(lc.tree, rc.tree)
					key := tree.CanonUnordered()
					if seen[key] {
						continue
					}
					seen[key] = true
					cands = append(cands, cell{
						cost: satAdd(satAdd(lc.cost, rc.cost), size),
						tree: tree,
					})
				}
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].cost < cands[j].cost })
		if len(cands) > k {
			cands = cands[:k]
		}
		best[mask] = cands
	}

	roots, ok := best[full]
	if !ok || len(roots) == 0 {
		return nil, fmt.Errorf("optimizer: no plan in space %s (disconnected scheme?)", SpaceCPF)
	}
	out := make([]Plan, len(roots))
	for i, c := range roots {
		out[i] = Plan{Tree: c.tree, Cost: c.cost}
	}
	return out, nil
}
