package optimizer

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Histogram is an equi-depth histogram over one attribute: bucket
// boundaries chosen so each bucket holds roughly the same number of rows,
// with exact per-bucket row and distinct counts. Histograms refine the
// plain distinct-count estimator on skewed data, where the uniformity
// assumption misestimates badly.
type Histogram struct {
	// Bounds[i] is the inclusive upper bound of bucket i; buckets cover
	// (-∞, Bounds[0]], (Bounds[0], Bounds[1]], …
	Bounds []relation.Value
	// Rows[i] is the number of rows in bucket i.
	Rows []int64
	// Distinct[i] is the number of distinct values in bucket i.
	Distinct []int64
}

// BuildHistogram scans the relation's column attr and builds an equi-depth
// histogram with at most buckets buckets. It returns an error if the
// attribute is missing.
func BuildHistogram(r *relation.Relation, attr string, buckets int) (*Histogram, error) {
	pos, ok := r.Schema().Position(attr)
	if !ok {
		return nil, fmt.Errorf("optimizer: attribute %q not in schema %s", attr, r.Schema())
	}
	if buckets < 1 {
		return nil, fmt.Errorf("optimizer: need at least one bucket")
	}
	values := make([]relation.Value, r.Len())
	for i, row := range r.Rows() {
		values[i] = row[pos]
	}
	sort.Slice(values, func(i, j int) bool { return values[i].Compare(values[j]) < 0 })

	h := &Histogram{}
	n := len(values)
	if n == 0 {
		return h, nil
	}
	per := (n + buckets - 1) / buckets
	for start := 0; start < n; {
		end := start + per
		if end > n {
			end = n
		}
		// Extend the bucket so equal values never straddle a boundary.
		for end < n && values[end].Equal(values[end-1]) {
			end++
		}
		rows := int64(end - start)
		distinct := int64(1)
		for i := start + 1; i < end; i++ {
			if !values[i].Equal(values[i-1]) {
				distinct++
			}
		}
		h.Bounds = append(h.Bounds, values[end-1])
		h.Rows = append(h.Rows, rows)
		h.Distinct = append(h.Distinct, distinct)
		start = end
	}
	return h, nil
}

// TotalRows returns the number of rows covered.
func (h *Histogram) TotalRows() int64 {
	var n int64
	for _, r := range h.Rows {
		n += r
	}
	return n
}

// EstimateEquiJoin estimates |σ(a.x = b.x)| — the number of matching pairs
// on the histogrammed attribute — by aligning the two histograms' bucket
// ranges and, within each overlap, assuming per-distinct-value uniformity.
// For single-attribute joins this is the estimated join size.
func EstimateEquiJoin(a, b *Histogram) int64 {
	if len(a.Bounds) == 0 || len(b.Bounds) == 0 {
		return 0
	}
	total := int64(0)
	i, j := 0, 0
	aLow, bLow := minimal(), minimal()
	for i < len(a.Bounds) && j < len(b.Bounds) {
		// Overlap of (aLow, a.Bounds[i]] with (bLow, b.Bounds[j]].
		low := aLow
		if bLow.Compare(low) > 0 {
			low = bLow
		}
		var high relation.Value
		advanceA := false
		if a.Bounds[i].Compare(b.Bounds[j]) <= 0 {
			high = a.Bounds[i]
			advanceA = true
		} else {
			high = b.Bounds[j]
		}
		if high.Compare(low) > 0 || (i == 0 && j == 0 && aLow.Equal(bLow)) {
			fa := fraction(aLow, a.Bounds[i], low, high)
			fb := fraction(bLow, b.Bounds[j], low, high)
			rowsA := float64(a.Rows[i]) * fa
			rowsB := float64(b.Rows[j]) * fb
			dA := float64(a.Distinct[i]) * fa
			dB := float64(b.Distinct[j]) * fb
			d := dA
			if dB > d {
				d = dB
			}
			if d >= 0.5 {
				total += int64(rowsA * rowsB / d)
			}
		}
		if advanceA {
			aLow = a.Bounds[i]
			i++
		} else {
			bLow = b.Bounds[j]
			j++
		}
	}
	return total
}

// fraction approximates what portion of the bucket (low0, high0] the
// sub-range (low, high] covers, using integer distance where possible and
// falling back to 1 for non-numeric values.
func fraction(low0, high0, low, high relation.Value) float64 {
	if low0.Kind() != relation.KindInt || high0.Kind() != relation.KindInt {
		return 1
	}
	span := high0.AsInt() - low0.AsInt()
	if span <= 0 {
		return 1
	}
	sub := high.AsInt() - low.AsInt()
	if sub < 0 {
		sub = 0
	}
	f := float64(sub) / float64(span)
	if f > 1 {
		return 1
	}
	return f
}

// minimal returns a value ordered before every integer and string value.
func minimal() relation.Value {
	return relation.Int(-1 << 62)
}
