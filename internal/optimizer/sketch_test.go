package optimizer

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/relation"
)

func randomRelation(t *testing.T, rng *rand.Rand, attrs []string, size, domain int) *relation.Relation {
	t.Helper()
	r := relation.New(relation.MustSchema(attrs...))
	for i := 0; i < size; i++ {
		tup := make(relation.Tuple, len(attrs))
		for j := range tup {
			tup[j] = relation.Int(int64(rng.Intn(domain)))
		}
		_ = r.Insert(tup)
	}
	return r
}

// TestBuildSketchMatchesCollectStats: the sketch's derived Stats must equal
// a fresh scan's.
func TestBuildSketchMatchesCollectStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r := randomRelation(t, rng, []string{"A", "B"}, 1+rng.Intn(200), 1+rng.Intn(20))
		s := BuildSketch(r)
		want := CollectStats(r)
		got := s.Stats()
		if got.Card != want.Card {
			t.Fatalf("trial %d: Card %d, want %d", trial, got.Card, want.Card)
		}
		for a, d := range want.Distinct {
			if got.Distinct[a] != d {
				t.Fatalf("trial %d: Distinct[%s] %d, want %d", trial, a, got.Distinct[a], d)
			}
		}
	}
}

// TestSketchHistogramMatchesBuildHistogram: the histogram derived from
// value counts must equal the one built from a relation scan — same greedy
// value-boundary bucketing.
func TestSketchHistogramMatchesBuildHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		r := randomRelation(t, rng, []string{"A", "B"}, 1+rng.Intn(300), 1+rng.Intn(30))
		s := BuildSketch(r)
		buckets := 1 + rng.Intn(12)
		for _, a := range []string{"A", "B"} {
			want, err := BuildHistogram(r, a, buckets)
			if err != nil {
				t.Fatal(err)
			}
			got := s.Histogram(a, buckets)
			if len(got.Bounds) != len(want.Bounds) {
				t.Fatalf("trial %d attr %s: %d buckets, want %d", trial, a, len(got.Bounds), len(want.Bounds))
			}
			for i := range want.Bounds {
				if !got.Bounds[i].Equal(want.Bounds[i]) || got.Rows[i] != want.Rows[i] || got.Distinct[i] != want.Distinct[i] {
					t.Fatalf("trial %d attr %s bucket %d: got (%v,%d,%d), want (%v,%d,%d)",
						trial, a, i, got.Bounds[i], got.Rows[i], got.Distinct[i],
						want.Bounds[i], want.Rows[i], want.Distinct[i])
				}
			}
		}
	}
}

// TestSketchApplyTracksMutations: set-respecting deltas keep the sketch
// exactly equal to a fresh build of the mutated relation; blind deletes of
// absent tuples clamp instead of going negative.
func TestSketchApplyTracksMutations(t *testing.T) {
	r := relation.New(relation.MustSchema("A", "B"))
	r.MustInsert(relation.Ints(1, 10))
	r.MustInsert(relation.Ints(2, 10))
	r.MustInsert(relation.Ints(3, 11))
	s := BuildSketch(r)

	s.apply([]relation.Tuple{relation.Ints(4, 12)}, []relation.Tuple{relation.Ints(1, 10)})
	r2 := relation.New(relation.MustSchema("A", "B"))
	r2.MustInsert(relation.Ints(2, 10))
	r2.MustInsert(relation.Ints(3, 11))
	r2.MustInsert(relation.Ints(4, 12))
	want := BuildSketch(r2)
	if s.Rows() != want.Rows() {
		t.Fatalf("rows %d, want %d", s.Rows(), want.Rows())
	}
	for _, a := range []string{"A", "B"} {
		if s.Distinct(a) != want.Distinct(a) {
			t.Fatalf("Distinct[%s] = %d, want %d", a, s.Distinct(a), want.Distinct(a))
		}
		if s.MaxDegree(a) != want.MaxDegree(a) {
			t.Fatalf("MaxDegree[%s] = %d, want %d", a, s.MaxDegree(a), want.MaxDegree(a))
		}
	}
	if s.Drift() != 2 {
		t.Fatalf("drift = %d, want 2", s.Drift())
	}

	// Blind deletes of absent tuples clamp at zero.
	for i := 0; i < 10; i++ {
		s.apply(nil, []relation.Tuple{relation.Ints(99, 99)})
	}
	if s.Rows() < 0 {
		t.Fatalf("rows went negative: %d", s.Rows())
	}
}

// TestDBSketchesDriftTriggersRebuild: once blind deltas cross the
// threshold, Apply rebuilds exactly from the live relation and the drift
// resets while the monotone totals keep counting.
func TestDBSketchesDriftTriggersRebuild(t *testing.T) {
	r := relation.New(relation.MustSchema("A", "B"))
	for i := 0; i < 10; i++ {
		r.MustInsert(relation.Ints(int64(i), int64(i%3)))
	}
	db, err := relation.NewDatabase(r)
	if err != nil {
		t.Fatal(err)
	}
	d := CollectSketches(db)
	live := r.Clone()
	rebuilt := false
	for i := 0; i < 100 && !rebuilt; i++ {
		tup := relation.Ints(int64(100+i), int64(i%5))
		live.MustInsert(tup)
		_, rebuilt = d.Apply(0, []relation.Tuple{tup}, nil, live)
	}
	if !rebuilt {
		t.Fatal("100 single-tuple deltas never triggered a rebuild")
	}
	if d.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1", d.Rebuilds())
	}
	sk := d.Snapshot()[0]
	if sk.Drift() != 0 {
		t.Fatalf("post-rebuild drift = %d, want 0", sk.Drift())
	}
	if sk.Rows() != int64(live.Len()) {
		t.Fatalf("post-rebuild rows = %d, live relation has %d", sk.Rows(), live.Len())
	}
	if tot := d.DriftTotals()[0]; tot < 64 {
		t.Fatalf("DriftTotals = %d, want the monotone count of applied deltas", tot)
	}
}

// TestDBSketchesVersionAndFeedback: the version is monotone under Bump and
// SetVersion, and Observe folds ratios into a correction EWMA.
func TestDBSketchesVersionAndFeedback(t *testing.T) {
	r := relation.New(relation.MustSchema("A"))
	r.MustInsert(relation.Ints(1))
	db, err := relation.NewDatabase(r)
	if err != nil {
		t.Fatal(err)
	}
	d := CollectSketches(db)
	if d.Version() != 0 {
		t.Fatalf("fresh version = %d", d.Version())
	}
	if v := d.Bump(); v != 1 {
		t.Fatalf("Bump = %d, want 1", v)
	}
	d.SetVersion(10)
	if d.Version() != 10 {
		t.Fatalf("SetVersion(10) → %d", d.Version())
	}
	d.SetVersion(5) // never backwards
	if d.Version() != 10 {
		t.Fatalf("SetVersion moved backwards to %d", d.Version())
	}

	if c := d.Correction("fp"); c != 1 {
		t.Fatalf("correction before feedback = %v, want 1", c)
	}
	q := d.Observe("fp", 100, 400)
	if q != 4 {
		t.Fatalf("q-error = %v, want 4", q)
	}
	if c := d.Correction("fp"); c != 4 {
		t.Fatalf("first correction = %v, want the raw ratio 4", c)
	}
	d.Observe("fp", 100, 100)
	// EWMA: 0.7*4 + 0.3*1 = 3.1
	if c := d.Correction("fp"); c < 3.09 || c > 3.11 {
		t.Fatalf("EWMA correction = %v, want ≈3.1", c)
	}
	if q := d.Observe("fp", 400, 100); q != 4 {
		t.Fatalf("under-run q-error = %v, want 4 (symmetric)", q)
	}
}

// TestDBSketchesConcurrent hammers Apply against Snapshot/Stats readers —
// the copy-on-write discipline under the race detector.
func TestDBSketchesConcurrent(t *testing.T) {
	r := relation.New(relation.MustSchema("A", "B"))
	for i := 0; i < 50; i++ {
		r.MustInsert(relation.Ints(int64(i), int64(i%7)))
	}
	db, err := relation.NewDatabase(r)
	if err != nil {
		t.Fatal(err)
	}
	d := CollectSketches(db)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Apply(0, []relation.Tuple{relation.Ints(int64(1000*w+i), 1)}, nil, r)
				d.Bump()
				d.Observe("fp", 10, int64(10+i%5))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sks := d.Snapshot()
				for _, s := range sks {
					_ = s.Stats()
					_ = s.Skew()
					_ = s.Histogram("A", 8)
				}
				_ = d.Stats()
				_ = d.Version()
				_ = d.Correction("fp")
			}
		}()
	}
	wg.Wait()
}
