package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
	"repro/internal/workload"
)

// cycleDB returns a uniform 4-cycle database (link domain m, payload p per
// relation) and its spec.
func cycleDB(t *testing.T, m, p int64) (*relation.Database, workload.CycleSpec) {
	t.Helper()
	spec := workload.UniformCycle(4, m, p)
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatalf("CycleDatabase: %v", err)
	}
	return db, spec
}

// example3DB returns the paper-shaped Example 3 instance at scale q.
func example3DB(t *testing.T, q int64) (*relation.Database, workload.CycleSpec) {
	t.Helper()
	spec, err := workload.Example3(q)
	if err != nil {
		t.Fatalf("Example3: %v", err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatalf("CycleDatabase: %v", err)
	}
	return db, spec
}

func TestCatalogSizes(t *testing.T) {
	db, _ := cycleDB(t, 3, 2)
	c := NewCatalog(db, 0)
	// Singleton sizes are relation sizes.
	for i := 0; i < 4; i++ {
		got, err := c.Size(hypergraph.MaskOf(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(db.Relation(i).Len()) {
			t.Errorf("Size({%d}) = %d, want %d", i, got, db.Relation(i).Len())
		}
	}
	// Full size is |⋈D| = 1.
	full, err := c.Size(c.Hypergraph().Full())
	if err != nil {
		t.Fatal(err)
	}
	if full != 1 {
		t.Errorf("Size(full) = %d, want 1", full)
	}
	// Disconnected pair: product of sizes, no materialization of the pair.
	opp, err := c.Size(hypergraph.MaskOf(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(db.Relation(0).Len()) * int64(db.Relation(2).Len())
	if opp != want {
		t.Errorf("Size(opposite pair) = %d, want %d", opp, want)
	}
	// Connected pair: actual join size.
	adj, err := c.Size(hypergraph.MaskOf(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	real := relation.Join(db.Relation(0), db.Relation(1))
	if adj != int64(real.Len()) {
		t.Errorf("Size(adjacent pair) = %d, want %d", adj, real.Len())
	}
}

func TestCatalogSizeMatchesEvaluationEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(4), Attrs: 4, MaxArity: 3, Connected: false,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(8), 3)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCatalog(db, 0)
		for mask := hypergraph.Mask(1); mask <= h.Full(); mask++ {
			got, err := c.Size(mask)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: join the restricted database directly.
			sub, err := db.Restrict(mask.Indexes())
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(sub.Join().Len()); got != want {
				t.Fatalf("trial %d: Size(%v) = %d, want %d on %s", trial, mask, got, want, h)
			}
		}
	}
}

func TestCatalogBudget(t *testing.T) {
	db, _ := cycleDB(t, 3, 20)
	c := NewCatalog(db, 10) // absurdly small budget
	_, err := c.Size(c.Hypergraph().Full())
	if err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestCatalogRejectsEmptyAndDisconnectedMaterialize(t *testing.T) {
	db, _ := cycleDB(t, 3, 2)
	c := NewCatalog(db, 0)
	if _, err := c.Size(0); err == nil {
		t.Error("Size(∅) accepted")
	}
	if _, err := c.Materialize(hypergraph.MaskOf(0, 2)); err == nil {
		t.Error("Materialize of disconnected subset accepted")
	}
}

// TestOptimalAgainstEnumeration cross-checks every exact DP against brute
// force enumeration of its space on the paper's 4-cycle.
func TestOptimalAgainstEnumeration(t *testing.T) {
	db, _ := cycleDB(t, 3, 2)
	c := NewCatalog(db, 0)
	h := c.Hypergraph()

	enumBest := func(trees []*jointree.Tree) int64 {
		best := int64(math.MaxInt64)
		for _, tr := range trees {
			if cost := int64(tr.Cost(db)); cost < best {
				best = cost
			}
		}
		return best
	}

	all, err := jointree.AllTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	cpf, err := jointree.AllCPFTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := jointree.AllLinearTrees(h, false)
	if err != nil {
		t.Fatal(err)
	}
	linCPF, err := jointree.AllLinearTrees(h, true)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		space Space
		trees []*jointree.Tree
	}{
		{SpaceAll, all},
		{SpaceCPF, cpf},
		{SpaceLinear, lin},
		{SpaceLinearCPF, linCPF},
	}
	for _, cse := range cases {
		plan, err := Optimal(c, cse.space)
		if err != nil {
			t.Fatalf("Optimal(%s): %v", cse.space, err)
		}
		want := enumBest(cse.trees)
		if plan.Cost != want {
			t.Errorf("Optimal(%s) = %d, enumeration says %d (tree %s)",
				cse.space, plan.Cost, want, plan.Tree.String(h))
		}
		// The returned tree's real cost must equal the claimed cost.
		if real := int64(plan.Tree.Cost(db)); real != plan.Cost {
			t.Errorf("Optimal(%s): claimed %d, tree actually costs %d", cse.space, plan.Cost, real)
		}
		// Space membership.
		switch cse.space {
		case SpaceCPF:
			if !plan.Tree.IsCPF(h) {
				t.Errorf("Optimal(CPF) returned non-CPF tree")
			}
		case SpaceLinear:
			if !plan.Tree.IsLinear() {
				t.Errorf("Optimal(linear) returned non-linear tree")
			}
		case SpaceLinearCPF:
			if !plan.Tree.IsLinear() || !plan.Tree.IsCPF(h) {
				t.Errorf("Optimal(linear-CPF) returned tree outside the space")
			}
		}
	}
}

// TestOptimalRandomizedAgainstEnumeration repeats the cross-check on random
// schemes and databases.
func TestOptimalRandomizedAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(3), Attrs: 4, MaxArity: 2, Connected: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(8), 3)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCatalog(db, 0)
		all, err := jointree.AllTrees(h)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(math.MaxInt64)
		for _, tr := range all {
			if cost := int64(tr.Cost(db)); cost < best {
				best = cost
			}
		}
		plan, err := Optimal(c, SpaceAll)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cost != best {
			t.Fatalf("trial %d: DP = %d, enumeration = %d on %s", trial, plan.Cost, best, h)
		}
	}
}

// TestExample3Separation is the quantitative heart of Example 3: on the
// paper-shaped cycle family the optimal plan is non-CPF, the cheapest CPF
// and linear plans are worse, and the gap grows with the scale q.
func TestExample3Separation(t *testing.T) {
	db, spec := example3DB(t, 10)
	c := NewCatalog(db, 0)
	h := c.Hypergraph()

	opt, err := Optimal(c, SpaceAll)
	if err != nil {
		t.Fatal(err)
	}
	cpf, err := Optimal(c, SpaceCPF)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Optimal(c, SpaceLinear)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Tree.IsCPF(h) {
		t.Errorf("optimal tree should be non-CPF, got %s", opt.Tree.String(h))
	}
	if cpf.Cost <= opt.Cost {
		t.Errorf("cheapest CPF (%d) should exceed optimal (%d)", cpf.Cost, opt.Cost)
	}
	if lin.Cost <= opt.Cost {
		t.Errorf("cheapest linear (%d) should exceed optimal (%d)", lin.Cost, opt.Cost)
	}
	// The gap grows with q: at 2q the CPF/optimal ratio must increase.
	db2, _ := example3DB(t, 16)
	c2 := NewCatalog(db2, 0)
	opt2, err := Optimal(c2, SpaceAll)
	if err != nil {
		t.Fatal(err)
	}
	cpf2, err := Optimal(c2, SpaceCPF)
	if err != nil {
		t.Fatal(err)
	}
	ratio1 := float64(cpf.Cost) / float64(opt.Cost)
	ratio2 := float64(cpf2.Cost) / float64(opt2.Cost)
	if ratio2 <= ratio1 {
		t.Errorf("CPF/optimal ratio should grow with q: %f then %f", ratio1, ratio2)
	}
	// The paper's opposite-pair expression is the optimal one.
	nonCPF, err := spec.NonCPFCycleExpression()
	if err != nil {
		t.Fatal(err)
	}
	nonCPFCost, err := CostOf(c, nonCPF)
	if err != nil {
		t.Fatal(err)
	}
	if nonCPFCost != opt.Cost {
		t.Errorf("the opposite-pair expression (%d) should be optimal (%d)", nonCPFCost, opt.Cost)
	}
	// Shape check: optimal ≈ inputs + |R1||R3| + |R2||R4| + 1 exactly.
	sz := spec.Sizes()
	wantOpt := int64(db.TotalTuples()) + sz[0]*sz[2] + sz[1]*sz[3] + 1
	if opt.Cost != wantOpt {
		t.Errorf("optimal cost = %d, want %d (inputs + opposite products + 1)", opt.Cost, wantOpt)
	}
}

func TestCostOfMatchesEval(t *testing.T) {
	db, _ := cycleDB(t, 3, 3)
	c := NewCatalog(db, 0)
	h := c.Hypergraph()
	trees, err := jointree.AllTrees(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees[:40] {
		got, err := CostOf(c, tr)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(tr.Cost(db)); got != want {
			t.Fatalf("CostOf(%s) = %d, want %d", tr.String(h), got, want)
		}
	}
}

func TestGreedy(t *testing.T) {
	db, _ := cycleDB(t, 3, 4)
	c := NewCatalog(db, 0)
	plan, err := Greedy(c, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Tree.Validate(c.Hypergraph()); err != nil {
		t.Fatal(err)
	}
	if real := int64(plan.Tree.Cost(db)); real != plan.Cost {
		t.Errorf("greedy cost %d, tree costs %d", plan.Cost, real)
	}
	// Greedy with products allowed finds the opposite-pair plan on the
	// cycle only if products are cheapest; at P=4, M=3 the adjacent join
	// (MP² + …) is smaller than the product (M²P²), so greedy joins
	// adjacent pairs first. Just require it to be no better than optimal.
	opt, err := Optimal(c, SpaceAll)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost < opt.Cost {
		t.Errorf("greedy (%d) beat the optimal DP (%d)", plan.Cost, opt.Cost)
	}
	cpfPlan, err := Greedy(c, true)
	if err != nil {
		t.Fatal(err)
	}
	if !cpfPlan.Tree.IsCPF(c.Hypergraph()) {
		t.Error("CPF greedy returned non-CPF tree")
	}
}

func TestGreedyCPFOnDisconnectedScheme(t *testing.T) {
	r1 := relation.New(relation.SchemaOfRunes("AB"))
	r1.MustInsert(relation.Ints(1, 2))
	r2 := relation.New(relation.SchemaOfRunes("CD"))
	r2.MustInsert(relation.Ints(3, 4))
	db := relation.MustDatabase(r1, r2)
	c := NewCatalog(db, 0)
	if _, err := Greedy(c, true); err == nil {
		t.Error("CPF greedy accepted a disconnected scheme")
	}
	if _, err := Greedy(c, false); err != nil {
		t.Errorf("non-CPF greedy should handle disconnected schemes: %v", err)
	}
}

func TestIterativeImprovementAndAnnealing(t *testing.T) {
	db, _ := cycleDB(t, 3, 4)
	c := NewCatalog(db, 0)
	rng := rand.New(rand.NewSource(41))
	linOpt, err := Optimal(c, SpaceLinear)
	if err != nil {
		t.Fatal(err)
	}
	ii, err := IterativeImprovement(c, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !ii.Tree.IsLinear() {
		t.Error("iterative improvement returned non-linear tree")
	}
	if ii.Cost < linOpt.Cost {
		t.Errorf("iterative improvement (%d) beat the linear DP (%d)", ii.Cost, linOpt.Cost)
	}
	sa, err := SimulatedAnnealing(c, rng, AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Tree.IsLinear() {
		t.Error("simulated annealing returned non-linear tree")
	}
	if sa.Cost < linOpt.Cost {
		t.Errorf("simulated annealing (%d) beat the linear DP (%d)", sa.Cost, linOpt.Cost)
	}
	// Both searches should find the linear optimum on this tiny instance.
	if ii.Cost != linOpt.Cost {
		t.Errorf("iterative improvement (%d) missed the linear optimum (%d) on a 4-relation instance", ii.Cost, linOpt.Cost)
	}
}

func TestEstimator(t *testing.T) {
	db, _ := cycleDB(t, 3, 4)
	e := NewEstimator(db)
	h := hypergraph.OfScheme(db)
	tr := jointree.MustParse(h, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA")
	cost, stats := e.EstimateTree(tr)
	if cost <= 0 || stats.Card <= 0 {
		t.Errorf("estimate = %d, card %d", cost, stats.Card)
	}
	// Leaf estimate is exact.
	leafCost, leafStats := e.EstimateTree(jointree.NewLeaf(0))
	if leafCost != int64(db.Relation(0).Len()) || leafStats.Card != leafCost {
		t.Errorf("leaf estimate = %d", leafCost)
	}
	// Distinct counts never exceed cardinality.
	for a, d := range stats.Distinct {
		if d > stats.Card {
			t.Errorf("distinct(%s) = %d > card %d", a, d, stats.Card)
		}
	}
}

func TestEstimatedOptimal(t *testing.T) {
	db, _ := cycleDB(t, 3, 4)
	h := hypergraph.OfScheme(db)
	for _, space := range []Space{SpaceAll, SpaceCPF, SpaceLinear, SpaceLinearCPF} {
		plan, err := EstimatedOptimal(db, space)
		if err != nil {
			t.Fatalf("EstimatedOptimal(%s): %v", space, err)
		}
		if err := plan.Tree.Validate(h); err != nil {
			t.Fatalf("EstimatedOptimal(%s) tree invalid: %v", space, err)
		}
		switch space {
		case SpaceCPF:
			if !plan.Tree.IsCPF(h) {
				t.Errorf("estimated CPF plan not CPF")
			}
		case SpaceLinear:
			if !plan.Tree.IsLinear() {
				t.Errorf("estimated linear plan not linear")
			}
		case SpaceLinearCPF:
			if !plan.Tree.IsLinear() || !plan.Tree.IsCPF(h) {
				t.Errorf("estimated linear-CPF plan outside space")
			}
		}
	}
}

func TestCollectStats(t *testing.T) {
	r := relation.New(relation.SchemaOfRunes("AB"))
	r.MustInsert(relation.Ints(1, 1))
	r.MustInsert(relation.Ints(1, 2))
	r.MustInsert(relation.Ints(2, 2))
	s := CollectStats(r)
	if s.Card != 3 || s.Distinct["A"] != 2 || s.Distinct["B"] != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if satAdd(Infinite, 1) != Infinite {
		t.Error("satAdd does not saturate")
	}
	if satMul(Infinite, 2) != Infinite {
		t.Error("satMul does not saturate")
	}
	if satMul(0, Infinite) != 0 {
		t.Error("satMul(0, ∞) should be 0")
	}
	if satAdd(2, 3) != 5 || satMul(2, 3) != 6 {
		t.Error("saturating arithmetic wrong on small values")
	}
	big := int64(1) << 40
	if satMul(big, big) != Infinite {
		t.Error("satMul should saturate on overflow")
	}
}

func TestSpaceString(t *testing.T) {
	if SpaceAll.String() != "all" || SpaceCPF.String() != "CPF" ||
		SpaceLinear.String() != "linear" || SpaceLinearCPF.String() != "linear-CPF" {
		t.Error("Space.String wrong")
	}
}

func TestOptimalSingleRelation(t *testing.T) {
	r := relation.New(relation.SchemaOfRunes("AB"))
	r.MustInsert(relation.Ints(1, 2))
	db := relation.MustDatabase(r)
	c := NewCatalog(db, 0)
	for _, space := range []Space{SpaceAll, SpaceCPF, SpaceLinear, SpaceLinearCPF} {
		plan, err := Optimal(c, space)
		if err != nil {
			t.Fatalf("Optimal(%s): %v", space, err)
		}
		if !plan.Tree.IsLeaf() || plan.Cost != 1 {
			t.Errorf("Optimal(%s) on single relation = %v cost %d", space, plan.Tree, plan.Cost)
		}
	}
}

func TestOptimalTooManyRelations(t *testing.T) {
	rels := make([]*relation.Relation, MaxExactRelations+1)
	for i := range rels {
		r := relation.New(relation.MustSchema("x"))
		r.MustInsert(relation.Ints(int64(i)))
		rels[i] = r
	}
	db := relation.MustDatabase(rels...)
	c := NewCatalog(db, 0)
	if _, err := Optimal(c, SpaceAll); err == nil {
		t.Error("oversized scheme accepted")
	}
}
