package optimizer

// AdjacencyImprove applies the Smith–Genesereth "adjacency restriction
// rule" the paper cites ([6]): starting from a given linear join order,
// repeatedly swap adjacent relations whenever the swap lowers the §2.3
// cost, until no adjacent swap helps. The result is a locally optimal
// linear order under adjacent transpositions — the deterministic core that
// Swami and Gupta's randomized searches wrap restarts around.
//
// It returns the improved plan; the input slice is not modified.
func AdjacencyImprove(c Sizer, order []int) (Plan, error) {
	cur := append([]int(nil), order...)
	cost, err := orderCost(c, cur)
	if err != nil {
		return Plan{}, err
	}
	improved := true
	for improved {
		improved = false
		for k := 0; k+1 < len(cur); k++ {
			cur[k], cur[k+1] = cur[k+1], cur[k]
			nc, err := orderCost(c, cur)
			if err != nil {
				return Plan{}, err
			}
			if nc < cost {
				cost = nc
				improved = true
			} else {
				cur[k], cur[k+1] = cur[k+1], cur[k]
			}
		}
	}
	return Plan{Tree: orderTree(cur), Cost: cost}, nil
}
