package optimizer

import (
	"fmt"
	"math/bits"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
)

// This file implements DPccp-style enumeration (Moerkotte & Neumann,
// "Analysis of Two Existing and One New Dynamic Programming Algorithm for
// the Generation of Optimal Bushy Join Trees without Cross Products",
// VLDB 2006) adapted to hypergraph connectivity: instead of scanning all
// 3^n subset partitions and filtering, it enumerates exactly the
// (connected subgraph, connected complement) pairs — the feasible CPF
// partitions — so the CPF dynamic program touches no infeasible pair.
//
// Connectivity here is edge-overlap connectivity on relation scheme
// occurrences, matching hypergraph.Connected.

// csgCmpPair is one feasible CPF partition: S1 and S2 are connected,
// disjoint, and share at least one attribute.
type csgCmpPair struct {
	s1, s2 hypergraph.Mask
}

// enumerateCsgCmpPairs yields every unordered csg-cmp pair of the
// hypergraph exactly once (with s1 containing the lower minimum index).
func enumerateCsgCmpPairs(h *hypergraph.Hypergraph, emit func(csgCmpPair)) {
	n := h.Len()
	// Enumerate connected subgraphs in the DPccp order: seed each node i,
	// forbidding nodes < i, and expand by neighbourhoods.
	for i := n - 1; i >= 0; i-- {
		seed := hypergraph.MaskOf(i)
		forbidden := smallerMask(i)
		emitCmpForCsg(h, seed, emit)
		enumerateCsgRec(h, seed, forbidden, func(s hypergraph.Mask) {
			emitCmpForCsg(h, s, emit)
		})
	}
}

// smallerMask returns the mask of indexes < i.
func smallerMask(i int) hypergraph.Mask {
	return hypergraph.FullMask(i)
}

// enumerateCsgRec expands the connected set s by every nonempty subset of
// its allowed neighbourhood, recursively, yielding each enlargement once.
func enumerateCsgRec(h *hypergraph.Hypergraph, s, forbidden hypergraph.Mask, yield func(hypergraph.Mask)) {
	neigh := h.Neighbors(s, h.Full()) &^ forbidden &^ s
	if neigh == 0 {
		return
	}
	// All nonempty subsets of neigh, in subset-enumeration order.
	for sub := neigh; sub != 0; sub = (sub - 1) & neigh {
		yield(s | sub)
	}
	for sub := neigh; sub != 0; sub = (sub - 1) & neigh {
		enumerateCsgRec(h, s|sub, forbidden|neigh, yield)
	}
}

// emitCmpForCsg enumerates the connected complements of the connected set
// s1, following Moerkotte–Neumann: with X = s1 ∪ B_min(s1) (every index up
// to s1's minimum), the complement seeds are the neighbours of s1 outside
// X; each seed j expands over nodes outside X and outside the smaller-
// indexed seeds. Every complement contains a neighbour of s1, so the pair
// always shares an attribute.
func emitCmpForCsg(h *hypergraph.Hypergraph, s1 hypergraph.Mask, emit func(csgCmpPair)) {
	minIdx := bits.TrailingZeros64(uint64(s1))
	x := s1 | smallerMask(minIdx+1)
	candidates := h.Neighbors(s1, h.Full()) &^ x
	if candidates == 0 {
		return
	}
	for _, j := range candidates.Indexes() {
		seed := hypergraph.MaskOf(j)
		emit(csgCmpPair{s1: s1, s2: seed})
		forbidden := x | (candidates & smallerMask(j+1))
		enumerateCsgRec(h, seed, forbidden, func(s2 hypergraph.Mask) {
			emit(csgCmpPair{s1: s1, s2: s2})
		})
	}
}

// OptimalCPFccp runs the CPF dynamic program driven by csg-cmp-pair
// enumeration instead of subset scanning. It returns the same plan cost as
// Optimal(c, SpaceCPF); the two are cross-checked in the tests. On schemes
// whose CPF partitions are sparse relative to 3^n, this formulation does
// asymptotically less work.
func OptimalCPFccp(c Sizer) (Plan, error) {
	h := c.Hypergraph()
	n := h.Len()
	if n > MaxExactRelations {
		return Plan{}, fmt.Errorf("optimizer: %d relations exceeds the exact-search limit %d", n, MaxExactRelations)
	}
	best := make(map[hypergraph.Mask]bushyCell, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[hypergraph.MaskOf(i)] = bushyCell{cost: leafSize(c, i)}
	}

	var pairs []csgCmpPair
	enumerateCsgCmpPairs(h, func(p csgCmpPair) { pairs = append(pairs, p) })
	// Process pairs in increasing size of the union so sub-solutions exist.
	sortPairsByUnionSize(pairs)

	var firstErr error
	for _, p := range pairs {
		union := p.s1 | p.s2
		lc, lok := best[p.s1]
		rc, rok := best[p.s2]
		if !lok || !rok {
			continue
		}
		size, err := c.Size(union)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		total := satAdd(satAdd(lc.cost, rc.cost), size)
		if cur, ok := best[union]; !ok || total < cur.cost {
			best[union] = bushyCell{cost: total, left: p.s1, right: p.s2}
		}
	}
	root, ok := best[h.Full()]
	if !ok || root.cost >= Infinite {
		if firstErr != nil {
			return Plan{}, firstErr
		}
		return Plan{}, fmt.Errorf("optimizer: no plan in space %s (disconnected scheme?)", SpaceCPF)
	}
	var build func(mask hypergraph.Mask) *jointree.Tree
	build = func(mask hypergraph.Mask) *jointree.Tree {
		cell := best[mask]
		if cell.left == 0 {
			return jointree.NewLeaf(mask.Indexes()[0])
		}
		return jointree.NewJoin(build(cell.left), build(cell.right))
	}
	return Plan{Tree: build(h.Full()), Cost: root.cost}, nil
}

// sortPairsByUnionSize orders pairs by popcount of the union (insertion
// sort over 17 buckets — unions have 2..n members).
func sortPairsByUnionSize(pairs []csgCmpPair) {
	buckets := make([][]csgCmpPair, 65)
	for _, p := range pairs {
		c := (p.s1 | p.s2).Count()
		buckets[c] = append(buckets[c], p)
	}
	out := pairs[:0]
	for _, b := range buckets {
		out = append(out, b...)
	}
}
