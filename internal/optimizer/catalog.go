// Package optimizer searches spaces of join expressions over a database.
//
// The paper's notion of optimality is data-dependent: the cost of a join
// expression is the number of tuples in its inputs and in every intermediate
// result on the actual database (§2.3). The exact optimizers therefore work
// against a Sizer — an oracle for |⋈D[S]| over subsets S of the scheme. Two
// implementations exist: Catalog measures true cardinalities on an actual
// database (materializing as little as it can), and workload.CycleSizer
// computes them in closed form for the Example-3 family.
//
// On top of the sizer sit exact dynamic programs for the four spaces the
// paper discusses — all bushy trees, CPF trees, linear trees, and linear CPF
// trees — plus the heuristic baselines of the related work it cites: a
// greedy smallest-intermediate heuristic, the iterative-improvement and
// simulated-annealing searches of Swami and Gupta, and an
// independence-assumption cardinality estimator with a System-R-style
// estimated-cost DP.
package optimizer

import (
	"fmt"
	"math"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// Sizer answers |⋈D[S]| queries for subsets of a database scheme. For a
// disconnected S the size is the product of its components' sizes
// (components share no attributes, so their join is a Cartesian product).
type Sizer interface {
	// Hypergraph returns the scheme the sizes are over.
	Hypergraph() *hypergraph.Hypergraph
	// Size returns |⋈D[S]| for the nonempty subset S of relation indexes.
	Size(mask hypergraph.Mask) (int64, error)
}

// Infinite is the sentinel cost for infeasible plans; arithmetic saturates
// at it rather than overflowing.
const Infinite = math.MaxInt64 / 4

// satAdd adds saturating at Infinite.
func satAdd(a, b int64) int64 {
	if a >= Infinite || b >= Infinite || a+b >= Infinite {
		return Infinite
	}
	return a + b
}

// satMul multiplies saturating at Infinite.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= Infinite || b >= Infinite || a > Infinite/b {
		return Infinite
	}
	return a * b
}

// Catalog computes and memoizes the true cardinality |⋈D[S]| for subsets S
// of a database's scheme. It materializes as little as possible: a connected
// subset's size is counted from the two halves of its cheapest partition
// (|A ⋈ B| = Σ_key cntA(key)·cntB(key)) rather than by building the join,
// and only the partition halves themselves are materialized.
type Catalog struct {
	h  *hypergraph.Hypergraph
	db *relation.Database
	// mat holds materialized joins for connected masks.
	mat map[hypergraph.Mask]*relation.Relation
	// csize holds |⋈D[S]| for connected masks.
	csize map[hypergraph.Mask]int64
	// budget caps the total number of tuples materialized; spent tracks it.
	budget int64
	spent  int64
}

// DefaultBudget is the default cap on the total number of tuples the catalog
// will materialize across all connected subsets.
const DefaultBudget = 50_000_000

// ErrBudget is returned when materialization would exceed the tuple budget.
var ErrBudget = fmt.Errorf("optimizer: catalog tuple budget exhausted")

// NewCatalog builds a catalog for db. budget caps the total materialized
// tuples (0 = DefaultBudget).
func NewCatalog(db *relation.Database, budget int64) *Catalog {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Catalog{
		h:      hypergraph.OfScheme(db),
		db:     db,
		mat:    make(map[hypergraph.Mask]*relation.Relation),
		csize:  make(map[hypergraph.Mask]int64),
		budget: budget,
	}
}

// Hypergraph returns the scheme's hypergraph.
func (c *Catalog) Hypergraph() *hypergraph.Hypergraph { return c.h }

// Database returns the underlying database.
func (c *Catalog) Database() *relation.Database { return c.db }

// Size returns |⋈D[S]| for the subset S of relation indexes.
func (c *Catalog) Size(mask hypergraph.Mask) (int64, error) {
	if mask == 0 {
		return 0, fmt.Errorf("optimizer: size of the empty subset")
	}
	total := int64(1)
	for _, comp := range c.h.Components(mask) {
		sz, err := c.connectedSize(comp)
		if err != nil {
			return 0, err
		}
		total = satMul(total, sz)
	}
	return total, nil
}

// connectedSize computes |⋈D[S]| for connected S. It picks the partition
// (L, R) of S into two connected halves whose larger half is smallest,
// materializes only the halves, and counts the join size by hashing.
func (c *Catalog) connectedSize(mask hypergraph.Mask) (int64, error) {
	if got, ok := c.csize[mask]; ok {
		return got, nil
	}
	if mask.Count() == 1 {
		sz := int64(c.db.Relation(mask.Indexes()[0]).Len())
		c.csize[mask] = sz
		return sz, nil
	}
	l, r, err := c.bestPartition(mask)
	if err != nil {
		return 0, err
	}
	a, err := c.materialize(l)
	if err != nil {
		return 0, err
	}
	b, err := c.materialize(r)
	if err != nil {
		return 0, err
	}
	sz := countJoinSize(a, b)
	c.csize[mask] = sz
	return sz, nil
}

// bestPartition returns the partition of connected mask into two connected
// halves minimizing the size of the larger half.
func (c *Catalog) bestPartition(mask hypergraph.Mask) (hypergraph.Mask, hypergraph.Mask, error) {
	var bestL, bestR hypergraph.Mask
	bestMax := int64(math.MaxInt64)
	for l := (mask - 1) & mask; l != 0; l = (l - 1) & mask {
		r := mask &^ l
		if l < r {
			continue // each unordered partition once
		}
		if !c.h.Connected(l) || !c.h.Connected(r) {
			continue
		}
		ls, err := c.connectedSize(l)
		if err != nil {
			return 0, 0, err
		}
		rs, err := c.connectedSize(r)
		if err != nil {
			return 0, 0, err
		}
		m := ls
		if rs > m {
			m = rs
		}
		if m < bestMax {
			bestMax = m
			bestL, bestR = l, r
		}
	}
	if bestL == 0 {
		return 0, 0, fmt.Errorf("optimizer: connected subset %s has no connected bipartition", mask)
	}
	return bestL, bestR, nil
}

// materialize returns the relation ⋈D[S] for a connected subset S,
// materializing (and memoizing) it on first use. It builds S one relation at
// a time, removing at each step the relation whose remainder is smallest.
func (c *Catalog) materialize(mask hypergraph.Mask) (*relation.Relation, error) {
	if got, ok := c.mat[mask]; ok {
		return got, nil
	}
	if !c.h.Connected(mask) {
		return nil, fmt.Errorf("optimizer: materialize of disconnected subset %s", mask)
	}
	if mask.Count() == 1 {
		rel := c.db.Relation(mask.Indexes()[0])
		c.mat[mask] = rel
		return rel, nil
	}
	// Remove the relation whose removal keeps the rest connected and makes
	// the remainder smallest.
	bestI := -1
	bestSize := int64(math.MaxInt64)
	for _, i := range mask.Indexes() {
		rest := mask.Without(i)
		if !c.h.Connected(rest) {
			continue
		}
		sz, err := c.connectedSize(rest)
		if err != nil {
			return nil, err
		}
		if sz < bestSize {
			bestSize = sz
			bestI = i
		}
	}
	if bestI < 0 {
		return nil, fmt.Errorf("optimizer: internal error: no removable relation in connected subset %s", mask)
	}
	base, err := c.materialize(mask.Without(bestI))
	if err != nil {
		return nil, err
	}
	out := relation.Join(base, c.db.Relation(bestI))
	c.spent += int64(out.Len())
	if c.spent > c.budget {
		return nil, ErrBudget
	}
	c.mat[mask] = out
	return out, nil
}

// countJoinSize returns |a ⋈ b| without materializing it: hash the common
// attributes of the smaller side to counts and sum products.
func countJoinSize(a, b *relation.Relation) int64 {
	if a.Len() > b.Len() {
		a, b = b, a
	}
	common := a.Schema().AttrSet().Intersect(b.Schema().AttrSet())
	if common.IsEmpty() {
		return satMul(int64(a.Len()), int64(b.Len()))
	}
	aPos, _ := a.Schema().Positions(common)
	bPos, _ := b.Schema().Positions(common)
	counts := make(map[string]int64, a.Len())
	var buf []byte
	for _, t := range a.Rows() {
		buf = buf[:0]
		for _, p := range aPos {
			buf = appendValueKey(buf, t[p])
		}
		counts[string(buf)]++
	}
	total := int64(0)
	for _, t := range b.Rows() {
		buf = buf[:0]
		for _, p := range bPos {
			buf = appendValueKey(buf, t[p])
		}
		total = satAdd(total, counts[string(buf)])
	}
	return total
}

// appendValueKey re-implements the relation package's injective value
// encoding for counting (the relation package keeps its encoder private).
func appendValueKey(dst []byte, v relation.Value) []byte {
	switch v.Kind() {
	case relation.KindInt:
		u := uint64(v.AsInt())
		return append(dst, 'i',
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	default:
		s := v.AsString()
		n := uint32(len(s))
		dst = append(dst, 's', byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		return append(dst, s...)
	}
}

// Spent reports the total tuples materialized so far.
func (c *Catalog) Spent() int64 { return c.spent }

// Materialize exposes materialization of a connected subset; benchmarks and
// the acyclic comparisons use it to force actual join work.
func (c *Catalog) Materialize(mask hypergraph.Mask) (*relation.Relation, error) {
	return c.materialize(mask)
}
