package optimizer

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
	"repro/internal/relation"
	"repro/internal/workload"
)

// skewedPairDB builds two relations sharing x with Zipf-distributed values.
func skewedPairDB(t *testing.T, n int, s float64) *relation.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(131))
	zipf := rand.NewZipf(rng, s, 1, 199)
	mk := func(extra string) *relation.Relation {
		r := relation.New(relation.MustSchema("x", extra))
		for i := 0; i < n; i++ {
			r.MustInsert(relation.Ints(int64(zipf.Uint64()), int64(i)))
		}
		return r
	}
	return relation.MustDatabase(mk("a"), mk("b"))
}

func TestHistogramEstimatorLeafExact(t *testing.T) {
	db := skewedPairDB(t, 500, 1.4)
	e, err := NewHistogramEstimator(db, 16)
	if err != nil {
		t.Fatal(err)
	}
	cost, stats := e.EstimateTree(jointree.NewLeaf(0))
	if cost != int64(db.Relation(0).Len()) || stats.Card != cost {
		t.Errorf("leaf estimate %d, want %d", cost, db.Relation(0).Len())
	}
}

// TestHistogramEstimatorBeatsIndependenceOnSkewedTree: on the skewed pair,
// the histogram estimator's join-size estimate must be closer to the truth.
func TestHistogramEstimatorBeatsIndependenceOnSkewedTree(t *testing.T) {
	db := skewedPairDB(t, 2000, 1.4)
	tree := jointree.NewJoin(jointree.NewLeaf(0), jointree.NewLeaf(1))
	truth := int64(relation.Join(db.Relation(0), db.Relation(1)).Len())

	hist, err := NewHistogramEstimator(db, 32)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := hist.EstimateTree(tree)
	ind := NewEstimator(db)
	_, is := ind.EstimateTree(tree)

	errOf := func(est int64) float64 {
		r := float64(est) / float64(truth)
		if r < 1 {
			return 1 / r
		}
		return r
	}
	if errOf(hs.Card) >= errOf(is.Card) {
		t.Errorf("histogram estimate %d (err %.2f) should beat independence %d (err %.2f); truth %d",
			hs.Card, errOf(hs.Card), is.Card, errOf(is.Card), truth)
	}
	if errOf(hs.Card) > 2.0 {
		t.Errorf("histogram estimate %d off by %.2f× from truth %d", hs.Card, errOf(hs.Card), truth)
	}
}

// TestHistogramEstimatorAgreesOnUniform: on uniform data both estimators
// should be close to each other and the truth.
func TestHistogramEstimatorAgreesOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	h, err := workload.ChainScheme(3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := workload.RandomDatabase(rng, h, 300, 40)
	if err != nil {
		t.Fatal(err)
	}
	tree := jointree.NewJoin(jointree.NewJoin(jointree.NewLeaf(0), jointree.NewLeaf(1)), jointree.NewLeaf(2))
	truth := int64(db.Join().Len())
	if truth == 0 {
		t.Skip("degenerate draw")
	}
	hist, err := NewHistogramEstimator(db, 32)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := hist.EstimateTree(tree)
	if hs.Card < truth/5 || hs.Card > truth*5 {
		t.Errorf("uniform chain estimate %d vs truth %d", hs.Card, truth)
	}
}

func TestRankByEstimate(t *testing.T) {
	db, _ := func() (*relation.Database, error) {
		spec, err := workload.Example3(6)
		if err != nil {
			return nil, err
		}
		return spec.CycleDatabase()
	}()
	hg := hypergraph.OfScheme(db)
	trees, err := jointree.AllCPFTrees(hg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewHistogramEstimator(db, 16)
	if err != nil {
		t.Fatal(err)
	}
	best, cost := RankByEstimate(est, trees)
	if best == nil || cost <= 0 {
		t.Fatal("no plan ranked")
	}
	// The chosen plan must be real and valid.
	if err := best.Validate(hg); err != nil {
		t.Fatal(err)
	}
	// Its true cost should not be catastrophically worse than the exact
	// CPF optimum (estimation is allowed to be off, but not absurd here).
	cat := NewCatalog(db, 0)
	exact, err := Optimal(cat, SpaceCPF)
	if err != nil {
		t.Fatal(err)
	}
	trueCost, err := CostOf(cat, best)
	if err != nil {
		t.Fatal(err)
	}
	if trueCost > exact.Cost*4 {
		t.Errorf("estimator-picked plan costs %d, exact CPF optimum %d", trueCost, exact.Cost)
	}
}
