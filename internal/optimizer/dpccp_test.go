package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/workload"
)

// brutePairs enumerates every valid CPF partition pair by brute force:
// (S1, S2) connected, disjoint, attribute-overlapping; unordered (keyed
// with the smaller mask first).
func brutePairs(h *hypergraph.Hypergraph) map[string]bool {
	out := map[string]bool{}
	full := h.Full()
	for s1 := hypergraph.Mask(1); s1 <= full; s1++ {
		if !h.Connected(s1) {
			continue
		}
		for s2 := s1 + 1; s2 <= full; s2++ {
			if s1&s2 != 0 || !h.Connected(s2) || !h.Overlapping(s1, s2) {
				continue
			}
			out[pairKey(s1, s2)] = true
		}
	}
	return out
}

func pairKey(a, b hypergraph.Mask) string {
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("%d|%d", a, b)
}

// TestCsgCmpPairsComplete cross-checks the DPccp enumeration against brute
// force on assorted schemes: every valid pair must be emitted (duplicates
// are tolerated; missing pairs are not).
func TestCsgCmpPairsComplete(t *testing.T) {
	schemes := []string{
		"ABC CDE EFG GHA", // the paper's 4-cycle
		"AB BC CD DE",     // chain
		"AB AC AD AE",     // star
		"AB BC CA",        // triangle
		"AB BC CD DA AC",  // cycle with chord
		"AB AB BC",        // duplicates
		"ABC BCD ABD ACD", // dense
	}
	for _, s := range schemes {
		h, err := hypergraph.ParseScheme(s)
		if err != nil {
			t.Fatal(err)
		}
		want := brutePairs(h)
		got := map[string]bool{}
		dups := 0
		enumerateCsgCmpPairs(h, func(p csgCmpPair) {
			k := pairKey(p.s1, p.s2)
			if got[k] {
				dups++
			}
			got[k] = true
			// Every emitted pair must be valid.
			if p.s1&p.s2 != 0 || !h.Connected(p.s1) || !h.Connected(p.s2) || !h.Overlapping(p.s1, p.s2) {
				t.Errorf("%s: invalid pair %v %v", s, p.s1, p.s2)
			}
		})
		for k := range want {
			if !got[k] {
				t.Errorf("%s: missing pair %s (have %d of %d)", s, k, len(got), len(want))
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("%s: spurious pair %s", s, k)
			}
		}
	}
}

// TestCsgCmpPairsCompleteRandom repeats the cross-check on random schemes.
func TestCsgCmpPairsCompleteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 40; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(5), Attrs: 4 + rng.Intn(3), MaxArity: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := brutePairs(h)
		got := map[string]bool{}
		enumerateCsgCmpPairs(h, func(p csgCmpPair) { got[pairKey(p.s1, p.s2)] = true })
		if len(got) != len(want) {
			t.Fatalf("trial %d (%s): got %d pairs, want %d", trial, h, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d (%s): missing pair %s", trial, h, k)
			}
		}
	}
}

// TestOptimalCPFccpMatchesSubsetDP: the DPccp-driven optimizer must agree
// with the subset-scanning DP on cost, everywhere.
func TestOptimalCPFccpMatchesSubsetDP(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	for trial := 0; trial < 25; trial++ {
		h, err := workload.RandomScheme(rng, workload.RandomSchemeSpec{
			Relations: 2 + rng.Intn(5), Attrs: 5, MaxArity: 3, Connected: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		db, err := workload.RandomDatabase(rng, h, 1+rng.Intn(10), 3)
		if err != nil {
			t.Fatal(err)
		}
		cat := NewCatalog(db, 0)
		want, errWant := Optimal(cat, SpaceCPF)
		got, errGot := OptimalCPFccp(cat)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("trial %d (%s): errors disagree: %v vs %v", trial, h, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if got.Cost != want.Cost {
			t.Fatalf("trial %d (%s): DPccp cost %d, subset DP %d", trial, h, got.Cost, want.Cost)
		}
		if !got.Tree.IsCPF(h) {
			t.Fatalf("trial %d: DPccp produced a non-CPF tree", trial)
		}
	}
	// The paper instance too.
	spec, err := workload.Example3(8)
	if err != nil {
		t.Fatal(err)
	}
	sizer, err := spec.AnalyticSizer()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Optimal(sizer, SpaceCPF)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimalCPFccp(sizer)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("Example3: DPccp %d, subset DP %d", got.Cost, want.Cost)
	}
}

// BenchmarkCPFDPVariants compares the subset-scanning and csg-cmp-pair
// formulations on a sparse chain (where DPccp's advantage is largest).
func BenchmarkCPFDPVariants(b *testing.B) {
	h, err := workload.ChainScheme(14)
	if err != nil {
		b.Fatal(err)
	}
	db, err := workload.ChainDatabase(14, 20)
	if err != nil {
		b.Fatal(err)
	}
	_ = h
	warm := NewCatalog(db, 0)
	if _, err := Optimal(warm, SpaceCPF); err != nil {
		b.Fatal(err)
	}
	b.Run("subsetScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Optimal(warm, SpaceCPF); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csgCmpPairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := OptimalCPFccp(warm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestOptimalCPFccpBudgetError(t *testing.T) {
	spec, err := workload.Example3(6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(db, 1)
	if _, err := OptimalCPFccp(cat); err == nil {
		t.Error("budget exhaustion not surfaced")
	}
}

func TestOptimalCPFccpSingleRelation(t *testing.T) {
	spec, err := workload.Example3(6)
	if err != nil {
		t.Fatal(err)
	}
	db, err := spec.CycleDatabase()
	if err != nil {
		t.Fatal(err)
	}
	single, err := db.Restrict([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := OptimalCPFccp(NewCatalog(single, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Tree.IsLeaf() || plan.Cost != int64(single.Relation(0).Len()) {
		t.Errorf("single-relation plan = %v cost %d", plan.Tree, plan.Cost)
	}
}
