package optimizer

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/jointree"
)

// Plan is a join expression tree with its exact cost on the database the
// optimizer ran against.
type Plan struct {
	Tree *jointree.Tree
	// Cost is the paper's cost(E(D)): Σ|R| over leaves plus every
	// intermediate and the final result.
	Cost int64
}

// MaxExactRelations bounds the exhaustive dynamic programs: the bushy DP
// enumerates all partitions of all subsets (3^n work).
const MaxExactRelations = 16

// Space selects a search space of join expressions.
type Space int

const (
	// SpaceAll is every join expression tree (bushy, products allowed).
	SpaceAll Space = iota
	// SpaceCPF is every Cartesian-product-free tree.
	SpaceCPF
	// SpaceLinear is every linear tree (products allowed).
	SpaceLinear
	// SpaceLinearCPF is every linear Cartesian-product-free tree.
	SpaceLinearCPF
)

// String names the space.
func (s Space) String() string {
	switch s {
	case SpaceAll:
		return "all"
	case SpaceCPF:
		return "CPF"
	case SpaceLinear:
		return "linear"
	case SpaceLinearCPF:
		return "linear-CPF"
	default:
		return fmt.Sprintf("Space(%d)", int(s))
	}
}

// Optimal finds a cheapest join expression in the given space by exact
// dynamic programming over true cardinalities. It returns an error when the
// scheme is too large, the space is empty (a disconnected scheme has no CPF
// tree), or the catalog budget is exhausted.
func Optimal(c Sizer, space Space) (Plan, error) {
	n := c.Hypergraph().Len()
	if n > MaxExactRelations {
		return Plan{}, fmt.Errorf("optimizer: %d relations exceeds the exact-search limit %d", n, MaxExactRelations)
	}
	switch space {
	case SpaceAll:
		return optimalBushy(c, false)
	case SpaceCPF:
		return optimalBushy(c, true)
	case SpaceLinear:
		return optimalLinear(c, false)
	case SpaceLinearCPF:
		return optimalLinear(c, true)
	default:
		return Plan{}, fmt.Errorf("optimizer: unknown space %v", space)
	}
}

// leafSize returns |R_i| through the sizer; singleton sizes never fail for
// a well-formed sizer, so errors collapse to Infinite.
func leafSize(c Sizer, i int) int64 {
	sz, err := c.Size(hypergraph.MaskOf(i))
	if err != nil {
		return Infinite
	}
	return sz
}

// bushyCell is one DP entry: the best cost for a subset and the partition
// that achieves it (left == 0 marks a leaf).
type bushyCell struct {
	cost  int64
	left  hypergraph.Mask
	right hypergraph.Mask
}

// optimalBushy runs the subset DP. With cpf set, only partitions whose sides
// share an attribute (and, recursively, are CPF) are admitted, and only
// connected subsets have entries.
func optimalBushy(c Sizer, cpf bool) (Plan, error) {
	n := c.Hypergraph().Len()
	full := c.Hypergraph().Full()
	best := make(map[hypergraph.Mask]bushyCell, 1<<uint(n))

	// Subsets in increasing cardinality: iterate all masks; a mask's proper
	// submasks are numerically smaller, so ascending mask order works.
	for mask := hypergraph.Mask(1); mask <= full; mask++ {
		if mask.Count() == 1 {
			best[mask] = bushyCell{cost: leafSize(c, mask.Indexes()[0])}
			continue
		}
		if cpf && !c.Hypergraph().Connected(mask) {
			continue
		}
		size, err := c.Size(mask)
		if err != nil {
			return Plan{}, err
		}
		cell := bushyCell{cost: Infinite}
		for l := (mask - 1) & mask; l != 0; l = (l - 1) & mask {
			r := mask &^ l
			if l < r {
				// Each unordered partition once; operand order does not
				// affect cost.
				continue
			}
			lc, lok := best[l]
			rc, rok := best[r]
			if !lok || !rok {
				continue
			}
			if cpf && !c.Hypergraph().Overlapping(l, r) {
				continue
			}
			if total := satAdd(lc.cost, rc.cost); total < cell.cost {
				cell.cost = total
				cell.left, cell.right = l, r
			}
		}
		if cell.cost >= Infinite {
			continue // no feasible partition (CPF over non-splittable subset)
		}
		cell.cost = satAdd(cell.cost, size)
		best[mask] = cell
	}

	root, ok := best[full]
	if !ok || root.cost >= Infinite {
		return Plan{}, fmt.Errorf("optimizer: no plan in space %s (disconnected scheme?)", map[bool]Space{false: SpaceAll, true: SpaceCPF}[cpf])
	}
	var build func(mask hypergraph.Mask) *jointree.Tree
	build = func(mask hypergraph.Mask) *jointree.Tree {
		cell := best[mask]
		if cell.left == 0 {
			return jointree.NewLeaf(mask.Indexes()[0])
		}
		return jointree.NewJoin(build(cell.left), build(cell.right))
	}
	return Plan{Tree: build(full), Cost: root.cost}, nil
}

// linCell is one linear-DP entry: best cost for a prefix set and the last
// relation appended.
type linCell struct {
	cost int64
	last int
}

// optimalLinear runs the left-deep DP: dp[S] = |⋈D[S]| + min over i∈S of
// dp[S−i] + |R_i| (the leaf cost of the appended relation). With cpf set,
// only extensions sharing an attribute with the prefix are admitted.
func optimalLinear(c Sizer, cpf bool) (Plan, error) {
	full := c.Hypergraph().Full()
	if c.Hypergraph().Len() == 1 {
		return Plan{Tree: jointree.NewLeaf(0), Cost: leafSize(c, 0)}, nil
	}
	best := make(map[hypergraph.Mask]linCell, 1<<uint(c.Hypergraph().Len()))

	for mask := hypergraph.Mask(1); mask <= full; mask++ {
		if mask.Count() == 1 {
			best[mask] = linCell{cost: leafSize(c, mask.Indexes()[0]), last: -1}
			continue
		}
		cell := linCell{cost: Infinite, last: -1}
		for _, i := range mask.Indexes() {
			rest := mask.Without(i)
			sub, ok := best[rest]
			if !ok {
				continue
			}
			if cpf && !c.Hypergraph().Overlapping(rest, hypergraph.MaskOf(i)) {
				continue
			}
			total := satAdd(sub.cost, leafSize(c, i))
			if total < cell.cost {
				cell.cost = total
				cell.last = i
			}
		}
		if cell.last < 0 {
			continue
		}
		size, err := c.Size(mask)
		if err != nil {
			return Plan{}, err
		}
		cell.cost = satAdd(cell.cost, size)
		best[mask] = cell
	}

	root, ok := best[full]
	if !ok || root.cost >= Infinite {
		return Plan{}, fmt.Errorf("optimizer: no plan in space %s", map[bool]Space{false: SpaceLinear, true: SpaceLinearCPF}[cpf])
	}
	// Reconstruct the order back to front.
	order := make([]int, 0, c.Hypergraph().Len())
	for mask := full; mask.Count() > 1; {
		cell := best[mask]
		order = append(order, cell.last)
		mask = mask.Without(cell.last)
		if mask.Count() == 1 {
			order = append(order, mask.Indexes()[0])
		}
	}
	// order is reversed (last appended first).
	tree := jointree.NewLeaf(order[len(order)-1])
	for i := len(order) - 2; i >= 0; i-- {
		tree = jointree.NewJoin(tree, jointree.NewLeaf(order[i]))
	}
	return Plan{Tree: tree, Cost: root.cost}, nil
}

// CostOf evaluates the paper's cost of an arbitrary tree using the catalog
// (no joins beyond the catalog's connected materializations are executed;
// every node's size comes from component products).
func CostOf(c Sizer, t *jointree.Tree) (int64, error) {
	if t.IsLeaf() {
		return leafSize(c, t.Leaf), nil
	}
	lc, err := CostOf(c, t.Left)
	if err != nil {
		return 0, err
	}
	rc, err := CostOf(c, t.Right)
	if err != nil {
		return 0, err
	}
	size, err := c.Size(t.Mask())
	if err != nil {
		return 0, err
	}
	return satAdd(satAdd(lc, rc), size), nil
}
