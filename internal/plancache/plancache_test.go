package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

func plan(fp string) *engine.Plan {
	return &engine.Plan{Fingerprint: fp, Strategy: engine.StrategyDirect}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", plan("a"))
	c.Put("b", plan("b"))
	if _, ok := c.Get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	c.Put("c", plan("c")) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should still be cached", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v, want 1 eviction, len 2, cap 2", st)
	}
}

func TestPutReplacesExistingKey(t *testing.T) {
	c := New(2)
	c.Put("a", plan("old"))
	c.Put("a", plan("new"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	p, ok := c.Get("a")
	if !ok || p.Fingerprint != "new" {
		t.Errorf("got %v, want replaced plan", p)
	}
}

func TestCounters(t *testing.T) {
	c := New(4)
	c.Get("missing")
	c.Put("a", plan("a"))
	c.Get("a")
	c.Get("a")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss", st)
	}
}

func TestGetOrComputeCoalesces(t *testing.T) {
	c := New(4)
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	var fromCache atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, cached, err := c.GetOrCompute("k", func() (*engine.Plan, error) {
				computes.Add(1)
				<-release // hold the flight open so the others must coalesce
				return plan("k"), nil
			})
			if err != nil || p.Fingerprint != "k" {
				t.Errorf("GetOrCompute: %v, %v", p, err)
			}
			if cached {
				fromCache.Add(1)
			}
		}()
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	if got := fromCache.Load(); got != waiters-1 {
		t.Errorf("%d callers served without computing, want %d", got, waiters-1)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() (*engine.Plan, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("failed computation was cached")
	}
	// A later call retries the computation.
	p, cached, err := c.GetOrCompute("k", func() (*engine.Plan, error) { return plan("k"), nil })
	if err != nil || cached || p == nil {
		t.Errorf("retry = %v, %v, %v", p, cached, err)
	}
}

// TestConcurrentStress hammers Get/Put/GetOrCompute across overlapping keys
// with a capacity small enough to force constant eviction; run under -race
// this is the cache's data-race certificate.
func TestConcurrentStress(t *testing.T) {
	c := New(8)
	const goroutines = 32
	const opsPer = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				switch i % 3 {
				case 0:
					c.Put(key, plan(key))
				case 1:
					if p, ok := c.Get(key); ok && p.Fingerprint != key {
						t.Errorf("key %s holds plan %s", key, p.Fingerprint)
					}
				default:
					p, _, err := c.GetOrCompute(key, func() (*engine.Plan, error) { return plan(key), nil })
					if err != nil || p.Fingerprint != key {
						t.Errorf("GetOrCompute(%s) = %v, %v", key, p, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Len > 8 {
		t.Errorf("len %d exceeds capacity", st.Len)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("no lookups recorded")
	}
}

// TestDistinctStrategiesSameFingerprintDoNotCoalesce: the serving layer keys
// plans as fingerprint + "#" + strategy, so one scheme queried under two
// strategies at once must run exactly one computation *per strategy* — the
// flights coalesce within a key, never across keys — and evicting one
// strategy's plan must not disturb the other's.
func TestDistinctStrategiesSameFingerprintDoNotCoalesce(t *testing.T) {
	c := New(4)
	const fp = "scheme-fp"
	strategies := []engine.Strategy{engine.StrategyProgram, engine.StrategyWCOJ}
	computes := make([]atomic.Int64, len(strategies))
	release := make(chan struct{})
	var wg sync.WaitGroup
	for si, s := range strategies {
		key := fp + "#" + s.String()
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(si int, s engine.Strategy, key string) {
				defer wg.Done()
				p, _, err := c.GetOrCompute(key, func() (*engine.Plan, error) {
					computes[si].Add(1)
					<-release
					return &engine.Plan{Fingerprint: fp, Strategy: s}, nil
				})
				if err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
				if p.Strategy != s {
					t.Errorf("key %s handed back a %s plan: strategies crossed flights", key, p.Strategy)
				}
			}(si, s, key)
		}
	}
	// No flight can finish before release closes, so every caller either
	// starts a flight (one per key) or blocks coalesced on it; wait for the
	// counters to show all 16 are parked before letting the flights land.
	for {
		st := c.Stats()
		if st.Misses == int64(len(strategies)) && st.Coalesced == int64(len(strategies))*7 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for si, s := range strategies {
		if got := computes[si].Load(); got != 1 {
			t.Errorf("strategy %s computed %d times, want 1", s, got)
		}
	}
	st := c.Stats()
	if st.Misses != int64(len(strategies)) {
		t.Errorf("misses = %d, want one per strategy", st.Misses)
	}
	if st.Coalesced != int64(len(strategies))*7 {
		t.Errorf("coalesced = %d, want 7 per strategy", st.Coalesced)
	}
	// Evict the program entry by filling the cache around it; the wcoj entry,
	// kept recently used, must survive with its own plan.
	wcojKey := fp + "#" + engine.StrategyWCOJ.String()
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("filler%d", i), plan("filler"))
		if _, ok := c.Get(wcojKey); !ok {
			t.Fatalf("wcoj plan evicted while recently used (filler %d)", i)
		}
	}
	if _, ok := c.Get(fp + "#" + engine.StrategyProgram.String()); ok {
		t.Error("program plan should have been evicted by the fillers")
	}
	if p, ok := c.Get(wcojKey); !ok || p.Strategy != engine.StrategyWCOJ {
		t.Error("wcoj plan lost or corrupted after evictions")
	}
}

func TestInvalidatePrefix(t *testing.T) {
	c := New(8)
	c.Put("fpA#direct", plan("fpA"))
	c.Put("fpA#program", plan("fpA"))
	c.Put("fpB#direct", plan("fpB"))
	c.Put("fpAB#direct", plan("fpAB")) // shares a prefix with fpA's keys but not "fpA#"

	if n := c.InvalidatePrefix("fpA#"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	for _, gone := range []string{"fpA#direct", "fpA#program"} {
		if _, ok := c.Get(gone); ok {
			t.Errorf("%s survived invalidation", gone)
		}
	}
	for _, kept := range []string{"fpB#direct", "fpAB#direct"} {
		if _, ok := c.Get(kept); !ok {
			t.Errorf("%s was wrongly invalidated", kept)
		}
	}
	st := c.Stats()
	if st.Invalidations != 2 {
		t.Errorf("Invalidations = %d, want 2", st.Invalidations)
	}
	if st.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0 (invalidation is not eviction)", st.Evictions)
	}
	if st.Len != 2 {
		t.Errorf("Len = %d, want 2", st.Len)
	}
	if n := c.InvalidatePrefix("nope"); n != 0 {
		t.Errorf("invalidated %d entries for an unknown prefix, want 0", n)
	}
}

func TestInvalidatePrefixKeepsLRUConsistent(t *testing.T) {
	c := New(3)
	c.Put("x#1", plan("x"))
	c.Put("y#1", plan("y"))
	c.Put("x#2", plan("x"))
	c.InvalidatePrefix("x#")
	// The list and map must still agree: filling back to capacity and over
	// evicts exactly once.
	c.Put("z#1", plan("z"))
	c.Put("z#2", plan("z"))
	c.Put("z#3", plan("z"))
	st := c.Stats()
	if st.Len != 3 {
		t.Fatalf("len = %d, want 3", st.Len)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, ok := c.Get("y#1"); ok {
		t.Error("y#1 should have been evicted as the least recently used")
	}
}

// TestInvalidatePrefixMarksInFlight pins the invalidation/coalescing
// ordering: a compute that starts before an InvalidatePrefix and finishes
// after it must not cache its (pre-invalidation) plan. Without the in-flight
// mark, the sequence compute-start → invalidate → put would re-install a
// stale plan that no later invalidation ever drops.
func TestInvalidatePrefixMarksInFlight(t *testing.T) {
	c := New(4)
	computing := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := c.GetOrCompute("fp#auto", func() (*engine.Plan, error) {
			close(computing)
			<-release
			return plan("stale"), nil
		})
		if err != nil {
			t.Errorf("GetOrCompute: %v", err)
		}
	}()
	<-computing
	// The ingest lands mid-compute and invalidates the prefix.
	c.InvalidatePrefix("fp#")
	close(release)
	<-done
	if _, ok := c.Get("fp#auto"); ok {
		t.Fatal("in-flight plan was cached despite the invalidation that raced its compute")
	}
	// A fresh compute after the invalidation caches normally.
	if _, served, err := c.GetOrCompute("fp#auto", func() (*engine.Plan, error) {
		return plan("fresh"), nil
	}); err != nil || served {
		t.Fatalf("fresh compute: served=%v err=%v", served, err)
	}
	if p, ok := c.Get("fp#auto"); !ok || p.Fingerprint != "fresh" {
		t.Fatalf("post-invalidation plan not cached (got %v, %v)", p, ok)
	}
}

// TestInvalidateRaceWithCoalescing hammers GetOrCompute (with coalescing
// waiters) against concurrent InvalidatePrefix calls; run under -race. The
// invariant checked per round: once an invalidation has happened after a
// compute started, the key is either absent or holds a plan from a compute
// that began after the last invalidation.
func TestInvalidateRaceWithCoalescing(t *testing.T) {
	c := New(8)
	var epoch atomic.Int64 // bumped on every invalidation
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				started := epoch.Load()
				p, _, err := c.GetOrCompute("fp#auto", func() (*engine.Plan, error) {
					return &engine.Plan{Fingerprint: fmt.Sprint(started), Strategy: engine.StrategyDirect}, nil
				})
				if err != nil || p == nil {
					t.Errorf("GetOrCompute: p=%v err=%v", p, err)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		epoch.Add(1)
		c.InvalidatePrefix("fp#")
		if i%10 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	// After the final invalidation with all workers stopped, any cached plan
	// must come from a compute that started at the current epoch — a stale
	// epoch here means an in-flight result was cached across an invalidation.
	final := epoch.Load()
	c.InvalidatePrefix("fp#")
	if p, ok := c.Get("fp#auto"); ok && p.Fingerprint != fmt.Sprint(final) {
		t.Fatalf("cached plan from epoch %s survived invalidation at epoch %d", p.Fingerprint, final)
	}
}
