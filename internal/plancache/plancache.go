// Package plancache caches derived execution plans keyed by canonical
// scheme fingerprint. The paper's Theorems 1–2 make plans ideal cache
// entries: an expression/program is derived once per database scheme and is
// correct (and quasi-optimal) for every instance over that scheme, so a
// serving process that sees the same scheme repeatedly — the normal case
// for a query service — pays for optimizer search and Algorithm 1/2
// derivation exactly once.
//
// The cache is a bounded LRU with hit/miss/eviction counters, safe for
// concurrent use. GetOrCompute collapses concurrent misses on one key into
// a single derivation (plan search can be expensive; a thundering herd of
// identical queries must not each run it).
package plancache

import (
	"container/list"
	"sync"

	"repro/internal/engine"
)

// DefaultCapacity is the cache size used when New is given a non-positive
// capacity.
const DefaultCapacity = 128

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts Get/GetOrCompute calls answered from the cache, including
	// calls that joined an in-flight computation (see Coalesced).
	Hits int64 `json:"hits"`
	// Misses counts lookups that found nothing and (for GetOrCompute) ran
	// the compute function.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to respect capacity.
	Evictions int64 `json:"evictions"`
	// Coalesced counts GetOrCompute calls that waited on another caller's
	// in-flight computation instead of running their own (a subset of Hits).
	Coalesced int64 `json:"coalesced"`
	// Invalidations counts entries dropped by InvalidatePrefix — plans
	// discarded because their database changed, not for capacity.
	Invalidations int64 `json:"invalidations"`
	// Len and Capacity describe current occupancy.
	Len      int `json:"len"`
	Capacity int `json:"capacity"`
}

// Cache is an LRU plan cache. The zero value is not usable; construct with
// New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element whose Value is *entry
	inflight map[string]*flight

	hits, misses, evictions, coalesced, invalidations int64
}

type entry struct {
	key  string
	plan *engine.Plan
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done chan struct{}
	plan *engine.Plan
	err  error
	// invalidated is set (under the cache lock) by InvalidatePrefix while
	// the computation is still in flight: the plan being derived reads the
	// pre-invalidation catalog, so caching it after the invalidation would
	// resurrect exactly the staleness the caller asked to drop. The result
	// is still handed to every waiter — it is correct for the scheme — but
	// it never enters the cache.
	invalidated bool
}

// New returns an empty cache holding at most capacity plans
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Get returns the cached plan for key, marking it most recently used.
func (c *Cache) Get(key string) (*engine.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).plan, true
	}
	c.misses++
	return nil, false
}

// Put stores a plan under key, evicting the least recently used entry when
// over capacity. Storing an existing key replaces its plan.
func (c *Cache) Put(key string, p *engine.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, p)
}

// put is Put without locking.
func (c *Cache) put(key string, p *engine.Plan) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).plan = p
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, plan: p})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// GetOrCompute returns the plan for key, computing and caching it on a
// miss. Concurrent callers missing on the same key share one computation:
// the first runs compute, the rest block until it finishes and receive its
// result. The second return reports whether the caller was served without
// running compute itself (a cache hit or a coalesced wait). Compute errors
// are not cached; they propagate to every waiter of that flight.
func (c *Cache) GetOrCompute(key string, compute func() (*engine.Plan, error)) (*engine.Plan, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		p := el.Value.(*entry).plan
		c.mu.Unlock()
		return p, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.hits++
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.plan, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.plan, f.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && !f.invalidated {
		c.put(key, f.plan)
	}
	c.mu.Unlock()
	close(f.done)
	return f.plan, false, f.err
}

// InvalidatePrefix drops every cached plan whose key starts with prefix and
// returns the number dropped. The service keys plans as
// "fingerprint#strategy", so invalidating the fingerprint prefix removes all
// strategies' plans for one database after an ingest mutates it — plans are
// instance-dependent (optimizer search reads cardinalities), so they cannot
// outlive the catalog version they were derived from. In-flight computations
// for matching keys are marked invalidated: they finish and serve their
// waiters (a plan derived from either catalog version is still correct for
// the scheme), but their results are not cached — without the mark, a
// compute that started before the ingest could complete after this call and
// re-install a pre-ingest plan that no later invalidation would ever drop.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.items {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			c.ll.Remove(el)
			delete(c.items, key)
			n++
		}
	}
	for key, f := range c.inflight {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			f.invalidated = true
		}
	}
	c.invalidations += int64(n)
	return n
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Coalesced:     c.coalesced,
		Invalidations: c.invalidations,
		Len:           c.ll.Len(),
		Capacity:      c.capacity,
	}
}
