package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	v := Int(42)
	if v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) = kind %v value %d", v.Kind(), v.AsInt())
	}
	s := String("hi")
	if s.Kind() != KindString || s.AsString() != "hi" {
		t.Errorf("String(hi) = kind %v value %q", s.Kind(), s.AsString())
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Int(0), String(""), false},
		{Int(-1), Int(-1), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{
		Int(math.MinInt64), Int(-1), Int(0), Int(7), Int(math.MaxInt64),
		String(""), String("a"), String("ab"), String("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	if got := Int(-5).String(); got != "-5" {
		t.Errorf("Int(-5).String() = %q", got)
	}
	if got := String("x y").String(); got != "x y" {
		t.Errorf("String(x y).String() = %q", got)
	}
}

// TestValueKeyInjective checks the key encoding separates every pair of
// distinct values, via testing/quick.
func TestValueKeyInjective(t *testing.T) {
	intPair := func(a, b int64) bool {
		ka := string(Int(a).appendKey(nil))
		kb := string(Int(b).appendKey(nil))
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(intPair, nil); err != nil {
		t.Error(err)
	}
	strPair := func(a, b string) bool {
		ka := string(String(a).appendKey(nil))
		kb := string(String(b).appendKey(nil))
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(strPair, nil); err != nil {
		t.Error(err)
	}
	crossKind := func(a int64, b string) bool {
		return string(Int(a).appendKey(nil)) != string(String(b).appendKey(nil))
	}
	if err := quick.Check(crossKind, nil); err != nil {
		t.Error(err)
	}
}

// TestTupleKeyInjective checks that concatenated keys distinguish tuples
// even when value boundaries shift (length prefixes make the encoding
// self-delimiting).
func TestTupleKeyInjective(t *testing.T) {
	pairs := [][2]Tuple{
		{Strs("ab", "c"), Strs("a", "bc")},
		{Strs("", "x"), Strs("x", "")},
		{Ints(1, 2), Ints(12)},
		{Tuple{Int(1), String("2")}, Tuple{String("1"), Int(2)}},
	}
	for _, p := range pairs {
		if p[0].key() == p[1].key() {
			t.Errorf("tuples %v and %v encode to the same key", p[0], p[1])
		}
	}
	same := func(vs []int64) bool {
		return Ints(vs...).key() == Ints(vs...).key()
	}
	if err := quick.Check(same, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleCompare(t *testing.T) {
	if Ints(1, 2).Compare(Ints(1, 3)) != -1 {
		t.Error("(1,2) should sort before (1,3)")
	}
	if Ints(1, 2).Compare(Ints(1, 2)) != 0 {
		t.Error("(1,2) should equal (1,2)")
	}
	if Ints(1, 2, 3).Compare(Ints(1, 2)) != 1 {
		t.Error("longer tuple with equal prefix sorts after")
	}
}

func TestTupleEqual(t *testing.T) {
	if !Ints(1, 2).Equal(Ints(1, 2)) {
		t.Error("equal tuples reported unequal")
	}
	if Ints(1, 2).Equal(Ints(1)) {
		t.Error("different arities reported equal")
	}
	if Ints(1).Equal(Tuple{String("1")}) {
		t.Error("different kinds reported equal")
	}
}
