package relation

// ShardOf returns the shard in [0, n) owning the tuple, hashing the value
// at column pos with the same inlined FNV-32a bucketing the parallel
// operators' partitioner uses (partitionByKey), so shard routing at ingest
// time and intra-operator partitioning at query time agree on placement.
// n <= 1 always returns 0.
func (t Tuple) ShardOf(pos, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		fnvOffset32 = 2166136261
		fnvPrime32  = 16777619
	)
	var stack [16]byte
	buf := t[pos].appendKey(stack[:0])
	h := uint32(fnvOffset32)
	for _, b := range buf {
		h ^= uint32(b)
		h *= fnvPrime32
	}
	return int(h % uint32(n))
}
