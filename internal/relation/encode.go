package relation

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV writes the relation as tab-separated text: a header line with the
// attribute names, then one line per tuple in deterministic (sorted) order.
// Integer values print bare; string values are prefixed with "s:" so the two
// kinds round-trip unambiguously (an integer-looking string like "42" writes
// as "s:42").
func (r *Relation) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(strings.Join(r.schema.Attrs(), "\t") + "\n"); err != nil {
		return err
	}
	for _, t := range r.SortedRows() {
		cells := make([]string, len(t))
		for i, v := range t {
			cells[i] = encodeCell(v)
		}
		if _, err := bw.WriteString(strings.Join(cells, "\t") + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeCell(v Value) string {
	if v.Kind() == KindInt {
		return strconv.FormatInt(v.AsInt(), 10)
	}
	return "s:" + v.AsString()
}

// ReadTSV reads a relation written by WriteTSV (or hand-authored in the same
// format): the first line names the attributes; each further non-empty line
// is one tuple. Cells parse as integers unless prefixed with "s:", which
// strips the prefix and yields a string value. Duplicate tuples collapse.
func ReadTSV(rd io.Reader) (*Relation, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("relation: empty TSV input")
	}
	header := strings.Split(strings.TrimRight(sc.Text(), "\r\n"), "\t")
	schema, err := NewSchema(header...)
	if err != nil {
		return nil, fmt.Errorf("relation: bad TSV header: %v", err)
	}
	out := New(schema)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" {
			continue
		}
		cells := strings.Split(line, "\t")
		if len(cells) != schema.Len() {
			return nil, fmt.Errorf("relation: line %d has %d cells, want %d", lineNo, len(cells), schema.Len())
		}
		row := make(Tuple, len(cells))
		for i, c := range cells {
			v, err := decodeCell(c)
			if err != nil {
				return nil, fmt.Errorf("relation: line %d: %v", lineNo, err)
			}
			row[i] = v
		}
		out.MustInsert(row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func decodeCell(c string) (Value, error) {
	if strings.HasPrefix(c, "s:") {
		return String(c[2:]), nil
	}
	n, err := strconv.ParseInt(c, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("bad integer cell %q (string values need the s: prefix)", c)
	}
	return Int(n), nil
}
