package relation

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JSON wire format (the joind service API speaks this):
//
//	Value:    a JSON number (integers only) or a JSON string
//	Relation: {"attrs": ["A","B"], "tuples": [[1,2], [1,"x"]]}
//	Database: [Relation, Relation, ...]
//
// Numbers decode as exact int64s (json.Number, not float64), so large keys
// round-trip; non-integer numbers are rejected rather than truncated.
// Relations marshal their tuples in sorted order for deterministic output.

// MarshalJSON renders the value as a bare number or string.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.Kind() == KindInt {
		return json.Marshal(v.AsInt())
	}
	return json.Marshal(v.AsString())
}

// UnmarshalJSON reads a number (integer) or string.
func (v *Value) UnmarshalJSON(data []byte) error {
	var raw any
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case json.Number:
		n, err := x.Int64()
		if err != nil {
			return fmt.Errorf("relation: value %s is not a 64-bit integer (string values must be JSON strings)", x)
		}
		*v = Int(n)
		return nil
	case string:
		*v = String(x)
		return nil
	default:
		return fmt.Errorf("relation: value must be an integer or a string, got %T", raw)
	}
}

// relationJSON is the wire shape of a Relation.
type relationJSON struct {
	Attrs  []string `json:"attrs"`
	Tuples []Tuple  `json:"tuples"`
}

// MarshalJSON renders the relation as {"attrs": [...], "tuples": [...]}
// with tuples in deterministic (sorted) order.
func (r *Relation) MarshalJSON() ([]byte, error) {
	return json.Marshal(relationJSON{Attrs: r.schema.Attrs(), Tuples: r.SortedRows()})
}

// UnmarshalJSON reads the wire shape into r, replacing its contents.
// Duplicate tuples collapse (set semantics), and arity mismatches are
// rejected with the offending tuple index.
func (r *Relation) UnmarshalJSON(data []byte) error {
	var raw relationJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	schema, err := NewSchema(raw.Attrs...)
	if err != nil {
		return err
	}
	out := New(schema)
	for i, t := range raw.Tuples {
		if err := out.Insert(t); err != nil {
			return fmt.Errorf("relation: tuple %d: %w", i, err)
		}
	}
	// Field-wise assignment: copying the struct would copy its atomic field.
	r.schema, r.rows = out.schema, out.rows
	r.seen.Store(out.seen.Load())
	return nil
}

// MarshalJSON renders the database as a JSON array of its relations in
// index order.
func (d *Database) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.rels)
}

// UnmarshalJSON reads a JSON array of relations into d, replacing its
// contents. At least one relation is required (a database scheme is a
// nonempty multiset).
func (d *Database) UnmarshalJSON(data []byte) error {
	var rels []*Relation
	if err := json.Unmarshal(data, &rels); err != nil {
		return err
	}
	db, err := NewDatabase(rels...)
	if err != nil {
		return err
	}
	*d = *db
	return nil
}
