package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMergeJoinMatchesHashJoinRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	schemes := []string{"AB", "BC", "ABC", "CD", "AD", "A", "ABCD"}
	for trial := 0; trial < 200; trial++ {
		l := randRel(rng, schemes[rng.Intn(len(schemes))], rng.Intn(15), 3)
		r := randRel(rng, schemes[rng.Intn(len(schemes))], rng.Intn(15), 3)
		hash := Join(l, r)
		merge := MergeJoin(l, r)
		if !hash.Equal(merge) {
			t.Fatalf("trial %d: merge join disagrees with hash join:\n%s\nvs\n%s", trial, merge, hash)
		}
		if !hash.Schema().Equal(merge.Schema()) {
			t.Fatalf("trial %d: output schemas differ: %v vs %v", trial, hash.Schema(), merge.Schema())
		}
	}
}

func TestMergeJoinProduct(t *testing.T) {
	l := mkRel(t, "A", []int64{1}, []int64{2})
	r := mkRel(t, "B", []int64{3}, []int64{4}, []int64{5})
	if got := MergeJoin(l, r); got.Len() != 6 {
		t.Errorf("product size = %d, want 6", got.Len())
	}
}

func TestMergeJoinDoesNotMutateInputs(t *testing.T) {
	l := mkRel(t, "AB", []int64{3, 1}, []int64{1, 2}, []int64{2, 3})
	before := append([]Tuple(nil), l.Rows()...)
	MergeJoin(l, l)
	for i, row := range l.Rows() {
		if !row.Equal(before[i]) {
			t.Fatal("MergeJoin reordered its input rows")
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	r := New(MustSchema("id", "name", "n"))
	r.MustInsert(Tuple{Int(1), String("ann"), Int(10)})
	r.MustInsert(Tuple{Int(2), String("42"), Int(-5)}) // integer-looking string
	r.MustInsert(Tuple{Int(3), String(""), Int(0)})    // empty string

	var buf bytes.Buffer
	if err := r.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Errorf("round trip changed the relation:\n%s\nvs\n%s", back, r)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"dup header", "A\tA\n"},
		{"arity", "A\tB\n1\n"},
		{"bad int", "A\n1x\n"},
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadTSVSkipsBlankLines(t *testing.T) {
	r, err := ReadTSV(strings.NewReader("A\tB\n1\t2\n\n3\t4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestWriteTSVDeterministic(t *testing.T) {
	r := New(SchemaOfRunes("A"))
	for _, v := range []int64{5, 1, 3} {
		r.MustInsert(Ints(v))
	}
	var a, b bytes.Buffer
	if err := r.WriteTSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteTSV not deterministic")
	}
	if a.String() != "A\n1\n3\n5\n" {
		t.Errorf("WriteTSV = %q", a.String())
	}
}
