package relation

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// manifestName is the file listing a stored database's relations in scheme
// order.
const manifestName = "MANIFEST"

// WriteDatabase stores the database under dir: one TSV file per relation
// plus a MANIFEST listing the files in scheme order. The directory is
// created if needed; existing files with the same names are overwritten.
func WriteDatabase(db *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var manifest strings.Builder
	for i := 0; i < db.Len(); i++ {
		rel := db.Relation(i)
		name := fmt.Sprintf("r%02d_%s.tsv", i+1, fileSafe(rel.Schema().String()))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := rel.WriteTSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		manifest.WriteString(name + "\n")
	}
	return os.WriteFile(filepath.Join(dir, manifestName), []byte(manifest.String()), 0o644)
}

// ReadDatabase loads a database stored by WriteDatabase.
func ReadDatabase(dir string) (*Database, error) {
	mf, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("relation: no database manifest in %s: %v", dir, err)
	}
	defer mf.Close()
	var rels []*Relation
	sc := bufio.NewScanner(mf)
	for sc.Scan() {
		name := strings.TrimSpace(sc.Text())
		if name == "" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		rel, err := ReadTSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("relation: %s: %v", name, err)
		}
		rels = append(rels, rel)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewDatabase(rels...)
}

// fileSafe maps a schema string to a file-name-safe fragment.
func fileSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '(', ')', ',', ' ', '/':
			return '_'
		}
		return r
	}, s)
}
