package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Tuple is a row of values laid out according to some Schema's column order.
type Tuple []Value

// Ints builds a tuple of integer values; convenient for generators and tests.
func Ints(vs ...int64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = Int(v)
	}
	return t
}

// Strs builds a tuple of string values.
func Strs(vs ...string) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = String(v)
	}
	return t
}

// Equal reports whether two tuples have the same length and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// key returns the injective byte encoding of the whole tuple.
func (t Tuple) key() string {
	var buf []byte
	for _, v := range t {
		buf = v.appendKey(buf)
	}
	return string(buf)
}

// keyAt returns the injective byte encoding of the tuple restricted to the
// given column positions, in the order given.
func (t Tuple) keyAt(pos []int) string {
	var buf []byte
	for _, p := range pos {
		buf = t[p].appendKey(buf)
	}
	return string(buf)
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a set of tuples over a Schema. The zero value is not usable;
// construct with New. Tuples are deduplicated on insertion, so Len is always
// a set cardinality — the quantity the paper's cost model counts.
//
// The dedup index is built lazily: relations constructed from rows already
// known to be distinct (NewFromDistinctRows, partition merges) pay for it
// only if Insert, Contains, or an Equal receiver actually needs it.
type Relation struct {
	schema *Schema
	rows   []Tuple
	seen   atomic.Pointer[seenSet]
}

// seenSet is the dedup index: the key-encoded tuples currently in rows.
type seenSet = map[string]struct{}

// New returns an empty relation over the given schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// NewFromRows returns a relation over schema containing the given rows
// (deduplicated). It returns an error on an arity mismatch.
func NewFromRows(schema *Schema, rows []Tuple) (*Relation, error) {
	r := New(schema)
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// NewFromDistinctRows returns a relation over schema that takes ownership
// of rows without re-deduplicating them — the caller asserts the rows are
// pairwise distinct (e.g. a merge of hash-partitioned outputs, disjoint by
// construction). Arity is still checked. The dedup index is built lazily on
// first use; passing duplicate rows violates the set invariant silently.
func NewFromDistinctRows(schema *Schema, rows []Tuple) (*Relation, error) {
	for _, row := range rows {
		if len(row) != schema.Len() {
			return nil, fmt.Errorf("relation: tuple arity %d does not match schema %s (arity %d)",
				len(row), schema, schema.Len())
		}
	}
	return &Relation{schema: schema, rows: rows}, nil
}

// index returns the key set over the current rows, building it on first
// use. Concurrent readers (Contains, Equal) may race to build it; the
// compare-and-swap makes that safe (both build the same set, one wins).
// Mutation via Insert was never safe to run concurrently with readers and
// still is not.
func (r *Relation) index() seenSet {
	if p := r.seen.Load(); p != nil {
		return *p
	}
	m := make(seenSet, len(r.rows))
	for _, t := range r.rows {
		m[t.key()] = struct{}{}
	}
	r.seen.CompareAndSwap(nil, &m)
	return *r.seen.Load()
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of (distinct) tuples — |R| in the paper's notation.
func (r *Relation) Len() int { return len(r.rows) }

// IsEmpty reports whether the relation has no tuples.
func (r *Relation) IsEmpty() bool { return len(r.rows) == 0 }

// Rows returns the underlying tuples. Callers must not modify the returned
// slice or its tuples.
func (r *Relation) Rows() []Tuple { return r.rows }

// Insert adds a tuple, ignoring duplicates. It returns an error if the
// tuple's arity does not match the schema.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != r.schema.Len() {
		return fmt.Errorf("relation: tuple arity %d does not match schema %s (arity %d)",
			len(t), r.schema, r.schema.Len())
	}
	k := t.key()
	idx := r.index()
	if _, dup := idx[k]; dup {
		return nil
	}
	idx[k] = struct{}{}
	r.rows = append(r.rows, t)
	return nil
}

// MustInsert is Insert that panics on arity mismatch; for generators whose
// arity is correct by construction.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Contains reports whether the relation holds the given tuple.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.schema.Len() {
		return false
	}
	_, ok := r.index()[t.key()]
	return ok
}

// Clone returns a deep-enough copy: the row slice is copied; tuples are
// shared (they are treated as immutable). The clone's dedup index is
// rebuilt lazily if needed.
func (r *Relation) Clone() *Relation {
	return &Relation{
		schema: r.schema,
		rows:   append([]Tuple(nil), r.rows...),
	}
}

// Equal reports whether r and s are the same set of tuples over set-equal
// schemas (column order may differ; values are compared by attribute name).
func (r *Relation) Equal(s *Relation) bool {
	if !r.schema.AttrSet().Equal(s.schema.AttrSet()) {
		return false
	}
	if r.Len() != s.Len() {
		return false
	}
	// Reorder s's columns to r's order, then test membership.
	pos, err := s.schema.Positions(r.schema.Attrs())
	if err != nil {
		return false
	}
	for _, row := range s.rows {
		re := make(Tuple, len(pos))
		for i, p := range pos {
			re[i] = row[p]
		}
		if !r.Contains(re) {
			return false
		}
	}
	return true
}

// SortedRows returns the tuples in lexicographic order; for deterministic
// output in tests, goldens, and printing.
func (r *Relation) SortedRows() []Tuple {
	out := append([]Tuple(nil), r.rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the relation as a small table; intended for debugging and
// examples, not for large relations.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%d tuples]", r.schema, r.Len())
	const maxShown = 20
	rows := r.SortedRows()
	for i, t := range rows {
		if i == maxShown {
			fmt.Fprintf(&b, "\n  ... (%d more)", len(rows)-maxShown)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(t.String())
	}
	return b.String()
}
