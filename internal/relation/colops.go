package relation

import (
	"fmt"

	"repro/internal/govern"
)

// Vectorized batch kernels over ColBlocks: join, semijoin, and projection
// operating on dictionary codes instead of tuples. Each kernel mirrors its
// tuple-map counterpart in ops.go exactly — same output schema, same
// build/probe side choice, same governor op name, and the same Visit call
// per probe row — so the governor cannot tell the two apart: charge totals,
// MaxIntermediateTuples boundaries, and abort points coincide. The
// differential gauntlet in columnardiff_test.go enforces this.
//
// Matching across blocks works by code remapping: for every common column,
// the probe side's sorted dictionary is merged once against the build
// side's (O(|dictL| + |dictR|)), yielding probe-code → build-code (or -1
// when the value is absent and the row can never match). After that, all
// per-row work is uint32 comparisons and integer-keyed map operations; with
// one or two join columns the codes pack collision-free into a single
// uint64 key, so the probe loop performs no allocation at all.

// JoinBlocksGoverned computes the natural join l ⋈ r over column blocks.
// The output schema is l's columns followed by r's columns not in l, and
// every output column shares its source block's dictionary by reference —
// joining never copies or re-encodes values.
func JoinBlocksGoverned(g *govern.Governor, l, r *ColBlock) (*ColBlock, error) {
	scope, err := g.Begin("relation.Join")
	if err != nil {
		return nil, err
	}
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	var rOnlyPos []int
	for i, a := range r.schema.Attrs() {
		if !l.schema.Has(a) {
			rOnlyPos = append(rOnlyPos, i)
		}
	}
	out := newJoinedBlock(joinSchema(l.schema, r.schema), l, r, rOnlyPos)

	if common.IsEmpty() {
		for i := 0; i < l.n; i++ {
			for j := 0; j < r.n; j++ {
				out.appendJoined(l, r, i, j, rOnlyPos)
				if err := scope.Visit(out.n); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)
	if l.n <= r.n {
		// Build on l, probe with r (the smaller side is hashed, as in
		// hashJoinInto). Output rows still read (l row, r-only columns).
		ht := buildCodeHash(l, lPos)
		probe := keyCols(r, rPos)
		remaps := remapCols(r, rPos, l, lPos)
		for j := 0; j < r.n; j++ {
			for _, i := range ht.lookup(probe, remaps, j) {
				out.appendJoined(l, r, int(i), j, rOnlyPos)
			}
			if err := scope.Visit(out.n); err != nil {
				return nil, err
			}
		}
	} else {
		ht := buildCodeHash(r, rPos)
		probe := keyCols(l, lPos)
		remaps := remapCols(l, lPos, r, rPos)
		for i := 0; i < l.n; i++ {
			for _, j := range ht.lookup(probe, remaps, i) {
				out.appendJoined(l, r, i, int(j), rOnlyPos)
			}
			if err := scope.Visit(out.n); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SemijoinBlocksGoverned computes l ⋉ r over column blocks: the rows of l
// with at least one match in r. The output shares l's schema and
// dictionaries; only code vectors are written.
func SemijoinBlocksGoverned(g *govern.Governor, l, r *ColBlock) (*ColBlock, error) {
	scope, err := g.Begin("relation.Semijoin")
	if err != nil {
		return nil, err
	}
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	out := newSelectedBlock(l)
	if common.IsEmpty() {
		if r.n > 0 {
			for i := 0; i < l.n; i++ {
				out.appendFrom(l, i)
				if err := scope.Visit(out.n); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)
	lCols, rCols := keyCols(l, lPos), keyCols(r, rPos)
	if l.n <= r.n {
		// Hash the smaller (left) side: collect l's keys, scan r marking
		// which have support, then emit the supported l rows — the same
		// |l|-bounded-memory shape as the sequential operator.
		support := newCodeSet(len(lPos), l.n)
		for i := 0; i < l.n; i++ {
			support.put(lCols, i)
		}
		remaps := remapCols(r, rPos, l, lPos)
		for j := 0; j < r.n; j++ {
			support.mark(rCols, remaps, j)
			if err := scope.Visit(out.n); err != nil {
				return nil, err
			}
		}
		for i := 0; i < l.n; i++ {
			if support.marked(lCols, nil, i) {
				out.appendFrom(l, i)
			}
			if err := scope.Visit(out.n); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	keys := newCodeSet(len(rPos), r.n)
	for j := 0; j < r.n; j++ {
		keys.put(rCols, j)
	}
	remaps := remapCols(l, lPos, r, rPos)
	for i := 0; i < l.n; i++ {
		if keys.has(lCols, remaps, i) {
			out.appendFrom(l, i)
		}
		if err := scope.Visit(out.n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ProjectBlocksGoverned computes π_attrs(b) over a column block,
// deduplicating on packed dictionary codes. Output columns share the
// source columns' dictionaries.
func ProjectBlocksGoverned(g *govern.Governor, b *ColBlock, attrs AttrSet) (*ColBlock, error) {
	if !b.schema.AttrSet().ContainsAll(attrs) {
		return nil, fmt.Errorf("relation: projection attributes %s not all in schema %s",
			attrs, b.schema)
	}
	scope, err := g.Begin("relation.Project")
	if err != nil {
		return nil, err
	}
	pos, _ := b.schema.Positions(attrs)
	out := &ColBlock{schema: MustSchema(attrs...), cols: make([]column, len(pos))}
	for k, p := range pos {
		out.cols[k].dict = b.cols[p].dict
	}
	cols := keyCols(b, pos)
	seen := newCodeSet(len(pos), b.n)
	for i := 0; i < b.n; i++ {
		if seen.putNew(cols, i) {
			for k, p := range pos {
				out.cols[k].codes = append(out.cols[k].codes, b.cols[p].codes[i])
			}
			out.n++
		}
		if err := scope.Visit(out.n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// newJoinedBlock prepares the output block of a join: l's columns then r's
// rOnlyPos columns, each sharing its source dictionary.
func newJoinedBlock(schema *Schema, l, r *ColBlock, rOnlyPos []int) *ColBlock {
	out := &ColBlock{schema: schema, cols: make([]column, len(l.cols)+len(rOnlyPos))}
	for c := range l.cols {
		out.cols[c].dict = l.cols[c].dict
	}
	for k, p := range rOnlyPos {
		out.cols[len(l.cols)+k].dict = r.cols[p].dict
	}
	return out
}

// appendJoined appends the output row (l row i, r row j's rOnlyPos columns).
func (out *ColBlock) appendJoined(l, r *ColBlock, i, j int, rOnlyPos []int) {
	nl := len(l.cols)
	for c := 0; c < nl; c++ {
		out.cols[c].codes = append(out.cols[c].codes, l.cols[c].codes[i])
	}
	for k, p := range rOnlyPos {
		out.cols[nl+k].codes = append(out.cols[nl+k].codes, r.cols[p].codes[j])
	}
	out.n++
}

// newSelectedBlock prepares an output block selecting rows of src: same
// schema, shared dictionaries, empty code vectors.
func newSelectedBlock(src *ColBlock) *ColBlock {
	out := &ColBlock{schema: src.schema, cols: make([]column, len(src.cols))}
	for c := range src.cols {
		out.cols[c].dict = src.cols[c].dict
	}
	return out
}

// appendFrom appends row i of src.
func (out *ColBlock) appendFrom(src *ColBlock, i int) {
	for c := range src.cols {
		out.cols[c].codes = append(out.cols[c].codes, src.cols[c].codes[i])
	}
	out.n++
}

// remapCols builds, for every key column, probe-code → build-code (or -1
// when the probe value is absent from the build dictionary). One sorted
// merge per column; after this, cross-block matching is pure integer work.
func remapCols(from *ColBlock, fromPos []int, to *ColBlock, toPos []int) [][]int32 {
	out := make([][]int32, len(fromPos))
	for k := range fromPos {
		out[k] = remapDict(from.cols[fromPos[k]].dict, to.cols[toPos[k]].dict)
	}
	return out
}

// remapDict merges two sorted dictionaries: out[i] is from[i]'s code in to,
// or -1.
func remapDict(from, to []Value) []int32 {
	out := make([]int32, len(from))
	j := 0
	for i, v := range from {
		for j < len(to) && to[j].Compare(v) < 0 {
			j++
		}
		if j < len(to) && to[j].Equal(v) {
			out[i] = int32(j)
		} else {
			out[i] = -1
		}
	}
	return out
}

// packedKeyAt packs row i's codes over the key columns into one uint64 —
// collision-free for up to two columns (each code is 32 bits). remaps maps
// each column's codes into the build side's code space; nil means the row's
// codes are already in that space. ok is false when a code has no image, in
// which case the row cannot match anything.
func packedKeyAt(cols [][]uint32, remaps [][]int32, i int) (key uint64, ok bool) {
	for k, codes := range cols {
		c := codes[i]
		if remaps != nil {
			m := remaps[k][c]
			if m < 0 {
				return 0, false
			}
			c = uint32(m)
		}
		key = key<<32 | uint64(c)
	}
	return key, true
}

// wideKeyAt is packedKeyAt for three or more key columns: the codes are
// appended big-endian to buf (reset first), yielding an injective byte key.
func wideKeyAt(buf []byte, cols [][]uint32, remaps [][]int32, i int) ([]byte, bool) {
	buf = buf[:0]
	for k, codes := range cols {
		c := codes[i]
		if remaps != nil {
			m := remaps[k][c]
			if m < 0 {
				return buf, false
			}
			c = uint32(m)
		}
		buf = append(buf, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
	}
	return buf, true
}

// keyCols gathers the code columns of b at the given positions.
func keyCols(b *ColBlock, pos []int) [][]uint32 {
	cols := make([][]uint32, len(pos))
	for k, p := range pos {
		cols[k] = b.cols[p].codes
	}
	return cols
}

// codeHash is the join build table: build-row indexes keyed by packed codes
// (uint64 map up to two key columns, byte-string map beyond).
type codeHash struct {
	packed map[uint64][]int32
	wide   map[string][]int32
	buf    []byte
}

// buildCodeHash indexes b's rows on the key columns at pos.
func buildCodeHash(b *ColBlock, pos []int) *codeHash {
	h := &codeHash{}
	cols := keyCols(b, pos)
	if len(pos) <= 2 {
		h.packed = make(map[uint64][]int32, b.n)
		for i := 0; i < b.n; i++ {
			k, _ := packedKeyAt(cols, nil, i)
			h.packed[k] = append(h.packed[k], int32(i))
		}
		return h
	}
	h.wide = make(map[string][]int32, b.n)
	for i := 0; i < b.n; i++ {
		h.buf, _ = wideKeyAt(h.buf, cols, nil, i)
		h.wide[string(h.buf)] = append(h.wide[string(h.buf)], int32(i))
	}
	return h
}

// lookup returns the build rows matching probe row i, read from the probe
// side's code columns and translated through remaps. A probe whose codes
// have no image in the build dictionaries returns nil without touching the
// map. With packed keys the whole call is allocation-free.
func (h *codeHash) lookup(probeCols [][]uint32, remaps [][]int32, i int) []int32 {
	if h.packed != nil {
		k, ok := packedKeyAt(probeCols, remaps, i)
		if !ok {
			return nil
		}
		return h.packed[k]
	}
	buf, ok := wideKeyAt(h.buf, probeCols, remaps, i)
	h.buf = buf
	if !ok {
		return nil
	}
	return h.wide[string(buf)]
}

// codeSet is a set (with a mark bit) over packed code keys: the semijoin
// support table and the projection dedup table.
type codeSet struct {
	packed map[uint64]bool
	wide   map[string]bool
	buf    []byte
}

// newCodeSet prepares an empty set over ncols key columns, sized for n rows.
func newCodeSet(ncols, n int) *codeSet {
	s := &codeSet{}
	if ncols <= 2 {
		s.packed = make(map[uint64]bool, n)
	} else {
		s.wide = make(map[string]bool, n)
	}
	return s
}

// put inserts row i's key (unmarked), keeping an existing mark.
func (s *codeSet) put(cols [][]uint32, i int) {
	if s.packed != nil {
		k, _ := packedKeyAt(cols, nil, i)
		if _, present := s.packed[k]; !present {
			s.packed[k] = false
		}
		return
	}
	s.buf, _ = wideKeyAt(s.buf, cols, nil, i)
	if _, present := s.wide[string(s.buf)]; !present {
		s.wide[string(s.buf)] = false
	}
}

// putNew inserts row i's key and reports whether it was absent — the
// projection dedup step.
func (s *codeSet) putNew(cols [][]uint32, i int) bool {
	if s.packed != nil {
		k, _ := packedKeyAt(cols, nil, i)
		if _, dup := s.packed[k]; dup {
			return false
		}
		s.packed[k] = true
		return true
	}
	s.buf, _ = wideKeyAt(s.buf, cols, nil, i)
	if _, dup := s.wide[string(s.buf)]; dup {
		return false
	}
	s.wide[string(s.buf)] = true
	return true
}

// mark sets the mark bit for row i's key if the key is present (the
// semijoin "interesting" check); rows whose codes have no image in the key
// space cannot match and are skipped.
func (s *codeSet) mark(cols [][]uint32, remaps [][]int32, i int) {
	if s.packed != nil {
		if k, ok := packedKeyAt(cols, remaps, i); ok {
			if _, interesting := s.packed[k]; interesting {
				s.packed[k] = true
			}
		}
		return
	}
	buf, ok := wideKeyAt(s.buf, cols, remaps, i)
	s.buf = buf
	if ok {
		if _, interesting := s.wide[string(buf)]; interesting {
			s.wide[string(buf)] = true
		}
	}
}

// marked reports row i's mark bit.
func (s *codeSet) marked(cols [][]uint32, remaps [][]int32, i int) bool {
	if s.packed != nil {
		k, ok := packedKeyAt(cols, remaps, i)
		return ok && s.packed[k]
	}
	buf, ok := wideKeyAt(s.buf, cols, remaps, i)
	s.buf = buf
	return ok && s.wide[string(buf)]
}

// has reports whether row i's key is present (marked or not).
func (s *codeSet) has(cols [][]uint32, remaps [][]int32, i int) bool {
	if s.packed != nil {
		k, ok := packedKeyAt(cols, remaps, i)
		if !ok {
			return false
		}
		_, present := s.packed[k]
		return present
	}
	buf, ok := wideKeyAt(s.buf, cols, remaps, i)
	s.buf = buf
	if !ok {
		return false
	}
	_, present := s.wide[string(buf)]
	return present
}
