package relation

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/govern"
)

// Differential tests for the columnar batch kernels: JoinBlocksGoverned,
// SemijoinBlocksGoverned, and ProjectBlocksGoverned must be extensionally
// indistinguishable from the tuple-map operators — same result set, same
// governed tuple totals, same budget-abort boundary — over the full schema
// overlap spectrum (schemePairs, including the disjoint Cartesian pair).
// The tuple-map operators are the oracle; these tests are what lets the
// engine lead its degradation ladder with the columnar evaluator.

// roundTrip encodes, validates, and returns the block for r, failing the
// test on any invariant violation.
func roundTrip(t *testing.T, r *Relation) *ColBlock {
	t.Helper()
	b := FromRelation(r)
	if err := b.Validate(); err != nil {
		t.Fatalf("FromRelation(%s) invalid: %v", r.Schema(), err)
	}
	return b
}

func TestColumnarJoinMatchesJoinRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		pair := schemePairs[rng.Intn(len(schemePairs))]
		l := randRel(rng, pair[0], rng.Intn(40), 3)
		r := randRel(rng, pair[1], rng.Intn(40), 3)
		want := Join(l, r)
		out, err := JoinBlocksGoverned(nil, roundTrip(t, l), roundTrip(t, r))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("trial %d (%s ⋈ %s): output block invalid: %v", trial, pair[0], pair[1], err)
		}
		if got := out.ToRelation(); !got.Equal(want) {
			t.Fatalf("trial %d (%s ⋈ %s): columnar join %d tuples, sequential %d",
				trial, pair[0], pair[1], got.Len(), want.Len())
		}
	}
}

func TestColumnarSemijoinMatchesSemijoinRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 300; trial++ {
		pair := schemePairs[rng.Intn(len(schemePairs))]
		l := randRel(rng, pair[0], rng.Intn(40), 3)
		r := randRel(rng, pair[1], rng.Intn(40), 3)
		want := Semijoin(l, r)
		out, err := SemijoinBlocksGoverned(nil, roundTrip(t, l), roundTrip(t, r))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("trial %d (%s ⋉ %s): output block invalid: %v", trial, pair[0], pair[1], err)
		}
		if got := out.ToRelation(); !got.Equal(want) {
			t.Fatalf("trial %d (%s ⋉ %s): columnar semijoin %d tuples, sequential %d",
				trial, pair[0], pair[1], got.Len(), want.Len())
		}
	}
}

func TestColumnarProjectMatchesProjectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	schemes := []string{"ABCD", "AB", "A"}
	for trial := 0; trial < 300; trial++ {
		scheme := schemes[rng.Intn(len(schemes))]
		r := randRel(rng, scheme, rng.Intn(60), 2) // tiny domain: many duplicates
		var attrs AttrSet
		for _, a := range r.Schema().Attrs() {
			if rng.Intn(2) == 0 {
				attrs = append(attrs, a)
			}
		}
		if len(attrs) == 0 {
			attrs = AttrSet{r.Schema().Attrs()[0]}
		}
		want, err := Project(r, attrs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		out, err := ProjectBlocksGoverned(nil, roundTrip(t, r), attrs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("trial %d (π_%v %s): output block invalid: %v", trial, attrs, scheme, err)
		}
		if got := out.ToRelation(); !got.Equal(want) {
			t.Fatalf("trial %d (π_%v %s): columnar project %d tuples, sequential %d",
				trial, attrs, scheme, got.Len(), want.Len())
		}
	}
}

// TestColumnarGovernedChargesSequentialTotals is the charging-equivalence
// property: on success each columnar kernel charges exactly the tuple total
// its tuple-map counterpart does, under the same operator name — budgets,
// fair-share carving, and §2.3 cost accounting cannot tell them apart.
func TestColumnarGovernedChargesSequentialTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	for trial := 0; trial < 150; trial++ {
		pair := schemePairs[rng.Intn(len(schemePairs))]
		l := randRel(rng, pair[0], 1+rng.Intn(30), 3)
		r := randRel(rng, pair[1], 1+rng.Intn(30), 3)

		seqG := govern.New(govern.Limits{MaxTuples: 1 << 40})
		seqOut, err := JoinGoverned(seqG, l, r)
		if err != nil {
			t.Fatalf("trial %d sequential join: %v", trial, err)
		}
		colG := govern.New(govern.Limits{MaxTuples: 1 << 40})
		colOut, err := JoinBlocksGoverned(colG, roundTrip(t, l), roundTrip(t, r))
		if err != nil {
			t.Fatalf("trial %d columnar join: %v", trial, err)
		}
		if !colOut.ToRelation().Equal(seqOut) {
			t.Fatalf("trial %d: join results differ", trial)
		}
		if colG.Produced() != seqG.Produced() {
			t.Fatalf("trial %d: columnar join charged %d tuples, sequential %d",
				trial, colG.Produced(), seqG.Produced())
		}

		seqG = govern.New(govern.Limits{MaxTuples: 1 << 40})
		seqSemi, err := SemijoinGoverned(seqG, l, r)
		if err != nil {
			t.Fatalf("trial %d sequential semijoin: %v", trial, err)
		}
		colG = govern.New(govern.Limits{MaxTuples: 1 << 40})
		colSemi, err := SemijoinBlocksGoverned(colG, roundTrip(t, l), roundTrip(t, r))
		if err != nil {
			t.Fatalf("trial %d columnar semijoin: %v", trial, err)
		}
		if !colSemi.ToRelation().Equal(seqSemi) {
			t.Fatalf("trial %d: semijoin results differ", trial)
		}
		if colG.Produced() != seqG.Produced() {
			t.Fatalf("trial %d: columnar semijoin charged %d tuples, sequential %d",
				trial, colG.Produced(), seqG.Produced())
		}
	}
}

// TestColumnarGovernedBudgetAbortsCoincide checks the abort boundary per
// kernel: a budget of exactly the sequential output size succeeds, one
// tuple less aborts with govern.ErrTupleBudget and no partial result —
// the same boundary the tuple-map operator aborts at.
func TestColumnarGovernedBudgetAbortsCoincide(t *testing.T) {
	rng := rand.New(rand.NewSource(2028))
	tried := 0
	for trial := 0; tried < 60; trial++ {
		if trial > 2000 {
			t.Fatal("could not generate enough joins with nonempty output")
		}
		l := randRel(rng, "ABC", 5+rng.Intn(25), 3)
		r := randRel(rng, "BCD", 5+rng.Intn(25), 3)
		total := int64(Join(l, r).Len())
		if total == 0 {
			continue
		}
		tried++
		lb, rb := roundTrip(t, l), roundTrip(t, r)
		okG := govern.New(govern.Limits{MaxTuples: total, CheckEvery: 1})
		if out, err := JoinBlocksGoverned(okG, lb, rb); err != nil || out.Len() != int(total) {
			t.Fatalf("trial %d: budget == output must succeed, got %v", trial, err)
		}
		abortG := govern.New(govern.Limits{MaxTuples: total - 1, CheckEvery: 1})
		out, err := JoinBlocksGoverned(abortG, lb, rb)
		if !errors.Is(err, govern.ErrTupleBudget) {
			t.Fatalf("trial %d: budget == output-1 must abort with ErrTupleBudget, got %v", trial, err)
		}
		if out != nil {
			t.Fatalf("trial %d: abort leaked a partial result (%d tuples)", trial, out.Len())
		}
	}
}

// TestColumnarJoinEdgeCases pins the degenerate inputs: empty sides, self
// joins, identical schemas, and the pure Cartesian path.
func TestColumnarJoinEdgeCases(t *testing.T) {
	join := func(l, r *Relation) *Relation {
		out, err := JoinBlocksGoverned(nil, roundTrip(t, l), roundTrip(t, r))
		if err != nil {
			t.Fatal(err)
		}
		return out.ToRelation()
	}
	empty := New(SchemaOfRunes("AB"))
	one := mkRel(t, "BC", []int64{1, 2})
	if got := join(empty, one); got.Len() != 0 {
		t.Fatalf("empty ⋈ r: got %d tuples", got.Len())
	}
	if got := join(one, empty); got.Len() != 0 {
		t.Fatalf("l ⋈ empty: got %d tuples", got.Len())
	}
	if got := join(one, one); !got.Equal(one) {
		t.Fatal("r ⋈ r: want r itself")
	}
	// Pure Cartesian product: disjoint schemas.
	a := mkRel(t, "AB", []int64{1, 2}, []int64{3, 4})
	b := mkRel(t, "CD", []int64{5, 6}, []int64{7, 8})
	if got, want := join(a, b), Join(a, b); !got.Equal(want) {
		t.Fatalf("Cartesian: columnar %d tuples, sequential %d", got.Len(), want.Len())
	}
	// Degenerate semijoin against an empty right side with no common attrs.
	semi, err := SemijoinBlocksGoverned(nil, roundTrip(t, a), roundTrip(t, New(SchemaOfRunes("CD"))))
	if err != nil {
		t.Fatal(err)
	}
	if semi.Len() != 0 {
		t.Fatalf("l ⋉ empty-disjoint: got %d tuples, want 0", semi.Len())
	}
}

// TestColumnarStringValues exercises the mixed int/string dictionary order:
// dictionaries sort all ints before all strings, and joins across blocks
// whose dictionaries disagree on codes must still match on values.
func TestColumnarStringValues(t *testing.T) {
	l := New(SchemaOfRunes("AB"))
	l.MustInsert(Tuple{String("x"), Int(1)})
	l.MustInsert(Tuple{Int(7), String("y")})
	l.MustInsert(Tuple{String("a"), String("y")})
	r := New(SchemaOfRunes("BC"))
	r.MustInsert(Tuple{Int(1), String("q")})
	r.MustInsert(Tuple{String("y"), Int(3)})
	r.MustInsert(Tuple{String("z"), Int(4)})
	want := Join(l, r)
	out, err := JoinBlocksGoverned(nil, roundTrip(t, l), roundTrip(t, r))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.ToRelation(); !got.Equal(want) {
		t.Fatalf("mixed-type join: columnar %d tuples, sequential %d", got.Len(), want.Len())
	}
}
