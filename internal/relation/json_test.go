package relation

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRelationJSONRoundTrip(t *testing.T) {
	r := New(MustSchema("A", "B"))
	r.MustInsert(Tuple{Int(1), String("x")})
	r.MustInsert(Tuple{Int(-9007199254740993), String("")}) // below float64 exactness
	r.MustInsert(Tuple{Int(2), String("42")})               // integer-looking string

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Relation
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(&back) {
		t.Errorf("round trip changed the relation:\n%s\n%s", r, &back)
	}
}

func TestDatabaseJSONRoundTrip(t *testing.T) {
	mk := func(a, b string) *Relation {
		r := New(MustSchema(a, b))
		for i := int64(0); i < 5; i++ {
			r.MustInsert(Ints(i, i+1))
		}
		return r
	}
	db := MustDatabase(mk("A", "B"), mk("B", "C"))
	data, err := json.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	var back Database
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("len %d, want %d", back.Len(), db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		if !db.Relation(i).Equal(back.Relation(i)) {
			t.Errorf("relation %d differs after round trip", i)
		}
	}
}

func TestRelationJSONDecodeLiteral(t *testing.T) {
	var r Relation
	if err := json.Unmarshal([]byte(`{"attrs":["A","B"],"tuples":[[1,2],[1,2],[3,"x"]]}`), &r); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 { // duplicate [1,2] collapses
		t.Errorf("len = %d, want 2 (set semantics)", r.Len())
	}
	if !r.Contains(Tuple{Int(3), String("x")}) {
		t.Error("mixed-kind tuple missing")
	}
}

func TestRelationJSONRejectsBadInput(t *testing.T) {
	for name, input := range map[string]string{
		"float value":     `{"attrs":["A"],"tuples":[[1.5]]}`,
		"bool value":      `{"attrs":["A"],"tuples":[[true]]}`,
		"arity mismatch":  `{"attrs":["A","B"],"tuples":[[1]]}`,
		"duplicate attrs": `{"attrs":["A","A"],"tuples":[]}`,
		"empty attr":      `{"attrs":[""],"tuples":[]}`,
	} {
		var r Relation
		if err := json.Unmarshal([]byte(input), &r); err == nil {
			t.Errorf("%s: accepted %s", name, input)
		}
	}
	var d Database
	if err := json.Unmarshal([]byte(`[]`), &d); err == nil || !strings.Contains(err.Error(), "at least one") {
		t.Errorf("empty database accepted (err = %v)", err)
	}
}

func TestValueJSONExactInt64(t *testing.T) {
	// 2^53+1 is not representable as float64; json.Number must preserve it.
	const big = int64(9007199254740993)
	var v Value
	if err := json.Unmarshal([]byte("9007199254740993"), &v); err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindInt || v.AsInt() != big {
		t.Errorf("got %v, want exact %d", v, big)
	}
}
