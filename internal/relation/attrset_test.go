package relation

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewAttrSetSortsAndDedupes(t *testing.T) {
	s := NewAttrSet("C", "A", "B", "A", "C")
	if !s.Equal(AttrSet{"A", "B", "C"}) {
		t.Errorf("NewAttrSet = %v", s)
	}
	if NewAttrSet().Len() != 0 {
		t.Error("empty NewAttrSet not empty")
	}
}

func TestAttrSetOfRunes(t *testing.T) {
	if got := AttrSetOfRunes("GHA"); !got.Equal(AttrSet{"A", "G", "H"}) {
		t.Errorf("AttrSetOfRunes(GHA) = %v", got)
	}
}

func TestAttrSetContains(t *testing.T) {
	s := NewAttrSet("A", "C")
	if !s.Contains("A") || !s.Contains("C") || s.Contains("B") {
		t.Errorf("Contains wrong on %v", s)
	}
	if !s.ContainsAll(NewAttrSet("A")) || s.ContainsAll(NewAttrSet("A", "B")) {
		t.Error("ContainsAll wrong")
	}
	if !s.ContainsAll(nil) {
		t.Error("every set contains the empty set")
	}
}

func TestAttrSetOps(t *testing.T) {
	a := NewAttrSet("A", "B", "C")
	b := NewAttrSet("B", "C", "D")
	if got := a.Union(b); !got.Equal(NewAttrSet("A", "B", "C", "D")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewAttrSet("B", "C")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(NewAttrSet("A")) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps false for overlapping sets")
	}
	if NewAttrSet("A").Overlaps(NewAttrSet("B")) {
		t.Error("Overlaps true for disjoint sets")
	}
	if a.Overlaps(nil) || AttrSet(nil).Overlaps(a) {
		t.Error("empty set overlaps nothing")
	}
}

func TestAttrSetImmutability(t *testing.T) {
	a := NewAttrSet("A", "B")
	b := NewAttrSet("C")
	_ = a.Union(b)
	_ = a.Intersect(b)
	_ = a.Diff(b)
	if !a.Equal(NewAttrSet("A", "B")) || !b.Equal(NewAttrSet("C")) {
		t.Error("set operations modified their receivers")
	}
}

func TestUnionAll(t *testing.T) {
	got := UnionAll(NewAttrSet("A"), NewAttrSet("B"), NewAttrSet("A", "C"))
	if !got.Equal(NewAttrSet("A", "B", "C")) {
		t.Errorf("UnionAll = %v", got)
	}
	if UnionAll().Len() != 0 {
		t.Error("UnionAll() not empty")
	}
}

func TestAttrSetString(t *testing.T) {
	if got := NewAttrSet("B", "A").String(); got != "AB" {
		t.Errorf("single-char set String = %q, want AB", got)
	}
	if got := NewAttrSet("city", "year").String(); got != "{city,year}" {
		t.Errorf("multi-char set String = %q", got)
	}
	if got := AttrSet(nil).String(); got != "{}" {
		t.Errorf("empty set String = %q", got)
	}
}

// randomAttrSet draws a set from a small alphabet so overlaps are common.
func randomAttrSet(rng *rand.Rand) AttrSet {
	n := rng.Intn(6)
	attrs := make([]string, n)
	for i := range attrs {
		attrs[i] = string(rune('A' + rng.Intn(8)))
	}
	return NewAttrSet(attrs...)
}

// TestAttrSetAlgebraProperties property-tests the set-algebra laws the rest
// of the system leans on.
func TestAttrSetAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b, c := randomAttrSet(rng), randomAttrSet(rng), randomAttrSet(rng)
		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatalf("union not commutative: %v %v", a, b)
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatalf("intersect not commutative: %v %v", a, b)
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			t.Fatalf("union not associative: %v %v %v", a, b, c)
		}
		// Distribution: a ∩ (b ∪ c) = (a ∩ b) ∪ (a ∩ c).
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			t.Fatalf("intersection does not distribute: %v %v %v", a, b, c)
		}
		// Diff partition: (a−b) ∪ (a∩b) = a, and they are disjoint.
		if !a.Diff(b).Union(a.Intersect(b)).Equal(a) {
			t.Fatalf("diff/intersect do not partition: %v %v", a, b)
		}
		if a.Diff(b).Overlaps(b) {
			t.Fatalf("a−b overlaps b: %v %v", a, b)
		}
		// Overlaps agrees with intersection emptiness.
		if a.Overlaps(b) != !a.Intersect(b).IsEmpty() {
			t.Fatalf("Overlaps inconsistent with Intersect: %v %v", a, b)
		}
		// The result is always sorted and duplicate-free.
		for _, s := range []AttrSet{a.Union(b), a.Intersect(b), a.Diff(b)} {
			if !sort.StringsAreSorted(s) {
				t.Fatalf("unsorted result %v", s)
			}
			for k := 1; k < len(s); k++ {
				if s[k] == s[k-1] {
					t.Fatalf("duplicate in result %v", s)
				}
			}
		}
	}
}

// TestAttrSetQuickCanonical: NewAttrSet is canonical — building from any
// permutation with duplicates yields the identical representation.
func TestAttrSetQuickCanonical(t *testing.T) {
	f := func(raw []uint8) bool {
		attrs := make([]string, len(raw))
		for i, r := range raw {
			attrs[i] = string(rune('A' + int(r)%10))
		}
		a := NewAttrSet(attrs...)
		// Shuffle and duplicate.
		doubled := append(append([]string{}, attrs...), attrs...)
		b := NewAttrSet(doubled...)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
