package relation

import (
	"fmt"
	"sort"
)

// ColBlock is the columnar twin of Relation: the same set of tuples stored
// column-major with per-column dictionary encoding. Each column keeps a
// sorted dictionary of its distinct values and one uint32 code per row, so
// row i of column c decodes as Dict(c)[Codes(c)[i]]. Because every
// dictionary is sorted by Value.Compare, code order within a column is
// value order — the property the wcoj trie builder and the vectorized
// kernels exploit to compare and sort rows on integers instead of Values.
//
// A ColBlock built by FromRelation has minimal dictionaries (every entry is
// referenced); kernel outputs share their inputs' dictionaries by reference
// and may leave entries unreferenced. Both forms satisfy the invariants the
// fuzz target checks: strictly sorted dictionaries, every code in range,
// and all columns the same length. ColBlocks are immutable once built and
// share dictionaries freely, so they must never be mutated in place.
type ColBlock struct {
	schema *Schema
	cols   []column
	n      int
}

// column is one dictionary-encoded column: dict is sorted strictly
// ascending by Value.Compare; codes holds one index into dict per row.
type column struct {
	dict  []Value
	codes []uint32
}

// FromRelation encodes r as a ColBlock with minimal per-column
// dictionaries. The block holds the same tuple set in r's row order.
func FromRelation(r *Relation) *ColBlock {
	n := r.Len()
	b := &ColBlock{schema: r.schema, cols: make([]column, r.schema.Len()), n: n}
	rows := r.Rows()
	for c := range b.cols {
		ids := make(map[Value]uint32, 16)
		var dict []Value
		codes := make([]uint32, n)
		for i, row := range rows {
			v := row[c]
			id, ok := ids[v]
			if !ok {
				id = uint32(len(dict))
				ids[v] = id
				dict = append(dict, v)
			}
			codes[i] = id
		}
		// Sort the dictionary and remap the provisional first-seen codes to
		// ranks, so code order equals value order.
		rank := sortDict(dict)
		if rank != nil {
			for i, code := range codes {
				codes[i] = rank[code]
			}
		}
		b.cols[c] = column{dict: dict, codes: codes}
	}
	return b
}

// sortDict sorts dict ascending in place and returns old-code → new-code,
// or nil when the dictionary was already sorted (the common case for
// generated integer data inserted in order).
func sortDict(dict []Value) []uint32 {
	sorted := true
	for i := 1; i < len(dict); i++ {
		if dict[i-1].Compare(dict[i]) >= 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return nil
	}
	type entry struct {
		v   Value
		old uint32
	}
	entries := make([]entry, len(dict))
	for i, v := range dict {
		entries[i] = entry{v, uint32(i)}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].v.Compare(entries[j].v) < 0 })
	rank := make([]uint32, len(dict))
	for newCode, e := range entries {
		dict[newCode] = e.v
		rank[e.old] = uint32(newCode)
	}
	return rank
}

// ToRelation decodes the block back into a tuple-map Relation over the same
// schema. It is the inverse of FromRelation up to row order (both sides are
// sets). Blocks hold distinct rows by construction — FromRelation starts
// from a set, joins of sets retaining every column stay sets, and
// projections dedup — so decoding skips the per-tuple dedup probe and the
// relation's index is built lazily if a consumer needs it.
func (b *ColBlock) ToRelation() *Relation {
	rows := make([]Tuple, b.n)
	for i := 0; i < b.n; i++ {
		row := make(Tuple, len(b.cols))
		for c := range b.cols {
			col := &b.cols[c]
			row[c] = col.dict[col.codes[i]]
		}
		rows[i] = row
	}
	return &Relation{schema: b.schema, rows: rows}
}

// Schema returns the block's schema.
func (b *ColBlock) Schema() *Schema { return b.schema }

// Len returns the number of rows.
func (b *ColBlock) Len() int { return b.n }

// Dict returns column c's sorted dictionary. Callers must not modify it —
// dictionaries are shared across blocks.
func (b *ColBlock) Dict(c int) []Value { return b.cols[c].dict }

// Codes returns column c's per-row dictionary codes. Callers must not
// modify the slice.
func (b *ColBlock) Codes(c int) []uint32 { return b.cols[c].codes }

// Value decodes the value at row i, column c.
func (b *ColBlock) Value(i, c int) Value {
	col := &b.cols[c]
	return col.dict[col.codes[i]]
}

// FindCode returns the dictionary code of v in column c and whether the
// column contains it, by binary search over the sorted dictionary.
func (b *ColBlock) FindCode(c int, v Value) (uint32, bool) {
	dict := b.cols[c].dict
	i := sort.Search(len(dict), func(i int) bool { return dict[i].Compare(v) >= 0 })
	if i < len(dict) && dict[i].Equal(v) {
		return uint32(i), true
	}
	return 0, false
}

// Validate checks the block's structural invariants: equal column lengths,
// strictly sorted dictionaries, and every code in range. The fuzz target
// and the differential tests call it; kernels assume it.
func (b *ColBlock) Validate() error {
	if len(b.cols) != b.schema.Len() {
		return fmt.Errorf("colblock: %d columns for schema %s (arity %d)", len(b.cols), b.schema, b.schema.Len())
	}
	for c := range b.cols {
		col := &b.cols[c]
		if len(col.codes) != b.n {
			return fmt.Errorf("colblock: column %d has %d codes, block has %d rows", c, len(col.codes), b.n)
		}
		for i := 1; i < len(col.dict); i++ {
			if col.dict[i-1].Compare(col.dict[i]) >= 0 {
				return fmt.Errorf("colblock: column %d dictionary not strictly sorted at %d", c, i)
			}
		}
		for i, code := range col.codes {
			if int(code) >= len(col.dict) {
				return fmt.Errorf("colblock: column %d row %d code %d out of range [0,%d)", c, i, code, len(col.dict))
			}
		}
	}
	return nil
}

// SelVec is a reusable selection vector: the row indexes of a ColBlock that
// survive a chain of filters. Reset and Filter reuse the vector's capacity,
// so a steady-state scan loop performs no allocation at all — the property
// the AllocsPerRun regression tests pin.
type SelVec struct {
	idx []int32
}

// Reset fills the vector with 0..n-1, growing its buffer only when n
// exceeds the current capacity.
func (s *SelVec) Reset(n int) {
	if cap(s.idx) < n {
		s.idx = make([]int32, n)
	}
	s.idx = s.idx[:n]
	for i := range s.idx {
		s.idx[i] = int32(i)
	}
}

// Len returns the number of selected rows.
func (s *SelVec) Len() int { return len(s.idx) }

// Indices returns the selected row indexes. The slice aliases the vector's
// buffer and is invalidated by the next Reset or Filter.
func (s *SelVec) Indices() []int32 { return s.idx }

// Filter compacts the vector in place to the rows keep accepts.
func (s *SelVec) Filter(keep func(row int32) bool) {
	out := s.idx[:0]
	for _, i := range s.idx {
		if keep(i) {
			out = append(out, i)
		}
	}
	s.idx = out
}

// FilterEq narrows sel to the rows of column c equal to v: one dictionary
// binary search, then a tight scan comparing uint32 codes — no Value
// comparison and no allocation in the loop.
func (b *ColBlock) FilterEq(sel *SelVec, c int, v Value) {
	code, ok := b.FindCode(c, v)
	if !ok {
		sel.idx = sel.idx[:0]
		return
	}
	codes := b.cols[c].codes
	out := sel.idx[:0]
	for _, i := range sel.idx {
		if codes[i] == code {
			out = append(out, i)
		}
	}
	sel.idx = out
}
