package relation

import (
	"context"
	"errors"
	"testing"

	"repro/internal/govern"
)

// skewed returns a relation over (a, b) with n tuples all sharing b = 0, so
// joining two of them on b yields n² tuples — a hash join degenerating to a
// product.
func skewed(t *testing.T, a, b string, n int) *Relation {
	t.Helper()
	r := New(MustSchema(a, b))
	for i := 0; i < n; i++ {
		r.MustInsert(Ints(int64(i), 0))
	}
	return r
}

func TestJoinGovernedBudgetAbort(t *testing.T) {
	l := skewed(t, "A", "B", 100)
	r := skewed(t, "C", "B", 100)
	g := govern.New(govern.Limits{MaxTuples: 500})
	out, err := JoinGoverned(g, l, r) // |l ⋈ r| = 10000 ≫ 500
	if out != nil {
		t.Fatalf("aborted join returned a partial result (%d tuples)", out.Len())
	}
	if !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("got %v, want ErrTupleBudget", err)
	}
	// The governor stops counting shortly after the budget: the overshoot
	// is bounded by one probe row's matches (≤ |build side|), not by the
	// full n² output — the abort really is mid-join.
	if got := g.Produced(); got > 500+int64(l.Len()) {
		t.Fatalf("governor charged %d tuples; abort was not prompt", got)
	}
}

func TestJoinGovernedProductAbort(t *testing.T) {
	l := skewed(t, "A", "B", 100)
	r := skewed(t, "C", "D", 100) // disjoint schemas: pure Cartesian product
	g := govern.New(govern.Limits{MaxTuples: 500})
	out, err := JoinGoverned(g, l, r)
	if out != nil || !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("product abort: out=%v err=%v", out, err)
	}
	// The pure product path checks every tuple, so the overshoot is ≤ 1.
	if got := g.Produced(); got > 501 {
		t.Fatalf("product charged %d tuples before aborting", got)
	}
}

func TestJoinGovernedIntermediateBudget(t *testing.T) {
	l := skewed(t, "A", "B", 50)
	r := skewed(t, "C", "B", 50)
	g := govern.New(govern.Limits{MaxIntermediateTuples: 100})
	_, err := JoinGoverned(g, l, r)
	if !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("got %v, want ErrTupleBudget", err)
	}
	var le *govern.LimitError
	if !errors.As(err, &le) || le.Limit != "MaxIntermediateTuples" {
		t.Fatalf("error %v is not a MaxIntermediateTuples LimitError", err)
	}
}

func TestJoinGovernedUnderLimitMatchesJoin(t *testing.T) {
	l := skewed(t, "A", "B", 20)
	r := skewed(t, "C", "B", 20)
	g := govern.New(govern.Limits{MaxTuples: 1000})
	got, err := JoinGoverned(g, l, r)
	if err != nil {
		t.Fatal(err)
	}
	want := Join(l, r)
	if !got.Equal(want) {
		t.Fatalf("governed join differs from plain join: %d vs %d tuples", got.Len(), want.Len())
	}
	if g.Produced() != int64(want.Len()) {
		t.Fatalf("charged %d tuples for a %d-tuple join", g.Produced(), want.Len())
	}
}

func TestGovernedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := govern.New(govern.Limits{Context: ctx})
	l := skewed(t, "A", "B", 10)
	r := skewed(t, "C", "B", 10)

	if _, err := JoinGoverned(g, l, r); !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("join: got %v, want ErrCanceled", err)
	}
	if _, err := SemijoinGoverned(g, l, r); !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("semijoin: got %v, want ErrCanceled", err)
	}
	if _, err := ProjectGoverned(g, l, MustSchema("A").AttrSet()); !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("project: got %v, want ErrCanceled", err)
	}
	lr := skewed(t, "C", "D", 10)
	if _, err := CrossProductGoverned(g, l, lr); !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("cross product: got %v, want ErrCanceled", err)
	}
}

func TestProjectGovernedBudget(t *testing.T) {
	r := skewed(t, "A", "B", 100)
	g := govern.New(govern.Limits{MaxTuples: 10})
	out, err := ProjectGoverned(g, r, MustSchema("A").AttrSet())
	if out != nil || !errors.Is(err, govern.ErrTupleBudget) {
		t.Fatalf("project abort: out=%v err=%v", out, err)
	}
}

func TestSemijoinGovernedChargesOutput(t *testing.T) {
	l := skewed(t, "A", "B", 30)
	r := skewed(t, "C", "B", 30)
	g := govern.New(govern.Limits{MaxTuples: 100})
	out, err := SemijoinGoverned(g, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 30 || g.Produced() != 30 {
		t.Fatalf("semijoin produced %d, charged %d; want 30/30", out.Len(), g.Produced())
	}
}

func TestIndexGovernedAbort(t *testing.T) {
	l := skewed(t, "A", "B", 100)
	r := skewed(t, "C", "B", 100)
	ix, err := NewIndex(r, MustSchema("B").AttrSet())
	if err != nil {
		t.Fatal(err)
	}
	g := govern.New(govern.Limits{MaxTuples: 500})
	out, jerr := JoinWithIndexGoverned(g, l, ix)
	if out != nil || !errors.Is(jerr, govern.ErrTupleBudget) {
		t.Fatalf("indexed join abort: out=%v err=%v", out, jerr)
	}

	g2 := govern.New(govern.Limits{MaxTuples: 1_000_000})
	got, err := JoinWithIndexGoverned(g2, l, ix)
	if err != nil {
		t.Fatal(err)
	}
	if want := Join(l, r); !got.Equal(want) {
		t.Fatal("governed indexed join differs from plain join")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g3 := govern.New(govern.Limits{Context: ctx})
	if _, err := SemijoinWithIndexGoverned(g3, l, ix); !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("indexed semijoin: got %v, want ErrCanceled", err)
	}
}

func TestGovernedFailpointHook(t *testing.T) {
	boom := errors.New("boom")
	g := govern.New(govern.Limits{MaxTuples: 1_000_000})
	hits := 0
	g.SetFailpoint(func(op string) error {
		if op == "relation.Join" {
			hits++
			if hits == 2 {
				return boom
			}
		}
		return nil
	})
	l := skewed(t, "A", "B", 5)
	r := skewed(t, "C", "B", 5)
	if _, err := JoinGoverned(g, l, r); err != nil {
		t.Fatalf("first join: %v", err)
	}
	if _, err := JoinGoverned(g, l, r); !errors.Is(err, boom) {
		t.Fatalf("second join: got %v, want injected fault", err)
	}
}
