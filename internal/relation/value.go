// Package relation implements a small in-memory relational engine with set
// semantics: values, tuples, schemas, relations, and the operators the paper
// needs (natural join, semijoin, antijoin, projection, selection, union,
// difference, Cartesian product), together with the pairwise/global
// consistency checks used in its examples.
//
// Relations are sets of tuples: insertion and projection deduplicate, so the
// cardinalities that feed the paper's cost model (§2.3) are always set sizes.
package relation

import (
	"fmt"
	"strconv"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer value.
	KindInt Kind = iota
	// KindString is a string value.
	KindString
)

// Value is a single attribute value: either an integer or a string.
// The zero Value is the integer 0.
//
// Value is a compact struct rather than an interface so that tuples are
// contiguous and hashing/encoding avoids per-value allocation.
type Value struct {
	s    string
	i    int64
	kind Kind
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{i: v, kind: KindInt} }

// String returns a string Value.
func String(s string) Value { return Value{s: s, kind: KindString} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it is meaningful only when Kind is KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsString returns the string payload; it is meaningful only when Kind is KindString.
func (v Value) AsString() string { return v.s }

// Equal reports whether v and w are the same value (same kind and payload).
func (v Value) Equal(w Value) bool {
	return v.kind == w.kind && v.i == w.i && v.s == w.s
}

// Compare orders values: all integers before all strings, then by payload.
// It returns -1, 0, or +1.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	default:
		switch {
		case v.s < w.s:
			return -1
		case v.s > w.s:
			return 1
		}
		return 0
	}
}

// GoString implements fmt.GoStringer.
func (v Value) GoString() string {
	if v.kind == KindInt {
		return fmt.Sprintf("relation.Int(%d)", v.i)
	}
	return fmt.Sprintf("relation.String(%q)", v.s)
}

// String renders the value for display.
func (v Value) String() string {
	if v.kind == KindInt {
		return strconv.FormatInt(v.i, 10)
	}
	return v.s
}

// appendKey appends a self-delimiting encoding of v to dst. The encoding is
// injective: distinct values produce distinct byte sequences, and sequences of
// values encode injectively when concatenated (each value is length-prefixed).
func (v Value) appendKey(dst []byte) []byte {
	if v.kind == KindInt {
		dst = append(dst, 'i')
		u := uint64(v.i)
		dst = append(dst,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
		return dst
	}
	dst = append(dst, 's')
	n := uint32(len(v.s))
	dst = append(dst, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return append(dst, v.s...)
}
