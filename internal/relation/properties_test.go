package relation

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// relGen adapts the random-relation generator to testing/quick: quick
// drives the seeds, the properties hold for every draw.
type relGen struct {
	Seed   int64
	Scheme uint8
	Size   uint8
	Domain uint8
}

var propSchemes = []string{"AB", "BC", "ABC", "BCD", "AC", "CD"}

func (g relGen) left() *Relation {
	rng := rand.New(rand.NewSource(g.Seed))
	return randRel(rng, propSchemes[int(g.Scheme)%len(propSchemes)], int(g.Size%20), int(g.Domain%4)+1)
}

func (g relGen) right() *Relation {
	rng := rand.New(rand.NewSource(g.Seed ^ 0x5DEECE66D))
	return randRel(rng, propSchemes[int(g.Scheme/7)%len(propSchemes)], int(g.Size/3%20), int(g.Domain%4)+1)
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200}
}

// TestQuickSemijoinShrinks: l ⋉ r ⊆ l, always.
func TestQuickSemijoinShrinks(t *testing.T) {
	f := func(g relGen) bool {
		l, r := g.left(), g.right()
		s := Semijoin(l, r)
		if s.Len() > l.Len() {
			return false
		}
		for _, row := range s.Rows() {
			if !l.Contains(row) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickSemijoinIdempotent: (l ⋉ r) ⋉ r = l ⋉ r.
func TestQuickSemijoinIdempotent(t *testing.T) {
	f := func(g relGen) bool {
		l, r := g.left(), g.right()
		once := Semijoin(l, r)
		twice := Semijoin(once, r)
		return once.Equal(twice)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickSemijoinPreservesJoin: (l ⋉ r) ⋈ r = l ⋈ r — the identity the
// full reducer and Algorithm 2 both rely on.
func TestQuickSemijoinPreservesJoin(t *testing.T) {
	f := func(g relGen) bool {
		l, r := g.left(), g.right()
		return Join(Semijoin(l, r), r).Equal(Join(l, r))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickProjectIdempotent: π_X(π_X(r)) = π_X(r).
func TestQuickProjectIdempotent(t *testing.T) {
	f := func(g relGen, pick uint8) bool {
		l := g.left()
		attrs := l.Schema().AttrSet()
		var sub AttrSet
		for i, a := range attrs {
			if pick&(1<<uint(i%8)) != 0 {
				sub = sub.Union(NewAttrSet(a))
			}
		}
		once := MustProject(l, sub)
		twice := MustProject(once, sub)
		return once.Equal(twice)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinProjectBound: |π_X(l ⋈ r)| ≤ |l| when X ⊆ attrs(l) — the
// inequality at the heart of the paper's Theorem 2 proof.
func TestQuickJoinProjectBound(t *testing.T) {
	f := func(g relGen) bool {
		l, r := g.left(), g.right()
		p := MustProject(Join(l, r), l.Schema().AttrSet())
		return p.Len() <= l.Len()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinMonotone: adding tuples to an operand never removes result
// tuples.
func TestQuickJoinMonotone(t *testing.T) {
	f := func(g relGen, extra uint8) bool {
		l, r := g.left(), g.right()
		small := Join(l, r)
		bigger := l.Clone()
		rng := rand.New(rand.NewSource(int64(extra)))
		for i := 0; i < int(extra%5); i++ {
			row := make(Tuple, bigger.Schema().Len())
			for c := range row {
				row[c] = Int(int64(rng.Intn(4)))
			}
			bigger.MustInsert(row)
		}
		grown := Join(bigger, r)
		for _, row := range small.Rows() {
			if !grown.Contains(row) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionDiffComplement: (l − r) ∪ (l ∩ₛ r) = l where l ∩ₛ r is the
// set intersection computed as l − (l − r).
func TestQuickUnionDiffComplement(t *testing.T) {
	f := func(g relGen) bool {
		l := g.left()
		rng := rand.New(rand.NewSource(g.Seed + 7))
		r := randRel(rng, l.Schema().String(), int(g.Size%15), int(g.Domain%4)+1)
		minus, err := Diff(l, r)
		if err != nil {
			return false
		}
		inter, err := Diff(l, minus)
		if err != nil {
			return false
		}
		u, err := Union(minus, inter)
		if err != nil {
			return false
		}
		return u.Equal(l)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickMergeHashAgree re-checks MergeJoin ≡ Join under quick's driving.
func TestQuickMergeHashAgree(t *testing.T) {
	f := func(g relGen) bool {
		l, r := g.left(), g.right()
		return MergeJoin(l, r).Equal(Join(l, r))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickTSVRoundTrip: WriteTSV/ReadTSV is the identity on relations.
func TestQuickTSVRoundTrip(t *testing.T) {
	f := func(g relGen) bool {
		l := g.left()
		var buf bytes.Buffer
		if err := l.WriteTSV(&buf); err != nil {
			return false
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		return back.Equal(l)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
