package relation

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestFromRelationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2033))
	for trial := 0; trial < 100; trial++ {
		r := randRel(rng, "ABC", rng.Intn(50), 4)
		b := FromRelation(r)
		if err := b.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if b.Len() != r.Len() {
			t.Fatalf("trial %d: block has %d rows, relation %d", trial, b.Len(), r.Len())
		}
		if !b.ToRelation().Equal(r) {
			t.Fatalf("trial %d: round trip changed the relation", trial)
		}
	}
}

func TestFromRelationDictionariesMinimalAndSorted(t *testing.T) {
	r := mkRel(t, "AB",
		[]int64{5, 1}, []int64{3, 1}, []int64{5, 2}, []int64{9, 1})
	b := FromRelation(r)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Column A has values {3,5,9}, column B {1,2}; dictionaries are minimal.
	if got := len(b.Dict(0)); got != 3 {
		t.Errorf("dict A has %d entries, want 3", got)
	}
	if got := len(b.Dict(1)); got != 2 {
		t.Errorf("dict B has %d entries, want 2", got)
	}
	// Code order is value order: row decoding through Value matches dicts.
	for i := 0; i < b.Len(); i++ {
		for c := 0; c < 2; c++ {
			if !b.Value(i, c).Equal(b.Dict(c)[b.Codes(c)[i]]) {
				t.Fatalf("row %d col %d decodes inconsistently", i, c)
			}
		}
	}
}

func TestFindCode(t *testing.T) {
	r := mkRel(t, "A", []int64{10}, []int64{20}, []int64{30})
	b := FromRelation(r)
	for i, v := range []int64{10, 20, 30} {
		code, ok := b.FindCode(0, Int(v))
		if !ok || code != uint32(i) {
			t.Errorf("FindCode(%d) = %d,%v; want %d,true", v, code, ok, i)
		}
	}
	if _, ok := b.FindCode(0, Int(25)); ok {
		t.Error("FindCode found a value not in the column")
	}
	if _, ok := b.FindCode(0, String("10")); ok {
		t.Error("FindCode conflated Int(10) with String(\"10\")")
	}
}

func TestSelVecFilterEq(t *testing.T) {
	r := mkRel(t, "AB",
		[]int64{1, 1}, []int64{1, 2}, []int64{2, 1}, []int64{2, 2}, []int64{3, 1})
	b := FromRelation(r)
	var sel SelVec
	sel.Reset(b.Len())
	if sel.Len() != 5 {
		t.Fatalf("Reset(5) gives %d rows", sel.Len())
	}
	b.FilterEq(&sel, 0, Int(2)) // rows with A=2
	if sel.Len() != 2 {
		t.Fatalf("A=2 selects %d rows, want 2", sel.Len())
	}
	b.FilterEq(&sel, 1, Int(1)) // then B=1
	if sel.Len() != 1 {
		t.Fatalf("A=2 ∧ B=1 selects %d rows, want 1", sel.Len())
	}
	i := sel.Indices()[0]
	if !b.Value(int(i), 0).Equal(Int(2)) || !b.Value(int(i), 1).Equal(Int(1)) {
		t.Fatalf("selected row %d is not (2,1)", i)
	}
	// A value absent from the dictionary empties the selection.
	sel.Reset(b.Len())
	b.FilterEq(&sel, 0, Int(99))
	if sel.Len() != 0 {
		t.Fatalf("absent value selects %d rows", sel.Len())
	}
	// Filter-based compaction agrees with FilterEq.
	sel.Reset(b.Len())
	codes := b.Codes(1)
	sel.Filter(func(row int32) bool { return codes[row] == 0 })
	want := 3 // rows with B=1 (code 0, the smallest value)
	if sel.Len() != want {
		t.Fatalf("Filter on B's code 0 selects %d rows, want %d", sel.Len(), want)
	}
}

// TestSelVecZeroAllocs pins the selection-vector hot loop at zero
// allocations: once the vector has grown to capacity, Reset, Filter, and
// FilterEq never allocate again.
func TestSelVecZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2034))
	r := randRel(rng, "AB", 512, 8)
	b := FromRelation(r)
	n := b.Len()
	var sel SelVec
	sel.Reset(n) // warm: one growth to capacity n
	codes := b.Codes(0)
	keep := func(row int32) bool { return codes[row]%2 == 0 }
	v := b.Dict(1)[0]
	if avg := testing.AllocsPerRun(100, func() {
		sel.Reset(n)
		sel.Filter(keep)
		b.FilterEq(&sel, 1, v)
	}); avg != 0 {
		t.Fatalf("selection hot loop allocates %.1f times per run, want 0", avg)
	}
}

// TestKernelProbeZeroAllocs pins the join kernel's off-path: probing a
// prebuilt hash table with packed uint64 keys — hits and misses, including
// probes whose codes have no image in the build dictionary — allocates
// nothing per probe row.
func TestKernelProbeZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2035))
	build := randRel(rng, "AB", 256, 8)
	probe := randRel(rng, "BC", 256, 16) // wider domain: misses and no-image codes
	lb, rb := FromRelation(build), FromRelation(probe)
	common := lb.Schema().AttrSet().Intersect(rb.Schema().AttrSet())
	lPos, _ := lb.Schema().Positions(common)
	rPos, _ := rb.Schema().Positions(common)
	ht := buildCodeHash(lb, lPos)
	probeCols := keyCols(rb, rPos)
	remaps := remapCols(rb, rPos, lb, lPos)
	n := rb.Len()
	sink := 0
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < n; i++ {
			sink += len(ht.lookup(probeCols, remaps, i))
		}
	}); avg != 0 {
		t.Fatalf("packed-key probe loop allocates %.1f times per run, want 0", avg)
	}
	_ = sink
}

// TestColumnarJSONBoundaryInt64 checks boundary int64 values survive the
// full path the service exercises: JSON wire decode → tuple map →
// columnar dictionary → decode → JSON wire encode, with exact-value
// preservation (the PR 2 wire-format guarantee) and exact dictionary
// lookups at both extremes.
func TestColumnarJSONBoundaryInt64(t *testing.T) {
	wire := `{"attrs":["A","B"],"tuples":[` +
		`[-9223372036854775808,9223372036854775807],` +
		`[-9223372036854775807,9223372036854775806],` +
		`[-1,0],[0,1],[9223372036854775807,-9223372036854775808]]}`
	var r Relation
	if err := json.Unmarshal([]byte(wire), &r); err != nil {
		t.Fatal(err)
	}
	b := FromRelation(&r)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{math.MinInt64, math.MaxInt64} {
		for c := 0; c < 2; c++ {
			code, ok := b.FindCode(c, Int(v))
			if !ok {
				t.Fatalf("column %d dictionary lost boundary value %d", c, v)
			}
			if got := b.Dict(c)[code].AsInt(); got != v {
				t.Fatalf("column %d dictionary stores %d for %d", c, got, v)
			}
		}
	}
	back := b.ToRelation()
	if !back.Equal(&r) {
		t.Fatal("columnar round trip changed the relation")
	}
	out, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	var again Relation
	if err := json.Unmarshal(out, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Equal(&r) {
		t.Fatal("wire round trip after columnar pass changed the relation")
	}
	// The self-join through the columnar kernel preserves the exact values.
	joined, err := JoinBlocksGoverned(nil, b, b)
	if err != nil {
		t.Fatal(err)
	}
	if !joined.ToRelation().Equal(&r) {
		t.Fatal("columnar self-join changed boundary values")
	}
}
