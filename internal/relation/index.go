package relation

import (
	"fmt"

	"repro/internal/govern"
)

// Index is a hash index over a subset of a relation's attributes. Building
// one costs a single scan; lookups are O(matches). Programs that semijoin
// or join against the same relation repeatedly (full reducers, Algorithm 2
// programs that reuse an input several times) amortize the build across the
// probes.
//
// The index holds a reference to the relation's tuples at build time;
// inserting into the relation afterwards does not update the index — build
// indexes on relations you are done mutating.
type Index struct {
	rel     *Relation
	attrs   AttrSet
	pos     []int
	buckets map[string][]Tuple
}

// NewIndex builds a hash index on r over attrs, which must be a nonempty
// subset of r's schema.
func NewIndex(r *Relation, attrs AttrSet) (*Index, error) {
	if attrs.IsEmpty() {
		return nil, fmt.Errorf("relation: index needs at least one attribute")
	}
	if !r.Schema().AttrSet().ContainsAll(attrs) {
		return nil, fmt.Errorf("relation: index attributes %s not all in schema %s", attrs, r.Schema())
	}
	pos, _ := r.Schema().Positions(attrs)
	ix := &Index{
		rel:     r,
		attrs:   attrs,
		pos:     pos,
		buckets: make(map[string][]Tuple, r.Len()),
	}
	for _, t := range r.rows {
		k := t.keyAt(pos)
		ix.buckets[k] = append(ix.buckets[k], t)
	}
	return ix, nil
}

// Relation returns the indexed relation.
func (ix *Index) Relation() *Relation { return ix.rel }

// Attrs returns the indexed attribute set.
func (ix *Index) Attrs() AttrSet { return ix.attrs }

// Lookup returns the tuples whose indexed attributes equal key, which must
// list one value per indexed attribute in the index's (sorted) attribute
// order. The returned slice must not be modified.
func (ix *Index) Lookup(key Tuple) ([]Tuple, error) {
	if len(key) != len(ix.pos) {
		return nil, fmt.Errorf("relation: lookup key has %d values, index has %d attributes", len(key), len(ix.pos))
	}
	return ix.buckets[key.key()], nil
}

// Contains reports whether any tuple matches the key.
func (ix *Index) Contains(key Tuple) (bool, error) {
	ts, err := ix.Lookup(key)
	if err != nil {
		return false, err
	}
	return len(ts) > 0, nil
}

// JoinWithIndex joins l against the indexed relation, probing the index.
// The index must cover exactly the attributes l shares with the indexed
// relation (otherwise matches would be missed or spurious). The result
// equals Join(l, ix.Relation()).
func JoinWithIndex(l *Relation, ix *Index) (*Relation, error) {
	return JoinWithIndexGoverned(nil, l, ix)
}

// JoinWithIndexGoverned is JoinWithIndex charging output tuples against the
// governor, aborting with its typed error when a limit trips.
func JoinWithIndexGoverned(g *govern.Governor, l *Relation, ix *Index) (*Relation, error) {
	common := l.Schema().AttrSet().Intersect(ix.rel.Schema().AttrSet())
	if !common.Equal(ix.attrs) {
		return nil, fmt.Errorf("relation: index on %s cannot drive a join on %s", ix.attrs, common)
	}
	scope, err := g.Begin("relation.Join")
	if err != nil {
		return nil, err
	}
	lPos, _ := l.Schema().Positions(common)
	var rOnlyPos []int
	for i, a := range ix.rel.Schema().Attrs() {
		if !l.Schema().Has(a) {
			rOnlyPos = append(rOnlyPos, i)
		}
	}
	out := New(joinSchema(l.Schema(), ix.rel.Schema()))
	for _, lt := range l.rows {
		for _, rt := range ix.buckets[lt.keyAt(lPos)] {
			out.appendJoined(lt, rt, rOnlyPos)
		}
		if err := scope.Visit(out.Len()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SemijoinWithIndex computes l ⋉ ix.Relation() by probing the index; the
// index must cover exactly the shared attributes.
func SemijoinWithIndex(l *Relation, ix *Index) (*Relation, error) {
	return SemijoinWithIndexGoverned(nil, l, ix)
}

// SemijoinWithIndexGoverned is SemijoinWithIndex under a governor.
func SemijoinWithIndexGoverned(g *govern.Governor, l *Relation, ix *Index) (*Relation, error) {
	common := l.Schema().AttrSet().Intersect(ix.rel.Schema().AttrSet())
	if !common.Equal(ix.attrs) {
		return nil, fmt.Errorf("relation: index on %s cannot drive a semijoin on %s", ix.attrs, common)
	}
	scope, err := g.Begin("relation.Semijoin")
	if err != nil {
		return nil, err
	}
	lPos, _ := l.Schema().Positions(common)
	out := New(l.Schema())
	for _, lt := range l.rows {
		if len(ix.buckets[lt.keyAt(lPos)]) > 0 {
			out.MustInsert(lt)
		}
		if err := scope.Visit(out.Len()); err != nil {
			return nil, err
		}
	}
	return out, nil
}
