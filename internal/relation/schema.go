package relation

import (
	"fmt"
	"strings"
)

// Schema is an ordered list of distinct attribute names. The order fixes the
// column layout of tuples in a Relation; set-level reasoning uses AttrSet().
type Schema struct {
	attrs []string
	pos   map[string]int
}

// NewSchema builds a schema with the given attribute order. It returns an
// error if an attribute repeats or a name is empty.
func NewSchema(attrs ...string) (*Schema, error) {
	s := &Schema{
		attrs: append([]string(nil), attrs...),
		pos:   make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: empty attribute name at position %d", i)
		}
		if _, dup := s.pos[a]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q in schema", a)
		}
		s.pos[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for literals in tests and
// examples.
func MustSchema(attrs ...string) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// SchemaOfRunes builds a schema whose attributes are the runes of s in order;
// SchemaOfRunes("ABC") has columns A, B, C. This matches the paper's
// notation.
func SchemaOfRunes(s string) *Schema {
	attrs := make([]string, 0, len(s))
	for _, r := range s {
		attrs = append(attrs, string(r))
	}
	return MustSchema(attrs...)
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attrs returns the attributes in column order. The caller must not modify
// the returned slice.
func (s *Schema) Attrs() []string { return s.attrs }

// Attr returns the attribute at column i.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Has reports whether attr is a column of the schema.
func (s *Schema) Has(attr string) bool {
	_, ok := s.pos[attr]
	return ok
}

// Position returns the column index of attr and whether it exists.
func (s *Schema) Position(attr string) (int, bool) {
	i, ok := s.pos[attr]
	return i, ok
}

// AttrSet returns the schema's attributes as a set.
func (s *Schema) AttrSet() AttrSet { return NewAttrSet(s.attrs...) }

// Equal reports whether the schemas have the same attributes in the same
// order.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// EqualSet reports whether the schemas have the same attributes, ignoring
// order.
func (s *Schema) EqualSet(t *Schema) bool { return s.AttrSet().Equal(t.AttrSet()) }

// Positions returns the column indexes of the given attributes, in the order
// given. It returns an error naming the first attribute that is missing.
func (s *Schema) Positions(attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := s.pos[a]
		if !ok {
			return nil, fmt.Errorf("relation: attribute %q not in schema %s", a, s)
		}
		out[i] = p
	}
	return out, nil
}

// CommonPositions returns, for each attribute present in both s and t (in
// sorted attribute order), its column index in s and in t.
func CommonPositions(s, t *Schema) (inS, inT []int) {
	common := s.AttrSet().Intersect(t.AttrSet())
	inS = make([]int, len(common))
	inT = make([]int, len(common))
	for i, a := range common {
		inS[i], _ = s.Position(a)
		inT[i], _ = t.Position(a)
	}
	return inS, inT
}

// String renders the schema like its attribute set, preserving column order:
// "ABC" for single-character attributes, otherwise "(a,b,c)".
func (s *Schema) String() string {
	compact := true
	for _, a := range s.attrs {
		if len(a) != 1 {
			compact = false
			break
		}
	}
	if compact {
		return strings.Join(s.attrs, "")
	}
	return "(" + strings.Join(s.attrs, ",") + ")"
}
