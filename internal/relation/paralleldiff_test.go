package relation

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/govern"
)

// Differential tests: the partition-parallel operators must be extensionally
// indistinguishable from their sequential counterparts — same result, same
// governed tuple totals, same budget aborts — at every worker count. The
// parallel threshold is forced to 0 so even tiny random inputs take the
// partitioned path.

// workerSweep is the worker counts every differential property is checked
// at: sequential fallback, even/odd partition counts, and the host width.
func workerSweep() []int {
	sweep := []int{1, 2, 3, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		sweep = append(sweep, p)
	}
	return sweep
}

// schemePairs is the schema overlap spectrum the join/semijoin properties
// sample: partial overlap, containment, identity, single shared attribute,
// and disjoint (the Cartesian-product path).
var schemePairs = [][2]string{
	{"ABC", "BCD"},
	{"AB", "ABC"},
	{"ABC", "ABC"},
	{"AB", "BC"},
	{"A", "AB"},
	{"AB", "CD"},
}

func TestParallelJoinMatchesJoinRandom(t *testing.T) {
	defer SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1992))
	for trial := 0; trial < 200; trial++ {
		pair := schemePairs[rng.Intn(len(schemePairs))]
		l := randRel(rng, pair[0], rng.Intn(40), 3)
		r := randRel(rng, pair[1], rng.Intn(40), 3)
		want := Join(l, r)
		for _, w := range workerSweep() {
			got := ParallelJoin(l, r, w)
			if !got.Equal(want) {
				t.Fatalf("trial %d (%s ⋈ %s, %d workers): parallel join %d tuples, sequential %d",
					trial, pair[0], pair[1], w, got.Len(), want.Len())
			}
		}
	}
}

func TestParallelSemijoinMatchesSemijoinRandom(t *testing.T) {
	defer SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1993))
	for trial := 0; trial < 200; trial++ {
		pair := schemePairs[rng.Intn(len(schemePairs))]
		l := randRel(rng, pair[0], rng.Intn(40), 3)
		r := randRel(rng, pair[1], rng.Intn(40), 3)
		want := Semijoin(l, r)
		for _, w := range workerSweep() {
			got, err := ParallelSemijoinGoverned(nil, l, r, w)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d (%s ⋉ %s, %d workers): parallel semijoin %d tuples, sequential %d",
					trial, pair[0], pair[1], w, got.Len(), want.Len())
			}
		}
	}
}

func TestParallelProjectMatchesProjectRandom(t *testing.T) {
	defer SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1994))
	schemes := []string{"ABCD", "AB", "A"}
	for trial := 0; trial < 200; trial++ {
		scheme := schemes[rng.Intn(len(schemes))]
		r := randRel(rng, scheme, rng.Intn(60), 2) // tiny domain: many duplicates
		// Random nonempty attribute subset.
		var attrs AttrSet
		for _, a := range r.Schema().Attrs() {
			if rng.Intn(2) == 0 {
				attrs = append(attrs, a)
			}
		}
		if len(attrs) == 0 {
			attrs = AttrSet{r.Schema().Attrs()[0]}
		}
		want, err := Project(r, attrs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range workerSweep() {
			got, err := ParallelProjectGoverned(nil, r, attrs, w)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d (π_%v %s, %d workers): parallel project %d tuples, sequential %d",
					trial, attrs, scheme, w, got.Len(), want.Len())
			}
		}
	}
}

// TestParallelGovernedChargesSequentialTotals is the charging-equivalence
// property: on success a governed parallel operator charges exactly the
// tuple total its sequential counterpart does, so budgets, fair-share
// carving, and the §2.3 cost accounting cannot tell the two apart.
func TestParallelGovernedChargesSequentialTotals(t *testing.T) {
	defer SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1995))
	for trial := 0; trial < 100; trial++ {
		pair := schemePairs[rng.Intn(len(schemePairs))]
		l := randRel(rng, pair[0], 1+rng.Intn(30), 3)
		r := randRel(rng, pair[1], 1+rng.Intn(30), 3)

		seqG := govern.New(govern.Limits{MaxTuples: 1 << 40})
		seqOut, err := JoinGoverned(seqG, l, r)
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		for _, w := range workerSweep() {
			parG := govern.New(govern.Limits{MaxTuples: 1 << 40})
			parOut, err := ParallelJoinGoverned(parG, l, r, w)
			if err != nil {
				t.Fatalf("trial %d %d workers: %v", trial, w, err)
			}
			if !parOut.Equal(seqOut) {
				t.Fatalf("trial %d %d workers: results differ", trial, w)
			}
			if parG.Produced() != seqG.Produced() {
				t.Fatalf("trial %d %d workers: parallel charged %d tuples, sequential %d",
					trial, w, parG.Produced(), seqG.Produced())
			}
		}
	}
}

// TestParallelGovernedBudgetAbortsCoincide checks the abort boundary: a
// budget of exactly the output size succeeds in both executions, and one
// tuple less aborts both with govern.ErrTupleBudget and no partial result.
func TestParallelGovernedBudgetAbortsCoincide(t *testing.T) {
	defer SetParallelThreshold(0)()
	rng := rand.New(rand.NewSource(1996))
	tried := 0
	for trial := 0; tried < 50; trial++ {
		if trial > 2000 {
			t.Fatal("could not generate enough joins with nonempty output")
		}
		l := randRel(rng, "ABC", 5+rng.Intn(25), 3)
		r := randRel(rng, "BCD", 5+rng.Intn(25), 3)
		total := int64(Join(l, r).Len())
		if total == 0 {
			continue
		}
		tried++
		for _, w := range workerSweep() {
			// CheckEvery 1 keeps cancellation polling out of the way and makes
			// the budget check per-charge in both executions.
			okG := govern.New(govern.Limits{MaxTuples: total, CheckEvery: 1})
			if out, err := ParallelJoinGoverned(okG, l, r, w); err != nil || out.Len() != int(total) {
				t.Fatalf("trial %d %d workers: budget == output must succeed, got %v (out %v)", trial, w, err, out)
			}
			abortG := govern.New(govern.Limits{MaxTuples: total - 1, CheckEvery: 1})
			out, err := ParallelJoinGoverned(abortG, l, r, w)
			if !errors.Is(err, govern.ErrTupleBudget) {
				t.Fatalf("trial %d %d workers: budget == output-1 must abort with ErrTupleBudget, got %v", trial, w, err)
			}
			if out != nil {
				t.Fatalf("trial %d %d workers: abort leaked a partial result (%d tuples)", trial, w, out.Len())
			}
		}
	}
}

// TestParallelJoinEdgeCases pins the degenerate inputs the fuzzer and random
// trials may rarely hit.
func TestParallelJoinEdgeCases(t *testing.T) {
	defer SetParallelThreshold(0)()
	empty := New(SchemaOfRunes("AB"))
	one := mkRel(t, "BC", []int64{1, 2})
	for _, w := range workerSweep() {
		if got := ParallelJoin(empty, one, w); got.Len() != 0 {
			t.Fatalf("empty ⋈ r with %d workers: got %d tuples", w, got.Len())
		}
		if got := ParallelJoin(one, empty, w); got.Len() != 0 {
			t.Fatalf("l ⋈ empty with %d workers: got %d tuples", w, got.Len())
		}
		if got := ParallelJoin(one, one, w); !got.Equal(one) {
			t.Fatalf("r ⋈ r with %d workers: want r itself", w)
		}
	}
	// More workers than rows: partitions are mostly empty.
	small := mkRel(t, "AB", []int64{1, 2}, []int64{3, 4})
	other := mkRel(t, "BC", []int64{2, 5}, []int64{4, 6})
	if got := ParallelJoin(small, other, 16); !got.Equal(Join(small, other)) {
		t.Fatal("16 workers on 2 rows: result differs from sequential join")
	}
}
