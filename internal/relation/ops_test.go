package relation

import (
	"math/rand"
	"testing"
)

// mkRel builds a relation over single-char attrs from int rows.
func mkRel(t *testing.T, scheme string, rows ...[]int64) *Relation {
	t.Helper()
	r := New(SchemaOfRunes(scheme))
	for _, row := range rows {
		if err := r.Insert(Ints(row...)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	return r
}

// nestedLoopJoin is an independent reference implementation of natural join
// used to validate the hash join.
func nestedLoopJoin(l, r *Relation) *Relation {
	common := l.Schema().AttrSet().Intersect(r.Schema().AttrSet())
	attrs := append([]string(nil), l.Schema().Attrs()...)
	for _, a := range r.Schema().Attrs() {
		if !l.Schema().Has(a) {
			attrs = append(attrs, a)
		}
	}
	out := New(MustSchema(attrs...))
	for _, lt := range l.Rows() {
		for _, rt := range r.Rows() {
			match := true
			for _, a := range common {
				lp, _ := l.Schema().Position(a)
				rp, _ := r.Schema().Position(a)
				if !lt[lp].Equal(rt[rp]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row := make(Tuple, 0, len(attrs))
			row = append(row, lt...)
			for _, a := range r.Schema().Attrs() {
				if !l.Schema().Has(a) {
					rp, _ := r.Schema().Position(a)
					row = append(row, rt[rp])
				}
			}
			out.MustInsert(row)
		}
	}
	return out
}

func TestJoinBasic(t *testing.T) {
	l := mkRel(t, "AB", []int64{1, 10}, []int64{2, 20})
	r := mkRel(t, "BC", []int64{10, 100}, []int64{10, 101}, []int64{30, 300})
	got := Join(l, r)
	want := mkRel(t, "ABC", []int64{1, 10, 100}, []int64{1, 10, 101})
	if !got.Equal(want) {
		t.Errorf("Join = %s, want %s", got, want)
	}
}

func TestJoinColumnAlignment(t *testing.T) {
	// Right operand whose extra columns are not in sorted order relative to
	// its schema — regression test for the column-order bug where output
	// values were appended in sorted-attribute order instead of schema
	// order.
	l := mkRel(t, "AC", []int64{1, 5})
	r := New(SchemaOfRunes("CDB")) // columns C, D, B
	r.MustInsert(Ints(5, 7, 9))
	got := Join(l, r)
	// Output schema: A, C then D, B (r's order minus common C).
	wantSchema := MustSchema("A", "C", "D", "B")
	if !got.Schema().Equal(wantSchema) {
		t.Fatalf("schema = %v, want %v", got.Schema(), wantSchema)
	}
	if got.Len() != 1 || !got.Rows()[0].Equal(Ints(1, 5, 7, 9)) {
		t.Errorf("row = %v, want (1,5,7,9)", got.Rows()[0])
	}
}

func TestJoinNoCommonAttrsIsProduct(t *testing.T) {
	l := mkRel(t, "A", []int64{1}, []int64{2})
	r := mkRel(t, "B", []int64{10}, []int64{20}, []int64{30})
	got := Join(l, r)
	if got.Len() != 6 {
		t.Errorf("product has %d tuples, want 6", got.Len())
	}
}

func TestJoinEmptyOperand(t *testing.T) {
	l := mkRel(t, "AB")
	r := mkRel(t, "BC", []int64{1, 2})
	if got := Join(l, r); got.Len() != 0 {
		t.Errorf("join with empty operand has %d tuples", got.Len())
	}
	if got := Join(r, l); got.Len() != 0 {
		t.Errorf("join with empty operand has %d tuples", got.Len())
	}
}

func TestJoinSelf(t *testing.T) {
	r := mkRel(t, "AB", []int64{1, 2}, []int64{3, 4})
	got := Join(r, r)
	if !got.Equal(r) {
		t.Errorf("R ⋈ R = %s, want R", got)
	}
}

func TestJoinAgainstNestedLoopRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schemes := []string{"AB", "BC", "ABC", "CD", "AD", "BD", "A", "ABCD"}
	for trial := 0; trial < 200; trial++ {
		ls := schemes[rng.Intn(len(schemes))]
		rs := schemes[rng.Intn(len(schemes))]
		l := randRel(rng, ls, 1+rng.Intn(12), 3)
		r := randRel(rng, rs, 1+rng.Intn(12), 3)
		got := Join(l, r)
		want := nestedLoopJoin(l, r)
		if !got.Equal(want) {
			t.Fatalf("trial %d: Join(%s,%s) mismatch:\n%s\nvs\n%s", trial, ls, rs, got, want)
		}
	}
}

// randRel builds a random relation over single-char attrs.
func randRel(rng *rand.Rand, scheme string, size, domain int) *Relation {
	r := New(SchemaOfRunes(scheme))
	for i := 0; i < size; i++ {
		row := make(Tuple, r.Schema().Len())
		for c := range row {
			row[c] = Int(int64(rng.Intn(domain)))
		}
		r.MustInsert(row)
	}
	return r
}

func TestJoinCommutativeUpToColumnOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		l := randRel(rng, "ABC", 1+rng.Intn(10), 3)
		r := randRel(rng, "BCD", 1+rng.Intn(10), 3)
		if !Join(l, r).Equal(Join(r, l)) {
			t.Fatalf("trial %d: join not commutative", trial)
		}
	}
}

func TestJoinAssociativeUpToColumnOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a := randRel(rng, "AB", 1+rng.Intn(8), 3)
		b := randRel(rng, "BC", 1+rng.Intn(8), 3)
		c := randRel(rng, "CD", 1+rng.Intn(8), 3)
		if !Join(Join(a, b), c).Equal(Join(a, Join(b, c))) {
			t.Fatalf("trial %d: join not associative", trial)
		}
	}
}

func TestCrossProduct(t *testing.T) {
	l := mkRel(t, "A", []int64{1})
	r := mkRel(t, "B", []int64{2})
	got, err := CrossProduct(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("product size %d", got.Len())
	}
	if _, err := CrossProduct(l, mkRel(t, "AB", []int64{1, 2})); err == nil {
		t.Error("CrossProduct accepted overlapping schemas")
	}
}

func TestSemijoin(t *testing.T) {
	l := mkRel(t, "AB", []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	r := mkRel(t, "BC", []int64{10, 0}, []int64{30, 0})
	got := Semijoin(l, r)
	want := mkRel(t, "AB", []int64{1, 10}, []int64{3, 30})
	if !got.Equal(want) {
		t.Errorf("Semijoin = %s, want %s", got, want)
	}
	if !got.Schema().Equal(l.Schema()) {
		t.Error("semijoin changed the schema")
	}
}

func TestSemijoinIsProjectionOfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 150; trial++ {
		l := randRel(rng, "ABC", 1+rng.Intn(10), 3)
		r := randRel(rng, "BCD", 1+rng.Intn(10), 3)
		want := MustProject(Join(l, r), l.Schema().AttrSet())
		if got := Semijoin(l, r); !got.Equal(want) {
			t.Fatalf("trial %d: l ⋉ r ≠ π_l(l ⋈ r)", trial)
		}
	}
}

func TestSemijoinNoCommonAttrs(t *testing.T) {
	l := mkRel(t, "A", []int64{1}, []int64{2})
	nonempty := mkRel(t, "B", []int64{9})
	empty := mkRel(t, "B")
	if got := Semijoin(l, nonempty); !got.Equal(l) {
		t.Error("l ⋉ nonempty-disjoint should be l")
	}
	if got := Semijoin(l, empty); got.Len() != 0 {
		t.Error("l ⋉ empty should be empty")
	}
}

func TestAntijoin(t *testing.T) {
	l := mkRel(t, "AB", []int64{1, 10}, []int64{2, 20})
	r := mkRel(t, "BC", []int64{10, 5})
	got := Antijoin(l, r)
	want := mkRel(t, "AB", []int64{2, 20})
	if !got.Equal(want) {
		t.Errorf("Antijoin = %s, want %s", got, want)
	}
}

func TestAntijoinPartitionsWithSemijoin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		l := randRel(rng, "AB", 1+rng.Intn(10), 3)
		r := randRel(rng, "BC", rng.Intn(10), 3)
		semi := Semijoin(l, r)
		anti := Antijoin(l, r)
		if semi.Len()+anti.Len() != l.Len() {
			t.Fatalf("trial %d: semijoin + antijoin ≠ |l|", trial)
		}
		u, err := Union(semi, anti)
		if err != nil {
			t.Fatal(err)
		}
		if !u.Equal(l) {
			t.Fatalf("trial %d: semijoin ∪ antijoin ≠ l", trial)
		}
	}
}

func TestProject(t *testing.T) {
	r := mkRel(t, "ABC", []int64{1, 2, 3}, []int64{1, 5, 3}, []int64{2, 2, 3})
	got, err := Project(r, NewAttrSet("A", "C"))
	if err != nil {
		t.Fatal(err)
	}
	want := mkRel(t, "AC", []int64{1, 3}, []int64{2, 3})
	if !got.Equal(want) {
		t.Errorf("Project = %s, want %s (deduplicated)", got, want)
	}
}

func TestProjectMissingAttr(t *testing.T) {
	r := mkRel(t, "AB", []int64{1, 2})
	if _, err := Project(r, NewAttrSet("Z")); err == nil {
		t.Error("projection onto missing attribute accepted")
	}
}

func TestProjectEmptyAttrSet(t *testing.T) {
	r := mkRel(t, "AB", []int64{1, 2}, []int64{3, 4})
	got, err := Project(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("π_∅ of nonempty relation = %d tuples, want 1 (the empty tuple)", got.Len())
	}
	empty := mkRel(t, "AB")
	got, err = Project(empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("π_∅ of empty relation = %d tuples, want 0", got.Len())
	}
}

func TestJoinWithZeroAryRelation(t *testing.T) {
	r := mkRel(t, "AB", []int64{1, 2})
	unit := MustProject(r, nil) // {()} — the 0-ary unit
	if got := Join(r, unit); !got.Equal(r) {
		t.Error("R ⋈ {()} should be R")
	}
	zero := MustProject(mkRel(t, "AB"), nil) // {} — the 0-ary zero
	if got := Join(r, zero); got.Len() != 0 {
		t.Error("R ⋈ {} should be empty")
	}
}

func TestSelect(t *testing.T) {
	r := mkRel(t, "AB", []int64{1, 2}, []int64{3, 4})
	got := Select(r, func(s *Schema, tup Tuple) bool {
		p, _ := s.Position("A")
		return tup[p].AsInt() > 1
	})
	if got.Len() != 1 || !got.Rows()[0].Equal(Ints(3, 4)) {
		t.Errorf("Select = %s", got)
	}
}

func TestUnionAndDiff(t *testing.T) {
	a := mkRel(t, "AB", []int64{1, 2}, []int64{3, 4})
	// Same attribute set, different column order.
	b := New(SchemaOfRunes("BA"))
	b.MustInsert(Ints(2, 1)) // duplicate of (1,2) in a's order
	b.MustInsert(Ints(9, 8))
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 {
		t.Errorf("union has %d tuples, want 3", u.Len())
	}
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := mkRel(t, "AB", []int64{3, 4})
	if !d.Equal(want) {
		t.Errorf("diff = %s, want %s", d, want)
	}
	if _, err := Union(a, mkRel(t, "AC")); err == nil {
		t.Error("union of incompatible schemas accepted")
	}
	if _, err := Diff(a, mkRel(t, "AC")); err == nil {
		t.Error("diff of incompatible schemas accepted")
	}
}

func TestJoinAll(t *testing.T) {
	a := mkRel(t, "AB", []int64{1, 2})
	b := mkRel(t, "BC", []int64{2, 3})
	c := mkRel(t, "CD", []int64{3, 4})
	got, err := JoinAll(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Schema().Len() != 4 {
		t.Errorf("JoinAll = %s", got)
	}
	if _, err := JoinAll(); err == nil {
		t.Error("JoinAll() accepted zero relations")
	}
	single, err := JoinAll(a)
	if err != nil || !single.Equal(a) {
		t.Error("JoinAll of one relation should be identity")
	}
}

func TestRename(t *testing.T) {
	r := mkRel(t, "AB", []int64{1, 2}, []int64{3, 4})
	got, err := Rename(r, map[string]string{"A": "X"})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Equal(MustSchema("X", "B")) {
		t.Errorf("schema = %v", got.Schema())
	}
	if got.Len() != 2 || !got.Contains(Ints(1, 2)) {
		t.Error("tuples lost in rename")
	}
	// Self-join through renaming: edges AB joined with itself as BC gives
	// 2-paths.
	edges := mkRel(t, "AB", []int64{1, 2}, []int64{2, 3})
	hops, err := Rename(edges, map[string]string{"A": "B", "B": "C"})
	if err != nil {
		t.Fatal(err)
	}
	paths := Join(edges, hops)
	if paths.Len() != 1 || !paths.Contains(Ints(1, 2, 3)) {
		t.Errorf("2-paths = %s", paths)
	}
	// Error cases.
	if _, err := Rename(r, map[string]string{"A": "B"}); err == nil {
		t.Error("rename onto an existing attribute accepted")
	}
	if _, err := Rename(r, map[string]string{"Z": "Y"}); err == nil {
		t.Error("rename of a missing attribute accepted")
	}
}

func TestRenameSwapRejectedWithoutTemp(t *testing.T) {
	// Swapping A and B in one mapping is ambiguous under our duplicate
	// check only if it collides; a full swap is actually fine since both
	// change simultaneously.
	r := mkRel(t, "AB", []int64{1, 2})
	got, err := Rename(r, map[string]string{"A": "B", "B": "A"})
	if err != nil {
		t.Fatalf("swap rename should work: %v", err)
	}
	if got.Schema().Attr(0) != "B" || got.Schema().Attr(1) != "A" {
		t.Errorf("swap schema = %v", got.Schema())
	}
}
