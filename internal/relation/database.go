package relation

import (
	"fmt"
	"strings"
)

// Database is a database over a database scheme: an ordered multiset of
// relations. Index order is the identity of each relation scheme occurrence
// (the paper's 𝒟 is a multiset, so two entries may have equal schemas).
type Database struct {
	rels []*Relation
}

// NewDatabase builds a database from relations; at least one is required.
func NewDatabase(rels ...*Relation) (*Database, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("relation: database needs at least one relation")
	}
	for i, r := range rels {
		if r == nil {
			return nil, fmt.Errorf("relation: nil relation at index %d", i)
		}
	}
	return &Database{rels: append([]*Relation(nil), rels...)}, nil
}

// MustDatabase is NewDatabase that panics on error.
func MustDatabase(rels ...*Relation) *Database {
	db, err := NewDatabase(rels...)
	if err != nil {
		panic(err)
	}
	return db
}

// Len returns the number of relation scheme occurrences (r in Theorem 2).
func (d *Database) Len() int { return len(d.rels) }

// Relation returns the i-th relation.
func (d *Database) Relation(i int) *Relation { return d.rels[i] }

// Relations returns the underlying slice; callers must not modify it.
func (d *Database) Relations() []*Relation { return d.rels }

// Schemes returns the attribute set of each relation, in index order — the
// database scheme 𝒟 as a multiset.
func (d *Database) Schemes() []AttrSet {
	out := make([]AttrSet, len(d.rels))
	for i, r := range d.rels {
		out[i] = r.Schema().AttrSet()
	}
	return out
}

// Attrs returns the set of all attributes appearing in the scheme (a in
// Theorem 2 is its size).
func (d *Database) Attrs() AttrSet {
	return UnionAll(d.Schemes()...)
}

// Restrict returns the database restricted to the relation indexes in keep,
// in the order given — D[𝒟'] in the paper's notation.
func (d *Database) Restrict(keep []int) (*Database, error) {
	rels := make([]*Relation, len(keep))
	for i, k := range keep {
		if k < 0 || k >= len(d.rels) {
			return nil, fmt.Errorf("relation: restrict index %d out of range [0,%d)", k, len(d.rels))
		}
		rels[i] = d.rels[k]
	}
	return NewDatabase(rels...)
}

// Join computes ⋈D, the natural join of all relations, in index order.
// Callers that care about intermediate sizes should evaluate a join
// expression instead; Join is the reference result.
func (d *Database) Join() *Relation {
	out, _ := JoinAll(d.rels...) // d always has ≥ 1 relation
	return out
}

// TotalTuples returns Σ|R_i|, the inputs' contribution to the paper's cost.
func (d *Database) TotalTuples() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// PairwiseConsistent reports whether the database is locally (pairwise)
// consistent: for every pair of relations R(X), R(Y),
// π_X(R(X) ⋈ R(Y)) = R(X). (Example 3 builds a pairwise-consistent but
// globally inconsistent database.)
func (d *Database) PairwiseConsistent() bool {
	for i, x := range d.rels {
		for j, y := range d.rels {
			if i == j {
				continue
			}
			if Semijoin(x, y).Len() != x.Len() {
				return false
			}
		}
	}
	return true
}

// GloballyConsistent reports whether every relation equals the projection of
// ⋈D onto its scheme. The full join is computed once; prefer
// GloballyConsistentWith when it is already available.
func (d *Database) GloballyConsistent() bool {
	return d.GloballyConsistentWith(d.Join())
}

// GloballyConsistentWith is GloballyConsistent given a precomputed ⋈D.
func (d *Database) GloballyConsistentWith(full *Relation) bool {
	for _, r := range d.rels {
		p := MustProject(full, r.Schema().AttrSet())
		if !p.Equal(r) {
			return false
		}
	}
	return true
}

// String summarizes the database scheme and relation sizes.
func (d *Database) String() string {
	parts := make([]string, len(d.rels))
	for i, r := range d.rels {
		parts[i] = fmt.Sprintf("%s:%d", r.Schema(), r.Len())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
