package relation

import "sort"

// MergeJoin computes the natural join l ⋈ r with a sort-merge strategy: both
// inputs are sorted on their common attributes and scanned once, pairing
// equal-key runs. It produces exactly the same relation as Join (the hash
// join); engines pick between the two by workload — merge join avoids the
// hash table and behaves better when inputs are already sorted or memory is
// tight, at the price of the two sorts.
//
// With no common attributes it degenerates to the Cartesian product, like
// Join.
func MergeJoin(l, r *Relation) *Relation {
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	out := New(joinSchema(l.schema, r.schema))

	var rOnlyPos []int
	for i, a := range r.schema.Attrs() {
		if !l.schema.Has(a) {
			rOnlyPos = append(rOnlyPos, i)
		}
	}

	if common.IsEmpty() {
		for _, lt := range l.rows {
			for _, rt := range r.rows {
				out.appendJoined(lt, rt, rOnlyPos)
			}
		}
		return out
	}

	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)

	ls := sortedByKey(l.rows, lPos)
	rs := sortedByKey(r.rows, rPos)

	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		c := compareAt(ls[i], lPos, rs[j], rPos)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the equal-key runs on both sides.
			i2 := i + 1
			for i2 < len(ls) && compareAt(ls[i2], lPos, ls[i], lPos) == 0 {
				i2++
			}
			j2 := j + 1
			for j2 < len(rs) && compareAt(rs[j2], rPos, rs[j], rPos) == 0 {
				j2++
			}
			for x := i; x < i2; x++ {
				for y := j; y < j2; y++ {
					out.appendJoined(ls[x], rs[y], rOnlyPos)
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

// sortedByKey returns the rows sorted by the projection onto pos (the input
// slice is not modified).
func sortedByKey(rows []Tuple, pos []int) []Tuple {
	out := append([]Tuple(nil), rows...)
	sort.SliceStable(out, func(a, b int) bool {
		return compareAt(out[a], pos, out[b], pos) < 0
	})
	return out
}

// compareAt orders two tuples by their projections onto the given column
// positions.
func compareAt(a Tuple, aPos []int, b Tuple, bPos []int) int {
	for k := range aPos {
		if c := a[aPos[k]].Compare(b[bPos[k]]); c != 0 {
			return c
		}
	}
	return 0
}
