package relation

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteReadDatabase(t *testing.T) {
	dir := t.TempDir()
	r1 := New(SchemaOfRunes("AB"))
	r1.MustInsert(Ints(1, 2))
	r1.MustInsert(Ints(3, 4))
	r2 := New(MustSchema("B", "name"))
	r2.MustInsert(Tuple{Int(2), String("x")})
	db := MustDatabase(r1, r2)

	if err := WriteDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatabase(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d relations", back.Len())
	}
	for i := 0; i < 2; i++ {
		if !back.Relation(i).Equal(db.Relation(i)) {
			t.Errorf("relation %d changed across store round trip", i)
		}
	}
	// Scheme order preserved.
	if !back.Relation(0).Schema().AttrSet().Equal(AttrSetOfRunes("AB")) {
		t.Error("relation order not preserved")
	}
}

func TestReadDatabaseErrors(t *testing.T) {
	if _, err := ReadDatabase(t.TempDir()); err == nil {
		t.Error("missing manifest accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("missing.tsv\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDatabase(dir); err == nil {
		t.Error("missing relation file accepted")
	}
}
