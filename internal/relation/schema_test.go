package relation

import "testing"

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("A", "B", "C")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.Len() != 3 || s.Attr(0) != "A" || s.Attr(2) != "C" {
		t.Errorf("schema layout wrong: %v", s.Attrs())
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema("A", "B", "A"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema("A", ""); err == nil {
		t.Error("empty attribute accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on bad input")
		}
	}()
	MustSchema("A", "A")
}

func TestSchemaOfRunes(t *testing.T) {
	s := SchemaOfRunes("GHA")
	if s.Len() != 3 || s.Attr(0) != "G" || s.Attr(1) != "H" || s.Attr(2) != "A" {
		t.Errorf("SchemaOfRunes(GHA) = %v", s.Attrs())
	}
}

func TestSchemaPosition(t *testing.T) {
	s := MustSchema("X", "Y")
	if p, ok := s.Position("Y"); !ok || p != 1 {
		t.Errorf("Position(Y) = %d, %v", p, ok)
	}
	if _, ok := s.Position("Z"); ok {
		t.Error("Position(Z) should be missing")
	}
	if !s.Has("X") || s.Has("Z") {
		t.Error("Has wrong")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema("A", "B")
	b := MustSchema("A", "B")
	c := MustSchema("B", "A")
	if !a.Equal(b) {
		t.Error("identical schemas unequal")
	}
	if a.Equal(c) {
		t.Error("order-different schemas equal")
	}
	if !a.EqualSet(c) {
		t.Error("order-different schemas not set-equal")
	}
}

func TestSchemaPositions(t *testing.T) {
	s := MustSchema("A", "B", "C")
	got, err := s.Positions([]string{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 0 {
		t.Errorf("Positions = %v", got)
	}
	if _, err := s.Positions([]string{"Z"}); err == nil {
		t.Error("missing attribute accepted")
	}
}

func TestCommonPositions(t *testing.T) {
	l := MustSchema("A", "B", "C")
	r := SchemaOfRunes("GHA") // G, H, A
	inL, inR := CommonPositions(l, r)
	if len(inL) != 1 || inL[0] != 0 || inR[0] != 2 {
		t.Errorf("CommonPositions = %v %v", inL, inR)
	}
}

func TestSchemaString(t *testing.T) {
	if got := SchemaOfRunes("GHA").String(); got != "GHA" {
		t.Errorf("String = %q, want GHA (column order preserved)", got)
	}
	if got := MustSchema("city", "year").String(); got != "(city,year)" {
		t.Errorf("String = %q", got)
	}
}
