package relation

import (
	"errors"
	"testing"
)

func TestValueBinaryRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-1), Int(1<<62 + 17), Int(-1 << 62),
		String(""), String("x"), String("hello\tworld\n"), String("42"),
		String(string([]byte{0, 255, 'i', 's'})),
	}
	var buf []byte
	for _, v := range vals {
		buf = AppendValueBinary(buf, v)
	}
	off := 0
	for i, want := range vals {
		got, n, err := DecodeValueBinary(buf[off:])
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("value %d: got %#v, want %#v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestValueBinaryMatchesHashKey(t *testing.T) {
	// The exported codec must be byte-identical to the internal dedup-key
	// encoding; the durable format and the in-memory keys may never drift.
	for _, v := range []Value{Int(-9), Int(12345), String("abc"), String("")} {
		if got, want := string(AppendValueBinary(nil, v)), string(v.appendKey(nil)); got != want {
			t.Fatalf("%#v: binary %q != key %q", v, got, want)
		}
	}
}

func TestTupleBinaryRoundTrip(t *testing.T) {
	tuples := []Tuple{
		{},
		Ints(1, 2, 3),
		{Int(7), String("x"), Int(-3)},
		Strs("a", "", "b"),
	}
	var buf []byte
	for _, tp := range tuples {
		buf = AppendTupleBinary(buf, tp)
	}
	off := 0
	for i, want := range tuples {
		got, n, err := DecodeTupleBinary(buf[off:])
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("tuple %d: got %v, want %v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestRelationBinaryRoundTrip(t *testing.T) {
	r := New(MustSchema("A", "B"))
	r.MustInsert(Tuple{Int(1), String("x")})
	r.MustInsert(Tuple{Int(2), String("y")})
	r.MustInsert(Ints(3, 4))
	buf := AppendRelationBinary(nil, r)
	got, n, err := DecodeRelationBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !got.Equal(r) {
		t.Fatalf("round trip:\n got %v\nwant %v", got, r)
	}
}

func TestBinaryDecodeCorruption(t *testing.T) {
	cases := map[string][]byte{
		"empty value":          {},
		"unknown kind":         {'q', 1, 2, 3},
		"truncated int":        {'i', 0, 0},
		"truncated string hdr": {'s', 0, 0},
		"string overrun":       {'s', 0, 0, 0, 9, 'a', 'b'},
		"string absurd length": {'s', 0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, _, err := DecodeValueBinary(b); !errors.Is(err, ErrBinaryCorrupt) {
			t.Errorf("%s: got %v, want ErrBinaryCorrupt", name, err)
		}
	}
	// Tuple-level corruption.
	if _, _, err := DecodeTupleBinary(nil); !errors.Is(err, ErrBinaryCorrupt) {
		t.Errorf("empty tuple input: got %v", err)
	}
	if _, _, err := DecodeTupleBinary([]byte{200}); !errors.Is(err, ErrBinaryCorrupt) {
		t.Errorf("dangling uvarint: got %v", err)
	}
	if _, _, err := DecodeTupleBinary([]byte{3, 'i', 0, 0, 0, 0, 0, 0, 0, 1}); !errors.Is(err, ErrBinaryCorrupt) {
		t.Errorf("short tuple: got %v", err)
	}
	// Relation-level corruption.
	for name, b := range map[string][]byte{
		"empty":           {},
		"zero attrs":      {0},
		"huge attr count": {0xff, 0xff, 0xff, 0xff, 0x0f},
		"attr overrun":    {1, 9, 'A'},
		"huge row count":  append(AppendRelationBinary(nil, New(MustSchema("A")))[:3], 0xff, 0xff, 0xff, 0x0f),
	} {
		if _, _, err := DecodeRelationBinary(b); !errors.Is(err, ErrBinaryCorrupt) {
			t.Errorf("relation %s: got %v, want ErrBinaryCorrupt", name, err)
		}
	}
	// Well-formed bytes naming a bad scheme (duplicate attribute) error
	// without panicking, via the schema constructor.
	bad := []byte{2, 1, 'A', 1, 'A', 0}
	if _, _, err := DecodeRelationBinary(bad); err == nil {
		t.Error("duplicate attribute decoded without error")
	}
}
