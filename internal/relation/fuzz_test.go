package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV drives the TSV reader with arbitrary input: it must never
// panic, and any accepted relation must round-trip through WriteTSV.
func FuzzReadTSV(f *testing.F) {
	for _, seed := range []string{
		"A\tB\n1\t2\n",
		"A\n1\n2\n1\n",
		"id\tname\n1\ts:ann\n2\ts:42\n",
		"A\tB\n1\n",
		"A\tA\n1\t2\n",
		"",
		"\n\n\n",
		"A\ns:\n",
		"A\t\n1\t2\n",
		"A\n-9223372036854775808\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.WriteTSV(&buf); err != nil {
			t.Fatalf("accepted relation fails to write: %v", err)
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("written relation fails to reparse: %v\n%q", err, buf.String())
		}
		if !back.Equal(r) {
			t.Fatalf("round trip changed relation for input %q", input)
		}
	})
}
