package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParallelJoinKeys drives the partition-parallel join with adversarial
// join-key content: arbitrary byte blobs are decoded into two relations over
// AB and BC whose B columns carry raw fuzzer-chosen strings (embedded
// separators, empty keys, invalid UTF-8, near-collisions), and the
// partitioned join at a fuzzer-chosen worker count must equal the sequential
// join exactly. This is the property that keeps partitionByKey honest: any
// hash or key-encoding confusion splits matching tuples across partitions
// and shows up as a lost or duplicated output row.
func FuzzParallelJoinKeys(f *testing.F) {
	f.Add([]byte("a\x00b\x001"), []byte("b\x00c\x002"), uint8(2))
	f.Add([]byte("\x00\x00\x00"), []byte("\x00\x00\x00"), uint8(3))
	f.Add([]byte("k\xffk\xff\xffk"), []byte("\xffk\xffkk\xff"), uint8(4))
	f.Add([]byte(""), []byte("x\x00y\x00z"), uint8(1))
	f.Add([]byte("1\x002\x003\x004\x005\x006"), []byte("2\x004\x006\x008"), uint8(16))
	f.Fuzz(func(t *testing.T, lBlob, rBlob []byte, workers uint8) {
		defer SetParallelThreshold(0)()
		w := int(workers%16) + 1
		l := blobRelation("AB", lBlob)
		r := blobRelation("BC", rBlob)
		want := Join(l, r)
		got := ParallelJoin(l, r, w)
		if !got.Equal(want) {
			t.Fatalf("parallel join (%d workers) %d tuples, sequential %d\nl=%v\nr=%v",
				w, got.Len(), want.Len(), lBlob, rBlob)
		}
	})
}

// blobRelation decodes a fuzzer blob into a two-column relation: NUL-split
// fields fill rows pairwise, so the fuzzer controls the exact key bytes.
func blobRelation(scheme string, blob []byte) *Relation {
	r := New(SchemaOfRunes(scheme))
	fields := strings.Split(string(blob), "\x00")
	for i := 0; i+1 < len(fields); i += 2 {
		r.MustInsert(Tuple{String(fields[i]), String(fields[i+1])})
	}
	return r
}

// FuzzReadTSV drives the TSV reader with arbitrary input: it must never
// panic, and any accepted relation must round-trip through WriteTSV.
func FuzzReadTSV(f *testing.F) {
	for _, seed := range []string{
		"A\tB\n1\t2\n",
		"A\n1\n2\n1\n",
		"id\tname\n1\ts:ann\n2\ts:42\n",
		"A\tB\n1\n",
		"A\tA\n1\t2\n",
		"",
		"\n\n\n",
		"A\ns:\n",
		"A\t\n1\t2\n",
		"A\n-9223372036854775808\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.WriteTSV(&buf); err != nil {
			t.Fatalf("accepted relation fails to write: %v", err)
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("written relation fails to reparse: %v\n%q", err, buf.String())
		}
		if !back.Equal(r) {
			t.Fatalf("round trip changed relation for input %q", input)
		}
	})
}
