package relation

import (
	"strings"
	"testing"
)

func TestInsertDedupes(t *testing.T) {
	r := New(SchemaOfRunes("AB"))
	r.MustInsert(Ints(1, 2))
	r.MustInsert(Ints(1, 2))
	r.MustInsert(Ints(2, 1))
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(Ints(1, 2)) || r.Contains(Ints(9, 9)) {
		t.Error("Contains wrong")
	}
}

func TestInsertArityMismatch(t *testing.T) {
	r := New(SchemaOfRunes("AB"))
	if err := r.Insert(Ints(1)); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInsert did not panic on arity mismatch")
		}
	}()
	New(SchemaOfRunes("AB")).MustInsert(Ints(1))
}

func TestNewFromRows(t *testing.T) {
	r, err := NewFromRows(SchemaOfRunes("AB"), []Tuple{Ints(1, 2), Ints(1, 2), Ints(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if _, err := NewFromRows(SchemaOfRunes("AB"), []Tuple{Ints(1)}); err == nil {
		t.Error("bad arity accepted")
	}
}

func TestClone(t *testing.T) {
	r := New(SchemaOfRunes("A"))
	r.MustInsert(Ints(1))
	c := r.Clone()
	c.MustInsert(Ints(2))
	if r.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone aliases original: %d, %d", r.Len(), c.Len())
	}
}

func TestRelationEqualModuloColumnOrder(t *testing.T) {
	a := New(SchemaOfRunes("AB"))
	a.MustInsert(Ints(1, 2))
	b := New(SchemaOfRunes("BA"))
	b.MustInsert(Ints(2, 1))
	if !a.Equal(b) {
		t.Error("relations equal up to column order reported unequal")
	}
	b.MustInsert(Ints(5, 5))
	if a.Equal(b) {
		t.Error("different cardinalities reported equal")
	}
	c := New(SchemaOfRunes("AC"))
	c.MustInsert(Ints(1, 2))
	if a.Equal(c) {
		t.Error("different attribute sets reported equal")
	}
	d := New(SchemaOfRunes("AB"))
	d.MustInsert(Ints(2, 1))
	if a.Equal(d) {
		t.Error("different contents reported equal")
	}
}

func TestSortedRowsDeterministic(t *testing.T) {
	r := New(SchemaOfRunes("A"))
	for _, v := range []int64{3, 1, 2} {
		r.MustInsert(Ints(v))
	}
	got := r.SortedRows()
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Errorf("SortedRows out of order at %d: %v", i, got)
		}
	}
	if r.Rows()[0].Equal(got[0]) && r.Rows()[1].Equal(got[1]) && r.Rows()[2].Equal(got[2]) {
		// Insertion order 3,1,2 differs from sorted 1,2,3 — SortedRows must
		// not have mutated Rows.
		t.Error("SortedRows appears to have sorted in place")
	}
}

func TestRelationStringTruncates(t *testing.T) {
	r := New(SchemaOfRunes("A"))
	for i := int64(0); i < 30; i++ {
		r.MustInsert(Ints(i))
	}
	s := r.String()
	if !strings.Contains(s, "more)") {
		t.Errorf("large relation String not truncated: %q", s)
	}
}
