package relation

import (
	"math/rand"
	"testing"
)

func TestIndexLookup(t *testing.T) {
	r := mkRel(t, "ABC",
		[]int64{1, 10, 100},
		[]int64{1, 11, 100},
		[]int64{2, 20, 200},
	)
	ix, err := NewIndex(r, NewAttrSet("A", "C"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Lookup(Ints(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("Lookup(1,100) = %d tuples, want 2", len(got))
	}
	got, err = ix.Lookup(Ints(9, 9))
	if err != nil || len(got) != 0 {
		t.Errorf("missing key returned %d tuples, err %v", len(got), err)
	}
	if _, err := ix.Lookup(Ints(1)); err == nil {
		t.Error("wrong key arity accepted")
	}
	if ok, _ := ix.Contains(Ints(2, 200)); !ok {
		t.Error("Contains missed an existing key")
	}
}

func TestNewIndexValidation(t *testing.T) {
	r := mkRel(t, "AB", []int64{1, 2})
	if _, err := NewIndex(r, nil); err == nil {
		t.Error("empty attribute set accepted")
	}
	if _, err := NewIndex(r, NewAttrSet("Z")); err == nil {
		t.Error("foreign attribute accepted")
	}
}

func TestJoinWithIndexMatchesJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		l := randRel(rng, "ABC", rng.Intn(25), 3)
		r := randRel(rng, "BCD", rng.Intn(25), 3)
		ix, err := NewIndex(r, NewAttrSet("B", "C"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := JoinWithIndex(l, ix)
		if err != nil {
			t.Fatal(err)
		}
		if want := Join(l, r); !got.Equal(want) {
			t.Fatalf("trial %d: indexed join disagrees", trial)
		}
	}
}

func TestSemijoinWithIndexMatchesSemijoin(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 100; trial++ {
		l := randRel(rng, "AB", rng.Intn(25), 3)
		r := randRel(rng, "BC", rng.Intn(25), 3)
		ix, err := NewIndex(r, NewAttrSet("B"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := SemijoinWithIndex(l, ix)
		if err != nil {
			t.Fatal(err)
		}
		if want := Semijoin(l, r); !got.Equal(want) {
			t.Fatalf("trial %d: indexed semijoin disagrees", trial)
		}
	}
}

func TestIndexAttributeMismatchRejected(t *testing.T) {
	l := mkRel(t, "ABC", []int64{1, 2, 3})
	r := mkRel(t, "BCD", []int64{2, 3, 4})
	// Index on B only, but the join needs {B, C}: must refuse rather than
	// return wrong answers.
	ix, err := NewIndex(r, NewAttrSet("B"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JoinWithIndex(l, ix); err == nil {
		t.Error("under-covering index accepted for join")
	}
	if _, err := SemijoinWithIndex(l, ix); err == nil {
		t.Error("under-covering index accepted for semijoin")
	}
}

func BenchmarkIndexedSemijoinReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(103))
	big := randRel(rng, "BC", 50000, 5000)
	probes := make([]*Relation, 8)
	for i := range probes {
		probes[i] = randRel(rng, "AB", 2000, 5000)
	}
	b.Run("rebuildPerProbe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range probes {
				Semijoin(p, big)
			}
		}
	})
	b.Run("sharedIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix, err := NewIndex(big, NewAttrSet("B"))
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range probes {
				if _, err := SemijoinWithIndex(p, ix); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
