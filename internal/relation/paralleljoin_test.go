package relation

import (
	"math/rand"
	"testing"
)

func TestParallelJoinMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	// Large enough to cross the parallel threshold.
	l := randRel(rng, "ABC", 6000, 40)
	r := randRel(rng, "BCD", 6000, 40)
	for _, workers := range []int{0, 1, 2, 3, 8} {
		got := ParallelJoin(l, r, workers)
		want := Join(l, r)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: parallel join disagrees (%d vs %d tuples)", workers, got.Len(), want.Len())
		}
	}
}

func TestParallelJoinSmallFallsBack(t *testing.T) {
	l := mkRel(t, "AB", []int64{1, 2})
	r := mkRel(t, "BC", []int64{2, 3})
	got := ParallelJoin(l, r, 8)
	if got.Len() != 1 {
		t.Errorf("Len = %d", got.Len())
	}
}

func TestParallelJoinCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	l := randRel(rng, "AB", 3000, 10000) // near-distinct rows
	r := randRel(rng, "CD", 3, 10)
	got := ParallelJoin(l, r, 4)
	want := Join(l, r)
	if !got.Equal(want) {
		t.Fatalf("parallel product disagrees (%d vs %d tuples)", got.Len(), want.Len())
	}
}

func TestParallelJoinEmptySide(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	l := randRel(rng, "AB", 5000, 20)
	empty := New(SchemaOfRunes("BC"))
	if got := ParallelJoin(l, empty, 4); got.Len() != 0 {
		t.Errorf("join with empty side = %d tuples", got.Len())
	}
}

func TestParallelJoinResultUsable(t *testing.T) {
	// The merged result must behave like a normal relation: dedup map
	// populated, further inserts and operations work.
	rng := rand.New(rand.NewSource(54))
	l := randRel(rng, "AB", 5000, 30)
	r := randRel(rng, "BC", 5000, 30)
	out := ParallelJoin(l, r, 4)
	if out.Len() == 0 {
		t.Skip("degenerate draw")
	}
	first := out.Rows()[0]
	if !out.Contains(first) {
		t.Error("Contains broken on parallel result")
	}
	before := out.Len()
	out.MustInsert(first) // duplicate: must be ignored
	if out.Len() != before {
		t.Error("dedup map not populated on parallel result")
	}
	p := MustProject(out, NewAttrSet("A", "C"))
	if p.Len() == 0 {
		t.Error("projection of parallel result empty")
	}
}

func BenchmarkParallelJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	l := randRel(rng, "ABC", 20000, 2000)
	r := randRel(rng, "CDE", 20000, 2000)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Join(l, r)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelJoin(l, r, 0)
		}
	})
}
