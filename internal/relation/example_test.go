package relation_test

import (
	"fmt"
	"log"

	"repro/internal/relation"
)

// ExampleJoin demonstrates the natural join with set semantics.
func ExampleJoin() {
	works := relation.New(relation.MustSchema("person", "project"))
	works.MustInsert(relation.Tuple{relation.String("ann"), relation.String("db")})
	works.MustInsert(relation.Tuple{relation.String("bob"), relation.String("os")})

	leads := relation.New(relation.MustSchema("project", "lead"))
	leads.MustInsert(relation.Tuple{relation.String("db"), relation.String("eve")})

	out := relation.Join(works, leads)
	for _, row := range out.SortedRows() {
		fmt.Println(row)
	}
	// Output:
	// (ann, db, eve)
}

// ExampleSemijoin shows the reduction operator the paper's programs use.
func ExampleSemijoin() {
	r := relation.New(relation.SchemaOfRunes("AB"))
	r.MustInsert(relation.Ints(1, 10))
	r.MustInsert(relation.Ints(2, 20))
	r.MustInsert(relation.Ints(3, 30))
	s := relation.New(relation.SchemaOfRunes("BC"))
	s.MustInsert(relation.Ints(10, 7))
	s.MustInsert(relation.Ints(30, 9))

	for _, row := range relation.Semijoin(r, s).SortedRows() {
		fmt.Println(row)
	}
	// Output:
	// (1, 10)
	// (3, 30)
}

// ExampleMustProject deduplicates while projecting.
func ExampleMustProject() {
	r := relation.New(relation.SchemaOfRunes("ABC"))
	r.MustInsert(relation.Ints(1, 2, 9))
	r.MustInsert(relation.Ints(1, 5, 9))
	p := relation.MustProject(r, relation.NewAttrSet("A", "C"))
	fmt.Println(p.Len(), "tuple(s)")
	// Output:
	// 1 tuple(s)
}

// ExampleDatabase_PairwiseConsistent shows the consistency notions from the
// paper's Example 3.
func ExampleDatabase_PairwiseConsistent() {
	mk := func(scheme string, rows ...[]int64) *relation.Relation {
		r := relation.New(relation.SchemaOfRunes(scheme))
		for _, row := range rows {
			r.MustInsert(relation.Ints(row...))
		}
		return r
	}
	// Links increment mod 2 around a triangle with a shift on the last
	// edge: every tuple has partners pairwise, but no global match exists.
	r1 := mk("AB", []int64{0, 0}, []int64{1, 1})
	r2 := mk("BC", []int64{0, 0}, []int64{1, 1})
	r3 := mk("CA", []int64{0, 1}, []int64{1, 0})
	db, err := relation.NewDatabase(r1, r2, r3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairwise consistent:", db.PairwiseConsistent())
	fmt.Println("join size:", db.Join().Len())
	// Output:
	// pairwise consistent: true
	// join size: 0
}
