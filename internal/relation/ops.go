package relation

import (
	"fmt"

	"repro/internal/govern"
)

// Join computes the natural join l ⋈ r. The output schema is l's columns
// followed by r's columns that are not in l. When the schemas share no
// attributes the result is the Cartesian product, matching the paper's
// convention that ⋈ degenerates to ×.
//
// Implementation: classic hash join. The smaller input is hashed on the
// common attributes; the larger side probes. With no common attributes the
// nested product is produced directly.
func Join(l, r *Relation) *Relation {
	out, err := JoinGoverned(nil, l, r)
	if err != nil {
		panic(err) // unreachable: a nil governor never aborts
	}
	return out
}

// JoinGoverned is Join charging every output tuple against the governor; it
// aborts with the governor's typed error mid-join when a limit is exceeded,
// returning no partial result. A nil governor imposes no limits.
func JoinGoverned(g *govern.Governor, l, r *Relation) (*Relation, error) {
	scope, err := g.Begin("relation.Join")
	if err != nil {
		return nil, err
	}
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	outSchema := joinSchema(l.schema, r.schema)
	out := New(outSchema)

	// Columns of r absent from l, in r's column order — the same order
	// joinSchema appends them to the output schema.
	var rOnlyPos []int
	for i, a := range r.schema.Attrs() {
		if !l.schema.Has(a) {
			rOnlyPos = append(rOnlyPos, i)
		}
	}

	if common.IsEmpty() {
		for _, lt := range l.rows {
			for _, rt := range r.rows {
				out.appendJoined(lt, rt, rOnlyPos)
				if err := scope.Visit(out.Len()); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)

	if err := hashJoinInto(out, l.rows, r.rows, lPos, rPos, rOnlyPos,
		func(int) error { return scope.Visit(out.Len()) }); err != nil {
		return nil, err
	}
	return out, nil
}

// hashJoinInto is the hash-join core shared by the sequential and parallel
// operators: it joins lRows with rRows on the key columns lPos/rPos,
// appending (l, r-only) rows to out, and calls visit once per probe row with
// the number of rows that probe emitted (so the sequential caller can drive
// a cumulative governor scope and a parallel partition worker can charge
// deltas into a shared one). The smaller side is hashed; if that is the
// right side the build/probe roles swap but the output column order does
// not.
func hashJoinInto(out *Relation, lRows, rRows []Tuple, lPos, rPos, rOnlyPos []int, visit func(emitted int) error) error {
	if len(lRows) <= len(rRows) {
		ht := make(map[string][]Tuple, len(lRows))
		for _, lt := range lRows {
			k := lt.keyAt(lPos)
			ht[k] = append(ht[k], lt)
		}
		for _, rt := range rRows {
			emitted := 0
			for _, lt := range ht[rt.keyAt(rPos)] {
				out.appendJoined(lt, rt, rOnlyPos)
				emitted++
			}
			if err := visit(emitted); err != nil {
				return err
			}
		}
	} else {
		ht := make(map[string][]Tuple, len(rRows))
		for _, rt := range rRows {
			k := rt.keyAt(rPos)
			ht[k] = append(ht[k], rt)
		}
		for _, lt := range lRows {
			emitted := 0
			for _, rt := range ht[lt.keyAt(lPos)] {
				out.appendJoined(lt, rt, rOnlyPos)
				emitted++
			}
			if err := visit(emitted); err != nil {
				return err
			}
		}
	}
	return nil
}

// appendJoined concatenates lt with rt's rOnlyPos columns and inserts the
// result. Join of set inputs cannot create duplicates, so this bypasses the
// dedup map lookup cost only conceptually — Insert is still used for safety.
func (out *Relation) appendJoined(lt, rt Tuple, rOnlyPos []int) {
	row := make(Tuple, 0, len(lt)+len(rOnlyPos))
	row = append(row, lt...)
	for _, p := range rOnlyPos {
		row = append(row, rt[p])
	}
	out.MustInsert(row)
}

// joinSchema is l's columns followed by r's columns not in l.
func joinSchema(l, r *Schema) *Schema {
	attrs := append([]string(nil), l.Attrs()...)
	for _, a := range r.Attrs() {
		if !l.Has(a) {
			attrs = append(attrs, a)
		}
	}
	return MustSchema(attrs...)
}

// CrossProduct computes l × r. It requires the schemas to be disjoint and
// otherwise behaves like Join; callers that want the degenerate-join
// behaviour should call Join directly.
func CrossProduct(l, r *Relation) (*Relation, error) {
	return CrossProductGoverned(nil, l, r)
}

// CrossProductGoverned is CrossProduct under a governor: the product — the
// operator this repository's paper exists to tame — charges every output
// tuple and aborts with a typed error on a blown budget.
func CrossProductGoverned(g *govern.Governor, l, r *Relation) (*Relation, error) {
	if l.schema.AttrSet().Overlaps(r.schema.AttrSet()) {
		return nil, fmt.Errorf("relation: cross product operands share attributes %s",
			l.schema.AttrSet().Intersect(r.schema.AttrSet()))
	}
	if _, err := g.Begin("relation.CrossProduct"); err != nil {
		return nil, err
	}
	return JoinGoverned(g, l, r)
}

// Semijoin computes l ⋉ r: the tuples of l that join with at least one tuple
// of r. The output schema is l's schema. With no common attributes, the
// result is l itself if r is nonempty and empty otherwise (the degenerate
// semantics of ⋉ as π_l(l ⋈ r)).
func Semijoin(l, r *Relation) *Relation {
	out, err := SemijoinGoverned(nil, l, r)
	if err != nil {
		panic(err) // unreachable: a nil governor never aborts
	}
	return out
}

// SemijoinGoverned is Semijoin under a governor. A semijoin's output is at
// most |l|, so it cannot blow up — but it still charges its output (the
// §2.3 cost counts semijoin heads) and honors cancellation and deadlines.
func SemijoinGoverned(g *govern.Governor, l, r *Relation) (*Relation, error) {
	scope, err := g.Begin("relation.Semijoin")
	if err != nil {
		return nil, err
	}
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	out := New(l.schema)
	if common.IsEmpty() {
		if r.Len() > 0 {
			for _, lt := range l.rows {
				out.MustInsert(lt)
				if err := scope.Visit(out.Len()); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)
	if l.Len() <= r.Len() {
		// Hash the smaller (left) side: collect l's keys, scan r marking
		// which have support, then emit the supported l tuples. The map
		// stays |l|-sized even when r is huge.
		support := make(map[string]bool, l.Len())
		for _, lt := range l.rows {
			support[lt.keyAt(lPos)] = false
		}
		for _, rt := range r.rows {
			k := rt.keyAt(rPos)
			if _, interesting := support[k]; interesting {
				support[k] = true
			}
			if err := scope.Visit(out.Len()); err != nil {
				return nil, err
			}
		}
		for _, lt := range l.rows {
			if support[lt.keyAt(lPos)] {
				out.MustInsert(lt)
			}
			if err := scope.Visit(out.Len()); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	keys := make(map[string]struct{}, r.Len())
	for _, rt := range r.rows {
		keys[rt.keyAt(rPos)] = struct{}{}
	}
	for _, lt := range l.rows {
		if _, ok := keys[lt.keyAt(lPos)]; ok {
			out.MustInsert(lt)
		}
		if err := scope.Visit(out.Len()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Antijoin computes l ▷ r: the tuples of l that join with no tuple of r.
func Antijoin(l, r *Relation) *Relation {
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	out := New(l.schema)
	if common.IsEmpty() {
		if r.Len() == 0 {
			for _, lt := range l.rows {
				out.MustInsert(lt)
			}
		}
		return out
	}
	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)
	keys := make(map[string]struct{}, r.Len())
	for _, rt := range r.rows {
		keys[rt.keyAt(rPos)] = struct{}{}
	}
	for _, lt := range l.rows {
		if _, ok := keys[lt.keyAt(lPos)]; !ok {
			out.MustInsert(lt)
		}
	}
	return out
}

// Project computes π_attrs(r), deduplicating. The attrs must all belong to
// r's schema; the output column order is the sorted attribute order.
func Project(r *Relation, attrs AttrSet) (*Relation, error) {
	return ProjectGoverned(nil, r, attrs)
}

// ProjectGoverned is Project under a governor: output tuples are charged
// against the budgets and cancellation is polled periodically during the
// scan.
func ProjectGoverned(g *govern.Governor, r *Relation, attrs AttrSet) (*Relation, error) {
	if !r.schema.AttrSet().ContainsAll(attrs) {
		return nil, fmt.Errorf("relation: projection attributes %s not all in schema %s",
			attrs, r.schema)
	}
	scope, err := g.Begin("relation.Project")
	if err != nil {
		return nil, err
	}
	pos, _ := r.schema.Positions(attrs)
	out := New(MustSchema(attrs...))
	for _, t := range r.rows {
		row := make(Tuple, len(pos))
		for i, p := range pos {
			row[i] = t[p]
		}
		out.MustInsert(row)
		if err := scope.Visit(out.Len()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MustProject is Project that panics on error.
func MustProject(r *Relation, attrs AttrSet) *Relation {
	out, err := Project(r, attrs)
	if err != nil {
		panic(err)
	}
	return out
}

// Select returns the tuples of r satisfying pred.
func Select(r *Relation, pred func(*Schema, Tuple) bool) *Relation {
	out := New(r.schema)
	for _, t := range r.rows {
		if pred(r.schema, t) {
			out.MustInsert(t)
		}
	}
	return out
}

// Union computes l ∪ r; the schemas must be set-equal. Columns of r are
// permuted to l's order.
func Union(l, r *Relation) (*Relation, error) {
	if !l.schema.AttrSet().Equal(r.schema.AttrSet()) {
		return nil, fmt.Errorf("relation: union of incompatible schemas %s and %s", l.schema, r.schema)
	}
	out := l.Clone()
	pos, _ := r.schema.Positions(l.schema.Attrs())
	for _, t := range r.rows {
		row := make(Tuple, len(pos))
		for i, p := range pos {
			row[i] = t[p]
		}
		out.MustInsert(row)
	}
	return out, nil
}

// Diff computes l − r; the schemas must be set-equal.
func Diff(l, r *Relation) (*Relation, error) {
	if !l.schema.AttrSet().Equal(r.schema.AttrSet()) {
		return nil, fmt.Errorf("relation: difference of incompatible schemas %s and %s", l.schema, r.schema)
	}
	pos, _ := r.schema.Positions(l.schema.Attrs())
	keys := make(map[string]struct{}, r.Len())
	for _, t := range r.rows {
		row := make(Tuple, len(pos))
		for i, p := range pos {
			row[i] = t[p]
		}
		keys[row.key()] = struct{}{}
	}
	out := New(l.schema)
	for _, t := range l.rows {
		if _, ok := keys[t.key()]; !ok {
			out.MustInsert(t)
		}
	}
	return out, nil
}

// JoinAll folds Join over the given relations left to right; it returns an
// error when called with no relations. JoinAll of one relation returns it
// unchanged.
func JoinAll(rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("relation: JoinAll of zero relations")
	}
	acc := rels[0]
	for _, r := range rels[1:] {
		acc = Join(acc, r)
	}
	return acc, nil
}

// Rename returns a copy of r with attributes renamed per the mapping (the
// classical ρ operator). Attributes absent from the mapping keep their
// names; the mapping must not target an existing or duplicate name. Tuples
// are shared with the input (values are immutable).
func Rename(r *Relation, mapping map[string]string) (*Relation, error) {
	attrs := make([]string, r.Schema().Len())
	for i, a := range r.Schema().Attrs() {
		if to, ok := mapping[a]; ok {
			attrs[i] = to
		} else {
			attrs[i] = a
		}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("relation: rename: %v", err)
	}
	for from := range mapping {
		if !r.Schema().Has(from) {
			return nil, fmt.Errorf("relation: rename of missing attribute %q", from)
		}
	}
	// Share rows only; a shared dedup index would alias later Inserts on the
	// renamed relation into the original's membership checks.
	out := &Relation{schema: schema, rows: r.rows}
	return out, nil
}
