package relation

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// parallelThreshold is the input size below which ParallelJoin falls back
// to the sequential hash join; goroutine and partitioning overhead dominate
// on small inputs.
const parallelThreshold = 4096

// ParallelJoin computes the natural join l ⋈ r using up to workers
// goroutines (0 means GOMAXPROCS). Both inputs are hash-partitioned on
// their common attributes; each partition pair is joined independently and
// the results concatenated — matching tuples always share a key, so they
// land in the same partition and the partitions' outputs are disjoint.
//
// The result equals Join(l, r) exactly. With no common attributes the left
// input is split into chunks instead (a parallel Cartesian product).
func ParallelJoin(l, r *Relation, workers int) *Relation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || l.Len()+r.Len() < parallelThreshold {
		return Join(l, r)
	}
	common := l.schema.AttrSet().Intersect(r.schema.AttrSet())
	if common.IsEmpty() {
		return parallelProduct(l, r, workers)
	}

	lPos, _ := l.schema.Positions(common)
	rPos, _ := r.schema.Positions(common)

	lParts := partitionByKey(l.rows, lPos, workers)
	rParts := partitionByKey(r.rows, rPos, workers)

	results := make([]*Relation, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lp, _ := NewFromRows(l.schema, lParts[w])
			rp, _ := NewFromRows(r.schema, rParts[w])
			results[w] = Join(lp, rp)
		}(w)
	}
	wg.Wait()
	return concatDisjoint(joinSchema(l.schema, r.schema), results)
}

// partitionByKey splits rows into n buckets by the FNV hash of their key
// columns.
func partitionByKey(rows []Tuple, pos []int, n int) [][]Tuple {
	parts := make([][]Tuple, n)
	var buf []byte
	for _, t := range rows {
		buf = buf[:0]
		for _, p := range pos {
			buf = t[p].appendKey(buf)
		}
		h := fnv.New32a()
		h.Write(buf)
		parts[h.Sum32()%uint32(n)] = append(parts[h.Sum32()%uint32(n)], t)
	}
	return parts
}

// parallelProduct splits l into chunks and cross-joins each with r.
func parallelProduct(l, r *Relation, workers int) *Relation {
	chunk := (l.Len() + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	var tasks [][]Tuple
	for i := 0; i < l.Len(); i += chunk {
		end := i + chunk
		if end > l.Len() {
			end = l.Len()
		}
		tasks = append(tasks, l.rows[i:end])
	}
	results := make([]*Relation, len(tasks))
	var wg sync.WaitGroup
	for w := range tasks {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lp, _ := NewFromRows(l.schema, tasks[w])
			results[w] = Join(lp, r)
		}(w)
	}
	wg.Wait()
	return concatDisjoint(joinSchema(l.schema, r.schema), results)
}

// concatDisjoint merges partition results whose tuple sets are pairwise
// disjoint (guaranteed by key partitioning / chunking of distinct rows), so
// rows append without re-checking the dedup map per row beyond registering
// the keys.
func concatDisjoint(schema *Schema, parts []*Relation) *Relation {
	out := New(schema)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, t := range p.rows {
			out.rows = append(out.rows, t)
		}
		for k := range p.seen {
			out.seen[k] = struct{}{}
		}
	}
	return out
}
